package isegen_test

import (
	"strings"
	"testing"

	isegen "repro"
)

func TestGenerateAFUThroughFacade(t *testing.T) {
	app := buildMACApp(t)
	model := isegen.DefaultModel()
	res, err := isegen.Generate(app, isegen.DefaultConfig())
	if err != nil || len(res.Selections) == 0 {
		t.Fatalf("Generate: %v", err)
	}
	sel := res.Selections[0]
	mod, err := isegen.GenerateAFU(sel.Cut.Block, sel.Cut.Nodes, model, "facade_afu")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Area() <= 0 || mod.Delay() <= 0 {
		t.Errorf("area %v delay %v must be positive", mod.Area(), mod.Delay())
	}
	v := mod.Verilog()
	if !strings.Contains(v, "module facade_afu") || !strings.Contains(v, "endmodule") {
		t.Error("Verilog output malformed")
	}
	if a := isegen.AFUArea(sel.Cut.Block, model, sel.Cut.Nodes); a != mod.Area() {
		t.Errorf("AFUArea %v != module area %v", a, mod.Area())
	}
}

func TestAreaBudgetThroughFacade(t *testing.T) {
	app := buildMACApp(t)
	model := isegen.DefaultModel()
	res, err := isegen.Generate(app, isegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := isegen.SelectUnderAreaBudget(app, model, res.Selections, 0)
	if len(all) != len(res.Selections) {
		t.Error("unlimited budget must keep everything")
	}
	none := isegen.SelectUnderAreaBudget(app, model, res.Selections, 1)
	if len(none) != 0 {
		t.Error("1-gate budget must keep nothing")
	}
	total := isegen.TotalAFUArea(model, res.Selections)
	if total <= 0 {
		t.Errorf("TotalAFUArea = %v", total)
	}
	exact := isegen.SelectUnderAreaBudget(app, model, res.Selections, total+64)
	if len(exact) != len(res.Selections) {
		t.Error("budget >= total area must keep everything")
	}
}
