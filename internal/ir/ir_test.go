package ir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestOpStringRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		got, err := OpFromString(op.String())
		if err != nil {
			t.Fatalf("OpFromString(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("round trip %v -> %q -> %v", op, op.String(), got)
		}
	}
	if _, err := OpFromString("bogus"); err == nil {
		t.Error("OpFromString(bogus) should fail")
	}
}

func TestOpTables(t *testing.T) {
	for _, op := range AllOps() {
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
		if a := op.Arity(); a < 0 || a > 3 {
			t.Errorf("%v arity %d out of range", op, a)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem wrong")
	}
	if OpStore.HasValue() || !OpAdd.HasValue() {
		t.Error("HasValue wrong")
	}
	if !OpAdd.IsCommutative() || OpSub.IsCommutative() || OpShl.IsCommutative() {
		t.Error("IsCommutative wrong")
	}
}

// buildMAC builds: out = a*b + acc, out live-out.
func buildMAC(t *testing.T) *Block {
	t.Helper()
	bu := NewBuilder("mac", 100)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	p := bu.Mul(a, b)
	s := bu.Add(p, acc)
	bu.LiveOut(s)
	blk, err := bu.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return blk
}

func TestBuilderBasics(t *testing.T) {
	blk := buildMAC(t)
	if blk.N() != 2 || blk.NumInputs != 3 {
		t.Fatalf("got %d nodes %d inputs, want 2 and 3", blk.N(), blk.NumInputs)
	}
	if !blk.LiveOut.Has(1) || blk.LiveOut.Has(0) {
		t.Error("live-out should be exactly node 1")
	}
	if blk.DAG().NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (mul -> add)", blk.DAG().NumEdges())
	}
	// Node 0 consumes inputs 0,1; node 1 consumes node 0 and input 2.
	if got := blk.Srcs(0); len(got) != 2 || got[0] != blk.InputValueID(0) || got[1] != blk.InputValueID(1) {
		t.Errorf("Srcs(0) = %v", got)
	}
	if got := blk.Srcs(1); len(got) != 2 || got[0] != 0 || got[1] != blk.InputValueID(2) {
		t.Errorf("Srcs(1) = %v", got)
	}
	if got := blk.Uses(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Uses(0) = %v", got)
	}
}

func TestBuilderDuplicateOperandDeduped(t *testing.T) {
	bu := NewBuilder("sq", 1)
	x := bu.Input("x")
	sq := bu.Mul(x, x)
	bu.LiveOut(sq)
	blk := bu.MustBuild()
	if got := blk.Srcs(0); len(got) != 1 {
		t.Errorf("x*x should have 1 distinct source, got %v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	// Store result consumed.
	blk := &Block{Name: "bad", NumInputs: 1, Nodes: []Node{
		{Op: OpStore, Args: []Operand{InputRef(0), InputRef(0)}},
		{Op: OpNeg, Args: []Operand{NodeRef(0)}},
	}}
	if err := blk.finalize(); err == nil {
		t.Error("consuming a store result should fail")
	}
	// Forward reference.
	blk2 := &Block{Name: "fwd", NumInputs: 0, Nodes: []Node{
		{Op: OpNeg, Args: []Operand{NodeRef(0)}},
	}}
	if err := blk2.finalize(); err == nil {
		t.Error("self reference should fail")
	}
	// Arity mismatch.
	blk3 := &Block{Name: "arity", NumInputs: 1, Nodes: []Node{
		{Op: OpAdd, Args: []Operand{InputRef(0)}},
	}}
	if err := blk3.finalize(); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Input out of range.
	blk4 := &Block{Name: "inrange", NumInputs: 1, Nodes: []Node{
		{Op: OpNeg, Args: []Operand{InputRef(5)}},
	}}
	if err := blk4.finalize(); err == nil {
		t.Error("input index out of range should fail")
	}
}

func TestEvalMAC(t *testing.T) {
	blk := buildMAC(t)
	vals, err := blk.Eval([]int32{6, 7, 100}, nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if vals[1] != 142 {
		t.Errorf("6*7+100 = %d, want 142", vals[1])
	}
	out, err := blk.EvalOutputs([]int32{2, 3, 4}, nil)
	if err != nil {
		t.Fatalf("EvalOutputs: %v", err)
	}
	if out[1] != 10 {
		t.Errorf("2*3+4 = %d, want 10", out[1])
	}
}

func TestEvalInputCountMismatch(t *testing.T) {
	blk := buildMAC(t)
	if _, err := blk.Eval([]int32{1}, nil); err == nil {
		t.Error("wrong input count should fail")
	}
}

func TestEvalOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		args []int32
		want int32
	}{
		{OpAdd, []int32{3, 4}, 7},
		{OpSub, []int32{3, 4}, -1},
		{OpMul, []int32{-3, 4}, -12},
		{OpNeg, []int32{5}, -5},
		{OpAnd, []int32{0b1100, 0b1010}, 0b1000},
		{OpOr, []int32{0b1100, 0b1010}, 0b1110},
		{OpXor, []int32{0b1100, 0b1010}, 0b0110},
		{OpNot, []int32{0}, -1},
		{OpShl, []int32{1, 4}, 16},
		{OpShrL, []int32{-1, 28}, 15},
		{OpShrA, []int32{-16, 2}, -4},
		{OpShl, []int32{1, 33}, 2}, // shift amount masked to 5 bits
		{OpCmpEQ, []int32{2, 2}, 1},
		{OpCmpNE, []int32{2, 2}, 0},
		{OpCmpLT, []int32{-1, 0}, 1},
		{OpCmpLE, []int32{0, 0}, 1},
		{OpCmpGT, []int32{1, 0}, 1},
		{OpCmpGE, []int32{-1, 0}, 0},
		{OpSelect, []int32{1, 10, 20}, 10},
		{OpSelect, []int32{0, 10, 20}, 20},
		{OpMin, []int32{-5, 3}, -5},
		{OpMax, []int32{-5, 3}, 3},
	}
	for _, c := range cases {
		got, err := EvalOp(c.op, 0, c.args)
		if err != nil {
			t.Fatalf("EvalOp(%v): %v", c.op, err)
		}
		if got != c.want {
			t.Errorf("EvalOp(%v, %v) = %d, want %d", c.op, c.args, got, c.want)
		}
	}
	if got, err := EvalOp(OpConst, 42, nil); err != nil || got != 42 {
		t.Errorf("EvalOp(const 42) = %d, %v", got, err)
	}
	if _, err := EvalOp(OpLoad, 0, []int32{0}); err == nil {
		t.Error("EvalOp must reject memory opcodes")
	}
}

func TestMemoryOps(t *testing.T) {
	bu := NewBuilder("memtest", 1)
	addr := bu.Input("addr")
	v := bu.Load(addr)
	one := bu.Const(1)
	inc := bu.Add(v, one)
	bu.Store(addr, inc)
	v2 := bu.Load(addr)
	bu.LiveOut(v2)
	blk := bu.MustBuild()

	mem := NewMapMemory()
	mem.Preload(10, []int32{41})
	out, err := blk.EvalOutputs([]int32{10}, mem)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Load-after-store in program order observes the incremented value.
	if out[4] != 42 {
		t.Errorf("reloaded value = %d, want 42", out[4])
	}
	if mem.Load(10) != 42 {
		t.Errorf("mem[10] = %d, want 42", mem.Load(10))
	}
}

func TestCutIOReference(t *testing.T) {
	// DFG: n0 = i0 + i1; n1 = n0 * i2; n2 = n0 - n1; n2 live-out.
	bu := NewBuilder("io", 1)
	in := bu.Inputs(3)
	n0 := bu.Add(in[0], in[1])
	n1 := bu.Mul(n0, in[2])
	n2 := bu.Sub(n0, n1)
	bu.LiveOut(n2)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(3)
	cut.Set(1) // only the mul
	if got := blk.CutInputs(cut); got != 2 {
		t.Errorf("inputs of {mul} = %d, want 2 (n0, i2)", got)
	}
	if got := blk.CutOutputs(cut); got != 1 {
		t.Errorf("outputs of {mul} = %d, want 1", got)
	}

	cut.Set(0)
	cut.Set(2) // whole block
	if got := blk.CutInputs(cut); got != 3 {
		t.Errorf("inputs of full cut = %d, want 3", got)
	}
	if got := blk.CutOutputs(cut); got != 1 {
		t.Errorf("outputs of full cut = %d, want 1 (live-out n2)", got)
	}

	cut.Reset()
	cut.Set(0) // only the add: consumed by both mul and sub outside
	if got := blk.CutOutputs(cut); got != 1 {
		t.Errorf("outputs of {add} = %d, want 1 (single value, two consumers)", got)
	}

	empty := graph.NewBitSet(3)
	if blk.CutInputs(empty) != 0 || blk.CutOutputs(empty) != 0 {
		t.Error("empty cut must have zero I/O")
	}
}

func TestCutOutputsLiveOutOnlyCountedOnce(t *testing.T) {
	// n0 live-out AND consumed outside the cut: still one output port.
	bu := NewBuilder("once", 1)
	x := bu.Input("x")
	n0 := bu.Neg(x)
	n1 := bu.Neg(n0)
	bu.LiveOut(n0, n1)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(2)
	cut.Set(0)
	if got := blk.CutOutputs(cut); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
}

func TestApplicationAggregates(t *testing.T) {
	b1 := buildMAC(t) // freq 100, 2 nodes
	bu := NewBuilder("small", 10)
	x := bu.Input("x")
	bu.LiveOut(bu.Neg(x))
	b2 := bu.MustBuild()
	app := &Application{Name: "app", Blocks: []*Block{b1, b2}}
	lat := func(op Op) int {
		if op == OpMul {
			return 3
		}
		return 1
	}
	// b1: (3+1)*100 = 400; b2: 1*10 = 10.
	if got := app.TotalSWCycles(lat); got != 410 {
		t.Errorf("TotalSWCycles = %v, want 410", got)
	}
	if got := app.MaxBlockSize(); got != 2 {
		t.Errorf("MaxBlockSize = %v, want 2", got)
	}
}

// randBlock builds a random valid block for property tests.
func randBlock(rng *rand.Rand, n int) *Block {
	bu := NewBuilder("rand", 1)
	numIn := 1 + rng.Intn(4)
	ins := bu.Inputs(numIn)
	vals := append([]Value{}, ins...)
	binOps := []func(a, b Value) Value{bu.Add, bu.Sub, bu.Mul, bu.And, bu.Or, bu.Xor, bu.Shl, bu.Min}
	for i := 0; i < n; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		v := binOps[rng.Intn(len(binOps))](a, b)
		vals = append(vals, v)
	}
	// Mark a few values live-out (always the last node so every node can
	// matter).
	bu.LiveOut(vals[len(vals)-1])
	return bu.MustBuild()
}

// Property: for random blocks and random cuts, CutInputs is bounded by the
// total distinct sources and CutOutputs by the cut size; the full cut's
// input count equals the number of distinct external inputs consumed.
func TestCutIOBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		blk := randBlock(rng, 2+rng.Intn(20))
		cut := graph.NewBitSet(blk.N())
		for i := 0; i < blk.N(); i++ {
			if rng.Float64() < 0.5 {
				cut.Set(i)
			}
		}
		in, out := blk.CutInputs(cut), blk.CutOutputs(cut)
		if in < 0 || out < 0 || out > cut.Count() {
			t.Fatalf("bounds violated: in=%d out=%d |cut|=%d", in, out, cut.Count())
		}
		if cut.Empty() && (in != 0 || out != 0) {
			t.Fatal("empty cut with non-zero IO")
		}
	}
}

// Property: Eval is deterministic.
func TestEvalDeterministic(t *testing.T) {
	f := func(a, b, c int32) bool {
		bu := NewBuilder("det", 1)
		x, y, z := bu.Input("x"), bu.Input("y"), bu.Input("z")
		v := bu.Add(bu.Mul(x, y), bu.Xor(z, x))
		bu.LiveOut(v)
		blk := bu.MustBuild()
		o1, err1 := blk.EvalOutputs([]int32{a, b, c}, nil)
		o2, err2 := blk.EvalOutputs([]int32{a, b, c}, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		want := a*b + (c ^ a)
		return o1[2] == want && o2[2] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
