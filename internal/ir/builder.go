package ir

import (
	"fmt"

	"repro/internal/graph"
)

// Value is an SSA-style handle returned by Builder methods; it wraps an
// operand reference and can be fed to further Builder calls.
type Value struct {
	op Operand
	ok bool
}

// Builder constructs a Block programmatically. All methods panic on misuse
// (out-of-range handles); kernels are static code so construction errors
// are programming errors.
type Builder struct {
	name      string
	freq      float64
	nodes     []Node
	numInputs int
	liveOut   []int
	built     bool
}

// NewBuilder returns a Builder for a block with the given name and
// execution frequency.
func NewBuilder(name string, freq float64) *Builder {
	return &Builder{name: name, freq: freq}
}

// Input declares the next external input and returns its handle.
func (bu *Builder) Input(name string) Value {
	_ = name // inputs are positional; the name is documentation
	v := Value{op: InputRef(bu.numInputs), ok: true}
	bu.numInputs++
	return v
}

// Inputs declares n external inputs at once.
func (bu *Builder) Inputs(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = bu.Input("")
	}
	return out
}

func (bu *Builder) emit(op Op, imm int32, args ...Value) Value {
	if bu.built {
		panic("ir: Builder used after Build")
	}
	if len(args) != op.Arity() {
		panic(fmt.Sprintf("ir: %v takes %d args, got %d", op, op.Arity(), len(args)))
	}
	nd := Node{Op: op, Imm: imm}
	for _, a := range args {
		if !a.ok {
			panic(fmt.Sprintf("ir: %v: uninitialized Value argument", op))
		}
		nd.Args = append(nd.Args, a.op)
	}
	id := len(bu.nodes)
	bu.nodes = append(bu.nodes, nd)
	return Value{op: NodeRef(id), ok: op.HasValue()}
}

// Const materializes the immediate c.
func (bu *Builder) Const(c int32) Value { return bu.emit(OpConst, c) }

// Imm returns an immediate operand Value usable as any argument; it is
// encoded in the consuming instruction and creates no node, dependence or
// register port.
func (bu *Builder) Imm(v int32) Value { return Value{op: ImmOperand(v), ok: true} }

// AddI emits a + imm.
func (bu *Builder) AddI(a Value, imm int32) Value { return bu.Add(a, bu.Imm(imm)) }

// SubI emits a - imm.
func (bu *Builder) SubI(a Value, imm int32) Value { return bu.Sub(a, bu.Imm(imm)) }

// MulI emits a * imm.
func (bu *Builder) MulI(a Value, imm int32) Value { return bu.Mul(a, bu.Imm(imm)) }

// AndI emits a & imm.
func (bu *Builder) AndI(a Value, imm int32) Value { return bu.And(a, bu.Imm(imm)) }

// OrI emits a | imm.
func (bu *Builder) OrI(a Value, imm int32) Value { return bu.Or(a, bu.Imm(imm)) }

// XorI emits a ^ imm.
func (bu *Builder) XorI(a Value, imm int32) Value { return bu.Xor(a, bu.Imm(imm)) }

// ShlI emits a << imm.
func (bu *Builder) ShlI(a Value, imm int32) Value { return bu.Shl(a, bu.Imm(imm)) }

// ShrLI emits the logical a >> imm.
func (bu *Builder) ShrLI(a Value, imm int32) Value { return bu.ShrL(a, bu.Imm(imm)) }

// ShrAI emits the arithmetic a >> imm.
func (bu *Builder) ShrAI(a Value, imm int32) Value { return bu.ShrA(a, bu.Imm(imm)) }

// Add emits a + b.
func (bu *Builder) Add(a, b Value) Value { return bu.emit(OpAdd, 0, a, b) }

// Sub emits a - b.
func (bu *Builder) Sub(a, b Value) Value { return bu.emit(OpSub, 0, a, b) }

// Mul emits a * b.
func (bu *Builder) Mul(a, b Value) Value { return bu.emit(OpMul, 0, a, b) }

// Neg emits -a.
func (bu *Builder) Neg(a Value) Value { return bu.emit(OpNeg, 0, a) }

// And emits a & b.
func (bu *Builder) And(a, b Value) Value { return bu.emit(OpAnd, 0, a, b) }

// Or emits a | b.
func (bu *Builder) Or(a, b Value) Value { return bu.emit(OpOr, 0, a, b) }

// Xor emits a ^ b.
func (bu *Builder) Xor(a, b Value) Value { return bu.emit(OpXor, 0, a, b) }

// Not emits ^a.
func (bu *Builder) Not(a Value) Value { return bu.emit(OpNot, 0, a) }

// Shl emits a << (b & 31).
func (bu *Builder) Shl(a, b Value) Value { return bu.emit(OpShl, 0, a, b) }

// ShrL emits the logical shift a >> (b & 31).
func (bu *Builder) ShrL(a, b Value) Value { return bu.emit(OpShrL, 0, a, b) }

// ShrA emits the arithmetic shift a >> (b & 31).
func (bu *Builder) ShrA(a, b Value) Value { return bu.emit(OpShrA, 0, a, b) }

// CmpEQ emits a == b (0/1).
func (bu *Builder) CmpEQ(a, b Value) Value { return bu.emit(OpCmpEQ, 0, a, b) }

// CmpNE emits a != b (0/1).
func (bu *Builder) CmpNE(a, b Value) Value { return bu.emit(OpCmpNE, 0, a, b) }

// CmpLT emits signed a < b (0/1).
func (bu *Builder) CmpLT(a, b Value) Value { return bu.emit(OpCmpLT, 0, a, b) }

// CmpLE emits signed a <= b (0/1).
func (bu *Builder) CmpLE(a, b Value) Value { return bu.emit(OpCmpLE, 0, a, b) }

// CmpGT emits signed a > b (0/1).
func (bu *Builder) CmpGT(a, b Value) Value { return bu.emit(OpCmpGT, 0, a, b) }

// CmpGE emits signed a >= b (0/1).
func (bu *Builder) CmpGE(a, b Value) Value { return bu.emit(OpCmpGE, 0, a, b) }

// Select emits c != 0 ? a : b.
func (bu *Builder) Select(c, a, b Value) Value { return bu.emit(OpSelect, 0, c, a, b) }

// Min emits signed min(a, b).
func (bu *Builder) Min(a, b Value) Value { return bu.emit(OpMin, 0, a, b) }

// Max emits signed max(a, b).
func (bu *Builder) Max(a, b Value) Value { return bu.emit(OpMax, 0, a, b) }

// Load emits mem[a].
func (bu *Builder) Load(a Value) Value { return bu.emit(OpLoad, 0, a) }

// Store emits mem[a] = v. The returned Value cannot be consumed.
func (bu *Builder) Store(a, v Value) { bu.emit(OpStore, 0, a, v) }

// LiveOut marks the given values (which must be node results) as live out
// of the block.
func (bu *Builder) LiveOut(vals ...Value) {
	for _, v := range vals {
		if !v.ok || v.op.Kind != FromNode {
			panic("ir: LiveOut requires node result values")
		}
		bu.liveOut = append(bu.liveOut, v.op.Index)
	}
}

// NumNodes returns the number of instructions emitted so far.
func (bu *Builder) NumNodes() int { return len(bu.nodes) }

// Build finalizes and returns the Block. The Builder must not be used
// afterwards.
func (bu *Builder) Build() (*Block, error) {
	if bu.built {
		return nil, fmt.Errorf("ir: Build called twice on block %q", bu.name)
	}
	bu.built = true
	blk := &Block{
		Name:      bu.name,
		Nodes:     bu.nodes,
		NumInputs: bu.numInputs,
		Freq:      bu.freq,
		LiveOut:   graph.NewBitSet(len(bu.nodes)),
	}
	for _, i := range bu.liveOut {
		blk.LiveOut.Set(i)
	}
	if err := blk.finalize(); err != nil {
		return nil, err
	}
	return blk, nil
}

// MustBuild is Build but panics on error; for statically known-good kernels.
func (bu *Builder) MustBuild() *Block {
	blk, err := bu.Build()
	if err != nil {
		panic(err)
	}
	return blk
}
