package ir

import (
	"fmt"

	"repro/internal/graph"
)

// OperandKind discriminates where an instruction operand comes from.
type OperandKind uint8

const (
	// FromNode means the operand is the value produced by another node in
	// the same block.
	FromNode OperandKind = iota
	// FromInput means the operand is an external input of the block
	// (live-in register value).
	FromInput
	// FromImm means the operand is an immediate encoded in the
	// instruction itself: it creates no data dependence and consumes no
	// register-file port.
	FromImm
)

// Operand is a reference to a value consumed by an instruction.
type Operand struct {
	Kind  OperandKind
	Index int // node ID (FromNode), input index (FromInput) or immediate value (FromImm)
}

// NodeRef returns an operand referring to the value of node id.
func NodeRef(id int) Operand { return Operand{Kind: FromNode, Index: id} }

// InputRef returns an operand referring to external input k.
func InputRef(k int) Operand { return Operand{Kind: FromInput, Index: k} }

// ImmOperand returns an immediate operand with the given value.
func ImmOperand(v int32) Operand { return Operand{Kind: FromImm, Index: int(v)} }

// Node is one instruction in a basic-block DFG.
type Node struct {
	Op   Op
	Args []Operand
	Imm  int32  // immediate payload, used by OpConst
	Name string // optional label for debugging/serialization
}

// Block is an immutable basic-block data-flow graph. Construct it with
// Builder (builder.go) or dfgio.Parse; all derived structures (dependence
// DAG, use lists, value IDs) are computed once at construction.
//
// Value identification: the block has NumValues() = len(Nodes) + NumInputs
// distinct values. Value v < len(Nodes) is the result of node v; value
// len(Nodes)+k is external input k. Stores produce no consumable value but
// still occupy a node slot.
type Block struct {
	Name      string
	Nodes     []Node
	NumInputs int
	// Freq is the execution frequency of the block (profile weight),
	// used by the multi-cut driver and the speedup evaluation.
	Freq float64
	// LiveOut marks nodes whose values are live out of the block; they
	// must be written back to the register file even when covered by an
	// ISE and therefore count toward the cut's outputs.
	LiveOut *graph.BitSet

	dag *graph.DAG
	// uses[v] lists, deduplicated and ascending, the nodes consuming
	// value v (node result or external input).
	uses [][]int
	// srcs[i] lists, deduplicated and ascending, the value IDs consumed
	// by node i.
	srcs [][]int
}

// FinishBlock validates a manually assembled Block (Nodes, NumInputs, Freq
// and LiveOut populated) and computes its derived structures. Builder.Build
// calls it automatically; deserializers use it directly.
func FinishBlock(b *Block) error { return b.finalize() }

// finalize computes the derived structures. Called by Builder.Build and
// FinishBlock after the nodes are in place.
func (b *Block) finalize() error {
	n := len(b.Nodes)
	if b.LiveOut == nil {
		b.LiveOut = graph.NewBitSet(n)
	}
	b.dag = graph.NewDAG(n)
	nv := b.NumValues()
	b.uses = make([][]int, nv)
	b.srcs = make([][]int, n)
	for i := range b.Nodes {
		nd := &b.Nodes[i]
		if !nd.Op.Valid() {
			return fmt.Errorf("ir: block %q node %d: invalid opcode", b.Name, i)
		}
		if len(nd.Args) != nd.Op.Arity() {
			return fmt.Errorf("ir: block %q node %d (%v): %d args, want %d",
				b.Name, i, nd.Op, len(nd.Args), nd.Op.Arity())
		}
		seen := map[int]bool{}
		for _, a := range nd.Args {
			var vid int
			switch a.Kind {
			case FromNode:
				if a.Index < 0 || a.Index >= n {
					return fmt.Errorf("ir: block %q node %d: node operand %d out of range", b.Name, i, a.Index)
				}
				if a.Index >= i {
					return fmt.Errorf("ir: block %q node %d: operand refers to node %d (not strictly earlier)", b.Name, i, a.Index)
				}
				if !b.Nodes[a.Index].Op.HasValue() {
					return fmt.Errorf("ir: block %q node %d: operand refers to node %d which produces no value", b.Name, i, a.Index)
				}
				b.dag.AddEdge(a.Index, i)
				vid = a.Index
			case FromInput:
				if a.Index < 0 || a.Index >= b.NumInputs {
					return fmt.Errorf("ir: block %q node %d: input operand %d out of range [0,%d)", b.Name, i, a.Index, b.NumInputs)
				}
				vid = n + a.Index
			case FromImm:
				continue // immediates create no data dependence
			default:
				return fmt.Errorf("ir: block %q node %d: bad operand kind %d", b.Name, i, a.Kind)
			}
			if !seen[vid] {
				seen[vid] = true
				b.srcs[i] = append(b.srcs[i], vid)
				b.uses[vid] = append(b.uses[vid], i)
			}
		}
	}
	// Memory operations carry program-order dependences (no alias
	// analysis, so any store may conflict with any other access, while
	// loads commute with loads). Encoding them as DAG edges makes
	// convexity respect the memory order: a cut that consumes a load
	// while feeding an earlier store would otherwise be unschedulable as
	// an atomic instruction.
	lastStore := -1
	var loadsSince []int
	for i := range b.Nodes {
		switch b.Nodes[i].Op {
		case OpLoad:
			if lastStore >= 0 {
				b.dag.AddEdge(lastStore, i)
			}
			loadsSince = append(loadsSince, i)
		case OpStore:
			if lastStore >= 0 {
				b.dag.AddEdge(lastStore, i)
			}
			for _, ld := range loadsSince {
				b.dag.AddEdge(ld, i)
			}
			loadsSince = loadsSince[:0]
			lastStore = i
		}
	}
	if b.LiveOut.Cap() != n {
		return fmt.Errorf("ir: block %q: LiveOut capacity %d, want %d", b.Name, b.LiveOut.Cap(), n)
	}
	livePanic := false
	b.LiveOut.ForEach(func(i int) bool {
		if !b.Nodes[i].Op.HasValue() {
			livePanic = true
			return false
		}
		return true
	})
	if livePanic {
		return fmt.Errorf("ir: block %q: a live-out node produces no value", b.Name)
	}
	return b.dag.Freeze()
}

// N returns the number of nodes (instructions) in the block.
func (b *Block) N() int { return len(b.Nodes) }

// NumValues returns the size of the value ID space: node results followed
// by external inputs.
func (b *Block) NumValues() int { return len(b.Nodes) + b.NumInputs }

// InputValueID returns the value ID of external input k.
func (b *Block) InputValueID(k int) int { return len(b.Nodes) + k }

// IsInputValue reports whether value ID v denotes an external input.
func (b *Block) IsInputValue(v int) bool { return v >= len(b.Nodes) }

// DAG returns the data-dependence DAG over nodes (frozen; do not modify).
func (b *Block) DAG() *graph.DAG { return b.dag }

// Uses returns the deduplicated consumer node list of value v.
// The caller must not modify it.
func (b *Block) Uses(v int) []int { return b.uses[v] }

// Srcs returns the deduplicated source value IDs of node i.
// The caller must not modify it.
func (b *Block) Srcs(i int) []int { return b.srcs[i] }

// CutInputs counts the distinct values entering the cut: external inputs
// consumed by cut nodes plus results of non-cut nodes consumed by cut
// nodes. This is the reference (non-incremental) computation; the ISEGEN
// core maintains the same quantity incrementally and is property-tested
// against this.
func (b *Block) CutInputs(cut *graph.BitSet) int {
	n := len(b.Nodes)
	count := 0
	seen := graph.NewBitSet(b.NumValues())
	cut.ForEach(func(i int) bool {
		for _, v := range b.srcs[i] {
			if seen.Has(v) {
				continue
			}
			if v >= n || !cut.Has(v) {
				seen.Set(v)
				count++
			}
		}
		return true
	})
	return count
}

// CutOutputs counts the cut nodes whose value is consumed outside the cut
// or is live out of the block. Reference computation, see CutInputs.
func (b *Block) CutOutputs(cut *graph.BitSet) int {
	count := 0
	cut.ForEach(func(i int) bool {
		if !b.Nodes[i].Op.HasValue() {
			return true
		}
		if b.LiveOut.Has(i) {
			count++
			return true
		}
		for _, u := range b.uses[i] {
			if !cut.Has(u) {
				count++
				break
			}
		}
		return true
	})
	return count
}

// ForbiddenInCut reports whether node i may never be part of an ISE
// (memory operations, per the paper's architecture model).
func (b *Block) ForbiddenInCut(i int) bool { return b.Nodes[i].Op.IsMem() }

// String returns a short human-readable summary.
func (b *Block) String() string {
	return fmt.Sprintf("block %q: %d nodes, %d inputs, %d live-out, freq %g",
		b.Name, len(b.Nodes), b.NumInputs, b.LiveOut.Count(), b.Freq)
}

// Application is a set of basic blocks with execution frequencies; the unit
// over which Problem 2 (multi-cut selection under an AFU budget) is solved.
type Application struct {
	Name   string
	Blocks []*Block
}

// TotalSWCycles sums freq-weighted software latency over all blocks, using
// the supplied per-node latency function.
func (a *Application) TotalSWCycles(swLat func(op Op) int) float64 {
	total := 0.0
	for _, blk := range a.Blocks {
		blkLat := 0
		for i := range blk.Nodes {
			blkLat += swLat(blk.Nodes[i].Op)
		}
		total += blk.Freq * float64(blkLat)
	}
	return total
}

// MaxBlockSize returns the node count of the largest block — the number the
// paper reports in parentheses next to each benchmark name.
func (a *Application) MaxBlockSize() int {
	m := 0
	for _, blk := range a.Blocks {
		if blk.N() > m {
			m = blk.N()
		}
	}
	return m
}
