package ir

import "fmt"

// Memory is the abstract memory interface used by Load/Store during block
// evaluation. Implementations decide addressing; MapMemory is the simple
// default.
type Memory interface {
	Load(addr int32) int32
	Store(addr, val int32)
}

// MapMemory is a sparse word-addressed memory backed by a map. The zero
// value is not usable; use NewMapMemory.
type MapMemory struct {
	m map[int32]int32
}

// NewMapMemory returns an empty memory.
func NewMapMemory() *MapMemory { return &MapMemory{m: map[int32]int32{}} }

// Load returns mem[addr], zero if never stored.
func (mm *MapMemory) Load(addr int32) int32 { return mm.m[addr] }

// Store sets mem[addr] = val.
func (mm *MapMemory) Store(addr, val int32) { mm.m[addr] = val }

// Preload copies vals into memory starting at base.
func (mm *MapMemory) Preload(base int32, vals []int32) {
	for i, v := range vals {
		mm.m[base+int32(i)] = v
	}
}

// EvalOp computes one instruction's result from its operand values.
// Memory operations are not handled here (see Block.Eval).
func EvalOp(op Op, imm int32, args []int32) (int32, error) {
	switch op {
	case OpConst:
		return imm, nil
	case OpAdd:
		return args[0] + args[1], nil
	case OpSub:
		return args[0] - args[1], nil
	case OpMul:
		return args[0] * args[1], nil
	case OpNeg:
		return -args[0], nil
	case OpAnd:
		return args[0] & args[1], nil
	case OpOr:
		return args[0] | args[1], nil
	case OpXor:
		return args[0] ^ args[1], nil
	case OpNot:
		return ^args[0], nil
	case OpShl:
		return args[0] << (uint32(args[1]) & 31), nil
	case OpShrL:
		return int32(uint32(args[0]) >> (uint32(args[1]) & 31)), nil
	case OpShrA:
		return args[0] >> (uint32(args[1]) & 31), nil
	case OpCmpEQ:
		return b2i(args[0] == args[1]), nil
	case OpCmpNE:
		return b2i(args[0] != args[1]), nil
	case OpCmpLT:
		return b2i(args[0] < args[1]), nil
	case OpCmpLE:
		return b2i(args[0] <= args[1]), nil
	case OpCmpGT:
		return b2i(args[0] > args[1]), nil
	case OpCmpGE:
		return b2i(args[0] >= args[1]), nil
	case OpSelect:
		if args[0] != 0 {
			return args[1], nil
		}
		return args[2], nil
	case OpMin:
		if args[0] < args[1] {
			return args[0], nil
		}
		return args[1], nil
	case OpMax:
		if args[0] > args[1] {
			return args[0], nil
		}
		return args[1], nil
	}
	return 0, fmt.Errorf("ir: EvalOp: unsupported opcode %v", op)
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Eval executes the block on the given external input values and memory,
// returning the value computed by every node (stores yield 0). Nodes are
// already in a valid execution order because operands must refer to
// strictly earlier nodes.
func (b *Block) Eval(inputs []int32, mem Memory) ([]int32, error) {
	if len(inputs) != b.NumInputs {
		return nil, fmt.Errorf("ir: block %q: %d inputs supplied, want %d", b.Name, len(inputs), b.NumInputs)
	}
	if mem == nil {
		mem = NewMapMemory()
	}
	vals := make([]int32, len(b.Nodes))
	argBuf := make([]int32, 0, 3)
	for i := range b.Nodes {
		nd := &b.Nodes[i]
		argBuf = argBuf[:0]
		for _, a := range nd.Args {
			switch a.Kind {
			case FromNode:
				argBuf = append(argBuf, vals[a.Index])
			case FromInput:
				argBuf = append(argBuf, inputs[a.Index])
			case FromImm:
				argBuf = append(argBuf, int32(a.Index))
			}
		}
		switch nd.Op {
		case OpLoad:
			vals[i] = mem.Load(argBuf[0])
		case OpStore:
			mem.Store(argBuf[0], argBuf[1])
		default:
			v, err := EvalOp(nd.Op, nd.Imm, argBuf)
			if err != nil {
				return nil, fmt.Errorf("ir: block %q node %d: %w", b.Name, i, err)
			}
			vals[i] = v
		}
	}
	return vals, nil
}

// EvalOutputs executes the block and returns only the live-out values,
// keyed by node ID.
func (b *Block) EvalOutputs(inputs []int32, mem Memory) (map[int]int32, error) {
	vals, err := b.Eval(inputs, mem)
	if err != nil {
		return nil, err
	}
	out := map[int]int32{}
	b.LiveOut.ForEach(func(i int) bool {
		out[i] = vals[i]
		return true
	})
	return out, nil
}
