// Package ir defines the instruction-level intermediate representation that
// the rest of the repository operates on: opcodes with executable
// semantics, data-flow basic blocks, whole applications with block
// execution frequencies, and a builder API for constructing them.
//
// The paper extracts basic-block data-flow graphs (DFGs) from MachSUIF;
// this package plays that role. Every node is an instruction, every edge a
// data dependency, and each block can also be executed directly, which the
// cycle-level simulator in internal/sim uses to validate speedups.
package ir

import "fmt"

// Op is an instruction opcode. All arithmetic is 32-bit; comparison ops
// produce 0 or 1.
type Op uint8

// Opcode set. The mix mirrors what embedded media/crypto kernels need:
// integer arithmetic, bitwise logic, shifts, comparisons, selection and
// memory access.
const (
	OpInvalid Op = iota

	OpConst // materialize an immediate value (Imm field)

	OpAdd // a + b
	OpSub // a - b
	OpMul // a * b (low 32 bits)
	OpNeg // -a

	OpAnd // a & b
	OpOr  // a | b
	OpXor // a ^ b
	OpNot // ^a

	OpShl  // a << (b & 31)
	OpShrL // logical a >> (b & 31)
	OpShrA // arithmetic a >> (b & 31)

	OpCmpEQ // a == b
	OpCmpNE // a != b
	OpCmpLT // signed a < b
	OpCmpLE // signed a <= b
	OpCmpGT // signed a > b
	OpCmpGE // signed a >= b

	OpSelect // c != 0 ? a : b (args: c, a, b)
	OpMin    // signed min(a, b)
	OpMax    // signed max(a, b)

	OpLoad  // mem[a]; memory ops are AFU barriers
	OpStore // mem[a] = b; produces no value

	opCount
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShrL: "shrl", OpShrA: "shra",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt",
	OpCmpLE: "cmple", OpCmpGT: "cmpgt", OpCmpGE: "cmpge",
	OpSelect: "select", OpMin: "min", OpMax: "max",
	OpLoad: "load", OpStore: "store",
}

var opArity = [...]int{
	OpConst: 0,
	OpAdd:   2, OpSub: 2, OpMul: 2, OpNeg: 1,
	OpAnd: 2, OpOr: 2, OpXor: 2, OpNot: 1,
	OpShl: 2, OpShrL: 2, OpShrA: 2,
	OpCmpEQ: 2, OpCmpNE: 2, OpCmpLT: 2,
	OpCmpLE: 2, OpCmpGT: 2, OpCmpGE: 2,
	OpSelect: 3, OpMin: 2, OpMax: 2,
	OpLoad: 1, OpStore: 2,
}

// String returns the lower-case mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < opCount }

// Arity returns the number of operands op takes.
func (op Op) Arity() int { return opArity[op] }

// IsMem reports whether op accesses memory. Memory operations act as
// barriers for cut growth and are never included in an ISE.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore }

// HasValue reports whether op produces a value that other instructions can
// consume. Only stores are pure effects.
func (op Op) HasValue() bool { return op != OpStore && op.Valid() }

// IsCommutative reports whether swapping the two operands leaves the result
// unchanged. Used by the reuse matcher to identify isomorphic cut instances
// regardless of operand order.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE, OpMin, OpMax:
		return true
	}
	return false
}

// OpFromString parses a mnemonic produced by Op.String.
func OpFromString(s string) (Op, error) {
	for op := Op(1); op < opCount; op++ {
		if opNames[op] == s {
			return op, nil
		}
	}
	return OpInvalid, fmt.Errorf("ir: unknown opcode %q", s)
}

// AllOps returns every defined opcode; useful for table validation and
// property tests.
func AllOps() []Op {
	out := make([]Op, 0, int(opCount)-1)
	for op := Op(1); op < opCount; op++ {
		out = append(out, op)
	}
	return out
}
