package ir

import (
	"testing"

	"repro/internal/graph"
)

func TestImmediateOperandsNoDependence(t *testing.T) {
	bu := NewBuilder("imm", 1)
	x := bu.Input("x")
	v := bu.ShlI(x, 3)
	w := bu.AndI(v, 0xff)
	bu.LiveOut(w)
	blk := bu.MustBuild()

	// Immediates create no edges and no sources.
	if blk.DAG().NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (only shl->and)", blk.DAG().NumEdges())
	}
	if got := blk.Srcs(0); len(got) != 1 || got[0] != blk.InputValueID(0) {
		t.Errorf("Srcs(0) = %v, want just the input", got)
	}
	if got := blk.Srcs(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Srcs(1) = %v, want just node 0", got)
	}
}

func TestImmediateOperandsNoPortCost(t *testing.T) {
	bu := NewBuilder("imm", 1)
	x := bu.Input("x")
	v := bu.AddI(x, 100)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(1)
	cut.Set(0)
	if in := blk.CutInputs(cut); in != 1 {
		t.Errorf("inputs = %d, want 1 (immediate is free)", in)
	}
}

func TestImmediateEvalAllHelpers(t *testing.T) {
	bu := NewBuilder("imm", 1)
	x := bu.Input("x")
	results := []Value{
		bu.AddI(x, 5),    // x+5
		bu.SubI(x, 5),    // x-5
		bu.MulI(x, 3),    // x*3
		bu.AndI(x, 0xf0), // x&0xf0
		bu.OrI(x, 0x0f),  // x|0x0f
		bu.XorI(x, -1),   // ^x
		bu.ShlI(x, 2),    // x<<2
		bu.ShrLI(x, 2),   // x>>>2
		bu.ShrAI(x, 2),   // x>>2
	}
	bu.LiveOut(results...)
	blk := bu.MustBuild()
	in := int32(-0x40)
	vals, err := blk.Eval([]int32{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{
		in + 5, in - 5, in * 3, in & 0xf0, in | 0x0f, ^in,
		in << 2, int32(uint32(in) >> 2), in >> 2,
	}
	for i, w := range want {
		if vals[i] != w {
			t.Errorf("node %d (%v) = %d, want %d", i, blk.Nodes[i].Op, vals[i], w)
		}
	}
}

func TestImmediateOperandValueRange(t *testing.T) {
	bu := NewBuilder("imm", 1)
	x := bu.Input("x")
	lo := bu.AddI(x, -2147483648)
	hi := bu.AddI(x, 2147483647)
	bu.LiveOut(lo, hi)
	blk := bu.MustBuild()
	vals, err := blk.Eval([]int32{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != -2147483647 {
		t.Errorf("1 + INT32_MIN = %d, want -2147483647", vals[0])
	}
	if vals[1] != -2147483648 { // 1 + INT32_MAX wraps
		t.Errorf("1 + INT32_MAX = %d, want wrap to INT32_MIN", vals[1])
	}
}
