// Package hwgen turns an identified ISE cut into AFU hardware: a
// combinational Verilog datapath module whose ports correspond to the
// cut's register-file operands. It is the step a real ISE flow performs
// after identification (the paper synthesizes operators the same way to
// obtain its latency numbers).
//
// The generator builds a small expression netlist first; the netlist can
// be evaluated directly (for equivalence testing against the IR
// interpreter) and pretty-printed as synthesizable Verilog-2001. Area and
// delay reports come from the latency model.
package hwgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// Port is one module port, always 32 bits wide in this architecture.
type Port struct {
	Name string
	// ValueID is the block value the port carries: for inputs, a node
	// result or external input feeding the cut; for outputs, the cut
	// node whose result leaves the AFU.
	ValueID int
}

// Module is a combinational AFU datapath.
type Module struct {
	Name    string
	Inputs  []Port
	Outputs []Port

	blk *ir.Block
	cut *graph.BitSet
	// nets lists the internal nets in topological (evaluation) order.
	nets []net
	// portOf maps a block value ID to the input port index carrying it.
	portOf map[int]int
	// netOf maps a cut node ID to its net index.
	netOf map[int]int

	area  float64
	delay float64
}

type net struct {
	node int // block node ID
	op   ir.Op
	imm  int32
	// args are the operand sources in instruction order.
	args []operandSrc
}

type operandSrc struct {
	fromPort bool
	index    int   // port index or net index
	imm      bool  // immediate operand
	immVal   int32 // value when imm
}

// Generate builds the AFU module for the cut. The cut must be non-empty,
// convex, and free of memory operations.
func Generate(blk *ir.Block, cut *graph.BitSet, model *latency.Model, name string) (*Module, error) {
	if cut.Empty() {
		return nil, fmt.Errorf("hwgen: empty cut")
	}
	if !blk.DAG().IsConvex(cut) {
		return nil, fmt.Errorf("hwgen: cut is not convex")
	}
	m := &Module{
		Name:   sanitize(name),
		blk:    blk,
		cut:    cut.Clone(),
		portOf: map[int]int{},
		netOf:  map[int]int{},
	}

	// Input ports: distinct external values feeding the cut, in
	// ascending value-ID order for determinism.
	inputVals := map[int]bool{}
	var badNode int = -1
	cut.ForEach(func(v int) bool {
		if blk.Nodes[v].Op.IsMem() || !model.HWImplementable(blk.Nodes[v].Op) {
			badNode = v
			return false
		}
		for _, src := range blk.Srcs(v) {
			if src >= len(blk.Nodes) || !cut.Has(src) {
				inputVals[src] = true
			}
		}
		return true
	})
	if badNode >= 0 {
		return nil, fmt.Errorf("hwgen: node %d (%v) has no AFU implementation", badNode, blk.Nodes[badNode].Op)
	}
	var ins []int
	for v := range inputVals {
		ins = append(ins, v)
	}
	sort.Ints(ins)
	for i, v := range ins {
		m.portOf[v] = i
		m.Inputs = append(m.Inputs, Port{Name: fmt.Sprintf("in%d", i), ValueID: v})
	}

	// Nets in topological order of the block.
	for _, v := range blk.DAG().Topo() {
		if !cut.Has(v) {
			continue
		}
		nd := &blk.Nodes[v]
		n := net{node: v, op: nd.Op, imm: nd.Imm}
		for _, a := range nd.Args {
			switch a.Kind {
			case ir.FromImm:
				n.args = append(n.args, operandSrc{imm: true, immVal: int32(a.Index)})
			case ir.FromInput:
				n.args = append(n.args, operandSrc{fromPort: true, index: m.portOf[blk.InputValueID(a.Index)]})
			case ir.FromNode:
				if cut.Has(a.Index) {
					n.args = append(n.args, operandSrc{index: m.netOf[a.Index]})
				} else {
					n.args = append(n.args, operandSrc{fromPort: true, index: m.portOf[a.Index]})
				}
			}
		}
		m.netOf[v] = len(m.nets)
		m.nets = append(m.nets, n)
		m.area += model.Area[nd.Op]
	}

	// Output ports: cut values consumed outside or live out.
	cut.ForEach(func(v int) bool {
		if !blk.Nodes[v].Op.HasValue() {
			return true
		}
		escapes := blk.LiveOut.Has(v)
		if !escapes {
			for _, u := range blk.Uses(v) {
				if !cut.Has(u) {
					escapes = true
					break
				}
			}
		}
		if escapes {
			m.Outputs = append(m.Outputs, Port{
				Name:    fmt.Sprintf("out%d", len(m.Outputs)),
				ValueID: v,
			})
		}
		return true
	})
	if len(m.Outputs) == 0 {
		return nil, fmt.Errorf("hwgen: cut has no outputs")
	}

	_, m.delay = blk.DAG().LongestPath(cut, func(v int) float64 {
		d, _ := model.HWLat(blk.Nodes[v].Op)
		return d
	})
	return m, nil
}

func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "afu"
	}
	return b.String()
}

// Area returns the summed operator area (NAND2-equivalent gates).
func (m *Module) Area() float64 { return m.area }

// Delay returns the datapath critical path (normalized to MAC = 1.0).
func (m *Module) Delay() float64 { return m.delay }

// Eval computes the module outputs for the given input-port values,
// keyed by output-port name. This is the netlist-level reference used to
// check RTL/IR equivalence.
func (m *Module) Eval(inputs []int32) (map[string]int32, error) {
	if len(inputs) != len(m.Inputs) {
		return nil, fmt.Errorf("hwgen: %d inputs supplied, module has %d ports", len(inputs), len(m.Inputs))
	}
	vals := make([]int32, len(m.nets))
	argBuf := make([]int32, 0, 3)
	for i, n := range m.nets {
		argBuf = argBuf[:0]
		for _, a := range n.args {
			switch {
			case a.imm:
				argBuf = append(argBuf, a.immVal)
			case a.fromPort:
				argBuf = append(argBuf, inputs[a.index])
			default:
				argBuf = append(argBuf, vals[a.index])
			}
		}
		v, err := ir.EvalOp(n.op, n.imm, argBuf)
		if err != nil {
			return nil, fmt.Errorf("hwgen: net %d: %w", i, err)
		}
		vals[i] = v
	}
	out := map[string]int32{}
	for _, p := range m.Outputs {
		out[p.Name] = vals[m.netOf[p.ValueID]]
	}
	return out, nil
}

// Verilog renders the module as synthesizable Verilog-2001.
func (m *Module) Verilog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// AFU datapath generated from block %q\n", m.blk.Name)
	fmt.Fprintf(&b, "// area %.0f NAND2-eq gates, critical path %.2f MAC delays\n", m.area, m.delay)
	fmt.Fprintf(&b, "module %s (\n", m.Name)
	for _, p := range m.Inputs {
		fmt.Fprintf(&b, "    input  wire signed [31:0] %s,\n", p.Name)
	}
	for i, p := range m.Outputs {
		comma := ","
		if i == len(m.Outputs)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    output wire signed [31:0] %s%s\n", p.Name, comma)
	}
	fmt.Fprintf(&b, ");\n")
	for i, n := range m.nets {
		fmt.Fprintf(&b, "    wire signed [31:0] n%d; // %s (node %d)\n", i, n.op, n.node)
	}
	b.WriteString("\n")
	for i, n := range m.nets {
		fmt.Fprintf(&b, "    assign n%d = %s;\n", i, m.expr(&n))
	}
	b.WriteString("\n")
	for _, p := range m.Outputs {
		fmt.Fprintf(&b, "    assign %s = n%d;\n", p.Name, m.netOf[p.ValueID])
	}
	fmt.Fprintf(&b, "endmodule\n")
	return b.String()
}

// srcExpr renders one operand reference.
func (m *Module) srcExpr(a operandSrc) string {
	switch {
	case a.imm:
		if a.immVal < 0 {
			return fmt.Sprintf("-32'sd%d", -int64(a.immVal))
		}
		return fmt.Sprintf("32'sd%d", a.immVal)
	case a.fromPort:
		return m.Inputs[a.index].Name
	default:
		return fmt.Sprintf("n%d", a.index)
	}
}

// expr renders one net's right-hand side.
func (m *Module) expr(n *net) string {
	s := func(i int) string { return m.srcExpr(n.args[i]) }
	bool32 := func(cond string) string { return fmt.Sprintf("{31'b0, %s}", cond) }
	switch n.op {
	case ir.OpConst:
		if n.imm < 0 {
			return fmt.Sprintf("-32'sd%d", -int64(n.imm))
		}
		return fmt.Sprintf("32'sd%d", n.imm)
	case ir.OpAdd:
		return fmt.Sprintf("%s + %s", s(0), s(1))
	case ir.OpSub:
		return fmt.Sprintf("%s - %s", s(0), s(1))
	case ir.OpMul:
		return fmt.Sprintf("%s * %s", s(0), s(1))
	case ir.OpNeg:
		return fmt.Sprintf("-%s", s(0))
	case ir.OpAnd:
		return fmt.Sprintf("%s & %s", s(0), s(1))
	case ir.OpOr:
		return fmt.Sprintf("%s | %s", s(0), s(1))
	case ir.OpXor:
		return fmt.Sprintf("%s ^ %s", s(0), s(1))
	case ir.OpNot:
		return fmt.Sprintf("~%s", s(0))
	case ir.OpShl:
		return fmt.Sprintf("%s <<< (%s & 32'sd31)", s(0), s(1))
	case ir.OpShrL:
		return fmt.Sprintf("$signed($unsigned(%s) >> (%s & 32'sd31))", s(0), s(1))
	case ir.OpShrA:
		return fmt.Sprintf("%s >>> (%s & 32'sd31)", s(0), s(1))
	case ir.OpCmpEQ:
		return bool32(fmt.Sprintf("%s == %s", s(0), s(1)))
	case ir.OpCmpNE:
		return bool32(fmt.Sprintf("%s != %s", s(0), s(1)))
	case ir.OpCmpLT:
		return bool32(fmt.Sprintf("%s < %s", s(0), s(1)))
	case ir.OpCmpLE:
		return bool32(fmt.Sprintf("%s <= %s", s(0), s(1)))
	case ir.OpCmpGT:
		return bool32(fmt.Sprintf("%s > %s", s(0), s(1)))
	case ir.OpCmpGE:
		return bool32(fmt.Sprintf("%s >= %s", s(0), s(1)))
	case ir.OpSelect:
		return fmt.Sprintf("(%s != 32'sd0) ? %s : %s", s(0), s(1), s(2))
	case ir.OpMin:
		return fmt.Sprintf("(%s < %s) ? %s : %s", s(0), s(1), s(0), s(1))
	case ir.OpMax:
		return fmt.Sprintf("(%s > %s) ? %s : %s", s(0), s(1), s(0), s(1))
	}
	return "32'sd0 /* unsupported */"
}

// InputsFor assembles the module's input vector from per-value-ID data
// (node results and external inputs of the surrounding block), so callers
// can feed the module from an IR execution context.
func (m *Module) InputsFor(valueOf func(valueID int) int32) []int32 {
	out := make([]int32, len(m.Inputs))
	for i, p := range m.Inputs {
		out[i] = valueOf(p.ValueID)
	}
	return out
}
