package hwgen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

func macBlock(t testing.TB) (*ir.Block, *graph.BitSet) {
	bu := ir.NewBuilder("mac", 1)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	m := bu.Mul(a, b)
	s := bu.Add(m, acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(2)
	cut.Set(0)
	cut.Set(1)
	return blk, cut
}

func TestGenerateMAC(t *testing.T) {
	blk, cut := macBlock(t)
	model := latency.Default()
	m, err := Generate(blk, cut, model, "mac_afu")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Inputs) != 3 {
		t.Errorf("inputs = %d, want 3", len(m.Inputs))
	}
	if len(m.Outputs) != 1 {
		t.Errorf("outputs = %d, want 1", len(m.Outputs))
	}
	if m.Area() != model.Area[ir.OpMul]+model.Area[ir.OpAdd] {
		t.Errorf("area = %v", m.Area())
	}
	if m.Delay() <= 0 || m.Delay() > 2 {
		t.Errorf("delay = %v", m.Delay())
	}
	out, err := m.Eval([]int32{6, 7, 100})
	if err != nil {
		t.Fatal(err)
	}
	if out["out0"] != 142 {
		t.Errorf("6*7+100 = %d, want 142", out["out0"])
	}
}

func TestVerilogText(t *testing.T) {
	blk, cut := macBlock(t)
	m, err := Generate(blk, cut, latency.Default(), "mac afu-1")
	if err != nil {
		t.Fatal(err)
	}
	v := m.Verilog()
	for _, want := range []string{
		"module mac_afu_1 (",
		"input  wire signed [31:0] in0",
		"output wire signed [31:0] out0",
		"n0 = in0 * in1",
		"n1 = n0 + in2",
		"assign out0 = n1;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	blk, cut := macBlock(t)
	model := latency.Default()
	if _, err := Generate(blk, graph.NewBitSet(2), model, "x"); err == nil {
		t.Error("empty cut should fail")
	}
	// Non-convex cut.
	bu := ir.NewBuilder("nc", 1)
	x := bu.Input("x")
	n0 := bu.Add(x, x)
	n1 := bu.Neg(n0)
	n2 := bu.Xor(n1, n0)
	bu.LiveOut(n2)
	ncBlk := bu.MustBuild()
	nc := graph.NewBitSet(3)
	nc.Set(0)
	nc.Set(2)
	if _, err := Generate(ncBlk, nc, model, "x"); err == nil {
		t.Error("non-convex cut should fail")
	}
	// Memory node.
	bu2 := ir.NewBuilder("mem", 1)
	a := bu2.Input("a")
	ld := bu2.Load(a)
	s := bu2.Add(ld, a)
	bu2.LiveOut(s)
	memBlk := bu2.MustBuild()
	bad := graph.NewBitSet(2)
	bad.Set(0)
	bad.Set(1)
	if _, err := Generate(memBlk, bad, model, "x"); err == nil {
		t.Error("memory node should fail")
	}
	_ = blk
	_ = cut
}

func TestImmediateOperandsInVerilog(t *testing.T) {
	bu := ir.NewBuilder("imm", 1)
	x := bu.Input("x")
	v := bu.ShlI(x, 3)
	w := bu.AndI(v, 0xff)
	n := bu.SubI(w, -5) // negative immediate
	bu.LiveOut(n)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(3)
	for i := 0; i < 3; i++ {
		cut.Set(i)
	}
	m, err := Generate(blk, cut, latency.Default(), "imm")
	if err != nil {
		t.Fatal(err)
	}
	vtext := m.Verilog()
	for _, want := range []string{"32'sd3", "32'sd255", "-32'sd5"} {
		if !strings.Contains(vtext, want) {
			t.Errorf("Verilog missing immediate %q:\n%s", want, vtext)
		}
	}
	out, err := m.Eval([]int32{0x21})
	if err != nil {
		t.Fatal(err)
	}
	want := ((int32(0x21) << 3) & 0xff) - (-5)
	if out["out0"] != want {
		t.Errorf("eval = %d, want %d", out["out0"], want)
	}
}

// Property: for random blocks and random convex cuts, the generated
// netlist computes exactly the values the IR interpreter computes for the
// cut nodes.
func TestNetlistMatchesInterpreterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	model := latency.Default()
	for trial := 0; trial < 60; trial++ {
		bu := ir.NewBuilder("r", 1)
		ins := bu.Inputs(3)
		vals := append([]ir.Value{}, ins...)
		var nodeVals []ir.Value
		for i := 0; i < 4+rng.Intn(14); i++ {
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			var v ir.Value
			switch rng.Intn(10) {
			case 0:
				v = bu.Mul(a, b)
			case 1:
				v = bu.Sub(a, b)
			case 2:
				v = bu.ShrA(a, b)
			case 3:
				v = bu.Select(a, b, vals[rng.Intn(len(vals))])
			case 4:
				v = bu.Min(a, b)
			case 5:
				v = bu.CmpLT(a, b)
			case 6:
				v = bu.XorI(a, int32(rng.Intn(100)))
			default:
				v = bu.Add(a, b)
			}
			vals = append(vals, v)
			nodeVals = append(nodeVals, v)
		}
		// Mark every node live-out so any convex cut has output ports.
		bu.LiveOut(nodeVals...)
		blk := bu.MustBuild()

		// Grow a random convex cut.
		cut := graph.NewBitSet(blk.N())
		for v := 0; v < blk.N(); v++ {
			cut.Set(v)
			if !blk.DAG().IsConvex(cut) || rng.Intn(3) == 0 {
				cut.Clear(v)
			}
		}
		if cut.Empty() {
			continue
		}
		m, err := Generate(blk, cut, model, "r")
		if err != nil {
			// A cut may have zero outputs only if all values are
			// internal, which cannot happen for the last node;
			// other errors are real failures.
			t.Fatalf("trial %d: %v", trial, err)
		}

		inputs := []int32{rng.Int31(), rng.Int31(), rng.Int31()}
		irVals, err := blk.Eval(inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		modIn := m.InputsFor(func(valueID int) int32 {
			if blk.IsInputValue(valueID) {
				return inputs[valueID-blk.N()]
			}
			return irVals[valueID]
		})
		got, err := m.Eval(modIn)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Outputs {
			if got[p.Name] != irVals[p.ValueID] {
				t.Fatalf("trial %d: %s (node %d) = %d, interpreter %d",
					trial, p.Name, p.ValueID, got[p.Name], irVals[p.ValueID])
			}
		}
	}
}

func TestAreaTableCoversHWOps(t *testing.T) {
	model := latency.Default()
	for op := range model.HW {
		if op == ir.OpConst {
			continue // hard-wired constants are free
		}
		if a, ok := model.Area[op]; !ok || a <= 0 {
			t.Errorf("Area[%v] = %v, ok=%v", op, a, ok)
		}
	}
	if model.Area[ir.OpMul] < 10*model.Area[ir.OpAdd] {
		t.Error("a multiplier must dwarf an adder")
	}
}
