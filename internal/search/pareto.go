package search

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/latency"
)

// Vector is a candidate cut's score on every objective axis at once: the
// multi-objective generalization of the paper's scalar merit. Merit and
// Energy are maximized, Area is minimized; Dominates encodes that
// orientation, so callers never compare axes by hand.
type Vector struct {
	// Merit is λ(C) = latSW(C) − cycles(latHW(C)), the core cycles saved
	// per execution of the cut (maximize).
	Merit float64
	// Area is the cut's estimated AFU datapath area in NAND2-equivalent
	// gates (minimize).
	Area float64
	// Energy is the estimated per-execution energy saving: software
	// energy of the covered operations minus their AFU energy and one
	// instruction-issue overhead (maximize).
	Energy float64
}

// CutVector scores one cut on all objective axes under the model. It is a
// pure function of (block structure, model, cut), like core.MetricsOf, so
// the determinism contract extends to every vector in a result stream.
func CutVector(model *latency.Model, cut *core.Cut) Vector {
	return Vector{
		Merit:  cut.Merit(),
		Area:   eval.AFUArea(cut.Block, model, cut.Nodes),
		Energy: cutEnergySaving(model, cut),
	}
}

// Dominates reports strict Pareto dominance: v is at least as good as o on
// every axis (merit and energy high, area low) and strictly better on at
// least one.
func (v Vector) Dominates(o Vector) bool {
	if v.Merit < o.Merit || v.Area > o.Area || v.Energy < o.Energy {
		return false
	}
	return v.Merit > o.Merit || v.Area < o.Area || v.Energy > o.Energy
}

// better is the deterministic total order used to pick one winner from a
// set of mutually non-dominated vectors, and to sort frontier points for
// output: higher merit first, then smaller area, then higher energy. The
// caller breaks full ties by candidate order, which is itself
// deterministic (DESIGN.md's contract).
func (v Vector) better(o Vector) bool {
	if v.Merit != o.Merit {
		return v.Merit > o.Merit
	}
	if v.Area != o.Area {
		return v.Area < o.Area
	}
	return v.Energy > o.Energy
}

// String renders the vector for reports and error messages.
func (v Vector) String() string {
	return fmt.Sprintf("merit %.1f, area %.0f gates, energy %.2f", v.Merit, v.Area, v.Energy)
}

// FrontierPoint is one non-dominated candidate on a Frontier.
type FrontierPoint struct {
	// Block is the index of the application block the candidate was
	// identified in (0 for a single-block Engine.Run).
	Block int
	// Cut is the candidate itself.
	Cut *core.Cut
	// Vector is the candidate's score on every objective axis.
	Vector Vector
	// Selected marks points the greedy drive actually picked (and
	// froze); the rest are the trade-offs it left on the table.
	Selected bool
}

// Frontier is the cumulative Pareto frontier of a multi-objective run: the
// set of candidates examined by the search that no other examined
// candidate dominates. It is maintained by the driver goroutine only, in
// deterministic round order, so parallel and sequential runs build
// bit-identical frontiers. The zero value is an empty, unbounded frontier.
type Frontier struct {
	points []FrontierPoint
	// limit bounds the number of retained points (0 = unbounded): when
	// an insertion would exceed it, the lowest-ranked point under the
	// frontier's deterministic total order (pointLess) is evicted, so
	// huge applications cannot grow the frontier without bound. Eviction
	// is a pure function of the (deterministic) insertion sequence, so
	// bounded frontiers keep the parallel == sequential contract.
	limit int
}

// NewBoundedFrontier returns an empty frontier retaining at most max
// points (max <= 0 means unbounded, same as the zero value).
func NewBoundedFrontier(max int) *Frontier {
	if max < 0 {
		max = 0
	}
	return &Frontier{limit: max}
}

// samePoint reports whether the frontier point stands for the candidate
// identified by home block and node set — the identity under which
// re-discovered candidates (later rounds revisit unclaimed cuts)
// deduplicate.
func (p *FrontierPoint) samePoint(bi int, cut *core.Cut) bool {
	return p.Block == bi && p.Cut.Nodes.Equal(cut.Nodes)
}

// add inserts a candidate, preserving the non-dominated invariant: the
// point is dropped when an existing point dominates it (or duplicates it),
// and existing points it dominates are evicted. Insertion order is the
// driver's deterministic round order.
func (f *Frontier) add(bi int, cut *core.Cut, v Vector) {
	for i := range f.points {
		if f.points[i].Vector.Dominates(v) || f.points[i].samePoint(bi, cut) {
			return
		}
	}
	kept := f.points[:0]
	for _, p := range f.points {
		if !v.Dominates(p.Vector) {
			kept = append(kept, p)
		}
	}
	f.points = append(kept, FrontierPoint{Block: bi, Cut: cut, Vector: v})
	if f.limit > 0 && len(f.points) > f.limit {
		f.evictWorst()
	}
}

// evictWorst drops the lowest-ranked point under pointLess — the same
// total order Points() sorts by, so the bounded frontier is always the
// top-limit prefix of the unbounded ordering restricted to survivors.
func (f *Frontier) evictWorst() {
	wi := 0
	for i := 1; i < len(f.points); i++ {
		if pointLess(&f.points[wi], &f.points[i]) {
			wi = i
		}
	}
	f.points = append(f.points[:wi], f.points[wi+1:]...)
}

// pointLess is the deterministic total order on frontier points: best
// merit first, then smaller area, then higher energy, then block index,
// then node-set order. Two distinct points never compare equal (identical
// vector, block and node set would have deduplicated on add).
func pointLess(a, b *FrontierPoint) bool {
	if a.Vector != b.Vector {
		return a.Vector.better(b.Vector)
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	return a.Cut.Nodes.String() < b.Cut.Nodes.String()
}

// markSelected flags the point matching the picked cut, if it is still on
// the frontier (a selected cut can later be dominated by a discovery in
// another round; honest Pareto reporting drops it then).
func (f *Frontier) markSelected(bi int, cut *core.Cut) {
	for i := range f.points {
		if f.points[i].samePoint(bi, cut) {
			f.points[i].Selected = true
			return
		}
	}
}

// Len returns the number of non-dominated points.
func (f *Frontier) Len() int { return len(f.points) }

// Points returns the frontier sorted deterministically: best merit first,
// then smaller area, then higher energy, then block index, then node-set
// order. The slice is a copy; mutating it does not affect the frontier.
func (f *Frontier) Points() []FrontierPoint {
	out := append([]FrontierPoint(nil), f.points...)
	sort.Slice(out, func(i, j int) bool { return pointLess(&out[i], &out[j]) })
	return out
}

// Pareto returns the multi-objective selector: candidates are scored as
// (merit, area, energy) Vectors, each round's winner is chosen from the
// round's non-dominated set by the deterministic total order (highest
// merit, then smallest area, then highest energy, then candidate order),
// and every non-dominated candidate examined accumulates on the run's
// Frontier (returned in Stats.Frontier).
//
// The deterministic tie-break keeps DESIGN.md's contract: parallel and
// sequential runs select the same cuts and build bit-identical frontiers.
// Like Merit, the model may be left nil when the objective is used through
// Runner.Generate, which resolves it from the Config.
func Pareto(model *latency.Model) *Objective {
	return &Objective{Name: "pareto", Model: model, pareto: true}
}

// ParetoBounded is Pareto with a frontier size bound: the run's Frontier
// retains at most maxFrontier points, evicting the lowest-ranked one
// deterministically (see Frontier). maxFrontier <= 0 means unbounded.
func ParetoBounded(model *latency.Model, maxFrontier int) *Objective {
	o := Pareto(model)
	if maxFrontier > 0 {
		o.maxFrontier = maxFrontier
	}
	return o
}

// paretoPick implements pick for multi-objective selection: the best
// point, by the deterministic total order, among the round's non-dominated
// candidates. All non-dominated candidates are recorded on fr (when
// non-nil) before the winner is chosen.
func (o *Objective) paretoPick(bi int, cands []*core.Cut, fr *Frontier) *core.Cut {
	vecs := make([]Vector, len(cands))
	for i, c := range cands {
		vecs[i] = CutVector(o.Model, c)
	}
	var best *core.Cut
	var bestVec Vector
	for i, c := range cands {
		dominated := false
		for j := range cands {
			if j != i && vecs[j].Dominates(vecs[i]) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		if fr != nil {
			fr.add(bi, c, vecs[i])
		}
		if best == nil || vecs[i].better(bestVec) {
			best, bestVec = c, vecs[i]
		}
	}
	return best
}
