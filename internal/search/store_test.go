package search

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/latency"
)

// reparse round-trips the application through dfgio, yielding structurally
// identical blocks at fresh pointer identities — exactly what a second
// upload of the same .dfg file looks like to the service.
func reparse(t *testing.T, app *ir.Application) *ir.Application {
	t.Helper()
	var sb strings.Builder
	if err := dfgio.WriteApplication(&sb, app); err != nil {
		t.Fatal(err)
	}
	got, err := dfgio.ParseApplication(app.Name, strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func generateWith(t *testing.T, cache *CostCache, app *ir.Application) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = 4, 2, 4
	r := &Runner{Workers: 1, Cache: cache}
	if _, _, err := r.Generate(app, cfg, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentCacheSharesAcrossParses(t *testing.T) {
	app := kernels.Fbital00()
	cache := NewPersistentCostCache(nil) // content-keyed, memory-only
	generateWith(t, cache, app)
	h1, m1 := cache.Stats()
	if m1 == 0 {
		t.Fatal("first run computed nothing")
	}
	generateWith(t, cache, reparse(t, app))
	h2, m2 := cache.Stats()
	if m2 != m1 {
		t.Fatalf("re-upload recomputed %d costings; content keying should hit every one", m2-m1)
	}
	if h2 <= h1 {
		t.Fatal("re-upload produced no cache hits")
	}
}

func TestPointerKeyedCacheDoesNotShareAcrossParses(t *testing.T) {
	app := kernels.Fbital00()
	cache := NewCostCache()
	generateWith(t, cache, app)
	_, m1 := cache.Stats()
	generateWith(t, cache, reparse(t, app))
	_, m2 := cache.Stats()
	if m2 == m1 {
		t.Fatal("pointer-keyed cache unexpectedly shared entries across parses")
	}
}

func TestPersistentCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	app := kernels.Fbital00()

	store1, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewPersistentCostCache(store1)
	generateWith(t, c1, app)
	_, misses1 := c1.Stats()
	if err := c1.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := store1.Stats(); st.Saves == 0 {
		t.Fatal("Flush persisted nothing")
	}

	// "Restart": a brand-new store and cache over the same directory.
	store2, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewPersistentCostCache(store2)
	generateWith(t, c2, reparse(t, app))
	hits2, misses2 := c2.Stats()
	if misses2 != 0 {
		t.Fatalf("post-restart run recomputed %d costings (of %d); disk cache should cover all", misses2, misses1)
	}
	if hits2 == 0 {
		t.Fatal("post-restart run produced no hits")
	}
}

func TestFlushIsIdempotentAndSkipsClean(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPersistentCostCache(store)
	generateWith(t, c, kernels.Fbital00())
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	saves := store.Stats().Saves
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Saves; got != saves {
		t.Fatalf("second Flush wrote %d more files despite no new entries", got-saves)
	}
}

func TestStoreEvictionBoundsSize(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 4096
	store, err := NewStore(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	entry := map[string]core.Metrics{}
	for i := 0; i < 40; i++ {
		entry[strings.Repeat("k", 20)+string(rune('a'+i))] = core.Metrics{SWLat: i}
	}
	entryName := func(key string) string { return key + ".v2.gob" }
	for i := 0; i < 16; i++ {
		key := "block" + string(rune('a'+i))
		if err := store.Save(key, entry); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well defined even on coarse
		// filesystem timestamp granularity.
		old := time.Now().Add(time.Duration(i-16) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, entryName(key)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// One more save triggers eviction of the oldest entries.
	if err := store.Save("blockzz", entry); err != nil {
		t.Fatal(err)
	}
	var total int64
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := map[string]bool{}
	for _, de := range dirents {
		fi, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		kept[de.Name()] = true
	}
	if total > maxBytes {
		t.Fatalf("store holds %d bytes, bound is %d", total, maxBytes)
	}
	if !kept[entryName("blockzz")] {
		t.Fatal("most recent entry was evicted")
	}
	if kept[entryName("blocka")] {
		t.Fatal("least recently used entry survived eviction")
	}
	if store.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}

	// Evicted entries simply miss; surviving ones load.
	if _, ok := store.Load("blocka"); ok {
		t.Fatal("evicted entry still loads")
	}
	if m, ok := store.Load("blockzz"); !ok || len(m) != len(entry) {
		t.Fatalf("surviving entry load = (%d entries, %v), want %d", len(m), ok, len(entry))
	}
}

// TestStoreVersionedEntries pins the staleness guard: entries written
// under a different (older) format name are never loaded — they read as
// misses and are recomputed rather than served as stale costings.
func TestStoreVersionedEntries(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", map[string]core.Metrics{"c": {SWLat: 1}}); err != nil {
		t.Fatal(err)
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 1 || !strings.Contains(dirents[0].Name(), ".v2.") {
		t.Fatalf("entry files %v, want one name embedding the format version", dirents)
	}
	// An unversioned file from a hypothetical older binary is ignored.
	if err := os.WriteFile(filepath.Join(dir, "old.gob"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load("old"); ok {
		t.Fatal("unversioned legacy entry was served")
	}
}

func TestFlushRetriesAfterSaveFailure(t *testing.T) {
	dir := t.TempDir()
	// ProbeEvery 1: every Save while degraded goes to disk as a recovery
	// probe, so the healed directory is noticed on the first post-recovery
	// Flush no matter how many entries tripped the write breaker.
	store, err := NewStoreOptions(dir, 0, StoreOptions{ProbeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewPersistentCostCache(store)
	generateWith(t, c, kernels.Fbital00())
	// Break the store (directory gone -> CreateTemp fails), flush, then
	// heal it: the entries must still be dirty and persist on retry.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush over a missing directory reported success")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) == 0 {
		t.Fatal("recovered Flush persisted nothing; dirty flag was lost on failure")
	}
}

func TestPersistentCachePointerMemoBounded(t *testing.T) {
	c := NewPersistentCostCache(nil)
	model := latency.Default()
	build := func() *ir.Block {
		b := ir.NewBuilder("same", 1)
		x, y := b.Input("x"), b.Input("y")
		b.LiveOut(b.Add(x, y))
		return b.MustBuild()
	}
	cut := func(blk *ir.Block) {
		s := graph.NewBitSet(blk.N())
		s.Set(0)
		c.Metrics(blk, model, s)
	}
	for i := 0; i < maxPointerAliases+64; i++ {
		cut(build()) // fresh pointer, identical content, every iteration
	}
	c.mu.RLock()
	nPtr, nKey := len(c.blocks), len(c.byKey)
	c.mu.RUnlock()
	if nPtr > maxPointerAliases {
		t.Fatalf("pointer memo holds %d entries, bound is %d", nPtr, maxPointerAliases)
	}
	if nKey != 1 {
		t.Fatalf("byKey holds %d entries for one distinct block, want 1", nKey)
	}
	if hits, _ := c.Stats(); hits == 0 {
		t.Fatal("identical re-parsed blocks produced no hits")
	}
}

// TestPersistentCacheByKeyBoundedWithoutStore pins the memory bound of
// the server-default configuration (content-keyed, no disk store): the
// per-content costing maps must not accumulate one entry per distinct
// uploaded block forever.
func TestPersistentCacheByKeyBoundedWithoutStore(t *testing.T) {
	c := NewPersistentCostCache(nil)
	model := latency.Default()
	for i := 0; i < maxBlockCaches+64; i++ {
		b := ir.NewBuilder("b", 1)
		x := b.Input("x")
		b.LiveOut(b.Add(x, b.Imm(int32(i)))) // distinct content per block
		blk := b.MustBuild()
		s := graph.NewBitSet(blk.N())
		s.Set(0)
		c.Metrics(blk, model, s)
	}
	c.mu.RLock()
	n := len(c.byKey)
	c.mu.RUnlock()
	if n > maxBlockCaches {
		t.Fatalf("byKey holds %d costing maps, bound is %d", n, maxBlockCaches)
	}
}

func TestModelFingerprintDistinguishesModels(t *testing.T) {
	a := latency.Default()
	b := latency.Default()
	if ModelFingerprint(a) != ModelFingerprint(b) {
		t.Fatal("identical models fingerprint differently")
	}
	b.SW[1] += 5
	if ModelFingerprint(a) == ModelFingerprint(b) {
		t.Fatal("modified model fingerprints equal")
	}
}
