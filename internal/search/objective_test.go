package search_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/search"
)

// TestObjectiveRegistryRoundTrip pins the registry contract mirrored from
// the engine registry: every advertised name constructs with reasonable
// parameters and drives a full cuts-only run on a small application.
func TestObjectiveRegistryRoundTrip(t *testing.T) {
	app := kernels.Conven00()
	params := search.ObjectiveParams{
		LatencyBudget: 2,
		ClassWeights:  map[string]float64{"memory": 0.5},
	}
	names := search.ObjectiveNames()
	if len(names) < 7 {
		t.Fatalf("objective registry lists %v, want at least the 7 documented names", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			obj, err := search.NewObjective(name, app, latency.Default(), params)
			if err != nil {
				t.Fatalf("NewObjective(%q): %v", name, err)
			}
			cfg := core.DefaultConfig()
			r := &search.Runner{}
			cuts, stats, err := r.Generate(app, cfg, obj, nil)
			if err != nil {
				t.Fatalf("Generate under %q: %v", name, err)
			}
			if len(cuts) == 0 {
				t.Fatalf("objective %q selected no cuts on conven00", name)
			}
			if (stats.Frontier != nil) != obj.MultiObjective() {
				t.Fatalf("objective %q: frontier presence %v, MultiObjective %v",
					name, stats.Frontier != nil, obj.MultiObjective())
			}
		})
	}
}

// TestObjectiveRegistryErrors pins the failure modes: unknown names list
// the registry, application-scoped objectives demand an application, and
// "latency" demands a budget.
func TestObjectiveRegistryErrors(t *testing.T) {
	model := latency.Default()
	app := kernels.Conven00()
	if _, err := search.NewObjective("speedup", app, model, search.ObjectiveParams{}); err == nil || !strings.Contains(err.Error(), "unknown objective") {
		t.Fatalf("unknown name: err = %v", err)
	}
	for _, name := range []string{"reuse", "energy", "class"} {
		if _, err := search.NewObjective(name, nil, model, search.ObjectiveParams{}); err == nil || !strings.Contains(err.Error(), "application") {
			t.Fatalf("%q without app: err = %v", name, err)
		}
	}
	if _, err := search.NewObjective("latency", app, model, search.ObjectiveParams{}); err == nil || !strings.Contains(err.Error(), "latency budget") {
		t.Fatalf("latency without budget: err = %v", err)
	}
}

// TestLatencyBudgetedObjective pins the budget semantics: every selected
// cut's AFU occupies at most the budget in core cycles, and a tiny budget
// selects a subset of (or different, smaller) cuts than unconstrained
// merit.
func TestLatencyBudgetedObjective(t *testing.T) {
	app := kernels.Fbital00()
	cfg := core.DefaultConfig()
	r := &search.Runner{}
	cuts, _, err := r.Generate(app, cfg, search.LatencyBudgeted(cfg.Model, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts under a 1-cycle budget; fbital00 has single-cycle candidates")
	}
	for _, c := range cuts {
		if c.HWCyclesInt() > 1 {
			t.Fatalf("cut %v occupies %d cycles, budget 1", c.Nodes, c.HWCyclesInt())
		}
	}
	merit, _, err := r.Generate(app, cfg, search.Merit(cfg.Model), nil)
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, c := range merit {
		if c.HWCyclesInt() > 1 {
			over++
		}
	}
	if over == 0 {
		t.Skip("merit run found no multi-cycle cut; budget comparison is vacuous")
	}
}

// TestClassWeightedObjective pins the weighting semantics: zeroing a
// class's weight excludes its blocks from selection.
func TestClassWeightedObjective(t *testing.T) {
	app := kernels.ADPCMDecoder()
	classes := map[*ir.Block]string{}
	for _, blk := range app.Blocks {
		classes[blk] = search.BlockClass(blk)
	}
	// Zero out the class of the critical (largest) block.
	hot := app.Blocks[0]
	for _, blk := range app.Blocks {
		if blk.N() > hot.N() {
			hot = blk
		}
	}
	weights := map[string]float64{classes[hot]: 0}
	cfg := core.DefaultConfig()
	r := &search.Runner{}
	cuts, _, err := r.Generate(app, cfg, search.ClassWeighted(app, cfg.Model, nil, weights), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cuts {
		if classes[c.Block] == classes[hot] {
			t.Fatalf("cut %v selected in zero-weighted class %q block %q", c.Nodes, classes[hot], c.Block.Name)
		}
	}
}
