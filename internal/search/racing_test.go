package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/latency"
)

// racingFingerprint serializes a result for bit-identity checks.
func racingFingerprint(cuts []*core.Cut) string {
	var sb strings.Builder
	for i, c := range cuts {
		fmt.Fprintf(&sb, "cut %d: %v merit=%v io=(%d,%d) sw=%d hw=%v\n",
			i, c.Nodes, c.Merit(), c.NumIn, c.NumOut, c.SWLat, c.HWLat)
	}
	return sb.String()
}

// racingRandBlock mirrors the random-block generator of the core and exact
// test suites.
func racingRandBlock(rng *rand.Rand, n int) *ir.Block {
	bu := ir.NewBuilder("rand", 1)
	ins := bu.Inputs(2 + rng.Intn(3))
	vals := append([]ir.Value{}, ins...)
	for i := 0; i < n; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		var v ir.Value
		switch rng.Intn(10) {
		case 0:
			v = bu.Mul(a, b)
		case 1:
			v = bu.Xor(a, b)
		case 2:
			v = bu.Shl(a, b)
		case 3:
			v = bu.Sub(a, b)
		case 4:
			v = bu.Load(a)
		default:
			v = bu.Add(a, b)
		}
		vals = append(vals, v)
	}
	bu.LiveOut(vals[len(vals)-1])
	return bu.MustBuild()
}

// checkRaceStream asserts the published event stream is well-formed:
// strictly merit-monotone, every anytime event before the single optimal
// event (if any), which must be last.
func checkRaceStream(t *testing.T, label string, events []RaceEvent) {
	t.Helper()
	last := 0.0
	for i, ev := range events {
		switch ev.Stage {
		case "optimal":
			if i != len(events)-1 {
				t.Fatalf("%s: optimal event at %d of %d, want last", label, i, len(events))
			}
			if ev.Merit < last {
				t.Fatalf("%s: optimal merit %v below anytime merit %v", label, ev.Merit, last)
			}
		case "anytime":
			if ev.Merit <= last && i > 0 {
				t.Fatalf("%s: anytime event %d merit %v does not improve on %v", label, i, ev.Merit, last)
			}
			if len(ev.Cuts) == 0 {
				t.Fatalf("%s: anytime event %d carries no cuts", label, i)
			}
		default:
			t.Fatalf("%s: unknown stage %q", label, ev.Stage)
		}
		last = ev.Merit
	}
}

// TestRacingEquivalence pins the tentpole contract: the undeadlined racer
// returns cuts bit-identical to the exact engine alone, on every in-limit
// kernel block, across K-L worker counts and exact subtree worker counts,
// with Optimal set and a well-formed event stream closing on the answer.
// Run under -race: the K-L goroutine publishes into the bound the exact
// workers prune against.
func TestRacingEquivalence(t *testing.T) {
	model := latency.Default()
	obj := Merit(model)
	for _, spec := range kernels.All() {
		if spec.CriticalSize > DefaultNodeLimit("racing") {
			continue
		}
		blk := spec.App.Blocks[0]
		exactEng := &ExactJoint{}
		baseLim := Limits{
			MaxIn: 4, MaxOut: 2, NISE: 4,
			NodeLimit: DefaultNodeLimit("exact"), Budget: DefaultBudget,
		}
		refCuts, refStats, err := exactEng.Run(blk, obj, &baseLim)
		if err != nil {
			t.Fatalf("%s exact: %v", spec.Name, err)
		}
		if !refStats.Optimal {
			t.Fatalf("%s exact: completed run not marked Optimal", spec.Name)
		}
		ref := racingFingerprint(refCuts)
		for _, klW := range []int{1, 0} {
			for _, subW := range []int{0, 3} {
				var events []RaceEvent
				racer := &Racing{Cache: NewCostCache(), OnEvent: func(ev RaceEvent) { events = append(events, ev) }}
				lim := baseLim
				lim.Workers, lim.SubtreeWorkers = klW, subW
				cuts, stats, err := racer.Run(blk, obj, &lim)
				label := fmt.Sprintf("%s klW=%d subW=%d", spec.Name, klW, subW)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got := racingFingerprint(cuts); got != ref {
					t.Fatalf("%s diverged from exact\n--- got\n%s--- want\n%s", label, got, ref)
				}
				if !stats.Optimal {
					t.Fatalf("%s: undeadlined racing run not marked Optimal", label)
				}
				if stats.Explored <= 0 {
					t.Fatalf("%s: Explored = %d, want > 0", label, stats.Explored)
				}
				checkRaceStream(t, label, events)
				if len(events) == 0 || events[len(events)-1].Stage != "optimal" {
					t.Fatalf("%s: stream did not close with an optimal event: %v", label, events)
				}
				if fin := events[len(events)-1]; racingFingerprint(fin.Cuts) != ref {
					t.Fatalf("%s: optimal event cuts differ from the returned answer", label)
				}
			}
		}
	}
}

// TestRacingSeedObserved: on random blocks where K-L wins the race (the
// exact side is held to the sequential path on a non-trivial block), Stats
// records the seed publication and the seeded run explores no more nodes
// than an unseeded exact run.
func TestRacingSeedObserved(t *testing.T) {
	model := latency.Default()
	obj := Merit(model)
	rng := rand.New(rand.NewSource(20260808))
	seeded := false
	for trial := 0; trial < 8 && !seeded; trial++ {
		blk := racingRandBlock(rng, 16+rng.Intn(6))
		lim := Limits{MaxIn: 4, MaxOut: 2, NISE: 4, Budget: DefaultBudget}
		exactEng := &ExactJoint{}
		refCuts, refStats, err := exactEng.Run(blk, obj, &lim)
		if err != nil {
			t.Fatal(err)
		}
		racer := &Racing{Cache: NewCostCache()}
		cuts, stats, err := racer.Run(blk, obj, &lim)
		if err != nil {
			t.Fatal(err)
		}
		if racingFingerprint(cuts) != racingFingerprint(refCuts) {
			t.Fatalf("trial %d: racing diverged from exact", trial)
		}
		if stats.BoundRaises > 0 {
			seeded = true
			if stats.SeedBound <= 0 {
				t.Fatalf("trial %d: %d raises but SeedBound = %v", trial, stats.BoundRaises, stats.SeedBound)
			}
			if stats.Explored > refStats.Explored {
				t.Fatalf("trial %d: seeded race explored %d nodes, unseeded exact %d",
					trial, stats.Explored, refStats.Explored)
			}
		}
	}
	if !seeded {
		t.Fatal("K-L never published a seed across 8 random blocks — the race is not racing")
	}
}

// TestRacingDeadline pins the anytime semantics: on a block the exact
// search cannot finish (no node limit, no budget), a deadlined racer
// returns K-L's answer as best-so-far — nil error, Optimal false, the
// stream holding only anytime events matching the returned cuts — and
// leaks no goroutines.
func TestRacingDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	blk := racingRandBlock(rng, 60) // intractable for the joint search
	model := latency.Default()
	obj := Merit(model)
	base := runtime.NumGoroutine()
	var events []RaceEvent
	racer := &Racing{Cache: NewCostCache(), OnEvent: func(ev RaceEvent) { events = append(events, ev) }}
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 4, Deadline: 2 * time.Second}
	start := time.Now()
	cuts, stats, err := racer.Run(blk, obj, lim)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadlined race: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("deadline of %v enforced only after %v", lim.Deadline, elapsed)
	}
	if stats.Optimal {
		t.Fatal("deadlined run marked Optimal")
	}
	// A 60-node block is milliseconds for K-L, so the 2s deadline always
	// leaves a complete heuristic answer.
	if len(cuts) == 0 {
		t.Fatal("deadlined race returned no cuts despite a completed K-L run")
	}
	checkRaceStream(t, "deadline", events)
	for _, ev := range events {
		if ev.Stage == "optimal" {
			t.Fatal("deadlined run published an optimal event")
		}
	}
	if len(events) == 0 {
		t.Fatal("deadlined run published no anytime answer")
	}
	fin := events[len(events)-1]
	if racingFingerprint(fin.Cuts) != racingFingerprint(cuts) {
		t.Fatal("last anytime event differs from the returned best-so-far answer")
	}
	if stats.SeedBound <= 0 || stats.BoundRaises == 0 {
		t.Fatalf("completed K-L run did not register as a seed: SeedBound=%v raises=%d",
			stats.SeedBound, stats.BoundRaises)
	}
	waitGoroutines(t, base)
}

// TestRacingExactWinsGated makes "exact finishes first" deterministic: the
// K-L racer is gated on the optimal event, so the stream must hold exactly
// that one event, no seed is recorded, and the result still matches the
// exact engine.
func TestRacingExactWinsGated(t *testing.T) {
	model := latency.Default()
	obj := Merit(model)
	spec := kernels.All()[0]
	var blk *ir.Block
	for _, s := range kernels.All() {
		if s.CriticalSize <= 25 {
			spec, blk = s, s.App.Blocks[0]
			break
		}
	}
	if blk == nil {
		t.Skip("no in-limit kernel block")
	}
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 4, Budget: DefaultBudget}
	exactEng := &ExactJoint{}
	refCuts, _, err := exactEng.Run(blk, obj, lim)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var events []RaceEvent
	racer := &Racing{Cache: NewCostCache()}
	racer.OnEvent = func(ev RaceEvent) {
		events = append(events, ev)
		if ev.Stage == "optimal" {
			close(gate) // release the heuristic racers only after the proof landed
		}
	}
	racer.gate = func() { <-gate }
	cuts, stats, err := racer.Run(blk, obj, lim)
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	if racingFingerprint(cuts) != racingFingerprint(refCuts) {
		t.Fatalf("%s: gated race diverged from exact", spec.Name)
	}
	if !stats.Optimal {
		t.Fatal("exact-won race not marked Optimal")
	}
	if stats.SeedBound != 0 || stats.BoundRaises != 0 {
		t.Fatalf("K-L never ran, yet SeedBound=%v raises=%d", stats.SeedBound, stats.BoundRaises)
	}
	if len(events) != 1 || events[0].Stage != "optimal" {
		t.Fatalf("events = %+v, want exactly one optimal event", events)
	}
}

// TestRacingParentCancel: cancelling the caller's context mid-race returns
// ctx.Err() (not a best-so-far answer), even with a pending deadline, and
// joins the K-L goroutine.
func TestRacingParentCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blk := racingRandBlock(rng, 60)
	model := latency.Default()
	base := runtime.NumGoroutine()
	racer := &Racing{Cache: NewCostCache()}
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 4, Deadline: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	cuts, stats, err := racer.RunContext(ctx, blk, Merit(model), lim)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cuts != nil {
		t.Fatalf("cancelled race returned cuts: %v", cuts)
	}
	if stats.Optimal {
		t.Fatal("cancelled race marked Optimal")
	}
	waitGoroutines(t, base)
	cancel()
}

// TestRacingRejectsOversized: the racer refuses blocks beyond the node
// limit up front, exactly like the exact engine it fronts.
func TestRacingRejectsOversized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	blk := racingRandBlock(rng, 40)
	racer := &Racing{}
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 4, NodeLimit: 25}
	if _, _, err := racer.Run(blk, Merit(latency.Default()), lim); err == nil {
		t.Fatal("oversized block accepted")
	}
}

// TestRacingRejectsNonMerit: like the exact engines, the racer optimizes
// merit and rejects custom-scored objectives instead of ignoring them.
func TestRacingRejectsNonMerit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	blk := racingRandBlock(rng, 10)
	model := latency.Default()
	racer := &Racing{}
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 2}
	if _, _, err := racer.Run(blk, AreaWeighted(model, DefaultGatePenalty), lim); err == nil {
		t.Fatal("area objective accepted by the racing engine")
	}
}
