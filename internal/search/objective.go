package search

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// Scorer ranks candidate cuts during a multi-cut drive. It may inspect the
// per-block excluded sets (e.g. to count claimable reuse instances) but
// must not modify them. A non-positive score rejects the candidate.
type Scorer func(blockIdx int, cut *core.Cut, excluded []*graph.BitSet) float64

// Objective is the pluggable goal function of a search: the latency model
// every engine costs cuts with, plus an optional candidate scorer. A nil
// Score selects the maximum-merit candidate — the paper's single gain
// function; the constructors below open further scenarios (reuse-aware,
// area-weighted, energy-weighted, latency-budgeted, class-weighted, and
// multi-objective Pareto selection) without touching any engine.
// NewObjective constructs them by registry name, mirroring the engine
// registry.
type Objective struct {
	// Name labels the objective in reports.
	Name string
	// Model supplies software/hardware latencies, energy and area.
	Model *latency.Model
	// Score ranks candidates; nil picks maximum merit. When an
	// objective is used through a per-block Engine.Run, the scorer is
	// invoked with blockIdx 0 and a single-element excluded slice;
	// application-scoped objectives (marked by their constructors) are
	// rejected there and only valid with Runner.Generate.
	Score Scorer

	// appScoped marks scorers that index into a whole application
	// (block frequencies, cross-block reuse) and therefore cannot run
	// through a per-block engine.
	appScoped bool
	// pareto marks multi-objective dominance selection (see Pareto):
	// candidates are scored as Vectors and the run accumulates a
	// Frontier instead of ranking by one scalar.
	pareto bool
	// maxFrontier bounds the run's Frontier (pareto only; 0 = unbounded;
	// see ParetoBounded and Limits.MaxFrontier).
	maxFrontier int
}

// AppScoped reports whether the objective needs application context and
// is only usable with Runner.Generate.
func (o *Objective) AppScoped() bool { return o != nil && o.appScoped }

// MultiObjective reports whether the objective selects by Pareto
// dominance over (merit, area, energy) vectors rather than a scalar
// score. Multi-objective runs return their Frontier in Stats.Frontier.
func (o *Objective) MultiObjective() bool { return o != nil && o.pareto }

// pick selects the best-scoring candidate from a merit-sorted pool, or nil
// when every candidate is rejected. With a nil scorer the head of the pool
// (maximum merit) wins, matching the paper's selection rule; a Pareto
// objective selects by dominance and records the round's non-dominated
// candidates on fr (when non-nil).
func (o *Objective) pick(blockIdx int, cands []*core.Cut, excluded []*graph.BitSet, fr *Frontier) *core.Cut {
	if len(cands) == 0 {
		return nil
	}
	if o != nil && o.pareto {
		return o.paretoPick(blockIdx, cands, fr)
	}
	if o == nil || o.Score == nil {
		return cands[0]
	}
	bestScore := 0.0
	var best *core.Cut
	for _, c := range cands {
		if s := o.Score(blockIdx, c, excluded); s > bestScore {
			bestScore = s
			best = c
		}
	}
	return best
}

// Merit is the paper's objective: select the feasible cut with the highest
// merit λ(C) = latSW(C) − cycles(latHW(C)).
func Merit(model *latency.Model) *Objective {
	return &Objective{Name: "merit", Model: model}
}

// ReuseAware implements the paper's Figure 1 principle: a candidate is
// worth its merit times the number of disjoint schedulable instances the
// claimer could claim for it, weighted by block frequency — many small
// reusable cuts beat one large single-use cut. The claimer must be the
// same one the driver claims through, so scoring sees claimed state.
func ReuseAware(app *ir.Application, model *latency.Model, claimer *eval.Claimer) *Objective {
	return &Objective{
		Name:  "reuse-aware",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			n := claimer.CountInstances(bi, cut, excluded)
			return float64(n) * cut.Merit() * app.Blocks[bi].Freq
		},
		appScoped: true,
	}
}

// AreaWeighted discounts merit by the cut's estimated AFU datapath area:
// score = merit − gatePenalty × area(C), in NAND2-equivalent gates. With a
// small gatePenalty it breaks merit ties toward cheaper silicon; larger
// values model an area-constrained deployment where big AFUs must buy
// proportionally more cycles.
func AreaWeighted(model *latency.Model, gatePenalty float64) *Objective {
	return &Objective{
		Name:  "area-weighted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			return cut.Merit() - gatePenalty*eval.AFUArea(cut.Block, model, cut.Nodes)
		},
	}
}

// issueOverheadEnergy is the per-execution energy charged for issuing one
// ISE instruction, shared by the energy objective and the vector scoring
// of Pareto selection (CutVector).
const issueOverheadEnergy = 1.0

// cutEnergySaving is the estimated per-execution energy saving of a cut:
// software energy of the covered operations minus their AFU energy and
// one instruction-issue overhead. It is the single energy model behind
// both EnergyWeighted scoring and the Energy axis of CutVector, so the
// scalar objective and the reported vectors can never drift apart.
func cutEnergySaving(model *latency.Model, cut *core.Cut) float64 {
	saved := -issueOverheadEnergy
	cut.Nodes.ForEach(func(v int) bool {
		op := cut.Block.Nodes[v].Op
		saved += model.SWEnergy[op] - model.HWEnergy[op]
		return true
	})
	return saved
}

// EnergyWeighted scores a candidate by its estimated per-execution energy
// saving (software energy of the covered operations minus their AFU energy
// and one instruction-issue overhead), weighted by block frequency — the
// Section 6 energy scenario as a first-class objective.
func EnergyWeighted(app *ir.Application, model *latency.Model) *Objective {
	return &Objective{
		Name:  "energy-weighted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			return cutEnergySaving(model, cut) * app.Blocks[bi].Freq
		},
		appScoped: true,
	}
}

// LatencyBudgeted restricts selection to cuts whose AFU occupies the core
// for at most budget cycles, picking maximum merit among those — the
// latency-budgeted deployment where a long multi-cycle AFU would stall
// the issue stage or miss a pipeline timing window.
func LatencyBudgeted(model *latency.Model, budget int) *Objective {
	return &Objective{
		Name:  "latency-budgeted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			if cut.HWCyclesInt() > budget {
				return 0
			}
			return cut.Merit()
		},
	}
}

// BlockClass is the default block classifier used by ClassWeighted:
// "memory" for blocks containing loads or stores, "compute" otherwise.
// Memory blocks interleave AFU candidates with barriers, so deployments
// often weight the two classes differently.
func BlockClass(blk *ir.Block) string {
	for i := range blk.Nodes {
		if blk.Nodes[i].Op.IsMem() {
			return "memory"
		}
	}
	return "compute"
}

// ClassWeighted weights a candidate's merit by the class of its home block
// and the block's execution frequency: score = merit × weight(class) ×
// freq. Classes come from classOf (nil selects BlockClass); classes absent
// from weights default to 1, and a zero weight excludes a class entirely.
// This is the per-block-class weighting scenario: e.g. steer the AFU
// budget toward compute-bound blocks with {"memory": 0.5}.
func ClassWeighted(app *ir.Application, model *latency.Model, classOf func(*ir.Block) string, weights map[string]float64) *Objective {
	if classOf == nil {
		classOf = BlockClass
	}
	w := make([]float64, len(app.Blocks))
	for i, blk := range app.Blocks {
		w[i] = 1
		if v, ok := weights[classOf(blk)]; ok {
			w[i] = v
		}
	}
	return &Objective{
		Name:  "class-weighted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			return cut.Merit() * w[bi] * app.Blocks[bi].Freq
		},
		appScoped: true,
	}
}

// ObjectiveParams carries the per-objective parameters of registry
// construction (NewObjective). The zero value selects every default; only
// the "latency" objective has a required parameter.
type ObjectiveParams struct {
	// GatePenalty is the "area" objective's merit discount per
	// NAND2-equivalent gate (0 selects DefaultGatePenalty).
	GatePenalty float64
	// LatencyBudget is the "latency" objective's bound on AFU cycles
	// per ISE; it must be positive for that objective.
	LatencyBudget int
	// ClassWeights maps block classes to merit multipliers for the
	// "class" objective (absent classes weigh 1).
	ClassWeights map[string]float64
	// ClassOf overrides the "class" objective's block classifier
	// (nil selects BlockClass).
	ClassOf func(*ir.Block) string
	// MaxFrontier bounds the "pareto" objective's cumulative frontier
	// (0 = unbounded); the lowest-ranked point is evicted
	// deterministically when the bound would be exceeded.
	MaxFrontier int
}

// DefaultGatePenalty is the "area" objective's default merit discount per
// NAND2-equivalent gate: small enough that it acts as a tie-break toward
// cheaper silicon rather than vetoing large high-merit cuts (typical cut
// areas run 10²–10⁴ gates against merits of 1–20 cycles).
const DefaultGatePenalty = 1e-4

// objectiveFactories maps registry names (the CLI and query-parameter
// spellings) to constructors, mirroring engineFactories. app may be nil
// for block-local objectives; application-scoped ones reject that.
var objectiveFactories = map[string]func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error){
	"merit": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		return Merit(model), nil
	},
	"reuse": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		if app == nil {
			return nil, fmt.Errorf("search: objective \"reuse\" needs an application")
		}
		return ReuseAware(app, model, eval.NewClaimer(app)), nil
	},
	"area": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		gp := p.GatePenalty
		if gp == 0 {
			gp = DefaultGatePenalty
		}
		return AreaWeighted(model, gp), nil
	},
	"energy": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		if app == nil {
			return nil, fmt.Errorf("search: objective \"energy\" needs an application")
		}
		return EnergyWeighted(app, model), nil
	},
	"latency": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		if p.LatencyBudget <= 0 {
			return nil, fmt.Errorf("search: objective \"latency\" needs a positive latency budget (got %d)", p.LatencyBudget)
		}
		return LatencyBudgeted(model, p.LatencyBudget), nil
	},
	"class": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		if app == nil {
			return nil, fmt.Errorf("search: objective \"class\" needs an application")
		}
		return ClassWeighted(app, model, p.ClassOf, p.ClassWeights), nil
	},
	"pareto": func(app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
		return ParetoBounded(model, p.MaxFrontier), nil
	},
}

// NewObjective constructs the named objective from the registry ("merit",
// "reuse", "area", "energy", "latency", "class", "pareto"), mirroring the
// engine registry New. app is required by the application-scoped
// objectives ("reuse", "energy", "class") and ignored by the rest.
//
// A registry-built "reuse" objective scores through a private Claimer: it
// is exact for cuts-only drives (nothing ever claims), while the full
// reuse pipeline (isegen.Generate) wires the shared claimer itself so
// scoring sees claimed state.
func NewObjective(name string, app *ir.Application, model *latency.Model, p ObjectiveParams) (*Objective, error) {
	f, ok := objectiveFactories[name]
	if !ok {
		return nil, fmt.Errorf("search: unknown objective %q (have %v)", name, ObjectiveNames())
	}
	return f(app, model, p)
}

// ObjectiveNames lists the objective registry names in sorted order.
func ObjectiveNames() []string {
	out := make([]string, 0, len(objectiveFactories))
	for n := range objectiveFactories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
