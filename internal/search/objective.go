package search

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// Scorer ranks candidate cuts during a multi-cut drive. It may inspect the
// per-block excluded sets (e.g. to count claimable reuse instances) but
// must not modify them. A non-positive score rejects the candidate.
type Scorer func(blockIdx int, cut *core.Cut, excluded []*graph.BitSet) float64

// Objective is the pluggable goal function of a search: the latency model
// every engine costs cuts with, plus an optional candidate scorer. A nil
// Score selects the maximum-merit candidate — the paper's single gain
// function; the constructors below open further scenarios (reuse-aware,
// area-weighted, energy-weighted) without touching any engine.
type Objective struct {
	// Name labels the objective in reports.
	Name string
	// Model supplies software/hardware latencies, energy and area.
	Model *latency.Model
	// Score ranks candidates; nil picks maximum merit. When an
	// objective is used through a per-block Engine.Run, the scorer is
	// invoked with blockIdx 0 and a single-element excluded slice;
	// application-scoped objectives (marked by their constructors) are
	// rejected there and only valid with Runner.Generate.
	Score Scorer

	// appScoped marks scorers that index into a whole application
	// (block frequencies, cross-block reuse) and therefore cannot run
	// through a per-block engine.
	appScoped bool
}

// AppScoped reports whether the objective needs application context and
// is only usable with Runner.Generate.
func (o *Objective) AppScoped() bool { return o != nil && o.appScoped }

// pick selects the best-scoring candidate from a merit-sorted pool, or nil
// when every candidate is rejected. With a nil scorer the head of the pool
// (maximum merit) wins, matching the paper's selection rule.
func (o *Objective) pick(blockIdx int, cands []*core.Cut, excluded []*graph.BitSet) *core.Cut {
	if len(cands) == 0 {
		return nil
	}
	if o == nil || o.Score == nil {
		return cands[0]
	}
	bestScore := 0.0
	var best *core.Cut
	for _, c := range cands {
		if s := o.Score(blockIdx, c, excluded); s > bestScore {
			bestScore = s
			best = c
		}
	}
	return best
}

// Merit is the paper's objective: select the feasible cut with the highest
// merit λ(C) = latSW(C) − cycles(latHW(C)).
func Merit(model *latency.Model) *Objective {
	return &Objective{Name: "merit", Model: model}
}

// ReuseAware implements the paper's Figure 1 principle: a candidate is
// worth its merit times the number of disjoint schedulable instances the
// claimer could claim for it, weighted by block frequency — many small
// reusable cuts beat one large single-use cut. The claimer must be the
// same one the driver claims through, so scoring sees claimed state.
func ReuseAware(app *ir.Application, model *latency.Model, claimer *eval.Claimer) *Objective {
	return &Objective{
		Name:  "reuse-aware",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			n := claimer.CountInstances(bi, cut, excluded)
			return float64(n) * cut.Merit() * app.Blocks[bi].Freq
		},
		appScoped: true,
	}
}

// AreaWeighted discounts merit by the cut's estimated AFU datapath area:
// score = merit − gatePenalty × area(C), in NAND2-equivalent gates. With a
// small gatePenalty it breaks merit ties toward cheaper silicon; larger
// values model an area-constrained deployment where big AFUs must buy
// proportionally more cycles.
func AreaWeighted(model *latency.Model, gatePenalty float64) *Objective {
	return &Objective{
		Name:  "area-weighted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			return cut.Merit() - gatePenalty*eval.AFUArea(cut.Block, model, cut.Nodes)
		},
	}
}

// EnergyWeighted scores a candidate by its estimated per-execution energy
// saving (software energy of the covered operations minus their AFU energy
// and one instruction-issue overhead), weighted by block frequency — the
// Section 6 energy scenario as a first-class objective.
func EnergyWeighted(app *ir.Application, model *latency.Model) *Objective {
	const issueOverheadEnergy = 1.0
	return &Objective{
		Name:  "energy-weighted",
		Model: model,
		Score: func(bi int, cut *core.Cut, excluded []*graph.BitSet) float64 {
			saved := -issueOverheadEnergy
			cut.Nodes.ForEach(func(v int) bool {
				op := cut.Block.Nodes[v].Op
				saved += model.SWEnergy[op] - model.HWEnergy[op]
				return true
			})
			return saved * app.Blocks[bi].Freq
		},
		appScoped: true,
	}
}
