package search

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/latency"
)

// waitGoroutines polls until the goroutine count returns to at most base,
// failing the test otherwise. Cancellation must not strand pool workers.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, want <= %d", runtime.NumGoroutine(), base)
}

func TestParallelForCancelStopsAndDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	err := parallelFor(ctx, 4, n, func(i int) {
		if started.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("cancellation did not short-circuit: all %d items ran", n)
	}
	waitGoroutines(t, base)
}

func TestParallelForNilErrorWhenUncancelled(t *testing.T) {
	var ran atomic.Int64
	if err := parallelFor(context.Background(), 4, 100, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d items, want 100", ran.Load())
	}
}

func TestRunBlocksContextCancelPromptNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	app := kernels.FFT00()
	// Many copies of the same blocks: enough work that the sweep cannot
	// finish before cancellation lands.
	blks := app.Blocks
	for i := 0; i < 64; i++ {
		blks = append(blks, app.Blocks...)
	}
	r := &Runner{Workers: 4}
	obj := Merit(latency.Default())
	lim := &Limits{MaxIn: 4, MaxOut: 2, NISE: 4}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := r.RunBlocksContext(ctx, blks, &KL{}, obj, lim)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// "Promptly": in-flight blocks may finish, queued ones must not start.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	waitGoroutines(t, base)
}

// TestParallelForPanicPropagatesToCaller pins the containment contract:
// a panic inside a pooled worker re-raises on the calling goroutine (so a
// serving layer's recover catches it regardless of worker count), skips
// the remaining items, and strands no goroutines.
func TestParallelForPanicPropagatesToCaller(t *testing.T) {
	base := runtime.NumGoroutine()
	var ran atomic.Int64
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate to the caller")
			}
			if s, ok := r.(string); !ok || s != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		_ = parallelFor(context.Background(), 4, 1000, func(i int) {
			if ran.Add(1) == 3 {
				panic("boom")
			}
			time.Sleep(time.Millisecond)
		})
	}()
	if ran.Load() >= 1000 {
		t.Fatal("panic did not short-circuit the remaining items")
	}
	waitGoroutines(t, base)
}

func TestGenerateContextCancelledUpFront(t *testing.T) {
	app := kernels.Fbital00()
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = 4, 2, 4
	r := &Runner{Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cuts, _, err := r.GenerateContext(ctx, app, cfg, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cuts) != 0 {
		t.Fatalf("pre-cancelled run selected %d cuts, want 0", len(cuts))
	}
}

func TestGenerateContextMatchesGenerate(t *testing.T) {
	app := kernels.Fbital00()
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = 4, 2, 4
	r := &Runner{Workers: 2}
	want, _, err := r.Generate(app, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.GenerateContext(context.Background(), app, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d cuts, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Nodes.Equal(want[i].Nodes) {
			t.Fatalf("cut %d differs under an uncancelled context", i)
		}
	}
}
