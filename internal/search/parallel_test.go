package search_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/search"
)

// pipelineFingerprint runs the full ISEGEN-with-reuse pipeline (the
// facade's Generate flow: unified driver, reuse-aware objective, claiming,
// evaluation) with the given worker count and serializes Selections and
// Report into one string.
func pipelineFingerprint(t *testing.T, app *ir.Application, workers int) string {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	var sels []eval.Selection
	claimer := eval.NewClaimer(app)
	r := &search.Runner{Workers: workers}
	_, _, err := r.Generate(app, cfg, search.ReuseAware(app, cfg.Model, claimer),
		func(bi int, cut *core.Cut, excluded []*graph.BitSet) {
			sel := claimer.Claim(bi, cut, excluded)
			if len(sel.Instances) > 0 {
				sels = append(sels, sel)
			}
		})
	if err != nil {
		t.Fatalf("Generate(workers=%d): %v", workers, err)
	}
	rep, err := eval.Evaluate(app, cfg.Model, sels)
	if err != nil {
		t.Fatalf("Evaluate(workers=%d): %v", workers, err)
	}

	var sb strings.Builder
	for i, sel := range sels {
		fmt.Fprintf(&sb, "sel %d: cut=%v io=(%d,%d) sw=%d hw=%v\n",
			i, sel.Cut.Nodes, sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.SWLat, sel.Cut.HWLat)
		for _, inst := range sel.Instances {
			fmt.Fprintf(&sb, "  inst blk=%d nodes=%v\n", inst.BlockIdx, inst.Nodes)
		}
	}
	fmt.Fprintf(&sb, "report: %+v\n", *rep)
	return sb.String()
}

// TestRunnerParallelDeterminism is the contract of the worker pool: with N
// workers the full pipeline produces byte-identical Selections and Report
// to the sequential path, on every internal/kernels benchmark. Run with
// -race this also exercises the trajectory fan-out for data races.
func TestRunnerParallelDeterminism(t *testing.T) {
	specs := kernels.All()
	for _, spec := range specs {
		seq := pipelineFingerprint(t, spec.App, 1)
		par := pipelineFingerprint(t, spec.App, 8)
		if seq != par {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				spec.Name, seq, par)
		}
	}
	if testing.Short() {
		t.Skip("AES determinism check skipped in -short mode")
	}
	seq := pipelineFingerprint(t, kernels.AES(), 1)
	par := pipelineFingerprint(t, kernels.AES(), 8)
	if seq != par {
		t.Error("aes: parallel output differs from sequential")
	}
}

// TestCandidatesParallelMatchesSequential pins the lower level: the
// engine's candidate pool is identical whether trajectories run on one
// worker or many, for every restart count.
func TestCandidatesParallelMatchesSequential(t *testing.T) {
	spec := kernels.All()[4] // adpcm_coder-scale block, several components
	blk := spec.App.Blocks[0]
	for _, restarts := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Restarts = restarts
		engSeq, err := core.NewEngine(blk, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq := engSeq.Candidates()

		engPar, err := core.NewEngine(blk, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		seeds := engPar.Seeds()
		perSeed := make([][]core.Candidate, len(seeds))
		done := make(chan int, len(seeds))
		for i := range seeds {
			go func(i int) {
				perSeed[i] = engPar.Trajectory(seeds[i])
				done <- i
			}(i)
		}
		for range seeds {
			<-done
		}
		var snaps []core.Candidate
		for _, s := range perSeed {
			snaps = append(snaps, s...)
		}
		par := engPar.Finalize(snaps)

		if len(seq) != len(par) {
			t.Fatalf("restarts=%d: %d sequential vs %d parallel candidates", restarts, len(seq), len(par))
		}
		for i := range seq {
			if !seq[i].Nodes.Equal(par[i].Nodes) || seq[i].Merit() != par[i].Merit() {
				t.Fatalf("restarts=%d: candidate %d differs: %v vs %v", restarts, i, seq[i].Nodes, par[i].Nodes)
			}
		}
	}
}

// TestRunBlocksDeterministicOrder: the block fan-out merges results in
// input order regardless of completion order.
func TestRunBlocksDeterministicOrder(t *testing.T) {
	specs := kernels.All()
	blocks := make([]*ir.Block, len(specs))
	for i, spec := range specs {
		blocks[i] = spec.App.Blocks[0]
	}
	model := core.DefaultConfig().Model
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 2, Workers: 1}
	obj := search.Merit(model)
	eng := &search.KL{Cache: search.NewCostCache()}

	seqR := &search.Runner{Workers: 1}
	parR := &search.Runner{Workers: 8}
	seqCuts, _, err := seqR.RunBlocks(blocks, eng, obj, lim)
	if err != nil {
		t.Fatal(err)
	}
	parCuts, _, err := parR.RunBlocks(blocks, eng, obj, lim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if len(seqCuts[i]) != len(parCuts[i]) {
			t.Fatalf("block %d: cut count %d vs %d", i, len(seqCuts[i]), len(parCuts[i]))
		}
		for j := range seqCuts[i] {
			if !seqCuts[i][j].Nodes.Equal(parCuts[i][j].Nodes) {
				t.Fatalf("block %d cut %d differs", i, j)
			}
		}
	}
}
