package search_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/search"
)

func buildDiamondBlock(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder("diamond", 10)
	a, b := bu.Input("a"), bu.Input("b")
	m := bu.Mul(a, b)
	l := bu.Add(m, a)
	r := bu.Sub(m, b)
	bu.LiveOut(bu.Xor(l, r))
	return bu.MustBuild()
}

func buildChain(t *testing.T, n int) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder("chain", 1)
	v := bu.Input("x")
	for i := 0; i < n; i++ {
		v = bu.AddI(v, 1)
	}
	bu.LiveOut(v)
	return bu.MustBuild()
}

// TestGeneratePrefersHighScore: the objective's scorer, not merit, decides
// which candidate the driver selects (ported from the old core driver).
func TestGeneratePrefersHighScore(t *testing.T) {
	bu := ir.NewBuilder("scored", 1)
	a, b := bu.Input("a"), bu.Input("b")
	m := bu.Mul(a, b)
	s := bu.Add(m, b)
	x := bu.Xor(s, a)
	bu.LiveOut(x)
	blk := bu.MustBuild()
	app := &ir.Application{Name: "s", Blocks: []*ir.Block{blk}}

	cfg := core.DefaultConfig()
	cfg.NISE = 1
	// Scorer that inverts preference: pick the SMALLEST candidate.
	smallest := &search.Objective{
		Model: cfg.Model,
		Score: func(bi int, cut *core.Cut, _ []*graph.BitSet) float64 {
			return 1.0 / float64(cut.Size())
		},
	}
	r := &search.Runner{}
	cuts, _, err := r.Generate(app, cfg, smallest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 {
		t.Fatalf("got %d cuts", len(cuts))
	}
	// The smallest positive-merit candidate is the single mul.
	if cuts[0].Size() != 1 || !cuts[0].Nodes.Has(0) {
		t.Errorf("scored pick = %v, want the lone mul", cuts[0].Nodes)
	}
	// Merit scoring picks max merit instead.
	cuts2, _, err := r.Generate(app, cfg, search.Merit(cfg.Model), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cuts2[0].Merit() < cuts[0].Merit() {
		t.Error("merit scoring must pick at least the max-merit candidate")
	}
}

// TestGenerateMultiCut (ported): NISE=3 across two hot blocks, cuts never
// reuse nodes and the hotter block is drained first.
func TestGenerateMultiCut(t *testing.T) {
	bu1 := ir.NewBuilder("hot1", 100)
	a, b := bu1.Input("a"), bu1.Input("b")
	v1 := bu1.Add(bu1.Mul(a, b), b)
	v2 := bu1.Xor(bu1.Shl(a, b), v1)
	bu1.LiveOut(v2)
	blk1 := bu1.MustBuild()

	bu2 := ir.NewBuilder("hot2", 50)
	c, d := bu2.Input("c"), bu2.Input("d")
	w := bu2.Sub(bu2.Mul(c, d), c)
	bu2.LiveOut(w)
	blk2 := bu2.MustBuild()

	app := &ir.Application{Name: "app", Blocks: []*ir.Block{blk1, blk2}}
	cfg := core.DefaultConfig()
	cfg.NISE = 3
	cuts, _, err := (&search.Runner{}).Generate(app, cfg, nil, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts found")
	}
	if len(cuts) > 3 {
		t.Fatalf("found %d cuts, budget 3", len(cuts))
	}
	used := map[*ir.Block]*graph.BitSet{}
	for _, c := range cuts {
		m := core.MetricsOf(c.Block, cfg.Model, c.Nodes)
		if !m.Convex() || m.NumIn > cfg.MaxIn || m.NumOut > cfg.MaxOut {
			t.Errorf("infeasible cut %v", c.Nodes)
		}
		if prev, ok := used[c.Block]; ok {
			if prev.Intersects(c.Nodes) {
				t.Fatal("cuts overlap within a block")
			}
			prev.Or(c.Nodes)
		} else {
			used[c.Block] = c.Nodes.Clone()
		}
	}
	if cuts[0].Block != blk1 {
		t.Errorf("first cut from %q, want hot1", cuts[0].Block.Name)
	}
}

// TestGenerateRespectsNISEOne (ported): an AFU budget of exactly one
// yields exactly one cut — not zero, not more.
func TestGenerateRespectsNISEOne(t *testing.T) {
	blk := buildDiamondBlock(t)
	app := &ir.Application{Name: "one", Blocks: []*ir.Block{blk}}
	cfg := core.DefaultConfig()
	cfg.NISE = 1
	cuts, _, err := (&search.Runner{}).Generate(app, cfg, nil, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(cuts) != 1 {
		t.Fatalf("got %d cuts, want 1", len(cuts))
	}
}

// TestGenerateClaimCallback (ported): the claim hook runs once per cut
// with the cut already excluded.
func TestGenerateClaimCallback(t *testing.T) {
	blk := buildDiamondBlock(t)
	app := &ir.Application{Name: "cb", Blocks: []*ir.Block{blk}}
	cfg := core.DefaultConfig()
	cfg.NISE = 4
	calls := 0
	_, _, err := (&search.Runner{}).Generate(app, cfg, nil, func(bi int, cut *core.Cut, excluded []*graph.BitSet) {
		calls++
		if bi != 0 {
			t.Errorf("block index = %d, want 0", bi)
		}
		if !cut.Nodes.SubsetOf(excluded[bi]) {
			t.Error("cut nodes must already be excluded when claim runs")
		}
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if calls == 0 {
		t.Fatal("claim callback never invoked")
	}
}

// TestGenerateTerminatesWhenExhausted (ported): a huge NISE stops once
// nothing remains.
func TestGenerateTerminatesWhenExhausted(t *testing.T) {
	blk := buildChain(t, 3)
	app := &ir.Application{Name: "x", Blocks: []*ir.Block{blk}}
	cfg := core.DefaultConfig()
	cfg.NISE = 100
	cuts, _, err := (&search.Runner{}).Generate(app, cfg, nil, nil)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(cuts) == 0 || len(cuts) > 3 {
		t.Fatalf("got %d cuts", len(cuts))
	}
}

// TestEngineRegistry: every registered engine runs on a small block behind
// the same interface and finds a feasible positive-merit cut.
func TestEngineRegistry(t *testing.T) {
	model := latency.Default()
	cache := search.NewCostCache()
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 2, Budget: 1_000_000}
	obj := search.Merit(model)
	for _, name := range search.Names() {
		eng, err := search.New(name, cache)
		if err != nil {
			t.Fatal(err)
		}
		blk := buildDiamondBlock(t)
		cuts, stats, err := eng.Run(blk, obj, lim)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cuts) == 0 {
			t.Fatalf("%s: no cuts", name)
		}
		if stats.Engine == "" || stats.Duration <= 0 {
			t.Errorf("%s: incomplete stats %+v", name, stats)
		}
		for _, c := range cuts {
			m := core.MetricsOf(blk, model, c.Nodes)
			if !m.Convex() || m.NumIn > lim.MaxIn || m.NumOut > lim.MaxOut || c.Merit() <= 0 {
				t.Errorf("%s: infeasible cut %v", name, c.Nodes)
			}
		}
	}
	if _, err := search.New("nonsense", nil); err == nil {
		t.Fatal("unknown engine name must error")
	}
}

// TestEngineNodeLimit: the exact engines refuse oversized blocks through
// the unified Limits, like the bare baselines did.
func TestEngineNodeLimit(t *testing.T) {
	blk := buildChain(t, 30)
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 1, NodeLimit: 25}
	eng := &search.ExactJoint{}
	_, _, err := eng.Run(blk, search.Merit(latency.Default()), lim)
	if !errors.Is(err, exact.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestEngineObjectiveGuards: per-block engines reject objectives they
// cannot honor instead of silently ignoring them.
func TestEngineObjectiveGuards(t *testing.T) {
	blk := buildDiamondBlock(t)
	app := &ir.Application{Name: "g", Blocks: []*ir.Block{blk}}
	model := latency.Default()
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 1}

	// App-scoped objectives only work through Runner.Generate.
	appObj := search.EnergyWeighted(app, model)
	if !appObj.AppScoped() {
		t.Fatal("EnergyWeighted must be app-scoped")
	}
	if _, _, err := (&search.KL{}).Run(blk, appObj, lim); err == nil {
		t.Error("KL.Run must reject app-scoped objectives")
	}
	// Merit-internal engines reject custom scorers.
	scored := search.AreaWeighted(model, 1.0)
	if _, _, err := (&search.Genetic{Seed: 1}).Run(blk, scored, lim); err == nil {
		t.Error("Genetic.Run must reject scored objectives")
	}
	if _, _, err := (&search.ExactIterative{}).Run(blk, scored, lim); err == nil {
		t.Error("ExactIterative.Run must reject scored objectives")
	}
	// But the KL engine honors block-local scorers (a tiny penalty only
	// breaks ties, so candidates survive).
	tieBreak := search.AreaWeighted(model, 1e-9)
	if cuts, _, err := (&search.KL{}).Run(blk, tieBreak, lim); err != nil || len(cuts) == 0 {
		t.Errorf("KL.Run with block-local scorer: cuts=%d err=%v", len(cuts), err)
	}
}

// TestCostCacheMemoizes: repeated costing of the same cut is served from
// the cache and agrees with the direct computation.
func TestCostCacheMemoizes(t *testing.T) {
	blk := buildDiamondBlock(t)
	model := latency.Default()
	cut := graph.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)

	cache := search.NewCostCache()
	m1 := cache.Metrics(blk, model, cut)
	m2 := cache.Metrics(blk, model, cut)
	if m1 != m2 {
		t.Fatalf("cache not stable: %+v vs %+v", m1, m2)
	}
	if want := core.MetricsOf(blk, model, cut); m1 != want {
		t.Fatalf("cached metrics %+v != direct %+v", m1, want)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// A different cut is a miss, not a collision.
	other := graph.NewBitSet(blk.N())
	other.Set(2)
	if mo := cache.Metrics(blk, model, other); mo == m1 {
		t.Error("distinct cuts must not collide")
	}
}

// TestObjectiveVariants: the area- and energy-weighted objectives change
// the selection the way their formulas promise.
func TestObjectiveVariants(t *testing.T) {
	blk := buildDiamondBlock(t)
	app := &ir.Application{Name: "obj", Blocks: []*ir.Block{blk}}
	model := latency.Default()
	cfg := core.DefaultConfig()
	cfg.NISE = 1

	r := &search.Runner{}
	merit, _, err := r.Generate(app, cfg, search.Merit(model), nil)
	if err != nil || len(merit) != 1 {
		t.Fatalf("merit generate: %v (%d cuts)", err, len(merit))
	}
	// A prohibitive gate penalty forces a smaller (cheaper) cut.
	area, _, err := r.Generate(app, cfg, search.AreaWeighted(model, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(area) == 1 && area[0].Size() > merit[0].Size() {
		t.Errorf("area-weighted cut (%d nodes) larger than merit cut (%d)", area[0].Size(), merit[0].Size())
	}
	// Energy saving of the merit cut is positive on this block, so the
	// energy objective must find something too.
	energy, _, err := r.Generate(app, cfg, search.EnergyWeighted(app, model), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(energy) == 0 {
		t.Error("energy-weighted objective rejected every candidate")
	}
}
