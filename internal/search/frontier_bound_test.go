package search

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// fp builds a synthetic frontier candidate: a one-node cut (node id makes
// the identity unique) with the given vector.
func fpCut(n, node int) *core.Cut {
	bs := graph.NewBitSet(n)
	bs.Set(node)
	return &core.Cut{Nodes: bs}
}

// TestFrontierBoundedEviction pins the deterministic eviction rule: when
// an insertion exceeds the bound, the lowest-ranked point under the
// frontier's total order (merit desc, area asc, energy desc, block,
// node-set) is dropped.
func TestFrontierBoundedEviction(t *testing.T) {
	f := NewBoundedFrontier(2)
	// Mutually non-dominated: merit falls as area falls.
	vecs := []Vector{
		{Merit: 10, Area: 100, Energy: 5},
		{Merit: 9, Area: 90, Energy: 5},
		{Merit: 8, Area: 80, Energy: 5},
		{Merit: 7, Area: 70, Energy: 5},
	}
	for i, v := range vecs {
		f.add(0, fpCut(8, i), v)
	}
	if f.Len() != 2 {
		t.Fatalf("bounded frontier has %d points, want 2", f.Len())
	}
	pts := f.Points()
	// Ranking is merit-first, so the two highest-merit points survive.
	if pts[0].Vector.Merit != 10 || pts[1].Vector.Merit != 9 {
		t.Fatalf("survivors = %+v, %+v; want merits 10 and 9", pts[0].Vector, pts[1].Vector)
	}

	// A dominated insertion is still dropped outright, not evicted-for.
	f.add(0, fpCut(8, 5), Vector{Merit: 1, Area: 500, Energy: 0})
	if f.Len() != 2 {
		t.Fatalf("dominated insertion changed the bounded frontier: %d points", f.Len())
	}

	// A new non-dominated top point pushes out the worst survivor.
	f.add(0, fpCut(8, 6), Vector{Merit: 11, Area: 101, Energy: 5})
	pts = f.Points()
	if len(pts) != 2 || pts[0].Vector.Merit != 11 || pts[1].Vector.Merit != 10 {
		t.Fatalf("after top insertion: %+v; want merits 11 and 10", pts)
	}
}

// TestFrontierUnboundedZeroValue: the zero value and NewBoundedFrontier(0)
// never evict.
func TestFrontierUnboundedZeroValue(t *testing.T) {
	for _, f := range []*Frontier{{}, NewBoundedFrontier(0), NewBoundedFrontier(-3)} {
		for i := 0; i < 10; i++ {
			// Merit and area fall together: mutually non-dominated.
			f.add(0, fpCut(16, i), Vector{Merit: float64(10 - i), Area: float64(100 - 10*i), Energy: 1})
		}
		if f.Len() != 10 {
			t.Fatalf("unbounded frontier evicted: %d points, want 10", f.Len())
		}
	}
}

// TestFrontierEvictionTieBreak: equal vectors tie-break by block then node
// set, so eviction stays total and deterministic.
func TestFrontierEvictionTieBreak(t *testing.T) {
	v := Vector{Merit: 5, Area: 50, Energy: 1}
	f := NewBoundedFrontier(2)
	f.add(2, fpCut(8, 1), v)
	f.add(0, fpCut(8, 1), v)
	f.add(1, fpCut(8, 1), v) // exceeds: block 2 (largest) must go
	pts := f.Points()
	if len(pts) != 2 || pts[0].Block != 0 || pts[1].Block != 1 {
		t.Fatalf("tie-break eviction kept blocks %v, want [0 1]", []int{pts[0].Block, pts[1].Block})
	}
}
