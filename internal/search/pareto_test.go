package search_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/search"
)

func TestVectorDominates(t *testing.T) {
	base := search.Vector{Merit: 5, Area: 100, Energy: 2}
	cases := []struct {
		name string
		v, o search.Vector
		want bool
	}{
		{"equal never dominates", base, base, false},
		{"better merit", search.Vector{Merit: 6, Area: 100, Energy: 2}, base, true},
		{"smaller area", search.Vector{Merit: 5, Area: 90, Energy: 2}, base, true},
		{"higher energy", search.Vector{Merit: 5, Area: 100, Energy: 3}, base, true},
		{"trade-off incomparable", search.Vector{Merit: 6, Area: 110, Energy: 2}, base, false},
		{"strictly worse", search.Vector{Merit: 4, Area: 110, Energy: 1}, base, false},
	}
	for _, tc := range cases {
		if got := tc.v.Dominates(tc.o); got != tc.want {
			t.Errorf("%s: %+v.Dominates(%+v) = %v, want %v", tc.name, tc.v, tc.o, got, tc.want)
		}
	}
}

// paretoFingerprint runs the cuts-only pareto drive and serializes the
// selected cuts plus the full frontier into one string.
func paretoFingerprint(t *testing.T, spec kernels.Spec, workers int) string {
	t.Helper()
	app := spec.App
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	r := &search.Runner{Workers: workers}
	cuts, stats, err := r.Generate(app, cfg, search.Pareto(cfg.Model), nil)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", spec.Name, workers, err)
	}
	if stats.Frontier == nil {
		t.Fatalf("%s workers=%d: multi-objective run returned no frontier", spec.Name, workers)
	}
	var sb strings.Builder
	for i, c := range cuts {
		fmt.Fprintf(&sb, "cut %d: %v merit=%v\n", i, c.Nodes, c.Merit())
	}
	for _, pt := range stats.Frontier.Points() {
		fmt.Fprintf(&sb, "frontier: blk=%d nodes=%v vec=%+v sel=%v\n", pt.Block, pt.Cut.Nodes, pt.Vector, pt.Selected)
	}
	return sb.String()
}

// TestParetoDeterminismParallel pins DESIGN.md's contract for the
// multi-objective path: with N workers the selected cuts AND the
// accumulated Pareto frontier are bit-identical to the sequential run.
// Under -race this also exercises the trajectory fan-out feeding the
// frontier for data races.
func TestParetoDeterminismParallel(t *testing.T) {
	for _, spec := range kernels.All() {
		if spec.CriticalSize > 120 {
			continue // keep -race runtime bounded; AES is covered by merit determinism tests
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			seq := paretoFingerprint(t, spec, 1)
			for _, w := range []int{2, 8} {
				if got := paretoFingerprint(t, spec, w); got != seq {
					t.Fatalf("workers=%d diverged from sequential\n--- workers=%d\n%s--- workers=1\n%s", w, w, got, seq)
				}
			}
		})
	}
}

// TestParetoFrontierNonDominated checks the frontier invariant on a real
// run: no point dominates another, selected cuts are flagged, and points
// arrive in the documented deterministic order.
func TestParetoFrontierNonDominated(t *testing.T) {
	app := kernels.Fbital00()
	cfg := core.DefaultConfig()
	r := &search.Runner{}
	cuts, stats, err := r.Generate(app, cfg, search.Pareto(cfg.Model), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := stats.Frontier.Points()
	if len(pts) == 0 {
		t.Fatal("empty frontier from a run that selected cuts")
	}
	for i, a := range pts {
		for j, b := range pts {
			if i != j && a.Vector.Dominates(b.Vector) {
				t.Fatalf("frontier point %d dominates point %d: %+v vs %+v", i, j, a.Vector, b.Vector)
			}
		}
	}
	var selected int
	for _, pt := range pts {
		if pt.Selected {
			selected++
		}
	}
	if selected == 0 {
		t.Fatal("no frontier point is flagged selected")
	}
	if selected > len(cuts) {
		t.Fatalf("%d selected frontier points exceed %d selected cuts", selected, len(cuts))
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1].Vector, pts[i].Vector
		if a.Merit < b.Merit {
			t.Fatalf("frontier not sorted best-merit-first at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestParetoRejectedByMeritOnlyEngines pins the pairing contract: exact
// and genetic engines cannot honor multi-objective selection and say so.
func TestParetoRejectedByMeritOnlyEngines(t *testing.T) {
	blk := kernels.Conven00().Blocks[0]
	model := latency.Default()
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 2}
	for _, name := range []string{"exact", "iterative", "genetic"} {
		eng, err := search.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.Run(blk, search.Pareto(model), lim); err == nil || !strings.Contains(err.Error(), "cannot honor") {
			t.Fatalf("engine %q with pareto objective: err = %v, want merit-only rejection", name, err)
		}
	}
	// The KL engine delegates to the unified driver and supports it.
	kl, err := search.New("isegen", nil)
	if err != nil {
		t.Fatal(err)
	}
	cuts, stats, err := kl.Run(blk, search.Pareto(model), lim)
	if err != nil {
		t.Fatalf("KL with pareto: %v", err)
	}
	if stats.Frontier == nil {
		t.Fatal("KL pareto run carries no frontier")
	}
	if len(cuts) == 0 {
		t.Fatal("KL pareto run found no cuts on conven00")
	}
}

// TestParetoBoundedFrontier: the frontier bound caps Stats.Frontier, keeps
// the non-dominated invariant, and stays bit-identical across worker
// counts (eviction happens on the driver goroutine in round order).
func TestParetoBoundedFrontier(t *testing.T) {
	app := kernels.Fbital00()
	model := latency.Default()

	full := func(workers int) (*search.Frontier, string) {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		r := &search.Runner{Workers: workers}
		_, stats, err := r.Generate(app, cfg, search.ParetoBounded(model, 3), nil)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, pt := range stats.Frontier.Points() {
			fmt.Fprintf(&sb, "blk=%d nodes=%v vec=%+v sel=%v\n", pt.Block, pt.Cut.Nodes, pt.Vector, pt.Selected)
		}
		return stats.Frontier, sb.String()
	}

	fr, seq := full(1)
	if fr.Len() > 3 {
		t.Fatalf("bounded frontier has %d points, want <= 3", fr.Len())
	}
	if fr.Len() == 0 {
		t.Fatal("bounded frontier is empty")
	}
	pts := fr.Points()
	for i, a := range pts {
		for j, b := range pts {
			if i != j && a.Vector.Dominates(b.Vector) {
				t.Fatalf("bounded frontier point %d dominates %d", i, j)
			}
		}
	}
	for _, w := range []int{2, 8} {
		if _, got := full(w); got != seq {
			t.Fatalf("bounded frontier diverged at workers=%d\n--- got\n%s--- want\n%s", w, got, seq)
		}
	}
}

// TestLimitsMaxFrontierEngineRun: the per-run Limits knob bounds the
// frontier through the Engine.Run path too.
func TestLimitsMaxFrontierEngineRun(t *testing.T) {
	blk := kernels.Fbital00().Blocks[0]
	model := latency.Default()
	kl, err := search.New("isegen", nil)
	if err != nil {
		t.Fatal(err)
	}
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 4, MaxFrontier: 2}
	_, stats, err := kl.Run(blk, search.Pareto(model), lim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frontier == nil || stats.Frontier.Len() == 0 {
		t.Fatal("no frontier from bounded pareto run")
	}
	if stats.Frontier.Len() > 2 {
		t.Fatalf("Limits.MaxFrontier=2 ignored: %d points", stats.Frontier.Len())
	}
}
