package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/genetic"
	"repro/internal/ir"
	"repro/internal/obs"
)

// RaceEvent is one publication of the racing engine: a complete answer one
// of the racers produced, streamed to OnEvent as the race unfolds. Events
// are strictly merit-monotone — a later event always improves on (or, for
// the final optimal event, at least matches) every earlier one — so a
// consumer may act on any event and only ever trade quality for time.
type RaceEvent struct {
	// Stage is "anytime" (heuristic answer, no optimality proof) or
	// "optimal" (the exact search completed; this is the final answer).
	Stage string
	// Engine is the canonical name of the racer that published ("ISEGEN",
	// "Genetic" or "Exact").
	Engine string
	// Merit is the summed merit of Cuts.
	Merit float64
	// Cuts is the published answer (disjoint feasible cuts).
	Cuts []*core.Cut
}

// Racing is the anytime meta-engine: it runs the two heuristic engines —
// K-L (ISEGEN) and the genetic baseline — concurrently against the exact
// joint branch-and-bound on the same block, all sharing the cost cache
// and — the point of the exercise — the exact search's best-bound. K-L
// answers in milliseconds; the genetic search takes tens of milliseconds
// but routinely lands on the true optimum where K-L stalls in a local
// one. Each heuristic's summed merit is published into the running exact
// search through exact.Bound's CAS path as soon as it completes, so the
// branch-and-bound prunes against a near-optimal bound long before it
// would have found one itself. The final answer is the exact search's and
// is bit-identical to running the exact engine alone: the seeded bound
// only prunes subtrees strictly below the optimum (see DESIGN.md,
// "Seeded-bound soundness").
//
// Limits.Deadline turns the racer into a true anytime search: on expiry
// the in-flight searches are cancelled through their contexts and the
// best heuristic answer so far — marked non-optimal — is returned with a
// nil error. Mid-run exact improvements are worker-private and are not
// streamed; the stream carries complete answers only.
type Racing struct {
	// Cache is the shared cut-costing cache all three racers cost through.
	Cache *CostCache
	// OnEvent, when non-nil, observes every publication as it happens
	// (the service layer streams them as "frontier" NDJSON records). It
	// may be invoked from the racer's goroutines, but never concurrently,
	// and never after RunContext returns.
	OnEvent func(RaceEvent)

	// gate, when non-nil, delays both heuristic racers' starts (test
	// hook: it makes "exact wins the race" deterministic).
	gate func()
}

// Name implements Engine.
func (e *Racing) Name() string { return "Racing" }

// Run implements Engine. Like the exact engines, the racer optimizes merit
// internally and rejects every other objective.
func (e *Racing) Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	return e.RunContext(context.Background(), blk, obj, lim)
}

// race is the per-run shared state of one RunContext: the event funnel
// (serialized, merit-monotone, closed by the optimal event) and the
// racer-side bound-publication counters feeding Stats.
type race struct {
	onEvent func(RaceEvent)

	mu        sync.Mutex
	lastMerit float64
	finished  bool
	seedBound float64
	raises    int64
}

// publish funnels one racer's answer through the monotonicity gate:
// anytime events must strictly improve the stream and are dropped after
// the optimal event; the optimal event always goes out and closes the
// stream. It reports whether the event was emitted.
func (r *race) publish(ev RaceEvent) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return false
	}
	if ev.Stage == "optimal" {
		r.finished = true
	} else if ev.Merit <= r.lastMerit || len(ev.Cuts) == 0 {
		return false
	}
	r.lastMerit = ev.Merit
	if r.onEvent != nil {
		r.onEvent(ev)
	}
	return true
}

// recordRaise notes one successful K-L bound publication for Stats.
func (r *race) recordRaise(m float64) {
	r.mu.Lock()
	if r.seedBound < m {
		r.seedBound = m
	}
	r.raises++
	r.mu.Unlock()
}

// counters returns the raise statistics.
func (r *race) counters() (seedBound float64, raises int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seedBound, r.raises
}

// totalMerit sums the cuts' merits — integer-valued floats, so the sum is
// exact and matches the exact search's incremental leaf total bit for bit.
func totalMerit(cuts []*core.Cut) float64 {
	t := 0.0
	for _, c := range cuts {
		t += c.Merit()
	}
	return t
}

// heurOut is one heuristic racer's outcome: its cuts (possibly a partial
// answer when the race ended first) and the engine name that produced
// them, for the deadline path's best-so-far pick.
type heurOut struct {
	engine string
	cuts   []*core.Cut
	err    error
}

// RunContext implements Engine: the two heuristic racers (K-L and the
// genetic baseline) run on their own goroutines while the exact joint
// search runs on the calling one, all under the same (possibly deadlined)
// context. All spawned work is joined before returning on every path — no
// goroutine outlives the call.
func (e *Racing) RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	start := time.Now()
	stats := Stats{Engine: e.Name()}
	opt, err := exactOptions(e.Name(), obj, lim, e.Cache, nil)
	if err != nil {
		return nil, stats, err
	}
	// Fail oversized blocks before spawning the heuristic racers,
	// mirroring the exact package's up-front check, so no heuristic work
	// is wasted on a block the proving side refuses anyway.
	if lim.NodeLimit > 0 && blk.N() > lim.NodeLimit {
		return nil, stats, fmt.Errorf("%w: %d nodes > limit %d", exact.ErrTooLarge, blk.N(), lim.NodeLimit)
	}
	ctx, sp := obs.StartSpan(ctx, obs.KindEngine, e.Name())
	defer sp.End()
	rec := obs.FromContext(ctx)

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	deadlined := func() bool { return false }
	if lim.Deadline > 0 {
		var dcancel context.CancelFunc
		raceCtx, dcancel = context.WithTimeout(raceCtx, lim.Deadline)
		defer dcancel()
		deadlined = func() bool {
			return errors.Is(raceCtx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
		}
	}

	r := &race{onEvent: e.OnEvent}
	bound := exact.NewBound()

	// seed publishes one heuristic's answer: the cuts are disjoint, convex
	// and within the I/O limits — one feasible assignment of the joint
	// exact search — so their summed merit is <= its optimum and is a
	// sound (determinism-preserving) bound seed.
	seed := func(engine string, cuts []*core.Cut) {
		if len(cuts) == 0 {
			return
		}
		m := totalMerit(cuts)
		if bound.Raise(m) {
			r.recordRaise(m)
			rec.Add(obs.RacingSeeds, 1)
		}
		r.publish(RaceEvent{Stage: "anytime", Engine: engine, Merit: m, Cuts: cuts})
	}

	// The K-L racer: heuristic cuts as fast as possible. A cancelled K-L
	// run still returns the (deterministic prefix of) cuts selected so
	// far — the deadline path below uses them as the best-so-far answer.
	heurCh := make(chan heurOut, 2)
	go func() {
		if e.gate != nil {
			e.gate()
		}
		kl := &KL{Cache: e.Cache}
		cuts, _, err := kl.RunContext(raceCtx, blk, obj, lim)
		if err == nil {
			seed(kl.Name(), cuts)
		}
		heurCh <- heurOut{engine: kl.Name(), cuts: cuts, err: err}
	}()
	// The genetic racer: slower than K-L but routinely optimal where K-L
	// stalls in a local maximum, so its (later) publication tightens the
	// bound further. Mid-race cancellation is polled between generations;
	// the best cuts found before the stop still come back as a partial
	// answer for the deadline path.
	go func() {
		if e.gate != nil {
			e.gate()
		}
		gopt := genetic.Options{
			MaxIn: lim.MaxIn, MaxOut: lim.MaxOut, Model: obj.Model,
			Seed: 1, // the registry's default genetic seed
			Stop: func() bool { return raceCtx.Err() != nil },
		}
		if e.Cache != nil {
			gopt.Metrics = e.Cache.Metrics
		}
		cuts, err := genetic.Iterative(blk, gopt, lim.NISE)
		if err == nil && raceCtx.Err() == nil {
			seed("Genetic", cuts)
		}
		heurCh <- heurOut{engine: "Genetic", cuts: cuts, err: err}
	}()
	const heurRacers = 2

	// The exact racer, pruning against the shared (heuristic-raised) bound.
	var explored int64
	opt.Bound = bound
	opt.Explored = &explored
	cuts, exactErr := exact.MultiCutContext(raceCtx, blk, opt, lim.NISE)

	finish := func(optimal bool) Stats {
		stats.SeedBound, stats.BoundRaises = r.counters()
		stats.Explored = explored
		stats.Optimal = optimal
		stats.Cuts = len(cuts)
		stats.Duration = time.Since(start)
		return stats
	}

	if exactErr == nil {
		// The proof came in: publish the final answer, stop the heuristic
		// racers if they are still running, and join them.
		r.publish(RaceEvent{Stage: "optimal", Engine: "Exact", Merit: totalMerit(cuts), Cuts: cuts})
		cancel()
		for i := 0; i < heurRacers; i++ {
			<-heurCh
		}
		return cuts, finish(true), nil
	}

	// The exact search failed; the heuristic results decide what that
	// means.
	best := heurOut{}
	for i := 0; i < heurRacers; i++ {
		h := <-heurCh
		// Strict improvement only: on a merit tie the earlier-joined
		// racer keeps the answer, so the pick is stable.
		if len(h.cuts) > 0 && totalMerit(h.cuts) > totalMerit(best.cuts) {
			best = h
		}
	}
	if err := ctx.Err(); err != nil {
		// The caller's context ended the run: the standard engine
		// cancellation contract, whatever the deadline state.
		return nil, finish(false), err
	}
	if deadlined() {
		// The race deadline expired: return the best heuristic answer so
		// far. A racer cut off mid-flight still returned a usable partial
		// answer; publish it if it improves the stream (completed racers
		// already published themselves).
		cuts = best.cuts
		if len(cuts) > 0 {
			r.publish(RaceEvent{Stage: "anytime", Engine: best.engine, Merit: totalMerit(cuts), Cuts: cuts})
		}
		return cuts, finish(false), nil
	}
	// A real exact-side failure (e.g. exact.ErrBudget): propagate it like
	// the exact engine would, so racing stays a drop-in replacement.
	cuts = nil
	return nil, finish(false), exactErr
}
