// Package search is the unified engine layer over the three ISE
// identification algorithms: ISEGEN's K-L iterative improvement
// (internal/core), the exact enumerations of Atasu et al. DAC'03
// (internal/exact) and the genetic formulation of Biswas et al. DAC'04
// (internal/genetic). Every algorithm sits behind the same Engine
// interface, costs cuts through one shared memoized CostCache, and is
// driven by a pluggable Objective, so the experiment harnesses, the public
// facade and the command-line tools contain no per-algorithm driver loops.
//
// The Runner adds bounded-worker parallelism on the two independent axes —
// basic blocks and K-L restart trajectories — with a deterministic merge
// order, so parallel results are bit-identical to the sequential path.
// See DESIGN.md for how the layer fits the rest of the system.
package search

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/genetic"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Limits bundles the architectural and computational constraints every
// engine understands: the register-file port constraints, the AFU budget,
// and the resource bounds of the exact searches.
type Limits struct {
	// MaxIn and MaxOut are the I/O port constraints (INmax, OUTmax).
	MaxIn, MaxOut int
	// NISE is the AFU budget: the maximum number of cuts to identify.
	NISE int
	// NodeLimit refuses larger blocks up front (exact engines only;
	// 0 = no limit).
	NodeLimit int
	// Budget bounds explored search-tree nodes (exact engines only;
	// 0 = no limit).
	Budget int64
	// Workers bounds the engine's internal concurrency (K-L restart
	// trajectories). 0 means one worker per CPU core, 1 forces the
	// sequential path. Results are identical either way.
	Workers int
	// SubtreeWorkers bounds the in-block branch-and-bound worker pool of
	// the exact engines: the decision tree is split into subtree tasks
	// that prune against a shared best-bound. 0 and 1 keep the
	// single-threaded search; a negative value selects one worker per
	// CPU core. Runs that complete within Budget are bit-identical for
	// every value; a run sitting near the budget boundary may exhaust
	// the shared budget only in parallel (see exact.Options.Budget and
	// DESIGN.md, "Determinism contract").
	SubtreeWorkers int
	// SplitDepth is the decision depth at which the exact engines split
	// the tree into subtree tasks (0 = automatic). Results are identical
	// for every depth.
	SplitDepth int
	// MaxFrontier bounds the Pareto frontier a multi-objective run
	// accumulates (0 = unbounded): when the frontier would exceed the
	// bound, the lowest-ranked point under the frontier's deterministic
	// total order is evicted, so huge applications cannot grow
	// Stats.Frontier without bound.
	MaxFrontier int
	// Deadline bounds the run's wall-clock time (racing engine only;
	// 0 = none). When it expires the racer abandons the exact search and
	// returns the best answer published so far — K-L's cuts, marked
	// anytime (Stats.Optimal false) — with a nil error. The returned
	// answer is timing-dependent by construction; only undeadlined racing
	// runs carry the bit-identical-to-exact guarantee.
	Deadline time.Duration
}

// Stats reports what one Engine.Run did.
type Stats struct {
	// Engine is the canonical algorithm name (see Engine.Name).
	Engine string
	// Candidates counts the feasible candidate cuts the engine examined
	// (K-L candidate pools; 0 for engines that only expose winners).
	Candidates int
	// Cuts is the number of cuts returned.
	Cuts int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// Frontier is the cumulative Pareto frontier of the candidates the
	// run examined — non-nil only under a multi-objective objective
	// (see Pareto); nil for every scalar objective.
	Frontier *Frontier
	// Explored counts the branch-and-bound search-tree nodes the run
	// explored (exact and racing engines; 0 elsewhere). Under a seeded
	// bound it measures how much work the seed pruned away.
	Explored int64
	// Optimal marks answers carrying an optimality proof: the exact
	// engines' completed runs and undeadlined racing runs. A racing run
	// cut short by Limits.Deadline returns its best anytime answer with
	// Optimal false.
	Optimal bool
	// SeedBound is the merit the racing engine's K-L pass published into
	// the exact search's best-bound before it finished (0 when the exact
	// search won the race outright or the engine is not racing).
	SeedBound float64
	// BoundRaises counts successful external bound publications (the
	// racing engine's K-L raises; 0 elsewhere).
	BoundRaises int64
}

// Engine identifies up to lim.NISE instruction-set extensions in one basic
// block under the given objective. Implementations are stateless apart
// from configuration and may be reused across blocks and goroutines.
// Run requires an objective with a model (unlike Runner.Generate, which
// can fall back to its Config's model when handed nil).
type Engine interface {
	// Name returns the canonical algorithm name, matching the paper's
	// Figure 4 legend ("ISEGEN", "Exact", "Iterative", "Genetic").
	Name() string
	Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error)
	// RunContext is Run with in-block cancellation: the K-L and exact
	// engines poll ctx inside their inner loops (amortized, every few
	// thousand search steps) and abort mid-search with ctx.Err(); the
	// genetic engine checks between evolutions. Run is RunContext under
	// context.Background().
	RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error)
}

// KL is the ISEGEN engine: iterative Kernighan–Lin bi-partition with
// dispersed restarts, candidate pools and objective-driven selection.
type KL struct {
	// Passes and Restarts override core.DefaultConfig when positive.
	Passes, Restarts int
	// Weights overrides the gain-function parameters when non-nil.
	Weights *core.Weights
	// Cache is the shared cut-costing cache (nil = cost directly).
	Cache *CostCache
}

// Name implements Engine.
func (e *KL) Name() string { return "ISEGEN" }

// config assembles the core.Config for one run.
func (e *KL) config(obj *Objective, lim *Limits) core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = lim.MaxIn, lim.MaxOut, lim.NISE
	cfg.Workers = lim.Workers
	cfg.Model = obj.Model
	if e.Passes > 0 {
		cfg.MaxPasses = e.Passes
	}
	if e.Restarts > 0 {
		cfg.Restarts = e.Restarts
	}
	if e.Weights != nil {
		cfg.Weights = *e.Weights
	}
	return cfg
}

// Run implements Engine: the greedy multi-cut drive of a single block,
// delegated to Runner.Generate over a synthetic single-block application
// so the round semantics live in exactly one place. Block-local scorers
// see blockIdx 0 and a single-element excluded slice; application-scoped
// objectives (ReuseAware, EnergyWeighted) are rejected — run those
// through Runner.Generate with their own application.
func (e *KL) Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	return e.RunContext(context.Background(), blk, obj, lim)
}

// RunContext implements Engine; cancellation aborts mid-trajectory (see
// core.Engine.TrajectoryContext).
func (e *KL) RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	stats := Stats{Engine: e.Name()}
	if err := checkObjective(obj); err != nil {
		return nil, stats, err
	}
	if obj.AppScoped() {
		return nil, stats, fmt.Errorf("search: objective %q needs application context; use Runner.Generate", obj.Name)
	}
	if lim.MaxFrontier > 0 && obj.MultiObjective() && obj.maxFrontier != lim.MaxFrontier {
		// The per-run Limits knob wins over the objective's own bound.
		bounded := *obj
		bounded.maxFrontier = lim.MaxFrontier
		obj = &bounded
	}
	r := &Runner{Workers: lim.Workers, Cache: e.Cache}
	app := &ir.Application{Name: blk.Name, Blocks: []*ir.Block{blk}}
	return r.GenerateContext(ctx, app, e.config(obj, lim), obj, nil)
}

// ExactJoint is the paper's "Exact" baseline: joint optimal assignment of
// block nodes to NISE disjoint feasible cuts (tiny blocks only).
type ExactJoint struct {
	Cache *CostCache
	// Metrics overrides the costing function (takes precedence over
	// Cache); used by facade callers that bring their own memoization.
	Metrics core.MetricsFunc
}

// Name implements Engine.
func (e *ExactJoint) Name() string { return "Exact" }

// Run implements Engine. The exact search optimizes merit internally, so
// objectives with a custom scorer are rejected rather than ignored.
func (e *ExactJoint) Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	return e.RunContext(context.Background(), blk, obj, lim)
}

// RunContext implements Engine; cancellation aborts the branch-and-bound
// mid-block, and lim.SubtreeWorkers > 1 runs it on the in-block subtree
// pool with bit-identical results.
func (e *ExactJoint) RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	start := time.Now()
	opt, err := exactOptions(e.Name(), obj, lim, e.Cache, e.Metrics)
	if err != nil {
		return nil, Stats{Engine: e.Name()}, err
	}
	ctx, sp := obs.StartSpan(ctx, obs.KindEngine, e.Name())
	defer sp.End()
	var explored int64
	opt.Explored = &explored
	cuts, err := exact.MultiCutContext(ctx, blk, opt, lim.NISE)
	return cuts, Stats{Engine: e.Name(), Cuts: len(cuts), Duration: time.Since(start),
		Explored: explored, Optimal: err == nil}, err
}

// ExactIterative is the paper's "Iterative" baseline: the exact best
// single cut is found, frozen, and the search repeats.
type ExactIterative struct {
	Cache *CostCache
	// Metrics overrides the costing function (takes precedence over
	// Cache); used by facade callers that bring their own memoization.
	Metrics core.MetricsFunc
}

// Name implements Engine.
func (e *ExactIterative) Name() string { return "Iterative" }

// Run implements Engine. The exact search optimizes merit internally, so
// objectives with a custom scorer are rejected rather than ignored.
func (e *ExactIterative) Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	return e.RunContext(context.Background(), blk, obj, lim)
}

// RunContext implements Engine; cancellation aborts the branch-and-bound
// mid-block, and lim.SubtreeWorkers > 1 runs it on the in-block subtree
// pool with bit-identical results.
func (e *ExactIterative) RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	start := time.Now()
	opt, err := exactOptions(e.Name(), obj, lim, e.Cache, e.Metrics)
	if err != nil {
		return nil, Stats{Engine: e.Name()}, err
	}
	ctx, sp := obs.StartSpan(ctx, obs.KindEngine, e.Name())
	defer sp.End()
	var explored int64
	opt.Explored = &explored
	cuts, err := exact.IterativeContext(ctx, blk, opt, lim.NISE)
	return cuts, Stats{Engine: e.Name(), Cuts: len(cuts), Duration: time.Since(start),
		Explored: explored, Optimal: err == nil}, err
}

// checkObjective rejects objectives no per-block engine can run with.
func checkObjective(obj *Objective) error {
	if obj == nil || obj.Model == nil {
		return fmt.Errorf("search: Engine.Run needs an objective with a model (e.g. search.Merit(model))")
	}
	return nil
}

func exactOptions(name string, obj *Objective, lim *Limits, cache *CostCache, metrics core.MetricsFunc) (exact.Options, error) {
	if err := checkObjective(obj); err != nil {
		return exact.Options{}, err
	}
	if obj.Score != nil || obj.MultiObjective() {
		return exact.Options{}, fmt.Errorf("search: engine %q optimizes merit and cannot honor objective %q; only \"merit\" (or the ISEGEN engine) works here", name, obj.Name)
	}
	opt := exact.Options{
		MaxIn: lim.MaxIn, MaxOut: lim.MaxOut, Model: obj.Model,
		NodeLimit: lim.NodeLimit, Budget: lim.Budget,
		Workers: lim.SubtreeWorkers, SplitDepth: lim.SplitDepth,
	}
	if cache != nil {
		opt.Metrics = cache.Metrics
	}
	if metrics != nil {
		opt.Metrics = metrics
	}
	return opt, nil
}

// Genetic is the DAC'04 baseline: iterated single-cut evolution.
type Genetic struct {
	// Seed makes runs repeatable (successive cuts decorrelate from it).
	Seed int64
	// Opt optionally overrides the full genetic parameter set; MaxIn,
	// MaxOut, Model, Seed and Metrics are still taken from the run.
	Opt *genetic.Options
	// Cache is the shared cut-costing cache — fitness evaluation is the
	// genetic algorithm's hot path.
	Cache *CostCache
}

// Name implements Engine.
func (e *Genetic) Name() string { return "Genetic" }

// SetSeed reseeds the engine (registry callers discover it by interface).
func (e *Genetic) SetSeed(seed int64) { e.Seed = seed }

// Run implements Engine. The evolution optimizes (penalty-shaped) merit
// internally, so objectives with a custom scorer are rejected rather than
// ignored.
func (e *Genetic) Run(blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	return e.RunContext(context.Background(), blk, obj, lim)
}

// RunContext implements Engine. The evolution itself is not cancellable
// mid-generation; the context is checked up front, so a cancelled request
// skips the run entirely.
func (e *Genetic) RunContext(ctx context.Context, blk *ir.Block, obj *Objective, lim *Limits) ([]*core.Cut, Stats, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, Stats{Engine: e.Name()}, err
	}
	if err := checkObjective(obj); err != nil {
		return nil, Stats{Engine: e.Name()}, err
	}
	if obj.Score != nil || obj.MultiObjective() {
		return nil, Stats{Engine: e.Name()},
			fmt.Errorf("search: engine %q optimizes merit and cannot honor objective %q; only \"merit\" (or the ISEGEN engine) works here", e.Name(), obj.Name)
	}
	var opt genetic.Options
	if e.Opt != nil {
		opt = *e.Opt
	}
	opt.MaxIn, opt.MaxOut, opt.Model, opt.Seed = lim.MaxIn, lim.MaxOut, obj.Model, e.Seed
	if e.Cache != nil {
		opt.Metrics = e.Cache.Metrics
	}
	// Mid-run cancellation: the evolution polls the context between
	// generations and abandons early, honoring the engine contract of
	// returning ctx.Err() instead of a silently truncated answer.
	opt.Stop = func() bool { return ctx.Err() != nil }
	_, sp := obs.StartSpan(ctx, obs.KindEngine, e.Name())
	defer sp.End()
	opt.Obs = obs.FromContext(ctx)
	cuts, err := genetic.Iterative(blk, opt, lim.NISE)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, Stats{Engine: e.Name()}, err
	}
	return cuts, Stats{Engine: e.Name(), Cuts: len(cuts), Duration: time.Since(start)}, nil
}

// engineFactories maps registry names (lower-case CLI spellings) to
// constructors. Canonical display names come from Engine.Name.
var engineFactories = map[string]func(cache *CostCache) Engine{
	"isegen":    func(c *CostCache) Engine { return &KL{Cache: c} },
	"exact":     func(c *CostCache) Engine { return &ExactJoint{Cache: c} },
	"iterative": func(c *CostCache) Engine { return &ExactIterative{Cache: c} },
	"genetic":   func(c *CostCache) Engine { return &Genetic{Seed: 1, Cache: c} },
	"racing":    func(c *CostCache) Engine { return &Racing{Cache: c} },
}

// New returns the named engine ("isegen", "exact", "iterative", "genetic"
// or "racing") wired to the given shared cost cache (which may be nil).
func New(name string, cache *CostCache) (Engine, error) {
	f, ok := engineFactories[name]
	if !ok {
		return nil, fmt.Errorf("search: unknown engine %q (have %v)", name, Names())
	}
	return f(cache), nil
}

// Names lists the registry names in sorted order.
func Names() []string {
	out := make([]string, 0, len(engineFactories))
	for n := range engineFactories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsResourceRefusal reports whether an engine error is one of the
// documented resource refusals — the block exceeded the engine's node
// limit or the search exhausted its tree budget — rather than a bug or a
// cancellation. Sweep drivers (the serving layer's per-block fan-out, the
// differential fuzzing harness) use it to skip a block for one engine
// instead of failing the whole run.
func IsResourceRefusal(err error) bool {
	return errors.Is(err, exact.ErrTooLarge) || errors.Is(err, exact.ErrBudget)
}

// DefaultBudget is the standard search-tree node budget for the exact
// engines — large enough that every in-limit benchmark block completes,
// bounded so a pathological block cannot wedge a driver. The offline CLI,
// the serving layer and the experiment harnesses all share this value;
// diverging budgets would break their bit-identical-results contract.
const DefaultBudget int64 = 2_000_000_000

// DefaultNodeLimit returns the paper's block-size limit for the named
// engine: the joint Exact search handled ~25 nodes and Iterative ~100;
// the heuristics have no limit (0). The racing engine shares the joint
// Exact limit — its optimality proof comes from the same search, so an
// undeadlined racing stream covers exactly the blocks an exact one does.
func DefaultNodeLimit(name string) int {
	switch name {
	case "exact", "racing":
		return 25
	case "iterative":
		return 100
	}
	return 0
}
