package search_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/search"
)

// fingerprint renders a cut list precisely enough to detect any drift.
func fingerprint(cuts []*core.Cut) string {
	s := ""
	for _, c := range cuts {
		s += fmt.Sprintf("%v %.17g %d %d %d %.17g;", c.Nodes, c.Merit(), c.NumIn, c.NumOut, c.SWLat, c.HWLat)
	}
	return s
}

// TestPooledStateParallelDeterminism pins the pooled-trajectory restart
// fan-out under the race detector: one long-lived Runner serving repeated
// Generate calls — whose engines recycle State workspaces across seeds and
// whose pools are hit concurrently by the worker fan-out — must produce
// bit-identical cut lists on every call and for every worker count.
func TestPooledStateParallelDeterminism(t *testing.T) {
	model := latency.Default()
	for _, spec := range []struct {
		name string
		app  func() *kernels.Spec
	}{
		{"fbital00", func() *kernels.Spec { s := kernels.All()[1]; return &s }},
		{"adpcm_coder", func() *kernels.Spec { s := kernels.All()[5]; return &s }},
	} {
		spec := spec.app()
		var want string
		for _, workers := range []int{1, 2, 4, 8} {
			r := &search.Runner{Workers: workers, Cache: search.NewCostCache()}
			for rep := 0; rep < 3; rep++ {
				cfg := core.DefaultConfig()
				cfg.Workers = workers
				cuts, _, err := r.Generate(spec.App, cfg, search.Merit(model), nil)
				if err != nil {
					t.Fatal(err)
				}
				got := fingerprint(cuts)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("%s workers=%d rep=%d: cuts drifted\ngot:  %s\nwant: %s",
						spec.Name, workers, rep, got, want)
				}
			}
		}
	}
}
