package search

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/latency"
)

// DefaultStoreBytes is the default on-disk budget of a Store: generous
// enough for repeated sweeps over every kernel benchmark, small enough
// that a long-lived service cannot fill a disk.
const DefaultStoreBytes = 64 << 20

// ErrStoreDegraded is returned by Save while the write circuit breaker is
// open: the disk has failed enough consecutive writes that further
// attempts are skipped (except periodic recovery probes). Loads still
// work — the store is degraded, not dead — so callers should treat it as
// "persistence postponed", not retry.
var ErrStoreDegraded = errors.New("search: cache store degraded (write breaker open)")

// Store persists per-block cut-costing maps on disk so a CostCache
// survives process restarts: repeated sweeps over the same application
// (CI, a long-lived service answering the same uploads) skip cut costing
// entirely. One checksummed gob file per (block hash, model fingerprint)
// pair lives under Dir; total size is bounded by MaxBytes with least-
// recently-used eviction (access order is tracked via file mtimes, which
// Load refreshes).
//
// A Store is safe for concurrent use, and is built to survive a hostile
// disk (see DESIGN.md "Failure model"):
//
//   - Every entry carries a whole-payload checksum under a magic header;
//     a file that fails the header, checksum or gob decode — torn write,
//     torn rename, bit rot — is quarantined (moved to the quarantine/
//     subdirectory, removed from the size accounting, counted in
//     StoreStats.Corrupt) and never re-read, so corruption can neither be
//     served nor re-fail every subsequent load.
//   - BreakerThreshold consecutive Save failures trip a write circuit
//     breaker: the store enters read-through degraded mode, failing
//     further Saves fast with ErrStoreDegraded while every ProbeEvery-th
//     attempt still goes to disk as a recovery probe; one successful
//     probe restores healthy writes.
type Store struct {
	dir      string
	maxBytes int64
	fs       fault.FS
	fsync    bool
	breakAt  int
	probeN   int64

	mu sync.Mutex
	// total tracks the summed size of entry files incrementally, so the
	// hot path never rescans the directory; evictLocked recomputes it
	// authoritatively on the rare occasions the bound is exceeded.
	total int64

	// Write circuit breaker state: consecFails counts Save failures since
	// the last success; degraded is the breaker bit; saveAttempts drives
	// the probe cadence deterministically (operation count, not time).
	consecFails  int
	degraded     bool
	saveAttempts int64

	loads, loadHits, saves, evictions       int64
	bytesEvicted                            int64
	writeErrors, corrupt, probes            int64
	breakerTrips, recoveries, degradedSkips int64
}

// StoreOptions configures the failure-handling knobs of a Store. The zero
// value selects the production defaults.
type StoreOptions struct {
	// FS is the filesystem the store persists through (nil = fault.OS).
	// The chaos harness passes a fault.InjectFS here.
	FS fault.FS
	// Fsync syncs entry files to stable storage before the atomic rename,
	// trading write latency for crash durability of the rename itself.
	Fsync bool
	// BreakerThreshold is the number of consecutive Save failures that
	// trips the write breaker (0 = default 3, negative = never trip).
	BreakerThreshold int
	// ProbeEvery sets the recovery cadence while degraded: every
	// ProbeEvery-th Save attempt actually goes to disk as a probe
	// (0 = default 8, 1 = every attempt).
	ProbeEvery int
}

// defaultBreakerThreshold and defaultProbeEvery are the production
// breaker knobs: three consecutive failures trip it (one flaky write
// shouldn't), and one in eight skipped saves probes for recovery — cheap
// enough to leave on, frequent enough that a healed disk is noticed
// within a few jobs.
const (
	defaultBreakerThreshold = 3
	defaultProbeEvery       = 8
)

// NewStore opens (creating if needed) a persistent cache directory with
// default options. maxBytes bounds the total size of stored entries; 0
// selects DefaultStoreBytes, negative disables eviction.
func NewStore(dir string, maxBytes int64) (*Store, error) {
	return NewStoreOptions(dir, maxBytes, StoreOptions{})
}

// NewStoreOptions opens a store with explicit failure-handling options.
func NewStoreOptions(dir string, maxBytes int64, opt StoreOptions) (*Store, error) {
	if maxBytes == 0 {
		maxBytes = DefaultStoreBytes
	}
	if opt.FS == nil {
		opt.FS = fault.OS
	}
	if opt.BreakerThreshold == 0 {
		opt.BreakerThreshold = defaultBreakerThreshold
	}
	if opt.ProbeEvery <= 0 {
		opt.ProbeEvery = defaultProbeEvery
	}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("search: cache store: %w", err)
	}
	s := &Store{
		dir: dir, maxBytes: maxBytes,
		fs: opt.FS, fsync: opt.Fsync,
		breakAt: opt.BreakerThreshold, probeN: int64(opt.ProbeEvery),
	}
	// Sweep temp files orphaned by a crash between CreateTemp and the
	// rename: they can never be live across a process boundary, and
	// eviction ignores them, so they would otherwise accumulate outside
	// the size bound forever.
	if dirents, err := s.fs.ReadDir(dir); err == nil {
		for _, de := range dirents {
			if !de.IsDir() && strings.HasPrefix(de.Name(), "tmp-") && strings.HasSuffix(de.Name(), ".gob") {
				_ = s.fs.Remove(filepath.Join(dir, de.Name()))
			}
		}
	}
	for _, f := range s.entryFiles() {
		s.total += f.size
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// storedEntry is the gob payload: one costed cut keyed by its bit words.
type storedEntry struct {
	Key     string
	Metrics core.Metrics
}

// storeFormatVersion is embedded in entry file names. Bump it whenever
// the persisted layout or the payload's semantics change — the checksum
// framing, the core.Metrics schema or the core.MetricsOf costing itself —
// so entries written by older binaries read as misses and are recomputed
// instead of silently serving stale costings (gob would otherwise decode
// drifted structs cleanly). Orphaned old-version files age out through
// the LRU size bound without touching the corruption counter: they are
// never opened, so they cannot fail a checksum.
//
// v2 added the checksummed layout: storeMagic, then the big-endian
// FNV-1a 64 of the gob payload, then the payload.
const storeFormatVersion = 2

// storeMagic heads every v2 entry file. A file too short for the header
// or with the wrong magic is corrupt by definition.
var storeMagic = [8]byte{'I', 'S', 'E', 'G', 'O', 'B', 'v', '2'}

// quarantineDir is the subdirectory corrupt entries are moved into. Its
// contents are never read, never counted against MaxBytes, and carry no
// .gob suffix exposure to entryFiles (subdirectories are skipped).
const quarantineDir = "quarantine"

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.v%d.gob", key, storeFormatVersion))
}

// Load reads the persisted costing map for the given stable key, returning
// (nil, false) when absent, unreadable or corrupt. A corrupt file — bad
// header, checksum mismatch, gob decode failure — is quarantined on the
// spot: moved aside, dropped from the size accounting and counted, so it
// is never re-read and can never be decoded into served metrics. A
// successful load refreshes the file's mtime, marking it most-recently-
// used. The store lock is only taken for counter updates, never across
// file I/O.
func (s *Store) Load(key string) (map[string]core.Metrics, bool) {
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	data, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	entries, err := decodeEntries(data)
	if err != nil {
		s.quarantine(s.path(key), int64(len(data)))
		return nil, false
	}
	m := make(map[string]core.Metrics, len(entries))
	for _, e := range entries {
		m[e.Key] = e.Metrics
	}
	now := time.Now()
	_ = s.fs.Chtimes(s.path(key), now, now)
	s.mu.Lock()
	s.loadHits++
	s.mu.Unlock()
	return m, true
}

// decodeEntries verifies the v2 framing (magic + checksum) and decodes
// the payload. Any failure means the file cannot be trusted.
func decodeEntries(data []byte) ([]storedEntry, error) {
	if len(data) < 16 || !bytes.Equal(data[:8], storeMagic[:]) {
		return nil, errors.New("bad header")
	}
	sum := binary.BigEndian.Uint64(data[8:16])
	payload := data[16:]
	if fnv64Bytes(payload) != sum {
		return nil, errors.New("checksum mismatch")
	}
	var entries []storedEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entries); err != nil {
		return nil, err
	}
	return entries, nil
}

// encodeEntries produces the v2 on-disk bytes for a costing map:
// deterministic (sorted) gob payload under the magic + checksum header.
func encodeEntries(m map[string]core.Metrics) ([]byte, error) {
	entries := make([]storedEntry, 0, len(m))
	for k, v := range m {
		entries = append(entries, storedEntry{Key: k, Metrics: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(entries); err != nil {
		return nil, err
	}
	data := make([]byte, 16+payload.Len())
	copy(data, storeMagic[:])
	binary.BigEndian.PutUint64(data[8:16], fnv64Bytes(payload.Bytes()))
	copy(data[16:], payload.Bytes())
	return data, nil
}

// quarantine moves a corrupt entry file aside and fixes the accounting.
// The move keeps the evidence for postmortems; if even the move fails
// (hostile disk), the file is removed outright — the one thing that must
// never happen is re-reading it.
func (s *Store) quarantine(path string, size int64) {
	qdir := filepath.Join(s.dir, quarantineDir)
	moved := false
	if err := s.fs.MkdirAll(qdir, 0o755); err == nil {
		if err := s.fs.Rename(path, filepath.Join(qdir, filepath.Base(path))); err == nil {
			moved = true
		}
	}
	if !moved {
		_ = s.fs.Remove(path)
	}
	s.mu.Lock()
	s.corrupt++
	s.total -= size
	if s.total < 0 {
		s.total = 0
	}
	s.mu.Unlock()
}

// Save atomically persists the costing map for the stable key (temp file +
// rename, optionally fsynced), then enforces the size bound by evicting
// the least recently used entries. Encoding happens outside the store
// lock; only the rename, size accounting and (rare) eviction are
// serialized, so saves do not block concurrent Loads on the job hot path
// for the duration of disk writes.
//
// While the write breaker is open, Save fails fast with ErrStoreDegraded
// except on probe attempts (every ProbeEvery-th), which go to disk; a
// successful probe closes the breaker.
func (s *Store) Save(key string, m map[string]core.Metrics) error {
	s.mu.Lock()
	s.saveAttempts++
	if s.degraded {
		if s.saveAttempts%s.probeN != 0 {
			s.degradedSkips++
			s.mu.Unlock()
			return ErrStoreDegraded
		}
		s.probes++
	}
	s.mu.Unlock()
	err := s.save(key, m)
	s.observeSave(err)
	return err
}

// observeSave updates the breaker on one disk-touching Save outcome.
func (s *Store) observeSave(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		if s.degraded {
			s.recoveries++
		}
		s.degraded = false
		s.consecFails = 0
		return
	}
	s.writeErrors++
	s.consecFails++
	if !s.degraded && s.breakAt > 0 && s.consecFails >= s.breakAt {
		s.degraded = true
		s.breakerTrips++
	}
}

// save is the breaker-blind write path.
func (s *Store) save(key string, m map[string]core.Metrics) error {
	data, err := encodeEntries(m)
	if err != nil {
		return fmt.Errorf("search: cache store: %w", err)
	}
	tmp, err := s.fs.CreateTemp(s.dir, "tmp-*.gob")
	if err != nil {
		return fmt.Errorf("search: cache store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = s.fs.Remove(tmp.Name())
		return fmt.Errorf("search: cache store: %w", err)
	}
	if s.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			_ = s.fs.Remove(tmp.Name())
			return fmt.Errorf("search: cache store: %w", err)
		}
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		_ = s.fs.Remove(tmpName)
		return fmt.Errorf("search: cache store: %w", err)
	}
	size := int64(len(data))

	s.mu.Lock()
	defer s.mu.Unlock()
	var replaced int64
	if fi, err := s.fs.Stat(s.path(key)); err == nil {
		replaced = fi.Size()
	}
	if err := s.fs.Rename(tmpName, s.path(key)); err != nil {
		_ = s.fs.Remove(tmpName)
		// A torn rename may have left a corrupt destination behind; the
		// next Load of this key will checksum-fail and quarantine it, so
		// keep the accounting pessimistic (assume the old size is gone,
		// re-derived authoritatively by the next eviction scan).
		return fmt.Errorf("search: cache store: %w", err)
	}
	s.total += size - replaced
	s.saves++
	if s.maxBytes >= 0 && s.total > s.maxBytes {
		s.evictLocked(key)
	}
	return nil
}

// Degraded reports whether the write breaker is open (read-through
// degraded mode). Loads keep working either way.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

type entryFile struct {
	name  string
	size  int64
	mtime time.Time
}

// entryFiles lists the store's entry files (ignoring in-flight temp files
// and the quarantine subdirectory). Used at open and by eviction; never
// on the save/load hot path.
func (s *Store) entryFiles() []entryFile {
	dirents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var files []entryFile
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".gob") || strings.HasPrefix(de.Name(), "tmp-") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entryFile{de.Name(), fi.Size(), fi.ModTime()})
	}
	return files
}

// evictLocked removes least-recently-used entry files when the directory
// exceeds MaxBytes, refreshing the incremental size total from disk (the
// authoritative count). It evicts down to a low-water mark (90% of the
// bound) rather than just under it, so a store sitting at capacity does
// not re-run the full directory scan on every subsequent Save. The
// just-written key is exempt so a single oversized entry still persists
// its own costings. Old-format-version files participate like any other
// entry: never read, they age out here without touching the corruption
// counter.
func (s *Store) evictLocked(justSaved string) {
	files := s.entryFiles()
	var total int64
	for _, f := range files {
		total += f.size
	}
	target := s.maxBytes - s.maxBytes/10
	saved := filepath.Base(s.path(justSaved))
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= target {
			break
		}
		if f.name == saved {
			continue
		}
		if s.fs.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
			s.evictions++
			s.bytesEvicted += f.size
		}
	}
	s.total = total
}

// StoreStats is a snapshot of the store's activity counters, size
// pressure and failure state. The size fields expose how close the store
// runs to its bound: a climbing Evictions/BytesEvicted alongside
// CurrentBytes pinned near MaxBytes means the working set no longer fits
// and the cap should grow. The failure fields drive the degraded-mode
// surfaces: Corrupt counts quarantined entries (each one a write the disk
// or an older crash mangled), WriteErrors/BreakerTrips/Probes/Recoveries
// narrate the breaker's history, and Degraded is its current state.
type StoreStats struct {
	// Loads counts lookup attempts; LoadHits those that found a valid
	// file.
	Loads    int64 `json:"loads"`
	LoadHits int64 `json:"load_hits"`
	// Saves counts persisted entry files; Evictions files removed by the
	// size bound, BytesEvicted their summed sizes.
	Saves        int64 `json:"saves"`
	Evictions    int64 `json:"evictions"`
	BytesEvicted int64 `json:"bytes_evicted"`
	// CurrentBytes is the store's incremental size accounting of live
	// entry files; MaxBytes the configured bound (negative = unbounded).
	CurrentBytes int64 `json:"current_bytes"`
	MaxBytes     int64 `json:"max_bytes"`
	// Corrupt counts entries quarantined on load (bad header, checksum
	// mismatch, undecodable gob); they are moved aside, dropped from
	// CurrentBytes and never re-read.
	Corrupt int64 `json:"corrupt"`
	// WriteErrors counts disk-touching Save attempts that failed;
	// DegradedSkips Saves failed fast by the open breaker without
	// touching the disk.
	WriteErrors   int64 `json:"write_errors"`
	DegradedSkips int64 `json:"degraded_skips"`
	// Degraded is the breaker state; BreakerTrips/Probes/Recoveries its
	// cumulative history.
	Degraded     bool  `json:"degraded"`
	BreakerTrips int64 `json:"breaker_trips"`
	Probes       int64 `json:"probes"`
	Recoveries   int64 `json:"recoveries"`
}

// Stats returns the cumulative activity counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Loads: s.loads, LoadHits: s.loadHits,
		Saves: s.saves, Evictions: s.evictions, BytesEvicted: s.bytesEvicted,
		CurrentBytes: s.total, MaxBytes: s.maxBytes,
		Corrupt:     s.corrupt,
		WriteErrors: s.writeErrors, DegradedSkips: s.degradedSkips,
		Degraded: s.degraded, BreakerTrips: s.breakerTrips,
		Probes: s.probes, Recoveries: s.recoveries,
	}
}

// ModelFingerprint returns a short stable digest of the latency model's
// tables. It joins the block hash in persistent cache keys, so costings
// computed under one model are never served to another.
func ModelFingerprint(m *latency.Model) string {
	var sb strings.Builder
	for op := ir.Op(1); op.Valid(); op++ {
		sb.WriteString(strconv.Itoa(int(op)))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(m.SW[op]))
		for _, f := range []float64{m.HW[op], m.SWEnergy[op], m.HWEnergy[op], m.Area[op]} {
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		sb.WriteByte(';')
	}
	return fmt.Sprintf("%016x", fnv64(sb.String()))
}

// fnv64 is the FNV-1a 64-bit hash (inline to keep the fingerprint format
// under this package's control).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fnv64Bytes is fnv64 over raw bytes — the entry-file payload checksum.
func fnv64Bytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}
