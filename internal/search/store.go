package search

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/latency"
)

// DefaultStoreBytes is the default on-disk budget of a Store: generous
// enough for repeated sweeps over every kernel benchmark, small enough
// that a long-lived service cannot fill a disk.
const DefaultStoreBytes = 64 << 20

// Store persists per-block cut-costing maps on disk so a CostCache
// survives process restarts: repeated sweeps over the same application
// (CI, a long-lived service answering the same uploads) skip cut costing
// entirely. One gob file per (block hash, model fingerprint) pair lives
// under Dir; total size is bounded by MaxBytes with least-recently-used
// eviction (access order is tracked via file mtimes, which Load refreshes).
//
// A Store is safe for concurrent use. Corrupt or unreadable files are
// treated as absent — the cache recomputes and overwrites them.
type Store struct {
	dir      string
	maxBytes int64

	mu sync.Mutex
	// total tracks the summed size of entry files incrementally, so the
	// hot path never rescans the directory; evictLocked recomputes it
	// authoritatively on the rare occasions the bound is exceeded.
	total int64

	loads, loadHits, saves, evictions int64
	bytesEvicted                      int64
}

// NewStore opens (creating if needed) a persistent cache directory.
// maxBytes bounds the total size of stored entries; 0 selects
// DefaultStoreBytes, negative disables eviction.
func NewStore(dir string, maxBytes int64) (*Store, error) {
	if maxBytes == 0 {
		maxBytes = DefaultStoreBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("search: cache store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	// Sweep temp files orphaned by a crash between CreateTemp and the
	// rename: they can never be live across a process boundary, and
	// eviction ignores them, so they would otherwise accumulate outside
	// the size bound forever.
	if stale, err := filepath.Glob(filepath.Join(dir, "tmp-*.gob")); err == nil {
		for _, f := range stale {
			_ = os.Remove(f)
		}
	}
	for _, f := range s.entryFiles() {
		s.total += f.size
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// storedEntry is the gob payload: one costed cut keyed by its bit words.
type storedEntry struct {
	Key     string
	Metrics core.Metrics
}

// storeFormatVersion is embedded in entry file names. Bump it whenever
// the persisted payload's semantics change — the core.Metrics schema or
// the core.MetricsOf costing itself — so entries written by older
// binaries read as misses and are recomputed instead of silently serving
// stale costings (gob would otherwise decode drifted structs cleanly).
// Orphaned old-version files age out through the LRU size bound.
const storeFormatVersion = 1

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.v%d.gob", key, storeFormatVersion))
}

// Load reads the persisted costing map for the given stable key, returning
// (nil, false) when absent or unreadable. A successful load refreshes the
// file's mtime, marking it most-recently-used. The store lock is only
// taken for counter updates, never across file I/O.
func (s *Store) Load(key string) (map[string]core.Metrics, bool) {
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var entries []storedEntry
	if err := gob.NewDecoder(f).Decode(&entries); err != nil {
		return nil, false
	}
	m := make(map[string]core.Metrics, len(entries))
	for _, e := range entries {
		m[e.Key] = e.Metrics
	}
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
	s.mu.Lock()
	s.loadHits++
	s.mu.Unlock()
	return m, true
}

// Save atomically persists the costing map for the stable key (temp file +
// rename), then enforces the size bound by evicting the least recently
// used entries. Encoding happens outside the store lock; only the rename,
// size accounting and (rare) eviction are serialized, so saves do not
// block concurrent Loads on the job hot path for the duration of disk
// writes.
func (s *Store) Save(key string, m map[string]core.Metrics) error {
	entries := make([]storedEntry, 0, len(m))
	for k, v := range m {
		entries = append(entries, storedEntry{Key: k, Metrics: v})
	}
	// Deterministic file contents: sort by key.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })

	tmp, err := os.CreateTemp(s.dir, "tmp-*.gob")
	if err != nil {
		return fmt.Errorf("search: cache store: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(entries); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("search: cache store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("search: cache store: %w", err)
	}
	size := int64(0)
	if fi, err := os.Stat(tmp.Name()); err == nil {
		size = fi.Size()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var replaced int64
	if fi, err := os.Stat(s.path(key)); err == nil {
		replaced = fi.Size()
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("search: cache store: %w", err)
	}
	s.total += size - replaced
	s.saves++
	if s.maxBytes >= 0 && s.total > s.maxBytes {
		s.evictLocked(key)
	}
	return nil
}

type entryFile struct {
	name  string
	size  int64
	mtime time.Time
}

// entryFiles lists the store's entry files (ignoring in-flight temp
// files). Used at open and by eviction; never on the save/load hot path.
func (s *Store) entryFiles() []entryFile {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var files []entryFile
	for _, de := range dirents {
		if !strings.HasSuffix(de.Name(), ".gob") || strings.HasPrefix(de.Name(), "tmp-") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entryFile{de.Name(), fi.Size(), fi.ModTime()})
	}
	return files
}

// evictLocked removes least-recently-used entry files when the directory
// exceeds MaxBytes, refreshing the incremental size total from disk (the
// authoritative count). It evicts down to a low-water mark (90% of the
// bound) rather than just under it, so a store sitting at capacity does
// not re-run the full directory scan on every subsequent Save. The
// just-written key is exempt so a single oversized entry still persists
// its own costings.
func (s *Store) evictLocked(justSaved string) {
	files := s.entryFiles()
	var total int64
	for _, f := range files {
		total += f.size
	}
	target := s.maxBytes - s.maxBytes/10
	saved := filepath.Base(s.path(justSaved))
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= target {
			break
		}
		if f.name == saved {
			continue
		}
		if os.Remove(filepath.Join(s.dir, f.name)) == nil {
			total -= f.size
			s.evictions++
			s.bytesEvicted += f.size
		}
	}
	s.total = total
}

// StoreStats is a snapshot of the store's activity counters and size
// pressure. The size fields expose how close the store runs to its bound:
// a climbing Evictions/BytesEvicted alongside CurrentBytes pinned near
// MaxBytes means the working set no longer fits and the cap should grow.
type StoreStats struct {
	// Loads counts lookup attempts; LoadHits those that found a file.
	Loads    int64 `json:"loads"`
	LoadHits int64 `json:"load_hits"`
	// Saves counts persisted entry files; Evictions files removed by the
	// size bound, BytesEvicted their summed sizes.
	Saves        int64 `json:"saves"`
	Evictions    int64 `json:"evictions"`
	BytesEvicted int64 `json:"bytes_evicted"`
	// CurrentBytes is the store's incremental size accounting of live
	// entry files; MaxBytes the configured bound (negative = unbounded).
	CurrentBytes int64 `json:"current_bytes"`
	MaxBytes     int64 `json:"max_bytes"`
}

// Stats returns the cumulative activity counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Loads: s.loads, LoadHits: s.loadHits,
		Saves: s.saves, Evictions: s.evictions, BytesEvicted: s.bytesEvicted,
		CurrentBytes: s.total, MaxBytes: s.maxBytes,
	}
}

// ModelFingerprint returns a short stable digest of the latency model's
// tables. It joins the block hash in persistent cache keys, so costings
// computed under one model are never served to another.
func ModelFingerprint(m *latency.Model) string {
	var sb strings.Builder
	for op := ir.Op(1); op.Valid(); op++ {
		sb.WriteString(strconv.Itoa(int(op)))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(m.SW[op]))
		for _, f := range []float64{m.HW[op], m.SWEnergy[op], m.HWEnergy[op], m.Area[op]} {
			sb.WriteByte(':')
			sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		sb.WriteByte(';')
	}
	return fmt.Sprintf("%016x", fnv64(sb.String()))
}

// fnv64 is the FNV-1a 64-bit hash (inline to keep the fingerprint format
// under this package's control).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
