package search_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/search"
)

// cutsFingerprint serializes an engine result for bit-identity checks.
func cutsFingerprint(cuts []*core.Cut) string {
	var sb strings.Builder
	for i, c := range cuts {
		fmt.Fprintf(&sb, "cut %d: %v merit=%v io=(%d,%d)\n", i, c.Nodes, c.Merit(), c.NumIn, c.NumOut)
	}
	return sb.String()
}

// TestEngineSubtreeWorkersDeterminism pins the Limits.SubtreeWorkers
// contract through the unified engine layer: the exact engines return
// bit-identical cuts for every subtree worker count and split depth.
func TestEngineSubtreeWorkersDeterminism(t *testing.T) {
	model := latency.Default()
	obj := search.Merit(model)
	for _, spec := range kernels.All() {
		blk := spec.App.Blocks[0]
		for _, name := range []string{"iterative", "exact"} {
			if spec.CriticalSize > search.DefaultNodeLimit(name) {
				continue
			}
			eng, err := search.New(name, nil)
			if err != nil {
				t.Fatal(err)
			}
			baseLim := search.Limits{
				MaxIn: 4, MaxOut: 2, NISE: 2,
				NodeLimit: search.DefaultNodeLimit(name), Budget: search.DefaultBudget,
			}
			seqCuts, _, err := eng.Run(blk, obj, &baseLim)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", spec.Name, name, err)
			}
			seq := cutsFingerprint(seqCuts)
			for _, w := range []int{2, 6} {
				for _, d := range []int{0, 3} {
					lim := baseLim
					lim.SubtreeWorkers, lim.SplitDepth = w, d
					cuts, _, err := eng.Run(blk, obj, &lim)
					if err != nil {
						t.Fatalf("%s/%s workers=%d depth=%d: %v", spec.Name, name, w, d, err)
					}
					if got := cutsFingerprint(cuts); got != seq {
						t.Fatalf("%s/%s workers=%d depth=%d diverged\n--- got\n%s--- want\n%s",
							spec.Name, name, w, d, got, seq)
					}
				}
			}
		}
	}
}

// TestExactCancelMidBlockAES pins the in-block cancellation granularity on
// the workload that motivated it: the 696-node AES block is intractable
// for the exact single-cut search, so a cancelled run must abort
// mid-search (not at the next work-item boundary), promptly and without
// leaking subtree worker goroutines.
func TestExactCancelMidBlockAES(t *testing.T) {
	blk := kernels.AES().Blocks[0]
	model := latency.Default()
	obj := search.Merit(model)
	for _, w := range []int{1, 4} {
		base := runtime.NumGoroutine()
		eng, err := search.New("iterative", nil)
		if err != nil {
			t.Fatal(err)
		}
		// No node limit, no budget: only cancellation can stop this.
		lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 1, SubtreeWorkers: w}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, _, err = eng.RunContext(ctx, blk, obj, lim)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: mid-block cancellation took %v", w, elapsed)
		}
		waitGoroutinesBase(t, base)
		cancel()
	}
}

// TestKLCancelMidBlockAES: the same granularity for the K-L engine — a
// single AES trajectory aborts mid-pass through TrajectoryContext.
func TestKLCancelMidBlockAES(t *testing.T) {
	base := runtime.NumGoroutine()
	blk := kernels.AES().Blocks[0]
	model := latency.Default()
	kl, err := search.New("isegen", nil)
	if err != nil {
		t.Fatal(err)
	}
	lim := &search.Limits{MaxIn: 4, MaxOut: 2, NISE: 4, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = kl.RunContext(ctx, blk, search.Merit(model), lim)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A full AES K-L run takes many seconds; mid-block abort must be far
	// faster than finishing the block.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("mid-block cancellation took %v", elapsed)
	}
	waitGoroutinesBase(t, base)
	cancel()
}

// waitGoroutinesBase polls until the goroutine count returns to base
// (mirrors the helper in the package-internal context tests, which an
// external test file cannot reach).
func waitGoroutinesBase(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, want <= %d", runtime.NumGoroutine(), base)
}
