package search

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// oldTime returns a timestamp hours in the past, distinct per i, so LRU
// order is well defined on coarse filesystem timestamp granularity.
func oldTime(i int) time.Time { return time.Now().Add(time.Duration(i-48) * time.Hour) }

// sampleCostings is a small deterministic costing map for store tests.
func sampleCostings(n int) map[string]core.Metrics {
	m := make(map[string]core.Metrics, n)
	for i := 0; i < n; i++ {
		m[strings.Repeat("k", 8)+string(rune('a'+i))] = core.Metrics{SWLat: i, NumIn: i % 4}
	}
	return m
}

// diskBytes sums the sizes of live entry files under dir (excluding the
// quarantine subdirectory and temp files), the ground truth the store's
// incremental accounting must track.
func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".gob") || strings.HasPrefix(de.Name(), "tmp-") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestStoreQuarantinesCorruptEntries pins the poisoned-cache discipline:
// a mangled entry file reads as a miss exactly once, is moved to
// quarantine/ (never re-read, never re-counted), and the corruption
// counter records it.
func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleCostings(8)
	if err := store.Save("k", want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.v2.gob")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if m, ok := store.Load("k"); ok {
		t.Fatalf("corrupt entry was served: %v", m)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry left in place after failed load")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "k.v2.gob")); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	st := store.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	if st.CurrentBytes != 0 {
		t.Fatalf("CurrentBytes = %d after quarantine, want 0 (quarantined bytes must leave the budget)", st.CurrentBytes)
	}
	// The second load is a plain miss: the file is gone from the live
	// set, so it cannot re-fail (loads-hit accounting stays clean).
	if _, ok := store.Load("k"); ok {
		t.Fatal("quarantined entry loaded")
	}
	if got := store.Stats().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d after re-load, want 1 (quarantine must prevent re-reads)", got)
	}
	// A clean rewrite of the same key round-trips.
	if err := store.Save("k", want); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Load("k")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("re-saved entry does not round-trip")
	}
}

// TestStoreChecksumCatchesBitFlipOnRead pins silent media corruption:
// the bytes on disk are fine, the read path flips one bit, and the
// checksum must refuse the entry rather than decode it.
func TestStoreChecksumCatchesBitFlipOnRead(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(11, fault.Rule{Point: fault.PointRead, Kind: fault.BitFlip, Start: 1})
	store, err := NewStoreOptions(dir, 0, StoreOptions{FS: fault.NewInjectFS(nil, in)})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", sampleCostings(16)); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load("k"); !ok { // op 0: clean read
		t.Fatal("clean load failed")
	}
	if _, ok := store.Load("k"); ok { // op 1: flipped read
		t.Fatal("bit-flipped entry was decoded and served")
	}
	if got := store.Stats().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d, want 1", got)
	}
}

// TestStoreCrashRecovery kills the write path at every injected fault
// point with every applicable failure kind, then reopens the directory
// with a clean filesystem and requires: NewStore succeeds, the key either
// misses or round-trips exactly (after at most one quarantining load),
// the size accounting matches the disk, and a subsequent clean save
// round-trips. This is the ALICE-style torn-write sweep for the gob
// store.
func TestStoreCrashRecovery(t *testing.T) {
	cases := []fault.Rule{
		{Point: fault.PointWrite, Kind: fault.Err},
		{Point: fault.PointWrite, Kind: fault.ENOSPC},
		{Point: fault.PointWrite, Kind: fault.PartialWrite},
		{Point: fault.PointSync, Kind: fault.Err},
		{Point: fault.PointRename, Kind: fault.Err},
		{Point: fault.PointRename, Kind: fault.TornRename},
	}
	want := sampleCostings(12)
	for _, rule := range cases {
		name := rule.Point + "/" + rule.Kind.String()
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			in := fault.New(99, rule)
			store, err := NewStoreOptions(dir, 0, StoreOptions{
				FS: fault.NewInjectFS(nil, in), Fsync: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Save("k", want); err == nil {
				t.Fatalf("Save under %s reported success", name)
			}
			if in.Fires(rule.Point) == 0 {
				t.Fatalf("fault at %s never fired", rule.Point)
			}

			// "Crash": abandon the store, reopen over the same directory
			// with a healthy filesystem.
			re, err := NewStore(dir, 0)
			if err != nil {
				t.Fatalf("reopen after %s: %v", name, err)
			}
			if m, ok := re.Load("k"); ok {
				// A load that succeeds must be the full, correct map —
				// anything else is served corruption.
				if !reflect.DeepEqual(m, want) {
					t.Fatalf("reopened load returned wrong data after %s", name)
				}
			}
			if got, onDisk := re.Stats().CurrentBytes, diskBytes(t, dir); got != onDisk {
				t.Fatalf("accounting %d != disk %d after %s", got, onDisk, name)
			}
			// The store must be fully serviceable after the crash.
			if err := re.Save("k", want); err != nil {
				t.Fatalf("clean save after reopen: %v", err)
			}
			m, ok := re.Load("k")
			if !ok || !reflect.DeepEqual(m, want) {
				t.Fatalf("post-recovery round-trip failed after %s", name)
			}
			if got, onDisk := re.Stats().CurrentBytes, diskBytes(t, dir); got != onDisk {
				t.Fatalf("post-recovery accounting %d != disk %d", got, onDisk)
			}
		})
	}
}

// TestStoreBreakerTripsAndRecovers pins the write circuit breaker: after
// BreakerThreshold consecutive failures Saves fail fast with
// ErrStoreDegraded (no disk traffic), probe attempts keep testing the
// disk, and the first successful probe restores healthy writes.
func TestStoreBreakerTripsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(7, fault.Rule{Point: fault.PointWrite, Kind: fault.ENOSPC})
	store, err := NewStoreOptions(dir, 0, StoreOptions{
		FS:               fault.NewInjectFS(nil, in),
		BreakerThreshold: 3,
		ProbeEvery:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sampleCostings(4)
	for i := 0; i < 3; i++ {
		if err := store.Save("k", m); err == nil || errors.Is(err, ErrStoreDegraded) {
			t.Fatalf("save %d: err = %v, want a real disk error pre-trip", i, err)
		}
	}
	if !store.Degraded() {
		t.Fatal("breaker did not trip after 3 consecutive failures")
	}
	writeOpsAtTrip := in.Ops(fault.PointWrite)

	// Degraded saves fail fast without touching the disk, except probes
	// (every 4th attempt here).
	sawProbe := false
	for i := 0; i < 8; i++ {
		err := store.Save("k", m)
		if errors.Is(err, ErrStoreDegraded) {
			continue
		}
		sawProbe = true
		if err == nil {
			t.Fatal("probe save succeeded while writes are still failing")
		}
	}
	if !sawProbe {
		t.Fatal("no probe attempt in 8 degraded saves with ProbeEvery=4")
	}
	st := store.Stats()
	if st.DegradedSkips == 0 || st.Probes == 0 {
		t.Fatalf("stats = %+v, want both degraded skips and probes", st)
	}
	if probeWrites := in.Ops(fault.PointWrite) - writeOpsAtTrip; probeWrites >= 8 {
		t.Fatalf("%d disk writes for 8 degraded saves; the breaker must absorb most of them", probeWrites)
	}

	// Disk heals: the next probe closes the breaker.
	in.Clear()
	recovered := false
	for i := 0; i < 8; i++ {
		if err := store.Save("k", m); err == nil {
			recovered = true
			break
		}
	}
	if !recovered || store.Degraded() {
		t.Fatal("store did not recover after faults cleared")
	}
	if got := store.Stats().Recoveries; got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	if got, ok := store.Load("k"); !ok || !reflect.DeepEqual(got, m) {
		t.Fatal("post-recovery entry does not round-trip")
	}
}

// TestStoreOldVersionFilesAgeOutCleanly pins satellite 6: v1-format files
// left by an older binary are never read (no corruption counted, no
// load), still occupy budget, and age out through the LRU bound.
func TestStoreOldVersionFilesAgeOutCleanly(t *testing.T) {
	dir := t.TempDir()
	// Plant stale v1 entries before the store opens, with old mtimes.
	for i := 0; i < 4; i++ {
		name := filepath.Join(dir, "old"+string(rune('a'+i))+".v1.gob")
		if err := os.WriteFile(name, make([]byte, 512), 0o644); err != nil {
			t.Fatal(err)
		}
		old := oldTime(i)
		if err := os.Chtimes(name, old, old); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewStore(dir, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().CurrentBytes; got != 4*512 {
		t.Fatalf("open counted %d bytes, want %d (old-version files occupy budget until evicted)", got, 4*512)
	}
	// Old-version keys never load — and never count as corruption.
	if _, ok := store.Load("olda"); ok {
		t.Fatal("v1 entry loaded through a v2 store")
	}
	if got := store.Stats().Corrupt; got != 0 {
		t.Fatalf("Corrupt = %d, want 0 (old versions are stale, not corrupt)", got)
	}
	// New saves push past the bound; the stale v1 files are the LRU
	// victims.
	big := sampleCostings(40)
	for i := 0; i < 8; i++ {
		if err := store.Save("new"+string(rune('a'+i)), big); err != nil {
			t.Fatal(err)
		}
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if strings.Contains(de.Name(), ".v1.") {
			t.Fatalf("stale v1 entry %s survived eviction", de.Name())
		}
	}
	if got := store.Stats().Corrupt; got != 0 {
		t.Fatalf("Corrupt = %d after eviction, want 0", got)
	}
}
