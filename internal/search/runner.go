package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/obs"
)

// Runner executes searches across the two independent axes of an
// application — basic blocks and K-L restart trajectories — on a bounded
// worker pool. Merge order is deterministic (input order for blocks, seed
// order for trajectories), so a Runner with N workers produces results
// bit-identical to the sequential path; only wall-clock time changes.
//
// Every method has a Context variant that honors cancellation: request
// timeouts and client disconnects (the serving scenario) abort between
// work items, the pool drains without leaking goroutines, and ctx.Err()
// is returned. The non-Context methods run under context.Background().
type Runner struct {
	// Workers bounds the pool; 0 means one worker per CPU core
	// (runtime.GOMAXPROCS), 1 forces the sequential path.
	Workers int
	// Cache is the shared cut-costing cache. Nil is fine: Generate then
	// memoizes within a single call (its driver rounds still overlap),
	// while RunBlocks passes nil through to the engines.
	Cache *CostCache
}

// workers normalizes a worker-count knob.
func workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(0..n-1) on at most w workers and waits for all.
// With w <= 1 it degenerates to a plain loop on the calling goroutine.
// Cancellation is checked before each work item is claimed: in-flight
// items finish (results stay deterministic for every completed slot),
// unclaimed items are skipped, every worker goroutine exits before the
// call returns, and the context's error is reported.
//
// A panic in fn is re-raised on the calling goroutine after the pool has
// drained (first panic wins; remaining items are skipped), so callers see
// the same propagation semantics as a plain loop — a serving layer's
// recover around the call contains the crash no matter the worker count.
func parallelFor(ctx context.Context, w, n int, fn func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal atomic.Value
	wg.Add(w)
	done := ctx.Done()
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal.Store(r)
					}
				}
			}()
			for {
				select {
				case <-done:
					return
				default:
				}
				if panicked.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
	return ctx.Err()
}

// candidates runs the engine's restart trajectories — in parallel when
// w > 1 — and finalizes the merged snapshot pool. Snapshots are merged in
// seed order, which is exactly the order the sequential Candidates path
// produces, so the result is identical for every worker count. Each
// trajectory polls the context inside its K-L loop (TrajectoryContext),
// so cancellation aborts mid-block — a 696-node AES bi-partition stops
// within a few toggle steps, not at the next work-item boundary. On
// cancellation it returns nil and the context's error.
func candidates(ctx context.Context, eng *core.Engine, w int) ([]*core.Cut, error) {
	seeds := eng.Seeds()
	if workers(w) <= 1 || len(seeds) <= 1 {
		var snaps []core.Candidate
		for _, seed := range seeds {
			ts, err := eng.TrajectoryContext(ctx, seed)
			if err != nil {
				return nil, err
			}
			snaps = append(snaps, ts...)
		}
		return eng.Finalize(snaps), nil
	}
	perSeed := make([][]core.Candidate, len(seeds))
	err := parallelFor(ctx, workers(w), len(seeds), func(i int) {
		// A cancelled trajectory's error surfaces through parallelFor's
		// ctx check; its partial snapshots are discarded with the run.
		perSeed[i], _ = eng.TrajectoryContext(ctx, seeds[i])
	})
	if err != nil {
		return nil, err
	}
	var snaps []core.Candidate
	for _, s := range perSeed {
		snaps = append(snaps, s...)
	}
	return eng.Finalize(snaps), nil
}

// ClaimFunc is invoked by Generate after each cut is selected; it may
// freeze additional nodes (e.g. other isomorphic instances of the cut
// discovered by the reuse matcher) by mutating the per-block excluded sets
// it is handed. Claims run sequentially in selection order.
type ClaimFunc func(blockIdx int, cut *core.Cut, excluded []*graph.BitSet)

// Generate runs GenerateContext under context.Background().
func (r *Runner) Generate(app *ir.Application, cfg core.Config, obj *Objective, claim ClaimFunc) ([]*core.Cut, Stats, error) {
	return r.GenerateContext(context.Background(), app, cfg, obj, claim)
}

// GenerateContext solves the paper's Problem 2 over a whole application:
// it repeatedly selects the block with the highest remaining speedup
// potential (execution frequency × estimated gain of its remaining
// feasible nodes), bi-partitions it with restart trajectories fanned out
// across the worker pool, lets the objective pick from the candidate pool,
// freezes the selected nodes and repeats until cfg.NISE cuts are found or
// no block yields an accepted candidate.
//
// The greedy round structure is inherently sequential — each round's
// exclusions depend on the previous selection — so the parallelism lives
// inside the rounds, and the output is bit-identical for every worker
// count. Cancellation is honored between rounds and between restart
// trajectories; a cancelled run returns ctx.Err() and the cuts selected
// so far (a deterministic prefix of the full run's output).
func (r *Runner) GenerateContext(ctx context.Context, app *ir.Application, cfg core.Config, obj *Objective, claim ClaimFunc) ([]*core.Cut, Stats, error) {
	ctx, sp := obs.StartSpan(ctx, obs.KindEngine, "ISEGEN")
	defer sp.End()
	start := time.Now()
	stats := Stats{Engine: "ISEGEN"}
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	if obj == nil {
		obj = Merit(cfg.Model)
	} else if obj.Model == nil {
		// Resolve on a copy: the caller's Objective may be shared
		// across concurrent Generate calls.
		resolved := *obj
		resolved.Model = cfg.Model
		obj = &resolved
	}
	cfg.Model = obj.Model
	cache := r.Cache
	if cache == nil {
		cache = NewCostCache()
	}
	w := workers(r.Workers)
	if cfg.Workers > 0 {
		w = cfg.Workers
	}

	excluded := make([]*graph.BitSet, len(app.Blocks))
	for i, blk := range app.Blocks {
		if err := cfg.Model.Validate(blk); err != nil {
			return nil, stats, err
		}
		excluded[i] = graph.NewBitSet(blk.N())
	}
	// Multi-objective runs accumulate the Pareto frontier of every
	// candidate pool; frontier maintenance happens only on this (driver)
	// goroutine, in round order, so it is deterministic for every worker
	// count — including the bounded-frontier eviction. stats.Frontier
	// stays nil for scalar objectives.
	if obj.MultiObjective() {
		stats.Frontier = NewBoundedFrontier(obj.maxFrontier)
	}
	var cuts []*core.Cut
	exhausted := make([]bool, len(app.Blocks))
	for len(cuts) < cfg.NISE {
		if err := ctx.Err(); err != nil {
			stats.Cuts = len(cuts)
			stats.Duration = time.Since(start)
			return cuts, stats, err
		}
		if ft := fault.FromContext(ctx).Check(fault.PointSearchRound); ft.Firing() {
			// Error-shaped kinds abort the round loop (the cuts selected so
			// far are a deterministic prefix, same as cancellation); Panic
			// and Stall flow through Apply.
			if err := ft.Error(); err != nil {
				stats.Cuts = len(cuts)
				stats.Duration = time.Since(start)
				return cuts, stats, err
			}
			ft.Apply(ctx)
		}
		bi := selectBlock(app, cfg.Model, excluded, exhausted)
		if bi < 0 {
			break
		}
		eng, err := core.NewEngine(app.Blocks[bi], cfg, excluded[bi])
		if err != nil {
			return nil, stats, err
		}
		eng.SetMetrics(cache.Metrics)
		bctx, bsp := obs.StartSpan(ctx, obs.KindBlock, app.Blocks[bi].Name)
		cands, err := candidates(bctx, eng, w)
		bsp.End()
		if err != nil {
			stats.Cuts = len(cuts)
			stats.Duration = time.Since(start)
			return cuts, stats, err
		}
		stats.Candidates += len(cands)
		cut := obj.pick(bi, cands, excluded, stats.Frontier)
		if cut == nil {
			exhausted[bi] = true
			continue
		}
		if stats.Frontier != nil {
			stats.Frontier.markSelected(bi, cut)
		}
		cuts = append(cuts, cut)
		excluded[bi].Or(cut.Nodes)
		if claim != nil {
			claim(bi, cut, excluded)
		}
	}
	stats.Cuts = len(cuts)
	stats.Duration = time.Since(start)
	return cuts, stats, nil
}

// RunBlocks runs RunBlocksContext under context.Background().
func (r *Runner) RunBlocks(blocks []*ir.Block, eng Engine, obj *Objective, lim *Limits) ([][]*core.Cut, []Stats, error) {
	return r.RunBlocksContext(context.Background(), blocks, eng, obj, lim)
}

// RunBlocksContext fans the engine out over independent basic blocks on
// the worker pool and merges results in input order. Per-block failures do
// not stop the fan-out; the first error (by block order) is returned
// alongside the full result and stats slices, whose entries are valid
// wherever the corresponding error slot was nil. Cancellation short-
// circuits unstarted blocks, aborts in-flight engine runs mid-block
// (Engine.RunContext), and returns ctx.Err() (which takes precedence
// over per-block errors, since unstarted slots are indistinguishable from
// failed ones at that point).
func (r *Runner) RunBlocksContext(ctx context.Context, blocks []*ir.Block, eng Engine, obj *Objective, lim *Limits) ([][]*core.Cut, []Stats, error) {
	cuts := make([][]*core.Cut, len(blocks))
	stats := make([]Stats, len(blocks))
	errs := make([]error, len(blocks))
	if err := parallelFor(ctx, workers(r.Workers), len(blocks), func(i int) {
		cuts[i], stats[i], errs[i] = eng.RunContext(ctx, blocks[i], obj, lim)
	}); err != nil {
		return cuts, stats, err
	}
	for _, err := range errs {
		if err != nil {
			return cuts, stats, err
		}
	}
	return cuts, stats, nil
}

// ForEach runs ForEachContext under context.Background().
func (r *Runner) ForEach(n int, fn func(i int)) {
	_ = r.ForEachContext(context.Background(), n, fn)
}

// ForEachContext runs fn(0..n-1) on the runner's worker pool and waits. It
// is the deterministic fan-out primitive the experiment harnesses and the
// service use for embarrassingly parallel sweeps (results must be written
// to slot i only). It returns ctx.Err() when cancelled mid-sweep.
func (r *Runner) ForEachContext(ctx context.Context, n int, fn func(i int)) error {
	return parallelFor(ctx, workers(r.Workers), n, fn)
}

// selectBlock returns the index of the non-exhausted block with the
// highest speedup potential, or -1 when none remains.
func selectBlock(app *ir.Application, model *latency.Model, excluded []*graph.BitSet, exhausted []bool) int {
	best, bestPot := -1, 0.0
	for i, blk := range app.Blocks {
		if exhausted[i] {
			continue
		}
		pot := core.BlockPotential(blk, model, excluded[i])
		if pot <= 0 {
			exhausted[i] = true
			continue
		}
		if best < 0 || pot > bestPot {
			best, bestPot = i, pot
		}
	}
	return best
}
