package search

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// CostCache memoizes cut costing (core.MetricsOf) per block: the key is
// the cut's backing bit words, the value the full core.Metrics. All three
// identification algorithms cost cuts through the same signature, so one
// cache shared across exact, genetic and K-L restarts (and across the
// multi-cut driver's successive rounds, whose candidate pools overlap
// heavily) eliminates the repeated longest-path/port/convexity sweeps.
//
// Metrics is a pure function of (block, model, cut); concurrent lookups
// from the worker pool therefore stay deterministic no matter how they
// interleave. A CostCache is safe for concurrent use.
type CostCache struct {
	mu     sync.RWMutex
	blocks map[blockModelKey]*blockCache

	hits, misses atomic.Int64
}

type blockModelKey struct {
	blk   *ir.Block
	model *latency.Model
}

type blockCache struct {
	mu sync.RWMutex
	m  map[string]core.Metrics
}

// NewCostCache returns an empty cache.
func NewCostCache() *CostCache {
	return &CostCache{blocks: map[blockModelKey]*blockCache{}}
}

// Metrics is a core.MetricsFunc: it returns the memoized costing of the
// cut, computing and storing it on first sight.
func (c *CostCache) Metrics(blk *ir.Block, model *latency.Model, cut *graph.BitSet) core.Metrics {
	bc := c.blockFor(blk, model)
	key := cutKey(cut)

	bc.mu.RLock()
	m, ok := bc.m[key]
	bc.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return m
	}
	c.misses.Add(1)
	m = core.MetricsOf(blk, model, cut)
	bc.mu.Lock()
	bc.m[key] = m
	bc.mu.Unlock()
	return m
}

// Stats returns the cumulative hit and miss counts.
func (c *CostCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *CostCache) blockFor(blk *ir.Block, model *latency.Model) *blockCache {
	key := blockModelKey{blk, model}
	c.mu.RLock()
	bc, ok := c.blocks[key]
	c.mu.RUnlock()
	if ok {
		return bc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bc, ok = c.blocks[key]; ok {
		return bc
	}
	bc = &blockCache{m: map[string]core.Metrics{}}
	c.blocks[key] = bc
	return bc
}

// cutKey serializes the cut's words into a map key. Two cuts of the same
// block collide exactly when they contain the same nodes.
func cutKey(cut *graph.BitSet) string {
	words := cut.Words()
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}
