package search

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// CostCache memoizes cut costing (core.MetricsOf) per block: the key is
// the cut's backing bit words, the value the full core.Metrics. All three
// identification algorithms cost cuts through the same signature, so one
// cache shared across exact, genetic and K-L restarts (and across the
// multi-cut driver's successive rounds, whose candidate pools overlap
// heavily) eliminates the repeated longest-path/port/convexity sweeps.
//
// Metrics is a pure function of (block, model, cut); concurrent lookups
// from the worker pool therefore stay deterministic no matter how they
// interleave. A CostCache is safe for concurrent use.
//
// By default blocks are keyed by pointer identity, which is free but
// means two parses of the same .dfg text never share entries. A cache
// created with NewPersistentCostCache instead keys blocks by their
// canonical content hash (dfgio.BlockHash) combined with the model
// fingerprint: structurally identical blocks share one costing map no
// matter how many times they were parsed — the long-lived service's
// repeated-upload scenario — and, when a Store is attached, the maps are
// loaded from and flushed to disk so they survive process restarts.
type CostCache struct {
	mu     sync.RWMutex
	blocks map[blockModelKey]*blockCache
	// byKey indexes block caches by stable content key (persistent mode
	// only); pointer-keyed entries alias into it.
	byKey map[string]*blockCache
	store *Store
	// modelFPs memoizes ModelFingerprint per model (persistent mode):
	// the fingerprint is re-needed on every block's first touch, and the
	// handful of long-lived models a process uses makes this map tiny.
	modelFPs map[*latency.Model]string

	hits, misses atomic.Int64
}

type blockModelKey struct {
	blk   *ir.Block
	model *latency.Model
}

type blockCache struct {
	mu sync.RWMutex
	m  map[string]core.Metrics
	// key is the stable content key ("" in pointer-keyed mode); dirty
	// tracks whether entries were added since the last Flush/load.
	key   string
	dirty bool
}

// NewCostCache returns an empty, in-memory, pointer-keyed cache.
func NewCostCache() *CostCache {
	return &CostCache{blocks: map[blockModelKey]*blockCache{}}
}

// NewPersistentCostCache returns a cache that keys blocks by canonical
// content hash, so structurally identical blocks share entries across
// parses, and that loads/flushes per-block costing maps through the given
// store. A nil store is allowed: the cache is then content-keyed but
// memory-only (shared across uploads, lost on exit).
func NewPersistentCostCache(store *Store) *CostCache {
	return &CostCache{
		blocks:   map[blockModelKey]*blockCache{},
		byKey:    map[string]*blockCache{},
		store:    store,
		modelFPs: map[*latency.Model]string{},
	}
}

// modelFP returns the memoized model fingerprint.
func (c *CostCache) modelFP(model *latency.Model) string {
	c.mu.RLock()
	fp, ok := c.modelFPs[model]
	c.mu.RUnlock()
	if ok {
		return fp
	}
	fp = ModelFingerprint(model)
	c.mu.Lock()
	// The memo is bounded by the same reasoning as blockModelKey: a
	// process uses a handful of models; guard anyway against a caller
	// minting one per request.
	if len(c.modelFPs) >= maxPointerAliases {
		c.modelFPs = map[*latency.Model]string{}
	}
	c.modelFPs[model] = fp
	c.mu.Unlock()
	return fp
}

// Metrics is a core.MetricsFunc: it returns the memoized costing of the
// cut, computing and storing it on first sight. The hit path allocates
// nothing: the key bytes live in a stack buffer (for blocks up to 1024
// nodes) and the map lookup uses the compiler's zero-copy []byte→string
// conversion; only a miss materializes the key string for insertion.
func (c *CostCache) Metrics(blk *ir.Block, model *latency.Model, cut *graph.BitSet) core.Metrics {
	bc := c.blockFor(blk, model)
	var arr [128]byte
	buf := cutKeyInto(arr[:0], cut)

	bc.mu.RLock()
	m, ok := bc.m[string(buf)]
	bc.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return m
	}
	c.misses.Add(1)
	m = core.MetricsOf(blk, model, cut)
	bc.mu.Lock()
	bc.m[string(buf)] = m
	bc.dirty = true
	bc.mu.Unlock()
	return m
}

// Stats returns the cumulative hit and miss counts.
func (c *CostCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Store returns the attached persistence layer, nil for memory-only
// caches.
func (c *CostCache) Store() *Store { return c.store }

// Flush persists every dirty per-block costing map through the attached
// store. It is a no-op for caches without a store. Callers decide the
// cadence: the service flushes after each job, the offline tools at exit.
func (c *CostCache) Flush() error {
	if c.store == nil {
		return nil
	}
	c.mu.RLock()
	caches := make([]*blockCache, 0, len(c.byKey))
	for _, bc := range c.byKey {
		caches = append(caches, bc)
	}
	c.mu.RUnlock()
	var firstErr error
	for _, bc := range caches {
		bc.mu.Lock()
		if !bc.dirty {
			bc.mu.Unlock()
			continue
		}
		snapshot := make(map[string]core.Metrics, len(bc.m))
		for k, v := range bc.m {
			snapshot[k] = v
		}
		bc.dirty = false
		bc.mu.Unlock()
		if err := c.store.Save(bc.key, snapshot); err != nil {
			// Re-mark dirty so a transient failure (disk full, EACCES)
			// is retried by the next Flush instead of silently dropping
			// the block's costings from persistence forever.
			bc.mu.Lock()
			bc.dirty = true
			bc.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// maxPointerAliases bounds the pointer-identity memo in content-keyed
// mode. Each upload parses fresh *ir.Block values; without a bound the
// memo would pin every request's parsed blocks (nodes, DAGs) in a
// long-lived service. Dropping the memo only costs a re-hash on next
// sight — the costings themselves live in byKey.
const maxPointerAliases = 4096

// maxBlockCaches bounds the content-keyed costing maps held in memory.
// A daemon serving many distinct applications would otherwise accumulate
// one costing map per unique (block, model) forever; beyond the bound,
// clean entries are dropped (they reload from the store, or recompute —
// the cache is a pure accelerator) while dirty, not-yet-flushed entries
// are kept so no persisted work is lost.
const maxBlockCaches = 1024

func (c *CostCache) blockFor(blk *ir.Block, model *latency.Model) *blockCache {
	key := blockModelKey{blk, model}
	c.mu.RLock()
	bc, ok := c.blocks[key]
	c.mu.RUnlock()
	if ok {
		return bc
	}
	// Persistent mode: resolve the stable content key outside the lock
	// (hashing a large block is the expensive part and is done once per
	// block pointer).
	stable := ""
	if c.byKey != nil {
		stable = dfgio.BlockHash(blk) + "-" + c.modelFP(model)
	}
	c.mu.Lock()
	if bc, ok = c.blocks[key]; ok {
		c.mu.Unlock()
		return bc
	}
	if stable != "" && len(c.blocks) >= maxPointerAliases {
		c.blocks = map[blockModelKey]*blockCache{}
	}
	if stable != "" {
		if bc, ok = c.byKey[stable]; ok {
			c.blocks[key] = bc
			c.mu.Unlock()
			return bc
		}
		if len(c.byKey) >= maxBlockCaches {
			// Without a store every entry is evictable (the cache is a
			// pure accelerator); with one, prefer keeping dirty entries
			// so their pending costings still reach disk on the next
			// Flush.
			for k, old := range c.byKey {
				old.mu.RLock()
				dirty := old.dirty
				old.mu.RUnlock()
				if c.store == nil || !dirty {
					delete(c.byKey, k)
				}
			}
			if len(c.byKey) >= maxBlockCaches {
				// Everything is dirty — a persistently failing disk
				// keeps Flush from ever clearing the flags. Unflushed
				// costings are recomputable; unbounded memory is not
				// survivable, so the bound wins.
				c.byKey = map[string]*blockCache{}
			}
			// Stale pointer aliases into dropped caches go with them.
			c.blocks = map[blockModelKey]*blockCache{}
		}
	}
	bc = &blockCache{m: map[string]core.Metrics{}, key: stable}
	c.blocks[key] = bc
	if stable != "" {
		c.byKey[stable] = bc
	}
	c.mu.Unlock()
	// Prefill from disk outside the cache lock; concurrent first-touch
	// races at worst overwrite identical values (Metrics is pure).
	if stable != "" && c.store != nil {
		if m, ok := c.store.Load(stable); ok {
			bc.mu.Lock()
			for k, v := range m {
				if _, exists := bc.m[k]; !exists {
					bc.m[k] = v
				}
			}
			bc.mu.Unlock()
		}
	}
	return bc
}

// cutKeyInto appends the cut's words to dst as a map key. Two cuts of the
// same block collide exactly when they contain the same nodes.
func cutKeyInto(dst []byte, cut *graph.BitSet) []byte {
	for _, w := range cut.Words() {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}
