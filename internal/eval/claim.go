package eval

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/reuse"
)

// Claimer turns identified cuts into Selections by finding all isomorphic
// instances of each cut across the application, claiming pairwise-disjoint
// ones and rejecting instances that would create a dependency cycle
// between atomic ISE executions. It is shared by the ISEGEN facade and by
// the experiment harnesses (so the baselines get the same reuse treatment
// as ISEGEN).
type Claimer struct {
	app  *ir.Application
	kept map[int][]claimInfo
	// PerBlockLimit bounds matcher results per block (0 = unlimited;
	// the default from NewClaimer is 256).
	PerBlockLimit int
}

type claimInfo struct {
	nodes *graph.BitSet
	desc  *graph.BitSet
}

// NewClaimer returns a Claimer for the application.
func NewClaimer(app *ir.Application) *Claimer {
	return &Claimer{app: app, kept: map[int][]claimInfo{}, PerBlockLimit: 256}
}

func (c *Claimer) reach(bi int, nodes *graph.BitSet) *graph.BitSet {
	blk := c.app.Blocks[bi]
	d := graph.NewBitSet(blk.N())
	nodes.ForEach(func(v int) bool {
		d.Or(blk.DAG().Desc(v))
		return true
	})
	return d
}

// createsCycle reports whether adding an instance with the given node and
// reach sets to the kept instances of one block would close a dependency
// cycle among atomic ISE executions. Contraction edges A→B exist when some
// node of B is (node-level) reachable from A; the candidate closes a cycle
// when an instance it feeds reaches, through contraction edges, an
// instance feeding it.
func createsCycle(kept []claimInfo, nodes, desc *graph.BitSet) bool {
	k := len(kept)
	if k == 0 {
		return false
	}
	var fedByCand, feedsCand []int
	for i, ki := range kept {
		if desc.Intersects(ki.nodes) {
			fedByCand = append(fedByCand, i)
		}
		if ki.desc.Intersects(nodes) {
			feedsCand = append(feedsCand, i)
		}
	}
	if len(fedByCand) == 0 || len(feedsCand) == 0 {
		return false
	}
	target := make([]bool, k)
	for _, i := range feedsCand {
		target[i] = true
	}
	seen := make([]bool, k)
	queue := append([]int(nil), fedByCand...)
	for _, i := range queue {
		seen[i] = true
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if target[i] {
			return true
		}
		for j, kj := range kept {
			if !seen[j] && kept[i].desc.Intersects(kj.nodes) {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	return false
}

// Claim finds and claims the instances of cut (identified in block
// blockIdx). excluded holds, per block, the nodes unavailable for new
// instances — typically the union of previously claimed instances plus the
// cut's own nodes; Claim extends it with every instance it accepts. The
// returned selection may be empty if even the seed occurrence would form a
// dependency cycle.
func (c *Claimer) Claim(blockIdx int, cut *core.Cut, excluded []*graph.BitSet) Selection {
	avail := make([]*graph.BitSet, len(c.app.Blocks))
	for i, ex := range excluded {
		avail[i] = complementOf(ex, c.app.Blocks[i].N())
	}
	avail[blockIdx].Or(cut.Nodes) // the matcher must see the seed occurrence

	cands := reuse.FindAppInstances(c.app, blockIdx, cut.Nodes, avail, c.PerBlockLimit)
	picked := reuse.ClaimDisjoint(cands, blockIdx, cut.Nodes)

	sel := Selection{Cut: cut}
	for _, inst := range picked {
		d := c.reach(inst.BlockIdx, inst.Nodes)
		if createsCycle(c.kept[inst.BlockIdx], inst.Nodes, d) {
			continue
		}
		c.kept[inst.BlockIdx] = append(c.kept[inst.BlockIdx], claimInfo{inst.Nodes, d})
		sel.Instances = append(sel.Instances, inst)
		excluded[inst.BlockIdx].Or(inst.Nodes)
	}
	return sel
}

// CountInstances predicts, without claiming anything, how many disjoint
// schedulable instances of the cut could be claimed given the current
// excluded sets — the reuse-aware scoring primitive. Scoring is capped at
// 64 matches per block (enough to rank candidates) and very large cuts
// are assumed unique without searching: patterns beyond ~48 nodes
// essentially never repeat, and matching them is where backtracking cost
// concentrates.
func (c *Claimer) CountInstances(blockIdx int, cut *core.Cut, excluded []*graph.BitSet) int {
	if cut.Size() > 48 {
		return 1
	}
	limit := c.PerBlockLimit
	if limit == 0 || limit > 64 {
		limit = 64
	}
	avail := make([]*graph.BitSet, len(c.app.Blocks))
	for i, ex := range excluded {
		avail[i] = complementOf(ex, c.app.Blocks[i].N())
	}
	avail[blockIdx].Or(cut.Nodes)
	cands := reuse.FindAppInstances(c.app, blockIdx, cut.Nodes, avail, limit)
	picked := reuse.ClaimDisjoint(cands, blockIdx, cut.Nodes)

	// Simulate the cycle filter against shallow copies of the kept
	// lists, so the real state is untouched.
	tmp := map[int][]claimInfo{}
	count := 0
	for _, inst := range picked {
		bi := inst.BlockIdx
		kept, ok := tmp[bi]
		if !ok {
			kept = append([]claimInfo(nil), c.kept[bi]...)
		}
		d := c.reach(bi, inst.Nodes)
		if createsCycle(kept, inst.Nodes, d) {
			tmp[bi] = kept
			continue
		}
		tmp[bi] = append(kept, claimInfo{inst.Nodes, d})
		count++
	}
	return count
}

func complementOf(set *graph.BitSet, n int) *graph.BitSet {
	out := graph.NewBitSet(n)
	for v := 0; v < n; v++ {
		if !set.Has(v) {
			out.Set(v)
		}
	}
	return out
}

// ClaimAllWithReuse converts a list of already-identified cuts (from any
// algorithm) into Selections with full reuse: each cut's nodes are
// reserved up front, then instances are claimed cut by cut.
func ClaimAllWithReuse(app *ir.Application, cuts []*core.Cut, blockIdxOf func(*core.Cut) int) []Selection {
	excluded := make([]*graph.BitSet, len(app.Blocks))
	for i, blk := range app.Blocks {
		excluded[i] = graph.NewBitSet(blk.N())
	}
	for _, cut := range cuts {
		excluded[blockIdxOf(cut)].Or(cut.Nodes)
	}
	cl := NewClaimer(app)
	var sels []Selection
	for _, cut := range cuts {
		sel := cl.Claim(blockIdxOf(cut), cut, excluded)
		if len(sel.Instances) > 0 {
			sels = append(sels, sel)
		}
	}
	return sels
}
