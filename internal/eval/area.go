package eval

import (
	"math"
	"repro/internal/core"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// AFUArea returns the datapath area of a cut in NAND2-equivalent gates:
// the sum of its operators' areas (one AFU serves every instance of the
// cut, so area is paid once per selection).
func AFUArea(blk *ir.Block, model *latency.Model, cut *graph.BitSet) float64 {
	total := 0.0
	cut.ForEach(func(v int) bool {
		total += model.Area[blk.Nodes[v].Op]
		return true
	})
	return total
}

// SelectionSavings returns the freq-weighted cycles a selection saves per
// profile run (the knapsack value of the selection).
func SelectionSavings(app *ir.Application, model *latency.Model, sel Selection) float64 {
	total := 0.0
	for _, inst := range sel.Instances {
		blk := app.Blocks[inst.BlockIdx]
		sw, cp, _, _, _ := core.CutMetrics(blk, model, inst.Nodes)
		total += blk.Freq * core.MeritOf(sw, cp)
	}
	return total
}

// SelectUnderAreaBudget picks the subset of selections maximizing total
// freq-weighted savings under a total AFU area budget (0/1 knapsack; each
// selection pays its cut's datapath area once, regardless of instance
// count — that is exactly why reusable cuts shine under area pressure).
// A budget <= 0 returns all selections.
func SelectUnderAreaBudget(app *ir.Application, model *latency.Model, sels []Selection, budget float64) []Selection {
	if budget <= 0 || len(sels) == 0 {
		return sels
	}
	// Scale areas to integer units of `grain` gates for the DP.
	const grain = 16.0
	cap := int(budget / grain)
	if cap <= 0 {
		return nil
	}
	weights := make([]int, len(sels))
	values := make([]float64, len(sels))
	for i, sel := range sels {
		blk := sel.Cut.Block
		w := int(math.Ceil(AFUArea(blk, model, sel.Cut.Nodes) / grain))
		if w < 1 {
			w = 1
		}
		weights[i] = w
		values[i] = SelectionSavings(app, model, sel)
	}
	// DP over capacity with choice reconstruction.
	best := make([][]float64, len(sels)+1)
	for i := range best {
		best[i] = make([]float64, cap+1)
	}
	for i := 1; i <= len(sels); i++ {
		for c := 0; c <= cap; c++ {
			best[i][c] = best[i-1][c]
			if w := weights[i-1]; c >= w {
				if v := best[i-1][c-w] + values[i-1]; v > best[i][c] {
					best[i][c] = v
				}
			}
		}
	}
	var picked []Selection
	c := cap
	for i := len(sels); i >= 1; i-- {
		if best[i][c] != best[i-1][c] {
			picked = append(picked, sels[i-1])
			c -= weights[i-1]
		}
	}
	// Restore original order.
	for l, r := 0, len(picked)-1; l < r; l, r = l+1, r-1 {
		picked[l], picked[r] = picked[r], picked[l]
	}
	return picked
}

// TotalAFUArea sums the AFU areas of the selections.
func TotalAFUArea(model *latency.Model, sels []Selection) float64 {
	total := 0.0
	for _, sel := range sels {
		total += AFUArea(sel.Cut.Block, model, sel.Cut.Nodes)
	}
	return total
}
