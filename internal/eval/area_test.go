package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/reuse"
)

// buildAreaApp: one block with a mul-heavy cut (big area, big savings) and
// a logic-only cut (tiny area, small savings), as separate components.
func buildAreaApp(t *testing.T) (*ir.Application, []Selection) {
	t.Helper()
	bu := ir.NewBuilder("hot", 100)
	a, b, c := bu.Input("a"), bu.Input("b"), bu.Input("c")
	m1 := bu.Mul(a, b)
	m2 := bu.Mul(m1, c)
	s1 := bu.Add(m2, a)
	x1 := bu.Xor(a, b)
	x2 := bu.Xor(x1, c)
	x3 := bu.Xor(x2, a)
	bu.LiveOut(s1, x3)
	blk := bu.MustBuild()
	app := &ir.Application{Name: "area", Blocks: []*ir.Block{blk}}

	model := latency.Default()
	mkSel := func(ids ...int) Selection {
		cut := graph.NewBitSet(blk.N())
		for _, id := range ids {
			cut.Set(id)
		}
		sw, cp, in, out, _ := core.CutMetrics(blk, model, cut)
		return Selection{
			Cut:       &core.Cut{Block: blk, Nodes: cut, NumIn: in, NumOut: out, SWLat: sw, HWLat: cp},
			Instances: []reuse.Instance{{BlockIdx: 0, Nodes: cut}},
		}
	}
	// Selection 0: the three-op multiply chain; selection 1: the xor chain.
	return app, []Selection{mkSel(0, 1, 2), mkSel(3, 4, 5)}
}

func TestAFUArea(t *testing.T) {
	app, sels := buildAreaApp(t)
	model := latency.Default()
	blk := app.Blocks[0]
	mulArea := AFUArea(blk, model, sels[0].Cut.Nodes)
	xorArea := AFUArea(blk, model, sels[1].Cut.Nodes)
	if mulArea <= 10*xorArea {
		t.Errorf("mul chain area %v should dwarf xor chain %v", mulArea, xorArea)
	}
	want := 2*model.Area[ir.OpMul] + model.Area[ir.OpAdd]
	if math.Abs(mulArea-want) > 1e-9 {
		t.Errorf("mul chain area = %v, want %v", mulArea, want)
	}
}

func TestSelectionSavings(t *testing.T) {
	app, sels := buildAreaApp(t)
	model := latency.Default()
	// Mul chain: sw 3+3+1 = 7, hw ceil(.9+.9+.3)=3 -> merit 4, freq 100.
	if got := SelectionSavings(app, model, sels[0]); math.Abs(got-400) > 1e-9 {
		t.Errorf("mul savings = %v, want 400", got)
	}
	// Xor chain: sw 3, ceil(.15)=1 -> merit 2, freq 100.
	if got := SelectionSavings(app, model, sels[1]); math.Abs(got-200) > 1e-9 {
		t.Errorf("xor savings = %v, want 200", got)
	}
}

func TestSelectUnderAreaBudget(t *testing.T) {
	app, sels := buildAreaApp(t)
	model := latency.Default()
	mulArea := AFUArea(app.Blocks[0], model, sels[0].Cut.Nodes)
	xorArea := AFUArea(app.Blocks[0], model, sels[1].Cut.Nodes)

	// Unlimited: everything selected.
	if got := SelectUnderAreaBudget(app, model, sels, 0); len(got) != 2 {
		t.Errorf("budget 0 (unlimited) kept %d, want 2", len(got))
	}
	all := SelectUnderAreaBudget(app, model, sels, mulArea+xorArea+32)
	if len(all) != 2 {
		t.Errorf("generous budget kept %d, want 2", len(all))
	}
	// Budget below the mul chain but above the xor chain: despite the
	// mul chain's larger savings, only the xor chain fits.
	onlyXor := SelectUnderAreaBudget(app, model, sels, xorArea+32)
	if len(onlyXor) != 1 || !onlyXor[0].Cut.Nodes.Has(3) {
		t.Errorf("tight budget selection wrong: %v", onlyXor)
	}
	// Budget fitting exactly one of the two, where the mul chain fits:
	// the knapsack must prefer the higher-savings item.
	onlyMul := SelectUnderAreaBudget(app, model, sels, mulArea+32)
	if len(onlyMul) != 1 || !onlyMul[0].Cut.Nodes.Has(0) {
		t.Errorf("mid budget should pick the mul chain: %v", onlyMul)
	}
	// Budget below everything: nothing fits.
	if got := SelectUnderAreaBudget(app, model, sels, 16); len(got) != 0 {
		t.Errorf("tiny budget kept %d, want 0", len(got))
	}
	if a := TotalAFUArea(model, all); math.Abs(a-(mulArea+xorArea)) > 1e-9 {
		t.Errorf("TotalAFUArea = %v", a)
	}
}

// Property-style check: the knapsack result never exceeds the budget and
// never beats exhaustive enumeration on small instances.
func TestSelectUnderAreaBudgetOptimal(t *testing.T) {
	app, sels := buildAreaApp(t)
	model := latency.Default()
	for _, budget := range []float64{100, 1000, 5000, 9000, 17000, 25000} {
		got := SelectUnderAreaBudget(app, model, sels, budget)
		area := TotalAFUArea(model, got)
		if area > budget {
			t.Errorf("budget %v exceeded: %v", budget, area)
		}
		gotVal := 0.0
		for _, s := range got {
			gotVal += SelectionSavings(app, model, s)
		}
		// Exhaustive over the 4 subsets.
		best := 0.0
		for mask := 0; mask < 4; mask++ {
			a, v := 0.0, 0.0
			for i := 0; i < 2; i++ {
				if mask&(1<<i) != 0 {
					a += AFUArea(app.Blocks[0], model, sels[i].Cut.Nodes)
					v += SelectionSavings(app, model, sels[i])
				}
			}
			if a <= budget && v > best {
				best = v
			}
		}
		// Allow the DP's grain-rounding to lose marginal fits.
		if gotVal < best-1e-9 && best-gotVal > 1e-9 {
			// Only fail if the difference is not a grain artifact:
			// re-check with slightly smaller budget.
			strict := SelectUnderAreaBudget(app, model, sels, budget-32)
			sv := 0.0
			for _, s := range strict {
				sv += SelectionSavings(app, model, s)
			}
			if gotVal < sv-1e-9 {
				t.Errorf("budget %v: knapsack %v below exhaustive %v", budget, gotVal, best)
			}
		}
	}
}
