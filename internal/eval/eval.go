// Package eval computes the paper's quality metrics for a set of selected
// ISEs: whole-application speedup (Section 5), dynamic coverage, and the
// future-work metrics (static code size and energy deltas).
//
// Speedup follows the paper's formula
//
//	S = Σ_B f_B·latSW(B) / (Σ_B f_B·latSW(B) − Σ_inst f_B(inst)·M(inst))
//
// summed over every claimed instance of every selected cut, with
// M(inst) = latSW(inst) − latHW(inst).
package eval

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/reuse"
)

// Selection pairs an identified cut with all the instances claimed for it
// (the seed occurrence included).
type Selection struct {
	Cut       *core.Cut
	Instances []reuse.Instance
}

// Report aggregates the quality metrics of a selection set.
type Report struct {
	// SWCycles is the freq-weighted software latency of the whole
	// application (the paper's Cycle_sw).
	SWCycles float64
	// AccelCycles is the estimated freq-weighted latency with all ISEs.
	AccelCycles float64
	// Speedup = SWCycles / AccelCycles.
	Speedup float64
	// Coverage is the fraction of dynamic (freq-weighted) software
	// cycles covered by ISE instances.
	Coverage float64
	// StaticBefore/StaticAfter count static instructions before and
	// after replacing each instance with one ISE opcode.
	StaticBefore, StaticAfter int
	// EnergyBefore/EnergyAfter estimate freq-weighted energy, with
	// covered operations executing on the AFU (datapath energy plus one
	// instruction-issue overhead per instance execution).
	EnergyBefore, EnergyAfter float64
}

// issueOverheadEnergy is the per-ISE-invocation energy spent on fetching
// and issuing the custom instruction itself.
const issueOverheadEnergy = 1.0

// Evaluate computes the metrics of the selections over the application.
// It validates that instances are pairwise disjoint per block, convex and
// within their blocks. It does not check inter-instance schedulability;
// run FilterSchedulable first (the simulator would also reject cyclic
// selections).
func Evaluate(app *ir.Application, model *latency.Model, sels []Selection) (*Report, error) {
	rep := &Report{}
	claimed := make([]*graph.BitSet, len(app.Blocks))
	for bi, blk := range app.Blocks {
		claimed[bi] = graph.NewBitSet(blk.N())
		rep.SWCycles += blk.Freq * float64(model.BlockSWLat(blk))
		rep.StaticBefore += blk.N()
		for i := range blk.Nodes {
			rep.EnergyBefore += blk.Freq * model.SWEnergy[blk.Nodes[i].Op]
		}
	}
	rep.StaticAfter = rep.StaticBefore
	rep.EnergyAfter = rep.EnergyBefore

	saved := 0.0
	coveredCycles := 0.0
	for si, sel := range sels {
		for _, inst := range sel.Instances {
			if inst.BlockIdx < 0 || inst.BlockIdx >= len(app.Blocks) {
				return nil, fmt.Errorf("eval: selection %d: block index %d out of range", si, inst.BlockIdx)
			}
			blk := app.Blocks[inst.BlockIdx]
			if inst.Nodes.Cap() != blk.N() {
				return nil, fmt.Errorf("eval: selection %d: instance capacity %d != block size %d", si, inst.Nodes.Cap(), blk.N())
			}
			if claimed[inst.BlockIdx].Intersects(inst.Nodes) {
				return nil, fmt.Errorf("eval: selection %d: instance overlaps a previously claimed instance in block %q", si, blk.Name)
			}
			claimed[inst.BlockIdx].Or(inst.Nodes)

			sw, cp, _, _, convex := core.CutMetrics(blk, model, inst.Nodes)
			if !convex {
				return nil, fmt.Errorf("eval: selection %d: non-convex instance in block %q", si, blk.Name)
			}
			merit := core.MeritOf(sw, cp)
			saved += blk.Freq * merit
			coveredCycles += blk.Freq * float64(sw)

			rep.StaticAfter -= inst.Nodes.Count() - 1
			// Energy: covered ops run on the AFU.
			swE, hwE := 0.0, 0.0
			inst.Nodes.ForEach(func(v int) bool {
				op := blk.Nodes[v].Op
				swE += model.SWEnergy[op]
				hwE += model.HWEnergy[op]
				return true
			})
			rep.EnergyAfter -= blk.Freq * (swE - hwE - issueOverheadEnergy)
		}
	}

	rep.AccelCycles = rep.SWCycles - saved
	if rep.AccelCycles <= 0 {
		return nil, fmt.Errorf("eval: accelerated cycles %v not positive; latency model inconsistent", rep.AccelCycles)
	}
	rep.Speedup = rep.SWCycles / rep.AccelCycles
	if rep.SWCycles > 0 {
		rep.Coverage = coveredCycles / rep.SWCycles
	}
	return rep, nil
}

// FilterSchedulable drops instances that would create a dependency cycle
// between atomic ISE executions in the same block (e.g. cut A feeding cut
// B and cut B feeding cut A through disjoint paths), which would make the
// block unschedulable. Instances are considered in order; an instance is
// kept when the contracted dependence graph over kept instances remains
// acyclic. The returned selections share the surviving instances.
func FilterSchedulable(app *ir.Application, sels []Selection) []Selection {
	kept := map[int][]claimInfo{}
	reach := func(bi int, nodes *graph.BitSet) *graph.BitSet {
		blk := app.Blocks[bi]
		d := graph.NewBitSet(blk.N())
		nodes.ForEach(func(v int) bool {
			d.Or(blk.DAG().Desc(v))
			return true
		})
		return d
	}
	out := make([]Selection, 0, len(sels))
	for _, sel := range sels {
		ns := Selection{Cut: sel.Cut}
		for _, inst := range sel.Instances {
			d := reach(inst.BlockIdx, inst.Nodes)
			if createsCycle(kept[inst.BlockIdx], inst.Nodes, d) {
				continue
			}
			kept[inst.BlockIdx] = append(kept[inst.BlockIdx], claimInfo{inst.Nodes, d})
			ns.Instances = append(ns.Instances, inst)
		}
		if len(ns.Instances) > 0 {
			out = append(out, ns)
		}
	}
	return out
}

// SpeedupOfCuts is a convenience for baseline algorithms that produce bare
// cut lists without reuse instances: each cut counts once, in its own
// block.
func SpeedupOfCuts(app *ir.Application, model *latency.Model, cuts []*core.Cut) (*Report, error) {
	blockIdx := map[*ir.Block]int{}
	for i, b := range app.Blocks {
		blockIdx[b] = i
	}
	sels := make([]Selection, 0, len(cuts))
	for _, c := range cuts {
		bi, ok := blockIdx[c.Block]
		if !ok {
			return nil, fmt.Errorf("eval: cut references a block outside the application")
		}
		sels = append(sels, Selection{
			Cut:       c,
			Instances: []reuse.Instance{{BlockIdx: bi, Nodes: c.Nodes}},
		})
	}
	return Evaluate(app, model, FilterSchedulable(app, sels))
}

// RelativeError returns |a−b| / max(|a|,|b|, 1e-12); used by experiments
// to compare estimated and simulated speedups.
func RelativeError(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-12)
	return math.Abs(a-b) / den
}
