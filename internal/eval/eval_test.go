package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/reuse"
)

// buildApp: one hot MAC block (freq 100) + one cold block (freq 1).
func buildApp(t *testing.T) (*ir.Application, *core.Cut) {
	t.Helper()
	bu := ir.NewBuilder("hot", 100)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	m := bu.Mul(a, b)
	s := bu.Add(m, acc)
	bu.LiveOut(s)
	hot := bu.MustBuild()

	bu2 := ir.NewBuilder("cold", 1)
	x := bu2.Input("x")
	bu2.LiveOut(bu2.Neg(x))
	cold := bu2.MustBuild()

	app := &ir.Application{Name: "app", Blocks: []*ir.Block{hot, cold}}
	cut := graph.NewBitSet(2)
	cut.Set(0)
	cut.Set(1)
	sw, cp, in, out, _ := core.CutMetrics(hot, latency.Default(), cut)
	return app, &core.Cut{Block: hot, Nodes: cut, NumIn: in, NumOut: out, SWLat: sw, HWLat: cp}
}

func TestEvaluateSpeedup(t *testing.T) {
	app, cut := buildApp(t)
	model := latency.Default()
	sels := []Selection{{
		Cut:       cut,
		Instances: []reuse.Instance{{BlockIdx: 0, Nodes: cut.Nodes}},
	}}
	rep, err := Evaluate(app, model, sels)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// SW: hot = (3+1)*100 = 400, cold = 1. Total 401.
	if math.Abs(rep.SWCycles-401) > 1e-9 {
		t.Errorf("SWCycles = %v, want 401", rep.SWCycles)
	}
	// Merit = 4 sw cycles - 2 AFU cycles = 2 per execution, saved 200.
	wantAccel := 401 - 200.0
	if math.Abs(rep.AccelCycles-wantAccel) > 1e-9 {
		t.Errorf("AccelCycles = %v, want %v", rep.AccelCycles, wantAccel)
	}
	if math.Abs(rep.Speedup-401/wantAccel) > 1e-9 {
		t.Errorf("Speedup = %v, want %v", rep.Speedup, 401/wantAccel)
	}
	// Coverage: 400/401 of dynamic cycles covered.
	if math.Abs(rep.Coverage-400.0/401) > 1e-9 {
		t.Errorf("Coverage = %v", rep.Coverage)
	}
	// Static: 3 instructions -> 2 (MAC replaced by one ISE).
	if rep.StaticBefore != 3 || rep.StaticAfter != 2 {
		t.Errorf("static %d -> %d, want 3 -> 2", rep.StaticBefore, rep.StaticAfter)
	}
	if rep.EnergyAfter >= rep.EnergyBefore {
		t.Errorf("energy should drop: %v -> %v", rep.EnergyBefore, rep.EnergyAfter)
	}
}

func TestEvaluateNoSelections(t *testing.T) {
	app, _ := buildApp(t)
	rep, err := Evaluate(app, latency.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup != 1 || rep.Coverage != 0 {
		t.Errorf("empty selection: speedup %v coverage %v, want 1 and 0", rep.Speedup, rep.Coverage)
	}
	if rep.StaticBefore != rep.StaticAfter {
		t.Error("static size must be unchanged")
	}
	if rep.EnergyBefore != rep.EnergyAfter {
		t.Error("energy must be unchanged")
	}
}

func TestEvaluateRejectsOverlap(t *testing.T) {
	app, cut := buildApp(t)
	inst := reuse.Instance{BlockIdx: 0, Nodes: cut.Nodes}
	sels := []Selection{
		{Cut: cut, Instances: []reuse.Instance{inst, inst}},
	}
	if _, err := Evaluate(app, latency.Default(), sels); err == nil {
		t.Fatal("overlapping instances must be rejected")
	}
}

func TestEvaluateRejectsNonConvex(t *testing.T) {
	bu := ir.NewBuilder("nc", 1)
	x := bu.Input("x")
	n0 := bu.Add(x, x)
	n1 := bu.Neg(n0)
	n2 := bu.Xor(n1, n0)
	bu.LiveOut(n2)
	blk := bu.MustBuild()
	app := &ir.Application{Name: "a", Blocks: []*ir.Block{blk}}
	bad := graph.NewBitSet(3)
	bad.Set(0)
	bad.Set(2) // path through n1 leaves the cut
	sels := []Selection{{
		Cut:       &core.Cut{Block: blk, Nodes: bad},
		Instances: []reuse.Instance{{BlockIdx: 0, Nodes: bad}},
	}}
	if _, err := Evaluate(app, latency.Default(), sels); err == nil {
		t.Fatal("non-convex instance must be rejected")
	}
}

func TestEvaluateBadBlockIndex(t *testing.T) {
	app, cut := buildApp(t)
	sels := []Selection{{
		Cut:       cut,
		Instances: []reuse.Instance{{BlockIdx: 9, Nodes: cut.Nodes}},
	}}
	if _, err := Evaluate(app, latency.Default(), sels); err == nil {
		t.Fatal("bad block index must be rejected")
	}
}

func TestFilterSchedulableDropsMutualDependency(t *testing.T) {
	// Block: a1 -> b1, b2 -> a2, with A = {a1, a2} and B = {b1, b2}
	// both convex but mutually dependent after contraction.
	bu := ir.NewBuilder("cyc", 1)
	x := bu.Input("x")
	a1 := bu.Add(x, x)  // 0 in A
	b1 := bu.Neg(a1)    // 1 in B
	b2 := bu.Xor(x, x)  // 2 in B
	a2 := bu.Sub(b2, x) // 3 in A
	o := bu.Or(b1, a2)  // 4 keeps everything alive
	bu.LiveOut(o)
	blk := bu.MustBuild()
	app := &ir.Application{Name: "a", Blocks: []*ir.Block{blk}}

	setA := graph.NewBitSet(5)
	setA.Set(0)
	setA.Set(3)
	setB := graph.NewBitSet(5)
	setB.Set(1)
	setB.Set(2)
	if !blk.DAG().IsConvex(setA) || !blk.DAG().IsConvex(setB) {
		t.Fatal("test setup: both sets should be convex")
	}
	sels := []Selection{
		{Cut: &core.Cut{Block: blk, Nodes: setA}, Instances: []reuse.Instance{{BlockIdx: 0, Nodes: setA}}},
		{Cut: &core.Cut{Block: blk, Nodes: setB}, Instances: []reuse.Instance{{BlockIdx: 0, Nodes: setB}}},
	}
	kept := FilterSchedulable(app, sels)
	total := 0
	for _, s := range kept {
		total += len(s.Instances)
	}
	if total != 1 {
		t.Fatalf("kept %d instances, want 1 (mutual dependency dropped)", total)
	}
}

func TestFilterSchedulableKeepsIndependent(t *testing.T) {
	app, cut := buildApp(t)
	sels := []Selection{{
		Cut:       cut,
		Instances: []reuse.Instance{{BlockIdx: 0, Nodes: cut.Nodes}},
	}}
	kept := FilterSchedulable(app, sels)
	if len(kept) != 1 || len(kept[0].Instances) != 1 {
		t.Fatal("independent instance must be kept")
	}
}

func TestSpeedupOfCuts(t *testing.T) {
	app, cut := buildApp(t)
	rep, err := SpeedupOfCuts(app, latency.Default(), []*core.Cut{cut})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1", rep.Speedup)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(1, 1) != 0 {
		t.Error("identical values must have zero error")
	}
	if e := RelativeError(1.0, 1.1); math.Abs(e-0.1/1.1) > 1e-12 {
		t.Errorf("RelativeError(1,1.1) = %v", e)
	}
	if RelativeError(0, 0) != 0 {
		t.Error("0,0 must be 0")
	}
}
