// Package reuse finds all instances of an identified cut in an
// application's data-flow graphs: node sets that are isomorphic to the cut
// pattern (same opcodes, same internal data-flow wiring, compatible
// external port usage) and can therefore execute on the same AFU.
//
// Counting and claiming these instances is what lets ISEGEN exploit the
// regularity of applications like AES (Figure 7 of the paper): one AFU
// datapath serves many occurrences of the repeated computation.
//
// The matcher is a VF2-style backtracking search with operand-position
// awareness: non-commutative operations must wire operands identically,
// commutative ones may swap. A candidate instance is accepted only when
//
//   - it is convex in its block,
//   - every instance value that escapes (is consumed outside the instance
//     or is live out) corresponds to a pattern node that also escapes, so
//     the existing AFU output ports suffice, and
//   - its external inputs factor through the pattern's input ports.
package reuse

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
)

// pattern is the preprocessed form of a cut to match against.
type pattern struct {
	blk   *ir.Block
	nodes []int       // pattern node IDs in match order
	pos   map[int]int // node ID -> index in nodes
	// escapes[i] reports whether pattern node nodes[i] has an output
	// port (value consumed outside the cut or live out).
	escapes []bool
}

func newPattern(blk *ir.Block, cut *graph.BitSet) *pattern {
	p := &pattern{blk: blk, pos: map[int]int{}}
	// Match order: topological within the pattern so that matched
	// predecessors constrain candidates; ties broken by scarcer opcode
	// first via stable sorting on (topo position).
	var ids []int
	cut.ForEach(func(v int) bool {
		ids = append(ids, v)
		return true
	})
	sort.Slice(ids, func(a, b int) bool {
		return blk.DAG().TopoPos(ids[a]) < blk.DAG().TopoPos(ids[b])
	})
	p.nodes = ids
	for i, v := range ids {
		p.pos[v] = i
	}
	p.escapes = make([]bool, len(ids))
	for i, v := range ids {
		if !blk.Nodes[v].Op.HasValue() {
			continue
		}
		if blk.LiveOut.Has(v) {
			p.escapes[i] = true
			continue
		}
		for _, u := range blk.Uses(v) {
			if !cut.Has(u) {
				p.escapes[i] = true
				break
			}
		}
	}
	return p
}

// valueKey identifies an operand source within a specific block for port
// consistency: either a node value or an external input.
type valueKey struct {
	input bool
	index int
}

func operandKey(o ir.Operand) valueKey {
	return valueKey{input: o.Kind == ir.FromInput, index: o.Index}
}

// matcher performs the backtracking search of one pattern in one block.
type matcher struct {
	p         *pattern
	blk       *ir.Block // target block
	available *graph.BitSet
	assign    []int // pattern index -> target node ID (-1 unset)
	used      *graph.BitSet
	// portMap maps pattern external operand keys to target operand
	// keys, ensuring input-port consistency; inversePort need not be
	// injective (two pattern ports may not collapse, see match()).
	portMap map[valueKey]valueKey
	// portStack records port-map keys in insertion order; assignPorts
	// stacks, per assigned pattern node, how many of them the assignment
	// introduced (needed for rollback). One shared stack plus counts
	// keeps the backtracking inner loop allocation-free — the matcher
	// runs once per (pattern, block) pair inside the reuse-aware claim
	// path, which made per-frame slices the AES hot spot.
	portStack   []valueKey
	assignPorts []int
	// byOp indexes target nodes by opcode for unconstrained scans.
	byOp  map[ir.Op][]int
	out   []*graph.BitSet
	limit int
	// steps bounds the backtracking work: symmetric patterns (e.g. xor
	// trees) have factorially many automorphic mappings and the search
	// must not wander them forever. When the budget runs out the
	// matches found so far are returned.
	steps int64
}

// maxMatcherSteps bounds one FindInstances call. Large enough that every
// pattern in the benchmark suite completes exhaustively; small enough
// that adversarially symmetric patterns return promptly.
const maxMatcherSteps = 2_000_000

// FindInstances returns the node sets in target that are instances of the
// cut pattern (taken from patBlk). Matches are restricted to the available
// set when it is non-nil; forbidden nodes never match. The pattern's own
// occurrence is returned too when it lies within available. limit > 0
// bounds the number of matches returned (0 = unlimited). Matches are
// deduplicated by node set.
func FindInstances(patBlk *ir.Block, cut *graph.BitSet, target *ir.Block, available *graph.BitSet, limit int) []*graph.BitSet {
	if cut.Empty() {
		return nil
	}
	p := newPattern(patBlk, cut)
	m := &matcher{
		p:         p,
		blk:       target,
		available: available,
		assign:    make([]int, len(p.nodes)),
		used:      graph.NewBitSet(target.N()),
		portMap:   map[valueKey]valueKey{},
		limit:     limit,
	}
	for i := range m.assign {
		m.assign[i] = -1
	}
	m.byOp = map[ir.Op][]int{}
	if available != nil {
		// Only nodes in available can ever match (tryNode rejects the
		// rest), so index just those — a word-level walk of the set
		// instead of the former per-index scan over every node. Ascending
		// order is preserved, so candidate order (and hence the match
		// set) is unchanged.
		for v := available.NextSet(0); v >= 0; v = available.NextSet(v + 1) {
			op := target.Nodes[v].Op
			m.byOp[op] = append(m.byOp[op], v)
		}
	} else {
		for v := 0; v < target.N(); v++ {
			op := target.Nodes[v].Op
			m.byOp[op] = append(m.byOp[op], v)
		}
	}
	m.search(0)
	return dedup(m.out)
}

func dedup(sets []*graph.BitSet) []*graph.BitSet {
	var out []*graph.BitSet
	for _, s := range sets {
		dup := false
		for _, o := range out {
			if o.Equal(s) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

func (m *matcher) done() bool {
	return (m.limit > 0 && len(m.out) >= m.limit) || m.steps > maxMatcherSteps
}

func (m *matcher) search(i int) {
	m.steps++
	if m.done() {
		return
	}
	if i == len(m.p.nodes) {
		m.accept()
		return
	}
	pv := m.p.nodes[i]
	pnode := &m.p.blk.Nodes[pv]

	// Candidate generation: if some matched pattern node is a
	// predecessor of pv, candidates are successors of its image;
	// otherwise scan all nodes.
	var candidates []int
	narrowed := false
	for _, a := range pnode.Args {
		if a.Kind != ir.FromNode {
			continue
		}
		if pi, ok := m.p.pos[a.Index]; ok && m.assign[pi] >= 0 {
			candidates = m.blk.DAG().Succs(m.assign[pi])
			narrowed = true
			break
		}
	}
	if !narrowed {
		candidates = m.byOp[pnode.Op]
	}
	for _, v := range candidates {
		if m.tryNode(i, v) {
			m.search(i + 1)
			m.unassign(i, v)
			if m.done() {
				return
			}
		}
	}
}

// tryNode attempts to map pattern index i to target node v, committing the
// port-map additions on success.
func (m *matcher) tryNode(i, v int) bool {
	pv := m.p.nodes[i]
	pnode := &m.p.blk.Nodes[pv]
	tnode := &m.blk.Nodes[v]
	if tnode.Op != pnode.Op {
		return false
	}
	if pnode.Op == ir.OpConst && tnode.Imm != pnode.Imm {
		return false
	}
	if m.used.Has(v) {
		return false
	}
	if m.available != nil && !m.available.Has(v) {
		return false
	}
	if m.blk.ForbiddenInCut(v) {
		return false
	}

	ok, added := m.argsCompatible(pnode, tnode)
	if !ok {
		return false
	}
	m.assign[i] = v
	m.used.Set(v)
	// Stash the frame's port-key count for rollback on unassign.
	m.assignPorts = append(m.assignPorts, added)
	return true
}

// popPorts removes the k most recently added port-map entries.
func (m *matcher) popPorts(k int) {
	for ; k > 0; k-- {
		pk := m.portStack[len(m.portStack)-1]
		m.portStack = m.portStack[:len(m.portStack)-1]
		delete(m.portMap, pk)
	}
}

func (m *matcher) unassign(i, v int) {
	added := m.assignPorts[len(m.assignPorts)-1]
	m.assignPorts = m.assignPorts[:len(m.assignPorts)-1]
	m.popPorts(added)
	m.used.Clear(v)
	m.assign[i] = -1
}

// argsCompatible checks operand wiring between a pattern node and its
// candidate image, trying the swapped order too for commutative ops.
// On success it returns how many pattern port keys were newly added to
// portMap (and pushed onto portStack).
func (m *matcher) argsCompatible(pnode, tnode *ir.Node) (bool, int) {
	if ok, added := m.argsMatch(pnode.Args, tnode.Args); ok {
		return true, added
	}
	if pnode.Op.IsCommutative() && len(pnode.Args) == 2 {
		swapped := [2]ir.Operand{tnode.Args[1], tnode.Args[0]}
		if ok, added := m.argsMatch(pnode.Args, swapped[:]); ok {
			return true, added
		}
	}
	return false, 0
}

// argsMatch checks operand wiring position by position, pushing newly
// bound external ports onto the shared portStack; it returns how many it
// added (already rolled back on failure).
func (m *matcher) argsMatch(pargs, targs []ir.Operand) (bool, int) {
	added := 0
	for j := range pargs {
		pa, ta := pargs[j], targs[j]
		// Immediate operands are part of the AFU datapath: they must
		// match exactly.
		if pa.Kind == ir.FromImm || ta.Kind == ir.FromImm {
			if pa != ta {
				m.popPorts(added)
				return false, 0
			}
			continue
		}
		if pi, internal := m.patternIndexOf(pa); internal {
			// Internal pattern edge: the image must be the mapped node.
			if m.assign[pi] < 0 {
				// Producer not yet mapped: cannot happen with
				// topological match order, but guard anyway.
				m.popPorts(added)
				return false, 0
			}
			if ta.Kind != ir.FromNode || ta.Index != m.assign[pi] {
				m.popPorts(added)
				return false, 0
			}
			continue
		}
		// External pattern port: the image operand must be external to
		// the instance and consistent with previous uses of this port.
		if ta.Kind == ir.FromNode && m.used.Has(ta.Index) {
			m.popPorts(added)
			return false, 0
		}
		pk := operandKey(pa)
		tk := operandKey(ta)
		if prev, ok := m.portMap[pk]; ok {
			if prev != tk {
				m.popPorts(added)
				return false, 0
			}
			continue
		}
		m.portMap[pk] = tk
		m.portStack = append(m.portStack, pk)
		added++
	}
	return true, added
}

// patternIndexOf reports whether operand o refers to a node inside the
// pattern, returning its match-order index.
func (m *matcher) patternIndexOf(o ir.Operand) (int, bool) {
	if o.Kind != ir.FromNode {
		return 0, false
	}
	pi, ok := m.p.pos[o.Index]
	return pi, ok
}

// accept validates the completed mapping (convexity, escape compatibility)
// and records the instance.
func (m *matcher) accept() {
	inst := graph.NewBitSet(m.blk.N())
	for _, v := range m.assign {
		inst.Set(v)
	}
	// Escape compatibility: any instance value needed outside must map
	// to a pattern output port.
	for i, v := range m.assign {
		if !m.blk.Nodes[v].Op.HasValue() {
			continue
		}
		escapes := m.blk.LiveOut.Has(v)
		if !escapes {
			for _, u := range m.blk.Uses(v) {
				if !inst.Has(u) {
					escapes = true
					break
				}
			}
		}
		if escapes && !m.p.escapes[i] {
			return
		}
	}
	if !m.blk.DAG().IsConvex(inst) {
		return
	}
	m.out = append(m.out, inst)
}

// Instance locates one occurrence of a cut in a specific block of an
// application.
type Instance struct {
	BlockIdx int
	Nodes    *graph.BitSet
}

// FindAppInstances searches every block of the application for instances
// of the cut identified in app.Blocks[patIdx], restricted to the per-block
// available sets (nil entries mean fully available). perBlockLimit bounds
// the matches per block (0 = unlimited).
func FindAppInstances(app *ir.Application, patIdx int, cut *graph.BitSet, available []*graph.BitSet, perBlockLimit int) []Instance {
	var out []Instance
	patBlk := app.Blocks[patIdx]
	for bi, blk := range app.Blocks {
		var avail *graph.BitSet
		if available != nil {
			avail = available[bi]
		}
		for _, inst := range FindInstances(patBlk, cut, blk, avail, perBlockLimit) {
			out = append(out, Instance{BlockIdx: bi, Nodes: inst})
		}
	}
	return out
}

// ClaimDisjoint greedily selects pairwise-disjoint instances (per block)
// from the candidate list, in order, always including any instance equal
// to the seed cut first.
func ClaimDisjoint(candidates []Instance, seedBlk int, seed *graph.BitSet) []Instance {
	var picked []Instance
	claimed := map[int]*graph.BitSet{}
	take := func(in Instance) {
		c, ok := claimed[in.BlockIdx]
		if !ok {
			c = graph.NewBitSet(in.Nodes.Cap())
			claimed[in.BlockIdx] = c
		}
		c.Or(in.Nodes)
		picked = append(picked, in)
	}
	for _, in := range candidates {
		if in.BlockIdx == seedBlk && in.Nodes.Equal(seed) {
			take(in)
			break
		}
	}
	for _, in := range candidates {
		if in.BlockIdx == seedBlk && in.Nodes.Equal(seed) {
			continue
		}
		if c, ok := claimed[in.BlockIdx]; ok && c.Intersects(in.Nodes) {
			continue
		}
		take(in)
	}
	return picked
}
