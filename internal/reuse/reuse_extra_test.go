package reuse

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// TestMatcherBudgetTerminates: a pathologically symmetric pattern (a wide
// xor reduction over interchangeable leaves) must return promptly with
// whatever it found instead of enumerating automorphisms forever.
func TestMatcherBudgetTerminates(t *testing.T) {
	bu := ir.NewBuilder("sym", 1)
	// 24 independent xors feeding a balanced reduction tree.
	var layer []ir.Value
	for i := 0; i < 24; i++ {
		a, b := bu.Input("a"), bu.Input("b")
		layer = append(layer, bu.Xor(a, b))
	}
	for len(layer) > 1 {
		var next []ir.Value
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, bu.Xor(layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	bu.LiveOut(layer[0])
	blk := bu.MustBuild()

	// Pattern: a 4-leaf xor subtree — matches in factorially many ways.
	cut := graph.NewBitSet(blk.N())
	for _, v := range []int{0, 1, 24, 25} {
		if v < blk.N() {
			cut.Set(v)
		}
	}
	if !blk.DAG().IsConvex(cut) {
		t.Skip("pattern construction not convex on this topology")
	}
	got := FindInstances(blk, cut, blk, nil, 0)
	// The exact count is not the point; termination and dedup are.
	if len(got) == 0 {
		t.Fatal("no instances found at all")
	}
	for i, a := range got {
		for _, b := range got[i+1:] {
			if a.Equal(b) {
				t.Fatal("duplicate instances returned")
			}
		}
	}
}

// TestInstanceLimitZeroMeansUnlimited documents the limit contract.
func TestInstanceLimitContract(t *testing.T) {
	bu := ir.NewBuilder("lim", 1)
	acc := bu.Input("acc")
	for k := 0; k < 6; k++ {
		a, b := bu.Input("a"), bu.Input("b")
		m := bu.Mul(a, b)
		bu.LiveOut(bu.Add(m, acc))
	}
	blk := bu.MustBuild()
	cut := graph.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)
	if got := FindInstances(blk, cut, blk, nil, 0); len(got) != 6 {
		t.Errorf("unlimited: %d, want 6", len(got))
	}
	for _, lim := range []int{1, 3, 6, 100} {
		got := FindInstances(blk, cut, blk, nil, lim)
		want := lim
		if want > 6 {
			want = 6
		}
		if len(got) != want {
			t.Errorf("limit %d: got %d, want %d", lim, len(got), want)
		}
	}
}

// TestCrossBlockPortConsistency: instances in other blocks may use
// different external values, as long as the wiring is consistent within
// each instance.
func TestCrossBlockPortConsistency(t *testing.T) {
	mk := func(name string) *ir.Block {
		bu := ir.NewBuilder(name, 1)
		x, y := bu.Input("x"), bu.Input("y")
		d := bu.Sub(x, y)
		s := bu.ShrAI(d, 4)
		bu.LiveOut(s)
		return bu.MustBuild()
	}
	b0, b1 := mk("one"), mk("two")
	app := &ir.Application{Name: "app", Blocks: []*ir.Block{b0, b1}}
	cut := graph.NewBitSet(b0.N())
	cut.Set(0)
	cut.Set(1)
	insts := FindAppInstances(app, 0, cut, nil, 0)
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want one per block", len(insts))
	}
}
