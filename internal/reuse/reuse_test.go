package reuse

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// buildRepeatedMACs builds a block with k independent MAC groups:
// mul(i2j, i2j+1) followed by add(mul, acc), acc a shared input.
func buildRepeatedMACs(t *testing.T, k int) (*ir.Block, *graph.BitSet) {
	t.Helper()
	bu := ir.NewBuilder("macs", 1)
	acc := bu.Input("acc")
	var firstCut *graph.BitSet
	var firstIDs []int
	for j := 0; j < k; j++ {
		a, b := bu.Input("a"), bu.Input("b")
		m := bu.Mul(a, b)
		s := bu.Add(m, acc)
		bu.LiveOut(s)
		if j == 0 {
			firstIDs = []int{bu.NumNodes() - 2, bu.NumNodes() - 1}
		}
	}
	blk := bu.MustBuild()
	firstCut = graph.NewBitSet(blk.N())
	for _, id := range firstIDs {
		firstCut.Set(id)
	}
	return blk, firstCut
}

func TestFindInstancesRepeatedMACs(t *testing.T) {
	blk, cut := buildRepeatedMACs(t, 4)
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 4 {
		t.Fatalf("found %d instances, want 4", len(got))
	}
	// Each instance: one mul + one add, disjoint from the others.
	seen := graph.NewBitSet(blk.N())
	for _, in := range got {
		if in.Count() != 2 {
			t.Errorf("instance size %d, want 2", in.Count())
		}
		if seen.Intersects(in) {
			t.Error("instances of independent MACs should be disjoint")
		}
		seen.Or(in)
	}
}

func TestFindInstancesRespectsAvailable(t *testing.T) {
	blk, cut := buildRepeatedMACs(t, 3)
	avail := graph.NewBitSet(blk.N())
	for v := 0; v < blk.N(); v++ {
		avail.Set(v)
	}
	// Remove the second MAC's mul from availability.
	avail.Clear(2)
	got := FindInstances(blk, cut, blk, avail, 0)
	if len(got) != 2 {
		t.Fatalf("found %d instances, want 2 with one MAC unavailable", len(got))
	}
}

func TestFindInstancesLimit(t *testing.T) {
	blk, cut := buildRepeatedMACs(t, 5)
	got := FindInstances(blk, cut, blk, nil, 2)
	if len(got) != 2 {
		t.Fatalf("found %d instances, want exactly the limit 2", len(got))
	}
}

func TestNonCommutativeOperandOrder(t *testing.T) {
	// sub(a, b) must not match sub(b, a) wiring: build one pattern
	// sub(x, const) and a candidate sub(const, x).
	bu := ir.NewBuilder("subs", 1)
	x := bu.Input("x")
	c1 := bu.Const(7)
	s1 := bu.Sub(x, c1) // pattern: sub(ext, const7)
	c2 := bu.Const(7)
	s2 := bu.Sub(c2, x) // reversed operands
	bu.LiveOut(s1, s2)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0) // c1
	cut.Set(1) // s1 = sub(x, c1)
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 1 {
		t.Fatalf("found %d instances, want only the pattern itself (sub is not commutative)", len(got))
	}
	if !got[0].Has(1) {
		t.Error("the single instance should be the pattern occurrence")
	}
}

func TestCommutativeSwapAllowed(t *testing.T) {
	// add(mul, acc) vs add(acc, mul): commutative, must match.
	bu := ir.NewBuilder("swap", 1)
	acc := bu.Input("acc")
	a, b := bu.Input("a"), bu.Input("b")
	m1 := bu.Mul(a, b)
	s1 := bu.Add(m1, acc)
	c, d := bu.Input("c"), bu.Input("d")
	m2 := bu.Mul(c, d)
	s2 := bu.Add(acc, m2) // swapped operand order
	bu.LiveOut(s1, s2)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 2 {
		t.Fatalf("found %d instances, want 2 (commutative swap)", len(got))
	}
}

func TestConstImmediateMustMatch(t *testing.T) {
	bu := ir.NewBuilder("imms", 1)
	x := bu.Input("x")
	c1 := bu.Const(3)
	s1 := bu.Shl(x, c1)
	c2 := bu.Const(5)
	s2 := bu.Shl(x, c2)
	bu.LiveOut(s1, s2)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(blk.N())
	cut.Set(0) // const 3
	cut.Set(1) // shl
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 1 {
		t.Fatalf("found %d instances, want 1 (different immediates must not match)", len(got))
	}
}

func TestEscapeCompatibilityRejected(t *testing.T) {
	// Pattern: mul feeding add, mul value internal only. Candidate
	// instance whose mul value is also consumed elsewhere must be
	// rejected (the AFU has no port for it).
	bu := ir.NewBuilder("escape", 1)
	acc := bu.Input("acc")
	a, b := bu.Input("a"), bu.Input("b")
	m1 := bu.Mul(a, b)
	s1 := bu.Add(m1, acc)
	c, d := bu.Input("c"), bu.Input("d")
	m2 := bu.Mul(c, d)
	s2 := bu.Add(m2, acc)
	extra := bu.Xor(m2, acc) // m2 escapes!
	bu.LiveOut(s1, s2, extra)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0) // m1
	cut.Set(1) // s1
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 1 {
		t.Fatalf("found %d instances, want 1 (second MAC's mul escapes)", len(got))
	}
	if !got[0].Has(0) {
		t.Error("surviving instance should be the pattern itself")
	}
}

func TestEscapeCompatibilityAllowedWhenPatternEscapes(t *testing.T) {
	// If the pattern's mul escapes too, both match.
	bu := ir.NewBuilder("escape2", 1)
	acc := bu.Input("acc")
	a, b := bu.Input("a"), bu.Input("b")
	m1 := bu.Mul(a, b)
	s1 := bu.Add(m1, acc)
	e1 := bu.Xor(m1, acc)
	c, d := bu.Input("c"), bu.Input("d")
	m2 := bu.Mul(c, d)
	s2 := bu.Add(m2, acc)
	e2 := bu.Xor(m2, acc)
	bu.LiveOut(s1, e1, s2, e2)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 2 {
		t.Fatalf("found %d instances, want 2", len(got))
	}
}

func TestPortConsistencySharedInput(t *testing.T) {
	// Pattern adds the SAME external value twice: x+x. An instance
	// adding two DIFFERENT values must not match.
	bu := ir.NewBuilder("ports", 1)
	x, y := bu.Input("x"), bu.Input("y")
	dbl := bu.Add(x, x)
	other := bu.Add(x, y)
	bu.LiveOut(dbl, other)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0) // x+x
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 1 {
		t.Fatalf("found %d instances, want 1 (x+y must not match x+x)", len(got))
	}
}

func TestConvexityRejectsInstance(t *testing.T) {
	// Pattern: two chained adds. Candidate occurrence where the chain
	// passes through a load (outside) is non-convex and must be
	// rejected... construct: add -> add (pattern), and add -> load ->
	// add elsewhere.
	bu := ir.NewBuilder("convex", 1)
	x, y := bu.Input("x"), bu.Input("y")
	a1 := bu.Add(x, y)
	a2 := bu.Add(a1, y)
	bu.LiveOut(a2)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)
	got := FindInstances(blk, cut, blk, nil, 0)
	if len(got) != 1 {
		t.Fatalf("found %d instances, want 1", len(got))
	}
	// Every returned instance must be convex by construction; assert it.
	for _, in := range got {
		if !blk.DAG().IsConvex(in) {
			t.Error("matcher returned a non-convex instance")
		}
	}
}

func TestCrossBlockInstances(t *testing.T) {
	blk1, cut := buildRepeatedMACs(t, 2)
	blk2, _ := buildRepeatedMACs(t, 3)
	app := &ir.Application{Name: "app", Blocks: []*ir.Block{blk1, blk2}}
	insts := FindAppInstances(app, 0, cut, nil, 0)
	if len(insts) != 5 {
		t.Fatalf("found %d instances across blocks, want 5", len(insts))
	}
	byBlock := map[int]int{}
	for _, in := range insts {
		byBlock[in.BlockIdx]++
	}
	if byBlock[0] != 2 || byBlock[1] != 3 {
		t.Errorf("per-block counts = %v, want map[0:2 1:3]", byBlock)
	}
}

func TestClaimDisjoint(t *testing.T) {
	blk, cut := buildRepeatedMACs(t, 3)
	app := &ir.Application{Name: "app", Blocks: []*ir.Block{blk}}
	insts := FindAppInstances(app, 0, cut, nil, 0)
	picked := ClaimDisjoint(insts, 0, cut)
	if len(picked) != 3 {
		t.Fatalf("claimed %d, want 3 disjoint", len(picked))
	}
	// Seed must be claimed and come first.
	if picked[0].BlockIdx != 0 || !picked[0].Nodes.Equal(cut) {
		t.Error("seed instance must be claimed first")
	}
	seen := graph.NewBitSet(blk.N())
	for _, in := range picked {
		if seen.Intersects(in.Nodes) {
			t.Fatal("claimed instances overlap")
		}
		seen.Or(in.Nodes)
	}
}

func TestEmptyPattern(t *testing.T) {
	blk, _ := buildRepeatedMACs(t, 1)
	if got := FindInstances(blk, graph.NewBitSet(blk.N()), blk, nil, 0); got != nil {
		t.Fatalf("empty pattern matched %d instances", len(got))
	}
}
