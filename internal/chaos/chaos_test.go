package chaos

import (
	"testing"
	"time"

	"repro/internal/fault"
)

// TestSoakSurvivesHostileEverything is the chaos gate: a seeded soak
// with the full default fault mix — hostile disk, job faults, panics,
// stalls, then a crash, on-disk poison and a cold recovery — must
// finish with zero invariant violations, and the faults must actually
// have fired (a soak that never hurt anything proves nothing).
func TestSoakSurvivesHostileEverything(t *testing.T) {
	res, err := Soak(Config{
		Seed:     7,
		Apps:     4,
		Requests: 24,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.ServeFires == 0 && res.DiskFires == 0 {
		t.Fatal("no faults fired; the soak exercised nothing")
	}
	if res.Clean == 0 {
		t.Fatal("no clean responses; cannot have checked byte-identity")
	}
	if got := res.Clean + res.MidStream + res.Failed + res.Rejected; got != res.Requests {
		t.Fatalf("classified %d of %d hostile responses", got, res.Requests)
	}
	if res.Poisoned > 0 && res.RecoveredStore.Corrupt == 0 {
		t.Fatalf("poisoned %d files but quarantined none", res.Poisoned)
	}
	t.Logf("result: %+v", res)
}

// TestSoakFaultPatternReplays pins the fault clock: two soaks with the
// same seed fire the identical injector event sequence — op counters,
// not wall time, drive every fault.
func TestSoakFaultPatternReplays(t *testing.T) {
	runFires := func() (int, int) {
		res, err := Soak(Config{Seed: 11, Apps: 2, Requests: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
		return res.ServeFires, res.DiskFires
	}
	s1, d1 := runFires()
	s2, d2 := runFires()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("fault pattern did not replay: serve %d vs %d, disk %d vs %d", s1, s2, d1, d2)
	}
}

// TestSoakCleanRulesIsAllClean sanity-checks the harness itself: with
// no fault rules at all, every hostile-phase response must be a clean
// byte-identical 200.
func TestSoakCleanRulesIsAllClean(t *testing.T) {
	res, err := Soak(Config{
		Seed:        3,
		Apps:        2,
		Requests:    6,
		JobDeadline: time.Minute,
		ServeRules:  []fault.Rule{},
		DiskRules:   []fault.Rule{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Clean != res.Requests {
		t.Fatalf("clean = %d, want all %d requests", res.Clean, res.Requests)
	}
	if res.ServeFires+res.DiskFires != 0 {
		t.Fatalf("faults fired with empty rule sets: %d/%d", res.ServeFires, res.DiskFires)
	}
}
