// Package chaos is the seeded fault-injection soak for the serving
// stack: it drives generated applications through a live isegend server
// whose disk and job pipeline are both hostile, classifies every
// response against the offline reference stream, then crashes the
// server, poisons the surviving cache files and requires a fresh server
// over the same directory to quarantine the poison and recover to
// byte-identical answers.
//
// The fault clock is the injector's (seed, fault point, op counter)
// triple — never wall time — so a soak's fault pattern replays exactly
// for a given seed. Responses are classified, not scheduled: the set of
// faults fired per request is deterministic, while which block inside a
// parallel fan-out absorbs one may vary with goroutine scheduling, so
// the soak asserts invariants (well-formed streams, byte-identity,
// Retry-After on rejection, quarantine on poison, zero leaks) rather
// than an exact response transcript.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"repro/internal/dfggen"
	"repro/internal/dfgio"
	"repro/internal/fault"
	"repro/internal/search"
	"repro/internal/service"
)

// Config shapes one soak run. The zero value is usable: Soak fills in
// the defaults below.
type Config struct {
	// Seed drives everything: app generation and both fault clocks.
	Seed int64
	// Apps is the number of generated applications (default 4).
	Apps int
	// Requests is the hostile-phase request count (default 8*Apps).
	Requests int
	// JobDeadline bounds stalled jobs; without it an injected stall
	// would wedge a worker forever (default 500ms).
	JobDeadline time.Duration
	// Dir is the persistent store directory, shared by both server
	// generations. Empty means a private temp dir, removed afterwards.
	Dir string
	// ServeRules and DiskRules override the fault mix (defaults below).
	ServeRules []fault.Rule
	DiskRules  []fault.Rule
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// DefaultServeRules is the serving-layer fault mix: job errors, a
// contained panic, a stall (reclaimed by the job deadline), mid-stream
// per-block failures and a greedy-round abort.
func DefaultServeRules() []fault.Rule {
	return []fault.Rule{
		{Point: fault.PointServiceJob, Kind: fault.Err, Prob: 0.06},
		{Point: fault.PointServiceJob, Kind: fault.Panic, Prob: 0.04},
		{Point: fault.PointServiceJob, Kind: fault.Stall, Prob: 0.03},
		{Point: fault.PointEngineBlock, Kind: fault.Err, Prob: 0.05},
		{Point: fault.PointSearchRound, Kind: fault.Err, Prob: 0.04},
	}
}

// DefaultDiskRules is the hostile-disk mix: failed and short writes,
// fsync errors, torn renames and read-side bit rot.
func DefaultDiskRules() []fault.Rule {
	return []fault.Rule{
		{Point: fault.PointWrite, Kind: fault.ENOSPC, Prob: 0.12},
		{Point: fault.PointWrite, Kind: fault.PartialWrite, Prob: 0.06},
		{Point: fault.PointSync, Kind: fault.Err, Prob: 0.05},
		{Point: fault.PointRename, Kind: fault.TornRename, Prob: 0.06},
		{Point: fault.PointRead, Kind: fault.BitFlip, Prob: 0.15},
	}
}

// Result is one soak's tally. Violations is the contract: an empty
// slice means every response upheld the serving invariants.
type Result struct {
	// Hostile-phase response classes. Clean streams are byte-compared
	// against the offline reference; MidStream counts committed 200s
	// that terminated with an in-band error record; Failed counts
	// pre-stream 5xx from injected faults; Rejected counts 503s (each
	// must carry Retry-After).
	Requests  int
	Clean     int
	MidStream int
	Failed    int
	Rejected  int
	// ServeFires and DiskFires count injector events actually fired.
	ServeFires int
	DiskFires  int
	// Poisoned is the number of cache entry files corrupted on disk
	// between the two server generations.
	Poisoned int
	// HostileStore and RecoveredStore are the store stats of the two
	// generations; RecoveredStore.Corrupt is the quarantine count.
	HostileStore   search.StoreStats
	RecoveredStore search.StoreStats
	// Recovery is the number of post-recovery requests (all must be
	// byte-identical to the reference).
	Recovery   int
	Violations []string
}

// variant pairs a query string with the offline params that reproduce
// it, so every served stream has a byte-exact reference. The exact
// engine exercises the per-block fan-out (and its mid-stream faults);
// the default ISEGEN path exercises the greedy-round fault point.
type variant struct {
	query  string
	params service.Params
}

func variants() []variant {
	exact := service.DefaultParams()
	exact.Algo, exact.Reuse = "exact", false
	return []variant{
		{query: "", params: service.DefaultParams()},
		{query: "?algo=exact&reuse=false", params: exact},
	}
}

// soak carries one run's state.
type soak struct {
	cfg  Config
	res  Result
	apps [][]byte   // marshalled .dfg uploads
	refs [][][]byte // refs[app][variant] = offline NDJSON
}

func (s *soak) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *soak) violatef(format string, args ...any) {
	s.res.Violations = append(s.res.Violations, fmt.Sprintf(format, args...))
}

// Soak runs the full two-generation soak and returns the tally. The
// error covers setup problems only (an unusable Dir, say); injected
// faults and contract breaches land in Result.Violations.
func Soak(cfg Config) (Result, error) {
	if cfg.Apps <= 0 {
		cfg.Apps = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 8 * cfg.Apps
	}
	if cfg.JobDeadline <= 0 {
		cfg.JobDeadline = 500 * time.Millisecond
	}
	if cfg.ServeRules == nil {
		cfg.ServeRules = DefaultServeRules()
	}
	if cfg.DiskRules == nil {
		cfg.DiskRules = DefaultDiskRules()
	}
	s := &soak{cfg: cfg}
	s.res.Requests = cfg.Requests

	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "chaossoak-*"); err != nil {
			return s.res, err
		}
		defer os.RemoveAll(dir)
	}
	if err := s.generate(); err != nil {
		return s.res, err
	}

	baseline := runtime.NumGoroutine()
	serveIn := fault.New(cfg.Seed+1, cfg.ServeRules...)
	diskIn := fault.New(cfg.Seed+2, cfg.DiskRules...)
	if err := s.hostilePhase(dir, serveIn, diskIn); err != nil {
		return s.res, err
	}
	s.awaitGoroutines(baseline, "hostile-phase shutdown")
	s.res.ServeFires = len(serveIn.Events())
	s.res.DiskFires = len(diskIn.Events())

	s.res.Poisoned = s.poison(dir)
	s.logf("poisoned %d cache entry files", s.res.Poisoned)

	baseline = runtime.NumGoroutine()
	if err := s.recoveryPhase(dir); err != nil {
		return s.res, err
	}
	s.awaitGoroutines(baseline, "recovery-phase shutdown")
	return s.res, nil
}

// generate builds the app corpus and its offline reference streams.
func (s *soak) generate() error {
	rng := dfggen.Seeded(s.cfg.Seed)
	vars := variants()
	for i := 0; i < s.cfg.Apps; i++ {
		app := dfggen.Application(rng, dfggen.DefaultParams())
		var buf bytes.Buffer
		if err := dfgio.WriteApplication(&buf, app); err != nil {
			return fmt.Errorf("marshal app %d: %w", i, err)
		}
		dfg := buf.Bytes()
		refs := make([][]byte, len(vars))
		for v, va := range vars {
			// Parse the upload bytes back the way the server does, so
			// the reference is byte-exact including the app name.
			parsed, err := dfgio.ParseApplication("upload", bytes.NewReader(dfg))
			if err != nil {
				return fmt.Errorf("reparse app %d: %w", i, err)
			}
			var out bytes.Buffer
			if err := service.Run(context.Background(), parsed, va.params,
				search.NewCostCache(), service.NDJSONEmitter(&out)); err != nil {
				return fmt.Errorf("offline reference app %d variant %q: %w", i, va.query, err)
			}
			refs[v] = out.Bytes()
		}
		s.apps = append(s.apps, dfg)
		s.refs = append(s.refs, refs)
	}
	s.logf("generated %d apps (%d reference streams)", len(s.apps), len(s.apps)*len(vars))
	return nil
}

// hostilePhase serves the request mix with both injectors armed, then
// shuts the server down with the faults still firing — the crash the
// recovery phase must survive.
func (s *soak) hostilePhase(dir string, serveIn, diskIn *fault.Injector) error {
	store, err := search.NewStoreOptions(dir, 0, search.StoreOptions{
		FS:    fault.NewInjectFS(nil, diskIn),
		Fsync: true, BreakerThreshold: 2, ProbeEvery: 1,
	})
	if err != nil {
		return err
	}
	srv := service.NewServer(service.Config{
		Cache:         search.NewPersistentCostCache(store),
		FaultInjector: serveIn,
		JobDeadline:   s.cfg.JobDeadline,
		FlushBackoff:  time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	vars := variants()
	for r := 0; r < s.cfg.Requests; r++ {
		i := r % len(s.apps)
		v := (r / len(s.apps)) % len(vars)
		status, body, hdr := s.post(ts, s.apps[i], vars[v].query)
		s.classify(r, status, body, hdr, s.refs[i][v])
	}
	// Mid-chaos the daemon must stay ready: degraded is a 200, only a
	// saturated queue (impossible for this sequential client) is not.
	if code, body := s.get(ts, "/healthz"); code != http.StatusOK {
		s.violatef("hostile-phase healthz = %d %s, want 200 (degraded is still ready)", code, body)
	}
	ts.Close()
	srv.Close() // final flush still races the hostile disk — by design
	s.res.HostileStore = store.Stats()
	s.logf("hostile phase: %d clean, %d mid-stream, %d failed, %d rejected (store %+v)",
		s.res.Clean, s.res.MidStream, s.res.Failed, s.res.Rejected, s.res.HostileStore)
	return nil
}

// classify checks one hostile-phase response against the invariants.
func (s *soak) classify(r int, status int, body []byte, hdr http.Header, ref []byte) {
	switch status {
	case http.StatusOK:
		lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
		for _, ln := range lines {
			var rec struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal(ln, &rec); err != nil || rec.Type == "" {
				s.violatef("request %d: malformed NDJSON record %q (err %v)", r, ln, err)
				return
			}
		}
		var last struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		_ = json.Unmarshal(lines[len(lines)-1], &last)
		if last.Type == "error" {
			// A fault after the 200 was committed: everything streamed
			// before the in-band error record must be an exact prefix
			// of the reference — a faulted stream may be short, never
			// wrong.
			prefix := body[:len(body)-len(lines[len(lines)-1])-1]
			if !bytes.HasPrefix(ref, prefix) {
				s.violatef("request %d: mid-stream-faulted response is not a prefix of the reference:\n%s", r, body)
			}
			s.res.MidStream++
			return
		}
		if !bytes.Equal(body, ref) {
			s.violatef("request %d: clean 200 diverges from the offline reference:\ngot:\n%s\nwant:\n%s", r, body, ref)
			return
		}
		s.res.Clean++
	case http.StatusServiceUnavailable:
		if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
			s.violatef("request %d: 503 with Retry-After %q, want a positive integer", r, hdr.Get("Retry-After"))
		}
		s.res.Rejected++
	case http.StatusInternalServerError, http.StatusGatewayTimeout:
		s.res.Failed++
	default:
		s.violatef("request %d: unexpected status %d: %s", r, status, body)
	}
}

// poison flips one byte in every surviving cache entry file — the
// on-disk corruption the recovery phase must quarantine, never serve.
func (s *soak) poison(dir string) int {
	files, _ := filepath.Glob(filepath.Join(dir, "*.gob"))
	n := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil || len(data) == 0 {
			continue
		}
		data[len(data)/2] ^= 0x40
		if os.WriteFile(f, data, 0o644) == nil {
			n++
		}
	}
	return n
}

// recoveryPhase brings a fresh, unfaulted server up over the crashed
// and poisoned directory: it must sweep temp litter, quarantine every
// poisoned entry it reads, answer byte-identically, and report healthy.
func (s *soak) recoveryPhase(dir string) error {
	store, err := search.NewStore(dir, 0)
	if err != nil {
		return fmt.Errorf("recovery store over crashed dir: %w", err)
	}
	srv := service.NewServer(service.Config{
		Cache: search.NewPersistentCostCache(store),
	})
	ts := httptest.NewServer(srv.Handler())
	for i, dfg := range s.apps {
		for v, va := range variants() {
			status, body, _ := s.post(ts, dfg, va.query)
			s.res.Recovery++
			if status != http.StatusOK {
				s.violatef("recovery app %d variant %q: status %d: %s", i, va.query, status, body)
				continue
			}
			if !bytes.Equal(body, s.refs[i][v]) {
				s.violatef("recovery app %d variant %q: stream diverges from the offline reference — poisoned data may have been served:\ngot:\n%s\nwant:\n%s",
					i, va.query, body, s.refs[i][v])
			}
		}
	}
	if s.res.Poisoned > 0 && store.Stats().Corrupt == 0 {
		s.violatef("%d poisoned entry files, yet none were quarantined on re-read", s.res.Poisoned)
	}
	if store.Degraded() {
		s.violatef("recovery store is degraded on a healthy disk")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := s.get(ts, "/healthz")
		if code == http.StatusOK {
			if !bytes.Contains(body, []byte(`"ok"`)) {
				s.violatef("recovered healthz body %s, want status ok", body)
			}
			break
		}
		if time.Now().After(deadline) {
			s.violatef("recovered server never became ready: %d %s", code, body)
			break
		}
		time.Sleep(time.Millisecond)
	}
	ts.Close()
	srv.Close()
	s.res.RecoveredStore = store.Stats()
	s.logf("recovery phase: %d requests, %d quarantined (store %+v)",
		s.res.Recovery, s.res.RecoveredStore.Corrupt, s.res.RecoveredStore)
	return nil
}

// awaitGoroutines polls the goroutine count back to (near) baseline —
// the zero-leak invariant after each server generation dies.
func (s *soak) awaitGoroutines(baseline int, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			s.violatef("%s leaked goroutines: %d > baseline %d", what, runtime.NumGoroutine(), baseline)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s *soak) post(ts *httptest.Server, dfg []byte, query string) (int, []byte, http.Header) {
	resp, err := http.Post(ts.URL+"/v1/select"+query, "text/plain", bytes.NewReader(dfg))
	if err != nil {
		s.violatef("POST %s: transport error: %v", query, err)
		return 0, nil, nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		s.violatef("POST %s: read body: %v", query, err)
		return 0, nil, nil
	}
	return resp.StatusCode, body, resp.Header
}

func (s *soak) get(ts *httptest.Server, path string) (int, []byte) {
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		s.violatef("GET %s: transport error: %v", path, err)
		return 0, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}
