package exact

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
)

// sameCut compares two optional cuts for bit-identity.
func sameCut(t *testing.T, label string, seq, par *core.Cut) {
	t.Helper()
	if (seq == nil) != (par == nil) {
		t.Fatalf("%s: sequential cut = %v, parallel = %v", label, seq, par)
	}
	if seq == nil {
		return
	}
	if !seq.Nodes.Equal(par.Nodes) {
		t.Fatalf("%s: sequential nodes %v != parallel nodes %v", label, seq.Nodes, par.Nodes)
	}
	if seq.Merit() != par.Merit() || seq.NumIn != par.NumIn || seq.NumOut != par.NumOut {
		t.Fatalf("%s: cut metrics differ: seq (%v,%d,%d), par (%v,%d,%d)",
			label, seq.Merit(), seq.NumIn, seq.NumOut, par.Merit(), par.NumIn, par.NumOut)
	}
}

func sameCuts(t *testing.T, label string, seq, par []*core.Cut) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d sequential cuts != %d parallel cuts", label, len(seq), len(par))
	}
	for i := range seq {
		sameCut(t, label, seq[i], par[i])
	}
}

// TestParallelExactDeterminism pins the tentpole contract: the parallel
// branch-and-bound (shared best-bound, subtree split at any depth, any
// worker count) returns cuts bit-identical to the sequential search, for
// SingleCut, Iterative and MultiCut alike. Run under -race in CI.
func TestParallelExactDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workers := []int{2, 3, 8}
	depths := []int{0, 2, 5}
	for trial := 0; trial < 12; trial++ {
		blk := randKernelBlock(rng, 8+rng.Intn(12))
		opt := defaultOpts()
		seqSingle, err := SingleCut(blk, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		seqIter, err := Iterative(blk, opt, 3)
		if err != nil {
			t.Fatal(err)
		}
		seqMulti, err := MultiCut(blk, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			for _, d := range depths {
				popt := opt
				popt.Workers, popt.SplitDepth = w, d
				parSingle, err := SingleCut(blk, popt, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameCut(t, "single", seqSingle, parSingle)
				parIter, err := Iterative(blk, popt, 3)
				if err != nil {
					t.Fatal(err)
				}
				sameCuts(t, "iterative", seqIter, parIter)
				parMulti, err := MultiCut(blk, popt, 2)
				if err != nil {
					t.Fatal(err)
				}
				sameCuts(t, "multi", seqMulti, parMulti)
			}
		}
	}
}

// TestParallelExactKernelSuite runs the determinism check on the real
// benchmark suite blocks (within the paper's per-engine size limits) at
// several worker counts.
func TestParallelExactKernelSuite(t *testing.T) {
	opt := defaultOpts()
	opt.Budget = 2_000_000_000
	for _, spec := range kernels.All() {
		blk := spec.App.Blocks[0]
		if spec.CriticalSize <= 100 {
			seq, err := Iterative(blk, opt, 4)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			for _, w := range []int{2, 5} {
				popt := opt
				popt.Workers = w
				par, err := Iterative(blk, popt, 4)
				if err != nil {
					t.Fatalf("%s (workers %d): %v", spec.Name, w, err)
				}
				sameCuts(t, spec.Name+"/iterative", seq, par)
			}
		}
		if spec.CriticalSize <= 25 {
			seq, err := MultiCut(blk, opt, 2)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			for _, w := range []int{2, 5} {
				popt := opt
				popt.Workers = w
				par, err := MultiCut(blk, popt, 2)
				if err != nil {
					t.Fatalf("%s (workers %d): %v", spec.Name, w, err)
				}
				sameCuts(t, spec.Name+"/multi", seq, par)
			}
		}
	}
}

// waitGoroutines polls until the goroutine count returns to at most base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, want <= %d", runtime.NumGoroutine(), base)
}

// TestExactContextCancelMidBlock pins the in-block cancellation
// granularity: a block far too large to enumerate aborts mid-search
// (amortized context checks inside the inner loop), promptly, and leaks
// no subtree worker goroutines.
func TestExactContextCancelMidBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blk := randKernelBlock(rng, 120) // intractable without a budget
	for _, w := range []int{1, 4} {
		base := runtime.NumGoroutine()
		opt := defaultOpts()
		opt.Workers = w
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := SingleCutContext(ctx, blk, opt, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err = %v, want context.Canceled", w, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("workers %d: cancellation took %v", w, elapsed)
		}
		waitGoroutines(t, base)
		cancel()
	}
}

// TestExactContextPreCancelled: an already-cancelled context aborts before
// any meaningful work.
func TestExactContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blk := randKernelBlock(rng, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SingleCutContext(ctx, blk, defaultOpts(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("single: err = %v, want context.Canceled", err)
	}
	if _, err := MultiCutContext(ctx, blk, defaultOpts(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi: err = %v, want context.Canceled", err)
	}
	if _, err := IterativeContext(ctx, blk, defaultOpts(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("iterative: err = %v, want context.Canceled", err)
	}
}

// TestSingleCutBudgetParallel: the explored-node budget is shared across
// subtree workers, so a tiny budget still aborts the parallel search.
func TestSingleCutBudgetParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	blk := randKernelBlock(rng, 40)
	opt := defaultOpts()
	opt.Budget = 50
	opt.Workers = 4
	if _, err := SingleCut(blk, opt, nil); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// TestExcludedRespectedParallel: frozen/excluded nodes stay out of the cut
// on the parallel path too (the fork shares the frozen preprocessing).
func TestExcludedRespectedParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		blk := randKernelBlock(rng, 10+rng.Intn(8))
		excl := graph.NewBitSet(blk.N())
		for v := 0; v < blk.N(); v += 3 {
			excl.Set(v)
		}
		opt := defaultOpts()
		seq, err := SingleCut(blk, opt, excl)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 3
		par, err := SingleCut(blk, opt, excl)
		if err != nil {
			t.Fatal(err)
		}
		sameCut(t, "excluded", seq, par)
		if par != nil && par.Nodes.Intersects(excl) {
			t.Fatal("parallel cut contains an excluded node")
		}
	}
}

// TestSplitDepthClamped pins the resource bound on the task list: even an
// absurd explicit SplitDepth (remotely settable through the service) is
// clamped so the prefix enumeration stays small, and results still match
// the sequential search.
func TestSplitDepthClamped(t *testing.T) {
	for branching, wantMax := 2, 12; branching <= 5; branching++ {
		d := splitDepthFor(30, 4, 1000, branching)
		if d > wantMax {
			t.Fatalf("splitDepthFor(branching %d) = %d, beyond the task bound", branching, d)
		}
		limit := 1
		for i := 0; i < d; i++ {
			limit *= branching
		}
		if limit > maxSubtreeTasks {
			t.Fatalf("branching %d depth %d allows %d tasks > %d", branching, d, limit, maxSubtreeTasks)
		}
	}
	rng := rand.New(rand.NewSource(21))
	blk := randKernelBlock(rng, 18)
	opt := defaultOpts()
	seq, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers, opt.SplitDepth = 4, 1<<20
	par, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameCut(t, "clamped-depth", seq, par)
	popt := defaultOpts()
	popt.Workers, popt.SplitDepth = 4, 1<<20
	multiSeq, err := MultiCut(blk, defaultOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	multiPar, err := MultiCut(blk, popt, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameCuts(t, "clamped-depth-multi", multiSeq, multiPar)
}
