package exact

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// TestIterativeOnStructuredBlock exercises the pruning on a block with the
// shape real kernels have (MAC taps + clamps) and checks the first cut is
// exactly the brute-force optimum.
func TestIterativeOnStructuredBlock(t *testing.T) {
	bu := ir.NewBuilder("macs", 1)
	acc := bu.Input("acc")
	sum := acc
	for i := 0; i < 4; i++ {
		x, y := bu.Input("x"), bu.Input("y")
		p := bu.Mul(x, y)
		sum = bu.Add(sum, p)
	}
	cl := bu.Min(sum, bu.Imm(32767))
	cl = bu.Max(cl, bu.Imm(-32768))
	bu.LiveOut(cl)
	blk := bu.MustBuild()

	opt := defaultOpts()
	want := bruteForceBest(blk, opt)
	cuts, err := Iterative(blk, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 || math.Abs(cuts[0].Merit()-want) > 1e-9 {
		t.Fatalf("iterative merit = %v, brute force %v", cuts, want)
	}
}

// TestMultiCutSymmetryBreaking: with identical disconnected halves, the
// joint search must still terminate quickly and find both (symmetric
// assignments are pruned, not enumerated).
func TestMultiCutSymmetryBreaking(t *testing.T) {
	bu := ir.NewBuilder("sym", 1)
	for k := 0; k < 2; k++ {
		a, b := bu.Input("a"), bu.Input("b")
		m := bu.Mul(a, b)
		s := bu.AddI(m, 1)
		bu.LiveOut(s)
	}
	blk := bu.MustBuild()
	opt := defaultOpts()
	opt.Budget = 200_000 // tight: explodes without symmetry breaking
	cuts, err := MultiCut(blk, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum packs both MACs into ONE cut of two independent
	// subgraphs: sw 8 in 2 AFU cycles (merit 6) beats two separate
	// 2-merit cuts.
	tot, nodes := 0.0, 0
	for _, c := range cuts {
		tot += c.Merit()
		nodes += c.Size()
	}
	if math.Abs(tot-6) > 1e-9 {
		t.Errorf("total merit = %v, want 6 (both MACs in one cut)", tot)
	}
	if nodes != 4 {
		t.Errorf("covered %d nodes, want all 4", nodes)
	}
}

// TestSingleCutFrozenEverything returns nil without error.
func TestSingleCutFrozenEverything(t *testing.T) {
	bu := ir.NewBuilder("fz", 1)
	a := bu.Input("a")
	v := bu.Add(a, a)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	excl := graph.NewBitSet(1)
	excl.Set(0)
	cut, err := SingleCut(blk, defaultOpts(), excl)
	if err != nil || cut != nil {
		t.Fatalf("cut = %v, err = %v; want nil, nil", cut, err)
	}
}

// The exact single-cut respects live-out outputs in its port counting.
func TestSingleCutLiveOutPorts(t *testing.T) {
	// Chain of three adds, all live-out: any cut of 2+ nodes has 2+
	// outputs; under (4,1) only single nodes fit, which save nothing.
	bu := ir.NewBuilder("lo", 1)
	a, b := bu.Input("a"), bu.Input("b")
	v1 := bu.Add(a, b)
	v2 := bu.Add(v1, b)
	v3 := bu.Mul(v2, b)
	bu.LiveOut(v1, v2, v3)
	blk := bu.MustBuild()
	opt := defaultOpts()
	opt.MaxIn, opt.MaxOut = 4, 1
	cut, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the mul alone saves cycles (3 sw -> 1 afu) with one output.
	if cut == nil || cut.Size() != 1 || !cut.Nodes.Has(2) {
		t.Fatalf("cut = %v, want the lone mul", cut)
	}
	if _, _, _, out, _ := core.CutMetrics(blk, latency.Default(), cut.Nodes); out != 1 {
		t.Errorf("outputs = %d, want 1", out)
	}
}
