package exact

import (
	"context"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// checkEvery is the amortized control-check stride of the branch-and-bound
// inner loops: every checkEvery explored search-tree nodes a worker flushes
// its private explored count into the shared counter, re-checks the budget
// and the context, and observes aborts published by other workers. One
// atomic add + one context poll per 4096 nodes is unmeasurable against the
// per-node work, yet bounds cancellation latency on a 696-node AES block to
// microseconds instead of the full search.
const checkEvery = 4096

// Bound is a monotone shared merit bound: a lock-free float64 word that
// only ever rises. It is the publication side of the branch-and-bound's
// best-bound pruning, exported so an external producer (the racing
// meta-engine's heuristic goroutines) can keep tightening a running search's
// bound through the same CAS path the search's own workers use. Raising
// it with any merit that some feasible assignment actually achieves is
// sound AND preserves the search's bit-identical result: cross-subtree
// pruning is strict (ub < bound), so the DFS path to the first optimal
// leaf — every node of which has ub >= optimum — is never pruned by a
// bound <= optimum. Raising it past the true optimum would silently
// discard the optimum; never publish speculative values.
type Bound struct {
	merit atomic.Uint64 // float64 bits of the best published merit
}

// NewBound returns a bound starting at 0 (Float64bits(0) == 0, so the
// zero value is already the initial bound).
func NewBound() *Bound { return new(Bound) }

// Best returns the current bound. Plain atomic load: pruning reads it on
// every search node.
func (b *Bound) Best() float64 {
	return math.Float64frombits(b.merit.Load())
}

// Raise publishes merit m if it improves the bound and reports whether it
// did (CAS loop; lost races retry against the new value, so the bound is
// monotone). Safe to call from any goroutine, including while a search
// pruning against the bound is running.
func (b *Bound) Raise(m float64) bool {
	for {
		cur := b.merit.Load()
		if m <= math.Float64frombits(cur) {
			return false
		}
		if b.merit.CompareAndSwap(cur, math.Float64bits(m)) {
			return true
		}
	}
}

// sharedBound is the cross-subtree search state of one branch-and-bound
// run: the globally best merit found so far (a Bound — possibly shared
// with an external producer), the shared explored-node budget, and the
// abort flags (budget exhaustion, context cancellation, peer abort). The
// sequential path uses the same object with a single worker, so budget and
// cancellation semantics live in exactly one place.
type sharedBound struct {
	ctx    context.Context
	budget int64
	bound  *Bound

	explored  atomic.Int64
	stop      atomic.Bool
	budgetHit atomic.Bool

	// Observability tallies, folded into the run's recorder (if any) by
	// the entry points. Workers count prunes into plain searchCtl fields
	// and flush them here on the same amortized stride as explored, so
	// the inner loops never touch an atomic.
	prunedLocal  atomic.Int64 // subtrees cut by the worker-local best
	prunedShared atomic.Int64 // subtrees cut by the shared bound
	raises       atomic.Int64 // successful bound publications by this search
	tasks        atomic.Int64 // parallel prefix tasks claimed
}

// newSharedBound assembles one run's control state. bound may be an
// external (shared, pre-seeded) Bound; nil allocates a private one.
func newSharedBound(ctx context.Context, budget int64, bound *Bound) *sharedBound {
	if bound == nil {
		bound = NewBound()
	}
	return &sharedBound{ctx: ctx, budget: budget, bound: bound}
}

// best returns the current global bound.
func (sh *sharedBound) best() float64 { return sh.bound.Best() }

// raise publishes merit m if it improves the global bound.
func (sh *sharedBound) raise(m float64) {
	if sh.bound.Raise(m) {
		sh.raises.Add(1)
	}
}

// obsFlush folds the run's tallies into the context's recorder, if any.
// Called once per entry-point invocation — never on the hot path. The
// initial seed raise (racing's heuristic bound) goes through bound.Raise
// directly, so raises counts only publications by the search itself.
func (sh *sharedBound) obsFlush(ctx context.Context) {
	rec := obs.FromContext(ctx)
	if rec == nil {
		return
	}
	rec.Add(obs.ExactExplored, sh.explored.Load())
	rec.Add(obs.ExactLocalPrunes, sh.prunedLocal.Load())
	rec.Add(obs.ExactSharedPrunes, sh.prunedShared.Load())
	rec.Add(obs.ExactBoundRaises, sh.raises.Load())
	rec.Add(obs.ExactSubtreeTasks, sh.tasks.Load())
}

// charge adds n freshly explored nodes to the shared counter and reports
// whether the search must stop: budget exhausted, context cancelled, or a
// peer already aborted. Called every checkEvery nodes per worker.
func (sh *sharedBound) charge(n int64) bool {
	if sh.budget > 0 && sh.explored.Add(n) > sh.budget {
		sh.budgetHit.Store(true)
		sh.stop.Store(true)
	} else if sh.ctx != nil && sh.ctx.Err() != nil {
		sh.stop.Store(true)
	}
	return sh.stop.Load()
}

// err reports why the search stopped: the context's error if it was
// cancelled, ErrBudget if the shared budget ran out, nil otherwise.
func (sh *sharedBound) err() error {
	if sh.ctx != nil {
		if e := sh.ctx.Err(); e != nil {
			return e
		}
	}
	if sh.budgetHit.Load() {
		return ErrBudget
	}
	return nil
}

// maxSubtreeTasks bounds the phase-1 task list. The split depth — the
// explicit option included, since it is remotely settable through the
// service's split_depth parameter — is clamped so branching^depth cannot
// exceed it, keeping enumeration memory O(maxSubtreeTasks · depth) no
// matter what depth is requested; an unclamped depth would let one
// request materialize an exponential prefix list before the budget could
// abort it. Results are identical for every depth, so clamping is purely
// a resource bound.
const maxSubtreeTasks = 4096

// splitDepthFor resolves the subtree-split depth: the explicit option
// when set, otherwise deep enough for ~4-8 tasks per worker (load balance
// when subtree sizes are skewed, which pruning guarantees). branching is
// the maximum decisions per tree level (2 for the single-cut search,
// nise+1 for the joint search); every result is clamped to the
// maxSubtreeTasks bound and inside the decision sequence.
func splitDepthFor(opt, workers, n, branching int) int {
	if branching < 2 {
		branching = 2
	}
	maxDepth := 0
	for t := 1; t <= maxSubtreeTasks/branching; t *= branching {
		maxDepth++
	}
	d := opt
	if d <= 0 {
		d = bits.Len(uint(workers)) + 2
	}
	if d > maxDepth {
		d = maxDepth
	}
	if d > n-1 {
		d = n - 1
	}
	return d
}

// searchCtl is the branch-and-bound control state shared by the single-
// and multi-cut searches: amortized explored-node accounting against the
// shared bound, the latched stop flag, and the subtree split/replay
// bookkeeping. It lives in one place because the budget and replay
// semantics must stay behaviorally identical for both searches — the
// determinism contract depends on them.
type searchCtl struct {
	sh       *sharedBound
	explored int64
	flushed  int64
	stopped  bool

	// Worker-private prune tallies; flush drains them into the shared
	// atomics alongside the explored delta.
	prunedLocal  int64
	prunedShared int64

	// Subtree split/replay state: collect is non-nil while enumerating
	// decision prefixes of length splitAt (trace is the current prefix);
	// a non-empty path makes search replay that prefix before exploring.
	splitAt int
	collect func([]byte)
	trace   []byte
	path    []byte
}

// enter counts one explored search node and runs the amortized stop
// check; it reports whether the search may continue.
func (c *searchCtl) enter() bool {
	if c.stopped {
		return false
	}
	c.explored++
	if c.explored-c.flushed >= checkEvery {
		stop := c.flush()
		// Yield at the amortized poll point (and only here — not in the
		// final flush, so sub-checkEvery runs never yield): the inner
		// loops are pure CPU, so on a single-P runtime a long proof
		// would otherwise starve concurrent bound producers (the racing
		// engine's heuristic goroutines) down to the ~10ms preemption
		// quantum, delaying the very seed this search prunes against.
		// With no runnable peers this is tens of nanoseconds per
		// checkEvery (4096) nodes — noise.
		runtime.Gosched()
		if stop {
			return false
		}
	}
	return true
}

// flush charges the privately counted nodes to the shared budget and
// re-checks the stop conditions; it reports (and latches) stop.
func (c *searchCtl) flush() bool {
	d := c.explored - c.flushed
	c.flushed = c.explored
	if c.prunedLocal != 0 {
		c.sh.prunedLocal.Add(c.prunedLocal)
		c.prunedLocal = 0
	}
	if c.prunedShared != 0 {
		c.sh.prunedShared.Add(c.prunedShared)
		c.prunedShared = 0
	}
	if d > 0 && c.sh.charge(d) {
		c.stopped = true
	} else if c.sh.stop.Load() {
		c.stopped = true
	}
	return c.stopped
}

// runSubtrees drains the enumerated prefix tasks on w workers. forkRun is
// called with (worker-private state index irrelevant) one task index at a
// time; implementations replay the prefix on private state and record the
// subtree result into their slot. A panic in any worker is re-raised on
// the calling goroutine after the pool drains, matching the containment
// semantics of the search layer's parallelFor.
func runSubtrees(sh *sharedBound, w, tasks int, newWorker func() func(ti int)) {
	if w > tasks {
		w = tasks
	}
	// Recorder plumbing is resolved once: each claimed task gets a
	// subtree span under the enclosing search span. With no recorder both
	// calls are nil-receiver no-ops.
	var rec *obs.Recorder
	var parent obs.SpanID
	if sh.ctx != nil {
		rec = obs.FromContext(sh.ctx)
		parent = obs.ParentSpan(sh.ctx)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal atomic.Value
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal.Store(r)
					}
					sh.stop.Store(true)
				}
			}()
			run := newWorker()
			for {
				if sh.stop.Load() {
					return
				}
				ti := int(next.Add(1)) - 1
				if ti >= tasks {
					return
				}
				sh.tasks.Add(1)
				sid := rec.Start(parent, obs.KindSubtree, "")
				run(ti)
				rec.End(sid)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
}
