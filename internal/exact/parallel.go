package exact

import (
	"context"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// checkEvery is the amortized control-check stride of the branch-and-bound
// inner loops: every checkEvery explored search-tree nodes a worker flushes
// its private explored count into the shared counter, re-checks the budget
// and the context, and observes aborts published by other workers. One
// atomic add + one context poll per 4096 nodes is unmeasurable against the
// per-node work, yet bounds cancellation latency on a 696-node AES block to
// microseconds instead of the full search.
const checkEvery = 4096

// sharedBound is the cross-subtree search state of one branch-and-bound
// run: the globally best merit found so far (lock-free load for pruning,
// CAS-publish on improvement), the shared explored-node budget, and the
// abort flags (budget exhaustion, context cancellation, peer abort). The
// sequential path uses the same object with a single worker, so budget and
// cancellation semantics live in exactly one place.
type sharedBound struct {
	ctx    context.Context
	budget int64

	merit     atomic.Uint64 // float64 bits of the best published merit
	explored  atomic.Int64
	stop      atomic.Bool
	budgetHit atomic.Bool
}

func newSharedBound(ctx context.Context, budget int64) *sharedBound {
	// Float64bits(0) == 0, so the zero-valued merit word already encodes
	// the initial bound of 0.0.
	return &sharedBound{ctx: ctx, budget: budget}
}

// best returns the current global bound. Plain atomic load: pruning reads
// it on every search node.
func (sh *sharedBound) best() float64 {
	return math.Float64frombits(sh.merit.Load())
}

// raise publishes merit m if it improves the global bound (CAS loop; lost
// races retry against the new value, so the bound is monotone).
func (sh *sharedBound) raise(m float64) {
	for {
		cur := sh.merit.Load()
		if m <= math.Float64frombits(cur) {
			return
		}
		if sh.merit.CompareAndSwap(cur, math.Float64bits(m)) {
			return
		}
	}
}

// charge adds n freshly explored nodes to the shared counter and reports
// whether the search must stop: budget exhausted, context cancelled, or a
// peer already aborted. Called every checkEvery nodes per worker.
func (sh *sharedBound) charge(n int64) bool {
	if sh.budget > 0 && sh.explored.Add(n) > sh.budget {
		sh.budgetHit.Store(true)
		sh.stop.Store(true)
	} else if sh.ctx != nil && sh.ctx.Err() != nil {
		sh.stop.Store(true)
	}
	return sh.stop.Load()
}

// err reports why the search stopped: the context's error if it was
// cancelled, ErrBudget if the shared budget ran out, nil otherwise.
func (sh *sharedBound) err() error {
	if sh.ctx != nil {
		if e := sh.ctx.Err(); e != nil {
			return e
		}
	}
	if sh.budgetHit.Load() {
		return ErrBudget
	}
	return nil
}

// maxSubtreeTasks bounds the phase-1 task list. The split depth — the
// explicit option included, since it is remotely settable through the
// service's split_depth parameter — is clamped so branching^depth cannot
// exceed it, keeping enumeration memory O(maxSubtreeTasks · depth) no
// matter what depth is requested; an unclamped depth would let one
// request materialize an exponential prefix list before the budget could
// abort it. Results are identical for every depth, so clamping is purely
// a resource bound.
const maxSubtreeTasks = 4096

// splitDepthFor resolves the subtree-split depth: the explicit option
// when set, otherwise deep enough for ~4-8 tasks per worker (load balance
// when subtree sizes are skewed, which pruning guarantees). branching is
// the maximum decisions per tree level (2 for the single-cut search,
// nise+1 for the joint search); every result is clamped to the
// maxSubtreeTasks bound and inside the decision sequence.
func splitDepthFor(opt, workers, n, branching int) int {
	if branching < 2 {
		branching = 2
	}
	maxDepth := 0
	for t := 1; t <= maxSubtreeTasks/branching; t *= branching {
		maxDepth++
	}
	d := opt
	if d <= 0 {
		d = bits.Len(uint(workers)) + 2
	}
	if d > maxDepth {
		d = maxDepth
	}
	if d > n-1 {
		d = n - 1
	}
	return d
}

// searchCtl is the branch-and-bound control state shared by the single-
// and multi-cut searches: amortized explored-node accounting against the
// shared bound, the latched stop flag, and the subtree split/replay
// bookkeeping. It lives in one place because the budget and replay
// semantics must stay behaviorally identical for both searches — the
// determinism contract depends on them.
type searchCtl struct {
	sh       *sharedBound
	explored int64
	flushed  int64
	stopped  bool

	// Subtree split/replay state: collect is non-nil while enumerating
	// decision prefixes of length splitAt (trace is the current prefix);
	// a non-empty path makes search replay that prefix before exploring.
	splitAt int
	collect func([]byte)
	trace   []byte
	path    []byte
}

// enter counts one explored search node and runs the amortized stop
// check; it reports whether the search may continue.
func (c *searchCtl) enter() bool {
	if c.stopped {
		return false
	}
	c.explored++
	if c.explored-c.flushed >= checkEvery && c.flush() {
		return false
	}
	return true
}

// flush charges the privately counted nodes to the shared budget and
// re-checks the stop conditions; it reports (and latches) stop.
func (c *searchCtl) flush() bool {
	d := c.explored - c.flushed
	c.flushed = c.explored
	if d > 0 && c.sh.charge(d) {
		c.stopped = true
	} else if c.sh.stop.Load() {
		c.stopped = true
	}
	return c.stopped
}

// runSubtrees drains the enumerated prefix tasks on w workers. forkRun is
// called with (worker-private state index irrelevant) one task index at a
// time; implementations replay the prefix on private state and record the
// subtree result into their slot. A panic in any worker is re-raised on
// the calling goroutine after the pool drains, matching the containment
// semantics of the search layer's parallelFor.
func runSubtrees(sh *sharedBound, w, tasks int, newWorker func() func(ti int)) {
	if w > tasks {
		w = tasks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicVal atomic.Value
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal.Store(r)
					}
					sh.stop.Store(true)
				}
			}()
			run := newWorker()
			for {
				if sh.stop.Load() {
					return
				}
				ti := int(next.Add(1)) - 1
				if ti >= tasks {
					return
				}
				run(ti)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal.Load())
	}
}
