// Package exact implements the optimal ISE identification baselines the
// paper compares against (its reference [3], Atasu/Pozzi/Ienne DAC 2003):
//
//   - SingleCut: exhaustive enumeration of the best single feasible cut of
//     a block, with the DAC'03 prunings (reverse-topological branching,
//     monotone output-port count, permanent-input count, convexity
//     blocking, merit upper bound);
//   - Iterative (iterative exact single-cut): repeatedly find the exact
//     best cut, freeze it and repeat — the paper's "Iterative";
//   - MultiCut: exact joint assignment of nodes to NISE cuts — the
//     paper's "Exact", practical only for small blocks.
//
// Both entry points refuse blocks beyond a configurable node limit and
// abort when a search-node budget is exhausted, mirroring the paper's
// observation that the exact approaches fail on large basic blocks such as
// AES (696 nodes).
package exact

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// ErrTooLarge is returned when a block exceeds the configured node limit.
var ErrTooLarge = errors.New("exact: block exceeds node limit")

// ErrBudget is returned when the search-node budget is exhausted before
// the enumeration completes.
var ErrBudget = errors.New("exact: search budget exhausted")

// Options control the exact searches.
type Options struct {
	MaxIn, MaxOut int
	Model         *latency.Model
	// NodeLimit refuses larger blocks up front (0 = no limit).
	NodeLimit int
	// Budget bounds the number of explored search-tree nodes
	// (0 = no limit).
	Budget int64
	// Metrics costs the finished (winning) cuts — it is not on the
	// branch-and-bound hot path, which keeps its own incremental
	// bookkeeping. The search layer installs its shared memoized cache
	// here so exact winners land in (and are served from) the same
	// cache the other engines cost cuts through.
	Metrics core.MetricsFunc
}

// metricsOf resolves the costing function.
func (o *Options) metricsOf() core.MetricsFunc {
	if o.Metrics != nil {
		return o.Metrics
	}
	return core.MetricsOf
}

// singleCutSearch carries the branch-and-bound state for one block.
type singleCutSearch struct {
	opt    Options
	blk    *ir.Block
	dag    *graph.DAG
	order  []int // reverse topological order
	frozen *graph.BitSet
	swLat  []int
	hwLat  []float64
	// suffixSW[i] = Σ software latency of non-frozen nodes order[i:].
	suffixSW []int

	// Search state.
	cut     *graph.BitSet
	blocked *graph.BitSet
	pending *graph.BitSet // node values consumed by the cut, producer undecided
	inputs  *graph.BitSet // permanent input values (value ID space)
	inCnt   int
	outCnt  int
	swSum   int
	tail    []float64 // HW path from node downward within cut
	hwCP    float64

	best      *graph.BitSet
	bestMerit float64
	explored  int64
	aborted   bool
}

// SingleCut returns the feasible cut of the block maximizing merit
// λ(C) = latSW(C) − latHW(C), or nil when no cut has positive merit. Nodes
// in excluded (may be nil) cannot join the cut.
func SingleCut(blk *ir.Block, opt Options, excluded *graph.BitSet) (*core.Cut, error) {
	if err := checkOptions(&opt, blk); err != nil {
		return nil, err
	}
	n := blk.N()
	s := &singleCutSearch{
		opt:     opt,
		blk:     blk,
		dag:     blk.DAG(),
		frozen:  graph.NewBitSet(n),
		swLat:   make([]int, n),
		hwLat:   make([]float64, n),
		cut:     graph.NewBitSet(n),
		blocked: graph.NewBitSet(n),
		pending: graph.NewBitSet(n),
		inputs:  graph.NewBitSet(blk.NumValues()),
		tail:    make([]float64, n),
		best:    graph.NewBitSet(n),
	}
	if excluded != nil {
		s.frozen.Or(excluded)
	}
	for v := 0; v < n; v++ {
		op := blk.Nodes[v].Op
		s.swLat[v] = opt.Model.SWLat(op)
		if d, ok := opt.Model.HWLat(op); ok {
			s.hwLat[v] = d
		} else {
			s.frozen.Set(v)
		}
		if blk.ForbiddenInCut(v) {
			s.frozen.Set(v)
		}
	}
	topo := s.dag.Topo()
	s.order = make([]int, n)
	for i, v := range topo {
		s.order[n-1-i] = v
	}
	s.suffixSW = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffixSW[i] = s.suffixSW[i+1]
		if !s.frozen.Has(s.order[i]) {
			s.suffixSW[i] += s.swLat[s.order[i]]
		}
	}

	s.search(0)
	if s.aborted {
		return nil, ErrBudget
	}
	if s.best.Empty() || s.bestMerit <= 0 {
		return nil, nil
	}
	m := opt.metricsOf()(blk, opt.Model, s.best)
	return &core.Cut{
		Block:  blk,
		Nodes:  s.best.Clone(),
		NumIn:  m.NumIn,
		NumOut: m.NumOut,
		SWLat:  m.SWLat,
		HWLat:  m.HWLat,
	}, nil
}

func checkOptions(opt *Options, blk *ir.Block) error {
	if opt.Model == nil {
		return fmt.Errorf("exact: Options.Model is nil")
	}
	if opt.MaxIn < 1 || opt.MaxOut < 1 {
		return fmt.Errorf("exact: I/O constraints (%d,%d) must be at least (1,1)", opt.MaxIn, opt.MaxOut)
	}
	if opt.NodeLimit > 0 && blk.N() > opt.NodeLimit {
		return fmt.Errorf("%w: %d nodes > limit %d", ErrTooLarge, blk.N(), opt.NodeLimit)
	}
	return opt.Model.Validate(blk)
}

// search explores decisions for order[i:]. All constraint bookkeeping is
// exact for the decided prefix; see the package comment for the pruning
// rules.
func (s *singleCutSearch) search(i int) {
	if s.aborted {
		return
	}
	s.explored++
	if s.opt.Budget > 0 && s.explored > s.opt.Budget {
		s.aborted = true
		return
	}
	// Merit upper bound: every remaining non-frozen node could join with
	// no critical-path growth.
	ub := core.MeritOf(s.swSum+s.suffixSW[i], s.hwCP)
	if ub <= s.bestMerit {
		return
	}
	if i == len(s.order) {
		merit := core.MeritOf(s.swSum, s.hwCP)
		if merit > s.bestMerit && !s.cut.Empty() {
			s.bestMerit = merit
			s.best.CopyFrom(s.cut)
		}
		return
	}
	v := s.order[i]
	if !s.frozen.Has(v) && !s.blocked.Has(v) {
		s.branchInclude(i, v)
	}
	s.branchExclude(i, v)
}

func (s *singleCutSearch) branchInclude(i, v int) {
	blk := s.blk
	n := blk.N()

	// Output count: v's consumers are all decided (reverse topological
	// order), so v's output status is final.
	isOut := blk.LiveOut.Has(v)
	if !isOut {
		for _, u := range blk.Uses(v) {
			if !s.cut.Has(u) {
				isOut = true
				break
			}
		}
	}
	if blk.Nodes[v].Op.HasValue() && isOut && s.outCnt+1 > s.opt.MaxOut {
		return
	}
	// Permanent inputs: external input sources join immediately; node
	// sources are undecided (producers come later) and go to pending.
	var newInputs []int
	for _, src := range blk.Srcs(v) {
		if src >= n && !s.inputs.Has(src) {
			newInputs = append(newInputs, src)
		}
	}
	if s.inCnt+len(newInputs) > s.opt.MaxIn {
		return
	}
	// v itself may have been consumed by the cut; joining resolves the
	// pending use with no input.
	wasPending := s.pending.Has(v)

	// Commit.
	s.cut.Set(v)
	s.swSum += s.swLat[v]
	outAdded := 0
	if blk.Nodes[v].Op.HasValue() && isOut {
		s.outCnt++
		outAdded = 1
	}
	for _, src := range newInputs {
		s.inputs.Set(src)
	}
	s.inCnt += len(newInputs)
	var pendingAdded []int
	for _, src := range blk.Srcs(v) {
		if src < n && !s.pending.Has(src) && !s.cut.Has(src) {
			s.pending.Set(src)
			pendingAdded = append(pendingAdded, src)
		}
	}
	if wasPending {
		s.pending.Clear(v)
	}
	t := s.hwLat[v]
	down := 0.0
	for _, u := range s.dag.Succs(v) {
		if s.cut.Has(u) && s.tail[u] > down {
			down = s.tail[u]
		}
	}
	s.tail[v] = t + down
	oldCP := s.hwCP
	if s.tail[v] > s.hwCP {
		s.hwCP = s.tail[v]
	}

	s.search(i + 1)

	// Rollback.
	s.hwCP = oldCP
	s.tail[v] = 0
	if wasPending {
		s.pending.Set(v)
	}
	for _, src := range pendingAdded {
		s.pending.Clear(src)
	}
	s.inCnt -= len(newInputs)
	for _, src := range newInputs {
		s.inputs.Clear(src)
	}
	s.outCnt -= outAdded
	s.swSum -= s.swLat[v]
	s.cut.Clear(v)
}

func (s *singleCutSearch) branchExclude(i, v int) {
	// Excluding v: a pending use becomes a permanent input.
	wasPending := s.pending.Has(v)
	if wasPending && s.inCnt+1 > s.opt.MaxIn {
		return
	}
	var savedBlocked *graph.BitSet
	if s.dag.Desc(v).Intersects(s.cut) || wasPending {
		// v is outside the cut with a descendant inside (a pending use
		// implies a cut consumer, i.e. a cut descendant): every
		// ancestor of v must stay outside or the cut becomes
		// non-convex.
		anc := s.dag.Anc(v)
		if !anc.SubsetOf(s.blocked) {
			savedBlocked = s.blocked.Clone()
			s.blocked.Or(anc)
		}
	}
	if wasPending {
		s.pending.Clear(v)
		s.inputs.Set(v)
		s.inCnt++
	}

	s.search(i + 1)

	if wasPending {
		s.inCnt--
		s.inputs.Clear(v)
		s.pending.Set(v)
	}
	if savedBlocked != nil {
		s.blocked.CopyFrom(savedBlocked)
	}
}

// Iterative implements the paper's "Iterative" baseline: the exact best
// single cut is identified, its nodes are frozen, and the process repeats
// until nise cuts are found or no positive-merit cut remains.
func Iterative(blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	if nise < 1 {
		return nil, fmt.Errorf("exact: nise = %d, must be at least 1", nise)
	}
	excluded := graph.NewBitSet(blk.N())
	var cuts []*core.Cut
	for len(cuts) < nise {
		cut, err := SingleCut(blk, opt, excluded)
		if err != nil {
			return cuts, err
		}
		if cut == nil {
			break
		}
		cuts = append(cuts, cut)
		excluded.Or(cut.Nodes)
	}
	return cuts, nil
}
