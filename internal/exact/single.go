// Package exact implements the optimal ISE identification baselines the
// paper compares against (its reference [3], Atasu/Pozzi/Ienne DAC 2003):
//
//   - SingleCut: exhaustive enumeration of the best single feasible cut of
//     a block, with the DAC'03 prunings (reverse-topological branching,
//     monotone output-port count, permanent-input count, convexity
//     blocking, merit upper bound);
//   - Iterative (iterative exact single-cut): repeatedly find the exact
//     best cut, freeze it and repeat — the paper's "Iterative";
//   - MultiCut: exact joint assignment of nodes to NISE cuts — the
//     paper's "Exact", practical only for small blocks.
//
// Both entry points refuse blocks beyond a configurable node limit and
// abort when a search-node budget is exhausted, mirroring the paper's
// observation that the exact approaches fail on large basic blocks such as
// AES (696 nodes).
//
// With Options.Workers > 1 the branch-and-bound fans out inside the block:
// the reverse-topological decision tree is split at a configurable depth
// into independent subtree tasks that run on a bounded worker pool against
// a shared atomic best-bound. Cross-subtree pruning is strict (ub < bound)
// while local pruning keeps the sequential rule (ub <= best), and winners
// merge in subtree enumeration order — together that makes the parallel
// result bit-identical to the sequential one (see DESIGN.md, "Determinism
// contract"). The Context entry points additionally honor cancellation
// inside the inner loops, checked every few thousand explored nodes.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/obs"
)

// ErrTooLarge is returned when a block exceeds the configured node limit.
var ErrTooLarge = errors.New("exact: block exceeds node limit")

// ErrBudget is returned when the search-node budget is exhausted before
// the enumeration completes.
var ErrBudget = errors.New("exact: search budget exhausted")

// Options control the exact searches.
type Options struct {
	MaxIn, MaxOut int
	Model         *latency.Model
	// NodeLimit refuses larger blocks up front (0 = no limit).
	NodeLimit int
	// Budget bounds the number of explored search-tree nodes
	// (0 = no limit). Under parallel search the budget is shared across
	// all subtree workers (total explored nodes), so it still bounds the
	// run's work — but the parallel schedule charges more nodes than the
	// sequential one (prefix enumeration, per-task replay, weaker
	// cross-subtree pruning), so a run sitting near the boundary can
	// complete sequentially yet return ErrBudget in parallel. Treat the
	// budget as a resource failsafe, not a determinism-preserving knob:
	// the bit-identical guarantee below holds for runs that complete
	// within budget under the schedule in use.
	Budget int64
	// Workers bounds the in-block subtree worker pool of the branch-and-
	// bound. 0 and 1 select the single-threaded search (the historical
	// default); w > 1 splits the decision tree into subtree tasks run on
	// w workers with a shared best-bound. Completed runs are
	// bit-identical for every value — only wall-clock changes (see
	// Budget for the boundary carve-out). A negative value selects one
	// worker per CPU core.
	Workers int
	// SplitDepth is the decision depth at which the tree is split into
	// subtree tasks (parallel search only; 0 picks a depth yielding a
	// few tasks per worker). Results are identical for every depth.
	SplitDepth int
	// Metrics costs the finished (winning) cuts — it is not on the
	// branch-and-bound hot path, which keeps its own incremental
	// bookkeeping. The search layer installs its shared memoized cache
	// here so exact winners land in (and are served from) the same
	// cache the other engines cost cuts through.
	Metrics core.MetricsFunc
	// SeedBound pre-loads the shared best-bound before the search starts
	// (0 = unseeded). It MUST be a merit some feasible assignment of the
	// search actually achieves (e.g. the summed merit of K-L's disjoint
	// feasible cuts for MultiCut): pruning against the bound is strict
	// (ub < bound), so any seed <= the optimum leaves the result
	// bit-identical to an unseeded run while pruning strictly-worse
	// subtrees from step one. A seed above the optimum silently discards
	// the optimum. Explored-node counts DO change with the seed, so a run
	// sitting near the Budget boundary may complete seeded and return
	// ErrBudget unseeded (or vice versa) — the bit-identical guarantee is
	// for runs that complete within budget.
	SeedBound float64
	// Bound, when non-nil, is the run's shared best-bound object itself:
	// external producers may keep raising it (Bound.Raise) while the
	// search runs, tightening the pruning mid-flight through the same CAS
	// path the search's own workers publish through. The soundness rule
	// is SeedBound's: only publish merits some feasible assignment
	// achieves. SeedBound, when also set, is folded into it at start.
	Bound *Bound
	// Explored, when non-nil, receives the run's total explored
	// search-tree node count, added once before the entry point returns
	// (accumulating across the single-cut rounds of Iterative). It feeds
	// the service's seeded-vs-unseeded pruning metrics.
	Explored *int64
}

// metricsOf resolves the costing function.
func (o *Options) metricsOf() core.MetricsFunc {
	if o.Metrics != nil {
		return o.Metrics
	}
	return core.MetricsOf
}

// workersOf resolves the subtree worker count: <= 1 is the sequential
// path, negative means one worker per CPU core.
func (o *Options) workersOf() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// singleCutSearch carries the branch-and-bound state for one block. The
// preprocessing fields (down to suffixSW) are immutable after construction
// and shared read-only across subtree workers via fork; everything below
// is worker-private mutable search state.
type singleCutSearch struct {
	opt    Options
	blk    *ir.Block
	dag    *graph.DAG
	order  []int // reverse topological order
	frozen *graph.BitSet
	swLat  []int
	hwLat  []float64
	// suffixSW[i] = Σ software latency of non-frozen nodes order[i:].
	suffixSW []int
	searchCtl

	// Search state.
	cut     *graph.BitSet
	blocked *graph.BitSet
	pending *graph.BitSet // node values consumed by the cut, producer undecided
	inputs  *graph.BitSet // permanent input values (value ID space)
	inCnt   int
	outCnt  int
	swSum   int
	tail    []float64 // HW path from node downward within cut
	hwCP    float64

	// Per-depth scratch replacing the former allocation hot spots: the
	// blocked-set snapshot Clone per exclude branch and the newInputs /
	// pendingAdded slices per include branch. At any instant depth i has
	// at most one active frame per worker, so one slot per depth is
	// enough; buffers keep their grown capacity across branches.
	blockedSave []*graph.BitSet // lazily allocated
	inputsBuf   [][]int
	pendingBuf  [][]int

	best      *graph.BitSet
	bestMerit float64
}

// newSingleCutSearch builds the immutable preprocessing and one mutable
// search state for the block.
func newSingleCutSearch(blk *ir.Block, opt Options, excluded *graph.BitSet, sh *sharedBound) *singleCutSearch {
	n := blk.N()
	s := &singleCutSearch{
		opt:       opt,
		blk:       blk,
		dag:       blk.DAG(),
		frozen:    graph.NewBitSet(n),
		swLat:     make([]int, n),
		hwLat:     make([]float64, n),
		searchCtl: searchCtl{sh: sh},
	}
	if excluded != nil {
		s.frozen.Or(excluded)
	}
	for v := 0; v < n; v++ {
		op := blk.Nodes[v].Op
		s.swLat[v] = opt.Model.SWLat(op)
		if d, ok := opt.Model.HWLat(op); ok {
			s.hwLat[v] = d
		} else {
			s.frozen.Set(v)
		}
		if blk.ForbiddenInCut(v) {
			s.frozen.Set(v)
		}
	}
	topo := s.dag.Topo()
	s.order = make([]int, n)
	for i, v := range topo {
		s.order[n-1-i] = v
	}
	s.suffixSW = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffixSW[i] = s.suffixSW[i+1]
		if !s.frozen.Has(s.order[i]) {
			s.suffixSW[i] += s.swLat[s.order[i]]
		}
	}
	s.initMutable()
	return s
}

// initMutable allocates the worker-private search state.
func (s *singleCutSearch) initMutable() {
	n := s.blk.N()
	s.cut = graph.NewBitSet(n)
	s.blocked = graph.NewBitSet(n)
	s.pending = graph.NewBitSet(n)
	s.inputs = graph.NewBitSet(s.blk.NumValues())
	s.tail = make([]float64, n)
	s.best = graph.NewBitSet(n)
	s.blockedSave = make([]*graph.BitSet, n)
	s.inputsBuf = make([][]int, n)
	s.pendingBuf = make([][]int, n)
}

// fork returns a search sharing s's immutable preprocessing (and shared
// bound) with fresh private mutable state — one per subtree worker.
func (s *singleCutSearch) fork() *singleCutSearch {
	w := &singleCutSearch{
		opt: s.opt, blk: s.blk, dag: s.dag, order: s.order,
		frozen: s.frozen, swLat: s.swLat, hwLat: s.hwLat,
		suffixSW: s.suffixSW, searchCtl: searchCtl{sh: s.sh},
	}
	w.initMutable()
	return w
}

// saveBlocked snapshots the blocked set into depth i's scratch slot.
func (s *singleCutSearch) saveBlocked(i int) *graph.BitSet {
	sv := s.blockedSave[i]
	if sv == nil {
		sv = graph.NewBitSet(s.blk.N())
		s.blockedSave[i] = sv
	}
	sv.CopyFrom(s.blocked)
	return sv
}

// SingleCut returns the feasible cut of the block maximizing merit
// λ(C) = latSW(C) − latHW(C), or nil when no cut has positive merit. Nodes
// in excluded (may be nil) cannot join the cut.
func SingleCut(blk *ir.Block, opt Options, excluded *graph.BitSet) (*core.Cut, error) {
	return SingleCutContext(context.Background(), blk, opt, excluded)
}

// SingleCutContext is SingleCut with cancellation: the branch-and-bound
// aborts mid-search (checked every few thousand explored nodes) and
// returns ctx.Err().
func SingleCutContext(ctx context.Context, blk *ir.Block, opt Options, excluded *graph.BitSet) (*core.Cut, error) {
	if err := checkOptions(&opt, blk); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, obs.KindSearch, "single-cut")
	defer sp.End()
	sh := newSharedBound(ctx, opt.Budget, opt.Bound)
	sh.bound.Raise(opt.SeedBound)
	s := newSingleCutSearch(blk, opt, excluded, sh)
	best, bestMerit, err := s.run()
	sh.obsFlush(ctx)
	if opt.Explored != nil {
		*opt.Explored += sh.explored.Load()
	}
	if err != nil {
		return nil, err
	}
	if best == nil || best.Empty() || bestMerit <= 0 {
		return nil, nil
	}
	m := opt.metricsOf()(blk, opt.Model, best)
	return &core.Cut{
		Block:  blk,
		Nodes:  best.Clone(),
		NumIn:  m.NumIn,
		NumOut: m.NumOut,
		SWLat:  m.SWLat,
		HWLat:  m.HWLat,
	}, nil
}

// run drives the search: single-threaded when the pool is not requested
// (or the block is too small to split), otherwise split + fan-out + merge.
func (s *singleCutSearch) run() (*graph.BitSet, float64, error) {
	n := len(s.order)
	w := s.opt.workersOf()
	d := splitDepthFor(s.opt.SplitDepth, w, n, 2)
	if w <= 1 || d < 1 || n < 4 {
		s.search(0)
		s.flush()
		if err := s.sh.err(); err != nil {
			return nil, 0, err
		}
		return s.best, s.bestMerit, nil
	}

	// Phase 1: enumerate the decision prefixes of depth d — the subtree
	// tasks, in DFS order (include explored before exclude, exactly the
	// sequential visit order, which is what makes the merge tie-break
	// reproduce the sequential winner).
	var tasks [][]byte
	s.splitAt = d
	s.collect = func(p []byte) { tasks = append(tasks, p) }
	s.search(0)
	s.collect = nil
	s.flush()
	if err := s.sh.err(); err != nil {
		return nil, 0, err
	}
	if len(tasks) == 0 {
		return s.best, s.bestMerit, nil // everything pruned at the root
	}

	// Phase 2: run the subtree tasks on the pool. Each worker replays a
	// task's prefix on private state, explores its subtree pruning
	// against the shared bound, and records its local first-best.
	type result struct {
		merit float64
		nodes *graph.BitSet
	}
	results := make([]result, len(tasks))
	runSubtrees(s.sh, w, len(tasks), func() func(ti int) {
		ws := s.fork()
		return func(ti int) {
			ws.path = tasks[ti]
			ws.bestMerit = 0
			ws.search(0)
			ws.flush()
			if !ws.stopped && ws.bestMerit > 0 {
				results[ti] = result{merit: ws.bestMerit, nodes: ws.best.Clone()}
			}
		}
	})
	if err := s.sh.err(); err != nil {
		return nil, 0, err
	}

	// Phase 3: deterministic merge — first task (in DFS prefix order)
	// achieving the maximum merit wins, matching the sequential
	// first-improvement rule.
	var best *graph.BitSet
	bestMerit := 0.0
	for _, r := range results {
		if r.nodes != nil && r.merit > bestMerit {
			bestMerit, best = r.merit, r.nodes
		}
	}
	return best, bestMerit, nil
}

func checkOptions(opt *Options, blk *ir.Block) error {
	if opt.Model == nil {
		return fmt.Errorf("exact: Options.Model is nil")
	}
	if opt.MaxIn < 1 || opt.MaxOut < 1 {
		return fmt.Errorf("exact: I/O constraints (%d,%d) must be at least (1,1)", opt.MaxIn, opt.MaxOut)
	}
	if opt.SplitDepth < 0 {
		return fmt.Errorf("exact: SplitDepth = %d, must be non-negative", opt.SplitDepth)
	}
	// A NaN seed would poison the monotone CAS comparisons; a negative or
	// infinite one is never the merit of a feasible assignment.
	if opt.SeedBound < 0 || math.IsNaN(opt.SeedBound) || math.IsInf(opt.SeedBound, 0) {
		return fmt.Errorf("exact: SeedBound = %g, must be finite and non-negative", opt.SeedBound)
	}
	if opt.NodeLimit > 0 && blk.N() > opt.NodeLimit {
		return fmt.Errorf("%w: %d nodes > limit %d", ErrTooLarge, blk.N(), opt.NodeLimit)
	}
	return opt.Model.Validate(blk)
}

// search explores decisions for order[i:]. All constraint bookkeeping is
// exact for the decided prefix; see the package comment for the pruning
// rules.
func (s *singleCutSearch) search(i int) {
	if !s.enter() {
		return
	}
	if i < len(s.path) {
		// Replay the subtree task's decision prefix: the same state
		// evolution the enumeration committed, so every decision is
		// known feasible.
		v := s.order[i]
		if s.path[i] == 1 {
			s.branchInclude(i, v)
		} else {
			s.branchExclude(i, v)
		}
		return
	}
	// Merit upper bound: every remaining non-frozen node could join with
	// no critical-path growth. The local comparison keeps the sequential
	// first-improvement rule (<=); against the shared cross-subtree bound
	// only strictly-hopeless subtrees are pruned (<), so an equal-merit
	// cut in an earlier subtree still surfaces and the merge tie-break
	// stays bit-identical to the sequential order.
	ub := core.MeritOf(s.swSum+s.suffixSW[i], s.hwCP)
	if ub <= s.bestMerit {
		s.prunedLocal++
		return
	}
	if ub < s.sh.best() {
		s.prunedShared++
		return
	}
	if s.collect != nil && i == s.splitAt {
		s.collect(append([]byte(nil), s.trace...))
		return
	}
	if i == len(s.order) {
		merit := core.MeritOf(s.swSum, s.hwCP)
		if merit > s.bestMerit && !s.cut.Empty() {
			s.bestMerit = merit
			s.best.CopyFrom(s.cut)
			s.sh.raise(merit)
		}
		return
	}
	v := s.order[i]
	if !s.frozen.Has(v) && !s.blocked.Has(v) {
		s.branchInclude(i, v)
	}
	s.branchExclude(i, v)
}

func (s *singleCutSearch) branchInclude(i, v int) {
	blk := s.blk
	n := blk.N()

	// Output count: v's consumers are all decided (reverse topological
	// order), so v's output status is final.
	isOut := blk.LiveOut.Has(v)
	if !isOut {
		for _, u := range blk.Uses(v) {
			if !s.cut.Has(u) {
				isOut = true
				break
			}
		}
	}
	if blk.Nodes[v].Op.HasValue() && isOut && s.outCnt+1 > s.opt.MaxOut {
		return
	}
	// Permanent inputs: external input sources join immediately; node
	// sources are undecided (producers come later) and go to pending.
	newInputs := s.inputsBuf[i][:0]
	for _, src := range blk.Srcs(v) {
		if src >= n && !s.inputs.Has(src) {
			newInputs = append(newInputs, src)
		}
	}
	s.inputsBuf[i] = newInputs
	if s.inCnt+len(newInputs) > s.opt.MaxIn {
		return
	}
	// v itself may have been consumed by the cut; joining resolves the
	// pending use with no input.
	wasPending := s.pending.Has(v)

	// Commit.
	s.cut.Set(v)
	s.swSum += s.swLat[v]
	outAdded := 0
	if blk.Nodes[v].Op.HasValue() && isOut {
		s.outCnt++
		outAdded = 1
	}
	for _, src := range newInputs {
		s.inputs.Set(src)
	}
	s.inCnt += len(newInputs)
	pendingAdded := s.pendingBuf[i][:0]
	for _, src := range blk.Srcs(v) {
		if src < n && !s.pending.Has(src) && !s.cut.Has(src) {
			s.pending.Set(src)
			pendingAdded = append(pendingAdded, src)
		}
	}
	s.pendingBuf[i] = pendingAdded
	if wasPending {
		s.pending.Clear(v)
	}
	t := s.hwLat[v]
	down := 0.0
	for _, u := range s.dag.Succs(v) {
		if s.cut.Has(u) && s.tail[u] > down {
			down = s.tail[u]
		}
	}
	s.tail[v] = t + down
	oldCP := s.hwCP
	if s.tail[v] > s.hwCP {
		s.hwCP = s.tail[v]
	}

	if s.collect != nil {
		s.trace = append(s.trace, 1)
	}
	s.search(i + 1)
	if s.collect != nil {
		s.trace = s.trace[:len(s.trace)-1]
	}

	// Rollback.
	s.hwCP = oldCP
	s.tail[v] = 0
	if wasPending {
		s.pending.Set(v)
	}
	for _, src := range pendingAdded {
		s.pending.Clear(src)
	}
	s.inCnt -= len(newInputs)
	for _, src := range newInputs {
		s.inputs.Clear(src)
	}
	s.outCnt -= outAdded
	s.swSum -= s.swLat[v]
	s.cut.Clear(v)
}

func (s *singleCutSearch) branchExclude(i, v int) {
	// Excluding v: a pending use becomes a permanent input.
	wasPending := s.pending.Has(v)
	if wasPending && s.inCnt+1 > s.opt.MaxIn {
		return
	}
	var savedBlocked *graph.BitSet
	if s.dag.Desc(v).Intersects(s.cut) || wasPending {
		// v is outside the cut with a descendant inside (a pending use
		// implies a cut consumer, i.e. a cut descendant): every
		// ancestor of v must stay outside or the cut becomes
		// non-convex.
		anc := s.dag.Anc(v)
		if !anc.SubsetOf(s.blocked) {
			savedBlocked = s.saveBlocked(i)
			s.blocked.Or(anc)
		}
	}
	if wasPending {
		s.pending.Clear(v)
		s.inputs.Set(v)
		s.inCnt++
	}

	if s.collect != nil {
		s.trace = append(s.trace, 0)
	}
	s.search(i + 1)
	if s.collect != nil {
		s.trace = s.trace[:len(s.trace)-1]
	}

	if wasPending {
		s.inCnt--
		s.inputs.Clear(v)
		s.pending.Set(v)
	}
	if savedBlocked != nil {
		s.blocked.CopyFrom(savedBlocked)
	}
}

// Iterative implements the paper's "Iterative" baseline: the exact best
// single cut is identified, its nodes are frozen, and the process repeats
// until nise cuts are found or no positive-merit cut remains.
func Iterative(blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	return IterativeContext(context.Background(), blk, opt, nise)
}

// IterativeContext is Iterative with cancellation (see SingleCutContext);
// the cuts found before the abort are returned alongside ctx.Err().
//
// Seeding (Options.SeedBound, Options.Bound) is rejected: each round is a
// fresh single-cut search whose own optimum shrinks as nodes freeze, so no
// single external merit is a sound bound for every round — a joint-merit
// seed (the only kind a producer like K-L can certify) belongs to MultiCut.
func IterativeContext(ctx context.Context, blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	if nise < 1 {
		return nil, fmt.Errorf("exact: nise = %d, must be at least 1", nise)
	}
	if opt.SeedBound != 0 || opt.Bound != nil {
		return nil, fmt.Errorf("exact: Iterative cannot be bound-seeded (per-round optima shrink; seed MultiCut instead)")
	}
	excluded := graph.NewBitSet(blk.N())
	var cuts []*core.Cut
	for len(cuts) < nise {
		cut, err := SingleCutContext(ctx, blk, opt, excluded)
		if err != nil {
			return cuts, err
		}
		if cut == nil {
			break
		}
		cuts = append(cuts, cut)
		excluded.Or(cut.Nodes)
	}
	return cuts, nil
}
