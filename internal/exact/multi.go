package exact

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/obs"
)

// cutSlot is the per-cut bookkeeping of the joint multi-cut search. The
// invariants match singleCutSearch, maintained independently per cut.
type cutSlot struct {
	cut     *graph.BitSet
	blocked *graph.BitSet
	pending *graph.BitSet
	inputs  *graph.BitSet
	inCnt   int
	outCnt  int
	swSum   int
	hwCP    float64
	tail    []float64
}

// slotSave is one slot's rollback record for a decision at one depth.
type slotSave struct {
	wasPending   bool
	blockedSaved bool
}

// multiScratch is the per-depth scratch of the joint search: the rollback
// records and blocked-set snapshots for every slot. One slot per depth is
// enough (at most one frame is active per depth per worker), and reusing
// it removes the former per-branch Clone and save-list allocations.
type multiScratch struct {
	saves   []slotSave
	blocked []*graph.BitSet // lazily allocated snapshots
}

type multiCutSearch struct {
	opt      Options
	blk      *ir.Block
	dag      *graph.DAG
	order    []int
	frozen   *graph.BitSet
	swLat    []int
	hwLat    []float64
	suffixSW []int
	nise     int
	searchCtl

	slots []*cutSlot
	used  int // number of non-empty cuts so far (symmetry breaking)
	// tot is the summed merit of all slots, maintained incrementally on
	// include/rollback instead of recomputed per search node. Merits are
	// integer-valued floats (core.MeritOf), so the incremental sum is
	// exact and bit-identical to a recompute.
	tot     float64
	best    []*graph.BitSet
	bestTot float64

	scratch    []multiScratch
	inputsBuf  [][]int
	pendingBuf [][]int
}

// newMultiCutSearch builds the immutable preprocessing and one mutable
// search state.
func newMultiCutSearch(blk *ir.Block, opt Options, nise int, sh *sharedBound) *multiCutSearch {
	n := blk.N()
	s := &multiCutSearch{
		opt:       opt,
		blk:       blk,
		dag:       blk.DAG(),
		frozen:    graph.NewBitSet(n),
		swLat:     make([]int, n),
		hwLat:     make([]float64, n),
		nise:      nise,
		searchCtl: searchCtl{sh: sh},
	}
	for v := 0; v < n; v++ {
		op := blk.Nodes[v].Op
		s.swLat[v] = opt.Model.SWLat(op)
		if d, ok := opt.Model.HWLat(op); ok {
			s.hwLat[v] = d
		} else {
			s.frozen.Set(v)
		}
		if blk.ForbiddenInCut(v) {
			s.frozen.Set(v)
		}
	}
	topo := s.dag.Topo()
	s.order = make([]int, n)
	for i, v := range topo {
		s.order[n-1-i] = v
	}
	s.suffixSW = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffixSW[i] = s.suffixSW[i+1]
		if !s.frozen.Has(s.order[i]) {
			s.suffixSW[i] += s.swLat[s.order[i]]
		}
	}
	s.initMutable()
	return s
}

// initMutable allocates the worker-private search state.
func (s *multiCutSearch) initMutable() {
	n := s.blk.N()
	for k := 0; k < s.nise; k++ {
		s.slots = append(s.slots, &cutSlot{
			cut:     graph.NewBitSet(n),
			blocked: graph.NewBitSet(n),
			pending: graph.NewBitSet(n),
			inputs:  graph.NewBitSet(s.blk.NumValues()),
			tail:    make([]float64, n),
		})
		s.best = append(s.best, graph.NewBitSet(n))
	}
	s.scratch = make([]multiScratch, n)
	for i := range s.scratch {
		s.scratch[i].saves = make([]slotSave, s.nise)
		s.scratch[i].blocked = make([]*graph.BitSet, s.nise)
	}
	s.inputsBuf = make([][]int, n)
	s.pendingBuf = make([][]int, n)
}

// fork returns a search sharing s's immutable preprocessing (and shared
// bound) with fresh private mutable state — one per subtree worker.
func (s *multiCutSearch) fork() *multiCutSearch {
	w := &multiCutSearch{
		opt: s.opt, blk: s.blk, dag: s.dag, order: s.order,
		frozen: s.frozen, swLat: s.swLat, hwLat: s.hwLat,
		suffixSW: s.suffixSW, nise: s.nise, searchCtl: searchCtl{sh: s.sh},
	}
	w.initMutable()
	return w
}

// MultiCut implements the paper's "Exact" baseline: the joint optimal
// assignment of block nodes to at most nise disjoint feasible cuts,
// maximizing the summed merit. It is exponential in nodes × cuts and is
// only practical for small blocks; callers should set Options.NodeLimit
// (the paper's exact approach handled blocks of up to ~25 nodes).
func MultiCut(blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	return MultiCutContext(context.Background(), blk, opt, nise)
}

// MultiCutContext is MultiCut with cancellation: the joint search aborts
// mid-block (checked every few thousand explored nodes) and returns
// ctx.Err().
func MultiCutContext(ctx context.Context, blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	if nise < 1 {
		return nil, fmt.Errorf("exact: nise = %d, must be at least 1", nise)
	}
	if err := checkOptions(&opt, blk); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, obs.KindSearch, "multi-cut")
	defer sp.End()
	sh := newSharedBound(ctx, opt.Budget, opt.Bound)
	sh.bound.Raise(opt.SeedBound)
	s := newMultiCutSearch(blk, opt, nise, sh)
	best, err := s.run()
	sh.obsFlush(ctx)
	if opt.Explored != nil {
		*opt.Explored += sh.explored.Load()
	}
	if err != nil {
		return nil, err
	}
	var cuts []*core.Cut
	for _, b := range best {
		if b == nil || b.Empty() {
			continue
		}
		m := opt.metricsOf()(blk, opt.Model, b)
		cuts = append(cuts, &core.Cut{
			Block: blk, Nodes: b.Clone(),
			NumIn: m.NumIn, NumOut: m.NumOut, SWLat: m.SWLat, HWLat: m.HWLat,
		})
	}
	return cuts, nil
}

// run drives the joint search: single-threaded, or split + fan-out +
// deterministic merge (see singleCutSearch.run; the same three phases).
func (s *multiCutSearch) run() ([]*graph.BitSet, error) {
	n := len(s.order)
	w := s.opt.workersOf()
	d := splitDepthFor(s.opt.SplitDepth, w, n, s.nise+1)
	if w <= 1 || d < 1 || n < 4 {
		s.search(0)
		s.flush()
		if err := s.sh.err(); err != nil {
			return nil, err
		}
		return s.best, nil
	}

	var tasks [][]byte
	s.splitAt = d
	s.collect = func(p []byte) { tasks = append(tasks, p) }
	s.search(0)
	s.collect = nil
	s.flush()
	if err := s.sh.err(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return s.best, nil
	}

	type result struct {
		tot   float64
		nodes []*graph.BitSet
	}
	results := make([]result, len(tasks))
	runSubtrees(s.sh, w, len(tasks), func() func(ti int) {
		ws := s.fork()
		return func(ti int) {
			ws.path = tasks[ti]
			ws.bestTot = 0
			ws.search(0)
			ws.flush()
			if !ws.stopped && ws.bestTot > 0 {
				nodes := make([]*graph.BitSet, len(ws.best))
				for k, b := range ws.best {
					nodes[k] = b.Clone()
				}
				results[ti] = result{tot: ws.bestTot, nodes: nodes}
			}
		}
	})
	if err := s.sh.err(); err != nil {
		return nil, err
	}

	var best []*graph.BitSet
	bestTot := 0.0
	for _, r := range results {
		if r.nodes != nil && r.tot > bestTot {
			bestTot, best = r.tot, r.nodes
		}
	}
	return best, nil
}

func (s *multiCutSearch) search(i int) {
	if !s.enter() {
		return
	}
	if i < len(s.path) {
		// Replay the subtree task's decision prefix (byte 0 = exclude,
		// byte k+1 = include in slot k).
		v := s.order[i]
		if b := s.path[i]; b == 0 {
			s.exclude(i, v)
		} else {
			s.include(i, v, int(b)-1)
		}
		return
	}
	cur := s.tot
	ub := cur + float64(s.suffixSW[i])
	if ub <= s.bestTot {
		s.prunedLocal++
		return
	}
	if ub < s.sh.best() {
		s.prunedShared++
		return
	}
	if s.collect != nil && i == s.splitAt {
		s.collect(append([]byte(nil), s.trace...))
		return
	}
	if i == len(s.order) {
		if cur > s.bestTot {
			s.bestTot = cur
			for k, sl := range s.slots {
				s.best[k].CopyFrom(sl.cut)
			}
			s.sh.raise(cur)
		}
		return
	}
	v := s.order[i]
	if !s.frozen.Has(v) {
		// Symmetry breaking: only the first empty slot may be opened.
		lim := s.used
		if lim >= len(s.slots) {
			lim = len(s.slots) - 1
		}
		for k := 0; k <= lim; k++ {
			s.include(i, v, k)
		}
	}
	s.exclude(i, v)
}

// slotMerit is one slot's current merit contribution (0 for an empty slot:
// MeritOf(0, 0) == 0).
func slotMerit(sl *cutSlot) float64 {
	return core.MeritOf(sl.swSum, sl.hwCP)
}

// include tries assigning v to slot k; other slots see v as excluded.
func (s *multiCutSearch) include(i, v, k int) {
	sl := s.slots[k]
	if sl.blocked.Has(v) {
		return
	}
	blk := s.blk
	n := blk.N()

	isOut := blk.LiveOut.Has(v)
	if !isOut {
		for _, u := range blk.Uses(v) {
			if !sl.cut.Has(u) {
				isOut = true
				break
			}
		}
	}
	if blk.Nodes[v].Op.HasValue() && isOut && sl.outCnt+1 > s.opt.MaxOut {
		return
	}
	newInputs := s.inputsBuf[i][:0]
	for _, src := range blk.Srcs(v) {
		if src >= n && !sl.inputs.Has(src) {
			newInputs = append(newInputs, src)
		}
	}
	s.inputsBuf[i] = newInputs
	if sl.inCnt+len(newInputs) > s.opt.MaxIn {
		return
	}
	// For every OTHER slot, v is an outside node: a pending use there
	// becomes a permanent input. Pure feasibility pre-check — nothing is
	// committed yet.
	for j, osl := range s.slots {
		if j != k && osl.pending.Has(v) && osl.inCnt+1 > s.opt.MaxIn {
			return
		}
	}

	wasEmpty := sl.cut.Empty()
	wasPending := sl.pending.Has(v)

	// Commit slot k, tracking its merit delta incrementally.
	oldMerit := slotMerit(sl)
	sl.cut.Set(v)
	sl.swSum += s.swLat[v]
	outAdded := 0
	if blk.Nodes[v].Op.HasValue() && isOut {
		sl.outCnt++
		outAdded = 1
	}
	for _, src := range newInputs {
		sl.inputs.Set(src)
	}
	sl.inCnt += len(newInputs)
	pendingAdded := s.pendingBuf[i][:0]
	for _, src := range blk.Srcs(v) {
		if src < n && !sl.pending.Has(src) && !sl.cut.Has(src) {
			sl.pending.Set(src)
			pendingAdded = append(pendingAdded, src)
		}
	}
	s.pendingBuf[i] = pendingAdded
	if wasPending {
		sl.pending.Clear(v)
	}
	down := 0.0
	for _, u := range s.dag.Succs(v) {
		if sl.cut.Has(u) && sl.tail[u] > down {
			down = sl.tail[u]
		}
	}
	sl.tail[v] = s.hwLat[v] + down
	oldCP := sl.hwCP
	if sl.tail[v] > sl.hwCP {
		sl.hwCP = sl.tail[v]
	}
	if wasEmpty {
		s.used++
	}
	meritDelta := slotMerit(sl) - oldMerit
	s.tot += meritDelta

	// Commit other slots (v acts as excluded there); the per-depth
	// scratch replaces the former save-list and Clone allocations.
	sc := &s.scratch[i]
	for j, osl := range s.slots {
		sv := &sc.saves[j]
		sv.wasPending, sv.blockedSaved = false, false
		if j == k {
			continue
		}
		sv.wasPending = osl.pending.Has(v)
		if osl.cut.Intersects(s.dag.Desc(v)) || sv.wasPending {
			anc := s.dag.Anc(v)
			if !anc.SubsetOf(osl.blocked) {
				sv.blockedSaved = true
				s.saveSlotBlocked(sc, j, osl)
				osl.blocked.Or(anc)
			}
		}
		if sv.wasPending {
			osl.pending.Clear(v)
			osl.inputs.Set(v)
			osl.inCnt++
		}
	}

	if s.collect != nil {
		s.trace = append(s.trace, byte(k+1))
	}
	s.search(i + 1)
	if s.collect != nil {
		s.trace = s.trace[:len(s.trace)-1]
	}

	// Rollback others.
	for j, osl := range s.slots {
		if j == k {
			continue
		}
		sv := &sc.saves[j]
		if sv.wasPending {
			osl.inCnt--
			osl.inputs.Clear(v)
			osl.pending.Set(v)
		}
		if sv.blockedSaved {
			osl.blocked.CopyFrom(sc.blocked[j])
		}
	}
	// Rollback slot k.
	s.tot -= meritDelta
	if wasEmpty {
		s.used--
	}
	sl.hwCP = oldCP
	sl.tail[v] = 0
	if wasPending {
		sl.pending.Set(v)
	}
	for _, src := range pendingAdded {
		sl.pending.Clear(src)
	}
	sl.inCnt -= len(newInputs)
	for _, src := range newInputs {
		sl.inputs.Clear(src)
	}
	sl.outCnt -= outAdded
	sl.swSum -= s.swLat[v]
	sl.cut.Clear(v)
}

// saveSlotBlocked snapshots slot j's blocked set into depth scratch sc.
func (s *multiCutSearch) saveSlotBlocked(sc *multiScratch, j int, sl *cutSlot) {
	if sc.blocked[j] == nil {
		sc.blocked[j] = graph.NewBitSet(s.blk.N())
	}
	sc.blocked[j].CopyFrom(sl.blocked)
}

// exclude leaves v in software for every slot. Excluding changes no slot's
// swSum or hwCP, so the incremental total merit is untouched.
func (s *multiCutSearch) exclude(i, v int) {
	// Pure feasibility pre-check before any commit: a pending use of v
	// becomes a permanent input in its slot.
	for _, sl := range s.slots {
		if sl.pending.Has(v) && sl.inCnt+1 > s.opt.MaxIn {
			return
		}
	}
	sc := &s.scratch[i]
	for j, sl := range s.slots {
		sv := &sc.saves[j]
		sv.wasPending = sl.pending.Has(v)
		sv.blockedSaved = false
		if sl.cut.Intersects(s.dag.Desc(v)) || sv.wasPending {
			anc := s.dag.Anc(v)
			if !anc.SubsetOf(sl.blocked) {
				sv.blockedSaved = true
				s.saveSlotBlocked(sc, j, sl)
				sl.blocked.Or(anc)
			}
		}
		if sv.wasPending {
			sl.pending.Clear(v)
			sl.inputs.Set(v)
			sl.inCnt++
		}
	}

	if s.collect != nil {
		s.trace = append(s.trace, 0)
	}
	s.search(i + 1)
	if s.collect != nil {
		s.trace = s.trace[:len(s.trace)-1]
	}

	for j, sl := range s.slots {
		sv := &sc.saves[j]
		if sv.wasPending {
			sl.inCnt--
			sl.inputs.Clear(v)
			sl.pending.Set(v)
		}
		if sv.blockedSaved {
			sl.blocked.CopyFrom(sc.blocked[j])
		}
	}
}
