package exact

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
)

// cutSlot is the per-cut bookkeeping of the joint multi-cut search. The
// invariants match singleCutSearch, maintained independently per cut.
type cutSlot struct {
	cut     *graph.BitSet
	blocked *graph.BitSet
	pending *graph.BitSet
	inputs  *graph.BitSet
	inCnt   int
	outCnt  int
	swSum   int
	hwCP    float64
	tail    []float64
}

type multiCutSearch struct {
	opt      Options
	blk      *ir.Block
	dag      *graph.DAG
	order    []int
	frozen   *graph.BitSet
	swLat    []int
	hwLat    []float64
	suffixSW []int

	slots    []*cutSlot
	used     int // number of non-empty cuts so far (symmetry breaking)
	best     []*graph.BitSet
	bestTot  float64
	explored int64
	aborted  bool
}

// MultiCut implements the paper's "Exact" baseline: the joint optimal
// assignment of block nodes to at most nise disjoint feasible cuts,
// maximizing the summed merit. It is exponential in nodes × cuts and is
// only practical for small blocks; callers should set Options.NodeLimit
// (the paper's exact approach handled blocks of up to ~25 nodes).
func MultiCut(blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	if nise < 1 {
		return nil, fmt.Errorf("exact: nise = %d, must be at least 1", nise)
	}
	if err := checkOptions(&opt, blk); err != nil {
		return nil, err
	}
	n := blk.N()
	s := &multiCutSearch{
		opt:    opt,
		blk:    blk,
		dag:    blk.DAG(),
		frozen: graph.NewBitSet(n),
		swLat:  make([]int, n),
		hwLat:  make([]float64, n),
	}
	for v := 0; v < n; v++ {
		op := blk.Nodes[v].Op
		s.swLat[v] = opt.Model.SWLat(op)
		if d, ok := opt.Model.HWLat(op); ok {
			s.hwLat[v] = d
		} else {
			s.frozen.Set(v)
		}
		if blk.ForbiddenInCut(v) {
			s.frozen.Set(v)
		}
	}
	topo := s.dag.Topo()
	s.order = make([]int, n)
	for i, v := range topo {
		s.order[n-1-i] = v
	}
	s.suffixSW = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffixSW[i] = s.suffixSW[i+1]
		if !s.frozen.Has(s.order[i]) {
			s.suffixSW[i] += s.swLat[s.order[i]]
		}
	}
	for k := 0; k < nise; k++ {
		s.slots = append(s.slots, &cutSlot{
			cut:     graph.NewBitSet(n),
			blocked: graph.NewBitSet(n),
			pending: graph.NewBitSet(n),
			inputs:  graph.NewBitSet(blk.NumValues()),
			tail:    make([]float64, n),
		})
		s.best = append(s.best, graph.NewBitSet(n))
	}

	s.search(0)
	if s.aborted {
		return nil, ErrBudget
	}
	var cuts []*core.Cut
	for _, b := range s.best {
		if b.Empty() {
			continue
		}
		m := opt.metricsOf()(blk, opt.Model, b)
		cuts = append(cuts, &core.Cut{
			Block: blk, Nodes: b.Clone(),
			NumIn: m.NumIn, NumOut: m.NumOut, SWLat: m.SWLat, HWLat: m.HWLat,
		})
	}
	return cuts, nil
}

func (s *multiCutSearch) totalMerit() float64 {
	tot := 0.0
	for _, sl := range s.slots {
		if !sl.cut.Empty() {
			tot += core.MeritOf(sl.swSum, sl.hwCP)
		}
	}
	return tot
}

func (s *multiCutSearch) search(i int) {
	if s.aborted {
		return
	}
	s.explored++
	if s.opt.Budget > 0 && s.explored > s.opt.Budget {
		s.aborted = true
		return
	}
	cur := s.totalMerit()
	if cur+float64(s.suffixSW[i]) <= s.bestTot {
		return
	}
	if i == len(s.order) {
		if cur > s.bestTot {
			s.bestTot = cur
			for k, sl := range s.slots {
				s.best[k].CopyFrom(sl.cut)
			}
		}
		return
	}
	v := s.order[i]
	if !s.frozen.Has(v) {
		// Symmetry breaking: only the first empty slot may be opened.
		lim := s.used
		if lim >= len(s.slots) {
			lim = len(s.slots) - 1
		}
		for k := 0; k <= lim; k++ {
			s.include(i, v, k)
		}
	}
	s.exclude(i, v)
}

// include tries assigning v to slot k; other slots see v as excluded.
func (s *multiCutSearch) include(i, v, k int) {
	sl := s.slots[k]
	if sl.blocked.Has(v) {
		return
	}
	blk := s.blk
	n := blk.N()

	isOut := blk.LiveOut.Has(v)
	if !isOut {
		for _, u := range blk.Uses(v) {
			if !sl.cut.Has(u) {
				isOut = true
				break
			}
		}
	}
	if blk.Nodes[v].Op.HasValue() && isOut && sl.outCnt+1 > s.opt.MaxOut {
		return
	}
	var newInputs []int
	for _, src := range blk.Srcs(v) {
		if src >= n && !sl.inputs.Has(src) {
			newInputs = append(newInputs, src)
		}
	}
	if sl.inCnt+len(newInputs) > s.opt.MaxIn {
		return
	}
	// For every OTHER slot, v is an outside node: a pending use there
	// becomes a permanent input, and ancestors may need blocking.
	type otherSave struct {
		slot       *cutSlot
		wasPending bool
		blockedOld *graph.BitSet
	}
	var others []otherSave
	feasible := true
	for j, osl := range s.slots {
		if j == k {
			continue
		}
		save := otherSave{slot: osl, wasPending: osl.pending.Has(v)}
		if save.wasPending && osl.inCnt+1 > s.opt.MaxIn {
			feasible = false
		}
		others = append(others, save)
		if !feasible {
			others = others[:len(others)-1]
			break
		}
	}
	if !feasible {
		return
	}

	wasEmpty := sl.cut.Empty()
	wasPending := sl.pending.Has(v)

	// Commit slot k.
	sl.cut.Set(v)
	sl.swSum += s.swLat[v]
	outAdded := 0
	if blk.Nodes[v].Op.HasValue() && isOut {
		sl.outCnt++
		outAdded = 1
	}
	for _, src := range newInputs {
		sl.inputs.Set(src)
	}
	sl.inCnt += len(newInputs)
	var pendingAdded []int
	for _, src := range blk.Srcs(v) {
		if src < n && !sl.pending.Has(src) && !sl.cut.Has(src) {
			sl.pending.Set(src)
			pendingAdded = append(pendingAdded, src)
		}
	}
	if wasPending {
		sl.pending.Clear(v)
	}
	down := 0.0
	for _, u := range s.dag.Succs(v) {
		if sl.cut.Has(u) && sl.tail[u] > down {
			down = sl.tail[u]
		}
	}
	sl.tail[v] = s.hwLat[v] + down
	oldCP := sl.hwCP
	if sl.tail[v] > sl.hwCP {
		sl.hwCP = sl.tail[v]
	}
	if wasEmpty {
		s.used++
	}
	// Commit other slots (v acts as excluded there).
	for oi := range others {
		o := &others[oi]
		osl := o.slot
		if osl.cut.Intersects(s.dag.Desc(v)) || o.wasPending {
			anc := s.dag.Anc(v)
			if !anc.SubsetOf(osl.blocked) {
				o.blockedOld = osl.blocked.Clone()
				osl.blocked.Or(anc)
			}
		}
		if o.wasPending {
			osl.pending.Clear(v)
			osl.inputs.Set(v)
			osl.inCnt++
		}
	}

	s.search(i + 1)

	// Rollback others.
	for oi := range others {
		o := &others[oi]
		osl := o.slot
		if o.wasPending {
			osl.inCnt--
			osl.inputs.Clear(v)
			osl.pending.Set(v)
		}
		if o.blockedOld != nil {
			osl.blocked.CopyFrom(o.blockedOld)
		}
	}
	// Rollback slot k.
	if wasEmpty {
		s.used--
	}
	sl.hwCP = oldCP
	sl.tail[v] = 0
	if wasPending {
		sl.pending.Set(v)
	}
	for _, src := range pendingAdded {
		sl.pending.Clear(src)
	}
	sl.inCnt -= len(newInputs)
	for _, src := range newInputs {
		sl.inputs.Clear(src)
	}
	sl.outCnt -= outAdded
	sl.swSum -= s.swLat[v]
	sl.cut.Clear(v)
}

// exclude leaves v in software for every slot.
func (s *multiCutSearch) exclude(i, v int) {
	type save struct {
		slot       *cutSlot
		wasPending bool
		blockedOld *graph.BitSet
	}
	var saves []save
	for _, sl := range s.slots {
		sv := save{slot: sl, wasPending: sl.pending.Has(v)}
		if sv.wasPending && sl.inCnt+1 > s.opt.MaxIn {
			// Rollback what we committed so far and give up.
			for _, done := range saves {
				if done.wasPending {
					done.slot.inCnt--
					done.slot.inputs.Clear(v)
					done.slot.pending.Set(v)
				}
				if done.blockedOld != nil {
					done.slot.blocked.CopyFrom(done.blockedOld)
				}
			}
			return
		}
		if sl.cut.Intersects(s.dag.Desc(v)) || sv.wasPending {
			anc := s.dag.Anc(v)
			if !anc.SubsetOf(sl.blocked) {
				sv.blockedOld = sl.blocked.Clone()
				sl.blocked.Or(anc)
			}
		}
		if sv.wasPending {
			sl.pending.Clear(v)
			sl.inputs.Set(v)
			sl.inCnt++
		}
		saves = append(saves, sv)
	}

	s.search(i + 1)

	for i := len(saves) - 1; i >= 0; i-- {
		sv := saves[i]
		if sv.wasPending {
			sv.slot.inCnt--
			sv.slot.inputs.Clear(v)
			sv.slot.pending.Set(v)
		}
		if sv.blockedOld != nil {
			sv.slot.blocked.CopyFrom(sv.blockedOld)
		}
	}
}
