package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

func defaultOpts() Options {
	return Options{MaxIn: 4, MaxOut: 2, Model: latency.Default()}
}

// randKernelBlock mirrors the generator used in the core tests.
func randKernelBlock(rng *rand.Rand, n int) *ir.Block {
	bu := ir.NewBuilder("rand", 1)
	ins := bu.Inputs(2 + rng.Intn(3))
	vals := append([]ir.Value{}, ins...)
	for i := 0; i < n; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		var v ir.Value
		switch rng.Intn(10) {
		case 0:
			v = bu.Mul(a, b)
		case 1:
			v = bu.Xor(a, b)
		case 2:
			v = bu.Shl(a, b)
		case 3:
			v = bu.Sub(a, b)
		case 4:
			v = bu.Load(a)
		default:
			v = bu.Add(a, b)
		}
		vals = append(vals, v)
	}
	bu.LiveOut(vals[len(vals)-1])
	return bu.MustBuild()
}

// bruteForceBest enumerates every subset; the trusted reference.
func bruteForceBest(blk *ir.Block, opt Options) float64 {
	n := blk.N()
	best := 0.0
	for mask := 1; mask < 1<<uint(n); mask++ {
		cut := graph.NewBitSet(n)
		skip := false
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				if blk.ForbiddenInCut(v) || !opt.Model.HWImplementable(blk.Nodes[v].Op) {
					skip = true
					break
				}
				cut.Set(v)
			}
		}
		if skip {
			continue
		}
		sw, cp, in, out, convex := core.CutMetrics(blk, opt.Model, cut)
		if !convex || in > opt.MaxIn || out > opt.MaxOut {
			continue
		}
		if m := core.MeritOf(sw, cp); m > best {
			best = m
		}
	}
	return best
}

func TestSingleCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opt := defaultOpts()
	for trial := 0; trial < 60; trial++ {
		blk := randKernelBlock(rng, 3+rng.Intn(12))
		want := bruteForceBest(blk, opt)
		cut, err := SingleCut(blk, opt, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := 0.0
		if cut != nil {
			got = cut.Merit()
			// Returned cut must itself be feasible.
			_, _, in, out, convex := core.CutMetrics(blk, opt.Model, cut.Nodes)
			if !convex || in > opt.MaxIn || out > opt.MaxOut {
				t.Fatalf("trial %d: infeasible cut returned", trial)
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: SingleCut merit %v, brute force %v", trial, got, want)
		}
	}
}

func TestSingleCutVariedIOConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		blk := randKernelBlock(rng, 3+rng.Intn(10))
		for _, io := range [][2]int{{2, 1}, {3, 1}, {4, 2}, {6, 3}} {
			opt := defaultOpts()
			opt.MaxIn, opt.MaxOut = io[0], io[1]
			want := bruteForceBest(blk, opt)
			cut, err := SingleCut(blk, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := 0.0
			if cut != nil {
				got = cut.Merit()
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d io %v: got %v, want %v", trial, io, got, want)
			}
		}
	}
}

func TestSingleCutExcluded(t *testing.T) {
	bu := ir.NewBuilder("mac", 1)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	m := bu.Mul(a, b)
	s := bu.Add(m, acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()

	opt := defaultOpts()
	full, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full == nil || !full.Nodes.Has(0) {
		t.Fatalf("unrestricted cut = %v, must include the mul", full)
	}
	excl := graph.NewBitSet(2)
	excl.Set(0) // exclude the mul: the lone add saves nothing
	cut, err := SingleCut(blk, opt, excl)
	if err != nil {
		t.Fatal(err)
	}
	if cut != nil {
		t.Fatalf("cut = %v, want none (add alone has zero merit)", cut.Nodes)
	}
}

func TestSingleCutNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blk := randKernelBlock(rng, 30)
	opt := defaultOpts()
	opt.NodeLimit = 25
	_, err := SingleCut(blk, opt, nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestSingleCutBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	blk := randKernelBlock(rng, 40)
	opt := defaultOpts()
	opt.Budget = 50
	_, err := SingleCut(blk, opt, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestIterativeDisjointCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	blk := randKernelBlock(rng, 14)
	opt := defaultOpts()
	cuts, err := Iterative(blk, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := graph.NewBitSet(blk.N())
	for _, c := range cuts {
		if seen.Intersects(c.Nodes) {
			t.Fatal("iterative cuts overlap")
		}
		seen.Or(c.Nodes)
		if c.Merit() <= 0 {
			t.Fatal("non-positive merit cut returned")
		}
	}
	// First cut must be the single-cut optimum.
	want := bruteForceBest(blk, opt)
	if len(cuts) == 0 || math.Abs(cuts[0].Merit()-want) > 1e-9 {
		t.Fatalf("first iterative cut merit wrong: %v, want %v", cuts, want)
	}
}

// bruteForceMulti enumerates assignments of nodes to {S, cut1..cutK} for
// tiny blocks; trusted reference for MultiCut.
func bruteForceMulti(blk *ir.Block, opt Options, k int) float64 {
	n := blk.N()
	labels := make([]int, n) // 0 = software, 1..k = cuts
	best := 0.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			total := 0.0
			for c := 1; c <= k; c++ {
				cut := graph.NewBitSet(n)
				for v := 0; v < n; v++ {
					if labels[v] == c {
						cut.Set(v)
					}
				}
				if cut.Empty() {
					continue
				}
				sw, cp, in, out, convex := core.CutMetrics(blk, opt.Model, cut)
				if !convex || in > opt.MaxIn || out > opt.MaxOut {
					return
				}
				total += core.MeritOf(sw, cp)
			}
			if total > best {
				best = total
			}
			return
		}
		limit := k
		if blk.ForbiddenInCut(i) || !opt.Model.HWImplementable(blk.Nodes[i].Op) {
			limit = 0
		}
		for c := 0; c <= limit; c++ {
			labels[i] = c
			rec(i + 1)
		}
		labels[i] = 0
	}
	rec(0)
	return best
}

func TestMultiCutMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opt := defaultOpts()
	for trial := 0; trial < 15; trial++ {
		blk := randKernelBlock(rng, 3+rng.Intn(6))
		want := bruteForceMulti(blk, opt, 2)
		cuts, err := MultiCut(blk, opt, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := 0.0
		seen := graph.NewBitSet(blk.N())
		for _, c := range cuts {
			got += c.Merit()
			if seen.Intersects(c.Nodes) {
				t.Fatal("multi cuts overlap")
			}
			seen.Or(c.Nodes)
			_, _, in, out, convex := core.CutMetrics(blk, opt.Model, c.Nodes)
			if !convex || in > opt.MaxIn || out > opt.MaxOut {
				t.Fatalf("trial %d: infeasible cut", trial)
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MultiCut total %v, brute force %v", trial, got, want)
		}
	}
}

// MultiCut with a budget of several cuts must beat or match iterative
// single cuts (it is jointly optimal).
func TestMultiCutAtLeastIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opt := defaultOpts()
	for trial := 0; trial < 10; trial++ {
		blk := randKernelBlock(rng, 4+rng.Intn(6))
		multi, err := MultiCut(blk, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		iter, err := Iterative(blk, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		mTot, iTot := 0.0, 0.0
		for _, c := range multi {
			mTot += c.Merit()
		}
		for _, c := range iter {
			iTot += c.Merit()
		}
		if mTot < iTot-1e-9 {
			t.Fatalf("trial %d: multi %v < iterative %v", trial, mTot, iTot)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	blk := randKernelBlock(rand.New(rand.NewSource(1)), 4)
	if _, err := SingleCut(blk, Options{MaxIn: 4, MaxOut: 2}, nil); err == nil {
		t.Error("nil model should be rejected")
	}
	if _, err := SingleCut(blk, Options{MaxIn: 0, MaxOut: 2, Model: latency.Default()}, nil); err == nil {
		t.Error("zero MaxIn should be rejected")
	}
	if _, err := Iterative(blk, defaultOpts(), 0); err == nil {
		t.Error("nise 0 should be rejected")
	}
	if _, err := MultiCut(blk, defaultOpts(), 0); err == nil {
		t.Error("nise 0 should be rejected")
	}
}

func BenchmarkSingleCut20(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	blk := randKernelBlock(rng, 20)
	opt := defaultOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleCut(blk, opt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
