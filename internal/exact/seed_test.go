package exact

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
)

// summedMerit is the joint objective value of a multi-cut answer.
func summedMerit(cuts []*core.Cut) float64 {
	t := 0.0
	for _, c := range cuts {
		t += c.Merit()
	}
	return t
}

// TestSeedBoundDeterminism pins the seeding contract: pre-loading the
// best-bound with any merit <= the optimum (including the optimum itself,
// the tightest sound seed) leaves SingleCut and MultiCut bit-identical to
// the unseeded run, sequentially and across subtree worker counts, while
// never exploring more nodes on the sequential schedule.
func TestSeedBoundDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 12; trial++ {
		blk := randKernelBlock(rng, 8+rng.Intn(12))
		opt := defaultOpts()
		var baseExplored int64
		opt.Explored = &baseExplored
		refSingle, err := SingleCut(blk, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		refMulti, err := MultiCut(blk, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		optimum := summedMerit(refMulti)
		seeds := []float64{0, optimum / 2, optimum}
		if refSingle != nil {
			seeds = append(seeds, refSingle.Merit())
		}
		for _, seed := range seeds {
			for _, w := range []int{0, 3} {
				sopt := defaultOpts()
				sopt.SeedBound, sopt.Workers = seed, w
				var seededExplored int64
				sopt.Explored = &seededExplored
				if seed <= meritOrZero(refSingle) {
					gotSingle, err := SingleCut(blk, sopt, nil)
					if err != nil {
						t.Fatal(err)
					}
					sameCut(t, "seeded single", refSingle, gotSingle)
				}
				if seed <= optimum {
					gotMulti, err := MultiCut(blk, sopt, 2)
					if err != nil {
						t.Fatal(err)
					}
					sameCuts(t, "seeded multi", refMulti, gotMulti)
				}
				if w == 0 && seededExplored > baseExplored {
					t.Fatalf("seed %v explored %d nodes sequentially, unseeded only %d — seeding must never weaken pruning",
						seed, seededExplored, baseExplored)
				}
			}
		}
	}
}

func meritOrZero(c *core.Cut) float64 {
	if c == nil {
		return 0
	}
	return c.Merit()
}

// TestSeedBoundKernelSuite runs the seeded-vs-unseeded identity on the
// real benchmark blocks within the joint search's size limit, seeding with
// the true optimum, and checks the seed actually prunes: never more
// explored nodes per kernel, strictly fewer over the suite (the tiniest
// blocks have nothing left to prune, so the strict claim is aggregate).
func TestSeedBoundKernelSuite(t *testing.T) {
	var totalBase, totalSeeded int64
	for _, spec := range kernels.All() {
		if spec.CriticalSize > 25 {
			continue
		}
		blk := spec.App.Blocks[0]
		opt := defaultOpts()
		opt.Budget = 2_000_000_000
		var baseExplored int64
		opt.Explored = &baseExplored
		ref, err := MultiCut(blk, opt, 4)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sopt := opt
		sopt.SeedBound = summedMerit(ref)
		var seededExplored int64
		sopt.Explored = &seededExplored
		got, err := MultiCut(blk, sopt, 4)
		if err != nil {
			t.Fatalf("%s seeded: %v", spec.Name, err)
		}
		sameCuts(t, spec.Name, ref, got)
		if seededExplored > baseExplored {
			t.Fatalf("%s: optimum-seeded run explored %d nodes, unseeded %d — seeding must never weaken pruning",
				spec.Name, seededExplored, baseExplored)
		}
		totalBase += baseExplored
		totalSeeded += seededExplored
	}
	if totalSeeded >= totalBase {
		t.Fatalf("optimum seeding explored %d nodes over the suite, unseeded %d — expected a strict reduction",
			totalSeeded, totalBase)
	}
}

// TestBoundRaiseMidRun pins the external-publication path: raising the
// shared Bound from another goroutine while MultiCut runs (the racing
// engine's K-L publication) must not change the answer, only prune. Run
// under -race: the raises go through the same CAS word the subtree workers
// read and write.
func TestBoundRaiseMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		blk := randKernelBlock(rng, 12+rng.Intn(8))
		opt := defaultOpts()
		ref, err := MultiCut(blk, opt, 2)
		if err != nil {
			t.Fatal(err)
		}
		optimum := summedMerit(ref)
		for _, w := range []int{0, 4} {
			bopt := defaultOpts()
			bopt.Workers = w
			bopt.Bound = NewBound()
			var wg sync.WaitGroup
			done := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Hammer the bound toward the optimum while the search
				// runs; every published value is a sound seed.
				for i := 1; i <= 8; i++ {
					select {
					case <-done:
						return
					default:
					}
					bopt.Bound.Raise(optimum * float64(i) / 8)
				}
			}()
			got, err := MultiCut(blk, bopt, 2)
			close(done)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			sameCuts(t, "mid-run raise", ref, got)
		}
	}
}

// TestBoundMonotone pins the Bound primitive itself: Raise succeeds
// exactly on strict improvements and Best always reports the maximum.
func TestBoundMonotone(t *testing.T) {
	b := NewBound()
	if b.Best() != 0 {
		t.Fatalf("fresh bound = %v, want 0", b.Best())
	}
	if !b.Raise(3) || b.Best() != 3 {
		t.Fatalf("Raise(3) rejected or Best = %v", b.Best())
	}
	if b.Raise(3) || b.Raise(2) {
		t.Fatal("non-improving Raise succeeded")
	}
	if !b.Raise(7.5) || b.Best() != 7.5 {
		t.Fatalf("Raise(7.5) rejected or Best = %v", b.Best())
	}
}

// TestIterativeSeedRejected: the iterative baseline must refuse seeding —
// its per-round single-cut optima shrink as nodes freeze, so no external
// joint merit is a sound per-round bound.
func TestIterativeSeedRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blk := randKernelBlock(rng, 10)
	opt := defaultOpts()
	opt.SeedBound = 1
	if _, err := Iterative(blk, opt, 2); err == nil || !strings.Contains(err.Error(), "bound-seeded") {
		t.Fatalf("SeedBound on Iterative: err = %v, want bound-seeded rejection", err)
	}
	opt = defaultOpts()
	opt.Bound = NewBound()
	if _, err := Iterative(blk, opt, 2); err == nil || !strings.Contains(err.Error(), "bound-seeded") {
		t.Fatalf("Bound on Iterative: err = %v, want bound-seeded rejection", err)
	}
}

// TestSeedBoundValidation: seeds that are not the merit of any feasible
// assignment by construction (negative, NaN, infinite) are rejected up
// front on both entry points.
func TestSeedBoundValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	blk := randKernelBlock(rng, 8)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		opt := defaultOpts()
		opt.SeedBound = bad
		if _, err := SingleCut(blk, opt, nil); err == nil {
			t.Fatalf("SingleCut accepted SeedBound %v", bad)
		}
		if _, err := MultiCut(blk, opt, 2); err == nil {
			t.Fatalf("MultiCut accepted SeedBound %v", bad)
		}
	}
}
