package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQueueFull is returned by Submit when the bounded FIFO is at capacity;
// HTTP callers translate it to 503 + Retry-After.
var ErrQueueFull = errors.New("service: queue full")

// ErrQueueClosed is returned for jobs abandoned by a shutting-down queue.
var ErrQueueClosed = errors.New("service: queue closed")

// Job is a queued unit of work. The submitter waits on Done; Err reports
// why a job never ran (queue shutdown, context cancelled while queued) and
// is nil once run was invoked.
type Job struct {
	tenant string
	ctx    context.Context
	run    func(ctx context.Context)
	done   chan struct{}
	err    error // written before done is closed, read after

	// enqueued is stamped by Submit; wait is the enqueue-to-run-start
	// interval, written by runJob before run is invoked (and therefore
	// safely readable after Done). Time a job spends held back by its
	// tenant's budget is queue wait by construction — the clock only
	// stops when a worker actually starts the job.
	enqueued time.Time
	wait     time.Duration
}

// Done is closed when the job has finished running or was abandoned.
func (j *Job) Done() <-chan struct{} { return j.done }

// QueueWait reports how long the job sat queued before a worker started
// it (including time held back by its tenant's concurrency budget), or 0
// for a job that never ran. Valid after Done.
func (j *Job) QueueWait() time.Duration {
	<-j.done
	return j.wait
}

// Err is valid after Done: nil if the job ran to completion, otherwise
// the reason it was dropped while queued or the panic it crashed with.
func (j *Job) Err() error {
	<-j.done
	return j.err
}

// Queue is a bounded FIFO of selection jobs executed by a fixed worker
// pool under per-tenant concurrency budgets: at most `budget` jobs of one
// tenant run at a time, so a single heavy tenant queues behind itself
// while other tenants' jobs overtake it (earliest-runnable-first — FIFO
// order is preserved within a tenant and between runnable jobs). Jobs
// whose context is cancelled while queued are dropped without running.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Job
	cap     int
	budget  int
	active  map[string]int
	closed  bool
	wg      sync.WaitGroup

	accepted, rejected, completed, dropped, panics int64
}

// NewQueue starts a queue with the given FIFO capacity, worker count
// (global concurrent jobs) and per-tenant budget. Each argument is clamped
// to at least 1.
func NewQueue(capacity, workers, tenantBudget int) *Queue {
	q := &Queue{
		cap:    max(1, capacity),
		budget: max(1, tenantBudget),
		active: map[string]int{},
	}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < max(1, workers); i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues run under the tenant's budget. It returns ErrQueueFull
// when the FIFO is at capacity and ErrQueueClosed after Close. The caller
// waits on the returned job's Done channel; run executes on a queue worker
// with the submitted context.
func (q *Queue) Submit(ctx context.Context, tenant string, run func(ctx context.Context)) (*Job, error) {
	j := &Job{tenant: tenant, ctx: ctx, run: run, done: make(chan struct{}), enqueued: time.Now()}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.rejected++
		return nil, ErrQueueClosed
	}
	if len(q.pending) >= q.cap {
		q.rejected++
		return nil, ErrQueueFull
	}
	q.pending = append(q.pending, j)
	q.accepted++
	q.cond.Signal()
	go q.watch(j)
	return j, nil
}

// watch reaps the job eagerly when its context is cancelled while still
// queued, so dead jobs free FIFO capacity (and unblock their submitters)
// immediately instead of waiting for the next worker scan. Exactly one
// path removes a job from pending under the lock — the watcher, a worker
// scan, or Close — so done is closed exactly once.
func (q *Queue) watch(j *Job) {
	select {
	case <-j.done:
	case <-j.ctx.Done():
		q.mu.Lock()
		for i, p := range q.pending {
			if p == j {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				q.dropped++
				q.mu.Unlock()
				j.err = j.ctx.Err()
				close(j.done)
				return
			}
		}
		// Already popped (running) or already reaped; the run context
		// carries the cancellation from here.
		q.mu.Unlock()
	}
}

// nextRunnableLocked pops the earliest pending job whose tenant has budget
// left, dropping cancelled jobs it walks past. Returns nil when nothing is
// runnable right now.
func (q *Queue) nextRunnableLocked() *Job {
	for i := 0; i < len(q.pending); {
		j := q.pending[i]
		if j.ctx.Err() != nil {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			q.dropped++
			j.err = j.ctx.Err()
			close(j.done)
			continue
		}
		if q.active[j.tenant] < q.budget {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return j
		}
		i++
	}
	return nil
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		var j *Job
		for {
			if q.closed { // never start new work after Close
				q.mu.Unlock()
				return
			}
			if j = q.nextRunnableLocked(); j != nil {
				break
			}
			q.cond.Wait()
		}
		q.active[j.tenant]++
		q.mu.Unlock()

		q.runJob(j)

		q.mu.Lock()
		q.active[j.tenant]--
		if q.active[j.tenant] == 0 {
			delete(q.active, j.tenant)
		}
		q.completed++
		// A finished job may unblock a budget-held tenant for any waiting
		// worker, and Close waits for the last worker to observe closed.
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// runJob executes one job, containing panics: jobs run on queue workers,
// outside net/http's per-request recovery, so an engine panic on one
// tenant's upload must not take down the daemon (and must still close
// done, or the submitting handler would hang forever).
func (q *Queue) runJob(j *Job) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("service: job panicked: %v", r)
			q.mu.Lock()
			q.panics++
			q.mu.Unlock()
		}
	}()
	j.wait = time.Since(j.enqueued)
	j.run(j.ctx)
}

// Saturated reports whether the FIFO is at capacity — the readiness
// probe's backpressure signal: a saturated queue means the next Submit
// gets ErrQueueFull, so load balancers should stop routing here.
func (q *Queue) Saturated() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) >= q.cap
}

// Close stops the workers after their current jobs and abandons every
// still-pending job with ErrQueueClosed. Pending jobs are failed *before*
// waiting for in-flight ones to drain, so submitters blocked on Done are
// released promptly even while a slow job still occupies a worker — a
// shutdown must not hold every queued client hostage to the longest
// running search. Idempotent: later calls just wait for the drain.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	// Extracting pending under the same lock that set closed means the
	// watchers and worker scans can never find these jobs again: this
	// path alone closes their done channels, exactly once.
	pending := q.pending
	q.pending = nil
	q.dropped += int64(len(pending))
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, j := range pending {
		j.err = ErrQueueClosed
		close(j.done)
	}
	q.wg.Wait()
}

// QueueStats is a snapshot of the queue's state and counters.
type QueueStats struct {
	// Depth is the current number of queued (not yet running) jobs.
	Depth int `json:"depth"`
	// Active is the number of jobs currently running, and ActiveTenants
	// the per-tenant breakdown.
	Active        int            `json:"active"`
	ActiveTenants map[string]int `json:"active_tenants,omitempty"`
	// Accepted/Rejected count Submit outcomes; Completed jobs that ran;
	// Dropped jobs abandoned while queued (cancelled or shutdown);
	// Panics jobs that crashed (contained to the one job).
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"`
	Panics    int64 `json:"panics"`
}

// Stats returns a consistent snapshot.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Depth:    len(q.pending),
		Accepted: q.accepted, Rejected: q.rejected,
		Completed: q.completed, Dropped: q.dropped, Panics: q.panics,
	}
	if len(q.active) > 0 {
		st.ActiveTenants = make(map[string]int, len(q.active))
		for t, n := range q.active {
			st.Active += n
			st.ActiveTenants[t] = n
		}
	}
	return st
}
