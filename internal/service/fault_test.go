package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/search"
)

// waitGoroutines polls until the process goroutine count returns to (near)
// the baseline, failing the test if it never does — the leak check the
// shutdown and fault paths must pass.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after shutdown; leak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueCloseFailsPendingPromptly pins the shutdown contract under
// load: Close must fail every still-pending job (and release submitters
// blocked on Done) immediately, while an in-flight job is still running —
// not after it finishes — leak no goroutines, and keep Stats consistent.
func TestQueueCloseFailsPendingPromptly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	q := NewQueue(8, 1, 1)
	started := make(chan string, 1)
	release := make(chan struct{})
	running, err := q.Submit(context.Background(), "t", blockingJob(started, release, "run"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the one worker is now occupied for the rest of the test

	var pending []*Job
	for i := 0; i < 4; i++ {
		j, err := q.Submit(context.Background(), "t", func(context.Context) {
			t.Error("pending job ran during shutdown")
		})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, j)
	}
	// A blocked submitter waits on Done exactly like the HTTP handler.
	submitterErr := make(chan error, 1)
	go func() { submitterErr <- pending[0].Err() }()

	closed := make(chan struct{})
	go func() { q.Close(); close(closed) }()

	// Pending jobs fail promptly — the in-flight job is still blocked.
	for i, j := range pending {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("pending job %d not failed while a job is in flight", i)
		}
		if err := j.Err(); !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("pending job %d err = %v, want ErrQueueClosed", i, err)
		}
	}
	select {
	case err := <-submitterErr:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("blocked submitter got %v, want ErrQueueClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submitter never released")
	}
	// Close itself still drains the in-flight job before returning.
	select {
	case <-closed:
		t.Fatal("Close returned before the in-flight job finished")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-closed
	<-running.Done()
	if err := running.Err(); err != nil {
		t.Fatalf("in-flight job err = %v, want nil", err)
	}
	st := q.Stats()
	if st.Accepted != 5 || st.Completed != 1 || st.Dropped != 4 || st.Depth != 0 || st.Active != 0 {
		t.Fatalf("stats %+v, want accepted 5 = completed 1 + dropped 4, idle", st)
	}
	q.Close() // idempotent
	waitGoroutines(t, baseline)
}

// postSelectCtx is postSelect with a caller-owned context, for requests a
// test must cancel or that are expected to fail.
func postSelectCtx(ctx context.Context, ts *httptest.Server, dfg []byte, query string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/select"+query, bytes.NewReader(dfg))
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// TestServiceRetryAfterQueueFull pins satellite backpressure: with the
// single worker wedged (injected stall) and the FIFO full, the next
// submission gets 503 with a Retry-After derived from the queue depth, and
// the readiness probe reports saturation with the same hint.
func TestServiceRetryAfterQueueFull(t *testing.T) {
	in := fault.New(1, fault.Rule{Point: fault.PointServiceJob, Kind: fault.Stall})
	srv := NewServer(Config{QueueCapacity: 1, Workers: 1, FaultInjector: in})
	ts := httptest.NewServer(srv.Handler())
	dfg := kernelDFG(t, kernels.Fbital00())

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		if resp, err := postSelectCtx(ctx, ts, dfg, ""); err == nil {
			resp.Body.Close()
		}
	}
	await := func(cond func(QueueStats) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(srv.queue.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached (stats %+v)", what, srv.queue.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Add(1)
	go post() // stalls on the worker
	await(func(st QueueStats) bool { return st.Active == 1 }, "one active job")
	wg.Add(1)
	go post() // fills the FIFO
	await(func(st QueueStats) bool { return st.Depth == 1 }, "queue depth 1")

	// Third submission bounces with a depth-derived Retry-After: depth 1
	// over 1 worker = 2 seconds, not a hardcoded 1.
	status, _ := postSelect(t, ts, dfg, "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	resp, err := http.Post(ts.URL+"/v1/select", "text/plain", bytes.NewReader(dfg))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || got != 2 {
		t.Fatalf("Retry-After = %q, want \"2\" (1 + depth/workers)", resp.Header.Get("Retry-After"))
	}

	// The readiness probe mirrors the saturation, with the same hint.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(hz.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || body["reason"] != "queue saturated" {
		t.Fatalf("healthz = %d %v, want 503 queue saturated", hz.StatusCode, body)
	}
	if _, err := strconv.Atoi(hz.Header.Get("Retry-After")); err != nil {
		t.Fatalf("healthz 503 Retry-After = %q, want an integer", hz.Header.Get("Retry-After"))
	}

	cancel() // disconnecting the clients reclaims the stalled worker
	wg.Wait()
	ts.Close()
	srv.Close()
}

// TestServiceJobDeadline pins the server-enforced deadline: a wedged job
// (injected stall, client never disconnects) is reclaimed at JobDeadline
// and answered with 504; the worker is free again for the next job, which
// streams the normal byte-identical result.
func TestServiceJobDeadline(t *testing.T) {
	in := fault.New(1, fault.Rule{Point: fault.PointServiceJob, Kind: fault.Stall, Count: 1})
	srv := NewServer(Config{JobDeadline: 100 * time.Millisecond, FaultInjector: in})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Fbital00())

	status, body := postSelect(t, ts, dfg, "")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled job status = %d (%s), want 504", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("504 body %q does not name the deadline", body)
	}
	// The stall consumed its Count; the next job must run normally, on a
	// worker the deadline actually freed.
	status, body = postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("post-deadline status = %d, want 200", status)
	}
	if want := offlineNDJSON(t, dfg, DefaultParams()); !bytes.Equal(body, want) {
		t.Fatal("post-deadline stream differs from the offline reference")
	}
}

// TestServiceDegradedStoreServesAndRecovers pins degraded-mode serving
// end to end: a disk that fails every write trips the store's breaker
// during post-job flush — yet the response stays 200 and byte-identical
// to the offline reference, /healthz reports degraded (still ready),
// the metrics surfaces expose the breaker, and once the disk heals a
// recovery probe restores healthy persistence.
func TestServiceDegradedStoreServesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(1, fault.Rule{Point: fault.PointWrite, Kind: fault.ENOSPC})
	store, err := search.NewStoreOptions(dir, 0, search.StoreOptions{
		FS: fault.NewInjectFS(nil, in), BreakerThreshold: 1, ProbeEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{
		Cache:        search.NewPersistentCostCache(store),
		FlushBackoff: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Fbital00())

	status, body := postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("status = %d with a failing disk, want 200 (degraded, not dead)", status)
	}
	if want := offlineNDJSON(t, dfg, DefaultParams()); !bytes.Equal(body, want) {
		t.Fatal("degraded-mode stream differs from the offline reference")
	}
	if !store.Degraded() {
		t.Fatal("breaker did not trip after failed flushes")
	}

	// Readiness: degraded is flagged but still 200 — load balancers keep
	// routing. Poll past the async store-ready scan first.
	healthz := func() (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, m := healthz(); code == http.StatusOK {
			if m["status"] != "degraded" {
				t.Fatalf("healthz status %q, want degraded", m["status"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never became ready")
		}
		time.Sleep(time.Millisecond)
	}

	m := fetchMetrics(t, ts)
	if m.Cache.Store == nil || !m.Cache.Store.Degraded || m.Cache.Store.BreakerTrips < 1 {
		t.Fatalf("metrics store = %+v, want degraded with a recorded trip", m.Cache.Store)
	}
	if m.Cache.FlushErrors < 1 {
		t.Fatalf("flush_errors = %d, want >= 1", m.Cache.FlushErrors)
	}
	if m.Search.Counters["store_flush_failures"] < 1 {
		t.Fatalf("counters = %v, want store_flush_failures >= 1", m.Search.Counters)
	}
	prom, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := prom.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	prom.Body.Close()
	if !strings.Contains(sb.String(), "isegend_store_degraded 1") {
		t.Fatal("prometheus exposition does not flag the degraded store")
	}

	// The disk heals: the next job's flush rides a recovery probe
	// (ProbeEvery 1) and the still-dirty costings finally persist.
	in.Clear()
	if status, _ := postSelect(t, ts, dfg, ""); status != http.StatusOK {
		t.Fatalf("post-heal status = %d, want 200", status)
	}
	if store.Degraded() {
		t.Fatal("store still degraded after the disk healed")
	}
	st := store.Stats()
	if st.Recoveries != 1 || st.Saves == 0 {
		t.Fatalf("store stats %+v, want one recovery and persisted saves", st)
	}
	if code, m := healthz(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("post-recovery healthz = %d %v, want 200 ok", code, m)
	}
}

// TestServiceEngineBlockFaultMidStream pins the mid-stream failure
// contract: a block that fails after earlier blocks already streamed
// cannot retract the committed 200, so the stream terminates with an
// in-band error record naming the injected fault.
func TestServiceEngineBlockFaultMidStream(t *testing.T) {
	in := fault.New(1, fault.Rule{Point: fault.PointEngineBlock, Kind: fault.Err, Start: 1, Count: 1})
	srv := NewServer(Config{FaultInjector: in})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Fbital00())

	// workers=1 serializes the per-block fan-out, so fault op indices map
	// to block indices deterministically: block 0 streams, block 1 dies.
	status, body := postSelect(t, ts, dfg, "?algo=exact&workers=1")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (first block committed the stream)", status)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d records, want at least block 0 + error", len(lines))
	}
	var first, last struct {
		Type  string `json:"type"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Type != "block" {
		t.Fatalf("first record type %q, want block", first.Type)
	}
	if last.Type != "error" || !strings.Contains(last.Error, "injected") {
		t.Fatalf("last record = %+v, want an error record naming the injected fault", last)
	}

	// The fault consumed its Count: a clean retry is byte-identical to the
	// offline reference.
	p := DefaultParams()
	p.Algo, p.Workers = "exact", 1
	status, body = postSelect(t, ts, dfg, "?algo=exact&workers=1")
	if status != http.StatusOK {
		t.Fatalf("retry status = %d, want 200", status)
	}
	if want := offlineNDJSON(t, dfg, p); !bytes.Equal(body, want) {
		t.Fatal("retry after fault clearance is not byte-identical to the offline reference")
	}
}

// TestServiceJobFaultsBeforeStream pins the pre-stream failure statuses:
// an injected job error (and an injected panic) before any byte is
// written surface as real 500s, each contained to its one job.
func TestServiceJobFaultsBeforeStream(t *testing.T) {
	in := fault.New(1,
		fault.Rule{Point: fault.PointServiceJob, Kind: fault.Err, Start: 0, Count: 1},
		fault.Rule{Point: fault.PointServiceJob, Kind: fault.Panic, Start: 1, Count: 1},
	)
	srv := NewServer(Config{FaultInjector: in})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Fbital00())

	status, body := postSelect(t, ts, dfg, "")
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "injected") {
		t.Fatalf("injected job error: %d %s, want 500 naming the fault", status, body)
	}
	status, body = postSelect(t, ts, dfg, "")
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "panicked") {
		t.Fatalf("injected panic: %d %s, want 500 from the contained panic", status, body)
	}
	if st := srv.queue.Stats(); st.Panics != 1 {
		t.Fatalf("queue panics = %d, want 1", st.Panics)
	}
	// Both faults consumed: the daemon is healthy, not crashed.
	status, body = postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("post-fault status = %d, want 200", status)
	}
	if want := offlineNDJSON(t, dfg, DefaultParams()); !bytes.Equal(body, want) {
		t.Fatal("post-fault stream differs from the offline reference")
	}
}

// TestServiceSearchRoundFault pins the application-flow fault point: an
// injected error in ISEGEN's first greedy round kills the job before the
// (end-of-run) emission, so the client sees a clean 500, and the next job
// is unaffected.
func TestServiceSearchRoundFault(t *testing.T) {
	in := fault.New(1, fault.Rule{Point: fault.PointSearchRound, Kind: fault.Err, Count: 1})
	srv := NewServer(Config{FaultInjector: in})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Fbital00())

	status, body := postSelect(t, ts, dfg, "")
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "injected") {
		t.Fatalf("round fault: %d %s, want 500 naming the fault", status, body)
	}
	if in.Fires(fault.PointSearchRound) != 1 {
		t.Fatal("search.round fault never fired; the injector is not plumbed through the engine")
	}
	status, body = postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("post-fault status = %d, want 200", status)
	}
	if want := offlineNDJSON(t, dfg, DefaultParams()); !bytes.Equal(body, want) {
		t.Fatal("post-fault stream differs from the offline reference")
	}
}
