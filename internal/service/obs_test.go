package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dfgio"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/search"
)

// TestRecordingDoesNotPerturbOutput pins the observability layer's core
// contract: attaching a live Recorder to a job's context must not change
// a single byte of the NDJSON stream, across algorithms and worker
// counts. The recorder only reads the clock and increments write-only
// counters; this test is the guard that keeps it that way.
func TestRecordingDoesNotPerturbOutput(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	app, err := dfgio.ParseApplication("upload", bytes.NewReader(dfg))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"isegen-w1", func(p *Params) { p.Workers = 1 }},
		{"isegen-w3", func(p *Params) { p.Workers = 3 }},
		{"iterative", func(p *Params) { p.Algo = "iterative" }},
		{"genetic", func(p *Params) { p.Algo, p.Seed, p.Workers = "genetic", 7, 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mut(&p)

			var off bytes.Buffer
			if err := Run(context.Background(), app, p, search.NewCostCache(), NDJSONEmitter(&off)); err != nil {
				t.Fatal(err)
			}

			rec := obs.NewRecorder(obs.DefaultSpanCap)
			ctx := obs.WithRecorder(context.Background(), rec)
			var on bytes.Buffer
			if err := Run(ctx, app, p, search.NewCostCache(), NDJSONEmitter(&on)); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(on.Bytes(), off.Bytes()) {
				t.Fatalf("recording-on stream differs from recording-off\non:\n%s\noff:\n%s", on.Bytes(), off.Bytes())
			}
			// Guard against a vacuous pass: the recorder must actually have
			// observed the run.
			if len(rec.Spans()) == 0 {
				t.Fatal("recorder captured no spans")
			}
			if len(rec.Counters().Map()) == 0 {
				t.Fatal("recorder captured no counters")
			}
		})
	}
}

// TestQueueWaitSlowJobAhead pins the queue-wait accounting: with one
// worker, a fast job submitted behind a slow one must report a queue
// wait of roughly the slow job's run time, while the slow job itself
// reports (almost) none.
func TestQueueWaitSlowJobAhead(t *testing.T) {
	q := NewQueue(8, 1, 1)
	defer q.Close()

	const slowRun = 120 * time.Millisecond
	started := make(chan struct{})
	slow, err := q.Submit(context.Background(), "a", func(context.Context) {
		close(started)
		time.Sleep(slowRun)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the fast job is submitted strictly after slow starts running
	fast, err := q.Submit(context.Background(), "b", func(context.Context) {})
	if err != nil {
		t.Fatal(err)
	}
	<-fast.Done()

	if w := slow.QueueWait(); w > slowRun/2 {
		t.Fatalf("slow job queue wait %v, want near zero", w)
	}
	// The fast job waited for the slow job's remaining run time; allow
	// generous slack below for scheduling delays between close(started)
	// and Submit.
	if w := fast.QueueWait(); w < slowRun/2 {
		t.Fatalf("fast job queue wait %v, want ≳%v (the slow job's run time)", w, slowRun)
	}
}

// TestQueueWaitTenantBudget pins that time a job spends held back by its
// tenant's concurrency budget is accounted as queue wait, not compute:
// with two free workers but a budget of one, the same tenant's second
// job waits for the first one's full run time.
func TestQueueWaitTenantBudget(t *testing.T) {
	q := NewQueue(8, 2, 1)
	defer q.Close()

	const firstRun = 120 * time.Millisecond
	started := make(chan struct{})
	first, err := q.Submit(context.Background(), "tenant", func(context.Context) {
		close(started)
		time.Sleep(firstRun)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := q.Submit(context.Background(), "tenant", func(context.Context) {})
	if err != nil {
		t.Fatal(err)
	}
	<-second.Done()
	<-first.Done()

	if w := second.QueueWait(); w < firstRun/2 {
		t.Fatalf("budget-held job queue wait %v, want ≳%v (a worker was free the whole time)", w, firstRun)
	}
}

// TestHealthzReadiness pins the liveness/readiness split: readiness is
// 503 with a JSON reason while the store is loading or the queue is
// saturated, 200 otherwise; the liveness probe (?live=1) is always 200.
func TestHealthzReadiness(t *testing.T) {
	srv := NewServer(Config{QueueCapacity: 1, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("ready server: status %d, want 200", st)
	}

	// Store still loading → unready with a reason, but alive.
	srv.storeReady.Store(false)
	st, body := get("/healthz")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("loading store: status %d, want 503", st)
	}
	if body["status"] != "unready" || !strings.Contains(body["reason"], "store") {
		t.Fatalf("loading store: body %v, want unready + store reason", body)
	}
	if st, _ := get("/healthz?live=1"); st != http.StatusOK {
		t.Fatalf("liveness while unready: status %d, want 200", st)
	}
	srv.storeReady.Store(true)

	// Saturate the queue: one job occupies the single worker, a second
	// fills the capacity-1 FIFO.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := srv.queue.Submit(context.Background(), "t", func(context.Context) {
		close(started)
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := srv.queue.Submit(context.Background(), "t", func(context.Context) {})
	if err != nil {
		t.Fatal(err)
	}
	st, body = get("/healthz")
	if st != http.StatusServiceUnavailable || !strings.Contains(body["reason"], "queue") {
		t.Fatalf("saturated queue: status %d body %v, want 503 + queue reason", st, body)
	}
	close(release)
	<-blocker.Done()
	<-queued.Done()
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("drained server: status %d, want 200", st)
	}
}

// TestPromMetricsScrape runs one served job and scrapes GET /metrics,
// checking the required metric families exist in the exposition.
func TestPromMetricsScrape(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := postSelect(t, ts, dfg, ""); status != http.StatusOK {
		t.Fatalf("select status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	for _, family := range []string{
		"isegend_queue_depth",
		"isegend_queue_accepted_total",
		"isegend_queue_completed_total",
		"isegend_ready",
		"isegend_cache_hits_total",
		"isegend_cache_misses_total",
		"isegend_kl_toggles_total",
		"isegend_kl_probes_total",
		"isegend_exact_explored_total",
		"isegend_span_drops_total",
		"isegend_job_duration_seconds_bucket",
		"isegend_queue_wait_seconds_bucket",
		"isegend_goroutines",
		"isegend_heap_alloc_bytes",
		"isegend_gc_cycles_total",
	} {
		if !strings.Contains(text, "\n"+family) && !strings.HasPrefix(text, family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	// The default isegen job must have produced real K-L work.
	if strings.Contains(text, "isegend_kl_toggles_total 0\n") {
		t.Error("kl_toggles_total is zero after an isegen job")
	}
	if !strings.Contains(text, `isegend_job_duration_seconds_count{engine="isegen"} 1`) {
		t.Error("job duration histogram missing engine=\"isegen\" series with count 1")
	}
	if !strings.Contains(text, `isegend_queue_wait_seconds_count{tenant="default"} 1`) {
		t.Error("queue wait histogram missing tenant=\"default\" series with count 1")
	}
}

// TestMetricsRuntimeAndSearchSections pins the expanded /v1/metrics
// document: runtime gauges are live, engine counters accumulate, and the
// latency/queue-wait histograms carry the fixed bucket boundaries so
// shard aggregation stays a vector add.
func TestMetricsRuntimeAndSearchSections(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, body := postSelect(t, ts, dfg, fmt.Sprintf("?workers=%d", 2)); status != http.StatusOK {
		t.Fatalf("select status %d: %s", status, body)
	}
	m := fetchMetrics(t, ts)

	if m.Runtime.Goroutines <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", m.Runtime.Goroutines)
	}
	if m.Runtime.HeapAllocBytes == 0 || m.Runtime.HeapSysBytes == 0 {
		t.Errorf("runtime heap gauges zero: %+v", m.Runtime)
	}
	if m.Search.Counters["kl_toggles"] <= 0 {
		t.Errorf("search.counters[kl_toggles] = %d, want > 0", m.Search.Counters["kl_toggles"])
	}
	if m.Search.Counters["kl_probes"] <= 0 {
		t.Errorf("search.counters[kl_probes] = %d, want > 0", m.Search.Counters["kl_probes"])
	}
	lat, ok := m.Search.LatencySeconds["isegen"]
	if !ok || lat.Count != 1 {
		t.Fatalf("latency_seconds[isegen] = %+v (ok=%v), want count 1", lat, ok)
	}
	if len(lat.Buckets) != len(obs.DefaultBuckets) || len(lat.Counts) != len(obs.DefaultBuckets)+1 {
		t.Errorf("histogram shape buckets=%d counts=%d, want %d/%d",
			len(lat.Buckets), len(lat.Counts), len(obs.DefaultBuckets), len(obs.DefaultBuckets)+1)
	}
	wait, ok := m.Search.QueueWaitSeconds["default"]
	if !ok || wait.Count != 1 {
		t.Fatalf("queue_wait_seconds[default] = %+v (ok=%v), want count 1", wait, ok)
	}
}
