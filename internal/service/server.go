package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/dfgio"
	"repro/internal/search"
)

// Config sizes a Server. Zero fields take the documented defaults.
type Config struct {
	// QueueCapacity bounds the FIFO of waiting jobs (default 64);
	// submissions beyond it get 503 + Retry-After.
	QueueCapacity int
	// Workers is the number of jobs executed concurrently (default 2).
	Workers int
	// TenantBudget caps one tenant's concurrently running jobs
	// (default 1): a heavy tenant queues behind itself while other
	// tenants' jobs overtake.
	TenantBudget int
	// RunnerWorkers bounds each job's search worker pool (0 = one per
	// CPU core; results are identical for every value).
	RunnerWorkers int
	// Cache is the shared cut-costing cache; default is a content-keyed
	// memory-only persistent cache (NewPersistentCostCache(nil)), so
	// repeated uploads of the same .dfg hit even without a disk store.
	Cache *search.CostCache
	// MaxBodyBytes bounds an upload (default 16 MiB).
	MaxBodyBytes int64
}

// Server is the long-lived ISE-selection service: .dfg uploads in, NDJSON
// selection streams out (see Run for the wire contract), with bounded
// queueing, per-tenant budgets and a metrics endpoint.
//
//	POST /v1/select?algo=isegen&in=4&out=2&nise=4   body: .dfg text
//	     (&objective=pareto|merit|reuse|area|energy|latency|class,
//	      &gate_penalty=, &latency_budget=, &class_weights=memory=0.5)
//	GET  /v1/metrics
//	GET  /healthz
type Server struct {
	cfg   Config
	queue *Queue
	cache *search.CostCache
	race  *RaceCounters

	mu                       sync.Mutex
	lastJobHits, lastJobMiss int64
	flushErrs                int64
}

// NewServer starts the worker pool and returns a ready-to-serve Server.
// Call Close to drain it.
func NewServer(cfg Config) *Server {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TenantBudget <= 0 {
		cfg.TenantBudget = 1
	}
	if cfg.Cache == nil {
		cfg.Cache = search.NewPersistentCostCache(nil)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	return &Server{
		cfg:   cfg,
		queue: NewQueue(cfg.QueueCapacity, cfg.Workers, cfg.TenantBudget),
		cache: cfg.Cache,
		race:  &RaceCounters{},
	}
}

// Close stops the queue workers (current jobs finish) and flushes the
// cache to its store.
func (s *Server) Close() {
	s.queue.Close()
	_ = s.cache.Flush()
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/select", s.handleSelect)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseParams reads job parameters from the request's query string,
// falling back to DefaultParams.
func parseParams(r *http.Request) (Params, error) {
	p := DefaultParams()
	q := r.URL.Query()
	if v := q.Get("algo"); v != "" {
		p.Algo = v
	}
	intField := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, v)
		}
		*dst = n
		return nil
	}
	for name, dst := range map[string]*int{
		"in": &p.MaxIn, "out": &p.MaxOut, "nise": &p.NISE, "workers": &p.Workers,
		"subtree_workers": &p.SubtreeWorkers, "split_depth": &p.SplitDepth,
		"max_frontier": &p.MaxFrontier,
	} {
		if err := intField(name, dst); err != nil {
			return p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed=%q", v)
		}
		p.Seed = n
	}
	if v := q.Get("reuse"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return p, fmt.Errorf("bad reuse=%q", v)
		}
		p.Reuse = b
	}
	p.Objective = q.Get("objective")
	if v := q.Get("gate_penalty"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("bad gate_penalty=%q", v)
		}
		// Sign and range rules live in Params.Validate, shared with the
		// CLI, so both surfaces reject the same values the same way.
		p.GatePenalty = f
	}
	if err := intField("latency_budget", &p.LatencyBudget); err != nil {
		return p, err
	}
	if v := q.Get("class_weights"); v != "" {
		cw, err := ParseClassWeights(v)
		if err != nil {
			return p, err
		}
		p.ClassWeights = cw
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return p, fmt.Errorf("bad deadline=%q (want a Go duration, e.g. 200ms)", v)
		}
		// Sign and algo-pairing rules live in Params.Validate, shared
		// with the CLI.
		p.Deadline = d
	}
	return p, nil
}

// tenantOf resolves the submitting tenant: the X-Tenant header, the tenant
// query parameter, or "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a .dfg body to this endpoint")
		return
	}
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	// Read the bounded body up front: a cut-off stream would otherwise
	// surface as a confusing syntax error on a truncated line instead of
	// a clear 413. The size is already bounded, so buffering is safe.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	app, err := dfgio.ParseApplication(name, bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The server's RunnerWorkers bound, when set, caps (and defaults)
	// the per-job pool; results are identical for every value.
	if s.cfg.RunnerWorkers > 0 && (p.Workers <= 0 || p.Workers > s.cfg.RunnerWorkers) {
		p.Workers = s.cfg.RunnerWorkers
	}

	var wrote bool // any stream bytes committed? (read after job.Done)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	var runErr error // job failure with nothing streamed (read after Done)
	job, err := s.queue.Submit(r.Context(), tenantOf(r), func(ctx context.Context) {
		h0, m0 := s.cache.Stats()
		w.Header().Set("Content-Type", "application/x-ndjson")
		// A cancelled context means the client went away — nobody is
		// reading, so no error record. Engine failures after streaming
		// started land in-stream (the 200 is committed by then); before
		// any record, the handler turns them into a real error status.
		if err := Run(WithRaceCounters(ctx, s.race), app, p, s.cache, emit); err != nil && ctx.Err() == nil {
			if wrote {
				_ = emit(&ErrorRecord{Type: "error", Error: err.Error()})
			} else {
				runErr = err
			}
		}
		h1, m1 := s.cache.Stats()
		flushErr := s.cache.Flush()
		s.mu.Lock()
		// Overlapping jobs blur these deltas; they are exact whenever
		// jobs run one at a time (the benchmark/repro setup).
		s.lastJobHits, s.lastJobMiss = h1-h0, m1-m0
		if flushErr != nil {
			s.flushErrs++
		}
		s.mu.Unlock()
	})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "queue full; retry later")
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	// The job streams directly to w from a queue worker; the handler
	// must stay on the stack until it finishes.
	<-job.Done()
	jerr := job.Err()
	if jerr == nil {
		jerr = runErr
	}
	switch {
	case jerr == nil:
	case errors.Is(jerr, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case r.Context().Err() != nil:
		// Dropped because the client disconnected; nobody is reading.
	case !wrote:
		// The job died (contained panic or pre-stream failure) before
		// committing any bytes: the client deserves a real error
		// status, not an empty 200.
		httpError(w, http.StatusInternalServerError, "%v", jerr)
	default:
		// Stream already committed; terminate it with an error record.
		_ = emit(&ErrorRecord{Type: "error", Error: jerr.Error()})
	}
}

// Metrics is the /v1/metrics response document.
type Metrics struct {
	Queue QueueStats   `json:"queue"`
	Cache CacheMetrics `json:"cache"`
	// Racing reports the racing engine's bound-seeding effectiveness
	// (see RacingMetrics); all-zero until a racing or exact job runs.
	Racing RacingMetrics `json:"racing"`
}

// CacheMetrics reports the shared cost cache's effectiveness: cumulative
// hit/miss counters plus the delta observed during the most recently
// completed job — a repeated upload of an already-seen application shows a
// last-job hit rate near 1.
type CacheMetrics struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	LastJobHits int64   `json:"last_job_hits"`
	LastJobMiss int64   `json:"last_job_misses"`
	LastJobRate float64 `json:"last_job_hit_rate"`
	// Store reports disk persistence activity when a store is attached.
	Store *search.StoreStats `json:"store,omitempty"`
	// FlushErrors counts failed post-job persistence attempts.
	FlushErrors int64 `json:"flush_errors"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	cm := CacheMetrics{
		Hits: hits, Misses: misses,
		LastJobHits: s.lastJobHits, LastJobMiss: s.lastJobMiss,
		FlushErrors: s.flushErrs,
	}
	s.mu.Unlock()
	if t := hits + misses; t > 0 {
		cm.HitRate = float64(hits) / float64(t)
	}
	if t := cm.LastJobHits + cm.LastJobMiss; t > 0 {
		cm.LastJobRate = float64(cm.LastJobHits) / float64(t)
	}
	if st := s.cache.Store(); st != nil {
		ss := st.Stats()
		cm.Store = &ss
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&Metrics{Queue: s.queue.Stats(), Cache: cm, Racing: s.race.Snapshot()})
}
