package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfgio"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/search"
)

// Config sizes a Server. Zero fields take the documented defaults.
type Config struct {
	// QueueCapacity bounds the FIFO of waiting jobs (default 64);
	// submissions beyond it get 503 + Retry-After.
	QueueCapacity int
	// Workers is the number of jobs executed concurrently (default 2).
	Workers int
	// TenantBudget caps one tenant's concurrently running jobs
	// (default 1): a heavy tenant queues behind itself while other
	// tenants' jobs overtake.
	TenantBudget int
	// RunnerWorkers bounds each job's search worker pool (0 = one per
	// CPU core; results are identical for every value).
	RunnerWorkers int
	// Cache is the shared cut-costing cache; default is a content-keyed
	// memory-only persistent cache (NewPersistentCostCache(nil)), so
	// repeated uploads of the same .dfg hit even without a disk store.
	Cache *search.CostCache
	// MaxBodyBytes bounds an upload (default 16 MiB).
	MaxBodyBytes int64
	// JobDeadline bounds each job's run wall-clock time (0 = none): on
	// expiry the job's context cancels, the search aborts, and the client
	// gets 504 — or an in-stream error record if bytes were already
	// committed. It reclaims wedged jobs even when the client never
	// disconnects.
	JobDeadline time.Duration
	// FlushRetries and FlushBackoff govern post-job store persistence: a
	// failed flush retries up to FlushRetries times (default 2, negative
	// = none) with exponential backoff starting at FlushBackoff (default
	// 10ms). A flush refused by the store's write breaker
	// (search.ErrStoreDegraded) is never retried — the breaker exists
	// precisely to stop traffic to a failing disk.
	FlushRetries int
	FlushBackoff time.Duration
	// FaultInjector, when set, is installed on every job context and
	// consulted at the serving-layer fault points (fault.PointServiceJob
	// here; fault.PointEngineBlock and fault.PointSearchRound downstream).
	// Production servers leave it nil, which costs one branch per point.
	FaultInjector *fault.Injector
}

// Server is the long-lived ISE-selection service: .dfg uploads in, NDJSON
// selection streams out (see Run for the wire contract), with bounded
// queueing, per-tenant budgets and a metrics endpoint.
//
//	POST /v1/select?algo=isegen&in=4&out=2&nise=4   body: .dfg text
//	     (&objective=pareto|merit|reuse|area|energy|latency|class,
//	      &gate_penalty=, &latency_budget=, &class_weights=memory=0.5)
//	GET  /v1/metrics    JSON: queue/cache/racing/runtime/search sections
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       readiness (503 + reason while unready); ?live=1 liveness
type Server struct {
	cfg   Config
	queue *Queue
	cache *search.CostCache
	race  *RaceCounters
	// agg accumulates per-job recorders into the served metrics view:
	// engine counters, per-engine latency and per-tenant queue-wait
	// histograms (fixed buckets — see obs.DefaultBuckets).
	agg *obs.Aggregate
	// storeReady flips true once the persistent store's initial
	// directory scan has completed; until then the readiness probe
	// reports 503 so load balancers don't route jobs that would all
	// miss the cache and re-cost from scratch.
	storeReady atomic.Bool

	mu                       sync.Mutex
	lastJobHits, lastJobMiss int64
	flushErrs                int64
}

// NewServer starts the worker pool and returns a ready-to-serve Server.
// Call Close to drain it.
func NewServer(cfg Config) *Server {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TenantBudget <= 0 {
		cfg.TenantBudget = 1
	}
	if cfg.Cache == nil {
		cfg.Cache = search.NewPersistentCostCache(nil)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.FlushRetries == 0 {
		cfg.FlushRetries = 2
	}
	if cfg.FlushRetries < 0 {
		cfg.FlushRetries = 0
	}
	if cfg.FlushBackoff <= 0 {
		cfg.FlushBackoff = 10 * time.Millisecond
	}
	s := &Server{
		cfg:   cfg,
		queue: NewQueue(cfg.QueueCapacity, cfg.Workers, cfg.TenantBudget),
		cache: cfg.Cache,
		race:  &RaceCounters{},
		agg:   obs.NewAggregate(),
	}
	if st := s.cache.Store(); st != nil {
		// Warm the store off the serving path: the first Stats call walks
		// the entry directory, which on a large cache dir takes long
		// enough that routing jobs before it finishes just stacks cold
		// misses. Readiness reports 503 until the scan completes.
		go func() {
			st.Stats()
			s.storeReady.Store(true)
		}()
	} else {
		s.storeReady.Store(true)
	}
	return s
}

// Close stops the queue workers (current jobs finish) and flushes the
// cache to its store.
func (s *Server) Close() {
	s.queue.Close()
	_ = s.cache.Flush()
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/select", s.handleSelect)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics", s.handlePromMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz distinguishes liveness from readiness. ?live=1 is the
// liveness probe: always 200 while the process serves HTTP. Without it
// the probe reports readiness: 503 with a JSON reason (and a Retry-After
// hint derived from the backlog) while the persistent store is still
// scanning its directory or the queue is saturated (the next Submit would
// be rejected), 200 otherwise. A store whose write breaker is open
// reports 200 with status "degraded" — persistence is postponed but reads
// and jobs still work, so load balancers must keep routing here while
// operators see the flag.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("live") != "" {
		_, _ = io.WriteString(w, `{"status":"ok"}`+"\n")
		return
	}
	reason := ""
	switch {
	case !s.storeReady.Load():
		reason = "persistent store loading"
	case s.queue.Saturated():
		reason = "queue saturated"
	}
	if reason != "" {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": reason})
		return
	}
	if st := s.cache.Store(); st != nil && st.Degraded() {
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "degraded", "reason": "store write breaker open"})
		return
	}
	_, _ = io.WriteString(w, `{"status":"ok"}`+"\n")
}

// retryAfterSecs derives the Retry-After hint from the current backlog:
// roughly one second per Workers-wide batch of queued jobs, clamped to
// [1, 60] so a deep queue never pushes clients away for unbounded time.
func (s *Server) retryAfterSecs() int {
	secs := 1 + s.queue.Stats().Depth/s.cfg.Workers
	if secs > 60 {
		secs = 60
	}
	return secs
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseParams reads job parameters from the request's query string,
// falling back to DefaultParams.
func parseParams(r *http.Request) (Params, error) {
	p := DefaultParams()
	q := r.URL.Query()
	if v := q.Get("algo"); v != "" {
		p.Algo = v
	}
	intField := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, v)
		}
		*dst = n
		return nil
	}
	for name, dst := range map[string]*int{
		"in": &p.MaxIn, "out": &p.MaxOut, "nise": &p.NISE, "workers": &p.Workers,
		"subtree_workers": &p.SubtreeWorkers, "split_depth": &p.SplitDepth,
		"max_frontier": &p.MaxFrontier,
	} {
		if err := intField(name, dst); err != nil {
			return p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed=%q", v)
		}
		p.Seed = n
	}
	if v := q.Get("reuse"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return p, fmt.Errorf("bad reuse=%q", v)
		}
		p.Reuse = b
	}
	p.Objective = q.Get("objective")
	if v := q.Get("gate_penalty"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("bad gate_penalty=%q", v)
		}
		// Sign and range rules live in Params.Validate, shared with the
		// CLI, so both surfaces reject the same values the same way.
		p.GatePenalty = f
	}
	if err := intField("latency_budget", &p.LatencyBudget); err != nil {
		return p, err
	}
	if v := q.Get("class_weights"); v != "" {
		cw, err := ParseClassWeights(v)
		if err != nil {
			return p, err
		}
		p.ClassWeights = cw
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return p, fmt.Errorf("bad deadline=%q (want a Go duration, e.g. 200ms)", v)
		}
		// Sign and algo-pairing rules live in Params.Validate, shared
		// with the CLI.
		p.Deadline = d
	}
	return p, nil
}

// tenantOf resolves the submitting tenant: the X-Tenant header, the tenant
// query parameter, or "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a .dfg body to this endpoint")
		return
	}
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	// Read the bounded body up front: a cut-off stream would otherwise
	// surface as a confusing syntax error on a truncated line instead of
	// a clear 413. The size is already bounded, so buffering is safe.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	app, err := dfgio.ParseApplication(name, bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The server's RunnerWorkers bound, when set, caps (and defaults)
	// the per-job pool; results are identical for every value.
	if s.cfg.RunnerWorkers > 0 && (p.Workers <= 0 || p.Workers > s.cfg.RunnerWorkers) {
		p.Workers = s.cfg.RunnerWorkers
	}

	var wrote bool // any stream bytes committed? (read after job.Done)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) error {
		if err := enc.Encode(v); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// Per-job recorder: spans and counters accumulate here while the job
	// runs and fold into s.agg once at completion. The job span opens now
	// (queue wait is part of the job); the queue span closes when a worker
	// picks the job up.
	tenant := tenantOf(r)
	rec := obs.NewRecorder(obs.DefaultSpanCap)
	jobSpan := rec.Start(0, obs.KindJob, p.Algo)
	queueSpan := rec.Start(jobSpan, obs.KindQueue, tenant)
	submitted := time.Now()

	var runErr error // job failure with nothing streamed (read after Done)
	job, err := s.queue.Submit(r.Context(), tenant, func(ctx context.Context) {
		wait := time.Since(submitted)
		rec.End(queueSpan)
		if s.cfg.JobDeadline > 0 {
			// Server-enforced deadline: covers the run only (queue wait is
			// already bounded by the FIFO + budgets), so a wedged engine is
			// reclaimed even when the client never disconnects.
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.JobDeadline)
			defer cancel()
		}
		ctx = obs.WithParentSpan(obs.WithRecorder(ctx, rec), jobSpan)
		if in := s.cfg.FaultInjector; in != nil {
			ctx = fault.WithInjector(ctx, in)
			ft := in.Check(fault.PointServiceJob)
			if err := ft.Error(); err != nil {
				runErr = err // job dies before streaming; handler sends 500
				return
			}
			// Panic is contained by the queue's recovery; Stall parks until
			// the deadline or the client disconnect reclaims the worker.
			ft.Apply(ctx)
		}
		runStart := time.Now()
		h0, m0 := s.cache.Stats()
		w.Header().Set("Content-Type", "application/x-ndjson")
		// A cancelled *request* context means the client went away — nobody
		// is reading, so no error record. The job context expiring (server
		// deadline) is a real failure: in-stream error record after bytes
		// were committed, 504 before. Engine failures after streaming
		// started land in-stream (the 200 is committed by then); before
		// any record, the handler turns them into a real error status.
		if err := Run(WithRaceCounters(ctx, s.race), app, p, s.cache, emit); err != nil && r.Context().Err() == nil {
			if wrote {
				_ = emit(&ErrorRecord{Type: "error", Error: err.Error()})
			} else {
				runErr = err
			}
		}
		h1, m1 := s.cache.Stats()
		// Concurrent jobs blur the per-job attribution of these deltas the
		// same way they blur lastJobHits below; the cumulative sums in the
		// aggregate stay exact.
		rec.Add(obs.CacheHits, h1-h0)
		rec.Add(obs.CacheMisses, m1-m0)
		// Flush before the recorder folds into the aggregate so the
		// retry/failure counters land in this job's observation; runDur is
		// captured first so persistence latency (and its backoff sleeps)
		// never pollutes the job-duration histograms.
		runDur := time.Since(runStart)
		flushErr := s.flushStore(rec)
		rec.End(jobSpan)
		s.agg.ObserveJob(rec, p.Algo, tenant, runDur, wait)
		s.mu.Lock()
		// Overlapping jobs blur these deltas; they are exact whenever
		// jobs run one at a time (the benchmark/repro setup).
		s.lastJobHits, s.lastJobMiss = h1-h0, m1-m0
		if flushErr != nil {
			s.flushErrs++
		}
		s.mu.Unlock()
	})
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		if errors.Is(err, ErrQueueFull) {
			httpError(w, http.StatusServiceUnavailable, "queue full; retry later")
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	// The job streams directly to w from a queue worker; the handler
	// must stay on the stack until it finishes.
	<-job.Done()
	jerr := job.Err()
	if jerr == nil {
		jerr = runErr
	}
	switch {
	case jerr == nil:
	case errors.Is(jerr, ErrQueueClosed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case r.Context().Err() != nil:
		// Dropped because the client disconnected; nobody is reading.
	case !wrote && errors.Is(jerr, context.DeadlineExceeded):
		// The server deadline expired before any bytes were committed.
		httpError(w, http.StatusGatewayTimeout, "job exceeded the server deadline (%v)", s.cfg.JobDeadline)
	case !wrote:
		// The job died (contained panic or pre-stream failure) before
		// committing any bytes: the client deserves a real error
		// status, not an empty 200.
		httpError(w, http.StatusInternalServerError, "%v", jerr)
	default:
		// Stream already committed; terminate it with an error record.
		_ = emit(&ErrorRecord{Type: "error", Error: jerr.Error()})
	}
}

// flushStore persists the cache after a job with bounded retry: transient
// failures back off exponentially and try again, while ErrStoreDegraded
// returns immediately — the store's write breaker is already refusing
// writes, and retrying from every job would defeat its purpose. The
// costings stay dirty in memory either way, so a later flush (riding the
// breaker's deterministic recovery probes) persists them eventually.
func (s *Server) flushStore(rec *obs.Recorder) error {
	err := s.cache.Flush()
	backoff := s.cfg.FlushBackoff
	for try := 0; try < s.cfg.FlushRetries && err != nil && !errors.Is(err, search.ErrStoreDegraded); try++ {
		time.Sleep(backoff)
		backoff *= 2
		rec.Add(obs.StoreFlushRetries, 1)
		err = s.cache.Flush()
	}
	if err != nil {
		rec.Add(obs.StoreFlushFailures, 1)
	}
	return err
}

// Metrics is the /v1/metrics response document.
type Metrics struct {
	Queue QueueStats   `json:"queue"`
	Cache CacheMetrics `json:"cache"`
	// Racing reports the racing engine's bound-seeding effectiveness
	// (see RacingMetrics); all-zero until a racing or exact job runs.
	Racing RacingMetrics `json:"racing"`
	// Runtime reports process-level gauges (goroutines, heap highlights).
	Runtime RuntimeMetrics `json:"runtime"`
	// Search reports engine-internal counters and latency/queue-wait
	// histograms accumulated over completed jobs.
	Search SearchMetrics `json:"search"`
}

// RuntimeMetrics is a point-in-time snapshot of process health gauges:
// runtime.NumGoroutine plus the runtime.MemStats highlights that matter
// for a long-lived search daemon (live heap, footprint, GC pressure).
type RuntimeMetrics struct {
	Goroutines      int    `json:"goroutines"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	HeapObjects     uint64 `json:"heap_objects"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	GCPauseTotalNs  uint64 `json:"gc_pause_total_ns"`
}

func runtimeMetrics() RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeMetrics{
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GCPauseTotalNs:  ms.PauseTotalNs,
	}
}

// SearchMetrics is the observability aggregate over completed jobs:
// engine-internal counters (nonzero only, keyed by their stable
// exposition names), span-ring overwrites, and fixed-bucket histograms —
// job latency by engine, queue wait by tenant. Histogram bucket
// boundaries are obs.DefaultBuckets on every shard, so merging across
// servers is a vector add of the count arrays.
type SearchMetrics struct {
	Counters         map[string]int64                 `json:"counters"`
	SpanDrops        int64                            `json:"span_drops"`
	LatencySeconds   map[string]obs.HistogramSnapshot `json:"latency_seconds,omitempty"`
	QueueWaitSeconds map[string]obs.HistogramSnapshot `json:"queue_wait_seconds,omitempty"`
}

// CacheMetrics reports the shared cost cache's effectiveness: cumulative
// hit/miss counters plus the delta observed during the most recently
// completed job — a repeated upload of an already-seen application shows a
// last-job hit rate near 1.
type CacheMetrics struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	LastJobHits int64   `json:"last_job_hits"`
	LastJobMiss int64   `json:"last_job_misses"`
	LastJobRate float64 `json:"last_job_hit_rate"`
	// Store reports disk persistence activity when a store is attached.
	Store *search.StoreStats `json:"store,omitempty"`
	// FlushErrors counts failed post-job persistence attempts.
	FlushErrors int64 `json:"flush_errors"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	cm := CacheMetrics{
		Hits: hits, Misses: misses,
		LastJobHits: s.lastJobHits, LastJobMiss: s.lastJobMiss,
		FlushErrors: s.flushErrs,
	}
	s.mu.Unlock()
	if t := hits + misses; t > 0 {
		cm.HitRate = float64(hits) / float64(t)
	}
	if t := cm.LastJobHits + cm.LastJobMiss; t > 0 {
		cm.LastJobRate = float64(cm.LastJobHits) / float64(t)
	}
	if st := s.cache.Store(); st != nil {
		ss := st.Stats()
		cm.Store = &ss
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&Metrics{
		Queue:   s.queue.Stats(),
		Cache:   cm,
		Racing:  s.race.Snapshot(),
		Runtime: runtimeMetrics(),
		Search: SearchMetrics{
			Counters:         s.agg.Counters().Map(),
			SpanDrops:        s.agg.SpanDrops(),
			LatencySeconds:   s.agg.Latency(),
			QueueWaitSeconds: s.agg.QueueWait(),
		},
	})
}

// handlePromMetrics serves the Prometheus text exposition: queue and
// cache state, racing effectiveness, every engine-internal counter
// (zeros included, so a silent exporter is distinguishable from a quiet
// engine), job-latency and queue-wait histograms, and runtime gauges.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewPromWriter(w)

	qs := s.queue.Stats()
	pw.Gauge("isegend_queue_depth", "Jobs waiting in the bounded FIFO.",
		obs.Sample{Value: float64(qs.Depth)})
	pw.Gauge("isegend_queue_active_jobs", "Jobs currently running on queue workers.",
		obs.Sample{Value: float64(qs.Active)})
	pw.Counter("isegend_queue_accepted_total", "Jobs accepted by Submit.",
		obs.Sample{Value: float64(qs.Accepted)})
	pw.Counter("isegend_queue_rejected_total", "Submissions refused (queue full or closed).",
		obs.Sample{Value: float64(qs.Rejected)})
	pw.Counter("isegend_queue_completed_total", "Jobs that ran to completion.",
		obs.Sample{Value: float64(qs.Completed)})
	pw.Counter("isegend_queue_dropped_total", "Jobs abandoned while queued (cancel or shutdown).",
		obs.Sample{Value: float64(qs.Dropped)})
	pw.Counter("isegend_queue_panics_total", "Jobs that crashed (contained to the job).",
		obs.Sample{Value: float64(qs.Panics)})

	ready := float64(0)
	if s.storeReady.Load() && !s.queue.Saturated() {
		ready = 1
	}
	pw.Gauge("isegend_ready", "1 when the readiness probe would report 200.",
		obs.Sample{Value: ready})

	hits, misses := s.cache.Stats()
	s.mu.Lock()
	flushErrs := s.flushErrs
	s.mu.Unlock()
	pw.Counter("isegend_cache_hits_total", "Cut-costing cache hits.",
		obs.Sample{Value: float64(hits)})
	pw.Counter("isegend_cache_misses_total", "Cut-costing cache misses.",
		obs.Sample{Value: float64(misses)})
	pw.Counter("isegend_cache_flush_errors_total", "Failed post-job cache persistence attempts.",
		obs.Sample{Value: float64(flushErrs)})

	if st := s.cache.Store(); st != nil {
		ss := st.Stats()
		degraded := 0.0
		if ss.Degraded {
			degraded = 1
		}
		pw.Gauge("isegend_store_degraded", "1 while the store's write breaker is open (read-through degraded mode).",
			obs.Sample{Value: degraded})
		pw.Gauge("isegend_store_bytes", "Bytes of live cache entries on disk.",
			obs.Sample{Value: float64(ss.CurrentBytes)})
		pw.Counter("isegend_store_corrupt_total", "Entries quarantined after failing the header, checksum or decode.",
			obs.Sample{Value: float64(ss.Corrupt)})
		pw.Counter("isegend_store_write_errors_total", "Disk-touching store writes that failed.",
			obs.Sample{Value: float64(ss.WriteErrors)})
		pw.Counter("isegend_store_breaker_trips_total", "Write breaker openings.",
			obs.Sample{Value: float64(ss.BreakerTrips)})
		pw.Counter("isegend_store_probes_total", "Recovery probes attempted while degraded.",
			obs.Sample{Value: float64(ss.Probes)})
		pw.Counter("isegend_store_recoveries_total", "Breaker closings after a successful probe.",
			obs.Sample{Value: float64(ss.Recoveries)})
	}

	rm := s.race.Snapshot()
	pw.Counter("isegend_racing_jobs_total", "Racing jobs observed.",
		obs.Sample{Value: float64(rm.Jobs)})
	pw.Counter("isegend_racing_bound_raises_total", "Heuristic seeds that tightened the exact bound.",
		obs.Sample{Value: float64(rm.BoundRaises)})

	pw.CounterFamilies("isegend", s.agg.Counters())
	pw.Counter("isegend_span_drops_total", "Span-ring overwrites across completed jobs.",
		obs.Sample{Value: float64(s.agg.SpanDrops())})
	pw.HistogramFamily("isegend_job_duration_seconds",
		"Job run latency (queue wait excluded) by engine.", "engine", s.agg.Latency())
	pw.HistogramFamily("isegend_queue_wait_seconds",
		"Enqueue-to-run-start wait (tenant-budget holds included) by tenant.", "tenant", s.agg.QueueWait())

	rt := runtimeMetrics()
	pw.Gauge("isegend_goroutines", "Live goroutines.",
		obs.Sample{Value: float64(rt.Goroutines)})
	pw.Gauge("isegend_heap_alloc_bytes", "Bytes of live heap objects.",
		obs.Sample{Value: float64(rt.HeapAllocBytes)})
	pw.Gauge("isegend_heap_sys_bytes", "Heap memory obtained from the OS.",
		obs.Sample{Value: float64(rt.HeapSysBytes)})
	pw.Gauge("isegend_heap_objects", "Live heap object count.",
		obs.Sample{Value: float64(rt.HeapObjects)})
	pw.Counter("isegend_gc_cycles_total", "Completed GC cycles.",
		obs.Sample{Value: float64(rt.NumGC)})
}
