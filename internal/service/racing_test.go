package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/kernels"
)

// splitRaceStream separates a racing NDJSON stream into its timing-
// dependent frontier records and the deterministic rest (block records and
// summary), preserving order within each.
func splitRaceStream(t *testing.T, stream []byte) (frontiers []RaceFrontierRecord, rest [][]byte) {
	t.Helper()
	for _, line := range bytes.Split(bytes.TrimSpace(stream), []byte("\n")) {
		var probe struct {
			Type  string `json:"type"`
			Stage string `json:"stage"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("unparsable record %s: %v", line, err)
		}
		if probe.Type == "frontier" && probe.Stage != "" {
			var fr RaceFrontierRecord
			if err := json.Unmarshal(line, &fr); err != nil {
				t.Fatal(err)
			}
			frontiers = append(frontiers, fr)
			continue
		}
		rest = append(rest, line)
	}
	return frontiers, rest
}

// TestServiceRacingStream pins the racing wire contract end to end: the
// served ?algo=racing stream minus its frontier records is bit-identical
// to algo=exact's block records (the summary differing only in the algo
// name), and the frontier records themselves are well-formed — per-block
// merit-monotone, each raced block closing with an "optimal" record whose
// merit matches the block's final selections.
func TestServiceRacingStream(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	exactParams := DefaultParams()
	exactParams.Algo = "exact"
	wantExact := offlineNDJSON(t, dfg, exactParams)

	status, got := postSelect(t, ts, dfg, "?algo=racing")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	frontiers, rest := splitRaceStream(t, got)

	// Deterministic part: block records identical to exact's, summary
	// identical up to the algo name.
	wantLines := bytes.Split(bytes.TrimSpace(wantExact), []byte("\n"))
	if len(rest) != len(wantLines) {
		t.Fatalf("%d non-frontier records, exact stream has %d", len(rest), len(wantLines))
	}
	for i := 0; i < len(rest)-1; i++ {
		if !bytes.Equal(rest[i], wantLines[i]) {
			t.Fatalf("block record %d diverged from exact\nracing: %s\nexact:  %s", i, rest[i], wantLines[i])
		}
	}
	var raceSum, exactSum Summary
	if err := json.Unmarshal(rest[len(rest)-1], &raceSum); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantLines[len(wantLines)-1], &exactSum); err != nil {
		t.Fatal(err)
	}
	if raceSum.Algo != "racing" || exactSum.Algo != "exact" {
		t.Fatalf("summary algos: %q racing stream, %q exact stream", raceSum.Algo, exactSum.Algo)
	}
	raceSum.Algo = exactSum.Algo
	if raceSum != exactSum {
		t.Fatalf("racing summary %+v != exact summary %+v (modulo algo)", raceSum, exactSum)
	}

	// Timing-dependent part: well-formed, merit-monotone per block, each
	// raced block closed by exactly one optimal record.
	lastMerit := map[int]float64{}
	optimal := map[int]*RaceFrontierRecord{}
	for i := range frontiers {
		fr := &frontiers[i]
		if optimal[fr.Block] != nil {
			t.Fatalf("block %d: record after its optimal record", fr.Block)
		}
		switch fr.Stage {
		case "anytime":
			if fr.Merit <= lastMerit[fr.Block] && lastMerit[fr.Block] > 0 {
				t.Fatalf("block %d: anytime merit %v does not improve on %v", fr.Block, fr.Merit, lastMerit[fr.Block])
			}
			if len(fr.Cuts) == 0 {
				t.Fatalf("block %d: anytime record with no cuts", fr.Block)
			}
		case "optimal":
			optimal[fr.Block] = fr
		default:
			t.Fatalf("block %d: unknown stage %q", fr.Block, fr.Stage)
		}
		lastMerit[fr.Block] = fr.Merit
	}
	// Every in-limit block must have been raced to optimality; its record's
	// merit must equal the block's summed selection merits.
	for i, line := range wantLines[:len(wantLines)-1] {
		var br BlockResult
		if err := json.Unmarshal(line, &br); err != nil {
			t.Fatal(err)
		}
		if br.Skipped != "" {
			if optimal[i] != nil || lastMerit[i] != 0 {
				t.Fatalf("skipped block %d has frontier records", i)
			}
			continue
		}
		opt := optimal[i]
		if opt == nil {
			t.Fatalf("undeadlined racing left block %d without an optimal record", i)
		}
		sum := 0.0
		for _, sel := range br.Selections {
			sum += sel.Merit
		}
		if opt.Merit != sum {
			t.Fatalf("block %d: optimal record merit %v != summed selection merit %v", i, opt.Merit, sum)
		}
	}
}

// TestServiceDeadlineParam pins the query-level deadline contract: racing
// accepts a Go duration (the stream stays well-formed whichever racer the
// deadline leaves standing), every other engine rejects it, and malformed
// or negative durations are 400s.
func TestServiceDeadlineParam(t *testing.T) {
	dfg := kernelDFG(t, kernels.Conven00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postSelect(t, ts, dfg, "?algo=racing&deadline=150ms")
	if status != http.StatusOK {
		t.Fatalf("racing with deadline: status %d: %s", status, body)
	}
	_, rest := splitRaceStream(t, body)
	var sum Summary
	if err := json.Unmarshal(rest[len(rest)-1], &sum); err != nil || sum.Type != "summary" {
		t.Fatalf("deadlined stream did not end in a summary: %s (err %v)", rest[len(rest)-1], err)
	}

	for query, wantSub := range map[string]string{
		"?algo=exact&deadline=100ms": "only read by algo",
		"?algo=racing&deadline=-5s":  "non-negative",
		"?algo=racing&deadline=soon": "bad deadline",
	} {
		status, body := postSelect(t, ts, dfg, query)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", query, status)
		}
		if !strings.Contains(string(body), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", query, body, wantSub)
		}
	}
}

// TestServiceMetricsRacingSection pins the /v1/metrics extension: the
// racing section exists with its full schema from the first scrape
// (all-zero), then fills in after racing and exact jobs — seeded and
// unseeded explored-node counts accumulating on their own axes.
func TestServiceMetricsRacingSection(t *testing.T) {
	dfg := kernelDFG(t, kernels.Conven00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Schema compatibility: the new section must not displace the existing
	// document, and must carry every documented key even before any job.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"queue", "cache", "racing"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/v1/metrics lacks %q section: %v", key, doc)
		}
	}
	var racing map[string]json.RawMessage
	if err := json.Unmarshal(doc["racing"], &racing); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs", "last_seed_bound", "bound_raises", "explored_seeded", "explored_unseeded"} {
		if _, ok := racing[key]; !ok {
			t.Fatalf("racing section lacks %q: %s", key, doc["racing"])
		}
	}

	before := fetchMetrics(t, ts)
	if before.Racing.Jobs != 0 || before.Racing.ExploredSeeded != 0 || before.Racing.ExploredUnseeded != 0 {
		t.Fatalf("racing counters non-zero before any job: %+v", before.Racing)
	}

	if status, body := postSelect(t, ts, dfg, "?algo=racing"); status != http.StatusOK {
		t.Fatalf("racing job: status %d: %s", status, body)
	}
	afterRacing := fetchMetrics(t, ts)
	if afterRacing.Racing.Jobs != 1 {
		t.Fatalf("racing jobs = %d after one racing job", afterRacing.Racing.Jobs)
	}
	if afterRacing.Racing.ExploredSeeded <= 0 {
		t.Fatalf("explored_seeded = %d after a racing job", afterRacing.Racing.ExploredSeeded)
	}
	if afterRacing.Racing.ExploredUnseeded != 0 {
		t.Fatalf("explored_unseeded = %d moved by a racing job", afterRacing.Racing.ExploredUnseeded)
	}

	if status, body := postSelect(t, ts, dfg, "?algo=exact"); status != http.StatusOK {
		t.Fatalf("exact job: status %d: %s", status, body)
	}
	afterExact := fetchMetrics(t, ts)
	if afterExact.Racing.ExploredUnseeded <= 0 {
		t.Fatalf("explored_unseeded = %d after an exact job", afterExact.Racing.ExploredUnseeded)
	}
	if afterExact.Racing.Jobs != 1 {
		t.Fatalf("exact job changed the racing job count: %d", afterExact.Racing.Jobs)
	}
	// The headline claim, measured over the same input: the seeded proof
	// explores no more of the tree than the unseeded one.
	if afterExact.Racing.ExploredSeeded > afterExact.Racing.ExploredUnseeded {
		t.Fatalf("seeded explored %d > unseeded %d on the same input",
			afterExact.Racing.ExploredSeeded, afterExact.Racing.ExploredUnseeded)
	}
}
