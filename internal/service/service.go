// Package service is the serving layer over the unified search engine:
// it turns the one-shot ISE-selection flow into jobs a long-lived daemon
// (cmd/isegend) executes — bounded FIFO queueing with per-tenant worker
// budgets (queue.go), HTTP upload/streaming endpoints (server.go), and a
// persistent cut-costing cache shared across uploads and restarts
// (search.NewPersistentCostCache).
//
// The wire contract is deterministic: a job's NDJSON stream — one
// BlockResult record per basic block in ascending block order, then one
// Summary record — is bit-identical to what `cmd/isegen -json` produces
// offline for the same input and parameters, for every worker count and
// cache state. Run is that single shared execution path; both the daemon
// and the offline tool call it, so served and offline results are always
// diffable. Nothing nondeterministic (timing, cache statistics, tenant
// identity) appears in the stream; that lives on the metrics endpoint.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	isegen "repro"
	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/search"
)

// defaultModel is the one latency model every job runs under. Sharing the
// pointer (rather than minting one per job) keeps the cost cache's
// pointer-keyed fast path and fingerprint memo effective across jobs; the
// values are identical either way, so results are unaffected.
var defaultModel = latency.Default()

// Params selects the algorithm and constraints of one job. The zero value
// is not valid; start from DefaultParams.
type Params struct {
	// Algo is a search-engine registry name ("isegen", "exact",
	// "iterative", "genetic"). "isegen" runs the paper's application-
	// level greedy flow; the baselines run per block.
	Algo string `json:"algo"`
	// MaxIn and MaxOut are the register-file port constraints.
	MaxIn  int `json:"max_in"`
	MaxOut int `json:"max_out"`
	// NISE is the AFU budget. For per-block baselines it applies per
	// block, as in the paper's Figure 4 protocol.
	NISE int `json:"nise"`
	// Seed makes the genetic baseline repeatable.
	Seed int64 `json:"seed"`
	// Workers bounds the job's worker pool (0 = one per CPU core).
	// Results are bit-identical for every value.
	Workers int `json:"workers"`
	// Reuse enables reuse-aware scoring and instance claiming ("isegen"
	// only; baselines count each cut once).
	Reuse bool `json:"reuse"`
}

// DefaultParams returns the paper's main configuration: ISEGEN with reuse,
// I/O (4,2), 4 AFUs.
func DefaultParams() Params {
	return Params{Algo: "isegen", MaxIn: 4, MaxOut: 2, NISE: 4, Seed: 1, Reuse: true}
}

// Validate rejects parameter combinations no engine can run.
func (p Params) Validate() error {
	if _, err := search.New(p.Algo, nil); err != nil {
		return err
	}
	if p.MaxIn < 1 || p.MaxOut < 1 || p.NISE < 1 {
		return fmt.Errorf("service: in/out/nise must be positive (got %d/%d/%d)", p.MaxIn, p.MaxOut, p.NISE)
	}
	return nil
}

// Instance is one claimed occurrence of an ISE.
type Instance struct {
	Block int   `json:"block"`
	Nodes []int `json:"nodes"`
}

// Selection is one identified ISE in the result stream. ISE numbers are
// global (1-based) in selection order, so offline and served runs are
// diffable line by line.
type Selection struct {
	ISE       int        `json:"ise"`
	Nodes     []int      `json:"nodes"`
	NumIn     int        `json:"num_in"`
	NumOut    int        `json:"num_out"`
	SWLat     int        `json:"sw_lat"`
	HWCycles  int        `json:"hw_cycles"`
	Merit     float64    `json:"merit"`
	Instances []Instance `json:"instances"`
}

// BlockResult is one NDJSON record: every selection whose cut was
// identified in this block (instances may span other blocks). Exactly one
// record is emitted per block, in ascending block order, including blocks
// with no selections — the stream shape is a pure function of the input.
type BlockResult struct {
	Type  string `json:"type"` // "block"
	Block int    `json:"block"`
	Name  string `json:"name"`
	// Hash is the canonical content hash of the block (dfgio.BlockHash),
	// the key under which its cut costings persist.
	Hash string `json:"hash"`
	// Skipped explains why a per-block engine did not run on this block
	// (e.g. it exceeds the engine's node limit); empty otherwise.
	Skipped    string      `json:"skipped,omitempty"`
	Selections []Selection `json:"selections"`
}

// Summary is the final NDJSON record: the whole-application quality
// report. It deliberately carries no timing or cache statistics — those
// are nondeterministic and live on the metrics endpoint instead.
type Summary struct {
	Type         string  `json:"type"` // "summary"
	Algo         string  `json:"algo"`
	Blocks       int     `json:"blocks"`
	ISEs         int     `json:"ises"`
	Instances    int     `json:"instances"`
	Speedup      float64 `json:"speedup"`
	Coverage     float64 `json:"coverage"`
	StaticBefore int     `json:"static_before"`
	StaticAfter  int     `json:"static_after"`
	EnergyRatio  float64 `json:"energy_ratio"`
}

// ErrorRecord terminates a stream that failed mid-job (the HTTP status is
// already committed by then).
type ErrorRecord struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// NDJSONEmitter returns an emit function writing one JSON record per line
// to w, the encoding both the daemon and `cmd/isegen -json` use.
func NDJSONEmitter(w io.Writer) func(v any) error {
	enc := json.NewEncoder(w)
	return func(v any) error { return enc.Encode(v) }
}

// Run executes one selection job over the application and emits the
// deterministic result stream: one *BlockResult per block in ascending
// block order, then one *Summary. The per-block baselines stream each
// block's record as soon as the block completes (held back only as needed
// to preserve order); the application-level ISEGEN flow emits after its
// greedy drive finishes, since every round depends on the previous one.
// Cancellation aborts the search and returns ctx.Err(); emit errors
// (client disconnects) abort the fan-out and are returned as-is.
func Run(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Algo == "isegen" {
		return runApplication(ctx, app, p, cache, emit)
	}
	return runPerBlock(ctx, app, p, cache, emit)
}

// runApplication is the paper's flow: the application-level greedy drive
// (reuse-aware when p.Reuse), then grouping of the selections by block.
func runApplication(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.Workers = p.MaxIn, p.MaxOut, p.NISE, p.Workers
	cfg.Model = defaultModel

	var sels []isegen.Selection
	if p.Reuse {
		res, err := isegen.GenerateContext(ctx, app, cfg, cache)
		if err != nil {
			return err
		}
		sels = res.Selections
	} else {
		cuts, err := isegen.GenerateCutsOnlyContext(ctx, app, cfg, cache)
		if err != nil {
			return err
		}
		sels = SingleInstanceSelections(app, cuts)
	}

	blockIdx := blockIndex(app)
	perBlock := make([][]Selection, len(app.Blocks))
	for i, sel := range sels {
		bi := blockIdx[sel.Cut.Block]
		perBlock[bi] = append(perBlock[bi], toSelection(i+1, sel))
	}
	for bi, blk := range app.Blocks {
		if err := emit(blockResult(bi, blk, "", perBlock[bi])); err != nil {
			return err
		}
	}
	return emitSummary(app, p, sels, emit)
}

// runPerBlock fans a per-block engine out over the blocks on the job's
// worker pool and streams each block's record as soon as it — and all
// earlier blocks — completed. Blocks beyond the engine's node limit are
// skipped (with a note in the record) rather than failing the job, so one
// oversized block doesn't poison an application sweep.
func runPerBlock(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	eng, err := search.New(p.Algo, cache)
	if err != nil {
		return err
	}
	if ga, ok := eng.(interface{ SetSeed(int64) }); ok {
		ga.SetSeed(p.Seed)
	}
	obj := search.Merit(defaultModel)
	lim := &search.Limits{
		MaxIn: p.MaxIn, MaxOut: p.MaxOut, NISE: p.NISE,
		NodeLimit: search.DefaultNodeLimit(p.Algo), Budget: search.DefaultBudget,
		Workers: 1, // parallelism lives on the block axis here
	}

	type blockOut struct {
		cuts    []*core.Cut
		skipped string
		err     error
	}
	n := len(app.Blocks)
	outs := make([]blockOut, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	runner := &search.Runner{Workers: p.Workers, Cache: cache}
	fanErr := make(chan error, 1)
	go func() {
		// The fan-out runs off the queue worker's goroutine, outside its
		// panic recovery; convert a panic into a job error and cancel so
		// the emitter below unblocks instead of waiting on a ready
		// channel that will never close.
		defer func() {
			if r := recover(); r != nil {
				fanErr <- fmt.Errorf("service: job panicked: %v", r)
				cancel()
			}
		}()
		fanErr <- runner.ForEachContext(ictx, n, func(i int) {
			defer close(ready[i])
			defer func() {
				// An engine panic would otherwise leave outs[i] looking
				// like a clean empty block; record the failure for the
				// emitter, then re-raise so containment still applies.
				if r := recover(); r != nil {
					outs[i].err = fmt.Errorf("service: engine panicked: %v", r)
					panic(r)
				}
			}()
			blk := app.Blocks[i]
			if lim.NodeLimit > 0 && blk.N() > lim.NodeLimit {
				outs[i].skipped = fmt.Sprintf("block exceeds %s engine node limit (%d > %d)", p.Algo, blk.N(), lim.NodeLimit)
				return
			}
			outs[i].cuts, _, outs[i].err = eng.Run(blk, obj, lim)
		})
	}()

	var sels []isegen.Selection
	ise := 0
	for bi := 0; bi < n; bi++ {
		select {
		case <-ready[bi]:
		case <-ictx.Done():
			if err := <-fanErr; err != nil && ctx.Err() == nil {
				return err // fan-out panic, not a caller cancellation
			}
			return ictx.Err()
		}
		out := outs[bi]
		if out.err != nil {
			cancel()
			<-fanErr
			return fmt.Errorf("block %d (%s): %w", bi, app.Blocks[bi].Name, out.err)
		}
		recSels := make([]Selection, 0, len(out.cuts))
		for _, c := range out.cuts {
			ise++
			sel := isegen.Selection{Cut: c, Instances: []isegen.Instance{{BlockIdx: bi, Nodes: c.Nodes}}}
			sels = append(sels, sel)
			recSels = append(recSels, toSelection(ise, sel))
		}
		if err := emit(blockResult(bi, app.Blocks[bi], out.skipped, recSels)); err != nil {
			cancel()
			<-fanErr
			return err
		}
	}
	if err := <-fanErr; err != nil {
		return err
	}
	return emitSummary(app, p, sels, emit)
}

func emitSummary(app *ir.Application, p Params, sels []isegen.Selection, emit func(v any) error) error {
	rep, err := isegen.Evaluate(app, defaultModel, sels)
	if err != nil {
		return err
	}
	instances := 0
	for _, sel := range sels {
		instances += len(sel.Instances)
	}
	// A valid .dfg may have zero dynamic weight (all freq 0), making the
	// ratios 0/0; encoding/json rejects NaN/Inf, so degenerate ratios
	// are reported as 0 rather than failing the stream.
	return emit(&Summary{
		Type:         "summary",
		Algo:         p.Algo,
		Blocks:       len(app.Blocks),
		ISEs:         len(sels),
		Instances:    instances,
		Speedup:      finiteOrZero(rep.Speedup),
		Coverage:     finiteOrZero(rep.Coverage),
		StaticBefore: rep.StaticBefore,
		StaticAfter:  rep.StaticAfter,
		EnergyRatio:  finiteOrZero(rep.EnergyAfter / rep.EnergyBefore),
	})
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func blockResult(bi int, blk *ir.Block, skipped string, sels []Selection) *BlockResult {
	if sels == nil {
		sels = []Selection{}
	}
	return &BlockResult{
		Type: "block", Block: bi, Name: blk.Name,
		Hash: dfgio.BlockHash(blk), Skipped: skipped, Selections: sels,
	}
}

func toSelection(ise int, sel isegen.Selection) Selection {
	c := sel.Cut
	insts := make([]Instance, 0, len(sel.Instances))
	for _, inst := range sel.Instances {
		insts = append(insts, Instance{Block: inst.BlockIdx, Nodes: inst.Nodes.Elems()})
	}
	return Selection{
		ISE: ise, Nodes: c.Nodes.Elems(),
		NumIn: c.NumIn, NumOut: c.NumOut,
		SWLat: c.SWLat, HWCycles: c.HWCyclesInt(), Merit: c.Merit(),
		Instances: insts,
	}
}

// SingleInstanceSelections converts cuts into Selections counting each
// cut once in its own block (no reuse claiming) — the shape the noreuse
// flows and the per-block baselines share. Exported so cmd/isegen's
// human-readable path uses the same conversion as the result stream.
func SingleInstanceSelections(app *ir.Application, cuts []*core.Cut) []isegen.Selection {
	blockIdx := blockIndex(app)
	sels := make([]isegen.Selection, 0, len(cuts))
	for _, c := range cuts {
		sels = append(sels, isegen.Selection{
			Cut:       c,
			Instances: []isegen.Instance{{BlockIdx: blockIdx[c.Block], Nodes: c.Nodes}},
		})
	}
	return sels
}

func blockIndex(app *ir.Application) map[*ir.Block]int {
	m := make(map[*ir.Block]int, len(app.Blocks))
	for i, b := range app.Blocks {
		m[b] = i
	}
	return m
}
