// Package service is the serving layer over the unified search engine:
// it turns the one-shot ISE-selection flow into jobs a long-lived daemon
// (cmd/isegend) executes — bounded FIFO queueing with per-tenant worker
// budgets (queue.go), HTTP upload/streaming endpoints (server.go), and a
// persistent cut-costing cache shared across uploads and restarts
// (search.NewPersistentCostCache).
//
// The wire contract is deterministic: a job's NDJSON stream — one
// BlockResult record per basic block in ascending block order, then one
// Summary record — is bit-identical to what `cmd/isegen -json` produces
// offline for the same input and parameters, for every worker count and
// cache state. Run is that single shared execution path; both the daemon
// and the offline tool call it, so served and offline results are always
// diffable. Nothing nondeterministic (timing, cache statistics, tenant
// identity) appears in the stream; that lives on the metrics endpoint.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	isegen "repro"
	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/search"
)

// defaultModel is the one latency model every job runs under. Sharing the
// pointer (rather than minting one per job) keeps the cost cache's
// pointer-keyed fast path and fingerprint memo effective across jobs; the
// values are identical either way, so results are unaffected.
var defaultModel = latency.Default()

// Params selects the algorithm and constraints of one job. The zero value
// is not valid; start from DefaultParams.
type Params struct {
	// Algo is a search-engine registry name ("isegen", "exact",
	// "iterative", "genetic", "racing"). "isegen" runs the paper's
	// application-level greedy flow; the baselines run per block.
	// "racing" races K-L and the genetic baseline against the exact
	// engine per block, streaming anytime/optimal frontier records
	// (see RaceFrontierRecord).
	Algo string `json:"algo"`
	// MaxIn and MaxOut are the register-file port constraints.
	MaxIn  int `json:"max_in"`
	MaxOut int `json:"max_out"`
	// NISE is the AFU budget. For per-block baselines it applies per
	// block, as in the paper's Figure 4 protocol.
	NISE int `json:"nise"`
	// Seed makes the genetic baseline repeatable.
	Seed int64 `json:"seed"`
	// Workers bounds the job's worker pool (0 = one per CPU core).
	// Results are bit-identical for every value.
	Workers int `json:"workers"`
	// SubtreeWorkers bounds the in-block branch-and-bound pool of the
	// exact engines ("exact", "iterative" only): w > 1 splits each
	// block's decision tree into subtree tasks pruned against a shared
	// best-bound, so one hot block no longer pins the job to a single
	// core. 0 and 1 keep the single-threaded search; -1 selects one
	// worker per CPU core. Runs that complete within the search budget
	// are bit-identical for every value (a run near the budget boundary
	// may exhaust the shared budget only in parallel — see
	// exact.Options.Budget).
	SubtreeWorkers int `json:"subtree_workers,omitempty"`
	// SplitDepth is the decision depth at which the exact engines split
	// the tree (0 = automatic; exact engines only). Results are
	// identical for every depth.
	SplitDepth int `json:"split_depth,omitempty"`
	// MaxFrontier bounds the Pareto frontier accumulated under
	// objective "pareto" (0 = unbounded): the lowest-ranked point is
	// evicted deterministically when the bound would be exceeded, so a
	// huge application cannot grow the frontier record without bound.
	MaxFrontier int `json:"max_frontier,omitempty"`
	// Reuse enables reuse-aware scoring and instance claiming ("isegen"
	// only; baselines count each cut once).
	Reuse bool `json:"reuse"`
	// Objective selects the scoring objective by registry name
	// ("merit", "reuse", "area", "energy", "latency", "class",
	// "pareto"). Empty keeps the legacy default — reuse-aware scoring
	// when Reuse, merit otherwise — and the unextended stream schema, so
	// pre-objective clients see bit-identical output. An explicit
	// objective extends each Selection with its objective vector;
	// "pareto" additionally emits a "frontier" record. Engines other
	// than "isegen" optimize merit internally and accept only "merit".
	Objective string `json:"objective,omitempty"`
	// GatePenalty is the "area" objective's merit discount per NAND2
	// gate (0 selects the default).
	GatePenalty float64 `json:"gate_penalty,omitempty"`
	// LatencyBudget is the "latency" objective's bound on AFU cycles
	// per ISE (required positive for that objective).
	LatencyBudget int `json:"latency_budget,omitempty"`
	// ClassWeights maps block classes ("memory", "compute") to merit
	// multipliers for the "class" objective.
	ClassWeights map[string]float64 `json:"class_weights,omitempty"`
	// Deadline bounds each block's race wall-clock time ("racing" only;
	// 0 = none; nanoseconds in JSON, a Go duration string in the query
	// parameter and CLI flag). On expiry the racer cancels the in-flight
	// searches and the block record carries the best anytime answer
	// found so far instead of the proven optimum — so a deadlined
	// stream's selections are timing-dependent, unlike every other
	// stream this package emits.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// DefaultParams returns the paper's main configuration: ISEGEN with reuse,
// I/O (4,2), 4 AFUs.
func DefaultParams() Params {
	return Params{Algo: "isegen", MaxIn: 4, MaxOut: 2, NISE: 4, Seed: 1, Reuse: true}
}

// Validate rejects parameter combinations no engine can run — including
// objective/engine pairs the merit-only baselines cannot honor, so the
// mismatch surfaces as one clear error up front instead of deep inside an
// engine's objective check.
func (p Params) Validate() error {
	if _, err := search.New(p.Algo, nil); err != nil {
		return err
	}
	if p.MaxIn < 1 || p.MaxOut < 1 || p.NISE < 1 {
		return fmt.Errorf("service: in/out/nise must be positive (got %d/%d/%d)", p.MaxIn, p.MaxOut, p.NISE)
	}
	if p.GatePenalty < 0 || math.IsNaN(p.GatePenalty) || math.IsInf(p.GatePenalty, 0) {
		return fmt.Errorf("service: gate_penalty must be finite and non-negative (got %g)", p.GatePenalty)
	}
	if p.Objective != "" && !slices.Contains(search.ObjectiveNames(), p.Objective) {
		return fmt.Errorf("service: unknown objective %q (have %v)", p.Objective, search.ObjectiveNames())
	}
	if p.Objective != "" && p.Algo != "isegen" && p.Objective != "merit" {
		return fmt.Errorf(
			"service: engine %q optimizes merit internally and cannot honor objective %q; valid pairs: objective \"merit\" with any algo (%v), every other objective (%v) with algo \"isegen\" only",
			p.Algo, p.Objective, search.Names(), search.ObjectiveNames())
	}
	if p.Objective == "latency" && p.LatencyBudget <= 0 {
		return fmt.Errorf("service: objective \"latency\" needs a positive latency_budget (got %d)", p.LatencyBudget)
	}
	// An objective knob set for an objective that does not read it would
	// be silently dropped; reject the mismatch instead, symmetrically
	// with the objective/engine pairing above.
	if p.SubtreeWorkers < -1 {
		return fmt.Errorf("service: subtree_workers must be >= -1 (got %d; -1 = one per CPU core)", p.SubtreeWorkers)
	}
	if p.SplitDepth < 0 {
		return fmt.Errorf("service: split_depth must be non-negative (got %d)", p.SplitDepth)
	}
	if p.MaxFrontier < 0 {
		return fmt.Errorf("service: max_frontier must be non-negative (got %d)", p.MaxFrontier)
	}
	if (p.SubtreeWorkers != 0 || p.SplitDepth != 0) && p.Algo != "exact" && p.Algo != "iterative" && p.Algo != "racing" {
		return fmt.Errorf("service: subtree_workers/split_depth are only read by the exact engines (\"exact\", \"iterative\", \"racing\"; algo is %q)", p.Algo)
	}
	if p.Deadline < 0 {
		return fmt.Errorf("service: deadline must be non-negative (got %v)", p.Deadline)
	}
	if p.Deadline != 0 && p.Algo != "racing" {
		return fmt.Errorf("service: deadline is only read by algo \"racing\" (algo is %q); the other engines run to completion", p.Algo)
	}
	if p.MaxFrontier != 0 && p.Objective != "pareto" {
		return fmt.Errorf("service: max_frontier is only read by objective \"pareto\" (objective is %q)", orDefault(p.Objective))
	}
	if p.GatePenalty != 0 && p.Objective != "area" {
		return fmt.Errorf("service: gate_penalty is only read by objective \"area\" (objective is %q)", orDefault(p.Objective))
	}
	if p.LatencyBudget != 0 && p.Objective != "latency" {
		return fmt.Errorf("service: latency_budget is only read by objective \"latency\" (objective is %q)", orDefault(p.Objective))
	}
	if len(p.ClassWeights) != 0 && p.Objective != "class" {
		return fmt.Errorf("service: class_weights are only read by objective \"class\" (objective is %q)", orDefault(p.Objective))
	}
	return nil
}

// orDefault names the empty objective for error messages.
func orDefault(objective string) string {
	if objective == "" {
		return "default"
	}
	return objective
}

// ObjectiveParams assembles the registry construction parameters from the
// job params — the one conversion both the serving layer and the CLI use,
// so a future objective knob cannot reach one surface and not the other.
func (p Params) ObjectiveParams() isegen.ObjectiveParams {
	return isegen.ObjectiveParams{
		GatePenalty:   p.GatePenalty,
		LatencyBudget: p.LatencyBudget,
		ClassWeights:  p.ClassWeights,
		MaxFrontier:   p.MaxFrontier,
	}
}

// blockClasses are the classes the default classifier (search.BlockClass)
// can produce — the only classifier reachable through the CLI and the
// server, so any other class name in a weight list is a typo that would
// silently weigh nothing.
var blockClasses = []string{"compute", "memory"}

// ParseClassWeights parses the "class=weight,class=weight" form the CLI
// flag and the class_weights query parameter share (e.g.
// "memory=0.5,compute=2"). Class names must be ones the default block
// classifier produces (see blockClasses). An empty string yields a nil
// map.
func ParseClassWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		name, val = strings.TrimSpace(name), strings.TrimSpace(val)
		if !ok || name == "" {
			return nil, fmt.Errorf("service: class weight %q not in class=weight form", part)
		}
		if !slices.Contains(blockClasses, name) {
			return nil, fmt.Errorf("service: unknown block class %q (have %v)", name, blockClasses)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("service: class weight %q needs a finite non-negative number (got %q)", name, val)
		}
		out[name] = w
	}
	return out, nil
}

// Instance is one claimed occurrence of an ISE.
type Instance struct {
	Block int   `json:"block"`
	Nodes []int `json:"nodes"`
}

// ObjectiveVector is a cut's score on every objective axis in the wire
// schema: merit and energy are maximized, area (NAND2-equivalent gates) is
// minimized. It mirrors search.Vector.
type ObjectiveVector struct {
	Merit  float64 `json:"merit"`
	Area   float64 `json:"area"`
	Energy float64 `json:"energy"`
}

// Selection is one identified ISE in the result stream. ISE numbers are
// global (1-based) in selection order, so offline and served runs are
// diffable line by line.
type Selection struct {
	ISE       int        `json:"ise"`
	Nodes     []int      `json:"nodes"`
	NumIn     int        `json:"num_in"`
	NumOut    int        `json:"num_out"`
	SWLat     int        `json:"sw_lat"`
	HWCycles  int        `json:"hw_cycles"`
	Merit     float64    `json:"merit"`
	Instances []Instance `json:"instances"`
	// Objectives is the cut's objective vector, present only when the
	// job named an explicit objective (Params.Objective non-empty) — the
	// default stream is bit-identical to the pre-objective schema.
	Objectives *ObjectiveVector `json:"objectives,omitempty"`
}

// BlockResult is one NDJSON record: every selection whose cut was
// identified in this block (instances may span other blocks). Exactly one
// record is emitted per block, in ascending block order, including blocks
// with no selections — the stream shape is a pure function of the input.
type BlockResult struct {
	Type  string `json:"type"` // "block"
	Block int    `json:"block"`
	Name  string `json:"name"`
	// Hash is the canonical content hash of the block (dfgio.BlockHash),
	// the key under which its cut costings persist.
	Hash string `json:"hash"`
	// Skipped explains why a per-block engine did not run on this block
	// (e.g. it exceeds the engine's node limit); empty otherwise.
	Skipped    string      `json:"skipped,omitempty"`
	Selections []Selection `json:"selections"`
}

// Summary is the final NDJSON record: the whole-application quality
// report. It deliberately carries no timing or cache statistics — those
// are nondeterministic and live on the metrics endpoint instead.
type Summary struct {
	Type         string  `json:"type"` // "summary"
	Algo         string  `json:"algo"`
	Blocks       int     `json:"blocks"`
	ISEs         int     `json:"ises"`
	Instances    int     `json:"instances"`
	Speedup      float64 `json:"speedup"`
	Coverage     float64 `json:"coverage"`
	StaticBefore int     `json:"static_before"`
	StaticAfter  int     `json:"static_after"`
	EnergyRatio  float64 `json:"energy_ratio"`
}

// FrontierPoint is one non-dominated candidate in a "frontier" record.
type FrontierPoint struct {
	// Block is the index of the block the candidate was identified in.
	Block int `json:"block"`
	// Nodes is the candidate's node set.
	Nodes []int `json:"nodes"`
	// Objectives is the candidate's score on every axis.
	Objectives ObjectiveVector `json:"objectives"`
	// Selected marks candidates the drive actually picked; the rest are
	// the trade-offs it left on the table.
	Selected bool `json:"selected"`
}

// FrontierRecord is the NDJSON record emitted between the block records
// and the summary for multi-objective jobs (objective "pareto"): the
// cumulative Pareto frontier of the candidates the search examined, in
// deterministic order (best merit first, then smaller area, then higher
// energy). Streams of scalar-objective jobs never carry it, so the
// extension is backward-compatible.
type FrontierRecord struct {
	Type   string          `json:"type"` // "frontier"
	Points []FrontierPoint `json:"points"`
}

// RaceFrontierRecord is the NDJSON record the racing engine streams as its
// racers publish answers for a block: each heuristic answer marked
// "anytime" the moment it lands, then the exact search's proven answer
// marked "optimal". Records for one block are strictly merit-monotone, so
// a latency-sensitive consumer can act on the first record and only ever
// trade quality for time. Unlike every other record in the stream, WHEN
// (and, under a deadline, whether) each record appears is timing-dependent
// — the deterministic wire contract covers the block records and the
// summary, which for undeadlined racing runs stay bit-identical to algo
// "exact". It shares the "frontier" type tag with FrontierRecord (both are
// trade-off surfaces); the "stage" field tells them apart.
type RaceFrontierRecord struct {
	Type  string `json:"type"`  // "frontier"
	Stage string `json:"stage"` // "anytime" | "optimal"
	// Engine is the racer that published ("ISEGEN" or "Exact").
	Engine string `json:"engine"`
	// Block is the index of the block being raced.
	Block int `json:"block"`
	// Merit is the summed merit of Cuts.
	Merit float64 `json:"merit"`
	// Cuts holds the published answer's node sets. The full costing
	// (I/O, latencies, instances) appears in the block's final record;
	// the in-flight record carries just enough to act on.
	Cuts [][]int `json:"cuts"`
}

// ErrorRecord terminates a stream that failed mid-job (the HTTP status is
// already committed by then).
type ErrorRecord struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// raceRecord converts one racing publication into its wire record.
func raceRecord(block int, ev search.RaceEvent) *RaceFrontierRecord {
	cuts := make([][]int, 0, len(ev.Cuts))
	for _, c := range ev.Cuts {
		cuts = append(cuts, c.Nodes.Elems())
	}
	return &RaceFrontierRecord{
		Type: "frontier", Stage: ev.Stage, Engine: ev.Engine,
		Block: block, Merit: ev.Merit, Cuts: cuts,
	}
}

// RaceCounters aggregates the racing engine's bound-seeding effectiveness
// across jobs for the metrics endpoint: what the heuristics seeded, how
// often they published, and how many search-tree nodes the exact engine explored with
// a seeded bound versus without one (the plain "exact"/"iterative" jobs) —
// the seeded count staying well below the unseeded one on comparable
// inputs is the racing speedup, measured.
type RaceCounters struct {
	mu               sync.Mutex
	jobs             int64
	lastSeedBound    float64
	boundRaises      int64
	exploredSeeded   int64
	exploredUnseeded int64
}

// observeRacing folds one completed racing job in.
func (rc *RaceCounters) observeRacing(seedBound float64, raises, explored int64) {
	rc.mu.Lock()
	rc.jobs++
	rc.lastSeedBound = seedBound
	rc.boundRaises += raises
	rc.exploredSeeded += explored
	rc.mu.Unlock()
}

// observeUnseeded folds one completed plain exact/iterative job in.
func (rc *RaceCounters) observeUnseeded(explored int64) {
	rc.mu.Lock()
	rc.exploredUnseeded += explored
	rc.mu.Unlock()
}

// Snapshot returns the counters as the metrics document section.
func (rc *RaceCounters) Snapshot() RacingMetrics {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return RacingMetrics{
		Jobs:             rc.jobs,
		LastSeedBound:    rc.lastSeedBound,
		BoundRaises:      rc.boundRaises,
		ExploredSeeded:   rc.exploredSeeded,
		ExploredUnseeded: rc.exploredUnseeded,
	}
}

// RacingMetrics is the "racing" section of the /v1/metrics document.
type RacingMetrics struct {
	// Jobs counts completed racing jobs.
	Jobs int64 `json:"jobs"`
	// LastSeedBound is the highest bound a heuristic racer published
	// during the most recently completed racing job (its best block's
	// summed merit).
	LastSeedBound float64 `json:"last_seed_bound"`
	// BoundRaises counts successful heuristic bound publications across
	// jobs.
	BoundRaises int64 `json:"bound_raises"`
	// ExploredSeeded / ExploredUnseeded are cumulative exact-engine
	// search-tree node counts with a heuristic-seeded bound (racing jobs)
	// versus without one (plain exact/iterative jobs).
	ExploredSeeded   int64 `json:"explored_seeded"`
	ExploredUnseeded int64 `json:"explored_unseeded"`
}

// raceCountersKey carries a *RaceCounters through the job context; the
// server installs its instance so Run's per-block fan-out can report
// without the wire contract or the Run signature changing.
type raceCountersKey struct{}

// WithRaceCounters returns a context carrying the counters.
func WithRaceCounters(ctx context.Context, rc *RaceCounters) context.Context {
	return context.WithValue(ctx, raceCountersKey{}, rc)
}

// raceCountersOf extracts the counters (nil when none installed — the
// offline CLI path).
func raceCountersOf(ctx context.Context) *RaceCounters {
	rc, _ := ctx.Value(raceCountersKey{}).(*RaceCounters)
	return rc
}

// NDJSONEmitter returns an emit function writing one JSON record per line
// to w, the encoding both the daemon and `cmd/isegen -json` use.
func NDJSONEmitter(w io.Writer) func(v any) error {
	enc := json.NewEncoder(w)
	return func(v any) error { return enc.Encode(v) }
}

// Run executes one selection job over the application and emits the
// deterministic result stream: one *BlockResult per block in ascending
// block order, then one *Summary. The per-block baselines stream each
// block's record as soon as the block completes (held back only as needed
// to preserve order); the application-level ISEGEN flow emits after its
// greedy drive finishes, since every round depends on the previous one.
// Algo "racing" additionally interleaves *RaceFrontierRecords as its
// racers publish — the one deliberately timing-dependent part of the
// stream; the block records and summary of an undeadlined racing run stay
// deterministic (and bit-identical in content to algo "exact").
// Cancellation aborts the search and returns ctx.Err(); emit errors
// (client disconnects) abort the fan-out and are returned as-is.
func Run(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Algo == "isegen" {
		return runApplication(ctx, app, p, cache, emit)
	}
	return runPerBlock(ctx, app, p, cache, emit)
}

// runApplication is the paper's flow: the application-level greedy drive
// (scored by p.Objective; reuse-aware claiming when p.Reuse), then
// grouping of the selections by block. An explicit objective extends each
// selection with its objective vector; "pareto" adds a frontier record.
func runApplication(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.Workers = p.MaxIn, p.MaxOut, p.NISE, p.Workers
	cfg.Model = defaultModel

	var sels []isegen.Selection
	var frontier *search.Frontier
	if p.Reuse {
		res, err := isegen.GenerateWithObjectiveContext(ctx, app, cfg, p.Objective, p.ObjectiveParams(), cache)
		if err != nil {
			return err
		}
		sels, frontier = res.Selections, res.Frontier
	} else {
		cuts, fr, err := isegen.GenerateCutsOnlyWithObjectiveContext(ctx, app, cfg, p.Objective, p.ObjectiveParams(), cache)
		if err != nil {
			return err
		}
		sels, frontier = SingleInstanceSelections(app, cuts), fr
	}

	blockIdx := blockIndex(app)
	perBlock := make([][]Selection, len(app.Blocks))
	for i, sel := range sels {
		bi := blockIdx[sel.Cut.Block]
		perBlock[bi] = append(perBlock[bi], toSelection(i+1, sel, p.Objective != ""))
	}
	for bi, blk := range app.Blocks {
		if err := emit(blockResult(bi, blk, "", perBlock[bi])); err != nil {
			return err
		}
	}
	if frontier != nil {
		if err := emit(frontierRecord(frontier)); err != nil {
			return err
		}
	}
	return emitSummary(app, p, sels, emit)
}

// runPerBlock fans a per-block engine out over the blocks on the job's
// worker pool and streams each block's record as soon as it — and all
// earlier blocks — completed. Blocks beyond the engine's node limit are
// skipped (with a note in the record) rather than failing the job, so one
// oversized block doesn't poison an application sweep.
//
// For algo "racing" the stream additionally carries RaceFrontierRecords,
// emitted the moment a racer publishes — concurrently with (and therefore
// interleaved nondeterministically between) the ordered block records; a
// mutex serializes the writes so every line stays a whole record.
func runPerBlock(ctx context.Context, app *ir.Application, p Params, cache *search.CostCache, emit func(v any) error) error {
	eng, err := search.New(p.Algo, cache)
	if err != nil {
		return err
	}
	if ga, ok := eng.(interface{ SetSeed(int64) }); ok {
		ga.SetSeed(p.Seed)
	}
	obj := search.Merit(defaultModel)
	lim := &search.Limits{
		MaxIn: p.MaxIn, MaxOut: p.MaxOut, NISE: p.NISE,
		NodeLimit: search.DefaultNodeLimit(p.Algo), Budget: search.DefaultBudget,
		Workers: 1, // K-L parallelism lives on the block axis here
		// In-block branch-and-bound fan-out for the exact engines:
		// orthogonal to the block axis, bit-identical results.
		SubtreeWorkers: p.SubtreeWorkers, SplitDepth: p.SplitDepth,
		Deadline: p.Deadline,
	}

	// Frontier records land mid-fan-out from engine goroutines while the
	// loop below emits block records; one mutex keeps the NDJSON lines
	// whole. A failed frontier write (client disconnect) cancels the job
	// and surfaces as the job error below.
	var emitMu sync.Mutex
	var raceEmitErr error
	syncEmit := func(v any) error {
		emitMu.Lock()
		defer emitMu.Unlock()
		return emit(v)
	}

	type blockOut struct {
		cuts    []*core.Cut
		stats   search.Stats
		skipped string
		err     error
	}
	n := len(app.Blocks)
	outs := make([]blockOut, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	runner := &search.Runner{Workers: p.Workers, Cache: cache}
	fanErr := make(chan error, 1)
	go func() {
		// The fan-out runs off the queue worker's goroutine, outside its
		// panic recovery; convert a panic into a job error and cancel so
		// the emitter below unblocks instead of waiting on a ready
		// channel that will never close.
		defer func() {
			if r := recover(); r != nil {
				fanErr <- fmt.Errorf("service: job panicked: %v", r)
				cancel()
			}
		}()
		fanErr <- runner.ForEachContext(ictx, n, func(i int) {
			defer close(ready[i])
			defer func() {
				// An engine panic would otherwise leave outs[i] looking
				// like a clean empty block; record the failure for the
				// emitter, then re-raise so containment still applies.
				if r := recover(); r != nil {
					outs[i].err = fmt.Errorf("service: engine panicked: %v", r)
					panic(r)
				}
			}()
			if ft := fault.FromContext(ictx).Check(fault.PointEngineBlock); ft.Firing() {
				// Error-shaped kinds fail the block (and thus the job);
				// Panic exercises the containment above; Stall parks the
				// worker until the deadline or disconnect cancels ictx.
				if err := ft.Error(); err != nil {
					outs[i].err = err
					return
				}
				ft.Apply(ictx)
			}
			blk := app.Blocks[i]
			if lim.NodeLimit > 0 && blk.N() > lim.NodeLimit {
				outs[i].skipped = fmt.Sprintf("block exceeds %s engine node limit (%d > %d)", p.Algo, blk.N(), lim.NodeLimit)
				return
			}
			blockEng := eng
			if _, ok := eng.(*search.Racing); ok {
				// The event callback needs the block index, so each block
				// races on its own (stateless, cheap) engine instance.
				blockEng = &search.Racing{Cache: cache, OnEvent: func(ev search.RaceEvent) {
					if err := syncEmit(raceRecord(i, ev)); err != nil {
						emitMu.Lock()
						if raceEmitErr == nil {
							raceEmitErr = err
						}
						emitMu.Unlock()
						cancel()
					}
				}}
			}
			// RunContext: a cancelled request (client disconnect,
			// shutdown) aborts the engine mid-block instead of waiting
			// for the block to finish.
			bctx, bsp := obs.StartSpan(ictx, obs.KindBlock, blk.Name)
			outs[i].cuts, outs[i].stats, outs[i].err = blockEng.RunContext(bctx, blk, obj, lim)
			bsp.End()
		})
	}()

	raceErr := func() error {
		emitMu.Lock()
		defer emitMu.Unlock()
		return raceEmitErr
	}
	var sels []isegen.Selection
	var jobSeed float64
	var jobRaises, jobExplored int64
	ise := 0
	for bi := 0; bi < n; bi++ {
		select {
		case <-ready[bi]:
		case <-ictx.Done():
			err := <-fanErr
			if re := raceErr(); re != nil {
				return re // a frontier write failed; that is the root cause
			}
			if err != nil && ctx.Err() == nil {
				return err // fan-out panic, not a caller cancellation
			}
			return ictx.Err()
		}
		out := outs[bi]
		if out.err != nil {
			cancel()
			<-fanErr
			return fmt.Errorf("block %d (%s): %w", bi, app.Blocks[bi].Name, out.err)
		}
		if out.stats.SeedBound > jobSeed {
			jobSeed = out.stats.SeedBound
		}
		jobRaises += out.stats.BoundRaises
		jobExplored += out.stats.Explored
		recSels := make([]Selection, 0, len(out.cuts))
		for _, c := range out.cuts {
			ise++
			sel := isegen.Selection{Cut: c, Instances: []isegen.Instance{{BlockIdx: bi, Nodes: c.Nodes}}}
			sels = append(sels, sel)
			recSels = append(recSels, toSelection(ise, sel, p.Objective != ""))
		}
		if err := syncEmit(blockResult(bi, app.Blocks[bi], out.skipped, recSels)); err != nil {
			cancel()
			<-fanErr
			return err
		}
	}
	if err := <-fanErr; err != nil {
		return err
	}
	if rc := raceCountersOf(ctx); rc != nil {
		switch p.Algo {
		case "racing":
			rc.observeRacing(jobSeed, jobRaises, jobExplored)
		case "exact", "iterative":
			rc.observeUnseeded(jobExplored)
		}
	}
	return emitSummary(app, p, sels, syncEmit)
}

func emitSummary(app *ir.Application, p Params, sels []isegen.Selection, emit func(v any) error) error {
	rep, err := isegen.Evaluate(app, defaultModel, sels)
	if err != nil {
		return err
	}
	instances := 0
	for _, sel := range sels {
		instances += len(sel.Instances)
	}
	// A valid .dfg may have zero dynamic weight (all freq 0), making the
	// ratios 0/0; encoding/json rejects NaN/Inf, so degenerate ratios
	// are reported as 0 rather than failing the stream.
	return emit(&Summary{
		Type:         "summary",
		Algo:         p.Algo,
		Blocks:       len(app.Blocks),
		ISEs:         len(sels),
		Instances:    instances,
		Speedup:      finiteOrZero(rep.Speedup),
		Coverage:     finiteOrZero(rep.Coverage),
		StaticBefore: rep.StaticBefore,
		StaticAfter:  rep.StaticAfter,
		EnergyRatio:  finiteOrZero(rep.EnergyAfter / rep.EnergyBefore),
	})
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func blockResult(bi int, blk *ir.Block, skipped string, sels []Selection) *BlockResult {
	if sels == nil {
		sels = []Selection{}
	}
	return &BlockResult{
		Type: "block", Block: bi, Name: blk.Name,
		Hash: dfgio.BlockHash(blk), Skipped: skipped, Selections: sels,
	}
}

// toSelection converts one selection into its wire record. withVector
// attaches the cut's objective vector — set exactly when the job named an
// explicit objective, so default streams keep the pre-objective schema.
func toSelection(ise int, sel isegen.Selection, withVector bool) Selection {
	c := sel.Cut
	insts := make([]Instance, 0, len(sel.Instances))
	for _, inst := range sel.Instances {
		insts = append(insts, Instance{Block: inst.BlockIdx, Nodes: inst.Nodes.Elems()})
	}
	out := Selection{
		ISE: ise, Nodes: c.Nodes.Elems(),
		NumIn: c.NumIn, NumOut: c.NumOut,
		SWLat: c.SWLat, HWCycles: c.HWCyclesInt(), Merit: c.Merit(),
		Instances: insts,
	}
	if withVector {
		v := toVector(search.CutVector(defaultModel, c))
		out.Objectives = &v
	}
	return out
}

func toVector(v search.Vector) ObjectiveVector {
	return ObjectiveVector{Merit: v.Merit, Area: v.Area, Energy: v.Energy}
}

// frontierRecord converts a run's Pareto frontier into its wire record,
// preserving the frontier's deterministic point order.
func frontierRecord(fr *search.Frontier) *FrontierRecord {
	points := make([]FrontierPoint, 0, fr.Len())
	for _, pt := range fr.Points() {
		points = append(points, FrontierPoint{
			Block:      pt.Block,
			Nodes:      pt.Cut.Nodes.Elems(),
			Objectives: toVector(pt.Vector),
			Selected:   pt.Selected,
		})
	}
	return &FrontierRecord{Type: "frontier", Points: points}
}

// SingleInstanceSelections converts cuts into Selections counting each
// cut once in its own block (no reuse claiming) — the shape the noreuse
// flows and the per-block baselines share. Exported so cmd/isegen's
// human-readable path uses the same conversion as the result stream.
func SingleInstanceSelections(app *ir.Application, cuts []*core.Cut) []isegen.Selection {
	blockIdx := blockIndex(app)
	sels := make([]isegen.Selection, 0, len(cuts))
	for _, c := range cuts {
		sels = append(sels, isegen.Selection{
			Cut:       c,
			Instances: []isegen.Instance{{BlockIdx: blockIdx[c.Block], Nodes: c.Nodes}},
		})
	}
	return sels
}

func blockIndex(app *ir.Application) map[*ir.Block]int {
	m := make(map[*ir.Block]int, len(app.Blocks))
	for i, b := range app.Blocks {
		m[b] = i
	}
	return m
}
