package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dfgio"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/search"
)

// kernelDFG serializes a kernel-suite application to its .dfg upload form.
func kernelDFG(t *testing.T, app *ir.Application) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dfgio.WriteApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// offlineNDJSON runs the job the way `cmd/isegen -json` does: Run over a
// freshly parsed application with a private cache, NDJSON to a buffer.
func offlineNDJSON(t *testing.T, dfg []byte, p Params) []byte {
	t.Helper()
	app, err := dfgio.ParseApplication("upload", bytes.NewReader(dfg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Run(context.Background(), app, p, search.NewCostCache(), NDJSONEmitter(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSelect(t *testing.T, ts *httptest.Server, dfg []byte, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/select"+query, "text/plain", bytes.NewReader(dfg))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func fetchMetrics(t *testing.T, ts *httptest.Server) Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServiceE2EDeterminism pins the over-the-wire contract: the NDJSON a
// live isegend server streams for a kernel-suite .dfg is bit-identical to
// the offline `cmd/isegen -json` output, across algorithms and worker
// counts.
func TestServiceE2EDeterminism(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		query  string
		params Params
	}{
		{"", DefaultParams()},
		{"?workers=3", func() Params { p := DefaultParams(); p.Workers = 3; return p }()},
		{"?reuse=false", func() Params { p := DefaultParams(); p.Reuse = false; return p }()},
		{"?algo=iterative", func() Params { p := DefaultParams(); p.Algo = "iterative"; return p }()},
		{"?algo=genetic&seed=7&workers=2", func() Params {
			p := DefaultParams()
			p.Algo, p.Seed, p.Workers = "genetic", 7, 2
			return p
		}()},
	}
	for _, tc := range cases {
		t.Run("q="+tc.query, func(t *testing.T) {
			want := offlineNDJSON(t, dfg, tc.params)
			status, got := postSelect(t, ts, dfg, tc.query)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("served stream differs from offline -json output\nserved:\n%s\noffline:\n%s", got, want)
			}
			// Shape check: one block record per block, then a summary.
			lines := bytes.Split(bytes.TrimSpace(got), []byte("\n"))
			if len(lines) != 4 { // fbital00 has 3 blocks
				t.Fatalf("%d NDJSON lines, want 4", len(lines))
			}
			var last Summary
			if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil || last.Type != "summary" {
				t.Fatalf("last record %s (err %v), want summary", lines[len(lines)-1], err)
			}
		})
	}
}

// TestServiceObjectiveParam pins the objective query parameter end to
// end: ?objective= changes the stream (per-cut objective vectors; a
// frontier record under pareto) and stays bit-identical to the offline
// `cmd/isegen -json -objective` path, while the default stream remains
// exactly the pre-objective schema.
func TestServiceObjectiveParam(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, def := postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("default: status %d", status)
	}
	if bytes.Contains(def, []byte(`"objectives"`)) || bytes.Contains(def, []byte(`"frontier"`)) {
		t.Fatal("default stream leaked objective-schema extensions")
	}

	for _, objective := range []string{"pareto", "area", "merit"} {
		t.Run(objective, func(t *testing.T) {
			p := DefaultParams()
			p.Objective = objective
			want := offlineNDJSON(t, dfg, p)
			status, got := postSelect(t, ts, dfg, "?objective="+objective)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("served %s stream differs from offline -json -objective output\nserved:\n%s\noffline:\n%s", objective, got, want)
			}
			if bytes.Equal(got, def) {
				t.Fatalf("?objective=%s left the stream identical to the default", objective)
			}
			if !bytes.Contains(got, []byte(`"objectives":{"merit":`)) {
				t.Fatalf("%s stream carries no per-cut objective vectors:\n%s", objective, got)
			}
		})
	}

	// The pareto stream additionally carries the frontier record, with
	// mutually non-dominated points and at least one selected.
	status, body := postSelect(t, ts, dfg, "?objective=pareto")
	if status != http.StatusOK {
		t.Fatalf("pareto: status %d", status)
	}
	var fr *FrontierRecord
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", line, err)
		}
		if probe.Type == "frontier" {
			fr = new(FrontierRecord)
			if err := json.Unmarshal(line, fr); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fr == nil {
		t.Fatalf("pareto stream carries no frontier record:\n%s", body)
	}
	if len(fr.Points) == 0 {
		t.Fatal("frontier record has no points")
	}
	selected := 0
	for _, pt := range fr.Points {
		if pt.Selected {
			selected++
		}
	}
	if selected == 0 {
		t.Fatal("no frontier point is flagged selected")
	}
}

// TestServiceObjectiveValidation pins the clear-error contract for
// objective parameters: unsupported objective/engine pairs, unknown
// names, and missing budgets are 400s naming the valid combinations —
// never a silent fallback or a deep engine error.
func TestServiceObjectiveValidation(t *testing.T) {
	dfg := kernelDFG(t, kernels.Conven00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		query    string
		wantSub  string
		wantCode int
	}{
		"pareto with exact":     {"?algo=exact&objective=pareto", "valid pairs", http.StatusBadRequest},
		"area with genetic":     {"?algo=genetic&objective=area", "valid pairs", http.StatusBadRequest},
		"unknown objective":     {"?objective=speedup", "unknown objective", http.StatusBadRequest},
		"latency without bound": {"?objective=latency", "latency_budget", http.StatusBadRequest},
		"bad class weights":     {"?objective=class&class_weights=memory", "class=weight", http.StatusBadRequest},
		"unknown class name":    {"?objective=class&class_weights=memoy=0.5", "unknown block class", http.StatusBadRequest},
		"orphan budget":         {"?latency_budget=2", "only read by objective \\\"latency\\\"", http.StatusBadRequest},
		"orphan gate penalty":   {"?objective=merit&gate_penalty=5", "only read by objective \\\"area\\\"", http.StatusBadRequest},
		"orphan class weights":  {"?class_weights=memory=0.5", "only read by objective \\\"class\\\"", http.StatusBadRequest},
		"NaN gate penalty":      {"?objective=area&gate_penalty=NaN", "finite", http.StatusBadRequest},
		"Inf class weight":      {"?objective=class&class_weights=memory=Inf", "finite", http.StatusBadRequest},
		"merit with exact ok":   {"?algo=exact&objective=merit", "", http.StatusOK},
	} {
		t.Run(name, func(t *testing.T) {
			status, body := postSelect(t, ts, dfg, tc.query)
			if status != tc.wantCode {
				t.Fatalf("status %d (%s), want %d", status, body, tc.wantCode)
			}
			if tc.wantSub != "" && !strings.Contains(string(body), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", body, tc.wantSub)
			}
		})
	}
}

// TestServiceRepeatedUploadCacheHits pins the acceptance criterion: a
// second identical request reports >= 90% cost-cache hits on the metrics
// endpoint, because the persistent cache keys blocks by content hash
// rather than pointer identity.
func TestServiceRepeatedUploadCacheHits(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, first := postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	m1 := fetchMetrics(t, ts)
	if m1.Cache.Misses == 0 {
		t.Fatal("first request cost nothing; test is vacuous")
	}

	status, second := postSelect(t, ts, dfg, "")
	if status != http.StatusOK {
		t.Fatalf("second request: status %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("identical requests streamed different results")
	}
	m2 := fetchMetrics(t, ts)

	dh := m2.Cache.Hits - m1.Cache.Hits
	dm := m2.Cache.Misses - m1.Cache.Misses
	if dh+dm == 0 {
		t.Fatal("second request did no cache lookups")
	}
	rate := float64(dh) / float64(dh+dm)
	if rate < 0.9 {
		t.Fatalf("second identical request hit rate %.3f (%d hits / %d misses), want >= 0.9", rate, dh, dm)
	}
	if m2.Cache.LastJobRate < 0.9 {
		t.Fatalf("last_job_hit_rate %.3f, want >= 0.9", m2.Cache.LastJobRate)
	}
	if st := m2.Queue; st.Completed != 2 || st.Rejected != 0 {
		t.Fatalf("queue stats %+v, want 2 completed, 0 rejected", st)
	}
}

// TestServicePersistentCacheAcrossRestart exercises the disk store: a new
// server over the same cache directory serves a repeated upload almost
// entirely from persisted costings.
func TestServicePersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	dfg := kernelDFG(t, kernels.Fbital00())

	serve := func() (streamed []byte, m Metrics) {
		store, err := search.NewStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(Config{Cache: search.NewPersistentCostCache(store)})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		status, body := postSelect(t, ts, dfg, "")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		return body, fetchMetrics(t, ts)
	}

	first, m1 := serve()
	if m1.Cache.Misses == 0 {
		t.Fatal("cold run computed nothing")
	}
	if m1.Cache.Store == nil || m1.Cache.Store.Saves == 0 {
		t.Fatalf("store metrics %+v, want saves > 0", m1.Cache.Store)
	}

	second, m2 := serve() // fresh server, fresh cache, same directory
	if !bytes.Equal(first, second) {
		t.Fatal("restart changed the streamed result")
	}
	if m2.Cache.Misses != 0 {
		t.Fatalf("post-restart run recomputed %d costings, want 0 (disk-served)", m2.Cache.Misses)
	}
	if m2.Cache.LastJobRate < 0.9 {
		t.Fatalf("post-restart last_job_hit_rate %.3f, want >= 0.9", m2.Cache.LastJobRate)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dfg := kernelDFG(t, kernels.Conven00())

	for name, tc := range map[string]struct {
		query, body string
		wantStatus  int
	}{
		"unknown algo":   {"?algo=quantum", string(dfg), http.StatusBadRequest},
		"bad nise":       {"?nise=zero", string(dfg), http.StatusBadRequest},
		"negative ports": {"?in=-1", string(dfg), http.StatusBadRequest},
		"garbage body":   {"", "not a dfg", http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			status, body := postSelect(t, ts, []byte(tc.body), tc.query)
			if status != tc.wantStatus {
				t.Fatalf("status %d (%s), want %d", status, body, tc.wantStatus)
			}
			var rec map[string]string
			if err := json.Unmarshal(body, &rec); err != nil || rec["error"] == "" {
				t.Fatalf("error body %q not a JSON error record", body)
			}
		})
	}

	// Oversized uploads get 413, not a misleading parse error — and
	// never a silently truncated parse (dfgio surfaces read failures).
	big := NewServer(Config{MaxBodyBytes: 64})
	defer big.Close()
	bigTS := httptest.NewServer(big.Handler())
	defer bigTS.Close()
	if status, body := postSelect(t, bigTS, kernelDFG(t, kernels.Fbital00()), ""); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d (%s), want 413", status, body)
	}

	if resp, err := http.Get(ts.URL + "/v1/select"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	}
}

// TestServicePerBlockSkipsOversizedBlocks pins the skip contract: an exact
// engine sweep over an application with a block beyond its node limit
// still succeeds, marking the oversized block rather than failing the job.
func TestServicePerBlockSkipsOversizedBlocks(t *testing.T) {
	app := kernels.FFT00() // critical block (104 nodes) > iterative limit (100)
	dfg := kernelDFG(t, app)
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postSelect(t, ts, dfg, "?algo=iterative&nise=2")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var skipped int
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var rec BlockResult
		if err := json.Unmarshal(line, &rec); err == nil && rec.Type == "block" && rec.Skipped != "" {
			skipped++
			if !strings.Contains(rec.Skipped, "node limit") {
				t.Fatalf("skip note %q lacks reason", rec.Skipped)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("no block was marked skipped; expected the 104-node FFT block")
	}
}

// TestServiceStreamsProgressively verifies blocks arrive before the job
// finishes: with a multi-block per-block sweep, the first block record
// must be readable from the stream while later blocks may still be
// running. (Bounded by the full response for robustness on 1-CPU runners.)
func TestServiceStreamsProgressively(t *testing.T) {
	app := kernels.ADPCMCoder()
	dfg := kernelDFG(t, app)
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/select?algo=genetic&nise=2", "text/plain", bytes.NewReader(dfg))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var rec BlockResult
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("decoding first streamed record: %v", err)
	}
	if rec.Type != "block" || rec.Block != 0 {
		t.Fatalf("first record %+v, want block 0", rec)
	}
	if rec.Hash == "" {
		t.Fatal("block record carries no content hash")
	}
	// Drain the rest; the stream must stay well-formed NDJSON.
	count := 1
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("record %d: %v", count, err)
		}
		count++
	}
	if want := len(app.Blocks) + 1; count != want {
		t.Fatalf("%d records, want %d", count, want)
	}
}

// TestRunZeroWeightApplication pins the degenerate-input behavior: a
// valid .dfg whose blocks all have freq 0 has no dynamic weight, so the
// evaluator rejects it with a clear error after the block records were
// already streamed — and never a JSON-encoding failure (the summary's
// ratio fields are additionally NaN/Inf-guarded by finiteOrZero).
func TestRunZeroWeightApplication(t *testing.T) {
	const text = "dfg z\nfreq 0\ninputs 2\n0 add i0 i1\n1 mul n0 i1 !out\n"
	app, err := dfgio.ParseApplication("z", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var records []any
	err = Run(context.Background(), app, DefaultParams(), search.NewCostCache(), func(v any) error {
		records = append(records, v)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "not positive") {
		t.Fatalf("Run err = %v, want the evaluator's zero-weight rejection", err)
	}
	if strings.Contains(err.Error(), "unsupported value") {
		t.Fatalf("Run err = %v leaked a JSON encoding failure", err)
	}
	// The isegen flow evaluates inside GenerateContext, so it fails
	// before any record; every streamed record (if any) must still be a
	// block record, never a malformed summary.
	for _, rec := range records {
		if _, ok := rec.(*BlockResult); !ok {
			t.Fatalf("streamed %T for a rejected application, want only *BlockResult", rec)
		}
	}
}

func TestFiniteOrZero(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := finiteOrZero(v); got != 0 {
			t.Fatalf("finiteOrZero(%g) = %g, want 0", v, got)
		}
	}
	if got := finiteOrZero(2.5); got != 2.5 {
		t.Fatalf("finiteOrZero(2.5) = %g", got)
	}
}

// TestRunEmitErrorAborts pins the disconnect path: when the emitter fails
// (client gone), Run returns the emit error without wedging the fan-out.
func TestRunEmitErrorAborts(t *testing.T) {
	app := kernels.Fbital00()
	boom := fmt.Errorf("client went away")
	calls := 0
	err := Run(context.Background(), app, func() Params {
		p := DefaultParams()
		p.Algo = "genetic"
		return p
	}(), search.NewCostCache(), func(v any) error {
		calls++
		return boom
	})
	if err == nil || !strings.Contains(err.Error(), "client went away") {
		t.Fatalf("err = %v, want emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing, want 1", calls)
	}
}

// TestServiceSubtreeWorkersParam pins the new in-block parallelism knobs
// end to end: subtree_workers/split_depth leave the exact engines' NDJSON
// stream bit-identical (only wall-clock may change), the served stream
// matches the offline path, and the orphan-knob validation rejects the
// parameters for engines that do not read them.
func TestServiceSubtreeWorkersParam(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seqP := DefaultParams()
	seqP.Algo = "iterative"
	seq := offlineNDJSON(t, dfg, seqP)

	for _, q := range []string{
		"?algo=iterative&subtree_workers=4",
		"?algo=iterative&subtree_workers=4&split_depth=3",
		"?algo=iterative&subtree_workers=-1",
	} {
		status, got := postSelect(t, ts, dfg, q)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, status, got)
		}
		if !bytes.Equal(got, seq) {
			t.Fatalf("%s: stream differs from the single-threaded run\ngot:\n%s\nwant:\n%s", q, got, seq)
		}
	}

	// Orphan knobs: engines that never read them reject them up front.
	for _, q := range []string{
		"?subtree_workers=4",              // default algo isegen
		"?algo=genetic&split_depth=2",     // genetic has no subtree search
		"?algo=iterative&max_frontier=10", // max_frontier needs pareto
		"?algo=iterative&subtree_workers=-2",
	} {
		if status, body := postSelect(t, ts, dfg, q); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, status, body)
		}
	}
}

// TestServiceMaxFrontierParam: max_frontier bounds the pareto frontier
// record, bit-identically to the offline path.
func TestServiceMaxFrontierParam(t *testing.T) {
	dfg := kernelDFG(t, kernels.Fbital00())
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := DefaultParams()
	p.Objective, p.MaxFrontier = "pareto", 2
	want := offlineNDJSON(t, dfg, p)
	status, got := postSelect(t, ts, dfg, "?objective=pareto&max_frontier=2")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served bounded-frontier stream differs from offline\ngot:\n%s\nwant:\n%s", got, want)
	}
	var fr FrontierRecord
	found := false
	for _, line := range bytes.Split(bytes.TrimSpace(got), []byte("\n")) {
		if bytes.Contains(line, []byte(`"frontier"`)) {
			if err := json.Unmarshal(line, &fr); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no frontier record in pareto stream")
	}
	if len(fr.Points) == 0 || len(fr.Points) > 2 {
		t.Fatalf("bounded frontier record has %d points, want 1..2", len(fr.Points))
	}
}

// TestServiceMetricsStoreEvictionPressure pins the /v1/metrics surface for
// the persistent store's eviction-pressure fields: the raw JSON must carry
// the documented keys (backward-compatibly alongside the existing counter
// fields), and a store squeezed under a tiny byte cap must report
// evictions with their byte volume and a bounded current size.
func TestServiceMetricsStoreEvictionPressure(t *testing.T) {
	store, err := search.NewStore(t.TempDir(), 1) // 1-byte cap: every save overflows
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{Cache: search.NewPersistentCostCache(store)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two structurally different uploads: the second flush must evict the
	// first upload's entries (the just-saved key is exempt, so each save
	// survives until the next one lands).
	for _, app := range []func() *ir.Application{kernels.Conven00, kernels.Fbital00} {
		if status, body := postSelect(t, ts, kernelDFG(t, app()), ""); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Wire-level compatibility: the pre-existing keys must still be
	// present, and the new pressure keys must appear under cache.store.
	var doc struct {
		Cache struct {
			Hits  *int64                     `json:"hits"`
			Store map[string]json.RawMessage `json:"store"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, raw)
	}
	if doc.Cache.Hits == nil {
		t.Fatalf("metrics lost the cache.hits field:\n%s", raw)
	}
	for _, key := range []string{"loads", "load_hits", "saves", "evictions", "bytes_evicted", "current_bytes", "max_bytes"} {
		if _, ok := doc.Cache.Store[key]; !ok {
			t.Errorf("metrics cache.store missing %q:\n%s", key, raw)
		}
	}

	m := fetchMetrics(t, ts)
	st := m.Cache.Store
	if st == nil {
		t.Fatal("no store stats on a persistent-cache server")
	}
	if st.Saves < 2 {
		t.Fatalf("store stats %+v, want >= 2 saves", st)
	}
	if st.Evictions == 0 || st.BytesEvicted <= 0 {
		t.Fatalf("store stats %+v, want eviction pressure reported", st)
	}
	if st.MaxBytes != 1 {
		t.Fatalf("store stats report max_bytes %d, want the configured 1", st.MaxBytes)
	}
	if st.CurrentBytes < 0 {
		t.Fatalf("store stats report negative current_bytes: %+v", st)
	}
}
