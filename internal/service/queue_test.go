package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingJob returns a run func that signals started and blocks until
// release is closed.
func blockingJob(started chan<- string, release <-chan struct{}, id string) func(context.Context) {
	return func(ctx context.Context) {
		started <- id
		<-release
	}
}

func TestQueueFIFOWithinTenant(t *testing.T) {
	q := NewQueue(8, 1, 1)
	defer q.Close()
	var mu sync.Mutex
	var order []string
	var jobs []*Job
	gate := make(chan struct{})
	for _, id := range []string{"a", "b", "c"} {
		id := id
		j, err := q.Submit(context.Background(), "t", func(ctx context.Context) {
			<-gate
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(gate)
	for _, j := range jobs {
		<-j.Done()
	}
	if got := order; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("execution order %v, want [a b c]", got)
	}
}

func TestQueueFullRejects(t *testing.T) {
	q := NewQueue(1, 1, 1)
	defer q.Close()
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	// First job occupies the worker...
	if _, err := q.Submit(context.Background(), "t", blockingJob(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...second fills the FIFO...
	if _, err := q.Submit(context.Background(), "t", blockingJob(started, release, "wait")); err != nil {
		t.Fatal(err)
	}
	// ...third must bounce.
	if _, err := q.Submit(context.Background(), "t", blockingJob(started, release, "reject")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Rejected != 1 || st.Depth != 1 {
		t.Fatalf("stats = %+v, want 1 rejected, depth 1", st)
	}
}

func TestQueueTenantBudgetAllowsOvertaking(t *testing.T) {
	// Two workers, budget 1: tenant A's second job must NOT run while its
	// first is active, even though it was enqueued before tenant B's.
	q := NewQueue(8, 2, 1)
	defer q.Close()
	started := make(chan string, 8)
	releaseA := make(chan struct{})
	releaseRest := make(chan struct{})

	a1, err := q.Submit(context.Background(), "A", blockingJob(started, releaseA, "a1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := <-started; got != "a1" {
		t.Fatalf("first start %q, want a1", got)
	}
	a2, err := q.Submit(context.Background(), "A", blockingJob(started, releaseRest, "a2"))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := q.Submit(context.Background(), "B", blockingJob(started, releaseRest, "b1"))
	if err != nil {
		t.Fatal(err)
	}

	// b1 overtakes a2: it is the only runnable job for the free worker.
	select {
	case got := <-started:
		if got != "b1" {
			t.Fatalf("second start %q, want b1 (a2 is budget-held)", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tenant B never started; budget scheduling stuck")
	}
	// a2 must stay held while a1 runs.
	select {
	case got := <-started:
		t.Fatalf("%q started despite tenant A budget", got)
	case <-time.After(50 * time.Millisecond):
	}
	if st := q.Stats(); st.ActiveTenants["A"] != 1 || st.ActiveTenants["B"] != 1 {
		t.Fatalf("active tenants = %+v, want A:1 B:1", st.ActiveTenants)
	}
	// Releasing a1 unblocks a2.
	close(releaseA)
	<-a1.Done()
	if got := <-started; got != "a2" {
		t.Fatalf("after a1 finished, started %q, want a2", got)
	}
	close(releaseRest)
	<-a2.Done()
	<-b1.Done()
	if st := q.Stats(); st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
}

func TestQueueDropsCancelledWhileQueued(t *testing.T) {
	q := NewQueue(8, 1, 1)
	defer q.Close()
	started := make(chan string, 8)
	release := make(chan struct{})
	if _, err := q.Submit(context.Background(), "t", blockingJob(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	j, err := q.Submit(ctx, "t", func(context.Context) { t.Error("cancelled job ran") })
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	<-j.Done()
	if err := j.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
	if st := q.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

// TestQueueCancelledJobFreesCapacityEagerly pins the reaping contract:
// a queued job whose context is cancelled releases its FIFO slot
// immediately (not at the next worker scan), so live traffic is not
// rejected with "queue full" on behalf of dead jobs.
func TestQueueCancelledJobFreesCapacityEagerly(t *testing.T) {
	q := NewQueue(1, 1, 1)
	defer q.Close()
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	if _, err := q.Submit(context.Background(), "t", blockingJob(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied for the rest of the test
	ctx, cancel := context.WithCancel(context.Background())
	dead, err := q.Submit(ctx, "t", func(context.Context) { t.Error("dead job ran") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(context.Background(), "t", func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel Submit err = %v, want ErrQueueFull", err)
	}
	cancel()
	<-dead.Done() // watcher reaped it; the slot must be free now
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Submit(context.Background(), "t", func(context.Context) {}); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("post-cancel Submit err = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never released its queue slot")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueuePanicContainedToOneJob pins the isolation contract: a job
// that panics must not kill the worker pool or hang its submitter; the
// queue records it and keeps serving other jobs.
func TestQueuePanicContainedToOneJob(t *testing.T) {
	q := NewQueue(8, 1, 1)
	defer q.Close()
	bad, err := q.Submit(context.Background(), "t", func(context.Context) { panic("engine bug") })
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "engine bug") {
		t.Fatalf("panicked job Err = %v, want the panic value", err)
	}
	ran := make(chan struct{})
	good, err := q.Submit(context.Background(), "t", func(context.Context) { close(ran) })
	if err != nil {
		t.Fatal(err)
	}
	<-good.Done()
	select {
	case <-ran:
	default:
		t.Fatal("queue stopped serving after a contained panic")
	}
	if st := q.Stats(); st.Panics != 1 || st.Completed != 2 {
		t.Fatalf("stats %+v, want 1 panic, 2 completed", st)
	}
}

func TestQueueCloseAbandonsPending(t *testing.T) {
	q := NewQueue(8, 1, 1)
	started := make(chan string, 8)
	release := make(chan struct{})
	running, err := q.Submit(context.Background(), "t", blockingJob(started, release, "run"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	held, err := q.Submit(context.Background(), "t", func(context.Context) { t.Error("job ran after Close") })
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	q.Close()
	<-running.Done()
	if err := running.Err(); err != nil {
		t.Fatalf("running job err = %v, want nil", err)
	}
	<-held.Done()
	if err := held.Err(); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("held job err = %v, want ErrQueueClosed", err)
	}
	if _, err := q.Submit(context.Background(), "t", func(context.Context) {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-close Submit err = %v, want ErrQueueClosed", err)
	}
}
