// Package dfgio serializes basic-block DFGs to and from a line-oriented
// text format, and exports them to Graphviz DOT for inspection.
//
// Format (one block):
//
//	dfg <name>
//	freq <float>
//	inputs <int>
//	<id> <op> [operand...] [imm=<int>] [!out]
//
// Operands are `n<id>` for node results and `i<k>` for external inputs.
// Node IDs must be sequential from 0. Lines starting with '#' and blank
// lines are ignored. An application file is a sequence of such blocks.
//
// Example:
//
//	dfg mac
//	freq 100
//	inputs 3
//	0 mul i0 i1
//	1 add n0 i2 !out
package dfgio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/ir"
)

// Write serializes one block.
func Write(w io.Writer, b *ir.Block) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "dfg %s\n", b.Name)
	fmt.Fprintf(bw, "freq %g\n", b.Freq)
	fmt.Fprintf(bw, "inputs %d\n", b.NumInputs)
	for i := range b.Nodes {
		nd := &b.Nodes[i]
		fmt.Fprintf(bw, "%d %s", i, nd.Op)
		for _, a := range nd.Args {
			switch a.Kind {
			case ir.FromNode:
				fmt.Fprintf(bw, " n%d", a.Index)
			case ir.FromInput:
				fmt.Fprintf(bw, " i%d", a.Index)
			case ir.FromImm:
				fmt.Fprintf(bw, " m%d", a.Index)
			}
		}
		if nd.Op == ir.OpConst {
			fmt.Fprintf(bw, " imm=%d", nd.Imm)
		}
		if b.LiveOut.Has(i) {
			fmt.Fprint(bw, " !out")
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteApplication serializes every block of the application, separated by
// blank lines.
func WriteApplication(w io.Writer, app *ir.Application) error {
	for i, b := range app.Blocks {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := Write(w, b); err != nil {
			return err
		}
	}
	return nil
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("dfgio: line %d: %s", e.Line, e.Msg) }

type parser struct {
	sc   *bufio.Scanner
	line int
	peek string
	has  bool
}

func (p *parser) next() (string, bool) {
	if p.has {
		p.has = false
		return p.peek, true
	}
	for p.sc.Scan() {
		p.line++
		t := strings.TrimSpace(p.sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		return t, true
	}
	return "", false
}

func (p *parser) unread(s string) {
	p.peek = s
	p.has = true
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads exactly one block.
func Parse(r io.Reader) (*ir.Block, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	b, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.sc.Err(); err != nil {
		// A read failure looks like EOF to the line loop; surfacing it
		// prevents a truncated stream (size-limited upload, I/O error)
		// from silently parsing as a shorter, valid-looking input.
		return nil, err
	}
	if b == nil {
		return nil, &ParseError{Line: p.line, Msg: "no dfg header found"}
	}
	return b, nil
}

// ParseApplication reads all blocks in the stream.
func ParseApplication(name string, r io.Reader) (*ir.Application, error) {
	p := &parser{sc: bufio.NewScanner(r)}
	p.sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	app := &ir.Application{Name: name}
	for {
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		app.Blocks = append(app.Blocks, b)
	}
	if err := p.sc.Err(); err != nil {
		// See Parse: a read failure must not masquerade as EOF, or a
		// truncated stream would yield a silently shortened application.
		return nil, err
	}
	if len(app.Blocks) == 0 {
		return nil, &ParseError{Line: p.line, Msg: "no blocks in application"}
	}
	return app, nil
}

// parseBlock returns (nil, nil) at EOF.
func (p *parser) parseBlock() (*ir.Block, error) {
	head, ok := p.next()
	if !ok {
		return nil, nil
	}
	fields := strings.Fields(head)
	if len(fields) != 2 || fields[0] != "dfg" {
		return nil, p.errf("expected 'dfg <name>', got %q", head)
	}
	blk := &ir.Block{Name: fields[1], Freq: 1}

	type pendingNode struct {
		node ir.Node
		out  bool
	}
	var pending []pendingNode
	for {
		line, ok := p.next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		switch f[0] {
		case "dfg":
			p.unread(line)
			goto done
		case "freq":
			if len(f) != 2 {
				return nil, p.errf("freq takes one value")
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil || v < 0 {
				return nil, p.errf("bad freq %q", f[1])
			}
			blk.Freq = v
		case "inputs":
			if len(f) != 2 {
				return nil, p.errf("inputs takes one value")
			}
			v, err := strconv.Atoi(f[1])
			if err != nil || v < 0 {
				return nil, p.errf("bad inputs %q", f[1])
			}
			blk.NumInputs = v
		default:
			id, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, p.errf("expected node id, got %q", f[0])
			}
			if id != len(pending) {
				return nil, p.errf("node id %d out of order, want %d", id, len(pending))
			}
			if len(f) < 2 {
				return nil, p.errf("node %d: missing opcode", id)
			}
			op, err := ir.OpFromString(f[1])
			if err != nil {
				return nil, p.errf("node %d: %v", id, err)
			}
			pn := pendingNode{node: ir.Node{Op: op}}
			for _, tok := range f[2:] {
				switch {
				case tok == "!out":
					pn.out = true
				case strings.HasPrefix(tok, "imm="):
					v, err := strconv.ParseInt(tok[4:], 10, 64)
					if err != nil {
						return nil, p.errf("node %d: bad immediate %q", id, tok)
					}
					pn.node.Imm = int32(v)
				case strings.HasPrefix(tok, "n"):
					v, err := strconv.Atoi(tok[1:])
					if err != nil {
						return nil, p.errf("node %d: bad operand %q", id, tok)
					}
					pn.node.Args = append(pn.node.Args, ir.NodeRef(v))
				case strings.HasPrefix(tok, "m"):
					v, err := strconv.ParseInt(tok[1:], 10, 64)
					if err != nil {
						return nil, p.errf("node %d: bad immediate operand %q", id, tok)
					}
					pn.node.Args = append(pn.node.Args, ir.ImmOperand(int32(v)))
				case strings.HasPrefix(tok, "i"):
					v, err := strconv.Atoi(tok[1:])
					if err != nil {
						return nil, p.errf("node %d: bad operand %q", id, tok)
					}
					pn.node.Args = append(pn.node.Args, ir.InputRef(v))
				default:
					return nil, p.errf("node %d: unrecognized token %q", id, tok)
				}
			}
			pending = append(pending, pn)
		}
	}
done:
	blk.Nodes = make([]ir.Node, len(pending))
	blk.LiveOut = graph.NewBitSet(len(pending))
	for i, pn := range pending {
		blk.Nodes[i] = pn.node
		if pn.out {
			blk.LiveOut.Set(i)
		}
	}
	if err := ir.FinishBlock(blk); err != nil {
		return nil, p.errf("%v", err)
	}
	return blk, nil
}

// WriteDOT renders the block as a Graphviz digraph. If cuts is non-empty,
// nodes belonging to cut k are filled with a distinct color and clustered.
func WriteDOT(w io.Writer, b *ir.Block, cuts []*graph.BitSet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white];\n", b.Name)
	colors := []string{"lightblue", "palegreen", "lightsalmon", "plum", "khaki", "lightpink", "lightcyan", "wheat"}
	cutOf := make([]int, b.N())
	for i := range cutOf {
		cutOf[i] = -1
	}
	for k, c := range cuts {
		c.ForEach(func(i int) bool {
			cutOf[i] = k
			return true
		})
	}
	for i := range b.Nodes {
		nd := &b.Nodes[i]
		label := fmt.Sprintf("%d: %s", i, nd.Op)
		if nd.Op == ir.OpConst {
			label = fmt.Sprintf("%d: const %d", i, nd.Imm)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if k := cutOf[i]; k >= 0 {
			attrs += fmt.Sprintf(", fillcolor=%q", colors[k%len(colors)])
		}
		if b.LiveOut.Has(i) {
			attrs += ", peripheries=2"
		}
		if nd.Op.IsMem() {
			attrs += ", shape=box3d"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", i, attrs)
	}
	// External inputs drawn once each, connected to all consumers.
	usedInputs := map[int][]int{}
	for i := range b.Nodes {
		for _, a := range b.Nodes[i].Args {
			if a.Kind == ir.FromInput {
				usedInputs[a.Index] = append(usedInputs[a.Index], i)
			}
		}
	}
	inputIDs := make([]int, 0, len(usedInputs))
	for k := range usedInputs {
		inputIDs = append(inputIDs, k)
	}
	sort.Ints(inputIDs)
	for _, k := range inputIDs {
		fmt.Fprintf(bw, "  in%d [label=\"in%d\", shape=ellipse, fillcolor=gray90];\n", k, k)
		for _, c := range usedInputs[k] {
			fmt.Fprintf(bw, "  in%d -> n%d;\n", k, c)
		}
	}
	for i := range b.Nodes {
		for _, a := range b.Nodes[i].Args {
			if a.Kind == ir.FromNode {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", a.Index, i)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
