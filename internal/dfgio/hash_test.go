package dfgio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/kernels"
)

// mac builds the documented example block, optionally tweaked.
func macBlock(t *testing.T, text string) *ir.Block {
	t.Helper()
	b, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return b
}

const macText = `dfg mac
freq 100
inputs 3
0 mul i0 i1
1 add n0 i2 !out
`

func TestBlockHashStableAcrossFieldReorderings(t *testing.T) {
	base := macBlock(t, macText)
	variants := map[string]string{
		"header fields swapped": "dfg mac\ninputs 3\nfreq 100\n0 mul i0 i1\n1 add n0 i2 !out\n",
		"comments and blanks":   "# a comment\ndfg mac\n\nfreq 100\n# another\ninputs 3\n\n0 mul i0 i1\n1 add n0 i2 !out\n",
		"different name":        strings.Replace(macText, "dfg mac", "dfg renamed", 1),
		"different freq":        strings.Replace(macText, "freq 100", "freq 7", 1),
	}
	want := BlockHash(base)
	if want == "" || len(want) != 64 {
		t.Fatalf("BlockHash returned %q, want 64 hex chars", want)
	}
	for name, text := range variants {
		if got := BlockHash(macBlock(t, text)); got != want {
			t.Errorf("%s: hash %s != base %s", name, got, want)
		}
	}
}

func TestBlockHashDistinguishesMutations(t *testing.T) {
	base := BlockHash(macBlock(t, macText))
	mutants := map[string]string{
		"different op":      strings.Replace(macText, "0 mul i0 i1", "0 add i0 i1", 1),
		"different operand": strings.Replace(macText, "1 add n0 i2 !out", "1 add n0 i0 !out", 1),
		"liveout dropped":   strings.Replace(macText, " !out", "", 1),
		"extra liveout":     strings.Replace(macText, "0 mul i0 i1", "0 mul i0 i1 !out", 1),
		"more inputs":       strings.Replace(macText, "inputs 3", "inputs 4", 1),
		"extra node":        macText + "2 not n1\n",
	}
	seen := map[string]string{"base": base}
	for name, text := range mutants {
		got := BlockHash(macBlock(t, text))
		for prev, h := range seen {
			if got == h {
				t.Errorf("%s: hash collides with %s (%s)", name, prev, h)
			}
		}
		seen[name] = got
	}
}

func TestBlockHashDistinguishesImmediates(t *testing.T) {
	a := macBlock(t, "dfg c\ninputs 0\n0 const imm=1 !out\n")
	b := macBlock(t, "dfg c\ninputs 0\n0 const imm=-1 !out\n")
	if BlockHash(a) == BlockHash(b) {
		t.Fatal("different immediates hash equal")
	}
}

// TestRoundTripPreservesHash pins the serialization round trip on every
// kernel benchmark: Write → Parse reproduces a structurally identical
// application (same canonical hash per block, same freq and name).
func TestRoundTripPreservesHash(t *testing.T) {
	specs := kernels.All()
	specs = append(specs, kernels.Spec{Name: "aes", App: kernels.AES()})
	for _, spec := range specs {
		var buf bytes.Buffer
		if err := WriteApplication(&buf, spec.App); err != nil {
			t.Fatalf("%s: WriteApplication: %v", spec.Name, err)
		}
		got, err := ParseApplication(spec.Name, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ParseApplication: %v", spec.Name, err)
		}
		if len(got.Blocks) != len(spec.App.Blocks) {
			t.Fatalf("%s: %d blocks, want %d", spec.Name, len(got.Blocks), len(spec.App.Blocks))
		}
		for i, want := range spec.App.Blocks {
			b := got.Blocks[i]
			if b.Name != want.Name || b.Freq != want.Freq {
				t.Errorf("%s block %d: name/freq %q/%g, want %q/%g", spec.Name, i, b.Name, b.Freq, want.Name, want.Freq)
			}
			if BlockHash(b) != BlockHash(want) {
				t.Errorf("%s block %d (%s): hash changed across round trip", spec.Name, i, want.Name)
			}
		}
	}
}
