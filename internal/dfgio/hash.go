package dfgio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/ir"
)

// BlockHash returns a stable, canonical content hash of the block's
// structure: node opcodes, operands, immediates, the live-out set and the
// input count. Everything the cut-costing metrics depend on is covered;
// everything they ignore — the block name, the execution frequency, node
// debug labels, and the textual field order of the .dfg source — is
// deliberately excluded, so re-parsing, renaming or re-profiling the same
// DFG yields the same hash. Two blocks hash equal exactly when cut costing
// is interchangeable between them, which makes the hash a safe persistent
// cache key (see search.CostCache) and a safe dedup key for uploads.
//
// The hash is a hex-encoded SHA-256 over a versioned binary encoding; it
// never changes across processes or platforms for the same structure.
func BlockHash(b *ir.Block) string {
	h := sha256.New()
	var buf [10]byte
	wu := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		h.Write(buf[:n])
	}
	h.Write([]byte("dfgv1\x00"))
	wu(uint64(b.NumInputs))
	wu(uint64(len(b.Nodes)))
	for i := range b.Nodes {
		nd := &b.Nodes[i]
		wu(uint64(nd.Op))
		wu(uint64(len(nd.Args)))
		for _, a := range nd.Args {
			wu(uint64(a.Kind))
			// Index may be a negative immediate; zig-zag it.
			wu(uint64((int64(a.Index) << 1) ^ (int64(a.Index) >> 63)))
		}
		wu(uint64(uint32(nd.Imm)))
		if b.LiveOut.Has(i) {
			wu(1)
		} else {
			wu(0)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
