package dfgio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

func buildSample(t *testing.T) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder("sample", 42.5)
	in := bu.Inputs(3)
	c := bu.Const(7)
	m := bu.Mul(in[0], in[1])
	a := bu.Add(m, in[2])
	x := bu.Xor(a, c)
	bu.LiveOut(a, x)
	return bu.MustBuild()
}

func TestWriteParseRoundTrip(t *testing.T) {
	blk := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, blk); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	assertBlocksEqual(t, blk, got)
}

func assertBlocksEqual(t *testing.T, want, got *ir.Block) {
	t.Helper()
	if got.Name != want.Name || got.NumInputs != want.NumInputs || got.Freq != want.Freq {
		t.Fatalf("header mismatch: got %v, want %v", got, want)
	}
	if got.N() != want.N() {
		t.Fatalf("node count %d, want %d", got.N(), want.N())
	}
	for i := range want.Nodes {
		w, g := &want.Nodes[i], &got.Nodes[i]
		if g.Op != w.Op || g.Imm != w.Imm || len(g.Args) != len(w.Args) {
			t.Fatalf("node %d mismatch: got %+v, want %+v", i, g, w)
		}
		for j := range w.Args {
			if g.Args[j] != w.Args[j] {
				t.Fatalf("node %d arg %d mismatch", i, j)
			}
		}
	}
	if !got.LiveOut.Equal(want.LiveOut) {
		t.Fatalf("LiveOut mismatch: got %v, want %v", got.LiveOut, want.LiveOut)
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
# a hand-written DFG
dfg mac
freq 100
inputs 3
0 mul i0 i1
1 add n0 i2 !out
`
	blk, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if blk.Name != "mac" || blk.Freq != 100 || blk.NumInputs != 3 || blk.N() != 2 {
		t.Fatalf("parsed header wrong: %v", blk)
	}
	if !blk.LiveOut.Has(1) || blk.LiveOut.Has(0) {
		t.Error("LiveOut wrong")
	}
	vals, err := blk.Eval([]int32{6, 7, 8}, nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if vals[1] != 50 {
		t.Errorf("6*7+8 = %d, want 50", vals[1])
	}
}

func TestParseApplicationMultipleBlocks(t *testing.T) {
	src := `
dfg first
inputs 1
0 neg i0 !out

dfg second
freq 9
inputs 2
0 add i0 i1
1 const imm=-3
2 mul n0 n1 !out
`
	app, err := ParseApplication("app", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseApplication: %v", err)
	}
	if len(app.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(app.Blocks))
	}
	if app.Blocks[0].Freq != 1 {
		t.Errorf("default freq = %g, want 1", app.Blocks[0].Freq)
	}
	if app.Blocks[1].Nodes[1].Imm != -3 {
		t.Errorf("imm = %d, want -3", app.Blocks[1].Nodes[1].Imm)
	}
}

func TestApplicationRoundTrip(t *testing.T) {
	b1 := buildSample(t)
	bu := ir.NewBuilder("tiny", 3)
	x := bu.Input("x")
	bu.LiveOut(bu.Neg(x))
	b2 := bu.MustBuild()
	app := &ir.Application{Name: "app", Blocks: []*ir.Block{b1, b2}}
	var buf bytes.Buffer
	if err := WriteApplication(&buf, app); err != nil {
		t.Fatalf("WriteApplication: %v", err)
	}
	got, err := ParseApplication("app", &buf)
	if err != nil {
		t.Fatalf("ParseApplication: %v", err)
	}
	if len(got.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(got.Blocks))
	}
	assertBlocksEqual(t, b1, got.Blocks[0])
	assertBlocksEqual(t, b2, got.Blocks[1])
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no header", "freq 1\n"},
		{"bad header", "dfg\n"},
		{"bad freq", "dfg x\nfreq no\n0 const imm=1 !out\n"},
		{"negative freq", "dfg x\nfreq -2\n"},
		{"bad inputs", "dfg x\ninputs -1\n"},
		{"out of order id", "dfg x\ninputs 1\n1 neg i0\n"},
		{"unknown op", "dfg x\ninputs 1\n0 frob i0\n"},
		{"bad operand", "dfg x\ninputs 1\n0 neg q0\n"},
		{"forward ref", "dfg x\ninputs 1\n0 neg n1\n1 neg i0\n"},
		{"missing opcode", "dfg x\ninputs 1\n0\n"},
		{"bad imm", "dfg x\n0 const imm=zz\n"},
		{"input out of range", "dfg x\ninputs 1\n0 neg i5\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
	var pe *ParseError
	_, err := Parse(strings.NewReader("dfg x\ninputs 1\n5 neg i0\n"))
	if e, ok := err.(*ParseError); !ok {
		t.Errorf("error type %T, want *ParseError", err)
	} else {
		pe = e
	}
	if pe != nil && pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

// Property: round trip preserves random blocks exactly.
func TestRoundTripRandomBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		bu := ir.NewBuilder("r", float64(1+rng.Intn(100)))
		ins := bu.Inputs(1 + rng.Intn(4))
		vals := append([]ir.Value{}, ins...)
		for i := 0; i < 2+rng.Intn(25); i++ {
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			var v ir.Value
			switch rng.Intn(7) {
			case 0:
				v = bu.Add(a, b)
			case 1:
				v = bu.Xor(a, b)
			case 2:
				v = bu.Select(a, b, vals[rng.Intn(len(vals))])
			case 3:
				v = bu.Const(int32(rng.Intn(1000) - 500))
			case 4:
				v = bu.Load(a)
			case 5:
				v = bu.AndI(a, int32(rng.Intn(2000)-1000))
			default:
				v = bu.ShrA(a, b)
			}
			vals = append(vals, v)
		}
		bu.LiveOut(vals[len(vals)-1])
		blk := bu.MustBuild()
		var buf bytes.Buffer
		if err := Write(&buf, blk); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Parse(&buf)
		if err != nil {
			t.Fatalf("Parse(trial %d): %v\n%s", trial, err, buf.String())
		}
		assertBlocksEqual(t, blk, got)
	}
}

func TestWriteDOT(t *testing.T) {
	blk := buildSample(t)
	cut := graph.NewBitSet(blk.N())
	cut.Set(1)
	cut.Set(2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, blk, []*graph.BitSet{cut}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n1 -> n2", "in0 -> n1", "lightblue", "peripheries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
