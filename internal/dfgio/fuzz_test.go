package dfgio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseRoundTrip feeds arbitrary text to the .dfg parser. Accepted
// inputs must round-trip: Write(Parse(x)) reparses to the same structure
// and the same BlockHash, and serialization is a fixpoint. Rejected
// inputs must fail with an error, never a panic. The upload path of the
// serving layer parses untrusted bytes with exactly this code.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("dfg mac\nfreq 100\ninputs 3\n0 mul i0 i1\n1 add n0 i2 !out\n")
	f.Add("dfg t\ninputs 1\n0 load i0\n1 const imm=7\n2 add n1 m-3\n3 store i0 n2\n")
	f.Add("dfg x\nfreq 2.5\ninputs 2\n0 select i0 i1 m9 !out\n")
	f.Add("# comment\n\ndfg empty-ish\ninputs 0\n0 const imm=-1 !out\n")
	f.Fuzz(func(t *testing.T, text string) {
		blk, err := Parse(strings.NewReader(text))
		if err != nil {
			return // rejected input; only panics are failures here
		}
		var out bytes.Buffer
		if err := Write(&out, blk); err != nil {
			t.Fatalf("Write failed on parsed block: %v", err)
		}
		re, err := Parse(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparse of Write output failed: %v\n%s", err, out.String())
		}
		if a, b := BlockHash(blk), BlockHash(re); a != b {
			t.Fatalf("BlockHash moved across round trip: %s vs %s\n%s", a, b, out.String())
		}
		var again bytes.Buffer
		if err := Write(&again, re); err != nil {
			t.Fatalf("second Write failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatalf("serialization is not a fixpoint:\n%s---\n%s", out.String(), again.String())
		}
	})
}
