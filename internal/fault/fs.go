package fault

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// File is the write handle FS.CreateTemp returns — the subset of *os.File
// the store's atomic-write path uses.
type File interface {
	io.Writer
	// Name returns the file's path, as *os.File.Name does.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface search.Store persists through. The
// production implementation is OS; tests and the chaos harness wrap it in
// an InjectFS to fail or corrupt individual operations on a seeded
// schedule.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// ReadFile returns the file's entire contents (the store verifies a
	// checksum over the whole payload, so streaming reads buy nothing).
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
}

// OS is the passthrough FS backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Fault points the InjectFS consults, one per failure-relevant operation.
// Read-side faults (fs.read) corrupt or fail loads; write-side faults
// (fs.write, fs.sync, fs.rename) break persistence — the store's breaker
// and quarantine paths exist to absorb exactly these.
const (
	PointRead   = "fs.read"
	PointWrite  = "fs.write"
	PointSync   = "fs.sync"
	PointRename = "fs.rename"
	PointRemove = "fs.remove"
)

// InjectFS wraps a base FS, consulting the injector before the failure-
// relevant operations. Operations with no registered rule pass straight
// through.
type InjectFS struct {
	base FS
	in   *Injector
}

// NewInjectFS wraps base (nil = OS) with the injector's schedule.
func NewInjectFS(base FS, in *Injector) *InjectFS {
	if base == nil {
		base = OS
	}
	return &InjectFS{base: base, in: in}
}

func (f *InjectFS) MkdirAll(path string, perm fs.FileMode) error { return f.base.MkdirAll(path, perm) }
func (f *InjectFS) Stat(name string) (fs.FileInfo, error)        { return f.base.Stat(name) }
func (f *InjectFS) ReadDir(name string) ([]fs.DirEntry, error)   { return f.base.ReadDir(name) }
func (f *InjectFS) Chtimes(name string, atime, mtime time.Time) error {
	return f.base.Chtimes(name, atime, mtime)
}

// ReadFile injects Err (failed read) and BitFlip (one byte of the
// returned data flipped at a salt-chosen offset — silent corruption the
// store's checksum must catch).
func (f *InjectFS) ReadFile(name string) ([]byte, error) {
	ft := f.in.Check(PointRead)
	if err := ft.Error(); err != nil {
		return nil, err
	}
	data, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if ft.Kind == BitFlip && len(data) > 0 {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		flipped[ft.salt%uint64(len(flipped))] ^= 1 << (ft.salt % 8)
		return flipped, nil
	}
	return data, nil
}

func (f *InjectFS) Remove(name string) error {
	if err := f.in.Check(PointRemove).Error(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// Rename injects Err (rename fails, both files intact) and TornRename:
// the destination is left holding a truncated prefix of the source — the
// on-disk state a crash inside a non-atomic replace leaves behind — and
// the temp source is removed, then the error reported.
func (f *InjectFS) Rename(oldpath, newpath string) error {
	ft := f.in.Check(PointRename)
	if ft.Kind == TornRename {
		if data, err := f.base.ReadFile(oldpath); err == nil {
			cut := len(data) / 2
			if tmp, err := f.base.CreateTemp(filepath.Dir(newpath), "tmp-torn-*.gob"); err == nil {
				_, _ = tmp.Write(data[:cut])
				name := tmp.Name()
				_ = tmp.Close()
				_ = f.base.Rename(name, newpath)
			}
		}
		_ = f.base.Remove(oldpath)
		return ft.Error()
	}
	if err := ft.Error(); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, in: f.in}, nil
}

// injectFile applies write-path faults per Write/Sync call.
type injectFile struct {
	File
	in *Injector
}

func (f *injectFile) Write(p []byte) (int, error) {
	ft := f.in.Check(PointWrite)
	if ft.Kind == PartialWrite && len(p) > 0 {
		// Commit a salt-chosen strict prefix, then fail: the classic torn
		// write. The prefix really lands on disk so recovery code sees it.
		n := int(ft.salt % uint64(len(p)))
		if n > 0 {
			if m, err := f.File.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, ft.Error()
	}
	if err := ft.Error(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *injectFile) Sync() error {
	if err := f.in.Check(PointSync).Error(); err != nil {
		return err
	}
	return f.File.Sync()
}
