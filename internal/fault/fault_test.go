package fault

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

// drive runs the same operation sequence against a fresh injector and
// returns the event log — the replay primitive the determinism tests
// compare.
func drive(seed int64, rules []Rule, ops []string) []Event {
	in := New(seed, rules...)
	for _, p := range ops {
		in.Check(p)
	}
	return in.Events()
}

func TestScheduleIsPureFunctionOfSeed(t *testing.T) {
	rules := []Rule{
		{Point: "fs.write", Kind: ENOSPC, Prob: 0.3},
		{Point: "fs.read", Kind: BitFlip, Prob: 0.2},
		{Point: "service.job", Kind: Panic, Start: 3, Every: 5},
	}
	var ops []string
	for i := 0; i < 200; i++ {
		ops = append(ops, []string{"fs.write", "fs.read", "service.job"}[i%3])
	}
	a, b := drive(42, rules, ops), drive(42, rules, ops)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no faults fired over 200 ops with p=0.3/0.2 rules; schedule hash is broken")
	}
	c := drive(43, rules, ops)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestArithmeticRuleFiresExactIndices(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Err, Start: 2, Every: 3, Count: 2})
	var fired []int64
	for i := int64(0); i < 12; i++ {
		if in.Check("p").Firing() {
			fired = append(fired, i)
		}
	}
	if !reflect.DeepEqual(fired, []int64{2, 5}) {
		t.Fatalf("fired at %v, want [2 5] (start 2, every 3, count 2)", fired)
	}
}

func TestClearStopsFiringButKeepsCounting(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Err})
	if !in.Check("p").Firing() {
		t.Fatal("unconditional rule did not fire")
	}
	in.Clear()
	if in.Check("p").Firing() {
		t.Fatal("fired after Clear")
	}
	if got := in.Ops("p"); got != 2 {
		t.Fatalf("Ops = %d after 2 checks, want 2 (counters must advance through Clear)", got)
	}
	in.Resume()
	if !in.Check("p").Firing() {
		t.Fatal("did not fire after Resume")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	f := in.Check("anything")
	if f.Firing() || f.Error() != nil {
		t.Fatal("nil injector fired")
	}
	in.Clear()
	if in.Events() != nil || in.Fires("x") != 0 || in.Ops("x") != 0 {
		t.Fatal("nil injector reported activity")
	}
	f.Apply(context.Background()) // must not panic or block
}

func TestFaultErrorShapes(t *testing.T) {
	in := New(1,
		Rule{Point: "e", Kind: ENOSPC},
		Rule{Point: "g", Kind: Err},
		Rule{Point: "p", Kind: Panic},
	)
	if err := in.Check("e").Error(); !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("ENOSPC fault error = %v, want wrapping syscall.ENOSPC and ErrInjected", err)
	}
	if err := in.Check("g").Error(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err fault error = %v, want wrapping ErrInjected", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Panic fault did not panic")
		}
	}()
	in.Check("p").Apply(context.Background())
}

func TestStallUnblocksOnContextCancel(t *testing.T) {
	in := New(1, Rule{Point: "s", Kind: Stall})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		in.Check("s").Apply(ctx)
		close(done)
	}()
	cancel()
	<-done // deadlocks (test timeout) if Stall ignores the context
}

func TestInjectFSBitFlipCorruptsExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := bytes.Repeat([]byte{0xAA}, 64)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewInjectFS(nil, New(7, Rule{Point: PointRead, Kind: BitFlip}))
	got, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range want {
		for b := 0; b < 8; b++ {
			if (want[i]^got[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit-flip changed %d bits, want exactly 1", diff)
	}
	// On-disk bytes are untouched: the corruption is in the read path.
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, want) {
		t.Fatal("BitFlip modified the file on disk")
	}
}

func TestInjectFSPartialWriteCommitsPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := NewInjectFS(nil, New(5, Rule{Point: PointWrite, Kind: PartialWrite}))
	f, err := fsys.CreateTemp(dir, "tmp-*.gob")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 100)
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n >= len(payload) {
		t.Fatalf("partial write committed %d of %d bytes, want a strict prefix", n, len(payload))
	}
	_ = f.Close()
	onDisk, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != n {
		t.Fatalf("file holds %d bytes, Write reported %d", len(onDisk), n)
	}
}

func TestInjectFSTornRenameLeavesTruncatedDestination(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "tmp-src.gob")
	dst := filepath.Join(dir, "entry.gob")
	payload := bytes.Repeat([]byte{9}, 128)
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewInjectFS(nil, New(3, Rule{Point: PointRename, Kind: TornRename}))
	if err := fsys.Rename(src, dst); err == nil {
		t.Fatal("torn rename reported success")
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("torn rename left no destination: %v", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("destination holds %d bytes, want a truncated copy of %d", len(got), len(payload))
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatal("torn rename left the source in place")
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded an injector")
	}
	in := New(1)
	ctx := WithInjector(context.Background(), in)
	if FromContext(ctx) != in {
		t.Fatal("injector did not round-trip through the context")
	}
	if WithInjector(context.Background(), nil) != context.Background() {
		t.Fatal("nil injector should leave the context unchanged")
	}
}
