// Package fault is the repository's deterministic fault-injection layer:
// a seeded schedule of named failures that the persistence and serving
// layers consult at explicit points, plus an injectable filesystem
// (fs.go) that search.Store writes through. Production code paths carry a
// nil *Injector, which every method treats as "never fire" at the cost of
// one branch — no build tags, no global state, no time.
//
// Determinism contract: whether a fault fires depends only on (seed,
// point name, per-point operation index). Wall-clock time, goroutine
// scheduling and map order never enter the decision, so a chaos run that
// found a failure replays the same schedule bit-for-bit from its seed —
// the property the differential suite (PR 8) established for engine
// inputs, extended here to the failure domain. Concurrent callers of one
// point do race for operation indices, but the schedule *as a function of
// the index* is fixed; single-threaded harnesses (the store crash tests,
// the chaos soak's serialized uploads) therefore replay exactly.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// None means the point proceeds normally.
	None Kind = iota
	// Err fails the operation with a generic injected error.
	Err
	// ENOSPC fails a write with syscall.ENOSPC (disk full).
	ENOSPC
	// PartialWrite commits a prefix of the buffer, then fails — the torn
	// write a crash or full disk leaves mid-file.
	PartialWrite
	// TornRename simulates a crash inside a non-atomic replace: the
	// destination is left holding a truncated copy of the source and the
	// rename reports failure.
	TornRename
	// BitFlip lets a read succeed but flips one byte of the returned
	// data — silent media corruption.
	BitFlip
	// Panic panics at the point (an engine bug taking down a job).
	Panic
	// Stall blocks at the point until the operation's context is
	// cancelled — a wedged job that only a deadline can reclaim.
	Stall
)

var kindNames = map[Kind]string{
	None: "none", Err: "err", ENOSPC: "enospc", PartialWrite: "partial_write",
	TornRename: "torn_rename", BitFlip: "bit_flip", Panic: "panic", Stall: "stall",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected wraps every error this package fabricates, so callers (and
// tests) can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Serving-layer fault points (the filesystem points live in fs.go).
// PointServiceJob fires once per job as it starts on a queue worker
// (Panic exercises the queue's crash containment, Stall a wedged job only
// a deadline reclaims, Err a job that dies before streaming).
// PointEngineBlock fires per block inside the per-block fan-out, and
// PointSearchRound per greedy round of the application-level ISEGEN flow —
// both after real work has typically streamed, so they exercise the
// mid-stream error path.
const (
	PointServiceJob  = "service.job"
	PointEngineBlock = "engine.block"
	PointSearchRound = "search.round"
)

// Rule matches a point name and decides which operation indices fire.
// Exactly one selection mode applies: Prob > 0 selects hash-scheduled
// firing with that probability; otherwise the arithmetic (Start, Every,
// Count) schedule applies.
type Rule struct {
	// Point is the exact fault-point name the rule covers (see the
	// inventory in DESIGN.md "Failure model"), e.g. "fs.write".
	Point string
	// Kind is the failure injected when the rule fires.
	Kind Kind
	// Start is the first 0-based operation index that may fire; Every
	// fires each Every-th index from Start (0 or 1 = every index);
	// Count bounds total fires (0 = unlimited).
	Start, Every, Count int64
	// Prob, when positive, fires each index independently with this
	// probability, decided by a hash of (seed, point, index) — a "random"
	// schedule that is still a pure function of the seed.
	Prob float64
}

// fires reports whether the rule selects operation index n (not yet
// counting the Count bound, which the injector enforces).
func (r *Rule) fires(seed int64, n int64) bool {
	if r.Prob > 0 {
		return unit(seed, r.Point, n) < r.Prob
	}
	if n < r.Start {
		return false
	}
	every := r.Every
	if every <= 1 {
		return true
	}
	return (n-r.Start)%every == 0
}

// Fault is one fired (or empty) injection decision.
type Fault struct {
	Kind  Kind
	Point string
	// Op is the 0-based operation index at the point that fired.
	Op int64
	// salt drives deterministic sub-decisions (which byte flips, how much
	// of a partial write commits).
	salt uint64
}

// Firing reports whether the fault is live (Kind != None).
func (f Fault) Firing() bool { return f.Kind != None }

// Error returns the error an error-returning call site should fail with:
// nil unless the kind is error-shaped (Err, ENOSPC, PartialWrite,
// TornRename — the FS layer turns the latter two into the richer
// behaviors; plain call sites may fail outright).
func (f Fault) Error() error {
	switch f.Kind {
	case Err, PartialWrite, TornRename:
		return fmt.Errorf("%w: %s at %s op %d", ErrInjected, f.Kind, f.Point, f.Op)
	case ENOSPC:
		return fmt.Errorf("%w: %s at %s op %d: %w", ErrInjected, f.Kind, f.Point, f.Op, syscall.ENOSPC)
	}
	return nil
}

// Apply enacts the control-flow kinds at a call site with no error
// channel: Panic panics, Stall blocks until ctx is done; every other kind
// (including None) is a no-op. Error-shaped kinds must be consumed via
// Error at sites that can fail.
func (f Fault) Apply(ctx context.Context) {
	switch f.Kind {
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at %s op %d", f.Point, f.Op))
	case Stall:
		<-ctx.Done()
	}
}

// Event is one log entry of a fired fault, in firing order.
type Event struct {
	Point string
	Op    int64
	Kind  Kind
}

// Injector evaluates rules at named points. The zero value is unusable;
// construct with New. A nil *Injector never fires. Safe for concurrent
// use.
type Injector struct {
	seed int64

	mu     sync.Mutex
	rules  []Rule
	counts map[string]int64 // per-point operation indices issued
	fired  []int64          // per-rule fire counts (Count bound)
	events []Event
	off    bool
}

// New returns an injector firing the given rules on the seed's schedule.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  rules,
		counts: map[string]int64{},
		fired:  make([]int64, len(rules)),
	}
}

// Check advances the point's operation counter and returns the scheduled
// fault (Kind None when nothing fires). The first matching rule wins.
// Nil-safe: a nil injector always returns the empty Fault.
func (in *Injector) Check(point string) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.counts[point]
	in.counts[point] = n + 1
	if in.off {
		return Fault{}
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != point {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if !r.fires(in.seed, n) {
			continue
		}
		in.fired[i]++
		in.events = append(in.events, Event{Point: point, Op: n, Kind: r.Kind})
		return Fault{Kind: r.Kind, Point: point, Op: n, salt: mix(uint64(in.seed), point, n)}
	}
	return Fault{}
}

// Clear stops all further injection (the "faults cleared" phase of a
// chaos run); operation counters keep advancing so replays that Clear at
// the same op index stay aligned.
func (in *Injector) Clear() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.off = true
	in.mu.Unlock()
}

// Resume re-enables injection after Clear.
func (in *Injector) Resume() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.off = false
	in.mu.Unlock()
}

// Events returns a copy of the fired-fault log in firing order.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Fires reports how many times any rule fired at the point.
func (in *Injector) Fires(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, e := range in.events {
		if e.Point == point {
			n++
		}
	}
	return n
}

// Ops reports how many operations the point has seen (fired or not).
func (in *Injector) Ops(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[point]
}

// mix hashes (seed, point, op) into 64 uniform bits: FNV-1a over the
// point name folded with a splitmix64 finalizer, so adjacent ops and
// seeds decorrelate.
func mix(seed uint64, point string, op int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= 1099511628211
	}
	z := h ^ seed ^ (uint64(op) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps (seed, point, op) to [0, 1).
func unit(seed int64, point string, op int64) float64 {
	return float64(mix(uint64(seed), point, op)>>11) / float64(uint64(1)<<53)
}

// injectorKey threads an *Injector through a context without the layers
// in between naming this package in their signatures.
type injectorKey struct{}

// WithInjector returns a context carrying the injector. A nil injector
// returns ctx unchanged.
func WithInjector(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, in)
}

// FromContext extracts the context's injector, nil (the never-firing
// injector) when none was installed.
func FromContext(ctx context.Context) *Injector {
	in, _ := ctx.Value(injectorKey{}).(*Injector)
	return in
}
