// Package latency models per-operation software latencies (processor cycles
// on the baseline single-issue RISC core) and hardware latencies (AFU
// datapath delays normalized to a 32-bit multiply-accumulate, following the
// paper's methodology of synthesizing each operator on a common CMOS
// technology and normalizing to the MAC delay).
//
// The paper's absolute synthesis numbers are not published; the table below
// keeps the standard relative shape used throughout the ISE literature:
// bitwise logic is far cheaper than addition, which is cheaper than
// shifting by a variable amount, which is cheaper than multiplication. The
// whole repository depends only on these relative magnitudes.
package latency

import (
	"fmt"

	"repro/internal/ir"
)

// Model supplies software cycles, hardware delay and energy per opcode.
// A zero Model is not usable; call Default or build a custom one.
type Model struct {
	// SW holds baseline processor cycles per opcode.
	SW map[ir.Op]int
	// HW holds AFU datapath delay per opcode, normalized to MAC = 1.0.
	// Opcodes that cannot be implemented in an AFU (memory operations)
	// are absent.
	HW map[ir.Op]float64
	// SWEnergy and HWEnergy hold per-execution energy in arbitrary
	// consistent units (used by the future-work energy experiment).
	SWEnergy map[ir.Op]float64
	HWEnergy map[ir.Op]float64
	// Area holds AFU operator area in NAND2-equivalent gates (used by
	// the hardware generator and the area-budget selection extension).
	// Memory opcodes are absent, like HW.
	Area map[ir.Op]float64
}

// Default returns the latency model used by all experiments in this
// repository.
func Default() *Model {
	sw := map[ir.Op]int{
		ir.OpConst: 1, // materialize an immediate
		ir.OpAdd:   1, ir.OpSub: 1, ir.OpNeg: 1,
		ir.OpAnd: 1, ir.OpOr: 1, ir.OpXor: 1, ir.OpNot: 1,
		ir.OpShl: 1, ir.OpShrL: 1, ir.OpShrA: 1,
		ir.OpCmpEQ: 1, ir.OpCmpNE: 1, ir.OpCmpLT: 1,
		ir.OpCmpLE: 1, ir.OpCmpGT: 1, ir.OpCmpGE: 1,
		ir.OpSelect: 1, ir.OpMin: 1, ir.OpMax: 1,
		ir.OpMul:  3,
		ir.OpLoad: 2, ir.OpStore: 1,
	}
	hw := map[ir.Op]float64{
		ir.OpConst: 0.01, // hard-wired constant
		ir.OpAnd:   0.05, ir.OpOr: 0.05, ir.OpXor: 0.05, ir.OpNot: 0.03,
		ir.OpShl: 0.20, ir.OpShrL: 0.20, ir.OpShrA: 0.20,
		ir.OpAdd: 0.30, ir.OpSub: 0.30, ir.OpNeg: 0.15,
		ir.OpCmpEQ: 0.25, ir.OpCmpNE: 0.25, ir.OpCmpLT: 0.30,
		ir.OpCmpLE: 0.30, ir.OpCmpGT: 0.30, ir.OpCmpGE: 0.30,
		ir.OpSelect: 0.10, ir.OpMin: 0.40, ir.OpMax: 0.40,
		ir.OpMul: 0.90,
		// Memory operations are intentionally absent: AFUs have no
		// memory port in the paper's architecture model.
	}
	// Operator areas in NAND2-equivalent gates for a 32-bit datapath:
	// ripple/carry-select adders ≈ 10 gates/bit, a barrel shifter ≈ 18,
	// an array multiplier ≈ 250, bitwise logic 1–2, comparators ≈ 11,
	// multiplexers ≈ 7/bit. Only relative magnitudes matter.
	area := map[ir.Op]float64{
		ir.OpConst: 0,
		ir.OpAnd:   40, ir.OpOr: 40, ir.OpXor: 64, ir.OpNot: 32,
		ir.OpShl: 580, ir.OpShrL: 580, ir.OpShrA: 600,
		ir.OpAdd: 320, ir.OpSub: 340, ir.OpNeg: 180,
		ir.OpCmpEQ: 180, ir.OpCmpNE: 180, ir.OpCmpLT: 350,
		ir.OpCmpLE: 350, ir.OpCmpGT: 350, ir.OpCmpGE: 350,
		ir.OpSelect: 230, ir.OpMin: 580, ir.OpMax: 580,
		ir.OpMul: 8000,
	}
	swE := map[ir.Op]float64{}
	for op, cyc := range sw {
		// Software energy scales with occupancy of the full core
		// pipeline: one unit per cycle.
		swE[op] = float64(cyc) * 1.0
	}
	hwE := map[ir.Op]float64{}
	for op, d := range hw {
		// AFU operators burn energy roughly proportional to their
		// datapath size, for which delay is a reasonable proxy, and
		// avoid the fetch/decode overhead of the core (factor 0.25).
		hwE[op] = d * 0.25
	}
	return &Model{SW: sw, HW: hw, SWEnergy: swE, HWEnergy: hwE, Area: area}
}

// SWLat returns the software latency of op in cycles.
// It panics on opcodes missing from the table, which indicates a
// model/IR mismatch rather than a recoverable condition.
func (m *Model) SWLat(op ir.Op) int {
	c, ok := m.SW[op]
	if !ok {
		panic(fmt.Sprintf("latency: no software latency for %v", op))
	}
	return c
}

// HWLat returns the normalized AFU delay of op. The boolean is false for
// opcodes that cannot be implemented in an AFU.
func (m *Model) HWLat(op ir.Op) (float64, bool) {
	d, ok := m.HW[op]
	return d, ok
}

// HWImplementable reports whether op may be part of an ISE.
func (m *Model) HWImplementable(op ir.Op) bool {
	_, ok := m.HW[op]
	return ok
}

// BlockSWLat returns the summed software latency of every node in the block.
func (m *Model) BlockSWLat(b *ir.Block) int {
	total := 0
	for i := range b.Nodes {
		total += m.SWLat(b.Nodes[i].Op)
	}
	return total
}

// Validate checks that the model covers every opcode used by the block.
func (m *Model) Validate(b *ir.Block) error {
	for i := range b.Nodes {
		op := b.Nodes[i].Op
		if _, ok := m.SW[op]; !ok {
			return fmt.Errorf("latency: block %q node %d: no software latency for %v", b.Name, i, op)
		}
		if !op.IsMem() {
			if _, ok := m.HW[op]; !ok {
				return fmt.Errorf("latency: block %q node %d: no hardware latency for %v", b.Name, i, op)
			}
		}
	}
	return nil
}
