package latency

import (
	"testing"

	"repro/internal/ir"
)

func TestDefaultCoversAllOps(t *testing.T) {
	m := Default()
	for _, op := range ir.AllOps() {
		if _, ok := m.SW[op]; !ok {
			t.Errorf("no software latency for %v", op)
		}
		if op.IsMem() {
			if m.HWImplementable(op) {
				t.Errorf("memory op %v must not be HW-implementable", op)
			}
			continue
		}
		if !m.HWImplementable(op) {
			t.Errorf("%v should be HW-implementable", op)
		}
	}
}

func TestDefaultRelativeShape(t *testing.T) {
	m := Default()
	hw := func(op ir.Op) float64 {
		d, ok := m.HWLat(op)
		if !ok {
			t.Fatalf("HWLat(%v) missing", op)
		}
		return d
	}
	// Logic << shift < add < mul <= MAC(=1.0 normalization ceiling).
	if !(hw(ir.OpXor) < hw(ir.OpShl) && hw(ir.OpShl) < hw(ir.OpAdd) &&
		hw(ir.OpAdd) < hw(ir.OpMul) && hw(ir.OpMul) < 1.0) {
		t.Error("hardware latency table violates the published relative shape")
	}
	if m.SWLat(ir.OpMul) <= m.SWLat(ir.OpAdd) {
		t.Error("multiply must cost more software cycles than add")
	}
	if m.SWLat(ir.OpLoad) <= m.SWLat(ir.OpAdd) {
		t.Error("load must cost more software cycles than add")
	}
}

func TestSWLatPanicsOnUnknown(t *testing.T) {
	m := &Model{SW: map[ir.Op]int{}}
	defer func() {
		if recover() == nil {
			t.Fatal("SWLat on missing opcode should panic")
		}
	}()
	m.SWLat(ir.OpAdd)
}

func TestBlockSWLatAndValidate(t *testing.T) {
	m := Default()
	bu := ir.NewBuilder("b", 1)
	x, y := bu.Input("x"), bu.Input("y")
	v := bu.Add(bu.Mul(x, y), y)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	if got, want := m.BlockSWLat(blk), m.SWLat(ir.OpMul)+m.SWLat(ir.OpAdd); got != want {
		t.Errorf("BlockSWLat = %d, want %d", got, want)
	}
	if err := m.Validate(blk); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// A model missing mul must fail validation.
	bad := &Model{SW: map[ir.Op]int{ir.OpAdd: 1}, HW: map[ir.Op]float64{ir.OpAdd: 0.3}}
	if err := bad.Validate(blk); err == nil {
		t.Error("Validate should fail for incomplete model")
	}
}

func TestEnergyTablesConsistent(t *testing.T) {
	m := Default()
	for op, c := range m.SW {
		if e, ok := m.SWEnergy[op]; !ok || e <= 0 {
			t.Errorf("SWEnergy[%v] = %v, ok=%v", op, e, ok)
		} else if e < float64(c)*0.5 {
			t.Errorf("SWEnergy[%v] suspiciously low vs %d cycles", op, c)
		}
	}
	for op := range m.HW {
		eh, ok := m.HWEnergy[op]
		if !ok || eh <= 0 {
			t.Errorf("HWEnergy[%v] missing", op)
			continue
		}
		if es := m.SWEnergy[op]; eh >= es {
			t.Errorf("HW energy for %v (%v) should undercut SW energy (%v)", op, eh, es)
		}
	}
}
