package genetic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

func defaultOpts() Options {
	return Options{MaxIn: 4, MaxOut: 2, Model: latency.Default(), Seed: 1}
}

func randKernelBlock(rng *rand.Rand, n int) *ir.Block {
	bu := ir.NewBuilder("rand", 1)
	ins := bu.Inputs(2 + rng.Intn(3))
	vals := append([]ir.Value{}, ins...)
	for i := 0; i < n; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		var v ir.Value
		switch rng.Intn(10) {
		case 0:
			v = bu.Mul(a, b)
		case 1:
			v = bu.Xor(a, b)
		case 2:
			v = bu.Shl(a, b)
		case 3:
			v = bu.Load(a)
		default:
			v = bu.Add(a, b)
		}
		vals = append(vals, v)
	}
	bu.LiveOut(vals[len(vals)-1])
	return bu.MustBuild()
}

func assertFeasibleCut(t *testing.T, blk *ir.Block, cut *core.Cut, opt Options) {
	t.Helper()
	_, _, in, out, convex := core.CutMetrics(blk, opt.Model, cut.Nodes)
	if !convex {
		t.Fatalf("GA returned non-convex cut %v", cut.Nodes)
	}
	if in > opt.MaxIn || out > opt.MaxOut {
		t.Fatalf("GA cut io (%d,%d) exceeds (%d,%d)", in, out, opt.MaxIn, opt.MaxOut)
	}
	cut.Nodes.ForEach(func(v int) bool {
		if blk.ForbiddenInCut(v) {
			t.Fatalf("GA cut contains forbidden node %d", v)
		}
		return true
	})
}

func TestGASingleCutFeasibleAndGood(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	opt := defaultOpts()
	totalRatio, trials := 0.0, 0
	for trial := 0; trial < 12; trial++ {
		blk := randKernelBlock(rng, 5+rng.Intn(10))
		optimal, err := exact.SingleCut(blk, exact.Options{
			MaxIn: opt.MaxIn, MaxOut: opt.MaxOut, Model: opt.Model,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SingleCut(blk, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if optimal == nil {
			if got != nil {
				t.Fatalf("trial %d: GA found a cut where none is feasible", trial)
			}
			continue
		}
		if got == nil {
			t.Fatalf("trial %d: GA found nothing, optimum %v", trial, optimal.Merit())
		}
		assertFeasibleCut(t, blk, got, opt)
		ratio := got.Merit() / optimal.Merit()
		if ratio > 1+1e-9 {
			t.Fatalf("trial %d: GA merit %v above optimum %v", trial, got.Merit(), optimal.Merit())
		}
		totalRatio += ratio
		trials++
	}
	if trials > 0 && totalRatio/float64(trials) < 0.9 {
		t.Errorf("GA average quality %.3f of optimal, want >= 0.9 (paper: GA matches optimum on small blocks)", totalRatio/float64(trials))
	}
}

func TestGADeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blk := randKernelBlock(rng, 12)
	opt := defaultOpts()
	c1, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case c1 == nil && c2 == nil:
	case c1 == nil || c2 == nil:
		t.Fatal("same seed, different nil-ness")
	default:
		if !c1.Nodes.Equal(c2.Nodes) {
			t.Fatalf("same seed, different cuts: %v vs %v", c1.Nodes, c2.Nodes)
		}
	}
}

func TestGASeedSensitivity(t *testing.T) {
	// The paper criticizes the GA for being stochastic: different seeds
	// may give different answers. Verify at least that all seeds give
	// feasible answers.
	rng := rand.New(rand.NewSource(10))
	blk := randKernelBlock(rng, 14)
	opt := defaultOpts()
	for seed := int64(1); seed <= 5; seed++ {
		opt.Seed = seed
		cut, err := SingleCut(blk, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cut != nil {
			assertFeasibleCut(t, blk, cut, opt)
		}
	}
}

func TestGAExcludedNodes(t *testing.T) {
	bu := ir.NewBuilder("mac", 1)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	m := bu.Mul(a, b)
	s := bu.Add(m, acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()
	opt := defaultOpts()
	full, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full == nil || !full.Nodes.Has(0) {
		t.Fatalf("unrestricted GA cut = %v, must include the mul", full)
	}
	excl := graph.NewBitSet(2)
	excl.Set(0) // exclude the mul: the lone add saves nothing
	cut, err := SingleCut(blk, opt, excl)
	if err != nil {
		t.Fatal(err)
	}
	if cut != nil {
		t.Fatalf("cut = %v, must be nil (excluded mul, add has zero merit)", cut.Nodes)
	}
}

func TestGAAllFrozen(t *testing.T) {
	bu := ir.NewBuilder("allmem", 1)
	a := bu.Input("a")
	bu.LiveOut(bu.Load(a))
	blk := bu.MustBuild()
	cut, err := SingleCut(blk, defaultOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cut != nil {
		t.Fatal("expected nil cut on all-frozen block")
	}
}

func TestGAIterativeDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	blk := randKernelBlock(rng, 16)
	opt := defaultOpts()
	cuts, err := Iterative(blk, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := graph.NewBitSet(blk.N())
	for _, c := range cuts {
		assertFeasibleCut(t, blk, c, opt)
		if seen.Intersects(c.Nodes) {
			t.Fatal("iterative GA cuts overlap")
		}
		seen.Or(c.Nodes)
		if c.Merit() <= 0 {
			t.Fatal("non-positive merit")
		}
	}
}

func TestGAOptionsValidation(t *testing.T) {
	blk := randKernelBlock(rand.New(rand.NewSource(1)), 4)
	if _, err := SingleCut(blk, Options{MaxIn: 4, MaxOut: 2}, nil); err == nil {
		t.Error("nil model should be rejected")
	}
	if _, err := SingleCut(blk, Options{MaxIn: 0, MaxOut: 1, Model: latency.Default()}, nil); err == nil {
		t.Error("MaxIn 0 should be rejected")
	}
	if _, err := Iterative(blk, defaultOpts(), 0); err == nil {
		t.Error("nise 0 should be rejected")
	}
}

// On a clean MAC the GA must find the exact optimum (it is tiny).
func TestGAFindsMACOptimum(t *testing.T) {
	bu := ir.NewBuilder("mac", 1)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	s := bu.Add(bu.Mul(a, b), acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()
	cut, err := SingleCut(blk, defaultOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cut == nil {
		t.Fatal("GA found no cut")
	}
	if math.Abs(cut.Merit()-2) > 1e-9 {
		t.Errorf("merit = %v, want 2 (mul alone or the full MAC)", cut.Merit())
	}
}

func BenchmarkGASingleCut30(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	blk := randKernelBlock(rng, 30)
	opt := defaultOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleCut(blk, opt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
