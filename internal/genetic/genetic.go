// Package genetic implements the stochastic ISE identification baseline
// the paper compares against (its reference [4], Biswas et al. DAC 2004):
// a genetic algorithm over node-membership bitstrings with penalty-based
// fitness, tournament selection, uniform crossover, point mutation and
// elitism. Multiple cuts are found iteratively, freezing each winner.
//
// The algorithm is deliberately seeded (Options.Seed) so experiments are
// repeatable, but — as the paper stresses — different seeds may yield
// different solutions, unlike the deterministic ISEGEN.
package genetic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/obs"
)

// Options configure the genetic search.
type Options struct {
	MaxIn, MaxOut int
	Model         *latency.Model

	// Pop is the population size (default 96).
	Pop int
	// MaxGen bounds the number of generations (default 220).
	MaxGen int
	// Stall stops the search after this many generations without
	// improvement of the best feasible fitness (default 40).
	Stall int
	// MutScale scales the per-gene mutation probability MutScale/n
	// (default 1.5).
	MutScale float64
	// TournamentK is the tournament size for selection (default 3).
	TournamentK int
	// Elite is the number of elite individuals copied unchanged
	// (default 2).
	Elite int
	// Seed makes runs repeatable.
	Seed int64

	// IOPenalty and ConvexPenalty shape fitness for infeasible
	// individuals (defaults 6 and 4 per violation unit).
	IOPenalty     float64
	ConvexPenalty float64

	// Metrics costs chromosomes; nil uses core.MetricsOf directly. The
	// search layer installs its shared memoized cache here — fitness
	// evaluation is the genetic baseline's hot path, and converged
	// populations re-evaluate the same chromosomes generation after
	// generation.
	Metrics core.MetricsFunc

	// Stop, when non-nil, is polled between generations and between the
	// iterative rounds; a true return abandons the evolution early. The
	// best feasible cuts found before the stop are still returned (with
	// a nil error), so a cancelled run yields a usable partial answer —
	// the racing engine's deadline path relies on this.
	Stop func() bool

	// Obs, when non-nil, receives the run's generation and fitness-
	// evaluation counts (flushed once per SingleCut call, never inside
	// the evolution loop). Counters are write-only: they cannot affect
	// the evolved result.
	Obs *obs.Recorder
}

func (o *Options) fill() {
	if o.Pop == 0 {
		o.Pop = 96
	}
	if o.MaxGen == 0 {
		o.MaxGen = 220
	}
	if o.Stall == 0 {
		o.Stall = 40
	}
	if o.MutScale == 0 {
		o.MutScale = 1.5
	}
	if o.TournamentK == 0 {
		o.TournamentK = 3
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	if o.IOPenalty == 0 {
		o.IOPenalty = 6
	}
	if o.ConvexPenalty == 0 {
		o.ConvexPenalty = 4
	}
}

func (o *Options) validate(blk *ir.Block) error {
	if o.Model == nil {
		return fmt.Errorf("genetic: Options.Model is nil")
	}
	if o.MaxIn < 1 || o.MaxOut < 1 {
		return fmt.Errorf("genetic: I/O constraints (%d,%d) must be at least (1,1)", o.MaxIn, o.MaxOut)
	}
	return o.Model.Validate(blk)
}

type individual struct {
	genes   []bool
	fitness float64
	// feasible merit; negative when infeasible.
	feasibleMerit float64
	feasible      bool
}

type evaluator struct {
	blk    *ir.Block
	opt    *Options
	frozen *graph.BitSet
	geneID []int // gene position -> node ID
	cutBuf *graph.BitSet
	// swLat/hwLat back the nil-Metrics fast path: fitness evaluation is
	// the hot loop, and precomputed arrays beat per-node model lookups.
	swLat   []int
	hwLat   []float64
	metrics core.MetricsFunc
	// evals counts fitness evaluations for the observability flush.
	evals int64
}

func newEvaluator(blk *ir.Block, opt *Options, excluded *graph.BitSet) *evaluator {
	n := blk.N()
	e := &evaluator{
		blk:     blk,
		opt:     opt,
		frozen:  graph.NewBitSet(n),
		cutBuf:  graph.NewBitSet(n),
		swLat:   make([]int, n),
		hwLat:   make([]float64, n),
		metrics: opt.Metrics,
	}
	if excluded != nil {
		e.frozen.Or(excluded)
	}
	for v := 0; v < n; v++ {
		op := blk.Nodes[v].Op
		e.swLat[v] = opt.Model.SWLat(op)
		if d, ok := opt.Model.HWLat(op); ok {
			e.hwLat[v] = d
		} else {
			e.frozen.Set(v)
		}
		if blk.ForbiddenInCut(v) {
			e.frozen.Set(v)
		}
	}
	for v := 0; v < n; v++ {
		if !e.frozen.Has(v) {
			e.geneID = append(e.geneID, v)
		}
	}
	return e
}

// eval computes penalty-shaped fitness for one chromosome. With an
// installed MetricsFunc (the search layer's memoized cache) each distinct
// chromosome is costed once; without one, the precomputed latency arrays
// keep the per-evaluation cost to one longest-path sweep.
func (e *evaluator) eval(ind *individual) {
	e.evals++
	cut := e.cutBuf
	cut.Reset()
	for g, on := range ind.genes {
		if on {
			cut.Set(e.geneID[g])
		}
	}
	if cut.Empty() {
		ind.fitness = 0
		ind.feasible = false
		ind.feasibleMerit = 0
		return
	}
	m := e.costCut(cut)
	merit := m.Merit()

	pen := 0.0
	if over := m.NumIn - e.opt.MaxIn; over > 0 {
		pen += e.opt.IOPenalty * float64(over)
	}
	if over := m.NumOut - e.opt.MaxOut; over > 0 {
		pen += e.opt.IOPenalty * float64(over)
	}
	pen += e.opt.ConvexPenalty * float64(m.NViol)

	ind.fitness = merit - pen
	ind.feasible = pen == 0
	ind.feasibleMerit = merit
}

// costCut costs one chromosome's cut: through the installed MetricsFunc
// when present, else directly via the precomputed latency arrays
// (equivalent to core.MetricsOf — the cut never contains frozen nodes).
func (e *evaluator) costCut(cut *graph.BitSet) core.Metrics {
	if e.metrics != nil {
		return e.metrics(e.blk, e.opt.Model, cut)
	}
	var m core.Metrics
	cut.ForEach(func(v int) bool {
		m.SWLat += e.swLat[v]
		return true
	})
	dag := e.blk.DAG()
	_, m.HWLat = dag.LongestPath(cut, func(v int) float64 { return e.hwLat[v] })
	m.NumIn = e.blk.CutInputs(cut)
	m.NumOut = e.blk.CutOutputs(cut)
	m.NViol = len(dag.ConvexViolators(cut))
	return m
}

// growCluster marks a connected region of up to target unfrozen nodes,
// random-walking over DAG neighbours from a random start.
func (e *evaluator) growCluster(rng *rand.Rand, geneOf map[int]int, genes []bool, target int) {
	start := e.geneID[rng.Intn(len(e.geneID))]
	genes[geneOf[start]] = true
	frontier := []int{start}
	count := 1
	dag := e.blk.DAG()
	for count < target && len(frontier) > 0 {
		idx := rng.Intn(len(frontier))
		v := frontier[idx]
		var cands []int
		for _, p := range dag.Preds(v) {
			if g, ok := geneOf[p]; ok && !genes[g] {
				cands = append(cands, p)
			}
		}
		for _, s := range dag.Succs(v) {
			if g, ok := geneOf[s]; ok && !genes[g] {
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			frontier[idx] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			continue
		}
		n := cands[rng.Intn(len(cands))]
		genes[geneOf[n]] = true
		frontier = append(frontier, n)
		count++
	}
}

// SingleCut evolves one feasible cut of the block, or returns nil when the
// search finds no feasible cut with positive merit. Nodes in excluded (may
// be nil) cannot join the cut.
func SingleCut(blk *ir.Block, opt Options, excluded *graph.BitSet) (*core.Cut, error) {
	opt.fill()
	if err := opt.validate(blk); err != nil {
		return nil, err
	}
	e := newEvaluator(blk, &opt, excluded)
	ng := len(e.geneID)
	if ng == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Population seeding: half random sparse chromosomes, half connected
	// clusters grown from random start nodes. Pure random subsets of a
	// large DFG are almost surely non-convex and port-infeasible, so the
	// cluster seeds give evolution feasible material to improve — the
	// DAC'04 formulation is similarly structured around connected
	// regions.
	geneOf := make(map[int]int, ng)
	for g, v := range e.geneID {
		geneOf[v] = g
	}
	pop := make([]*individual, opt.Pop)
	for i := range pop {
		genes := make([]bool, ng)
		if i%2 == 0 {
			density := 0.05 + 0.4*rng.Float64()
			if max := 12.0 / float64(ng); density > max && max > 0 {
				density = max + rng.Float64()*max
			}
			for g := range genes {
				genes[g] = rng.Float64() < density
			}
		} else {
			e.growCluster(rng, geneOf, genes, 1+rng.Intn(10))
		}
		pop[i] = &individual{genes: genes}
		e.eval(pop[i])
	}

	bestFeasible := graph.NewBitSet(blk.N())
	bestMerit := 0.0
	stall := 0
	mutP := opt.MutScale / float64(ng)

	recordBest := func() bool {
		improved := false
		for _, ind := range pop {
			if ind.feasible && ind.feasibleMerit > bestMerit {
				bestMerit = ind.feasibleMerit
				bestFeasible.Reset()
				for g, on := range ind.genes {
					if on {
						bestFeasible.Set(e.geneID[g])
					}
				}
				improved = true
			}
		}
		return improved
	}
	recordBest()

	gens := int64(0)
	for gen := 0; gen < opt.MaxGen && stall < opt.Stall; gen++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		gens++
		sort.Slice(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
		next := make([]*individual, 0, opt.Pop)
		for i := 0; i < opt.Elite && i < len(pop); i++ {
			clone := &individual{genes: append([]bool(nil), pop[i].genes...)}
			e.eval(clone)
			next = append(next, clone)
		}
		for len(next) < opt.Pop {
			p1 := tournament(pop, rng, opt.TournamentK)
			p2 := tournament(pop, rng, opt.TournamentK)
			child := &individual{genes: make([]bool, ng)}
			for g := 0; g < ng; g++ {
				if rng.Intn(2) == 0 {
					child.genes[g] = p1.genes[g]
				} else {
					child.genes[g] = p2.genes[g]
				}
				if rng.Float64() < mutP {
					child.genes[g] = !child.genes[g]
				}
			}
			e.eval(child)
			next = append(next, child)
		}
		pop = next
		if recordBest() {
			stall = 0
		} else {
			stall++
		}
	}

	opt.Obs.Add(obs.GeneticGenerations, gens)
	opt.Obs.Add(obs.GeneticEvaluations, e.evals)
	if bestFeasible.Empty() || bestMerit <= 0 {
		return nil, nil
	}
	m := e.costCut(bestFeasible)
	return &core.Cut{
		Block: blk, Nodes: bestFeasible,
		NumIn: m.NumIn, NumOut: m.NumOut, SWLat: m.SWLat, HWLat: m.HWLat,
	}, nil
}

func tournament(pop []*individual, rng *rand.Rand, k int) *individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

// Iterative finds up to nise cuts by repeated single-cut evolution,
// freezing each winner's nodes — the multi-cut strategy of the genetic
// baseline.
func Iterative(blk *ir.Block, opt Options, nise int) ([]*core.Cut, error) {
	if nise < 1 {
		return nil, fmt.Errorf("genetic: nise = %d, must be at least 1", nise)
	}
	excluded := graph.NewBitSet(blk.N())
	var cuts []*core.Cut
	for len(cuts) < nise {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		opt.Seed++ // decorrelate successive searches deterministically
		cut, err := SingleCut(blk, opt, excluded)
		if err != nil {
			return cuts, err
		}
		if cut == nil {
			break
		}
		cuts = append(cuts, cut)
		excluded.Or(cut.Nodes)
	}
	return cuts, nil
}
