package genetic

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/latency"
)

// TestGrowClusterConnectedAndUnfrozen: cluster seeds stay within the
// unfrozen genes and form one weakly-connected region.
func TestGrowClusterConnectedAndUnfrozen(t *testing.T) {
	bu := ir.NewBuilder("cl", 1)
	a, b := bu.Input("a"), bu.Input("b")
	v1 := bu.Add(a, b)
	ld := bu.Load(v1) // frozen
	v2 := bu.Mul(ld, a)
	v3 := bu.Xor(v2, b)
	v4 := bu.Sub(v3, a)
	bu.LiveOut(v4)
	blk := bu.MustBuild()

	opt := Options{MaxIn: 4, MaxOut: 2, Model: latency.Default(), Seed: 3}
	opt.fill()
	e := newEvaluator(blk, &opt, nil)
	geneOf := map[int]int{}
	for g, v := range e.geneID {
		geneOf[v] = g
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		genes := make([]bool, len(e.geneID))
		e.growCluster(rng, geneOf, genes, 1+rng.Intn(4))
		// Collect selected node IDs.
		var nodes []int
		for g, on := range genes {
			if on {
				nodes = append(nodes, e.geneID[g])
			}
		}
		if len(nodes) == 0 {
			t.Fatal("cluster empty")
		}
		for _, v := range nodes {
			if e.frozen.Has(v) {
				t.Fatalf("cluster contains frozen node %d", v)
			}
		}
		// Connectivity: BFS over DAG neighbours within the cluster.
		inCluster := map[int]bool{}
		for _, v := range nodes {
			inCluster[v] = true
		}
		seen := map[int]bool{nodes[0]: true}
		queue := []int{nodes[0]}
		dag := blk.DAG()
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, n := range append(append([]int{}, dag.Preds(v)...), dag.Succs(v)...) {
				if inCluster[n] && !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		if len(seen) != len(nodes) {
			t.Fatalf("cluster %v not connected", nodes)
		}
	}
}

// The GA must find something decent on the regular AES block now that the
// population is seeded with clusters (this was the Figure 6 fix).
func TestGAFindsAESCut(t *testing.T) {
	if testing.Short() {
		t.Skip("AES GA in -short mode")
	}
	// Import cycle prevention: build a miniature AES-like regular block
	// instead of importing kernels (xtime chains).
	bu := ir.NewBuilder("mini", 1)
	var outs []ir.Value
	for k := 0; k < 8; k++ {
		b := bu.Input("b")
		hi := bu.AndI(b, 0x80)
		sh := bu.ShlI(b, 1)
		m := bu.AndI(sh, 0xff)
		red := bu.Select(hi, bu.Imm(0x1b), bu.Imm(0))
		x := bu.Xor(m, red)
		outs = append(outs, x)
	}
	bu.LiveOut(outs...)
	blk := bu.MustBuild()

	opt := Options{MaxIn: 4, MaxOut: 2, Model: latency.Default(), Seed: 1}
	cut, err := SingleCut(blk, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cut == nil {
		t.Fatal("GA found nothing on the regular block")
	}
	if cut.Merit() < 2 {
		t.Errorf("GA merit %v too low on regular block", cut.Merit())
	}
}
