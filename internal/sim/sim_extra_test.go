package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// TestScheduleMultiCycleISE: an ISE whose datapath exceeds one MAC delay
// occupies multiple core cycles.
func TestScheduleMultiCycleISE(t *testing.T) {
	bu := ir.NewBuilder("deep", 1)
	a, b := bu.Input("a"), bu.Input("b")
	v := bu.Mul(a, b) // 0.9
	v = bu.Mul(v, a)  // 1.8
	v = bu.Mul(v, b)  // 2.7
	bu.LiveOut(v)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(3)
	for i := 0; i < 3; i++ {
		cut.Set(i)
	}
	sched, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{cut})
	if err != nil {
		t.Fatal(err)
	}
	// cp = 2.7 -> 3 cycles (vs 9 in software).
	if sched.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", sched.Cycles)
	}
}

// TestScheduleEmptyInstanceIgnored: empty bitsets in the instance list are
// skipped rather than crashing.
func TestScheduleEmptyInstanceIgnored(t *testing.T) {
	bu := ir.NewBuilder("e", 1)
	a := bu.Input("a")
	bu.LiveOut(bu.Neg(a))
	blk := bu.MustBuild()
	sched, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{graph.NewBitSet(1)})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", sched.Cycles)
	}
}

// TestScheduleInputMismatch reports input arity errors at Run time.
func TestScheduleInputMismatch(t *testing.T) {
	bu := ir.NewBuilder("m", 1)
	a, b := bu.Input("a"), bu.Input("b")
	bu.LiveOut(bu.Add(a, b))
	blk := bu.MustBuild()
	sched, err := NewSchedule(blk, latency.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run([]int32{1}, nil); err == nil {
		t.Fatal("short input vector must fail")
	}
}

// TestRunAppMultipleBlocksAndInstances covers the map-driven instance
// routing across blocks.
func TestRunAppMultipleBlocksAndInstances(t *testing.T) {
	mk := func(name string, freq float64) (*ir.Block, *graph.BitSet) {
		bu := ir.NewBuilder(name, freq)
		a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
		s := bu.Add(bu.Mul(a, b), acc)
		bu.LiveOut(s)
		blk := bu.MustBuild()
		cut := graph.NewBitSet(2)
		cut.Set(0)
		cut.Set(1)
		return blk, cut
	}
	b0, c0 := mk("one", 10)
	b1, c1 := mk("two", 5)
	app := &ir.Application{Name: "multi", Blocks: []*ir.Block{b0, b1}}
	res, err := RunApp(app, latency.Default(), map[int][]*graph.BitSet{0: {c0}, 1: {c1}})
	if err != nil {
		t.Fatal(err)
	}
	// Both blocks: 4 sw cycles -> 2 accel; weighted 15 executions.
	if res.BaselineCycles != 60 || res.AccelCycles != 30 {
		t.Errorf("cycles %v -> %v, want 60 -> 30", res.BaselineCycles, res.AccelCycles)
	}
	// Only the hot block accelerated.
	res, err = RunApp(app, latency.Default(), map[int][]*graph.BitSet{0: {c0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.AccelCycles != 10*2+5*4 {
		t.Errorf("partial accel cycles = %v, want 40", res.AccelCycles)
	}
}
