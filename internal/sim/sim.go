// Package sim is a cycle-level model of the paper's baseline architecture:
// a simple in-order single-issue RISC core optionally extended with AFUs.
// It executes IR blocks functionally (so ISE-covered results can be checked
// against plain software execution) and reports cycle counts, realizing the
// paper's future-work item of evaluating ISEs in a running system rather
// than analytically.
//
// Scheduling model: the block's instructions issue one at a time; a
// software instruction occupies the core for its software latency, an ISE
// instance occupies it for ceil(latHW) cycles (the AFU datapath is
// combinational, clocked at the core frequency, with the MAC delay defining
// the cycle). Memory operations keep their program order.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// unit is one issue slot: either a single software instruction or an
// atomic ISE instance.
type unit struct {
	nodes  []int // ascending original IDs
	isISE  bool
	cycles int64
}

// Schedule is a legal linearization of a block with ISE instances
// contracted into atomic units.
type Schedule struct {
	blk   *ir.Block
	units []unit
	// Cycles is the total issue latency of the schedule.
	Cycles int64
}

// ErrUnschedulable is reported when contracted ISE instances form a
// dependency cycle.
type ErrUnschedulable struct{ Block string }

func (e *ErrUnschedulable) Error() string {
	return fmt.Sprintf("sim: block %q: ISE instances form a dependency cycle", e.Block)
}

// NewSchedule linearizes the block with the given ISE instances (pairwise
// disjoint node sets). Data dependencies, memory program order and
// instance atomicity are preserved; a dependency cycle between instances
// yields ErrUnschedulable.
func NewSchedule(blk *ir.Block, model *latency.Model, instances []*graph.BitSet) (*Schedule, error) {
	n := blk.N()
	unitOf := make([]int, n)
	for i := range unitOf {
		unitOf[i] = -1
	}
	var units []unit
	for _, inst := range instances {
		if inst.Empty() {
			continue
		}
		u := unit{isISE: true}
		conflict := false
		inst.ForEach(func(v int) bool {
			if unitOf[v] >= 0 {
				conflict = true
				return false
			}
			unitOf[v] = len(units)
			u.nodes = append(u.nodes, v)
			return true
		})
		if conflict {
			return nil, fmt.Errorf("sim: block %q: overlapping ISE instances", blk.Name)
		}
		_, cp := blk.DAG().LongestPath(inst, func(v int) float64 {
			d, ok := model.HWLat(blk.Nodes[v].Op)
			if !ok {
				return math.Inf(1)
			}
			return d
		})
		if math.IsInf(cp, 1) {
			return nil, fmt.Errorf("sim: block %q: ISE instance contains a non-implementable operation", blk.Name)
		}
		u.cycles = int64(math.Ceil(cp - 1e-9))
		if u.cycles < 1 {
			u.cycles = 1
		}
		units = append(units, u)
	}
	for v := 0; v < n; v++ {
		if unitOf[v] >= 0 {
			continue
		}
		unitOf[v] = len(units)
		units = append(units, unit{
			nodes:  []int{v},
			cycles: int64(model.SWLat(blk.Nodes[v].Op)),
		})
	}

	// Build the contracted dependence graph from the block DAG, which
	// already includes the memory-ordering edges (store→load,
	// load→store, store→store) alongside the data dependences.
	nu := len(units)
	succs := make([]map[int]bool, nu)
	indeg := make([]int, nu)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if succs[a] == nil {
			succs[a] = map[int]bool{}
		}
		if !succs[a][b] {
			succs[a][b] = true
			indeg[b]++
		}
	}
	dag := blk.DAG()
	for v := 0; v < n; v++ {
		for _, s := range dag.Succs(v) {
			addEdge(unitOf[v], unitOf[s])
		}
	}

	// Kahn with deterministic (smallest first node) priority.
	frontier := make([]int, 0, nu)
	for u := 0; u < nu; u++ {
		if indeg[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	less := func(a, b int) bool { return units[a].nodes[0] < units[b].nodes[0] }
	sort.Slice(frontier, func(i, j int) bool { return less(frontier[i], frontier[j]) })
	sched := &Schedule{blk: blk}
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		sched.units = append(sched.units, units[u])
		sched.Cycles += units[u].cycles
		changed := false
		for s := range succs[u] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
				changed = true
			}
		}
		if changed {
			sort.Slice(frontier, func(i, j int) bool { return less(frontier[i], frontier[j]) })
		}
	}
	if len(sched.units) != nu {
		return nil, &ErrUnschedulable{Block: blk.Name}
	}
	return sched, nil
}

// Run executes the schedule on the given inputs and memory, returning
// every node's value. Functional behaviour is identical to ir.Block.Eval;
// only the issue order (and hence the cycle count) differs.
func (s *Schedule) Run(inputs []int32, mem ir.Memory) ([]int32, error) {
	blk := s.blk
	if len(inputs) != blk.NumInputs {
		return nil, fmt.Errorf("sim: block %q: %d inputs supplied, want %d", blk.Name, len(inputs), blk.NumInputs)
	}
	if mem == nil {
		mem = ir.NewMapMemory()
	}
	vals := make([]int32, blk.N())
	argBuf := make([]int32, 0, 3)
	for _, u := range s.units {
		for _, v := range u.nodes {
			nd := &blk.Nodes[v]
			argBuf = argBuf[:0]
			for _, a := range nd.Args {
				switch a.Kind {
				case ir.FromNode:
					argBuf = append(argBuf, vals[a.Index])
				case ir.FromInput:
					argBuf = append(argBuf, inputs[a.Index])
				case ir.FromImm:
					argBuf = append(argBuf, int32(a.Index))
				}
			}
			switch nd.Op {
			case ir.OpLoad:
				vals[v] = mem.Load(argBuf[0])
			case ir.OpStore:
				mem.Store(argBuf[0], argBuf[1])
			default:
				r, err := ir.EvalOp(nd.Op, nd.Imm, argBuf)
				if err != nil {
					return nil, fmt.Errorf("sim: block %q node %d: %w", blk.Name, v, err)
				}
				vals[v] = r
			}
		}
	}
	return vals, nil
}

// BlockCycles returns the issue latency of the block without any ISE.
func BlockCycles(blk *ir.Block, model *latency.Model) int64 {
	total := int64(0)
	for i := range blk.Nodes {
		total += int64(model.SWLat(blk.Nodes[i].Op))
	}
	return total
}

// AppResult reports an application-level simulation.
type AppResult struct {
	BaselineCycles float64
	AccelCycles    float64
	Speedup        float64
}

// RunApp computes freq-weighted cycle totals for the application, with
// instances[bi] listing the ISE instances claimed in block bi (nil = no
// ISEs there). Functional equivalence of every block's accelerated
// schedule is verified against plain execution on deterministic inputs.
func RunApp(app *ir.Application, model *latency.Model, instances map[int][]*graph.BitSet) (*AppResult, error) {
	res := &AppResult{}
	for bi, blk := range app.Blocks {
		base := BlockCycles(blk, model)
		res.BaselineCycles += blk.Freq * float64(base)
		sched, err := NewSchedule(blk, model, instances[bi])
		if err != nil {
			return nil, err
		}
		res.AccelCycles += blk.Freq * float64(sched.Cycles)

		// Functional check on deterministic inputs.
		in := make([]int32, blk.NumInputs)
		for k := range in {
			in[k] = int32(k*2654435761 + bi*40503 + 17)
		}
		memRef, memAcc := ir.NewMapMemory(), ir.NewMapMemory()
		for a := int32(0); a < 64; a++ {
			v := a*1103515245 + 12345
			memRef.Store(a, v)
			memAcc.Store(a, v)
		}
		want, err := blk.Eval(in, memRef)
		if err != nil {
			return nil, err
		}
		got, err := sched.Run(in, memAcc)
		if err != nil {
			return nil, err
		}
		for v := range want {
			if want[v] != got[v] {
				return nil, fmt.Errorf("sim: block %q: accelerated execution diverges at node %d (%d != %d)",
					blk.Name, v, got[v], want[v])
			}
		}
	}
	if res.AccelCycles <= 0 {
		return nil, fmt.Errorf("sim: non-positive accelerated cycles")
	}
	res.Speedup = res.BaselineCycles / res.AccelCycles
	return res, nil
}
