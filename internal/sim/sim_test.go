package sim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

func macBlock(t testing.TB) (*ir.Block, *graph.BitSet) {
	bu := ir.NewBuilder("mac", 10)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	m := bu.Mul(a, b)
	s := bu.Add(m, acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()
	cut := graph.NewBitSet(2)
	cut.Set(0)
	cut.Set(1)
	return blk, cut
}

func TestScheduleNoISE(t *testing.T) {
	blk, _ := macBlock(t)
	model := latency.Default()
	sched, err := NewSchedule(blk, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Cycles != int64(model.SWLat(ir.OpMul)+model.SWLat(ir.OpAdd)) {
		t.Errorf("cycles = %d", sched.Cycles)
	}
	vals, err := sched.Run([]int32{6, 7, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] != 50 {
		t.Errorf("6*7+8 = %d, want 50", vals[1])
	}
}

func TestScheduleWithISE(t *testing.T) {
	blk, cut := macBlock(t)
	model := latency.Default()
	sched, err := NewSchedule(blk, model, []*graph.BitSet{cut})
	if err != nil {
		t.Fatal(err)
	}
	// MAC hw = 0.9 + 0.3 = 1.2 -> ceil = 2 cycles (vs 4 in software).
	if sched.Cycles != 2 {
		t.Errorf("ISE cycles = %d, want 2", sched.Cycles)
	}
	vals, err := sched.Run([]int32{6, 7, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] != 50 {
		t.Errorf("accelerated 6*7+8 = %d, want 50", vals[1])
	}
}

func TestScheduleRejectsOverlap(t *testing.T) {
	blk, cut := macBlock(t)
	if _, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{cut, cut}); err == nil {
		t.Fatal("overlapping instances must be rejected")
	}
}

func TestScheduleRejectsMemoryInISE(t *testing.T) {
	bu := ir.NewBuilder("m", 1)
	a := bu.Input("a")
	ld := bu.Load(a)
	s := bu.Add(ld, a)
	bu.LiveOut(s)
	blk := bu.MustBuild()
	bad := graph.NewBitSet(2)
	bad.Set(0)
	bad.Set(1)
	if _, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{bad}); err == nil {
		t.Fatal("ISE containing a load must be rejected")
	}
}

func TestScheduleDetectsCycle(t *testing.T) {
	// A = {0,3}, B = {1,2}: mutual dependency after contraction.
	bu := ir.NewBuilder("cyc", 1)
	x := bu.Input("x")
	a1 := bu.Add(x, x)
	b1 := bu.Neg(a1)
	b2 := bu.Xor(x, x)
	a2 := bu.Sub(b2, x)
	o := bu.Or(b1, a2)
	bu.LiveOut(o)
	blk := bu.MustBuild()
	setA := graph.NewBitSet(5)
	setA.Set(0)
	setA.Set(3)
	setB := graph.NewBitSet(5)
	setB.Set(1)
	setB.Set(2)
	_, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{setA, setB})
	if _, ok := err.(*ErrUnschedulable); !ok {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestMemoryOrderPreserved(t *testing.T) {
	// store mem[addr]=1; load mem[addr]; an ISE covering unrelated math
	// must not reorder the memory ops.
	bu := ir.NewBuilder("mem", 2)
	addr, y := bu.Input("addr"), bu.Input("y")
	one := bu.Const(1)
	bu.Store(addr, one)
	ld := bu.Load(addr)
	m := bu.Mul(y, y)
	s := bu.Add(m, ld)
	bu.LiveOut(s)
	blk := bu.MustBuild()

	cut := graph.NewBitSet(blk.N())
	cut.Set(3) // mul
	cut.Set(4) // add
	sched, err := NewSchedule(blk, latency.Default(), []*graph.BitSet{cut})
	if err != nil {
		t.Fatal(err)
	}
	mem := ir.NewMapMemory()
	vals, err := sched.Run([]int32{100, 3}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if vals[4] != 10 {
		t.Errorf("3*3 + mem[100](=1 after store) = %d, want 10", vals[4])
	}
}

// Property: for random blocks and a random feasible convex instance, the
// accelerated schedule computes exactly the same values as plain Eval and
// never takes more cycles than software.
func TestScheduleEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := latency.Default()
	for trial := 0; trial < 40; trial++ {
		bu := ir.NewBuilder("r", 1)
		ins := bu.Inputs(3)
		vals := append([]ir.Value{}, ins...)
		for i := 0; i < 4+rng.Intn(16); i++ {
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			var v ir.Value
			switch rng.Intn(8) {
			case 0:
				v = bu.Mul(a, b)
			case 1:
				v = bu.Load(a)
			case 2:
				v = bu.Sub(a, b)
			case 3:
				bu.Store(a, b) // no value produced
				continue
			default:
				v = bu.Add(a, b)
			}
			vals = append(vals, v)
		}
		last := bu.Xor(vals[len(vals)-1], ins[0])
		bu.LiveOut(last)
		blk := bu.MustBuild()

		// Grow a random convex instance of arithmetic nodes.
		inst := graph.NewBitSet(blk.N())
		for v := 0; v < blk.N(); v++ {
			if blk.Nodes[v].Op.IsMem() {
				continue
			}
			inst.Set(v)
			if !blk.DAG().IsConvex(inst) || rng.Intn(3) == 0 {
				inst.Clear(v)
			}
		}
		var instances []*graph.BitSet
		if !inst.Empty() {
			instances = append(instances, inst)
		}
		sched, err := NewSchedule(blk, model, instances)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.Cycles > BlockCycles(blk, model) {
			t.Fatalf("trial %d: accelerated %d cycles > software %d",
				trial, sched.Cycles, BlockCycles(blk, model))
		}
		in := []int32{rng.Int31(), rng.Int31(), rng.Int31()}
		m1, m2 := ir.NewMapMemory(), ir.NewMapMemory()
		want, err := blk.Eval(in, m1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sched.Run(in, m2)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: node %d: %d != %d", trial, v, got[v], want[v])
			}
		}
	}
}

func TestRunApp(t *testing.T) {
	blk, cut := macBlock(t)
	app := &ir.Application{Name: "a", Blocks: []*ir.Block{blk}}
	res, err := RunApp(app, latency.Default(), map[int][]*graph.BitSet{0: {cut}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 cycles software, 2 accelerated, freq 10.
	if res.BaselineCycles != 40 || res.AccelCycles != 20 {
		t.Errorf("cycles %v -> %v, want 40 -> 20", res.BaselineCycles, res.AccelCycles)
	}
	if res.Speedup != 2 {
		t.Errorf("speedup = %v, want 2", res.Speedup)
	}
	// Without ISEs: speedup 1.
	res, err = RunApp(app, latency.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup != 1 {
		t.Errorf("speedup without ISEs = %v, want 1", res.Speedup)
	}
}
