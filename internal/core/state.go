// Package core implements ISEGEN, the paper's contribution: identification
// of Instruction Set Extensions by Kernighan–Lin-style iterative
// improvement over basic-block data-flow graphs.
//
// The package provides the incremental cut state (the paper's
// Itoggle/Otoggle addendum bookkeeping, incremental convexity-violation
// tracking and incremental hardware critical path), the five-component gain
// function of Section 4.2, the modified K-L bi-partition of Section 4.1,
// and the multi-cut driver that solves Problem 2 under an AFU budget.
package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// State tracks one software/hardware bi-partition of a block with all the
// incremental bookkeeping needed to evaluate toggles in near-constant time:
//
//   - exact cut input/output counts (the paper's Itoggle/Otoggle addendums
//     generalized to exact per-value consumer counts),
//   - the convexity violator set via |anc(x)∩H| / |desc(x)∩H| counters,
//   - the hardware critical path via longest-path-in/longest-path-out
//     labels that make "what if we add v" an O(deg(v)) query.
//
// State is exported (within the repository) because the baselines and the
// experiment harness reuse it to cost arbitrary cuts consistently.
type State struct {
	Blk   *ir.Block
	Model *latency.Model

	n int
	// H is the current hardware set (the cut).
	H *graph.BitSet
	// Frozen nodes can never toggle: memory operations, operations with
	// no AFU implementation, and nodes already claimed by a previous ISE.
	Frozen *graph.BitSet

	// I/O bookkeeping.
	inCnt     []int // per value ID: consumers of the value inside H
	totalUses []int // per value ID: total distinct consumers
	numIn     int   // |IN(H)|
	numOut    int   // |OUT(H)|

	// Convexity bookkeeping.
	aCnt  []int // per node: |anc(x) ∩ H|
	dCnt  []int // per node: |desc(x) ∩ H|
	viol  *graph.BitSet
	nviol int

	// Latency bookkeeping.
	swLat []int     // per node software cycles
	hwLat []float64 // per node AFU delay (0 for frozen nodes)
	swSum int       // Σ swLat over H
	level []float64 // longest HW path within H ending at v (v ∈ H)
	tail  []float64 // longest HW path within H starting at v (v ∈ H)
	hwCP  float64   // critical path of H

	// nbrH counts, per node, its DAG neighbours (preds + succs) currently
	// in H. It makes the gain function's neighbour (α3) term an O(1) read
	// and classifies removals for the incremental component table: a node
	// with nbrH <= 1 cannot disconnect its component by leaving.
	nbrH []int

	// Incremental critical-path scratch: dirty topological positions whose
	// level (cpDirtyDown) or tail (cpDirtyUp, reverse-position-indexed)
	// must be recomputed after a Toggle-add. Kept empty between updates.
	cpDirtyDown *graph.BitSet
	cpDirtyUp   *graph.BitSet
	// fullCP forces the full recomputeCP sweep on every toggle; the
	// pinning tests use it to check the incremental add and remove paths
	// bit-for-bit.
	fullCP bool
	// version counts partition mutations (one per added/removed node). The
	// gain context compares it against the last mutation it observed, so a
	// toggle it was not told about forces a label rebuild instead of
	// silently serving stale components.
	version uint64

	// Barrier distances for the directional-growth gain component.
	upDist   []int
	downDist []int
	maxDist  int

	// Observability tallies. Plain (non-atomic) integers: a State is
	// single-goroutine, and the hot loops pay one register increment
	// whether recording is on or off. drainObs hands them off (and
	// zeroes them) at trajectory boundaries so pooled workspaces never
	// leak counts across jobs.
	nToggles      int64
	nProbes       int64
	cpIncremental int64
	cpFullSweeps  int64
}

// NewState returns the all-software partition for the block. Nodes in
// excluded (may be nil) are frozen in software in addition to memory and
// non-implementable operations.
func NewState(blk *ir.Block, model *latency.Model, excluded *graph.BitSet) *State {
	n := blk.N()
	s := &State{
		Blk:       blk,
		Model:     model,
		n:         n,
		H:         graph.NewBitSet(n),
		Frozen:    graph.NewBitSet(n),
		inCnt:     make([]int, blk.NumValues()),
		totalUses: make([]int, blk.NumValues()),
		aCnt:      make([]int, n),
		dCnt:      make([]int, n),
		viol:      graph.NewBitSet(n),
		swLat:     make([]int, n),
		hwLat:     make([]float64, n),
		level:     make([]float64, n),
		tail:      make([]float64, n),
		nbrH:      make([]int, n),

		cpDirtyDown: graph.NewBitSet(n),
		cpDirtyUp:   graph.NewBitSet(n),
	}
	if excluded != nil {
		s.Frozen.Or(excluded)
	}
	for i := 0; i < n; i++ {
		op := blk.Nodes[i].Op
		s.swLat[i] = model.SWLat(op)
		if d, ok := model.HWLat(op); ok {
			s.hwLat[i] = d
		} else {
			s.Frozen.Set(i)
		}
		if blk.ForbiddenInCut(i) {
			s.Frozen.Set(i)
		}
	}
	for v := 0; v < blk.NumValues(); v++ {
		s.totalUses[v] = len(blk.Uses(v))
	}
	isBarrier := func(v int) bool { return blk.ForbiddenInCut(v) }
	s.upDist, s.downDist = blk.DAG().BarrierDistances(isBarrier)
	for i := 0; i < n; i++ {
		if s.upDist[i] > s.maxDist {
			s.maxDist = s.upDist[i]
		}
		if s.downDist[i] > s.maxDist {
			s.maxDist = s.downDist[i]
		}
	}
	if s.maxDist == 0 {
		s.maxDist = 1
	}
	return s
}

// N returns the node count of the underlying block.
func (s *State) N() int { return s.n }

// NumIn returns |IN(H)|, the distinct values entering the cut.
func (s *State) NumIn() int { return s.numIn }

// NumOut returns |OUT(H)|, the cut values needed outside it.
func (s *State) NumOut() int { return s.numOut }

// SWSum returns the summed software latency of the cut.
func (s *State) SWSum() int { return s.swSum }

// HWCP returns the hardware critical path of the cut.
func (s *State) HWCP() float64 { return s.hwCP }

// Convex reports whether the current cut is convex.
func (s *State) Convex() bool { return s.nviol == 0 }

// HWCycles converts an AFU critical-path delay to whole core cycles: the
// custom instruction occupies the pipeline for at least one cycle, and the
// MAC delay defines the cycle time (so ceil of the normalized delay).
// An empty cut costs zero cycles.
func HWCycles(cp float64) int {
	if cp <= 0 {
		return 0
	}
	c := int(math.Ceil(cp - 1e-9))
	if c < 1 {
		c = 1
	}
	return c
}

// MeritOf is the cut merit λ(C) = latSW(C) − cycles(latHW(C)): software
// cycles saved per execution when C becomes one ISE. Using whole AFU
// cycles (not the fractional datapath delay) keeps the estimate consistent
// with the cycle-level simulator and prevents degenerate single-node
// "ISEs" from claiming fractional savings.
func MeritOf(swSum int, hwCP float64) float64 {
	return float64(swSum - HWCycles(hwCP))
}

// Merit returns λ(H), the estimated cycles saved per execution when H is
// implemented as one ISE.
func (s *State) Merit() float64 { return MeritOf(s.swSum, s.hwCP) }

// Feasible reports whether the current cut satisfies all architectural
// constraints for the given port limits.
func (s *State) Feasible(maxIn, maxOut int) bool {
	return !s.H.Empty() && s.nviol == 0 && s.numIn <= maxIn && s.numOut <= maxOut
}

// Toggle moves node v across the partition (S→H or H→S), updating all
// incremental structures. v must not be frozen.
//
// Additions update the critical-path labels incrementally: adding v can
// only create paths through v, so only v itself plus the H nodes whose
// longest path grew (v's H-descendants for level, H-ancestors for tail)
// need recomputation — see addCPUpdate. Removals of nodes off the current
// critical path are likewise incremental (see removeCPUpdate); only a
// critical removal — where hwCP itself may shrink — and SetCut fall back
// to the full recomputeCP sweep. K-L passes toggle every unfrozen node
// once while H stays small, so the common step avoids the O(V+E) sweep
// entirely.
func (s *State) Toggle(v int) {
	if s.Frozen.Has(v) {
		panic("core: Toggle of frozen node")
	}
	s.nToggles++
	if s.H.Has(v) {
		// Criticality must be read before the sweep: removeNode leaves
		// level/tail untouched, so these are still v's in-H labels.
		critical := s.level[v]+s.tail[v]-s.hwLat[v] >= s.hwCP-cpCriticalEps
		s.removeNode(v)
		if s.fullCP || critical {
			s.cpFullSweeps++
			s.recomputeCP()
		} else {
			s.cpIncremental++
			s.removeCPUpdate(v)
		}
	} else {
		s.addNode(v)
		if s.fullCP {
			s.cpFullSweeps++
			s.recomputeCP()
		} else {
			s.cpIncremental++
			s.addCPUpdate(v)
		}
	}
}

// drainObs returns and clears the observability tallies. Called at
// trajectory boundaries so counts attribute to the job that ran them
// even though the State itself is pooled.
func (s *State) drainObs() (toggles, probes, cpInc, cpFull int64) {
	toggles, probes, cpInc, cpFull = s.nToggles, s.nProbes, s.cpIncremental, s.cpFullSweeps
	s.nToggles, s.nProbes, s.cpIncremental, s.cpFullSweeps = 0, 0, 0, 0
	return
}

// SetCut resets the partition to exactly the given cut (which must contain
// no frozen nodes).
func (s *State) SetCut(cut *graph.BitSet) {
	// Remove extras (H \ cut), then add missing (cut \ H). Word-level
	// NextSet walks over the sets themselves replace the former per-index
	// Has scans over [0, n): SetCut runs once per K-L restart seed and
	// once per pass, where n is the block size but the cuts are tiny.
	for v := s.H.NextSet(0); v >= 0; v = s.H.NextSet(v + 1) {
		if !cut.Has(v) {
			s.removeNode(v)
		}
	}
	for v := cut.NextSet(0); v >= 0; v = cut.NextSet(v + 1) {
		if !s.H.Has(v) {
			if s.Frozen.Has(v) {
				panic("core: SetCut includes frozen node")
			}
			s.addNode(v)
		}
	}
	s.recomputeCP()
}

func (s *State) addNode(v int) {
	blk := s.Blk
	n := s.n
	s.version++
	s.H.Set(v)
	s.swSum += s.swLat[v]

	// v's own value: it was an input of the cut if consumers inside H
	// exist; it stops being one now that its producer joined H.
	if blk.Nodes[v].Op.HasValue() {
		if s.inCnt[v] > 0 {
			s.numIn--
		}
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			s.numOut++
		}
	}
	// v's sources gain one consumer inside H.
	for _, src := range blk.Srcs(v) {
		prev := s.inCnt[src]
		s.inCnt[src] = prev + 1
		if src < n && s.H.Has(src) {
			// Producer inside H: one fewer outside consumer; the
			// value may stop being an output.
			if s.totalUses[src]-s.inCnt[src] == 0 && !blk.LiveOut.Has(src) {
				s.numOut--
			}
		} else if prev == 0 {
			s.numIn++
		}
	}

	// Convexity counters.
	if s.viol.Has(v) {
		s.viol.Clear(v)
		s.nviol--
	}
	dag := blk.DAG()
	for x := dag.Desc(v).NextSet(0); x >= 0; x = dag.Desc(v).NextSet(x + 1) {
		s.aCnt[x]++
		s.updateViol(x)
	}
	for x := dag.Anc(v).NextSet(0); x >= 0; x = dag.Anc(v).NextSet(x + 1) {
		s.dCnt[x]++
		s.updateViol(x)
	}
	for _, p := range dag.Preds(v) {
		s.nbrH[p]++
	}
	for _, c := range dag.Succs(v) {
		s.nbrH[c]++
	}
}

func (s *State) removeNode(v int) {
	blk := s.Blk
	n := s.n
	s.version++
	s.H.Clear(v)
	s.swSum -= s.swLat[v]

	if blk.Nodes[v].Op.HasValue() {
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			s.numOut--
		}
		if s.inCnt[v] > 0 {
			s.numIn++
		}
	}
	for _, src := range blk.Srcs(v) {
		s.inCnt[src]--
		if src < n && s.H.Has(src) {
			// Producer still inside H: the value regains an
			// outside consumer (v) and may become an output.
			if s.totalUses[src]-s.inCnt[src] == 1 && !blk.LiveOut.Has(src) {
				s.numOut++
			}
		} else if s.inCnt[src] == 0 {
			s.numIn--
		}
	}

	dag := blk.DAG()
	for x := dag.Desc(v).NextSet(0); x >= 0; x = dag.Desc(v).NextSet(x + 1) {
		s.aCnt[x]--
		s.updateViol(x)
	}
	for x := dag.Anc(v).NextSet(0); x >= 0; x = dag.Anc(v).NextSet(x + 1) {
		s.dCnt[x]--
		s.updateViol(x)
	}
	s.updateViol(v)
	for _, p := range dag.Preds(v) {
		s.nbrH[p]--
	}
	for _, c := range dag.Succs(v) {
		s.nbrH[c]--
	}
}

// updateViol refreshes the membership of x in the violator set.
func (s *State) updateViol(x int) {
	isViol := !s.H.Has(x) && s.aCnt[x] > 0 && s.dCnt[x] > 0
	if isViol == s.viol.Has(x) {
		return
	}
	if isViol {
		s.viol.Set(x)
		s.nviol++
	} else {
		s.viol.Clear(x)
		s.nviol--
	}
}

// recomputeCP rebuilds level, tail and hwCP for the current H in one
// topological sweep. Called once per committed toggle: O(V+E), which keeps
// a full K-L pass within the paper's O(n²) budget.
func (s *State) recomputeCP() {
	dag := s.Blk.DAG()
	topo := dag.Topo()
	cp := 0.0
	for _, v := range topo {
		if !s.H.Has(v) {
			s.level[v] = 0
			continue
		}
		best := 0.0
		for _, p := range dag.Preds(v) {
			if s.H.Has(p) && s.level[p] > best {
				best = s.level[p]
			}
		}
		s.level[v] = best + s.hwLat[v]
		if s.level[v] > cp {
			cp = s.level[v]
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !s.H.Has(v) {
			s.tail[v] = 0
			continue
		}
		best := 0.0
		for _, c := range dag.Succs(v) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		s.tail[v] = best + s.hwLat[v]
	}
	s.hwCP = cp
}

// addCPUpdate restores the level/tail/hwCP invariants after v joined H,
// recomputing only the labels that can have moved. Adding a node creates
// new paths exclusively through v, so level can grow only at v and its
// H-descendants, tail only at v and its H-ancestors, and no label ever
// shrinks. Each affected node is recomputed with exactly recomputeCP's
// formula (max over in-H predecessors plus own delay), in topological order
// via a dirty-position bitset, so the resulting labels — and hwCP, which
// under growth is max(old hwCP, changed levels) — are bit-identical to a
// full sweep. Nodes outside H keep their 0 labels untouched.
func (s *State) addCPUpdate(v int) {
	dag := s.Blk.DAG()
	topo := dag.Topo()
	last := len(topo) - 1

	// Downstream: recompute level at ascending topo positions.
	s.cpDirtyDown.Set(dag.TopoPos(v))
	for p := s.cpDirtyDown.NextSet(0); p >= 0; p = s.cpDirtyDown.NextSet(p + 1) {
		s.cpDirtyDown.Clear(p)
		u := topo[p]
		best := 0.0
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) && s.level[q] > best {
				best = s.level[q]
			}
		}
		nl := best + s.hwLat[u]
		if nl == s.level[u] && u != v {
			continue // unchanged: downstream labels cannot move through u
		}
		s.level[u] = nl
		if nl > s.hwCP {
			s.hwCP = nl
		}
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) {
				s.cpDirtyDown.Set(dag.TopoPos(c))
			}
		}
	}

	// Upstream: recompute tail at descending topo positions (the dirty set
	// is indexed by reversed position so NextSet walks toward ancestors).
	s.cpDirtyUp.Set(last - dag.TopoPos(v))
	for p := s.cpDirtyUp.NextSet(0); p >= 0; p = s.cpDirtyUp.NextSet(p + 1) {
		s.cpDirtyUp.Clear(p)
		u := topo[last-p]
		best := 0.0
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		nt := best + s.hwLat[u]
		if nt == s.tail[u] && u != v {
			continue
		}
		s.tail[u] = nt
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) {
				s.cpDirtyUp.Set(last - dag.TopoPos(q))
			}
		}
	}
}

// cpCriticalEps pads the is-v-critical test of Toggle's remove path.
// level[v]+tail[v]−hwLat[v] sums the longest path through v in a different
// association order than recomputeCP's left-to-right level accumulation,
// so a truly critical node could compare a few ulps below hwCP; the pad
// (orders of magnitude above ulp error on path sums, orders below any
// latency-model delta) errs toward the always-correct full sweep.
const cpCriticalEps = 1e-9

// removeCPUpdate restores the level/tail/hwCP invariants after v — a node
// on no critical path — left H, recomputing only the labels that can have
// moved. Removing v destroys paths exclusively through v, so level can
// shrink only at v's H-descendants and tail only at its H-ancestors, and
// no label ever grows. Each affected node is recomputed with exactly
// recomputeCP's formula in topological order via the dirty-position
// bitsets, so the resulting labels are bit-identical to a full sweep.
// hwCP is untouched: it was attained at some node w, and if w's level
// shrank its longest path ran through v, which would make v critical —
// contradiction. Toggle sends critical removals to recomputeCP instead.
func (s *State) removeCPUpdate(v int) {
	dag := s.Blk.DAG()
	topo := dag.Topo()
	last := len(topo) - 1
	s.level[v], s.tail[v] = 0, 0

	// Downstream: recompute level at ascending topo positions, starting
	// from v's H-successors (v itself is out of H and keeps 0 labels).
	for _, c := range dag.Succs(v) {
		if s.H.Has(c) {
			s.cpDirtyDown.Set(dag.TopoPos(c))
		}
	}
	for p := s.cpDirtyDown.NextSet(0); p >= 0; p = s.cpDirtyDown.NextSet(p + 1) {
		s.cpDirtyDown.Clear(p)
		u := topo[p]
		best := 0.0
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) && s.level[q] > best {
				best = s.level[q]
			}
		}
		nl := best + s.hwLat[u]
		if nl == s.level[u] {
			continue // unchanged: downstream labels cannot move through u
		}
		s.level[u] = nl
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) {
				s.cpDirtyDown.Set(dag.TopoPos(c))
			}
		}
	}

	// Upstream: recompute tail at descending topo positions (the dirty set
	// is indexed by reversed position so NextSet walks toward ancestors).
	for _, q := range dag.Preds(v) {
		if s.H.Has(q) {
			s.cpDirtyUp.Set(last - dag.TopoPos(q))
		}
	}
	for p := s.cpDirtyUp.NextSet(0); p >= 0; p = s.cpDirtyUp.NextSet(p + 1) {
		s.cpDirtyUp.Clear(p)
		u := topo[last-p]
		best := 0.0
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		nt := best + s.hwLat[u]
		if nt == s.tail[u] {
			continue
		}
		s.tail[u] = nt
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) {
				s.cpDirtyUp.Set(last - dag.TopoPos(q))
			}
		}
	}
}

// ToggleEffect is the predicted outcome of toggling one node, computed
// without mutating the state. Critical-path predictions for removals of
// critical nodes are conservative upper bounds (see cpAfter).
type ToggleEffect struct {
	NumIn, NumOut int
	Convex        bool
	SWSum         int
	HWCP          float64
}

// Probe predicts the effect of toggling v. Cost is O(deg(v)) plus, for
// convexity, an early-exit scan bounded by |anc(v)|+|desc(v)| that in
// practice terminates almost immediately.
func (s *State) Probe(v int) ToggleEffect {
	s.nProbes++
	adding := !s.H.Has(v)
	var eff ToggleEffect
	eff.NumIn, eff.NumOut = s.ioAfter(v, adding)
	eff.Convex = s.convexAfter(v, adding)
	if adding {
		eff.SWSum = s.swSum + s.swLat[v]
	} else {
		eff.SWSum = s.swSum - s.swLat[v]
	}
	eff.HWCP = s.cpAfter(v, adding)
	return eff
}

// ioAfter computes the exact post-toggle I/O counts by replaying the
// addendum updates without committing them.
func (s *State) ioAfter(v int, adding bool) (in, out int) {
	blk := s.Blk
	n := s.n
	in, out = s.numIn, s.numOut
	hasVal := blk.Nodes[v].Op.HasValue()
	if adding {
		if hasVal {
			if s.inCnt[v] > 0 {
				in--
			}
			if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
				out++
			}
		}
		for _, src := range blk.Srcs(v) {
			if src < n && s.H.Has(src) {
				if s.totalUses[src]-(s.inCnt[src]+1) == 0 && !blk.LiveOut.Has(src) {
					out--
				}
			} else if s.inCnt[src] == 0 {
				in++
			}
		}
		return in, out
	}
	if hasVal {
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			out--
		}
		if s.inCnt[v] > 0 {
			in++
		}
	}
	for _, src := range blk.Srcs(v) {
		if src < n && s.H.Has(src) {
			if s.totalUses[src]-(s.inCnt[src]-1) == 1 && !blk.LiveOut.Has(src) {
				out++
			}
		} else if s.inCnt[src] == 1 {
			in--
		}
	}
	return in, out
}

// convexAfter reports whether the cut is convex after toggling v.
func (s *State) convexAfter(v int, adding bool) bool {
	dag := s.Blk.DAG()
	if adding {
		// Adding can only remove v itself from the violator set and
		// create violators among v's ancestors/descendants.
		base := s.nviol
		if s.viol.Has(v) {
			base--
		}
		if base > 0 {
			return false
		}
		found := false
		dag.Desc(v).ForEach(func(x int) bool {
			if x != v && !s.H.Has(x) && s.aCnt[x] == 0 && s.dCnt[x] > 0 {
				found = true
				return false
			}
			return true
		})
		if found {
			return false
		}
		dag.Anc(v).ForEach(func(x int) bool {
			if x != v && !s.H.Has(x) && s.dCnt[x] == 0 && s.aCnt[x] > 0 {
				found = true
				return false
			}
			return true
		})
		return !found
	}
	// Removing v: v may become a violator; existing violators may be fixed.
	if s.aCnt[v] > 0 && s.dCnt[v] > 0 {
		return false
	}
	ok := true
	desc, anc := dag.Desc(v), dag.Anc(v)
	s.viol.ForEach(func(x int) bool {
		fixed := (desc.Has(x) && s.aCnt[x] == 1) || (anc.Has(x) && s.dCnt[x] == 1)
		if !fixed {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// cpAfter predicts the hardware critical path after toggling v. Additions
// are exact: the only new paths run through v. Removals are exact when v is
// not on a critical path; otherwise the current value is returned as a
// conservative upper bound and the exact value is restored on commit.
func (s *State) cpAfter(v int, adding bool) float64 {
	dag := s.Blk.DAG()
	if adding {
		levelIn, tailOut := 0.0, 0.0
		for _, p := range dag.Preds(v) {
			if s.H.Has(p) && s.level[p] > levelIn {
				levelIn = s.level[p]
			}
		}
		for _, c := range dag.Succs(v) {
			if s.H.Has(c) && s.tail[c] > tailOut {
				tailOut = s.tail[c]
			}
		}
		through := levelIn + s.hwLat[v] + tailOut
		return math.Max(s.hwCP, through)
	}
	// Removing a node not on any critical path leaves hwCP unchanged
	// (exact). For a critical node the true value is lower; returning the
	// current hwCP is a conservative upper bound, corrected on commit.
	return s.hwCP
}

// Cut returns a copy of the current hardware set.
func (s *State) Cut() *graph.BitSet { return s.H.Clone() }

// Metrics is the full architectural costing of one cut: the quantities
// every identification algorithm needs to score or validate it. It is the
// value type of the search layer's memoized cut-costing cache.
type Metrics struct {
	// SWLat is the summed software latency of the cut's instructions.
	SWLat int
	// HWLat is the AFU critical path (normalized to MAC = 1.0).
	HWLat float64
	// NumIn and NumOut are the register-file operand counts.
	NumIn, NumOut int
	// NViol counts the convexity violators witnessing illegality (0 for
	// a convex cut).
	NViol int
}

// Convex reports whether the costed cut is convex.
func (m Metrics) Convex() bool { return m.NViol == 0 }

// Merit returns λ(C) = SWLat − cycles(HWLat) of the costed cut.
func (m Metrics) Merit() float64 { return MeritOf(m.SWLat, m.HWLat) }

// MetricsFunc costs an arbitrary cut of a block under a latency model.
// MetricsOf is the direct implementation; the search layer substitutes a
// memoized equivalent so exact, genetic and K-L restarts stop recomputing
// identical cut costs.
type MetricsFunc func(blk *ir.Block, model *latency.Model, cut *graph.BitSet) Metrics

// MetricsOf evaluates an arbitrary cut of the block without any incremental
// state: one longest-path sweep plus the I/O and convexity counts.
func MetricsOf(blk *ir.Block, model *latency.Model, cut *graph.BitSet) Metrics {
	var m Metrics
	for _, v := range cut.Elems() {
		m.SWLat += model.SWLat(blk.Nodes[v].Op)
	}
	_, m.HWLat = blk.DAG().LongestPath(cut, func(v int) float64 {
		d, _ := model.HWLat(blk.Nodes[v].Op)
		return d
	})
	m.NumIn = blk.CutInputs(cut)
	m.NumOut = blk.CutOutputs(cut)
	m.NViol = len(blk.DAG().ConvexViolators(cut))
	return m
}

// CutMetrics evaluates an arbitrary cut of the block with the same latency
// model, without touching the incremental state: returns software latency
// sum, hardware critical path, input and output counts, and convexity.
// It is the tuple form of MetricsOf.
func CutMetrics(blk *ir.Block, model *latency.Model, cut *graph.BitSet) (swSum int, hwCP float64, in, out int, convex bool) {
	m := MetricsOf(blk, model, cut)
	return m.SWLat, m.HWLat, m.NumIn, m.NumOut, m.Convex()
}
