// Package core implements ISEGEN, the paper's contribution: identification
// of Instruction Set Extensions by Kernighan–Lin-style iterative
// improvement over basic-block data-flow graphs.
//
// The package provides the incremental cut state (the paper's
// Itoggle/Otoggle addendum bookkeeping, incremental convexity-violation
// tracking and incremental hardware critical path), the five-component gain
// function of Section 4.2, the modified K-L bi-partition of Section 4.1,
// and the multi-cut driver that solves Problem 2 under an AFU budget.
package core

import (
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// State tracks one software/hardware bi-partition of a block with all the
// incremental bookkeeping needed to evaluate toggles in near-constant time:
//
//   - exact cut input/output counts (the paper's Itoggle/Otoggle addendums
//     generalized to exact per-value consumer counts),
//   - the convexity violator set via |anc(x)∩H| / |desc(x)∩H| counters,
//   - the hardware critical path via longest-path-in/longest-path-out
//     labels that make "what if we add v" an O(deg(v)) query.
//
// State is exported (within the repository) because the baselines and the
// experiment harness reuse it to cost arbitrary cuts consistently.
type State struct {
	Blk   *ir.Block
	Model *latency.Model

	n int
	// H is the current hardware set (the cut).
	H *graph.BitSet
	// Frozen nodes can never toggle: memory operations, operations with
	// no AFU implementation, and nodes already claimed by a previous ISE.
	Frozen *graph.BitSet

	// I/O bookkeeping.
	inCnt     []int // per value ID: consumers of the value inside H
	totalUses []int // per value ID: total distinct consumers
	numIn     int   // |IN(H)|
	numOut    int   // |OUT(H)|

	// Convexity bookkeeping.
	aCnt  []int // per node: |anc(x) ∩ H|
	dCnt  []int // per node: |desc(x) ∩ H|
	viol  *graph.BitSet
	nviol int

	// Latency bookkeeping.
	swLat []int     // per node software cycles
	hwLat []float64 // per node AFU delay (0 for frozen nodes)
	swSum int       // Σ swLat over H
	level []float64 // longest HW path within H ending at v (v ∈ H)
	tail  []float64 // longest HW path within H starting at v (v ∈ H)
	hwCP  float64   // critical path of H

	// nbrH counts, per node, its DAG neighbours (preds + succs) currently
	// in H. It makes the gain function's neighbour (α3) term an O(1) read
	// and classifies removals for the incremental component table: a node
	// with nbrH <= 1 cannot disconnect its component by leaving.
	nbrH []int

	// Incremental critical-path scratch: dirty topological positions whose
	// level (cpDirtyDown) or tail (cpDirtyUp, reverse-position-indexed)
	// must be recomputed after a Toggle-add. Kept empty between updates.
	cpDirtyDown *graph.BitSet
	cpDirtyUp   *graph.BitSet
	// fullCP forces the full recomputeCP sweep on every toggle; the
	// pinning tests use it to check the incremental add and remove paths
	// bit-for-bit.
	fullCP bool
	// version counts partition mutations (one per added/removed node). The
	// gain context compares it against the last mutation it observed, so a
	// toggle it was not told about forces a label rebuild instead of
	// silently serving stale components.
	version uint64

	// Barrier distances for the directional-growth gain component.
	upDist   []int
	downDist []int
	maxDist  int

	// Probe digest cache: the candidate-local half of every Probe(v),
	// recombined with the global scalars in O(1) (see Probe). Allocated
	// lazily on the first Probe so States that never probe (the cost
	// oracle, the baselines' SetCut users) pay nothing; digestValid marks
	// the entries the locality invalidation has not dirtied since they
	// were computed. digestVer is the mutation version the valid bits
	// reflect: every maintenance hook syncs it, and Probe wholesale-resets
	// the valid bits if it ever trails s.version, so a mutation path that
	// bypassed the hooks can go stale-silent only by also forgetting to
	// bump version — which would already break the gain context's guard.
	// digestOff routes Probe through the uncached reference path (the
	// fullRebuild pinning shim).
	digest      []probeDigest
	digestValid *graph.BitSet
	digestVer   uint64
	digestOff   bool

	// Observability tallies. Plain (non-atomic) integers: a State is
	// single-goroutine, and the hot loops pay one register increment
	// whether recording is on or off. drainObs hands them off (and
	// zeroes them) at trajectory boundaries so pooled workspaces never
	// leak counts across jobs.
	nToggles      int64
	nProbes       int64
	cpIncremental int64
	cpFullSweeps  int64
	gainHits      int64
	gainMisses    int64
	cpCriticalInc int64
	setCutInc     int64
}

// NewState returns the all-software partition for the block. Nodes in
// excluded (may be nil) are frozen in software in addition to memory and
// non-implementable operations.
func NewState(blk *ir.Block, model *latency.Model, excluded *graph.BitSet) *State {
	n := blk.N()
	s := &State{
		Blk:       blk,
		Model:     model,
		n:         n,
		H:         graph.NewBitSet(n),
		Frozen:    graph.NewBitSet(n),
		inCnt:     make([]int, blk.NumValues()),
		totalUses: make([]int, blk.NumValues()),
		aCnt:      make([]int, n),
		dCnt:      make([]int, n),
		viol:      graph.NewBitSet(n),
		swLat:     make([]int, n),
		hwLat:     make([]float64, n),
		level:     make([]float64, n),
		tail:      make([]float64, n),
		nbrH:      make([]int, n),

		cpDirtyDown: graph.NewBitSet(n),
		cpDirtyUp:   graph.NewBitSet(n),
	}
	if excluded != nil {
		s.Frozen.Or(excluded)
	}
	for i := 0; i < n; i++ {
		op := blk.Nodes[i].Op
		s.swLat[i] = model.SWLat(op)
		if d, ok := model.HWLat(op); ok {
			s.hwLat[i] = d
		} else {
			s.Frozen.Set(i)
		}
		if blk.ForbiddenInCut(i) {
			s.Frozen.Set(i)
		}
	}
	for v := 0; v < blk.NumValues(); v++ {
		s.totalUses[v] = len(blk.Uses(v))
	}
	isBarrier := func(v int) bool { return blk.ForbiddenInCut(v) }
	s.upDist, s.downDist = blk.DAG().BarrierDistances(isBarrier)
	for i := 0; i < n; i++ {
		if s.upDist[i] > s.maxDist {
			s.maxDist = s.upDist[i]
		}
		if s.downDist[i] > s.maxDist {
			s.maxDist = s.downDist[i]
		}
	}
	if s.maxDist == 0 {
		s.maxDist = 1
	}
	return s
}

// N returns the node count of the underlying block.
func (s *State) N() int { return s.n }

// NumIn returns |IN(H)|, the distinct values entering the cut.
func (s *State) NumIn() int { return s.numIn }

// NumOut returns |OUT(H)|, the cut values needed outside it.
func (s *State) NumOut() int { return s.numOut }

// SWSum returns the summed software latency of the cut.
func (s *State) SWSum() int { return s.swSum }

// HWCP returns the hardware critical path of the cut.
func (s *State) HWCP() float64 { return s.hwCP }

// Convex reports whether the current cut is convex.
func (s *State) Convex() bool { return s.nviol == 0 }

// HWCycles converts an AFU critical-path delay to whole core cycles: the
// custom instruction occupies the pipeline for at least one cycle, and the
// MAC delay defines the cycle time (so ceil of the normalized delay).
// An empty cut costs zero cycles.
func HWCycles(cp float64) int {
	if cp <= 0 {
		return 0
	}
	c := int(math.Ceil(cp - 1e-9))
	if c < 1 {
		c = 1
	}
	return c
}

// MeritOf is the cut merit λ(C) = latSW(C) − cycles(latHW(C)): software
// cycles saved per execution when C becomes one ISE. Using whole AFU
// cycles (not the fractional datapath delay) keeps the estimate consistent
// with the cycle-level simulator and prevents degenerate single-node
// "ISEs" from claiming fractional savings.
func MeritOf(swSum int, hwCP float64) float64 {
	return float64(swSum - HWCycles(hwCP))
}

// Merit returns λ(H), the estimated cycles saved per execution when H is
// implemented as one ISE.
func (s *State) Merit() float64 { return MeritOf(s.swSum, s.hwCP) }

// Feasible reports whether the current cut satisfies all architectural
// constraints for the given port limits.
func (s *State) Feasible(maxIn, maxOut int) bool {
	return !s.H.Empty() && s.nviol == 0 && s.numIn <= maxIn && s.numOut <= maxOut
}

// Toggle moves node v across the partition (S→H or H→S), updating all
// incremental structures. v must not be frozen.
//
// Additions update the critical-path labels incrementally: adding v can
// only create paths through v, so only v itself plus the H nodes whose
// longest path grew (v's H-descendants for level, H-ancestors for tail)
// need recomputation — see addCPUpdate. Removals are incremental too:
// removeCPUpdate restores every level/tail label for any removal, and
// when v was critical — the only case where hwCP itself may shrink —
// the new hwCP is re-derived by one O(|H|) max scan over the (tiny) cut
// (see removeWithCPUpdate) instead of the O(V+E) sweep. Only the fullCP
// pinning mode still sweeps per toggle.
func (s *State) Toggle(v int) {
	if s.Frozen.Has(v) {
		panic("core: Toggle of frozen node")
	}
	s.nToggles++
	if s.H.Has(v) {
		if s.fullCP {
			s.removeNode(v)
			s.cpFullSweeps++
			s.recomputeCP()
		} else {
			s.cpIncremental++
			s.removeWithCPUpdate(v)
		}
	} else {
		s.addNode(v)
		if s.fullCP {
			s.cpFullSweeps++
			s.recomputeCP()
		} else {
			s.cpIncremental++
			s.addCPUpdate(v)
		}
	}
}

// removeWithCPUpdate removes v and restores the critical-path invariants
// without a full sweep. removeCPUpdate's label propagation is exact for
// any removal (its argument never uses criticality); only hwCP needs
// extra care. For a non-critical v it is provably unchanged. For a
// critical v it may shrink, and since every level label is exact once the
// propagation settles, re-deriving hwCP is one max scan over H — the same
// multiset maximum recomputeCP takes in topological order, hence
// bit-identical (levels are non-negative path sums; max is order-free).
func (s *State) removeWithCPUpdate(v int) {
	// Criticality must be read before removeNode: level/tail are still
	// v's in-H labels there.
	critical := s.level[v]+s.tail[v]-s.hwLat[v] >= s.hwCP-cpCriticalEps
	s.removeNode(v)
	s.removeCPUpdate(v)
	if critical {
		s.cpCriticalInc++
		s.rebuildHWCP()
	}
}

// rebuildHWCP re-derives hwCP from the settled level labels: O(|H|).
func (s *State) rebuildHWCP() {
	cp := 0.0
	for u := s.H.NextSet(0); u >= 0; u = s.H.NextSet(u + 1) {
		if s.level[u] > cp {
			cp = s.level[u]
		}
	}
	s.hwCP = cp
}

// stateObs is one drain of the per-State observability tallies.
type stateObs struct {
	toggles, probes, cpInc, cpFull int64
	gainHits, gainMisses           int64
	cpCriticalInc, setCutInc       int64
}

// drainObs returns and clears the observability tallies. Called at
// trajectory boundaries so counts attribute to the job that ran them
// even though the State itself is pooled.
func (s *State) drainObs() stateObs {
	o := stateObs{
		toggles: s.nToggles, probes: s.nProbes,
		cpInc: s.cpIncremental, cpFull: s.cpFullSweeps,
		gainHits: s.gainHits, gainMisses: s.gainMisses,
		cpCriticalInc: s.cpCriticalInc, setCutInc: s.setCutInc,
	}
	s.nToggles, s.nProbes, s.cpIncremental, s.cpFullSweeps = 0, 0, 0, 0
	s.gainHits, s.gainMisses, s.cpCriticalInc, s.setCutInc = 0, 0, 0, 0
	return o
}

// setCutDeltaMax bounds |H △ cut| for SetCut's incremental path. K-L
// resets between passes move a handful of nodes; a delta this small is
// far cheaper to apply as individual incremental updates than to pay the
// O(V+E) relabel sweep. Larger deltas (fresh restart seeds on big blocks,
// the baselines' arbitrary cuts) take the sweep, which also stays the
// pinning reference for the delta path.
const setCutDeltaMax = 32

// SetCut resets the partition to exactly the given cut (which must contain
// no frozen nodes). Small symmetric differences are applied as individual
// addNode/removeNode steps with incremental critical-path updates — each
// step leaves the exact invariant state a full sweep would, so the final
// labels are bit-identical to the fallback sweep by induction.
func (s *State) SetCut(cut *graph.BitSet) {
	// Count the symmetric difference first (word-level NextSet walks over
	// the sets themselves; the cuts are tiny relative to n).
	delta := 0
	for v := s.H.NextSet(0); v >= 0; v = s.H.NextSet(v + 1) {
		if !cut.Has(v) {
			delta++
		}
	}
	for v := cut.NextSet(0); v >= 0; v = cut.NextSet(v + 1) {
		if !s.H.Has(v) {
			if s.Frozen.Has(v) {
				panic("core: SetCut includes frozen node")
			}
			delta++
		}
	}
	if delta == 0 {
		return // H already equals cut; every invariant already holds
	}
	if !s.fullCP && delta <= setCutDeltaMax {
		s.setCutInc++
		// Remove extras (H \ cut), then add missing (cut \ H) — the same
		// order the sweep path mutates in.
		for v := s.H.NextSet(0); v >= 0; v = s.H.NextSet(v + 1) {
			if !cut.Has(v) {
				s.removeWithCPUpdate(v)
			}
		}
		for v := cut.NextSet(0); v >= 0; v = cut.NextSet(v + 1) {
			if !s.H.Has(v) {
				s.addNode(v)
				s.addCPUpdate(v)
			}
		}
		return
	}
	// Full path: the wholesale digest reset below subsumes per-node
	// invalidation, so suspend the walk while the loops run.
	suspended := s.digest
	s.digest = nil
	for v := s.H.NextSet(0); v >= 0; v = s.H.NextSet(v + 1) {
		if !cut.Has(v) {
			s.removeNode(v)
		}
	}
	for v := cut.NextSet(0); v >= 0; v = cut.NextSet(v + 1) {
		if !s.H.Has(v) {
			s.addNode(v)
		}
	}
	s.digest = suspended
	s.recomputeCP()
}

func (s *State) addNode(v int) {
	blk := s.Blk
	n := s.n
	s.version++
	s.H.Set(v)
	s.swSum += s.swLat[v]

	// v's own value: it was an input of the cut if consumers inside H
	// exist; it stops being one now that its producer joined H.
	if blk.Nodes[v].Op.HasValue() {
		if s.inCnt[v] > 0 {
			s.numIn--
		}
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			s.numOut++
		}
	}
	// v's sources gain one consumer inside H.
	for _, src := range blk.Srcs(v) {
		prev := s.inCnt[src]
		s.inCnt[src] = prev + 1
		if src < n && s.H.Has(src) {
			// Producer inside H: one fewer outside consumer; the
			// value may stop being an output.
			if s.totalUses[src]-s.inCnt[src] == 0 && !blk.LiveOut.Has(src) {
				s.numOut--
			}
		} else if prev == 0 {
			s.numIn++
		}
	}

	// Convexity counters.
	if s.viol.Has(v) {
		s.viol.Clear(v)
		s.nviol--
	}
	dag := blk.DAG()
	for x := dag.Desc(v).NextSet(0); x >= 0; x = dag.Desc(v).NextSet(x + 1) {
		s.aCnt[x]++
		s.updateViol(x)
	}
	for x := dag.Anc(v).NextSet(0); x >= 0; x = dag.Anc(v).NextSet(x + 1) {
		s.dCnt[x]++
		s.updateViol(x)
	}
	for _, p := range dag.Preds(v) {
		s.nbrH[p]++
	}
	for _, c := range dag.Succs(v) {
		s.nbrH[c]++
	}
	if s.digest != nil {
		s.digestMutate(v, true)
	}
}

func (s *State) removeNode(v int) {
	blk := s.Blk
	n := s.n
	s.version++
	s.H.Clear(v)
	s.swSum -= s.swLat[v]

	if blk.Nodes[v].Op.HasValue() {
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			s.numOut--
		}
		if s.inCnt[v] > 0 {
			s.numIn++
		}
	}
	for _, src := range blk.Srcs(v) {
		s.inCnt[src]--
		if src < n && s.H.Has(src) {
			// Producer still inside H: the value regains an
			// outside consumer (v) and may become an output.
			if s.totalUses[src]-s.inCnt[src] == 1 && !blk.LiveOut.Has(src) {
				s.numOut++
			}
		} else if s.inCnt[src] == 0 {
			s.numIn--
		}
	}

	dag := blk.DAG()
	for x := dag.Desc(v).NextSet(0); x >= 0; x = dag.Desc(v).NextSet(x + 1) {
		s.aCnt[x]--
		s.updateViol(x)
	}
	for x := dag.Anc(v).NextSet(0); x >= 0; x = dag.Anc(v).NextSet(x + 1) {
		s.dCnt[x]--
		s.updateViol(x)
	}
	s.updateViol(v)
	for _, p := range dag.Preds(v) {
		s.nbrH[p]--
	}
	for _, c := range dag.Succs(v) {
		s.nbrH[c]--
	}
	if s.digest != nil {
		s.digestMutate(v, false)
	}
}

// Digest count fields patchCone can adjust in place.
const (
	patchPDesc = iota // probeDigest.pDescCnt (add direction, P witnesses)
	patchQAnc         // probeDigest.qAncCnt  (add direction, Q witnesses)
	patchFix          // probeDigest.fixCnt   (remove direction, A/D repairs)
)

// patchCone adds delta to one count field of every still-valid digest in
// mask on the requested side of the cut. The three filters (cone, valid,
// direction) intersect word-level, so the cost is O(n/64) plus one add
// per surviving entry — cheap enough that a predicate flip patches its
// readers instead of invalidating them.
func (s *State) patchCone(mask *graph.BitSet, inH bool, kind, delta int) {
	mw, vw, hw := mask.Words(), s.digestValid.Words(), s.H.Words()
	for i, w := range mw {
		w &= vw[i]
		if inH {
			w &= hw[i]
		} else {
			w &^= hw[i]
		}
		for w != 0 {
			u := i*64 + bits.TrailingZeros64(w)
			w &= w - 1
			switch kind {
			case patchPDesc:
				s.digest[u].pDescCnt += delta
			case patchQAnc:
				s.digest[u].qAncCnt += delta
			default:
				s.digest[u].fixCnt += delta
			}
		}
	}
}

// digestMutate repairs the probe-digest cache after the toggle of v,
// matched read-for-read against ioAfter, convexAfter and cpAfter (see
// DESIGN.md, "O(1) candidate gains").
//
// The neighbourhood rules invalidate outright: v itself (its toggle
// direction flipped), Preds(v) and Succs(v) (they read H(v) in the I/O
// replay and level[v]/tail[v] in the through-path bound), and for each of
// v's source values both its producer node and its other consumers
// ("siblings" — their I/O replays read inCnt[src], which just moved).
//
// The convexity terms are repaired in place rather than invalidated. A
// cached cone scan reads node x only through four predicates —
//
//	P(x) = !H(x) ∧ aCnt(x)==0 ∧ dCnt(x)>0   (pDescCnt, read by off-H Anc(x))
//	Q(x) = !H(x) ∧ dCnt(x)==0 ∧ aCnt(x)>0   (qAncCnt,  read by off-H Desc(x))
//	A(x) = !H(x) ∧ aCnt(x)==1 ∧ dCnt(x)>0   (fixCnt,   read by in-H Anc(x))
//	D(x) = !H(x) ∧ dCnt(x)==1 ∧ aCnt(x)>0   (fixCnt,   read by in-H Desc(x))
//
// — and each cached field is a plain count of the predicate over a cone,
// so when a predicate flips at x the readers' counts move by exactly ±1:
// patchCone applies the delta to the surviving entries and validity is
// untouched. Reader sets split by direction because a valid digest always
// matches its owner's current side of the cut: P and Q feed the
// add-direction witness counts, A and D feed the remove-direction repair
// count, so a flip at x patches only the matching side of Anc(x)/Desc(x).
//
// The toggle moved aCnt by one at every x ∈ Desc(v) and dCnt by one at
// every x ∈ Anc(v), and flipped H at v only, which gives exact flip
// tests on the post-toggle counters: x ∈ H cannot flip anything (all
// four predicates carry !H(x)); an off-cut descendant flips P iff the
// new aCnt crossed 0↔1 with dCnt>0, flips A iff it crossed a 0↔1/1↔2
// boundary with dCnt>0, and flips Q/D iff it crossed 0↔1 while dCnt is
// 0/1 (ancestors symmetrically); v's own H flip replays the same tests
// with its unchanged counters. The patch direction is the new predicate
// value: +1 when the flip turned it on, −1 when it turned it off.
// (Violator-set churn needs no separate rule: a viol membership change
// at x is an A/D contribution change, and nviol is recombined fresh.)
//
// Costs O(deg(v) + |Anc(v)| + |Desc(v)| + flips·n/64) — the same
// asymptotic class as the counter maintenance it piggybacks on.
func (s *State) digestMutate(v int, added bool) {
	blk := s.Blk
	dag := blk.DAG()
	dv := s.digestValid
	dv.Clear(v)
	for _, p := range dag.Preds(v) {
		dv.Clear(p)
	}
	for _, c := range dag.Succs(v) {
		dv.Clear(c)
	}
	for _, src := range blk.Srcs(v) {
		if src < s.n {
			dv.Clear(src)
		}
		for _, u := range blk.Uses(src) {
			dv.Clear(u)
		}
	}
	anc, desc := dag.Anc(v), dag.Desc(v)
	// Boundary values for the moved counter: after addNode it was
	// incremented (crossed 0↔1 iff ==1, touched a 0↔1/1↔2 boundary iff
	// ≤2); after removeNode decremented (crossed 0↔1 iff ==0, boundary
	// iff ≤1).
	lo, lim := 0, 1
	if added {
		lo, lim = 1, 2
	}
	// on is the patch delta for predicates whose flip tracks the moved
	// counter crossing 0↔1: they turn on when the counter rose to 1
	// (added) and off when it fell to 0 (removed).
	on := -1
	if added {
		on = 1
	}
	for x := desc.NextSet(0); x >= 0; x = desc.NextSet(x + 1) {
		if s.H.Has(x) {
			continue
		}
		a, d := s.aCnt[x], s.dCnt[x]
		if d > 0 {
			if a == lo { // P(x) flipped: on iff aCnt fell to 0
				s.patchCone(dag.Anc(x), false, patchPDesc, -on)
			}
			if a <= lim { // A(x) flipped: on iff aCnt landed on 1
				delta := -1
				if a == 1 {
					delta = 1
				}
				s.patchCone(dag.Anc(x), true, patchFix, delta)
			}
		}
		if a == lo {
			if d == 0 { // Q(x) flipped: on iff aCnt rose to 1
				s.patchCone(dag.Desc(x), false, patchQAnc, on)
			} else if d == 1 { // D(x) flipped: same crossing
				s.patchCone(dag.Desc(x), true, patchFix, on)
			}
		}
	}
	for x := anc.NextSet(0); x >= 0; x = anc.NextSet(x + 1) {
		if s.H.Has(x) {
			continue
		}
		a, d := s.aCnt[x], s.dCnt[x]
		if a > 0 {
			if d == lo { // Q(x) flipped: on iff dCnt fell to 0
				s.patchCone(dag.Desc(x), false, patchQAnc, -on)
			}
			if d <= lim { // D(x) flipped: on iff dCnt landed on 1
				delta := -1
				if d == 1 {
					delta = 1
				}
				s.patchCone(dag.Desc(x), true, patchFix, delta)
			}
		}
		if d == lo {
			if a == 0 { // P(x) flipped: on iff dCnt rose to 1
				s.patchCone(dag.Anc(x), false, patchPDesc, on)
			} else if a == 1 { // A(x) flipped: same crossing
				s.patchCone(dag.Anc(x), true, patchFix, on)
			}
		}
	}
	// v's own H flip, with v's counters unchanged by its own toggle: all
	// four predicates go off on an add (H(v) now true) and take their
	// counter values on a remove, so the delta is -on for every flip.
	a, d := s.aCnt[v], s.dCnt[v]
	if d > 0 {
		if a == 0 {
			s.patchCone(anc, false, patchPDesc, -on)
		} else if a == 1 {
			s.patchCone(anc, true, patchFix, -on)
		}
	}
	if a > 0 {
		if d == 0 {
			s.patchCone(desc, false, patchQAnc, -on)
		} else if d == 1 {
			s.patchCone(desc, true, patchFix, -on)
		}
	}
	s.digestVer = s.version
}

// updateViol refreshes the membership of x in the violator set.
func (s *State) updateViol(x int) {
	isViol := !s.H.Has(x) && s.aCnt[x] > 0 && s.dCnt[x] > 0
	if isViol == s.viol.Has(x) {
		return
	}
	if isViol {
		s.viol.Set(x)
		s.nviol++
	} else {
		s.viol.Clear(x)
		s.nviol--
	}
}

// recomputeCP rebuilds level, tail and hwCP for the current H in one
// topological sweep: O(V+E). Since PR's incremental paths took over the
// steady state, this runs only for large SetCut deltas and the fullCP
// pinning mode. Every label may move, so the digest cache is reset
// wholesale.
func (s *State) recomputeCP() {
	if s.digest != nil {
		s.digestValid.Reset()
		s.digestVer = s.version
	}
	dag := s.Blk.DAG()
	topo := dag.Topo()
	cp := 0.0
	for _, v := range topo {
		if !s.H.Has(v) {
			s.level[v] = 0
			continue
		}
		best := 0.0
		for _, p := range dag.Preds(v) {
			if s.H.Has(p) && s.level[p] > best {
				best = s.level[p]
			}
		}
		s.level[v] = best + s.hwLat[v]
		if s.level[v] > cp {
			cp = s.level[v]
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !s.H.Has(v) {
			s.tail[v] = 0
			continue
		}
		best := 0.0
		for _, c := range dag.Succs(v) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		s.tail[v] = best + s.hwLat[v]
	}
	s.hwCP = cp
}

// addCPUpdate restores the level/tail/hwCP invariants after v joined H,
// recomputing only the labels that can have moved. Adding a node creates
// new paths exclusively through v, so level can grow only at v and its
// H-descendants, tail only at v and its H-ancestors, and no label ever
// shrinks. Each affected node is recomputed with exactly recomputeCP's
// formula (max over in-H predecessors plus own delay), in topological order
// via a dirty-position bitset, so the resulting labels — and hwCP, which
// under growth is max(old hwCP, changed levels) — are bit-identical to a
// full sweep. Nodes outside H keep their 0 labels untouched.
func (s *State) addCPUpdate(v int) {
	dag := s.Blk.DAG()
	topo := dag.Topo()
	last := len(topo) - 1

	// Downstream: recompute level at ascending topo positions.
	s.cpDirtyDown.Set(dag.TopoPos(v))
	for p := s.cpDirtyDown.NextSet(0); p >= 0; p = s.cpDirtyDown.NextSet(p + 1) {
		s.cpDirtyDown.Clear(p)
		u := topo[p]
		best := 0.0
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) && s.level[q] > best {
				best = s.level[q]
			}
		}
		nl := best + s.hwLat[u]
		if nl != s.level[u] {
			s.level[u] = nl
			s.digestDirtyLevel(u)
		} else if u != v {
			continue // unchanged: downstream labels cannot move through u
		}
		if nl > s.hwCP {
			s.hwCP = nl
		}
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) {
				s.cpDirtyDown.Set(dag.TopoPos(c))
			}
		}
	}

	// Upstream: recompute tail at descending topo positions (the dirty set
	// is indexed by reversed position so NextSet walks toward ancestors).
	s.cpDirtyUp.Set(last - dag.TopoPos(v))
	for p := s.cpDirtyUp.NextSet(0); p >= 0; p = s.cpDirtyUp.NextSet(p + 1) {
		s.cpDirtyUp.Clear(p)
		u := topo[last-p]
		best := 0.0
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		nt := best + s.hwLat[u]
		if nt != s.tail[u] {
			s.tail[u] = nt
			s.digestDirtyTail(u)
		} else if u != v {
			continue
		}
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) {
				s.cpDirtyUp.Set(last - dag.TopoPos(q))
			}
		}
	}
}

// digestDirtyLevel invalidates the digests that read level[u]: the
// through-path bound of every successor candidate still outside H. In-H
// successors hold remove-direction digests, which read no labels — and a
// later toggle of theirs clears their entry anyway.
func (s *State) digestDirtyLevel(u int) {
	if s.digest == nil {
		return
	}
	for _, c := range s.Blk.DAG().Succs(u) {
		if !s.H.Has(c) {
			s.digestValid.Clear(c)
		}
	}
}

// digestDirtyTail invalidates the digests that read tail[u]: the
// through-path bound of every predecessor candidate still outside H.
func (s *State) digestDirtyTail(u int) {
	if s.digest == nil {
		return
	}
	for _, p := range s.Blk.DAG().Preds(u) {
		if !s.H.Has(p) {
			s.digestValid.Clear(p)
		}
	}
}

// cpCriticalEps pads the is-v-critical test of the remove path.
// level[v]+tail[v]−hwLat[v] sums the longest path through v in a different
// association order than recomputeCP's left-to-right level accumulation,
// so a truly critical node could compare a few ulps below hwCP; the pad
// (orders of magnitude above ulp error on path sums, orders below any
// latency-model delta) errs toward the always-correct hwCP rebuild scan.
const cpCriticalEps = 1e-9

// removeCPUpdate restores the level/tail invariants after v left H,
// recomputing only the labels that can have moved. Removing v destroys
// paths exclusively through v, so level can shrink only at v's
// H-descendants and tail only at its H-ancestors, and no label ever
// grows. Each affected node is recomputed with exactly recomputeCP's
// formula in topological order via the dirty-position bitsets, so the
// resulting labels are bit-identical to a full sweep — for any removal.
// hwCP is NOT restored here: when v was off every critical path it is
// provably unchanged (if the attaining node's level shrank, its longest
// path ran through v — contradiction); when v was critical the caller
// re-derives it from the settled levels (see removeWithCPUpdate).
func (s *State) removeCPUpdate(v int) {
	dag := s.Blk.DAG()
	topo := dag.Topo()
	last := len(topo) - 1
	s.level[v], s.tail[v] = 0, 0

	// Downstream: recompute level at ascending topo positions, starting
	// from v's H-successors (v itself is out of H and keeps 0 labels).
	for _, c := range dag.Succs(v) {
		if s.H.Has(c) {
			s.cpDirtyDown.Set(dag.TopoPos(c))
		}
	}
	for p := s.cpDirtyDown.NextSet(0); p >= 0; p = s.cpDirtyDown.NextSet(p + 1) {
		s.cpDirtyDown.Clear(p)
		u := topo[p]
		best := 0.0
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) && s.level[q] > best {
				best = s.level[q]
			}
		}
		nl := best + s.hwLat[u]
		if nl == s.level[u] {
			continue // unchanged: downstream labels cannot move through u
		}
		s.level[u] = nl
		s.digestDirtyLevel(u)
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) {
				s.cpDirtyDown.Set(dag.TopoPos(c))
			}
		}
	}

	// Upstream: recompute tail at descending topo positions (the dirty set
	// is indexed by reversed position so NextSet walks toward ancestors).
	for _, q := range dag.Preds(v) {
		if s.H.Has(q) {
			s.cpDirtyUp.Set(last - dag.TopoPos(q))
		}
	}
	for p := s.cpDirtyUp.NextSet(0); p >= 0; p = s.cpDirtyUp.NextSet(p + 1) {
		s.cpDirtyUp.Clear(p)
		u := topo[last-p]
		best := 0.0
		for _, c := range dag.Succs(u) {
			if s.H.Has(c) && s.tail[c] > best {
				best = s.tail[c]
			}
		}
		nt := best + s.hwLat[u]
		if nt == s.tail[u] {
			continue
		}
		s.tail[u] = nt
		s.digestDirtyTail(u)
		for _, q := range dag.Preds(u) {
			if s.H.Has(q) {
				s.cpDirtyUp.Set(last - dag.TopoPos(q))
			}
		}
	}
}

// ToggleEffect is the predicted outcome of toggling one node, computed
// without mutating the state. Critical-path predictions for removals of
// critical nodes are conservative upper bounds (see cpAfter).
type ToggleEffect struct {
	NumIn, NumOut int
	Convex        bool
	SWSum         int
	HWCP          float64
}

// probeDigest is the candidate-local half of one Probe(v): everything
// that depends only on v's neighbourhood, cached until a toggle's
// locality invalidation dirties it (see digestMutate). The direction it
// was computed for is implicit — a toggle of v itself always dirties the
// entry, so a valid digest always matches the current !H.Has(v).
type probeDigest struct {
	// dIn/dOut are the I/O replay's port deltas against numIn/numOut.
	dIn, dOut int
	// levelIn/tailOut bound the new through-path for an addition
	// (cpAfter's max over in-H predecessors/successors).
	levelIn, tailOut float64
	// pDescCnt/qAncCnt count, for an addition, the fresh convexity
	// violators it would create — the P witnesses among v's descendants
	// and the Q witnesses among its ancestors (see digestMutate). The
	// addition stays convex iff both counts are zero.
	pDescCnt, qAncCnt int
	// fixCnt counts, for a removal, the current violators that removing v
	// repairs; the cut stays convex iff it equals nviol (every violator
	// fixed) and v itself does not become one.
	fixCnt int
}

// Probe predicts the effect of toggling v. Amortized cost is O(1): the
// candidate-local digest (I/O port deltas, convexity scan witness,
// through-path levelIn/tailOut) is served from a per-State cache and
// recombined with the global scalars (numIn/numOut, swSum, nviol, hwCP)
// by a handful of reads. A digest rebuild — the old O(deg(v)) replay plus
// the ancestor/descendant convexity scan — triggers only when a committed
// toggle's invalidation walk dirtied v's entry: v itself or a
// neighbour/sibling toggled, v's ancestor-or-descendant cone saw an H
// flip or an aCnt/dCnt boundary crossing, or a critical-path label next
// to v moved. Recombination reproduces the uncached arithmetic
// expression-for-expression, so the returned ToggleEffect is bit-for-bit
// identical to the reference path (including the conservative
// critical-removal upper bound in HWCP).
func (s *State) Probe(v int) ToggleEffect {
	adding := !s.H.Has(v)
	if s.digestOff {
		s.nProbes++
		return s.probeFresh(v, adding)
	}
	if s.digest == nil {
		s.digest = make([]probeDigest, s.n)
		s.digestValid = graph.NewBitSet(s.n)
		s.digestVer = s.version
	} else if s.digestVer != s.version {
		// A mutation bypassed the maintenance hooks (impossible via the
		// public API, but the version guard makes staleness structurally
		// unreachable rather than merely unlikely).
		s.digestValid.Reset()
		s.digestVer = s.version
	}
	d := &s.digest[v]
	if s.digestValid.Has(v) {
		s.gainHits++
	} else {
		s.nProbes++
		s.gainMisses++
		s.computeDigest(v, adding, d)
		s.digestValid.Set(v)
	}
	var eff ToggleEffect
	eff.NumIn = s.numIn + d.dIn
	eff.NumOut = s.numOut + d.dOut
	if adding {
		eff.SWSum = s.swSum + s.swLat[v]
		base := s.nviol
		if s.viol.Has(v) {
			base--
		}
		eff.Convex = base <= 0 && d.pDescCnt == 0 && d.qAncCnt == 0
		eff.HWCP = math.Max(s.hwCP, d.levelIn+s.hwLat[v]+d.tailOut)
	} else {
		eff.SWSum = s.swSum - s.swLat[v]
		eff.Convex = !(s.aCnt[v] > 0 && s.dCnt[v] > 0) && d.fixCnt == s.nviol
		eff.HWCP = s.hwCP
	}
	return eff
}

// probeFresh is the uncached reference Probe: the full I/O replay,
// convexity scan and critical-path query. The fullRebuild pinning shim
// routes here (digestOff), and computeDigest derives the cached entries
// from the same helpers, so cached and fresh probes share every
// arithmetic expression.
func (s *State) probeFresh(v int, adding bool) ToggleEffect {
	var eff ToggleEffect
	eff.NumIn, eff.NumOut = s.ioAfter(v, adding)
	eff.Convex = s.convexAfter(v, adding)
	if adding {
		eff.SWSum = s.swSum + s.swLat[v]
	} else {
		eff.SWSum = s.swSum - s.swLat[v]
	}
	eff.HWCP = s.cpAfter(v, adding)
	return eff
}

// computeDigest fills d with the candidate-local half of Probe(v) for the
// current toggle direction, using the same scans as the reference path.
func (s *State) computeDigest(v int, adding bool, d *probeDigest) {
	in, out := s.ioAfter(v, adding)
	d.dIn, d.dOut = in-s.numIn, out-s.numOut
	dag := s.Blk.DAG()
	if !adding {
		d.levelIn, d.tailOut = 0, 0
		d.pDescCnt, d.qAncCnt = 0, 0
		fix := 0
		desc, anc := dag.Desc(v), dag.Anc(v)
		s.viol.ForEach(func(x int) bool {
			if (desc.Has(x) && s.aCnt[x] == 1) || (anc.Has(x) && s.dCnt[x] == 1) {
				fix++
			}
			return true
		})
		d.fixCnt = fix
		return
	}
	d.fixCnt = 0
	levelIn, tailOut := 0.0, 0.0
	for _, p := range dag.Preds(v) {
		if s.H.Has(p) && s.level[p] > levelIn {
			levelIn = s.level[p]
		}
	}
	for _, c := range dag.Succs(v) {
		if s.H.Has(c) && s.tail[c] > tailOut {
			tailOut = s.tail[c]
		}
	}
	d.levelIn, d.tailOut = levelIn, tailOut
	// The convexity scans record full witness counts, not booleans and
	// not early-exits: digestMutate repairs the counts by ±1 on each
	// predicate flip, which only composes if the cache holds the exact
	// count of P/Q witnesses in the cone.
	cnt := 0
	dag.Desc(v).ForEach(func(x int) bool {
		if !s.H.Has(x) && s.aCnt[x] == 0 && s.dCnt[x] > 0 {
			cnt++
		}
		return true
	})
	d.pDescCnt = cnt
	cnt = 0
	dag.Anc(v).ForEach(func(x int) bool {
		if !s.H.Has(x) && s.dCnt[x] == 0 && s.aCnt[x] > 0 {
			cnt++
		}
		return true
	})
	d.qAncCnt = cnt
}

// ioAfter computes the exact post-toggle I/O counts by replaying the
// addendum updates without committing them.
func (s *State) ioAfter(v int, adding bool) (in, out int) {
	blk := s.Blk
	n := s.n
	in, out = s.numIn, s.numOut
	hasVal := blk.Nodes[v].Op.HasValue()
	if adding {
		if hasVal {
			if s.inCnt[v] > 0 {
				in--
			}
			if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
				out++
			}
		}
		for _, src := range blk.Srcs(v) {
			if src < n && s.H.Has(src) {
				if s.totalUses[src]-(s.inCnt[src]+1) == 0 && !blk.LiveOut.Has(src) {
					out--
				}
			} else if s.inCnt[src] == 0 {
				in++
			}
		}
		return in, out
	}
	if hasVal {
		if blk.LiveOut.Has(v) || s.totalUses[v]-s.inCnt[v] > 0 {
			out--
		}
		if s.inCnt[v] > 0 {
			in++
		}
	}
	for _, src := range blk.Srcs(v) {
		if src < n && s.H.Has(src) {
			if s.totalUses[src]-(s.inCnt[src]-1) == 1 && !blk.LiveOut.Has(src) {
				out++
			}
		} else if s.inCnt[src] == 1 {
			in--
		}
	}
	return in, out
}

// convexAfter reports whether the cut is convex after toggling v.
func (s *State) convexAfter(v int, adding bool) bool {
	dag := s.Blk.DAG()
	if adding {
		// Adding can only remove v itself from the violator set and
		// create violators among v's ancestors/descendants.
		base := s.nviol
		if s.viol.Has(v) {
			base--
		}
		if base > 0 {
			return false
		}
		found := false
		dag.Desc(v).ForEach(func(x int) bool {
			if x != v && !s.H.Has(x) && s.aCnt[x] == 0 && s.dCnt[x] > 0 {
				found = true
				return false
			}
			return true
		})
		if found {
			return false
		}
		dag.Anc(v).ForEach(func(x int) bool {
			if x != v && !s.H.Has(x) && s.dCnt[x] == 0 && s.aCnt[x] > 0 {
				found = true
				return false
			}
			return true
		})
		return !found
	}
	// Removing v: v may become a violator; existing violators may be fixed.
	if s.aCnt[v] > 0 && s.dCnt[v] > 0 {
		return false
	}
	ok := true
	desc, anc := dag.Desc(v), dag.Anc(v)
	s.viol.ForEach(func(x int) bool {
		fixed := (desc.Has(x) && s.aCnt[x] == 1) || (anc.Has(x) && s.dCnt[x] == 1)
		if !fixed {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// cpAfter predicts the hardware critical path after toggling v. Additions
// are exact: the only new paths run through v. Removals are exact when v is
// not on a critical path; otherwise the current value is returned as a
// conservative upper bound and the exact value is restored on commit.
func (s *State) cpAfter(v int, adding bool) float64 {
	dag := s.Blk.DAG()
	if adding {
		levelIn, tailOut := 0.0, 0.0
		for _, p := range dag.Preds(v) {
			if s.H.Has(p) && s.level[p] > levelIn {
				levelIn = s.level[p]
			}
		}
		for _, c := range dag.Succs(v) {
			if s.H.Has(c) && s.tail[c] > tailOut {
				tailOut = s.tail[c]
			}
		}
		through := levelIn + s.hwLat[v] + tailOut
		return math.Max(s.hwCP, through)
	}
	// Removing a node not on any critical path leaves hwCP unchanged
	// (exact). For a critical node the true value is lower; returning the
	// current hwCP is a conservative upper bound, corrected on commit.
	return s.hwCP
}

// Cut returns a copy of the current hardware set.
func (s *State) Cut() *graph.BitSet { return s.H.Clone() }

// Metrics is the full architectural costing of one cut: the quantities
// every identification algorithm needs to score or validate it. It is the
// value type of the search layer's memoized cut-costing cache.
type Metrics struct {
	// SWLat is the summed software latency of the cut's instructions.
	SWLat int
	// HWLat is the AFU critical path (normalized to MAC = 1.0).
	HWLat float64
	// NumIn and NumOut are the register-file operand counts.
	NumIn, NumOut int
	// NViol counts the convexity violators witnessing illegality (0 for
	// a convex cut).
	NViol int
}

// Convex reports whether the costed cut is convex.
func (m Metrics) Convex() bool { return m.NViol == 0 }

// Merit returns λ(C) = SWLat − cycles(HWLat) of the costed cut.
func (m Metrics) Merit() float64 { return MeritOf(m.SWLat, m.HWLat) }

// MetricsFunc costs an arbitrary cut of a block under a latency model.
// MetricsOf is the direct implementation; the search layer substitutes a
// memoized equivalent so exact, genetic and K-L restarts stop recomputing
// identical cut costs.
type MetricsFunc func(blk *ir.Block, model *latency.Model, cut *graph.BitSet) Metrics

// MetricsOf evaluates an arbitrary cut of the block without any incremental
// state: one longest-path sweep plus the I/O and convexity counts.
func MetricsOf(blk *ir.Block, model *latency.Model, cut *graph.BitSet) Metrics {
	var m Metrics
	for _, v := range cut.Elems() {
		m.SWLat += model.SWLat(blk.Nodes[v].Op)
	}
	_, m.HWLat = blk.DAG().LongestPath(cut, func(v int) float64 {
		d, _ := model.HWLat(blk.Nodes[v].Op)
		return d
	})
	m.NumIn = blk.CutInputs(cut)
	m.NumOut = blk.CutOutputs(cut)
	m.NViol = len(blk.DAG().ConvexViolators(cut))
	return m
}

// CutMetrics evaluates an arbitrary cut of the block with the same latency
// model, without touching the incremental state: returns software latency
// sum, hardware critical path, input and output counts, and convexity.
// It is the tuple form of MetricsOf.
func CutMetrics(blk *ir.Block, model *latency.Model, cut *graph.BitSet) (swSum int, hwCP float64, in, out int, convex bool) {
	m := MetricsOf(blk, model, cut)
	return m.SWLat, m.HWLat, m.NumIn, m.NumOut, m.Convex()
}
