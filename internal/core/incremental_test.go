package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/kernels"
)

// trajectoriesOf runs every restart trajectory of a fresh engine and
// returns the per-seed snapshot pools. fullRebuild routes the engine
// through the non-incremental reference paths (full gain-context rebuild
// and full critical-path sweep on every toggle).
func trajectoriesOf(t *testing.T, blk *ir.Block, cfg Config, excluded *graph.BitSet, fullRebuild bool) [][]Candidate {
	t.Helper()
	eng, err := NewEngine(blk, cfg, excluded)
	if err != nil {
		t.Fatal(err)
	}
	eng.fullRebuild = fullRebuild
	var out [][]Candidate
	for _, seed := range eng.Seeds() {
		out = append(out, eng.Trajectory(seed))
	}
	return out
}

// assertSameTrajectories requires two trajectory pools to be bit-identical:
// same snapshot counts, node sets and recorded merits, seed by seed.
func assertSameTrajectories(t *testing.T, name string, want, got [][]Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d seeds full vs %d incremental", name, len(want), len(got))
	}
	for si := range want {
		if len(want[si]) != len(got[si]) {
			t.Fatalf("%s seed %d: %d snapshots full vs %d incremental", name, si, len(want[si]), len(got[si]))
		}
		for i := range want[si] {
			w, g := want[si][i], got[si][i]
			if !w.Nodes.Equal(g.Nodes) {
				t.Fatalf("%s seed %d snapshot %d: cut %v full vs %v incremental", name, si, i, w.Nodes, g.Nodes)
			}
			if w.Merit != g.Merit {
				t.Fatalf("%s seed %d snapshot %d: merit %v full vs %v incremental (must be bit-identical)", name, si, i, w.Merit, g.Merit)
			}
		}
	}
}

// TestIncrementalTrajectoryPinning pins the incremental hot path — the
// slot-maintained component table of the α5 gain term and the incremental
// critical-path update on Toggle-adds — against the full-rebuild reference
// on random blocks: every restart trajectory must pass through exactly the
// same snapshots with exactly the same merits.
func TestIncrementalTrajectoryPinning(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	cfg := DefaultConfig()
	for trial := 0; trial < 30; trial++ {
		blk := randKernelBlock(rng, 8+rng.Intn(60))
		full := trajectoriesOf(t, blk, cfg, nil, true)
		incr := trajectoriesOf(t, blk, cfg, nil, false)
		assertSameTrajectories(t, blk.Name, full, incr)
	}
}

// TestIncrementalTrajectoryPinningKernels runs the same comparison on the
// real kernel-suite blocks, including a multi-round drive with a growing
// excluded set (the shape the search driver produces), under tightened and
// loosened port constraints.
func TestIncrementalTrajectoryPinningKernels(t *testing.T) {
	for _, spec := range kernels.All() {
		for _, io := range [][2]int{{4, 2}, {2, 1}} {
			cfg := DefaultConfig()
			cfg.MaxIn, cfg.MaxOut = io[0], io[1]
			for _, blk := range spec.App.Blocks {
				excluded := graph.NewBitSet(blk.N())
				// Two driver rounds: the second freezes the first
				// round's best cut, exercising pooled-state reuse
				// against a changed frozen set.
				for round := 0; round < 2; round++ {
					full := trajectoriesOf(t, blk, cfg, excluded, true)
					incr := trajectoriesOf(t, blk, cfg, excluded, false)
					assertSameTrajectories(t, spec.Name+"/"+blk.Name, full, incr)

					eng, err := NewEngine(blk, cfg, excluded)
					if err != nil {
						t.Fatal(err)
					}
					if best := eng.Bipartition(); best != nil {
						excluded.Or(best.Nodes)
					} else {
						break
					}
				}
			}
		}
	}
}

// TestIncrementalCPToggleSequences pins the incremental critical-path
// maintenance — addCPUpdate and removeCPUpdate, including the remove
// path's is-critical classification — against the full recomputeCP sweep
// on long random toggle sequences: after every single toggle, level, tail
// and hwCP must be bit-identical between a normal State and one forced
// through the full sweep. Random sequences revisit nodes, so removals hit
// both critical and non-critical nodes in cuts of every shape.
func TestIncrementalCPToggleSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	cfg := DefaultConfig()
	for trial := 0; trial < 25; trial++ {
		blk := randKernelBlock(rng, 10+rng.Intn(50))
		incr := NewState(blk, cfg.Model, nil)
		full := NewState(blk, cfg.Model, nil)
		full.fullCP = true
		var free []int
		for v := 0; v < blk.N(); v++ {
			if !incr.Frozen.Has(v) {
				free = append(free, v)
			}
		}
		if len(free) == 0 {
			continue
		}
		for step := 0; step < 4*len(free); step++ {
			v := free[rng.Intn(len(free))]
			incr.Toggle(v)
			full.Toggle(v)
			if incr.hwCP != full.hwCP {
				t.Fatalf("%s step %d (toggle %d): hwCP %v incremental vs %v full", blk.Name, step, v, incr.hwCP, full.hwCP)
			}
			for u := 0; u < blk.N(); u++ {
				if incr.level[u] != full.level[u] || incr.tail[u] != full.tail[u] {
					t.Fatalf("%s step %d (toggle %d): node %d labels (%v,%v) incremental vs (%v,%v) full",
						blk.Name, step, v, u, incr.level[u], incr.tail[u], full.level[u], full.tail[u])
				}
			}
			if incr.Merit() != full.Merit() {
				t.Fatalf("%s step %d: merit %v incremental vs %v full", blk.Name, step, incr.Merit(), full.Merit())
			}
		}
	}
}

// TestPooledTrajectoryReuse pins that reusing one engine's pooled
// workspace across many sequential trajectories changes nothing: running
// the full seed fan-out twice on the same engine must reproduce the first
// pass exactly (the pool hands back dirty States that SetCut renormalizes).
func TestPooledTrajectoryReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultConfig()
	for trial := 0; trial < 10; trial++ {
		blk := randKernelBlock(rng, 20+rng.Intn(40))
		eng, err := NewEngine(blk, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		seeds := eng.Seeds()
		var first, second [][]Candidate
		for _, seed := range seeds {
			first = append(first, eng.Trajectory(seed))
		}
		for _, seed := range seeds {
			second = append(second, eng.Trajectory(seed))
		}
		assertSameTrajectories(t, blk.Name, first, second)
	}
}

// TestFinalizeHashDedupEquivalence pins the word-hash candidate dedup
// against the quadratic reference on snapshot pools crafted to stress the
// hash index: duplicated snapshots, permuted arrival order, and families
// of cuts sharing long equal word prefixes (the regime where a weak hash
// would collapse buckets and a broken bucket walk would drop or duplicate
// candidates).
func TestFinalizeHashDedupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blk := randKernelBlock(rng, 80)
	cfg := DefaultConfig()
	eng, err := NewEngine(blk, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Build a synthetic snapshot pool: prefix chains {0..k} restricted to
	// unfrozen nodes, plus real trajectory snapshots, each appearing
	// several times.
	st := NewState(blk, cfg.Model, nil)
	var snaps []Candidate
	chain := graph.NewBitSet(blk.N())
	for v := 0; v < blk.N(); v++ {
		if st.Frozen.Has(v) {
			continue
		}
		chain.Set(v)
		snaps = append(snaps, Candidate{Nodes: chain.Clone()})
	}
	for _, seed := range eng.Seeds() {
		snaps = append(snaps, eng.Trajectory(seed)...)
	}
	snaps = append(snaps, snaps...) // force duplicates
	rng.Shuffle(len(snaps), func(i, j int) { snaps[i], snaps[j] = snaps[j], snaps[i] })

	// Quadratic reference: first-appearance dedup over snapshots plus
	// their component decompositions, in Finalize's pool order.
	dag := blk.DAG()
	var refPool []Candidate
	refPool = append(refPool, snaps...)
	for _, c := range snaps {
		comps := dag.ComponentsOf(c.Nodes)
		if len(comps) < 2 {
			continue
		}
		for _, comp := range comps {
			sub := graph.NewBitSet(blk.N())
			for _, v := range comp {
				sub.Set(v)
			}
			refPool = append(refPool, Candidate{Nodes: sub})
		}
	}
	var refUniq []*graph.BitSet
	for _, c := range refPool {
		dup := false
		for _, u := range refUniq {
			if u.Equal(c.Nodes) {
				dup = true
				break
			}
		}
		if !dup {
			refUniq = append(refUniq, c.Nodes)
		}
	}
	refCuts := make(map[string]bool)
	var refOrder []string
	for _, u := range refUniq {
		m := MetricsOf(blk, cfg.Model, u)
		if m.Merit() > 0 {
			refCuts[u.String()] = true
			refOrder = append(refOrder, u.String())
		}
	}

	got := eng.Finalize(snaps)
	if len(got) != len(refOrder) {
		t.Fatalf("Finalize returned %d cuts, reference has %d", len(got), len(refOrder))
	}
	for _, c := range got {
		if !refCuts[c.Nodes.String()] {
			t.Fatalf("Finalize returned cut %v not in the reference set", c.Nodes)
		}
	}
	// And determinism: a second Finalize over the same pool must agree.
	again := eng.Finalize(snaps)
	if len(again) != len(got) {
		t.Fatalf("Finalize not deterministic: %d then %d cuts", len(got), len(again))
	}
	for i := range got {
		if !got[i].Nodes.Equal(again[i].Nodes) {
			t.Fatalf("Finalize order not deterministic at %d: %v vs %v", i, got[i].Nodes, again[i].Nodes)
		}
	}
}
