package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// buildChain builds a linear chain add->add->...->add with one live-out.
func buildChain(t testing.TB, n int) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder("chain", 1)
	x, y := bu.Input("x"), bu.Input("y")
	v := bu.Add(x, y)
	for i := 1; i < n; i++ {
		v = bu.Add(v, y)
	}
	bu.LiveOut(v)
	return bu.MustBuild()
}

// buildDiamondBlock: n0=i0+i1; n1=n0<<i2; n2=n0^i3; n3=n1+n2 (live-out).
func buildDiamondBlock(t testing.TB) *ir.Block {
	t.Helper()
	bu := ir.NewBuilder("diamond", 1)
	in := bu.Inputs(4)
	n0 := bu.Add(in[0], in[1])
	n1 := bu.Shl(n0, in[2])
	n2 := bu.Xor(n0, in[3])
	n3 := bu.Add(n1, n2)
	bu.LiveOut(n3)
	return bu.MustBuild()
}

// randKernelBlock builds a random block mixing arithmetic and the odd
// memory op, for property tests.
func randKernelBlock(rng *rand.Rand, n int) *ir.Block {
	bu := ir.NewBuilder("rand", 1)
	ins := bu.Inputs(2 + rng.Intn(3))
	vals := append([]ir.Value{}, ins...)
	for i := 0; i < n; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		var v ir.Value
		switch rng.Intn(12) {
		case 0:
			v = bu.Mul(a, b)
		case 1:
			v = bu.Xor(a, b)
		case 2:
			v = bu.Shl(a, b)
		case 3:
			v = bu.Sub(a, b)
		case 4:
			v = bu.Min(a, b)
		case 5:
			v = bu.Select(a, b, vals[rng.Intn(len(vals))])
		case 6:
			v = bu.Load(a) // barrier node
		default:
			v = bu.Add(a, b)
		}
		vals = append(vals, v)
	}
	// A couple of random live-outs plus the final value.
	bu.LiveOut(vals[len(vals)-1])
	return bu.MustBuild()
}

// verifyAgainstReference checks every incremental quantity of the state
// against the reference computations.
func verifyAgainstReference(t *testing.T, st *State) {
	t.Helper()
	blk := st.Blk
	if got, want := st.NumIn(), blk.CutInputs(st.H); got != want {
		t.Fatalf("NumIn = %d, reference = %d (cut %v)", got, want, st.H)
	}
	if got, want := st.NumOut(), blk.CutOutputs(st.H); got != want {
		t.Fatalf("NumOut = %d, reference = %d (cut %v)", got, want, st.H)
	}
	if got, want := st.Convex(), blk.DAG().IsConvex(st.H); got != want {
		t.Fatalf("Convex = %v, reference = %v (cut %v)", got, want, st.H)
	}
	sw, cp, _, _, _ := CutMetrics(blk, st.Model, st.H)
	if st.SWSum() != sw {
		t.Fatalf("SWSum = %d, reference = %d", st.SWSum(), sw)
	}
	if math.Abs(st.HWCP()-cp) > 1e-9 {
		t.Fatalf("HWCP = %v, reference = %v (cut %v)", st.HWCP(), cp, st.H)
	}
}

func TestStateEmptyCut(t *testing.T) {
	blk := buildDiamondBlock(t)
	st := NewState(blk, latency.Default(), nil)
	if st.NumIn() != 0 || st.NumOut() != 0 || !st.Convex() || st.Merit() != 0 {
		t.Fatalf("empty cut state wrong: in=%d out=%d convex=%v merit=%v",
			st.NumIn(), st.NumOut(), st.Convex(), st.Merit())
	}
	if st.Feasible(4, 2) {
		t.Error("empty cut must not be feasible")
	}
}

func TestStateSingleToggle(t *testing.T) {
	blk := buildDiamondBlock(t)
	st := NewState(blk, latency.Default(), nil)
	st.Toggle(0) // the add feeding everything
	if st.NumIn() != 2 {
		t.Errorf("NumIn = %d, want 2", st.NumIn())
	}
	if st.NumOut() != 1 {
		t.Errorf("NumOut = %d, want 1 (one value, two consumers)", st.NumOut())
	}
	if !st.Convex() {
		t.Error("singleton must be convex")
	}
	verifyAgainstReference(t, st)
	st.Toggle(0)
	if st.NumIn() != 0 || st.NumOut() != 0 || st.SWSum() != 0 || st.HWCP() != 0 {
		t.Error("toggle back should restore the empty state exactly")
	}
}

func TestStateNonConvexIntermediate(t *testing.T) {
	blk := buildDiamondBlock(t)
	st := NewState(blk, latency.Default(), nil)
	st.Toggle(0)
	st.Toggle(3) // {0,3} is not convex: 1 and 2 violate
	if st.Convex() {
		t.Fatal("{0,3} should be non-convex")
	}
	if st.nviol != 2 {
		t.Errorf("nviol = %d, want 2", st.nviol)
	}
	st.Toggle(1)
	if st.Convex() {
		t.Fatal("{0,1,3} still non-convex (node 2)")
	}
	st.Toggle(2)
	if !st.Convex() {
		t.Fatal("full cut must be convex")
	}
	verifyAgainstReference(t, st)
}

// Figure 5 of the paper: the toggle of one node and the addendum updates on
// its neighbours. We reproduce the scenario: a 4-node DFG where node 3
// (with parents 1 and 2 and the child 4 in the paper's numbering) is
// toggled into hardware.
func TestStateFigure5Scenario(t *testing.T) {
	bu := ir.NewBuilder("fig5", 1)
	a, b, c, d := bu.Input("a"), bu.Input("b"), bu.Input("c"), bu.Input("d")
	n1 := bu.Add(a, b)
	n2 := bu.Add(c, d)
	n3 := bu.Mul(n1, n2) // the toggled node
	n4 := bu.Add(n3, d)
	bu.LiveOut(n4)
	blk := bu.MustBuild()

	st := NewState(blk, latency.Default(), nil)
	st.Toggle(2) // n3
	// ISE = {n3}: inputs are n1 and n2 (2), output n3 consumed by n4 (1).
	if st.NumIn() != 2 || st.NumOut() != 1 {
		t.Fatalf("after toggling mul: in=%d out=%d, want 2 and 1", st.NumIn(), st.NumOut())
	}
	verifyAgainstReference(t, st)

	// Toggling the parents in pulls their external inputs.
	st.Toggle(0)
	st.Toggle(1)
	if st.NumIn() != 4 || st.NumOut() != 1 {
		t.Fatalf("after pulling parents: in=%d out=%d, want 4 and 1", st.NumIn(), st.NumOut())
	}
	verifyAgainstReference(t, st)
}

// The Figure 3 rules are subsumed by exactness of the incremental state:
// this property test runs long random toggle sequences (including toggle
// backs, the paper's sign-reversal rule) on random DFGs and checks every
// incremental quantity against full recomputation at every step.
func TestStateIncrementalMatchesReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		blk := randKernelBlock(rng, 3+rng.Intn(30))
		st := NewState(blk, latency.Default(), nil)
		var togglable []int
		for v := 0; v < blk.N(); v++ {
			if !st.Frozen.Has(v) {
				togglable = append(togglable, v)
			}
		}
		if len(togglable) == 0 {
			continue
		}
		for step := 0; step < 60; step++ {
			v := togglable[rng.Intn(len(togglable))]
			st.Toggle(v)
			verifyAgainstReference(t, st)
		}
	}
}

// Property: Probe predicts exactly what Toggle then produces (with the
// documented exception that removal of a critical node reports the current
// hwCP as an upper bound).
func TestProbeMatchesToggleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		blk := randKernelBlock(rng, 3+rng.Intn(25))
		st := NewState(blk, latency.Default(), nil)
		var togglable []int
		for v := 0; v < blk.N(); v++ {
			if !st.Frozen.Has(v) {
				togglable = append(togglable, v)
			}
		}
		if len(togglable) == 0 {
			continue
		}
		for step := 0; step < 40; step++ {
			v := togglable[rng.Intn(len(togglable))]
			adding := !st.H.Has(v)
			eff := st.Probe(v)
			st.Toggle(v)
			if eff.NumIn != st.NumIn() || eff.NumOut != st.NumOut() {
				t.Fatalf("Probe IO (%d,%d) != actual (%d,%d)",
					eff.NumIn, eff.NumOut, st.NumIn(), st.NumOut())
			}
			if eff.Convex != st.Convex() {
				t.Fatalf("Probe convex %v != actual %v (toggle %d, adding=%v)",
					eff.Convex, st.Convex(), v, adding)
			}
			if eff.SWSum != st.SWSum() {
				t.Fatalf("Probe SWSum %d != actual %d", eff.SWSum, st.SWSum())
			}
			if adding {
				if math.Abs(eff.HWCP-st.HWCP()) > 1e-9 {
					t.Fatalf("Probe HWCP %v != actual %v on addition", eff.HWCP, st.HWCP())
				}
			} else if eff.HWCP < st.HWCP()-1e-9 {
				t.Fatalf("Probe HWCP %v below actual %v on removal (must be upper bound)",
					eff.HWCP, st.HWCP())
			}
		}
	}
}

func TestSetCut(t *testing.T) {
	blk := buildDiamondBlock(t)
	st := NewState(blk, latency.Default(), nil)
	cut := graph.NewBitSet(4)
	cut.Set(1)
	cut.Set(3)
	st.SetCut(cut)
	verifyAgainstReference(t, st)
	if !st.H.Equal(cut) {
		t.Fatal("SetCut did not apply")
	}
	st.SetCut(graph.NewBitSet(4))
	if !st.H.Empty() || st.NumIn() != 0 || st.NumOut() != 0 {
		t.Fatal("SetCut(empty) did not clear state")
	}
}

func TestFrozenNodes(t *testing.T) {
	bu := ir.NewBuilder("mem", 1)
	a := bu.Input("a")
	ld := bu.Load(a)
	v := bu.Add(ld, a)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	st := NewState(blk, latency.Default(), nil)
	if !st.Frozen.Has(0) {
		t.Fatal("load must be frozen")
	}
	if st.Frozen.Has(1) {
		t.Fatal("add must not be frozen")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Toggle of frozen node should panic")
		}
	}()
	st.Toggle(0)
}

func TestExcludedNodesFrozen(t *testing.T) {
	blk := buildDiamondBlock(t)
	excl := graph.NewBitSet(4)
	excl.Set(2)
	st := NewState(blk, latency.Default(), excl)
	if !st.Frozen.Has(2) {
		t.Fatal("excluded node must be frozen")
	}
}

func TestChainCriticalPath(t *testing.T) {
	blk := buildChain(t, 10)
	st := NewState(blk, latency.Default(), nil)
	m := latency.Default()
	addHW, _ := m.HWLat(ir.OpAdd)
	for v := 0; v < 10; v++ {
		st.Toggle(v)
	}
	want := 10 * addHW
	if math.Abs(st.HWCP()-want) > 1e-9 {
		t.Fatalf("chain HWCP = %v, want %v", st.HWCP(), want)
	}
	if st.SWSum() != 10 {
		t.Fatalf("chain SWSum = %d, want 10", st.SWSum())
	}
	// Merit of the chain: 10 - 3.0 = 7.0.
	if math.Abs(st.Merit()-(10-want)) > 1e-9 {
		t.Fatalf("Merit = %v", st.Merit())
	}
	// Removing the middle node splits the path.
	st.Toggle(5)
	verifyAgainstReference(t, st)
	if math.Abs(st.HWCP()-5*addHW) > 1e-9 {
		t.Fatalf("split chain HWCP = %v, want %v", st.HWCP(), 5*addHW)
	}
}

func TestCutMetricsStandalone(t *testing.T) {
	blk := buildDiamondBlock(t)
	cut := graph.NewBitSet(4)
	cut.Set(0)
	cut.Set(3)
	sw, cp, in, out, convex := CutMetrics(blk, latency.Default(), cut)
	if sw != 2 {
		t.Errorf("sw = %d, want 2", sw)
	}
	if convex {
		t.Error("cut {0,3} must be non-convex")
	}
	if in != 4 || out != 2 {
		t.Errorf("io = (%d,%d), want (4,2)", in, out)
	}
	m := latency.Default()
	addHW, _ := m.HWLat(ir.OpAdd)
	// The two adds are disconnected within the cut, so the critical path
	// is a single add, not their sum.
	if math.Abs(cp-addHW) > 1e-9 {
		t.Errorf("cp = %v, want %v", cp, addHW)
	}
}
