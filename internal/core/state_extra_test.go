package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// TestStateLiveOutOutputCounting: live-out nodes keep their output port
// even with all consumers inside the cut.
func TestStateLiveOutOutputCounting(t *testing.T) {
	bu := ir.NewBuilder("lo", 1)
	a := bu.Input("a")
	v1 := bu.Add(a, a)
	v2 := bu.Neg(v1)
	bu.LiveOut(v1, v2)
	blk := bu.MustBuild()
	st := NewState(blk, latency.Default(), nil)
	st.Toggle(0)
	st.Toggle(1)
	if st.NumOut() != 2 {
		t.Errorf("outputs = %d, want 2 (both live-out)", st.NumOut())
	}
	if st.NumIn() != 1 {
		t.Errorf("inputs = %d, want 1", st.NumIn())
	}
}

// TestStateSharedInputCountedOnce: one external value feeding several cut
// nodes occupies one port.
func TestStateSharedInputCountedOnce(t *testing.T) {
	bu := ir.NewBuilder("shared", 1)
	a, b := bu.Input("a"), bu.Input("b")
	v1 := bu.Add(a, b)
	v2 := bu.Sub(a, b)
	v3 := bu.Xor(v1, v2)
	bu.LiveOut(v3)
	blk := bu.MustBuild()
	st := NewState(blk, latency.Default(), nil)
	for v := 0; v < 3; v++ {
		st.Toggle(v)
	}
	if st.NumIn() != 2 {
		t.Errorf("inputs = %d, want 2 (a and b shared)", st.NumIn())
	}
	if st.NumOut() != 1 {
		t.Errorf("outputs = %d, want 1", st.NumOut())
	}
}

// TestHWCyclesBoundaries pins the cycle-rounding behaviour.
func TestHWCyclesBoundaries(t *testing.T) {
	cases := []struct {
		cp   float64
		want int
	}{
		{0, 0}, {-1, 0}, {0.0001, 1}, {0.3, 1}, {1.0, 1},
		{1.0000000001, 1}, // epsilon guard
		{1.2, 2}, {2.0, 2}, {2.7, 3},
	}
	for _, c := range cases {
		if got := HWCycles(c.cp); got != c.want {
			t.Errorf("HWCycles(%v) = %d, want %d", c.cp, got, c.want)
		}
	}
	if MeritOf(5, 1.2) != 3 {
		t.Errorf("MeritOf(5, 1.2) = %v, want 3", MeritOf(5, 1.2))
	}
	if MeritOf(3, 0) != 3 {
		t.Errorf("MeritOf(3, 0) = %v, want 3 (empty-cut hw)", MeritOf(3, 0))
	}
}

// TestSetCutPanicsOnFrozen guards the driver invariant.
func TestSetCutPanicsOnFrozen(t *testing.T) {
	bu := ir.NewBuilder("fz", 1)
	a := bu.Input("a")
	ld := bu.Load(a)
	v := bu.Add(ld, a)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	st := NewState(blk, latency.Default(), nil)
	bad := graph.NewBitSet(2)
	bad.Set(0) // the load
	defer func() {
		if recover() == nil {
			t.Fatal("SetCut with frozen node should panic")
		}
	}()
	st.SetCut(bad)
}

// TestBlockPotentialOrdering: hotter/denser blocks must rank first.
func TestBlockPotentialOrdering(t *testing.T) {
	model := latency.Default()
	mk := func(freq float64, muls int) *ir.Block {
		bu := ir.NewBuilder("b", freq)
		a, b := bu.Input("a"), bu.Input("b")
		v := bu.Add(a, b)
		for i := 0; i < muls; i++ {
			v = bu.Mul(v, b)
		}
		bu.LiveOut(v)
		return bu.MustBuild()
	}
	hotDense := mk(100, 4)
	coldDense := mk(1, 4)
	hotThin := mk(100, 0)
	pHD := BlockPotential(hotDense, model, graph.NewBitSet(hotDense.N()))
	pCD := BlockPotential(coldDense, model, graph.NewBitSet(coldDense.N()))
	pHT := BlockPotential(hotThin, model, graph.NewBitSet(hotThin.N()))
	if !(pHD > pCD && pHD > pHT) {
		t.Errorf("potential ordering wrong: HD=%v CD=%v HT=%v", pHD, pCD, pHT)
	}
	// Excluding everything zeroes the potential.
	all := graph.NewBitSet(hotDense.N())
	for v := 0; v < hotDense.N(); v++ {
		all.Set(v)
	}
	if p := BlockPotential(hotDense, model, all); p != 0 {
		t.Errorf("fully excluded potential = %v, want 0", p)
	}
}

// TestEngineMeritMatchesCutMetrics: the Cut returned by Bipartition agrees
// with the standalone metric computation.
func TestEngineMeritMatchesCutMetrics(t *testing.T) {
	bu := ir.NewBuilder("agree", 1)
	a, b, c := bu.Input("a"), bu.Input("b"), bu.Input("c")
	v := bu.Add(bu.Mul(a, b), bu.Shl(c, b))
	bu.LiveOut(v)
	blk := bu.MustBuild()
	eng, err := NewEngine(blk, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cut := eng.Bipartition()
	if cut == nil {
		t.Fatal("no cut")
	}
	sw, cp, in, out, convex := CutMetrics(blk, latency.Default(), cut.Nodes)
	if !convex || sw != cut.SWLat || math.Abs(cp-cut.HWLat) > 1e-9 ||
		in != cut.NumIn || out != cut.NumOut {
		t.Errorf("cut fields disagree with CutMetrics: %+v vs (%d %v %d %d)", cut, sw, cp, in, out)
	}
}
