package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/obs"
)

// Config controls one ISEGEN run.
type Config struct {
	// MaxIn and MaxOut are the register-file port constraints (the
	// paper's (INmax, OUTmax), e.g. (4,2)).
	MaxIn, MaxOut int
	// NISE is the AFU budget: the maximum number of distinct ISEs to
	// identify across the application (Problem 2).
	NISE int
	// MaxPasses bounds the outer K-L loop; the paper found 5 passes
	// sufficient, and the loop exits earlier when a pass brings no
	// improvement.
	MaxPasses int
	// Restarts runs the K-L loop from several deterministic start
	// configurations — the empty cut plus seed nodes dispersed across
	// the topological order — and keeps the best result. One trajectory
	// explores only a neighbourhood of its start on very large DFGs
	// (AES is 696 nodes); dispersed seeds recover the global structure
	// at a linear cost. 1 reproduces the paper's single-start loop.
	Restarts int
	// Workers bounds the concurrency of the search layer
	// (internal/search): parallel K-L trajectories and per-block
	// fan-out. 0 means one worker per CPU core, 1 forces the sequential
	// path. Results are bit-identical either way; the engine itself
	// ignores the field.
	Workers int
	// Weights are the gain-function control parameters.
	Weights Weights
	// Model supplies software and hardware latencies.
	Model *latency.Model
}

// DefaultConfig returns the configuration used in the paper's main
// experiment: I/O constraints (4,2), 4 AFUs, 5 passes.
func DefaultConfig() Config {
	return Config{
		MaxIn:     4,
		MaxOut:    2,
		NISE:      4,
		MaxPasses: 5,
		Restarts:  4,
		Weights:   DefaultWeights(),
		Model:     latency.Default(),
	}
}

// Validate checks the configuration invariants shared by every driver.
func (c *Config) Validate() error {
	if c.MaxIn < 1 || c.MaxOut < 1 {
		return fmt.Errorf("core: I/O constraints (%d,%d) must be at least (1,1)", c.MaxIn, c.MaxOut)
	}
	if c.NISE < 1 {
		return fmt.Errorf("core: NISE = %d, must be at least 1", c.NISE)
	}
	if c.MaxPasses < 1 {
		return fmt.Errorf("core: MaxPasses = %d, must be at least 1", c.MaxPasses)
	}
	if c.Restarts < 1 {
		return fmt.Errorf("core: Restarts = %d, must be at least 1", c.Restarts)
	}
	if c.Model == nil {
		return fmt.Errorf("core: Config.Model is nil")
	}
	return nil
}

// Cut is one identified ISE candidate within a block.
type Cut struct {
	// Block is the basic block the cut was identified in.
	Block *ir.Block
	// Nodes is the set of instruction IDs forming the ISE.
	Nodes *graph.BitSet
	// NumIn and NumOut are the cut's register-file operand counts.
	NumIn, NumOut int
	// SWLat is the summed software latency of the covered instructions.
	SWLat int
	// HWLat is the AFU critical-path latency (normalized to MAC = 1.0).
	HWLat float64
}

// HWCyclesInt returns the whole core cycles the ISE occupies.
func (c *Cut) HWCyclesInt() int { return HWCycles(c.HWLat) }

// Merit returns λ(C) = SWLat − cycles(HWLat), the cycles saved per
// execution of the cut.
func (c *Cut) Merit() float64 { return MeritOf(c.SWLat, c.HWLat) }

// Size returns the number of instructions in the cut.
func (c *Cut) Size() int { return c.Nodes.Count() }

// Candidate is one feasible cut encountered during the K-L search, before
// metrics finalization.
type Candidate struct {
	Nodes *graph.BitSet
	// Merit is the merit observed when the snapshot was taken —
	// informational only: Finalize recosts every candidate through the
	// metrics function (component-decomposed candidates never carry it).
	Merit float64
}

// Engine runs the modified Kernighan–Lin bi-partition on one block. The
// engine itself is immutable after construction: every restart trajectory
// runs on a private State, so Trajectory may be called concurrently from
// several goroutines (the search layer's restart fan-out).
type Engine struct {
	cfg      Config
	blk      *ir.Block
	excluded *graph.BitSet
	// state backs Seeds and Frozen queries; trajectories get their own.
	state   *State
	metrics MetricsFunc
	// pool recycles trajectory workspaces (State, mark/best bitsets, gain
	// context, snapshot arena) across restart seeds: the restart fan-out
	// allocates at most one workspace per concurrently running trajectory
	// instead of one per seed. Pooled snapshots are never reclaimed (the
	// arena only batches allocation), so handing them to Finalize is safe.
	pool sync.Pool
	// fullRebuild routes every trajectory through the non-incremental
	// gain-context/critical-path paths; the pinning tests compare both.
	fullRebuild bool
}

// NewEngine prepares a bi-partition engine for the block. Nodes in excluded
// (may be nil) are frozen in software — the multi-cut driver passes the
// nodes already claimed by earlier ISEs.
func NewEngine(blk *ir.Block, cfg Config, excluded *graph.BitSet) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(blk); err != nil {
		return nil, err
	}
	var ex *graph.BitSet
	if excluded != nil {
		ex = excluded.Clone()
	}
	return &Engine{
		cfg:      cfg,
		blk:      blk,
		excluded: ex,
		state:    NewState(blk, cfg.Model, ex),
		metrics:  MetricsOf,
	}, nil
}

// SetMetrics installs a custom cut-costing function (e.g. the search
// layer's memoized cache). f must be equivalent to MetricsOf; nil restores
// the default.
func (e *Engine) SetMetrics(f MetricsFunc) {
	if f == nil {
		f = MetricsOf
	}
	e.metrics = f
}

// Bipartition runs the ISEGEN algorithm of Figure 2 (with Config.Restarts
// dispersed start configurations) and returns the best feasible cut found,
// or nil when no cut with positive merit exists (e.g. every node is
// frozen).
func (e *Engine) Bipartition() *Cut {
	cands := e.Candidates()
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// Candidates runs the full search sequentially and returns every distinct
// feasible cut with positive merit the trajectories passed through, best
// merit first. It is equivalent to running Trajectory over Seeds and
// passing the concatenated snapshots to Finalize — which is exactly what
// the search layer does, in parallel, with bit-identical results.
//
// The head of the list is what Bipartition returns; the tail contains
// smaller cuts that a reuse-aware driver may prefer when they have many
// isomorphic instances (the paper's Figure 1 principle).
func (e *Engine) Candidates() []*Cut {
	var snaps []Candidate
	for _, seed := range e.Seeds() {
		snaps = append(snaps, e.Trajectory(seed)...)
	}
	return e.Finalize(snaps)
}

// Seeds returns the restart start configurations: the empty cut first,
// then singleton cuts at unfrozen nodes evenly dispersed along the
// topological order, so each restart explores a different region of large
// DFGs.
func (e *Engine) Seeds() []*graph.BitSet {
	st := e.state
	out := []*graph.BitSet{graph.NewBitSet(st.n)}
	extra := e.cfg.Restarts - 1
	if extra <= 0 {
		return out
	}
	var unfrozen []int
	for _, v := range st.Blk.DAG().Topo() {
		if !st.Frozen.Has(v) {
			unfrozen = append(unfrozen, v)
		}
	}
	if len(unfrozen) == 0 {
		return out
	}
	for r := 0; r < extra; r++ {
		idx := (2*r + 1) * len(unfrozen) / (2 * extra)
		if idx >= len(unfrozen) {
			idx = len(unfrozen) - 1
		}
		seed := graph.NewBitSet(st.n)
		seed.Set(unfrozen[idx])
		out = append(out, seed)
	}
	return out
}

// Trajectory runs one full Figure 2 K-L loop from the given start cut on a
// private State and returns every feasible improvement it passed through.
// Safe for concurrent use: trajectories share nothing but the immutable
// block and config.
func (e *Engine) Trajectory(seed *graph.BitSet) []Candidate {
	snaps, _ := e.TrajectoryContext(context.Background(), seed)
	return snaps
}

// TrajectoryContext is Trajectory with cancellation granularity inside the
// block: the K-L loop polls the context every few toggle steps (each step
// is at least an O(n) gain scan, so the amortized check is free) and aborts
// mid-pass, returning the snapshots taken so far alongside ctx.Err(). This
// is what lets a cancelled request abort a 696-node AES bi-partition
// mid-search instead of waiting for the full trajectory.
//
// The trajectory workspace (State and all scratch buffers) comes from the
// engine's pool and is returned to it before this method returns; the
// returned snapshots are arena-backed copies that outlive the pooling.
func (e *Engine) TrajectoryContext(ctx context.Context, seed *graph.BitSet) ([]Candidate, error) {
	_, sp := obs.StartSpan(ctx, obs.KindTrajectory, "")
	t, reused := e.getTrajectory()
	t.ctx = ctx
	t.klLoop(seed)
	snaps, err := t.snaps, t.ctxErr
	// Drain the workspace tallies unconditionally — pooled State must
	// not carry counts into a later job — and record them only when a
	// recorder rides the context.
	o := t.st.drainObs()
	rebuilds := t.gc.rebuilds
	t.gc.rebuilds = 0
	e.putTrajectory(t)
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.KLToggles, o.toggles)
		rec.Add(obs.KLProbes, o.probes)
		rec.Add(obs.KLCPIncremental, o.cpInc)
		rec.Add(obs.KLCPFullSweeps, o.cpFull)
		rec.Add(obs.KLGainRebuilds, rebuilds)
		rec.Add(obs.KLGainCacheHits, o.gainHits)
		rec.Add(obs.KLGainCacheMisses, o.gainMisses)
		rec.Add(obs.KLCPCriticalInc, o.cpCriticalInc)
		rec.Add(obs.KLSetCutIncremental, o.setCutInc)
		if reused {
			rec.Add(obs.KLPoolHits, 1)
		} else {
			rec.Add(obs.KLPoolMisses, 1)
		}
	}
	sp.End()
	return snaps, err
}

// getTrajectory takes a reset workspace from the pool or builds a fresh
// one, reporting which happened (the pool-reuse observability counter).
// Pooled and fresh workspaces are behaviorally identical: everything
// klLoop reads is either re-derived from the seed (SetCut normalizes the
// State from whatever cut the previous trajectory left) or reset here.
func (e *Engine) getTrajectory() (*trajectory, bool) {
	if v := e.pool.Get(); v != nil {
		t := v.(*trajectory)
		t.snaps = nil
		t.ctxErr = nil
		t.steps = 0
		t.gc.invalidate()
		e.setRebuildMode(t)
		return t, true
	}
	n := e.blk.N()
	t := &trajectory{
		cfg:     &e.cfg,
		st:      NewState(e.blk, e.cfg.Model, e.excluded),
		marked:  graph.NewBitSet(n),
		curBest: graph.NewBitSet(n),
		best:    graph.NewBitSet(n),
		arena:   graph.NewBitSetArena(n),
	}
	e.setRebuildMode(t)
	return t, false
}

// setRebuildMode syncs a workspace's incremental-vs-reference switches
// with the engine's fullRebuild flag. Pooled workspaces re-sync on every
// checkout so a SetFullRebuild call between trajectories takes effect.
func (e *Engine) setRebuildMode(t *trajectory) {
	t.st.fullCP = e.fullRebuild
	t.st.digestOff = e.fullRebuild
	t.gc.noIncremental = e.fullRebuild
}

// SetFullRebuild routes every subsequent trajectory through the
// non-incremental reference paths: full critical-path sweeps per toggle
// and SetCut, uncached probes, gain-context relabels every step. The
// pinning tests and the differential harness compare both modes
// bit-for-bit; production callers never need it. Not safe to call
// concurrently with running trajectories.
func (e *Engine) SetFullRebuild(on bool) { e.fullRebuild = on }

// putTrajectory returns a workspace to the pool. The snapshot slice was
// handed to the caller, so only the reference is dropped here (by
// getTrajectory's reset); the arena keeps its partially used slabs.
func (e *Engine) putTrajectory(t *trajectory) {
	t.ctx = nil
	e.pool.Put(t)
}

// Finalize post-processes trajectory snapshots into ranked cuts: each
// snapshot is additionally decomposed into its weakly-connected components
// (components of a feasible cut are themselves feasible — no edges cross
// components, so convexity and the I/O port sets inherit subset-wise, and
// repeated patterns usually surface as components of larger opportunistic
// cuts), the pool is deduplicated by node set, costed through the metrics
// function, filtered to positive merit and sorted best merit first.
func (e *Engine) Finalize(snaps []Candidate) []*Cut {
	dag := e.blk.DAG()
	n := e.blk.N()
	// Dedup by node set, keeping order of first appearance: a word-hash
	// index over the uniq list replaces the former O(k²) pairwise Equal
	// scan. Buckets hold indices of equal-hash candidates, verified with
	// Equal, so a hash collision costs one extra compare, never a wrong
	// dedup. Pool order is preserved exactly: all snapshots first, then
	// each snapshot's components in component order.
	var uniq []Candidate
	buckets := make(map[uint64][]int, 2*len(snaps))
	seen := func(b *graph.BitSet) bool {
		for _, i := range buckets[b.Hash()] {
			if uniq[i].Nodes.Equal(b) {
				return true
			}
		}
		return false
	}
	add := func(c Candidate) {
		h := c.Nodes.Hash()
		buckets[h] = append(buckets[h], len(uniq))
		uniq = append(uniq, c)
	}
	for _, c := range snaps {
		if !seen(c.Nodes) {
			add(c)
		}
	}
	// Decompose each distinct snapshot (dedup ran first, so duplicates
	// cost nothing here) into its weakly-connected components without
	// allocating per component: labels go into a shared scratch, each
	// component is materialized into one reusable bitset, and only
	// components not seen before are cloned into the pool. Components
	// appended by this loop are connected, so bounding it to the
	// pre-decomposition prefix of uniq only skips guaranteed no-ops.
	var sc graph.CompScratch
	scratch := graph.NewBitSet(n)
	for _, c := range uniq[:len(uniq):len(uniq)] {
		ncomp := dag.ComponentsInto(c.Nodes, &sc)
		if ncomp < 2 {
			continue
		}
		for ci := 0; ci < ncomp; ci++ {
			scratch.Reset()
			for v := c.Nodes.NextSet(0); v >= 0; v = c.Nodes.NextSet(v + 1) {
				if sc.CompOf[v] == ci {
					scratch.Set(v)
				}
			}
			if !seen(scratch) {
				add(Candidate{Nodes: scratch.Clone()}) // merit filled below
			}
		}
	}
	out := make([]*Cut, 0, len(uniq))
	for _, c := range uniq {
		m := e.metrics(e.blk, e.cfg.Model, c.Nodes)
		if m.Merit() <= 0 {
			continue
		}
		out = append(out, &Cut{
			Block:  e.blk,
			Nodes:  c.Nodes,
			NumIn:  m.NumIn,
			NumOut: m.NumOut,
			SWLat:  m.SWLat,
			HWLat:  m.HWLat,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Merit() > out[j].Merit() })
	return out
}

// trajectory is the mutable per-restart search state: one State plus the
// pass bookkeeping and the snapshot pool. Workspaces are pooled per engine
// (see getTrajectory); the arena-backed snapshots are the only outputs that
// escape one.
type trajectory struct {
	cfg     *Config
	ctx     context.Context
	st      *State
	marked  *graph.BitSet
	curBest *graph.BitSet
	best    *graph.BitSet
	arena   *graph.BitSetArena

	curBestMerit float64
	curBestOK    bool
	snaps        []Candidate
	gc           gainContext
	steps        int
	ctxErr       error
}

// ctxCheckEvery is the toggle-step stride of the amortized cancellation
// poll: each step already costs an O(n) gain scan, so one Err() call
// per 16 steps is unmeasurable yet keeps abort latency far below a pass.
const ctxCheckEvery = 16

// cancelled polls the context every ctxCheckEvery toggle steps, latching
// the error.
func (t *trajectory) cancelled() bool {
	if t.ctxErr != nil {
		return true
	}
	t.steps++
	if t.ctx == nil || t.steps%ctxCheckEvery != 0 {
		return false
	}
	t.ctxErr = t.ctx.Err()
	return t.ctxErr != nil
}

// klLoop is one full Figure 2 run from the given start cut: up to
// MaxPasses passes, each toggling every unfrozen node once in best-gain
// order, tracking the best feasible configuration. Every feasible
// improvement is recorded into the candidate pool as an arena-backed
// snapshot.
func (t *trajectory) klLoop(start *graph.BitSet) {
	st := t.st
	best := t.best
	best.CopyFrom(start)
	bestMerit := 0.0
	// A non-empty seed may itself be feasible with positive merit.
	st.SetCut(best)
	t.gc.invalidate()
	if st.Feasible(t.cfg.MaxIn, t.cfg.MaxOut) {
		bestMerit = st.Merit()
		if bestMerit > 0 {
			t.snaps = append(t.snaps, Candidate{t.arena.CloneOf(best), bestMerit})
		}
	}

	for pass := 0; pass < t.cfg.MaxPasses; pass++ {
		// Each pass restarts from the best cut found so far with all
		// nodes unmarked (Figure 2 lines 03, 18).
		st.SetCut(best)
		t.gc.invalidate()
		t.marked.Reset()
		t.curBest.Reset()
		t.curBestMerit = bestMerit
		t.curBestOK = false

		for {
			if t.cancelled() {
				return
			}
			v := t.selectBestGain()
			if v < 0 {
				break
			}
			st.Toggle(v)
			t.gc.noteToggle(st, v)
			t.marked.Set(v)
			if st.Feasible(t.cfg.MaxIn, t.cfg.MaxOut) {
				if m := st.Merit(); m > t.curBestMerit {
					t.curBestMerit = m
					t.curBest.CopyFrom(st.H)
					t.curBestOK = true
					if m > 0 {
						t.snaps = append(t.snaps, Candidate{t.arena.CloneOf(st.H), m})
					}
				}
			}
		}

		if !t.curBestOK {
			break // no improvement this pass: converged
		}
		best.CopyFrom(t.curBest)
		bestMerit = t.curBestMerit
	}
}

// selectBestGain evaluates the gain of every unmarked, unfrozen node and
// returns the argmax (lowest ID wins ties); -1 when no candidate remains.
// The scan is O(n) amortized, not O(n·deg): each gain reads an O(1)
// recombination of the candidate's cached probe digest with the global
// scalars, and the preceding toggle's invalidation walk dirtied only the
// candidates in its own neighbourhood — those few pay the full digest
// rebuild, everyone else hits the cache (see State.Probe).
func (t *trajectory) selectBestGain() int {
	t.prepareGainContext()
	best, bestGain := -1, 0.0
	for v := 0; v < t.st.n; v++ {
		if t.marked.Has(v) || t.st.Frozen.Has(v) {
			continue
		}
		g := t.gain(v)
		if best < 0 || g > bestGain {
			best, bestGain = v, g
		}
	}
	return best
}
