package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// Config controls one ISEGEN run.
type Config struct {
	// MaxIn and MaxOut are the register-file port constraints (the
	// paper's (INmax, OUTmax), e.g. (4,2)).
	MaxIn, MaxOut int
	// NISE is the AFU budget: the maximum number of distinct ISEs to
	// identify across the application (Problem 2).
	NISE int
	// MaxPasses bounds the outer K-L loop; the paper found 5 passes
	// sufficient, and the loop exits earlier when a pass brings no
	// improvement.
	MaxPasses int
	// Restarts runs the K-L loop from several deterministic start
	// configurations — the empty cut plus seed nodes dispersed across
	// the topological order — and keeps the best result. One trajectory
	// explores only a neighbourhood of its start on very large DFGs
	// (AES is 696 nodes); dispersed seeds recover the global structure
	// at a linear cost. 1 reproduces the paper's single-start loop.
	Restarts int
	// Weights are the gain-function control parameters.
	Weights Weights
	// Model supplies software and hardware latencies.
	Model *latency.Model
}

// DefaultConfig returns the configuration used in the paper's main
// experiment: I/O constraints (4,2), 4 AFUs, 5 passes.
func DefaultConfig() Config {
	return Config{
		MaxIn:     4,
		MaxOut:    2,
		NISE:      4,
		MaxPasses: 5,
		Restarts:  4,
		Weights:   DefaultWeights(),
		Model:     latency.Default(),
	}
}

func (c *Config) validate() error {
	if c.MaxIn < 1 || c.MaxOut < 1 {
		return fmt.Errorf("core: I/O constraints (%d,%d) must be at least (1,1)", c.MaxIn, c.MaxOut)
	}
	if c.NISE < 1 {
		return fmt.Errorf("core: NISE = %d, must be at least 1", c.NISE)
	}
	if c.MaxPasses < 1 {
		return fmt.Errorf("core: MaxPasses = %d, must be at least 1", c.MaxPasses)
	}
	if c.Restarts < 1 {
		return fmt.Errorf("core: Restarts = %d, must be at least 1", c.Restarts)
	}
	if c.Model == nil {
		return fmt.Errorf("core: Config.Model is nil")
	}
	return nil
}

// Cut is one identified ISE candidate within a block.
type Cut struct {
	// Block is the basic block the cut was identified in.
	Block *ir.Block
	// Nodes is the set of instruction IDs forming the ISE.
	Nodes *graph.BitSet
	// NumIn and NumOut are the cut's register-file operand counts.
	NumIn, NumOut int
	// SWLat is the summed software latency of the covered instructions.
	SWLat int
	// HWLat is the AFU critical-path latency (normalized to MAC = 1.0).
	HWLat float64
}

// HWCyclesInt returns the whole core cycles the ISE occupies.
func (c *Cut) HWCyclesInt() int { return HWCycles(c.HWLat) }

// Merit returns λ(C) = SWLat − cycles(HWLat), the cycles saved per
// execution of the cut.
func (c *Cut) Merit() float64 { return MeritOf(c.SWLat, c.HWLat) }

// Size returns the number of instructions in the cut.
func (c *Cut) Size() int { return c.Nodes.Count() }

// Engine runs the modified Kernighan–Lin bi-partition on one block.
// An Engine is single-use per Bipartition call but may be reused across
// calls on the same block.
type Engine struct {
	cfg   Config
	state *State
	gc    gainContext

	marked *graph.BitSet
	// Reusable scratch for pass bookkeeping.
	curBest      *graph.BitSet
	curBestMerit float64
	curBestOK    bool
	// snaps accumulates every distinct feasible improvement the search
	// passes through — the candidate pool for reuse-aware selection.
	snaps []candidate
}

// candidate is one feasible cut encountered during the search.
type candidate struct {
	nodes *graph.BitSet
	merit float64
}

// NewEngine prepares a bi-partition engine for the block. Nodes in excluded
// (may be nil) are frozen in software — the multi-cut driver passes the
// nodes already claimed by earlier ISEs.
func NewEngine(blk *ir.Block, cfg Config, excluded *graph.BitSet) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(blk); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:     cfg,
		state:   NewState(blk, cfg.Model, excluded),
		marked:  graph.NewBitSet(blk.N()),
		curBest: graph.NewBitSet(blk.N()),
	}, nil
}

// Bipartition runs the ISEGEN algorithm of Figure 2 (with Config.Restarts
// dispersed start configurations) and returns the best feasible cut found,
// or nil when no cut with positive merit exists (e.g. every node is
// frozen).
func (e *Engine) Bipartition() *Cut {
	cands := e.Candidates()
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// Candidates runs the full search and returns every distinct feasible cut
// with positive merit the trajectories passed through, best merit first.
// The head of the list is what Bipartition returns; the tail contains
// smaller cuts that a reuse-aware driver may prefer when they have many
// isomorphic instances (the paper's Figure 1 principle).
//
// Each snapshot is additionally decomposed into its weakly-connected
// components: components of a feasible cut are themselves feasible (no
// edges cross components, so convexity and the I/O port sets inherit
// subset-wise), and repeated patterns usually surface as components of
// larger opportunistic cuts.
func (e *Engine) Candidates() []*Cut {
	st := e.state
	e.snaps = e.snaps[:0]
	for _, seed := range e.seeds() {
		e.klLoop(seed)
	}
	dag := st.Blk.DAG()
	pool := append([]candidate(nil), e.snaps...)
	for _, c := range e.snaps {
		comps := dag.ComponentsOf(c.nodes)
		if len(comps) < 2 {
			continue
		}
		for _, comp := range comps {
			sub := graph.NewBitSet(st.n)
			for _, v := range comp {
				sub.Set(v)
			}
			pool = append(pool, candidate{nodes: sub}) // merit filled below
		}
	}
	// Dedup by node set, keeping order of first appearance.
	var uniq []candidate
	for _, c := range pool {
		dup := false
		for _, u := range uniq {
			if u.nodes.Equal(c.nodes) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, c)
		}
	}
	out := make([]*Cut, 0, len(uniq))
	for _, c := range uniq {
		st.SetCut(c.nodes)
		if m := st.Merit(); m <= 0 {
			continue
		}
		out = append(out, &Cut{
			Block:  st.Blk,
			Nodes:  c.nodes,
			NumIn:  st.NumIn(),
			NumOut: st.NumOut(),
			SWLat:  st.SWSum(),
			HWLat:  st.HWCP(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Merit() > out[j].Merit() })
	return out
}

// seeds returns the restart start configurations: the empty cut first,
// then singleton cuts at unfrozen nodes evenly dispersed along the
// topological order, so each restart explores a different region of large
// DFGs.
func (e *Engine) seeds() []*graph.BitSet {
	st := e.state
	out := []*graph.BitSet{graph.NewBitSet(st.n)}
	extra := e.cfg.Restarts - 1
	if extra <= 0 {
		return out
	}
	var unfrozen []int
	for _, v := range st.Blk.DAG().Topo() {
		if !st.Frozen.Has(v) {
			unfrozen = append(unfrozen, v)
		}
	}
	if len(unfrozen) == 0 {
		return out
	}
	for r := 0; r < extra; r++ {
		idx := (2*r + 1) * len(unfrozen) / (2 * extra)
		if idx >= len(unfrozen) {
			idx = len(unfrozen) - 1
		}
		seed := graph.NewBitSet(st.n)
		seed.Set(unfrozen[idx])
		out = append(out, seed)
	}
	return out
}

// klLoop is one full Figure 2 run from the given start cut: up to
// MaxPasses passes, each toggling every unfrozen node once in best-gain
// order, tracking the best feasible configuration. Every feasible
// improvement is recorded into the candidate pool.
func (e *Engine) klLoop(start *graph.BitSet) (*graph.BitSet, float64) {
	st := e.state
	best := start.Clone()
	bestMerit := 0.0
	// A non-empty seed may itself be feasible with positive merit.
	st.SetCut(best)
	if st.Feasible(e.cfg.MaxIn, e.cfg.MaxOut) {
		bestMerit = st.Merit()
		if bestMerit > 0 {
			e.snaps = append(e.snaps, candidate{best.Clone(), bestMerit})
		}
	}

	for pass := 0; pass < e.cfg.MaxPasses; pass++ {
		// Each pass restarts from the best cut found so far with all
		// nodes unmarked (Figure 2 lines 03, 18).
		st.SetCut(best)
		e.marked.Reset()
		e.curBest.Reset()
		e.curBestMerit = bestMerit
		e.curBestOK = false

		for {
			v := e.selectBestGain()
			if v < 0 {
				break
			}
			st.Toggle(v)
			e.marked.Set(v)
			if st.Feasible(e.cfg.MaxIn, e.cfg.MaxOut) {
				if m := st.Merit(); m > e.curBestMerit {
					e.curBestMerit = m
					e.curBest.CopyFrom(st.H)
					e.curBestOK = true
					if m > 0 {
						e.snaps = append(e.snaps, candidate{st.H.Clone(), m})
					}
				}
			}
		}

		if !e.curBestOK {
			break // no improvement this pass: converged
		}
		best.CopyFrom(e.curBest)
		bestMerit = e.curBestMerit
	}
	if bestMerit <= 0 {
		return graph.NewBitSet(st.n), 0
	}
	return best, bestMerit
}

// selectBestGain evaluates the gain of every unmarked, unfrozen node and
// returns the argmax (lowest ID wins ties); -1 when no candidate remains.
func (e *Engine) selectBestGain() int {
	e.prepareGainContext()
	best, bestGain := -1, 0.0
	for v := 0; v < e.state.n; v++ {
		if e.marked.Has(v) || e.state.Frozen.Has(v) {
			continue
		}
		g := e.gain(v)
		if best < 0 || g > bestGain {
			best, bestGain = v, g
		}
	}
	return best
}

// Result is the outcome of the multi-cut driver: the selected ISEs in
// discovery order.
type Result struct {
	Cuts []*Cut
}

// Scorer ranks candidate cuts during the multi-cut drive. It may inspect
// the per-block excluded sets (e.g. to count claimable reuse instances)
// but must not modify them. A non-positive score rejects the candidate.
type Scorer func(blockIdx int, cut *Cut, excluded []*graph.BitSet) float64

// Generate solves Problem 2: it repeatedly selects the block with the
// highest remaining speedup potential (execution frequency × estimated gain
// of its remaining feasible nodes), bi-partitions it, freezes the selected
// nodes and repeats until NISE cuts are found or no block yields a cut with
// positive merit.
//
// If claim is non-nil it is invoked after each cut is found; it may freeze
// additional nodes (e.g. other isomorphic instances of the cut discovered
// by the reuse matcher) by mutating the per-block excluded sets it is
// handed.
func Generate(app *ir.Application, cfg Config, claim func(blockIdx int, cut *Cut, excluded []*graph.BitSet)) (*Result, error) {
	return GenerateScored(app, cfg, nil, claim)
}

// GenerateScored is Generate with a custom candidate scorer: each
// bi-partition yields a pool of feasible cuts (see Engine.Candidates) and
// the scorer picks the winner — the hook through which the facade
// implements reuse-aware selection (merit × claimable instances, the
// paper's Figure 1 principle). A nil scorer selects by merit.
func GenerateScored(app *ir.Application, cfg Config, score Scorer, claim func(blockIdx int, cut *Cut, excluded []*graph.BitSet)) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	excluded := make([]*graph.BitSet, len(app.Blocks))
	for i, blk := range app.Blocks {
		if err := cfg.Model.Validate(blk); err != nil {
			return nil, err
		}
		excluded[i] = graph.NewBitSet(blk.N())
	}
	res := &Result{}
	exhausted := make([]bool, len(app.Blocks))
	for len(res.Cuts) < cfg.NISE {
		bi := selectBlock(app, cfg.Model, excluded, exhausted)
		if bi < 0 {
			break
		}
		eng, err := NewEngine(app.Blocks[bi], cfg, excluded[bi])
		if err != nil {
			return nil, err
		}
		cands := eng.Candidates()
		var cut *Cut
		if score == nil {
			if len(cands) > 0 {
				cut = cands[0] // highest merit
			}
		} else {
			bestScore := 0.0
			for _, c := range cands {
				if s := score(bi, c, excluded); s > bestScore {
					bestScore = s
					cut = c
				}
			}
		}
		if cut == nil {
			exhausted[bi] = true
			continue
		}
		res.Cuts = append(res.Cuts, cut)
		excluded[bi].Or(cut.Nodes)
		if claim != nil {
			claim(bi, cut, excluded)
		}
	}
	return res, nil
}

// selectBlock returns the index of the non-exhausted block with the highest
// speedup potential, or -1 when none remains. Potential follows the paper:
// execution frequency times the estimated gain from mapping all remaining
// feasible nodes of the block to hardware.
func selectBlock(app *ir.Application, model *latency.Model, excluded []*graph.BitSet, exhausted []bool) int {
	best, bestPot := -1, 0.0
	for i, blk := range app.Blocks {
		if exhausted[i] {
			continue
		}
		pot := blockPotential(blk, model, excluded[i])
		if pot <= 0 {
			exhausted[i] = true
			continue
		}
		if best < 0 || pot > bestPot {
			best, bestPot = i, pot
		}
	}
	return best
}

func blockPotential(blk *ir.Block, model *latency.Model, excluded *graph.BitSet) float64 {
	feasible := graph.NewBitSet(blk.N())
	swSum := 0
	for v := 0; v < blk.N(); v++ {
		if excluded.Has(v) || blk.ForbiddenInCut(v) {
			continue
		}
		if !model.HWImplementable(blk.Nodes[v].Op) {
			continue
		}
		feasible.Set(v)
		swSum += model.SWLat(blk.Nodes[v].Op)
	}
	if feasible.Empty() {
		return 0
	}
	_, cp := blk.DAG().LongestPath(feasible, func(v int) float64 {
		d, _ := model.HWLat(blk.Nodes[v].Op)
		return d
	})
	gain := MeritOf(swSum, cp)
	if gain <= 0 {
		return 0
	}
	return blk.Freq * gain
}
