package core
