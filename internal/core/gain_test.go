package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
)

// gainHarness exposes the trajectory internals for focused gain tests.
func gainHarness(t *testing.T, blk *ir.Block, cfg Config) *trajectory {
	t.Helper()
	if _, err := NewEngine(blk, cfg, nil); err != nil {
		t.Fatal(err)
	}
	tr := &trajectory{
		cfg:     &cfg,
		st:      NewState(blk, cfg.Model, nil),
		marked:  graph.NewBitSet(blk.N()),
		curBest: graph.NewBitSet(blk.N()),
	}
	tr.prepareGainContext()
	return tr
}

// TestGainIOPenaltyDominates: a candidate that violates the port limits
// must score far below one that does not, all else similar.
func TestGainIOPenaltyDominates(t *testing.T) {
	// Two independent adds; under (2,1), the second add (different
	// inputs) violates ports once the first is in the cut.
	bu := ir.NewBuilder("io", 1)
	a, b := bu.Input("a"), bu.Input("b")
	c, d := bu.Input("c"), bu.Input("d")
	s1 := bu.Add(a, b)
	s2 := bu.Add(c, d)
	x := bu.Xor(s1, s1) // consumer keeping s1 internal-able
	bu.LiveOut(x, s2)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.MaxIn, cfg.MaxOut = 2, 1
	eng := gainHarness(t, blk, cfg)
	eng.st.Toggle(0) // s1 in H
	eng.prepareGainContext()

	gViolating := eng.gain(1) // adding s2: 4 inputs, 2 outputs -> violation
	gFriendly := eng.gain(2)  // adding the xor consumer of s1
	if gViolating >= gFriendly {
		t.Errorf("violating candidate gain %v should be far below friendly %v", gViolating, gFriendly)
	}
}

// TestGainConvexityTermSigns: adding a node with cut neighbours is
// preferred over an identical node without; removing a well-connected cut
// node is resisted.
func TestGainConvexityTermSigns(t *testing.T) {
	bu := ir.NewBuilder("conv", 1)
	a := bu.Input("a")
	n0 := bu.Add(a, a)
	n1 := bu.Xor(n0, a) // neighbour of n0
	n2 := bu.Xor(a, a)  // no relation to n0
	o := bu.Or(n1, n2)
	bu.LiveOut(o)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	// Isolate the neighbour term: zero everything else.
	cfg.Weights = Weights{Convexity: 1}
	eng := gainHarness(t, blk, cfg)
	eng.st.Toggle(0)
	eng.prepareGainContext()

	gNeighbour := eng.gain(1)
	gStranger := eng.gain(2)
	if gNeighbour <= gStranger {
		t.Errorf("neighbour gain %v must exceed stranger gain %v", gNeighbour, gStranger)
	}
	// Removing n0 (one cut neighbour... none in cut; its neighbour n1
	// is outside). Add n1 then check removal resistance of n0.
	eng.st.Toggle(1)
	eng.prepareGainContext()
	gRemove := eng.gain(0) // H->S toggle of n0, which has n1 in cut
	if gRemove >= 0 {
		t.Errorf("removal of connected node should have negative neighbour term, got %v", gRemove)
	}
}

// TestGainIndependentTermEncouragesRetreat: with several components in H,
// removing a node from a small component carries a positive independent
// term proportional to the *other* components' critical paths.
func TestGainIndependentTerm(t *testing.T) {
	bu := ir.NewBuilder("ind", 1)
	a, b := bu.Input("a"), bu.Input("b")
	m1 := bu.Mul(a, b) // component 1: heavy
	m2 := bu.Mul(m1, a)
	x := bu.Xor(a, b) // component 2: light
	bu.LiveOut(m2, x)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.Weights = Weights{Independent: 1}
	eng := gainHarness(t, blk, cfg)
	eng.st.Toggle(0)
	eng.st.Toggle(1)
	eng.st.Toggle(2) // H = {m1, m2} ∪ {x}
	eng.prepareGainContext()

	gX := eng.gain(2)  // removing the light xor: other component heavy
	gM2 := eng.gain(1) // removing m2: other component light
	if gX <= gM2 {
		t.Errorf("removing from the light component (%v) should be favoured over the heavy one (%v)", gX, gM2)
	}
	if gX <= 0 {
		t.Errorf("independent term must be positive when other components exist, got %v", gX)
	}
}

// TestGainMeritTieBreaker: between two zero-integer-merit candidates, the
// fractional slack prefers the cheaper operator.
func TestGainMeritTieBreaker(t *testing.T) {
	bu := ir.NewBuilder("tie", 1)
	a, b := bu.Input("a"), bu.Input("b")
	x := bu.Xor(a, b) // hw 0.05
	s := bu.Shl(a, b) // hw 0.20
	bu.LiveOut(x, s)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.Weights = Weights{Merit: 1}
	eng := gainHarness(t, blk, cfg)
	gx, gs := eng.gain(0), eng.gain(1)
	if gx <= gs {
		t.Errorf("xor (cheaper datapath) should tie-break above shl: %v vs %v", gx, gs)
	}
}

func TestSeedsDispersedAndDeterministic(t *testing.T) {
	bu := ir.NewBuilder("seeds", 1)
	a := bu.Input("a")
	v := a
	for i := 0; i < 40; i++ {
		v = bu.AddI(v, int32(i))
	}
	bu.LiveOut(v)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.Restarts = 4
	eng, err := NewEngine(blk, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := eng.Seeds()
	s2 := eng.Seeds()
	if len(s1) != 4 {
		t.Fatalf("got %d seeds, want 4", len(s1))
	}
	if !s1[0].Empty() {
		t.Error("first seed must be the empty cut")
	}
	var picks []int
	for i := 1; i < len(s1); i++ {
		if !s1[i].Equal(s2[i]) {
			t.Error("seeds must be deterministic")
		}
		if c := s1[i].Count(); c != 1 {
			t.Fatalf("seed %d has %d nodes, want 1", i, c)
		}
		picks = append(picks, s1[i].Elems()[0])
	}
	// Dispersion: on a 40-node chain the three singleton seeds must be
	// spread across thirds of the topological order.
	if !(picks[0] < picks[1] && picks[1] < picks[2]) {
		t.Errorf("seeds not ordered along the chain: %v", picks)
	}
	if picks[2]-picks[0] < 20 {
		t.Errorf("seeds not dispersed: %v", picks)
	}
}

func TestCandidatesIncludeComponents(t *testing.T) {
	// Two disconnected MACs: the best cut under (8,4) packs both; the
	// candidate list must also contain each single MAC (a component).
	bu := ir.NewBuilder("comp", 1)
	a, b, c, d := bu.Input("a"), bu.Input("b"), bu.Input("c"), bu.Input("d")
	m1 := bu.Mul(a, b)
	s1 := bu.AddI(m1, 7)
	m2 := bu.Mul(c, d)
	s2 := bu.AddI(m2, 7)
	bu.LiveOut(s1, s2)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.MaxIn, cfg.MaxOut = 8, 4
	eng, err := NewEngine(blk, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := eng.Candidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Sorted by merit: the 4-node double MAC first.
	if cands[0].Size() != 4 {
		t.Errorf("best candidate size %d, want 4", cands[0].Size())
	}
	foundSingle := false
	for _, cand := range cands {
		if cand.Size() == 2 && cand.Nodes.Has(0) && cand.Nodes.Has(1) {
			foundSingle = true
			if math.Abs(cand.Merit()-2) > 1e-9 {
				t.Errorf("single MAC merit %v, want 2", cand.Merit())
			}
		}
	}
	if !foundSingle {
		t.Error("candidate pool missing the single-MAC component")
	}
	// All candidates must be feasible and positive-merit.
	for _, cand := range cands {
		_, _, in, out, convex := CutMetrics(blk, cfg.Model, cand.Nodes)
		if !convex || in > cfg.MaxIn || out > cfg.MaxOut {
			t.Errorf("infeasible candidate %v", cand.Nodes)
		}
		if cand.Merit() <= 0 {
			t.Errorf("non-positive merit candidate %v", cand.Nodes)
		}
	}
}
