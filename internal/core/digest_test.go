package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestProbeDigestMatchesFresh pins the cached Probe against the uncached
// reference: two states replay the same random toggle/SetCut sequence,
// one serving probes from the digest cache, one with the cache disabled,
// and every node's ToggleEffect must be bit-for-bit identical at every
// step. Probing every node after every mutation is exactly the K-L
// access pattern, so this exercises hits, invalidation-driven misses and
// the version guard together.
func TestProbeDigestMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99080620))
	cfg := DefaultConfig()
	for trial := 0; trial < 25; trial++ {
		blk := randKernelBlock(rng, 10+rng.Intn(50))
		cached := NewState(blk, cfg.Model, nil)
		fresh := NewState(blk, cfg.Model, nil)
		fresh.digestOff = true
		var free []int
		for v := 0; v < blk.N(); v++ {
			if !cached.Frozen.Has(v) {
				free = append(free, v)
			}
		}
		if len(free) == 0 {
			continue
		}
		for step := 0; step < 3*len(free); step++ {
			v := free[rng.Intn(len(free))]
			cached.Toggle(v)
			fresh.Toggle(v)
			for u := 0; u < blk.N(); u++ {
				ce, fe := cached.Probe(u), fresh.Probe(u)
				if ce != fe {
					t.Fatalf("%s trial %d step %d (toggle %d): Probe(%d) %+v cached vs %+v fresh",
						blk.Name, trial, step, v, u, ce, fe)
				}
			}
			// Occasionally jump to an unrelated cut so SetCut-driven
			// invalidation (both delta and sweep path) is in the loop.
			if step%17 == 13 {
				cut := graph.NewBitSet(blk.N())
				for _, u := range free {
					if rng.Intn(3) == 0 {
						cut.Set(u)
					}
				}
				cached.SetCut(cut)
				fresh.SetCut(cut)
			}
		}
		if cached.gainHits == 0 {
			t.Fatalf("%s trial %d: probe cache never hit", blk.Name, trial)
		}
	}
}

// TestProbeCacheServesRepeatedProbes checks the cache actually caches: a
// second full probe sweep with no intervening mutation must be all hits.
func TestProbeCacheServesRepeatedProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	blk := randKernelBlock(rng, 40)
	st := NewState(blk, cfg.Model, nil)
	for v := 0; v < blk.N(); v++ {
		if !st.Frozen.Has(v) {
			st.Toggle(v)
			break
		}
	}
	for u := 0; u < blk.N(); u++ {
		st.Probe(u)
	}
	misses := st.gainMisses
	for u := 0; u < blk.N(); u++ {
		st.Probe(u)
	}
	if st.gainMisses != misses {
		t.Fatalf("second sweep recomputed %d digests, want 0", st.gainMisses-misses)
	}
	if st.gainHits < int64(blk.N()) {
		t.Fatalf("second sweep hit %d times, want at least %d", st.gainHits, blk.N())
	}
}

// TestSetCutDeltaBitIdentity pins SetCut's incremental small-delta path
// against the full-sweep reference across random cut sequences: after
// every SetCut, all critical-path labels, the I/O counts, the violator
// count and the merit must be bit-identical. Cut sizes straddle
// setCutDeltaMax so both the delta path and the sweep fallback run.
func TestSetCutDeltaBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	cfg := DefaultConfig()
	for trial := 0; trial < 25; trial++ {
		blk := randKernelBlock(rng, 10+rng.Intn(60))
		incr := NewState(blk, cfg.Model, nil)
		full := NewState(blk, cfg.Model, nil)
		full.fullCP = true
		var free []int
		for v := 0; v < blk.N(); v++ {
			if !incr.Frozen.Has(v) {
				free = append(free, v)
			}
		}
		if len(free) == 0 {
			continue
		}
		for step := 0; step < 20; step++ {
			cut := graph.NewBitSet(blk.N())
			// Alternate between near-current cuts (small delta), sparse
			// random cuts, dense cuts (sweep fallback) and the empty cut.
			switch step % 4 {
			case 0:
				cut.CopyFrom(incr.H)
				for i := 0; i < 3; i++ {
					u := free[rng.Intn(len(free))]
					if cut.Has(u) {
						cut.Clear(u)
					} else {
						cut.Set(u)
					}
				}
			case 1:
				for _, u := range free {
					if rng.Intn(4) == 0 {
						cut.Set(u)
					}
				}
			case 2:
				for _, u := range free {
					if rng.Intn(4) != 0 {
						cut.Set(u)
					}
				}
			}
			incr.SetCut(cut)
			full.SetCut(cut)
			if incr.hwCP != full.hwCP {
				t.Fatalf("%s trial %d step %d: hwCP %v incremental vs %v full", blk.Name, trial, step, incr.hwCP, full.hwCP)
			}
			for u := 0; u < blk.N(); u++ {
				if incr.level[u] != full.level[u] || incr.tail[u] != full.tail[u] {
					t.Fatalf("%s trial %d step %d: node %d labels (%v,%v) incremental vs (%v,%v) full",
						blk.Name, trial, step, u, incr.level[u], incr.tail[u], full.level[u], full.tail[u])
				}
			}
			if incr.numIn != full.numIn || incr.numOut != full.numOut || incr.nviol != full.nviol {
				t.Fatalf("%s trial %d step %d: io/viol (%d,%d,%d) incremental vs (%d,%d,%d) full",
					blk.Name, trial, step, incr.numIn, incr.numOut, incr.nviol, full.numIn, full.numOut, full.nviol)
			}
			if incr.Merit() != full.Merit() {
				t.Fatalf("%s trial %d step %d: merit %v incremental vs %v full", blk.Name, trial, step, incr.Merit(), full.Merit())
			}
		}
		if incr.setCutInc == 0 {
			t.Fatalf("%s trial %d: SetCut never took the incremental path", blk.Name, trial)
		}
	}
}
