package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

func mustBipartition(t *testing.T, blk *ir.Block, cfg Config) *Cut {
	t.Helper()
	eng, err := NewEngine(blk, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng.Bipartition()
}

// assertFeasible checks the returned cut against the reference
// implementations of every architectural constraint.
func assertFeasible(t *testing.T, blk *ir.Block, cut *Cut, cfg Config) {
	t.Helper()
	if cut == nil {
		t.Fatal("expected a cut")
	}
	sw, cp, in, out, convex := CutMetrics(blk, cfg.Model, cut.Nodes)
	if !convex {
		t.Errorf("cut %v is not convex", cut.Nodes)
	}
	if in > cfg.MaxIn || out > cfg.MaxOut {
		t.Errorf("cut io (%d,%d) exceeds (%d,%d)", in, out, cfg.MaxIn, cfg.MaxOut)
	}
	if in != cut.NumIn || out != cut.NumOut {
		t.Errorf("reported io (%d,%d) != reference (%d,%d)", cut.NumIn, cut.NumOut, in, out)
	}
	if sw != cut.SWLat || math.Abs(cp-cut.HWLat) > 1e-9 {
		t.Errorf("reported latency (%d,%v) != reference (%d,%v)", cut.SWLat, cut.HWLat, sw, cp)
	}
	cut.Nodes.ForEach(func(v int) bool {
		if blk.ForbiddenInCut(v) {
			t.Errorf("cut contains forbidden node %d", v)
		}
		return true
	})
	if cut.Merit() <= 0 {
		t.Errorf("cut merit %v must be positive", cut.Merit())
	}
}

func TestBipartitionMAC(t *testing.T) {
	bu := ir.NewBuilder("mac", 1)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	s := bu.Add(bu.Mul(a, b), acc)
	bu.LiveOut(s)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cut := mustBipartition(t, blk, cfg)
	assertFeasible(t, blk, cut, cfg)
	// The whole MAC (sw 4, 2 AFU cycles) and the lone mul (sw 3, 1 AFU
	// cycle) both save 2 cycles; either is optimal.
	if math.Abs(cut.Merit()-2) > 1e-9 {
		t.Errorf("MAC merit = %v, want 2", cut.Merit())
	}
	if !cut.Nodes.Has(0) {
		t.Error("the multiply must be covered")
	}
}

func TestBipartitionRespectsIOConstraints(t *testing.T) {
	// A wide block: 4 independent adds, each with its own two inputs and
	// live-out. Under (2,1) a single add saves nothing (1 sw cycle vs 1
	// AFU cycle), so no ISE exists.
	bu := ir.NewBuilder("wide", 1)
	for k := 0; k < 4; k++ {
		x, y := bu.Input("x"), bu.Input("y")
		bu.LiveOut(bu.Add(x, y))
	}
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cfg.MaxIn, cfg.MaxOut = 2, 1
	if cut := mustBipartition(t, blk, cfg); cut != nil {
		t.Fatalf("cut %v found under (2,1), want none (zero merit)", cut.Nodes)
	}

	// Under (8,4) the best cut packs all four adds as one ISE of
	// independent subgraphs: 4 sw cycles in 1 AFU cycle.
	cfg.MaxIn, cfg.MaxOut = 8, 4
	cut := mustBipartition(t, blk, cfg)
	assertFeasible(t, blk, cut, cfg)
	if cut.Size() != 4 {
		t.Fatalf("cut size = %d, want 4 under (8,4)", cut.Size())
	}
	if math.Abs(cut.Merit()-3) > 1e-9 {
		t.Errorf("independent cut merit = %v, want 3", cut.Merit())
	}
}

func TestBipartitionAvoidsMemoryBarriers(t *testing.T) {
	// add -> load -> add chain: the load can never be in the cut, so the
	// best convex cut is one of the adds (plus nothing else).
	bu := ir.NewBuilder("membar", 1)
	a, b := bu.Input("a"), bu.Input("b")
	s1 := bu.Add(a, b)
	ld := bu.Load(s1)
	s2 := bu.Add(ld, b)
	s3 := bu.Mul(s2, s2)
	bu.LiveOut(s3)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cut := mustBipartition(t, blk, cfg)
	assertFeasible(t, blk, cut, cfg)
	if cut.Nodes.Has(1) {
		t.Fatal("cut must not contain the load")
	}
	// Both {s2,s3} (sw 4, 2 cycles) and {s3} (sw 3, 1 cycle) save 2.
	if math.Abs(cut.Merit()-2) > 1e-9 {
		t.Errorf("cut merit = %v, want 2", cut.Merit())
	}
	if !cut.Nodes.Has(3) {
		t.Errorf("cut %v must cover the multiply", cut.Nodes)
	}
}

func TestBipartitionConvexityForced(t *testing.T) {
	// n0 -> load -> n2, and n0 -> n2 directly: {n0,n2} is non-convex
	// because the path through the load leaves the cut. ISEGEN must pick
	// a convex subset.
	bu := ir.NewBuilder("nonconvex", 1)
	a := bu.Input("a")
	n0 := bu.Add(a, a)
	ld := bu.Load(n0)
	n2 := bu.Add(n0, ld)
	n3 := bu.Xor(n2, a)
	bu.LiveOut(n3)
	blk := bu.MustBuild()

	cfg := DefaultConfig()
	cut := mustBipartition(t, blk, cfg)
	assertFeasible(t, blk, cut, cfg)
	if cut.Nodes.Has(0) && cut.Nodes.Has(2) {
		t.Fatal("cut {n0,n2} would be non-convex")
	}
}

// Exhaustive reference: enumerate all feasible cuts of a small block and
// return the best merit.
func bestMeritExhaustive(blk *ir.Block, cfg Config) (float64, *graph.BitSet) {
	n := blk.N()
	if n > 20 {
		panic("too large for exhaustive reference")
	}
	best := 0.0
	var bestCut *graph.BitSet
	for mask := 1; mask < 1<<uint(n); mask++ {
		cut := graph.NewBitSet(n)
		skip := false
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				if blk.ForbiddenInCut(v) || !cfg.Model.HWImplementable(blk.Nodes[v].Op) {
					skip = true
					break
				}
				cut.Set(v)
			}
		}
		if skip {
			continue
		}
		sw, cp, in, out, convex := CutMetrics(blk, cfg.Model, cut)
		if !convex || in > cfg.MaxIn || out > cfg.MaxOut {
			continue
		}
		if m := MeritOf(sw, cp); m > best {
			best = m
			bestCut = cut
		}
	}
	return best, bestCut
}

// ISEGEN should match the exhaustive optimum on small random blocks — the
// paper's central claim for the small EEMBC benchmarks. It is a heuristic,
// so we allow occasional near-misses: at least 85% of trials must be
// exactly optimal and no trial may fall below 70% of optimal merit (the
// calibration in DESIGN.md measured 97% exact / worst 74.5% over 200
// kernels).
func TestBipartitionNearOptimalOnSmallBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	cfg := DefaultConfig()
	trials, exact := 0, 0
	for trial := 0; trial < 40; trial++ {
		blk := randKernelBlock(rng, 4+rng.Intn(9))
		want, wantCut := bestMeritExhaustive(blk, cfg)
		if wantCut == nil {
			continue
		}
		trials++
		cut := mustBipartition(t, blk, cfg)
		got := 0.0
		if cut != nil {
			assertFeasible(t, blk, cut, cfg)
			got = cut.Merit()
		}
		if got >= want-1e-9 {
			exact++
		} else if got < 0.7*want {
			t.Errorf("trial %d: merit %v < 70%% of optimal %v (cut %v, optimal %v)",
				trial, got, want, cut.Nodes, wantCut)
		}
	}
	if trials == 0 {
		t.Fatal("no usable trials")
	}
	if float64(exact) < 0.85*float64(trials) {
		t.Errorf("optimal in only %d/%d trials, want >= 85%%", exact, trials)
	}
}

func TestBipartitionAllFrozen(t *testing.T) {
	bu := ir.NewBuilder("allmem", 1)
	a := bu.Input("a")
	v := bu.Load(a)
	bu.LiveOut(v)
	blk := bu.MustBuild()
	cut := mustBipartition(t, blk, DefaultConfig())
	if cut != nil {
		t.Fatalf("expected nil cut, got %v", cut.Nodes)
	}
}

func TestConfigValidation(t *testing.T) {
	blk := buildDiamondBlock(t)
	bad := []Config{
		{MaxIn: 0, MaxOut: 1, NISE: 1, MaxPasses: 5, Model: latency.Default()},
		{MaxIn: 2, MaxOut: 0, NISE: 1, MaxPasses: 5, Model: latency.Default()},
		{MaxIn: 2, MaxOut: 1, NISE: 0, MaxPasses: 5, Model: latency.Default()},
		{MaxIn: 2, MaxOut: 1, NISE: 1, MaxPasses: 0, Model: latency.Default()},
		{MaxIn: 2, MaxOut: 1, NISE: 1, MaxPasses: 5, Model: nil},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(blk, cfg, nil); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// Property: Bipartition output is deterministic.
func TestBipartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		blk := randKernelBlock(rng, 10+rng.Intn(15))
		cfg := DefaultConfig()
		c1 := mustBipartition(t, blk, cfg)
		c2 := mustBipartition(t, blk, cfg)
		switch {
		case c1 == nil && c2 == nil:
		case c1 == nil || c2 == nil:
			t.Fatal("nondeterministic nil-ness")
		default:
			if !c1.Nodes.Equal(c2.Nodes) {
				t.Fatalf("nondeterministic cuts: %v vs %v", c1.Nodes, c2.Nodes)
			}
		}
	}
}

func BenchmarkBipartitionMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	blk := randKernelBlock(rng, 100)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(blk, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		eng.Bipartition()
	}
}
