package core

// Weights are the α1..α5 control parameters of the Section 4.2 gain
// function. The paper determines them experimentally; these are exposed so
// the ablation benchmarks can zero individual components.
type Weights struct {
	// Merit (α1) scales the speedup estimate of the post-toggle cut.
	Merit float64
	// IOPenalty (α2) scales the port-constraint violation penalty: one
	// unit per input or output port over the limit.
	IOPenalty float64
	// Convexity (α3) scales the neighbour term: adding a node whose
	// neighbours are already in the cut is favoured, removing a
	// well-connected cut node is resisted.
	Convexity float64
	// LargeCut (α4) scales the directional-growth term based on barrier
	// distances.
	LargeCut float64
	// Independent (α5) scales the independent-subgraph term that lets
	// cut nodes return to software so other components can grow.
	Independent float64
}

// DefaultWeights returns the control parameters used for all experiments.
// Like the paper's, they were determined experimentally: a grid search
// against exhaustive enumeration on 200 random kernels picked the setting
// that maximizes the fraction of exactly-optimal results (97%) while
// keeping the worst case above 70% of optimal; see
// BenchmarkAblationWeights for the per-component contribution.
func DefaultWeights() Weights {
	return Weights{
		Merit:       4.0,
		IOPenalty:   12.0,
		Convexity:   0.5,
		LargeCut:    0.05,
		Independent: 0.1,
	}
}

// gainContext carries the per-iteration precomputation shared by all
// candidate gain evaluations: the connected components of H and their
// hardware critical paths, for the independent-cuts term.
type gainContext struct {
	compOf   []int     // node -> component index (H nodes only), -1 otherwise
	compCP   []float64 // component -> HW critical path
	totalCP  float64   // Σ compCP
	prepared bool
}

func (t *trajectory) prepareGainContext() {
	st := t.st
	gc := &t.gc
	if cap(gc.compOf) < st.n {
		gc.compOf = make([]int, st.n)
	}
	gc.compOf = gc.compOf[:st.n]
	for i := range gc.compOf {
		gc.compOf[i] = -1
	}
	gc.compCP = gc.compCP[:0]
	gc.totalCP = 0
	comps := st.Blk.DAG().ComponentsOf(st.H)
	for ci, comp := range comps {
		cp := 0.0
		for _, v := range comp {
			gc.compOf[v] = ci
			if st.level[v] > cp {
				cp = st.level[v]
			}
		}
		gc.compCP = append(gc.compCP, cp)
		gc.totalCP += cp
	}
	gc.prepared = true
}

// gain evaluates the Section 4.2 gain of toggling node v against the
// current partition.
//
//	Gain(v) = α1·M(C') − α2·Vio(C') + α3·Cv(v) + α4·L(v) + α5·I(v)
//
// M is the merit of the post-toggle cut, zeroed when the toggle breaks
// convexity (an illegal cut has no speedup, but the other terms still let
// it grow toward legality). Vio counts port-constraint violations. Cv is
// the neighbour term, L the directional-growth term, I the
// independent-subgraphs term.
func (t *trajectory) gain(v int) float64 {
	st := t.st
	w := t.cfg.Weights
	eff := st.Probe(v)
	adding := !st.H.Has(v)

	// α1: merit of the new cut, only meaningful when convex. The true
	// merit counts whole AFU cycles; a small fraction of the raw delay
	// slack is added as a tie-breaker so the search keeps a gradient
	// inside plateaus where the integer merit does not move.
	m := 0.0
	if eff.Convex {
		m = MeritOf(eff.SWSum, eff.HWCP) + 0.01*(float64(eff.SWSum)-eff.HWCP)
	}

	// α2: I/O port violation of the new cut.
	vio := 0.0
	if over := eff.NumIn - t.cfg.MaxIn; over > 0 {
		vio += float64(over)
	}
	if over := eff.NumOut - t.cfg.MaxOut; over > 0 {
		vio += float64(over)
	}

	// α3: neighbours already in the cut.
	nh := 0
	dag := st.Blk.DAG()
	for _, p := range dag.Preds(v) {
		if st.H.Has(p) {
			nh++
		}
	}
	for _, c := range dag.Succs(v) {
		if st.H.Has(c) {
			nh++
		}
	}
	cv := float64(nh)
	if !adding {
		cv = -cv
	}

	// α4: directional growth — favour nodes close to a barrier so the
	// cut grows from the barrier frontier outward (this is what makes
	// the identified cuts line up with the repeated structures an expert
	// would pick; see DESIGN.md §4).
	dmin := st.upDist[v]
	if st.downDist[v] < dmin {
		dmin = st.downDist[v]
	}
	l := (float64(st.maxDist) - float64(dmin)) / float64(st.maxDist)
	if !adding {
		l = -l * 0.5 // removing a frontier node is mildly resisted
	}

	// α5: independent subgraphs — a cut node may move back to software
	// when other components are large, freeing ports for them.
	ind := 0.0
	if !adding {
		if ci := t.gc.compOf[v]; ci >= 0 {
			ind = (t.gc.totalCP - t.gc.compCP[ci]) / (1 + t.gc.totalCP)
		}
	}

	return w.Merit*m - w.IOPenalty*vio + w.Convexity*cv + w.LargeCut*l + w.Independent*ind
}
