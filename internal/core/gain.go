package core

import "repro/internal/graph"

// Weights are the α1..α5 control parameters of the Section 4.2 gain
// function. The paper determines them experimentally; these are exposed so
// the ablation benchmarks can zero individual components.
type Weights struct {
	// Merit (α1) scales the speedup estimate of the post-toggle cut.
	Merit float64
	// IOPenalty (α2) scales the port-constraint violation penalty: one
	// unit per input or output port over the limit.
	IOPenalty float64
	// Convexity (α3) scales the neighbour term: adding a node whose
	// neighbours are already in the cut is favoured, removing a
	// well-connected cut node is resisted.
	Convexity float64
	// LargeCut (α4) scales the directional-growth term based on barrier
	// distances.
	LargeCut float64
	// Independent (α5) scales the independent-subgraph term that lets
	// cut nodes return to software so other components can grow.
	Independent float64
}

// DefaultWeights returns the control parameters used for all experiments.
// Like the paper's, they were determined experimentally: a grid search
// against exhaustive enumeration on 200 random kernels picked the setting
// that maximizes the fraction of exactly-optimal results (97%) while
// keeping the worst case above 70% of optimal; see
// BenchmarkAblationWeights for the per-component contribution.
func DefaultWeights() Weights {
	return Weights{
		Merit:       4.0,
		IOPenalty:   12.0,
		Convexity:   0.5,
		LargeCut:    0.05,
		Independent: 0.1,
	}
}

// gainContext carries the per-step precomputation shared by all candidate
// gain evaluations: the weakly connected components of H and their hardware
// critical paths, for the independent-cuts (α5) term.
//
// Component labels live in slots — compOf maps node → slot, order lists the
// live slots sorted by their smallest member — and are maintained
// incrementally across toggles when the effect is provably local:
//
//   - adding a node with no H-neighbours starts a fresh singleton slot;
//   - adding a node whose H-neighbours all share one slot joins it;
//   - removing a node with no H-neighbours retires its singleton slot;
//   - removing a node with exactly one H-neighbour cannot split the
//     component (a simple path cannot enter and leave through the same
//     neighbour), so the labels stand.
//
// Everything else — a toggle that merges several components, or a removal
// that might split one — invalidates the labels, and the next prepare
// rebuilds them from scratch with DAG.ComponentsInto into the same reused
// buffers. Per-component critical paths are re-derived every step by one
// sweep over H regardless (levels move on every toggle), and totalCP is
// summed over slots in ascending-smallest-member order — exactly the
// component order the full rebuild produces — so the α5 term is
// bit-identical whether a step took the incremental or the rebuild path.
type gainContext struct {
	compOf  []int     // node -> slot; -1 outside H (aliases sc.CompOf after a rebuild)
	compCP  []float64 // slot -> component critical path (re-derived each prepare)
	compMin []int     // slot -> smallest member node; -1 = free slot
	order   []int     // live slots sorted ascending by compMin (the float-sum order)
	free    []int     // retired slot indices available for reuse
	totalCP float64

	labelsValid bool
	// version is the State mutation count the labels reflect; prepare
	// rebuilds whenever it trails the state (a toggle bypassed noteToggle).
	version uint64
	// noIncremental forces the full rebuild on every step; the pinning
	// tests use it to check the incremental maintenance bit-for-bit.
	noIncremental bool

	sc graph.CompScratch
	// nbSlots is the scratch for collecting the distinct slots adjacent
	// to a toggled node.
	nbSlots []int

	// rebuilds counts full relabel sweeps — the incremental path's
	// fallback rate. Drained at trajectory boundaries alongside the
	// State tallies.
	rebuilds int64
}

// invalidate drops the labels; the next prepare rebuilds them.
func (gc *gainContext) invalidate() { gc.labelsValid = false }

// rebuild relabels the components of H from scratch (allocation-free after
// first use) and resets the slot bookkeeping to the canonical numbering:
// slot i is the component with the i-th smallest minimum member.
func (gc *gainContext) rebuild(st *State) {
	gc.rebuilds++
	ncomp := st.Blk.DAG().ComponentsInto(st.H, &gc.sc)
	gc.compOf = gc.sc.CompOf
	if cap(gc.compCP) < ncomp {
		gc.compCP = make([]float64, ncomp)
		gc.compMin = make([]int, ncomp)
		gc.order = make([]int, ncomp)
	}
	gc.compCP = gc.compCP[:ncomp]
	gc.compMin = gc.compMin[:ncomp]
	gc.order = gc.order[:ncomp]
	gc.free = gc.free[:0]
	for i := range gc.compMin {
		gc.compMin[i] = -1
	}
	for v := st.H.NextSet(0); v >= 0; v = st.H.NextSet(v + 1) {
		ci := gc.compOf[v]
		if gc.compMin[ci] == -1 {
			gc.compMin[ci] = v // ascending sweep: first sight is the min
		}
	}
	for i := range gc.order {
		gc.order[i] = i // ComponentsInto numbers by ascending min already
	}
	gc.labelsValid = true
	gc.version = st.version
}

// noteToggle maintains the component labels after st.Toggle(v) committed.
// It must be called with the post-toggle state; adding = st.H.Has(v).
func (gc *gainContext) noteToggle(st *State, v int) {
	if !gc.labelsValid {
		return
	}
	if gc.noIncremental || st.version != gc.version+1 {
		gc.labelsValid = false
		return
	}
	gc.version = st.version
	dag := st.Blk.DAG()
	if st.H.Has(v) { // v was added
		// Collect the distinct slots among v's H-neighbours.
		gc.nbSlots = gc.nbSlots[:0]
		for _, lst := range [2][]int{dag.Preds(v), dag.Succs(v)} {
			for _, x := range lst {
				if !st.H.Has(x) {
					continue
				}
				s := gc.compOf[x]
				dup := false
				for _, seen := range gc.nbSlots {
					if seen == s {
						dup = true
						break
					}
				}
				if !dup {
					gc.nbSlots = append(gc.nbSlots, s)
				}
			}
		}
		switch len(gc.nbSlots) {
		case 0:
			gc.compOf[v] = gc.newSlot(v)
		case 1:
			s := gc.nbSlots[0]
			gc.compOf[v] = s
			if v < gc.compMin[s] {
				gc.compMin[s] = v
				gc.reposition(s)
			}
		default:
			// v bridges several components; rebuild rather than merge.
			gc.labelsValid = false
		}
		return
	}
	// v was removed.
	s := gc.compOf[v]
	gc.compOf[v] = -1
	switch {
	case st.nbrH[v] == 0:
		gc.retireSlot(s)
	case v == gc.compMin[s]:
		// The smallest member left; the new minimum (and hence the sum
		// order) needs a component sweep — rebuild instead.
		gc.labelsValid = false
	default:
		// A node with exactly one H-neighbour is a leaf of its component:
		// any path between two other members entering v would have to
		// leave through the same neighbour, so connectivity is unaffected
		// and the labels stand. More neighbours could mean a split.
		if st.nbrH[v] > 1 {
			gc.labelsValid = false
		}
	}
}

// newSlot claims a slot for a fresh singleton component {v} and inserts it
// into the sum order.
func (gc *gainContext) newSlot(v int) int {
	var s int
	if n := len(gc.free); n > 0 {
		s = gc.free[n-1]
		gc.free = gc.free[:n-1]
		gc.compMin[s] = v
	} else {
		s = len(gc.compMin)
		gc.compMin = append(gc.compMin, v)
		gc.compCP = append(gc.compCP, 0)
	}
	// Insert into order keeping compMin ascending.
	pos := len(gc.order)
	for pos > 0 && gc.compMin[gc.order[pos-1]] > v {
		pos--
	}
	gc.order = append(gc.order, 0)
	copy(gc.order[pos+1:], gc.order[pos:])
	gc.order[pos] = s
	return s
}

// retireSlot removes a now-empty slot from the order and frees it.
func (gc *gainContext) retireSlot(s int) {
	for i, o := range gc.order {
		if o == s {
			gc.order = append(gc.order[:i], gc.order[i+1:]...)
			break
		}
	}
	gc.compMin[s] = -1
	gc.free = append(gc.free, s)
}

// reposition restores the order invariant after slot s's compMin shrank
// (it can only move toward the front).
func (gc *gainContext) reposition(s int) {
	idx := -1
	for i, o := range gc.order {
		if o == s {
			idx = i
			break
		}
	}
	for idx > 0 && gc.compMin[gc.order[idx-1]] > gc.compMin[s] {
		gc.order[idx] = gc.order[idx-1]
		idx--
		gc.order[idx] = s
	}
}

// prepareGainContext brings the component table up to date for one
// best-gain selection step: labels are rebuilt only when a toggle
// invalidated them, while the per-component critical paths and their total
// are re-derived from the current levels by a single sweep over H.
func (t *trajectory) prepareGainContext() {
	st := t.st
	gc := &t.gc
	if !gc.labelsValid || gc.version != st.version || gc.noIncremental {
		gc.rebuild(st)
	}
	for _, s := range gc.order {
		gc.compCP[s] = 0
	}
	for v := st.H.NextSet(0); v >= 0; v = st.H.NextSet(v + 1) {
		s := gc.compOf[v]
		if st.level[v] > gc.compCP[s] {
			gc.compCP[s] = st.level[v]
		}
	}
	gc.totalCP = 0
	for _, s := range gc.order {
		gc.totalCP += gc.compCP[s]
	}
}

// gain evaluates the Section 4.2 gain of toggling node v against the
// current partition.
//
//	Gain(v) = α1·M(C') − α2·Vio(C') + α3·Cv(v) + α4·L(v) + α5·I(v)
//
// M is the merit of the post-toggle cut, zeroed when the toggle breaks
// convexity (an illegal cut has no speedup, but the other terms still let
// it grow toward legality). Vio counts port-constraint violations. Cv is
// the neighbour term, L the directional-growth term, I the
// independent-subgraphs term.
func (t *trajectory) gain(v int) float64 {
	st := t.st
	w := t.cfg.Weights
	eff := st.Probe(v)
	adding := !st.H.Has(v)

	// α1: merit of the new cut, only meaningful when convex. The true
	// merit counts whole AFU cycles; a small fraction of the raw delay
	// slack is added as a tie-breaker so the search keeps a gradient
	// inside plateaus where the integer merit does not move.
	m := 0.0
	if eff.Convex {
		m = MeritOf(eff.SWSum, eff.HWCP) + 0.01*(float64(eff.SWSum)-eff.HWCP)
	}

	// α2: I/O port violation of the new cut.
	vio := 0.0
	if over := eff.NumIn - t.cfg.MaxIn; over > 0 {
		vio += float64(over)
	}
	if over := eff.NumOut - t.cfg.MaxOut; over > 0 {
		vio += float64(over)
	}

	// α3: neighbours already in the cut — an O(1) read off the state's
	// incrementally maintained neighbour counts.
	cv := float64(st.nbrH[v])
	if !adding {
		cv = -cv
	}

	// α4: directional growth — favour nodes close to a barrier so the
	// cut grows from the barrier frontier outward (this is what makes
	// the identified cuts line up with the repeated structures an expert
	// would pick; see DESIGN.md §4).
	dmin := st.upDist[v]
	if st.downDist[v] < dmin {
		dmin = st.downDist[v]
	}
	l := (float64(st.maxDist) - float64(dmin)) / float64(st.maxDist)
	if !adding {
		l = -l * 0.5 // removing a frontier node is mildly resisted
	}

	// α5: independent subgraphs — a cut node may move back to software
	// when other components are large, freeing ports for them.
	ind := 0.0
	if !adding {
		if ci := t.gc.compOf[v]; ci >= 0 {
			ind = (t.gc.totalCP - t.gc.compCP[ci]) / (1 + t.gc.totalCP)
		}
	}

	return w.Merit*m - w.IOPenalty*vio + w.Convexity*cv + w.LargeCut*l + w.Independent*ind
}
