package core

import (
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
)

// BlockPotential estimates the remaining speedup potential of a block:
// execution frequency times the gain from mapping every remaining feasible
// (non-excluded, non-barrier, HW-implementable) node to hardware at once.
// The multi-cut driver in internal/search uses it to pick the next block
// to bi-partition; 0 means the block is exhausted.
func BlockPotential(blk *ir.Block, model *latency.Model, excluded *graph.BitSet) float64 {
	feasible := graph.NewBitSet(blk.N())
	swSum := 0
	for v := 0; v < blk.N(); v++ {
		if excluded.Has(v) || blk.ForbiddenInCut(v) {
			continue
		}
		if !model.HWImplementable(blk.Nodes[v].Op) {
			continue
		}
		feasible.Set(v)
		swSum += model.SWLat(blk.Nodes[v].Op)
	}
	if feasible.Empty() {
		return 0
	}
	_, cp := blk.DAG().LongestPath(feasible, func(v int) float64 {
		d, _ := model.HWLat(blk.Nodes[v].Op)
		return d
	})
	gain := MeritOf(swSum, cp)
	if gain <= 0 {
		return 0
	}
	return blk.Freq * gain
}
