package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned when an operation that requires a DAG detects a cycle.
var ErrCycle = errors.New("graph: cycle detected")

// DAG is a directed acyclic graph over dense node IDs 0..N-1 with adjacency
// lists in both directions. Build it with NewDAG + AddEdge, then call Freeze
// to compute derived structures (topological order, reachability).
type DAG struct {
	n      int
	succs  [][]int
	preds  [][]int
	frozen bool

	topo    []int // node IDs in topological order
	topoPos []int // topoPos[v] = position of v in topo
	desc    []*BitSet
	anc     []*BitSet
}

// NewDAG returns an edgeless graph with n nodes.
func NewDAG(n int) *DAG {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewDAG(%d): negative size", n))
	}
	return &DAG{
		n:     n,
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
}

// N returns the number of nodes.
func (g *DAG) N() int { return g.n }

// AddEdge inserts the edge from -> to. Duplicate edges are ignored.
// AddEdge panics if called after Freeze.
func (g *DAG) AddEdge(from, to int) {
	if g.frozen {
		panic("graph: AddEdge after Freeze")
	}
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", from, to, g.n))
	}
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Succs returns the successor list of v. The caller must not modify it.
func (g *DAG) Succs(v int) []int { return g.succs[v] }

// Preds returns the predecessor list of v. The caller must not modify it.
func (g *DAG) Preds(v int) []int { return g.preds[v] }

// NumEdges returns the total edge count.
func (g *DAG) NumEdges() int {
	e := 0
	for _, s := range g.succs {
		e += len(s)
	}
	return e
}

// Freeze validates acyclicity and computes the topological order and the
// per-node ancestor/descendant bitsets. It must be called once after all
// edges are added and before any reachability query.
func (g *DAG) Freeze() error {
	if g.frozen {
		return nil
	}
	topo, err := g.topoSort()
	if err != nil {
		return err
	}
	g.topo = topo
	g.topoPos = make([]int, g.n)
	for i, v := range topo {
		g.topoPos[v] = i
	}

	g.desc = make([]*BitSet, g.n)
	g.anc = make([]*BitSet, g.n)
	for i := 0; i < g.n; i++ {
		g.desc[i] = NewBitSet(g.n)
		g.anc[i] = NewBitSet(g.n)
	}
	// Descendants: sweep in reverse topological order.
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.succs[v] {
			g.desc[v].Set(s)
			g.desc[v].Or(g.desc[s])
		}
	}
	// Ancestors: sweep in topological order.
	for _, v := range topo {
		for _, p := range g.preds[v] {
			g.anc[v].Set(p)
			g.anc[v].Or(g.anc[p])
		}
	}
	g.frozen = true
	return nil
}

// MustFreeze is Freeze but panics on cycle; convenient for programmatically
// constructed graphs that are acyclic by construction.
func (g *DAG) MustFreeze() {
	if err := g.Freeze(); err != nil {
		panic(err)
	}
}

func (g *DAG) topoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for _, ss := range g.succs {
		for _, s := range ss {
			indeg[s]++
		}
	}
	// Kahn's algorithm with a deterministic (sorted) frontier so that the
	// topological order is stable across runs.
	frontier := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	topo := make([]int, 0, g.n)
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		topo = append(topo, v)
		added := false
		for _, s := range g.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
				added = true
			}
		}
		if added {
			sort.Ints(frontier)
		}
	}
	if len(topo) != g.n {
		return nil, ErrCycle
	}
	return topo, nil
}

// Topo returns the node IDs in topological order. Requires Freeze.
func (g *DAG) Topo() []int {
	g.requireFrozen("Topo")
	return g.topo
}

// TopoPos returns the position of v in the topological order. Requires Freeze.
func (g *DAG) TopoPos(v int) int {
	g.requireFrozen("TopoPos")
	return g.topoPos[v]
}

// Desc returns the descendant set of v (excluding v). Requires Freeze.
// The caller must not modify the returned set.
func (g *DAG) Desc(v int) *BitSet {
	g.requireFrozen("Desc")
	return g.desc[v]
}

// Anc returns the ancestor set of v (excluding v). Requires Freeze.
// The caller must not modify the returned set.
func (g *DAG) Anc(v int) *BitSet {
	g.requireFrozen("Anc")
	return g.anc[v]
}

// Reaches reports whether there is a directed path from a to b (a != b).
func (g *DAG) Reaches(a, b int) bool {
	g.requireFrozen("Reaches")
	return g.desc[a].Has(b)
}

func (g *DAG) requireFrozen(op string) {
	if !g.frozen {
		panic("graph: " + op + " before Freeze")
	}
}

// IsConvex reports whether the cut is convex: there is no path from a node
// in the cut to another node in the cut that passes through a node outside
// the cut. Equivalently no outside node has both an ancestor and a
// descendant inside the cut.
func (g *DAG) IsConvex(cut *BitSet) bool {
	g.requireFrozen("IsConvex")
	for v := 0; v < g.n; v++ {
		if cut.Has(v) {
			continue
		}
		if g.anc[v].Intersects(cut) && g.desc[v].Intersects(cut) {
			return false
		}
	}
	return true
}

// ConvexViolators returns the outside nodes that witness non-convexity of
// the cut (nodes with both an ancestor and a descendant inside the cut).
func (g *DAG) ConvexViolators(cut *BitSet) []int {
	g.requireFrozen("ConvexViolators")
	var out []int
	for v := 0; v < g.n; v++ {
		if cut.Has(v) {
			continue
		}
		if g.anc[v].Intersects(cut) && g.desc[v].Intersects(cut) {
			out = append(out, v)
		}
	}
	return out
}

// CompScratch carries the reusable buffers of DAG.ComponentsInto. The zero
// value is ready to use; the buffers grow to the graph size on first use and
// are reused on every subsequent call, so a per-toggle caller labels
// components without allocating.
type CompScratch struct {
	// CompOf maps node -> component index after ComponentsInto (-1 for
	// nodes outside the labeled set). Valid until the next call.
	CompOf []int
	stack  []int
}

// ComponentsInto is the allocation-free core of ComponentsOf: it labels the
// weakly connected components of set (considering only edges with both
// endpoints in the set) into sc.CompOf and returns the component count.
// Components are numbered in ascending order of their smallest member —
// exactly the order ComponentsOf returns them in — because the ascending
// sweep starts each traversal from the smallest not-yet-labeled node.
func (g *DAG) ComponentsInto(set *BitSet, sc *CompScratch) int {
	if cap(sc.CompOf) < g.n {
		sc.CompOf = make([]int, g.n)
	}
	sc.CompOf = sc.CompOf[:g.n]
	compOf := sc.CompOf
	for i := range compOf {
		compOf[i] = -1
	}
	ncomp := 0
	stack := sc.stack[:0]
	for start := set.NextSet(0); start >= 0; start = set.NextSet(start + 1) {
		if compOf[start] >= 0 {
			continue
		}
		id := ncomp
		ncomp++
		stack = append(stack, start)
		compOf[start] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.succs[v] {
				if set.Has(s) && compOf[s] < 0 {
					compOf[s] = id
					stack = append(stack, s)
				}
			}
			for _, p := range g.preds[v] {
				if set.Has(p) && compOf[p] < 0 {
					compOf[p] = id
					stack = append(stack, p)
				}
			}
		}
	}
	sc.stack = stack[:0]
	return ncomp
}

// ComponentsOf partitions the nodes of the given set into weakly connected
// components, considering only edges with both endpoints in the set.
// Components are returned with node IDs sorted ascending and components
// ordered by their smallest node. Allocation-sensitive callers should use
// ComponentsInto, which produces the same partition as flat labels into a
// reusable scratch buffer.
func (g *DAG) ComponentsOf(set *BitSet) [][]int {
	var sc CompScratch
	ncomp := g.ComponentsInto(set, &sc)
	comps := make([][]int, ncomp)
	set.ForEach(func(v int) bool {
		ci := sc.CompOf[v]
		comps[ci] = append(comps[ci], v)
		return true
	})
	return comps
}

// LongestPath returns, for each node in the set, the length of the longest
// weighted path within the set that ends at the node (weights given per
// node; a single node path has length weight(v)). It also returns the
// overall maximum, which is the critical path of the induced subgraph.
// Nodes outside the set get 0.
func (g *DAG) LongestPath(set *BitSet, weight func(v int) float64) (ending []float64, critical float64) {
	g.requireFrozen("LongestPath")
	ending = make([]float64, g.n)
	for _, v := range g.topo {
		if !set.Has(v) {
			continue
		}
		best := 0.0
		for _, p := range g.preds[v] {
			if set.Has(p) && ending[p] > best {
				best = ending[p]
			}
		}
		ending[v] = best + weight(v)
		if ending[v] > critical {
			critical = ending[v]
		}
	}
	return ending, critical
}

// BarrierDistances computes, for every node, the minimum hop distance
// upward (through predecessors) and downward (through successors) to a
// barrier. A node that is itself a barrier has distance 0 both ways. Nodes
// with no predecessors (graph inputs) count as touching an upward barrier at
// distance 1, and nodes with no successors touch a downward barrier at
// distance 1, because the external boundary of the block is a barrier in
// the paper's model.
func (g *DAG) BarrierDistances(isBarrier func(v int) bool) (up, down []int) {
	g.requireFrozen("BarrierDistances")
	up = make([]int, g.n)
	down = make([]int, g.n)
	for _, v := range g.topo {
		if isBarrier(v) {
			up[v] = 0
			continue
		}
		best := -1
		if len(g.preds[v]) == 0 {
			best = 1
		}
		for _, p := range g.preds[v] {
			d := up[p] + 1
			if best < 0 || d < best {
				best = d
			}
		}
		up[v] = best
	}
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		if isBarrier(v) {
			down[v] = 0
			continue
		}
		best := -1
		if len(g.succs[v]) == 0 {
			best = 1
		}
		for _, s := range g.succs[v] {
			d := down[s] + 1
			if best < 0 || d < best {
				best = d
			}
		}
		down[v] = best
	}
	return up, down
}
