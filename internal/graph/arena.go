package graph

// arenaChunk is the number of snapshots each arena slab holds. Snapshot
// counts per K-L trajectory are small (merits strictly increase, so each
// snapshot is a distinct cut); one slab usually covers a whole trajectory.
const arenaChunk = 32

// BitSetArena batch-allocates immutable BitSet snapshots: CloneOf returns
// an independent copy of its argument whose struct and backing words are
// carved from shared slabs, so taking k snapshots costs O(k/arenaChunk)
// allocations instead of 2k. The arena never reclaims or reuses handed-out
// memory — snapshots stay valid for the life of the program, which is what
// lets the K-L trajectory pool its arena across restarts while Finalize
// keeps references to the snapshots it was handed.
type BitSetArena struct {
	n       int
	structs []BitSet
	words   []uint64
}

// NewBitSetArena returns an arena producing snapshots of capacity n.
func NewBitSetArena(n int) *BitSetArena {
	if n < 0 {
		panic("graph: NewBitSetArena: negative capacity")
	}
	return &BitSetArena{n: n}
}

// CloneOf returns an independent copy of src (which must have the arena's
// capacity). The copy must be treated as immutable by convention: its words
// are carved from a shared slab, but no other snapshot aliases them.
func (a *BitSetArena) CloneOf(src *BitSet) *BitSet {
	if src.n != a.n {
		panic("graph: BitSetArena.CloneOf capacity mismatch")
	}
	wpb := len(src.words)
	if len(a.words) < wpb {
		a.words = make([]uint64, wpb*arenaChunk)
	}
	if len(a.structs) == 0 {
		a.structs = make([]BitSet, arenaChunk)
	}
	w := a.words[:wpb:wpb]
	a.words = a.words[wpb:]
	copy(w, src.words)
	bs := &a.structs[0]
	a.structs = a.structs[1:]
	bs.words = w
	bs.n = a.n
	return bs
}
