package graph

import (
	"math/rand"
	"testing"
)

// diamond builds the 4-node DAG 0->1, 0->2, 1->3, 2->3.
func diamond(t *testing.T) *DAG {
	t.Helper()
	g := NewDAG(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if err := g.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return g
}

// randDAG builds a random DAG: edges only go from lower to higher IDs, so it
// is acyclic by construction.
func randDAG(rng *rand.Rand, n int, p float64) *DAG {
	g := NewDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	g.MustFreeze()
	return g
}

func TestDAGTopoOrder(t *testing.T) {
	g := diamond(t)
	pos := make(map[int]int)
	for i, v := range g.Topo() {
		pos[v] = i
		if g.TopoPos(v) != i {
			t.Errorf("TopoPos(%d) = %d, want %d", v, g.TopoPos(v), i)
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, s := range g.Succs(v) {
			if pos[v] >= pos[s] {
				t.Errorf("edge %d->%d violates topological order", v, s)
			}
		}
	}
}

func TestDAGCycleDetection(t *testing.T) {
	g := NewDAG(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if err := g.Freeze(); err != ErrCycle {
		t.Fatalf("Freeze = %v, want ErrCycle", err)
	}
}

func TestDAGDuplicateEdgeIgnored(t *testing.T) {
	g := NewDAG(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
	if len(g.Preds(1)) != 1 {
		t.Fatalf("Preds(1) = %v, want one element", g.Preds(1))
	}
}

func TestDAGReachability(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {0, 2, true},
		{1, 3, true}, {2, 3, true},
		{3, 0, false}, {1, 2, false}, {2, 1, false},
	}
	for _, c := range cases {
		if got := g.Reaches(c.a, c.b); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !g.Desc(0).Has(3) || !g.Anc(3).Has(0) {
		t.Error("Desc/Anc bitsets inconsistent with Reaches")
	}
	if g.Desc(0).Has(0) {
		t.Error("a node must not be its own descendant")
	}
}

// Property: reachability bitsets agree with DFS on random DAGs.
func TestDAGReachabilityMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := randDAG(rng, n, 0.15)
		for a := 0; a < n; a++ {
			seen := make([]bool, n)
			stack := []int{a}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, s := range g.Succs(v) {
					if !seen[s] {
						seen[s] = true
						stack = append(stack, s)
					}
				}
			}
			for b := 0; b < n; b++ {
				if b == a {
					continue
				}
				if g.Reaches(a, b) != seen[b] {
					t.Fatalf("trial %d: Reaches(%d,%d) = %v, DFS says %v",
						trial, a, b, g.Reaches(a, b), seen[b])
				}
			}
		}
	}
}

func TestIsConvex(t *testing.T) {
	g := diamond(t)
	cut := NewBitSet(4)
	cut.Set(0)
	cut.Set(3)
	if g.IsConvex(cut) {
		t.Error("cut {0,3} is not convex (path 0->1->3 leaves and re-enters)")
	}
	viol := g.ConvexViolators(cut)
	if len(viol) != 2 {
		t.Errorf("ConvexViolators = %v, want {1,2}", viol)
	}
	cut.Set(1)
	cut.Set(2)
	if !g.IsConvex(cut) {
		t.Error("full cut must be convex")
	}
	if v := g.ConvexViolators(cut); len(v) != 0 {
		t.Errorf("full cut violators = %v, want none", v)
	}
	empty := NewBitSet(4)
	if !g.IsConvex(empty) {
		t.Error("empty cut must be convex")
	}
	single := NewBitSet(4)
	single.Set(1)
	if !g.IsConvex(single) {
		t.Error("singleton cut must be convex")
	}
}

// Property: IsConvex agrees with the definition checked by explicit path
// search on random DAGs and random cuts.
func TestIsConvexMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(18)
		g := randDAG(rng, n, 0.25)
		cut := NewBitSet(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.4 {
				cut.Set(v)
			}
		}
		// Definition: convex iff for no outside node x, anc(x)∩C and desc(x)∩C
		// are both non-empty.
		want := true
		for x := 0; x < n && want; x++ {
			if cut.Has(x) {
				continue
			}
			if g.Anc(x).Intersects(cut) && g.Desc(x).Intersects(cut) {
				want = false
			}
		}
		if got := g.IsConvex(cut); got != want {
			t.Fatalf("trial %d: IsConvex = %v, want %v (cut %v)", trial, got, want, cut)
		}
	}
}

func TestComponentsOf(t *testing.T) {
	// 0->1  2->3  4 isolated; set includes all but 3.
	g := NewDAG(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.MustFreeze()
	set := NewBitSet(5)
	for _, v := range []int{0, 1, 2, 4} {
		set.Set(v)
	}
	comps := g.ComponentsOf(set)
	if len(comps) != 3 {
		t.Fatalf("got %d components %v, want 3", len(comps), comps)
	}
	want := [][]int{{0, 1}, {2}, {4}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("components = %v, want %v", comps, want)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("components = %v, want %v", comps, want)
			}
		}
	}
}

func TestComponentsUsesUndirectedConnectivity(t *testing.T) {
	// 0->2 and 1->2: weakly connected through 2.
	g := NewDAG(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.MustFreeze()
	set := NewBitSet(3)
	set.Set(0)
	set.Set(1)
	set.Set(2)
	if comps := g.ComponentsOf(set); len(comps) != 1 {
		t.Fatalf("got %d components, want 1 (weak connectivity)", len(comps))
	}
	// Remove the join node: 0 and 1 become separate components.
	set.Clear(2)
	if comps := g.ComponentsOf(set); len(comps) != 2 {
		t.Fatalf("got %d components after removing join, want 2", len(comps))
	}
}

func TestLongestPath(t *testing.T) {
	g := diamond(t)
	all := NewBitSet(4)
	for v := 0; v < 4; v++ {
		all.Set(v)
	}
	w := func(v int) float64 { return 1.0 }
	ending, crit := g.LongestPath(all, w)
	if crit != 3 {
		t.Errorf("critical path = %v, want 3", crit)
	}
	if ending[3] != 3 || ending[0] != 1 {
		t.Errorf("ending = %v, want ending[3]=3, ending[0]=1", ending)
	}
	// Restrict to {1,3}: path 1->3 length 2.
	sub := NewBitSet(4)
	sub.Set(1)
	sub.Set(3)
	_, crit = g.LongestPath(sub, w)
	if crit != 2 {
		t.Errorf("critical path of {1,3} = %v, want 2", crit)
	}
	// Disconnected {1,2}: two singleton paths.
	sub2 := NewBitSet(4)
	sub2.Set(1)
	sub2.Set(2)
	_, crit = g.LongestPath(sub2, w)
	if crit != 1 {
		t.Errorf("critical path of {1,2} = %v, want 1", crit)
	}
}

func TestLongestPathWeighted(t *testing.T) {
	g := NewDAG(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.MustFreeze()
	all := NewBitSet(3)
	for v := 0; v < 3; v++ {
		all.Set(v)
	}
	weights := []float64{0.5, 1.0, 0.25}
	_, crit := g.LongestPath(all, func(v int) float64 { return weights[v] })
	if want := 1.75; crit != want {
		t.Errorf("critical path = %v, want %v", crit, want)
	}
}

func TestBarrierDistances(t *testing.T) {
	// Chain 0->1->2->3 with node 2 a barrier.
	g := NewDAG(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.MustFreeze()
	up, down := g.BarrierDistances(func(v int) bool { return v == 2 })
	// Upward: 0 touches the top boundary (1); 1: min(up[0]+1=2) = 2;
	// 2 is a barrier (0); 3: up[2]+1 = 1.
	wantUp := []int{1, 2, 0, 1}
	// Downward: 3 touches the bottom boundary (1); 2 barrier (0);
	// 1: down[2]+1 = 1; 0: down[1]+1 = 2.
	wantDown := []int{2, 1, 0, 1}
	for v := range wantUp {
		if up[v] != wantUp[v] {
			t.Errorf("up[%d] = %d, want %d", v, up[v], wantUp[v])
		}
		if down[v] != wantDown[v] {
			t.Errorf("down[%d] = %d, want %d", v, down[v], wantDown[v])
		}
	}
}

func TestBarrierDistancesNoBarriers(t *testing.T) {
	g := diamond(t)
	up, down := g.BarrierDistances(func(int) bool { return false })
	// Node 0 is a graph input: up = 1. Node 3 is a graph output: down = 1.
	if up[0] != 1 || down[3] != 1 {
		t.Errorf("boundary distances wrong: up[0]=%d down[3]=%d", up[0], down[3])
	}
	if up[3] != 3 {
		t.Errorf("up[3] = %d, want 3 (0 is two hops above plus boundary)", up[3])
	}
	if down[0] != 3 {
		t.Errorf("down[0] = %d, want 3", down[0])
	}
}

func TestFreezeIdempotent(t *testing.T) {
	g := diamond(t)
	if err := g.Freeze(); err != nil {
		t.Fatalf("second Freeze: %v", err)
	}
}

func TestAddEdgeAfterFreezePanics(t *testing.T) {
	g := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after Freeze should panic")
		}
	}()
	g.AddEdge(0, 3)
}

func BenchmarkFreezeReachability(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		g := NewDAG(256)
		for x := 0; x < 256; x++ {
			for k := 0; k < 4; k++ {
				y := x + 1 + rng.Intn(255-x+1)
				if y < 256 {
					g.AddEdge(x, y)
				}
			}
		}
		g.MustFreeze()
	}
}
