package graph

import (
	"math/rand"
	"testing"
)

// randDAGAndSet builds a random frozen DAG plus a random node subset.
func randDAGAndSet(rng *rand.Rand, n int) (*DAG, *BitSet) {
	g := NewDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.08 {
				g.AddEdge(i, j)
			}
		}
	}
	g.MustFreeze()
	set := NewBitSet(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			set.Set(i)
		}
	}
	return g, set
}

// ComponentsInto must produce exactly the partition ComponentsOf returns,
// with the same component numbering, while reusing its scratch buffers.
func TestComponentsIntoMatchesComponentsOf(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc CompScratch
	for trial := 0; trial < 50; trial++ {
		g, set := randDAGAndSet(rng, 3+rng.Intn(40))
		want := g.ComponentsOf(set)
		ncomp := g.ComponentsInto(set, &sc)
		if ncomp != len(want) {
			t.Fatalf("trial %d: ncomp %d, want %d", trial, ncomp, len(want))
		}
		for ci, comp := range want {
			for _, v := range comp {
				if sc.CompOf[v] != ci {
					t.Fatalf("trial %d: CompOf[%d] = %d, want %d", trial, v, sc.CompOf[v], ci)
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			if !set.Has(v) && sc.CompOf[v] != -1 {
				t.Fatalf("trial %d: outside node %d labeled %d", trial, v, sc.CompOf[v])
			}
		}
	}
}

func TestComponentsIntoEmptySet(t *testing.T) {
	g := NewDAG(5)
	g.AddEdge(0, 1)
	g.MustFreeze()
	var sc CompScratch
	if n := g.ComponentsInto(NewBitSet(5), &sc); n != 0 {
		t.Fatalf("empty set: %d components", n)
	}
}

// Equal sets must hash equal; sets sharing a long equal prefix of words but
// differing only in a later word must still hash apart — a hash that only
// samples the leading words would collide every {0..k} chain onto a handful
// of values and turn the Finalize dedup quadratic again.
func TestBitSetHashPrefixFamilies(t *testing.T) {
	const n = 512 // 8 words
	seen := map[uint64]*BitSet{}
	b := NewBitSet(n)
	for i := 0; i < n; i++ {
		b.Set(i) // {0..i}: every pair shares the full common prefix
		h := b.Hash()
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %v and {0..%d}", prev, i)
		}
		seen[h] = b.Clone()
	}
	// Single-bit sets in the last word only: equal prefix of 7 zero words.
	for i := 448; i < n; i++ {
		s := NewBitSet(n)
		s.Set(i)
		h := s.Hash()
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %v and {%d}", prev, i)
		}
		seen[h] = s
	}
	// And the Equal contract: clones hash identically.
	c := b.Clone()
	if c.Hash() != b.Hash() {
		t.Fatal("equal sets must hash equal")
	}
	b.Clear(17)
	if c.Hash() == b.Hash() {
		t.Fatal("sets differing at bit 17 hashed equal")
	}
}

func TestBitSetArenaClones(t *testing.T) {
	const n = 200
	a := NewBitSetArena(n)
	src := NewBitSet(n)
	var clones []*BitSet
	for i := 0; i < 3*arenaChunk; i++ {
		src.Set(i % n)
		c := a.CloneOf(src)
		if !c.Equal(src) {
			t.Fatalf("clone %d differs from source", i)
		}
		clones = append(clones, c)
	}
	// Mutating the source must not affect any snapshot, and each snapshot
	// must have stayed exactly what it was when taken.
	src.Reset()
	check := NewBitSet(n)
	for i, c := range clones {
		check.Set(i % n)
		if !c.Equal(check) {
			t.Fatalf("clone %d mutated after later arena use", i)
		}
	}
}

func TestBitSetArenaCapacityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	NewBitSetArena(10).CloneOf(NewBitSet(11))
}
