// Package graph provides the dense bitset and DAG algorithms that every
// other package in this repository builds on: topological ordering,
// ancestor/descendant reachability, connected components, longest paths and
// barrier distances.
//
// Graphs are directed acyclic graphs over nodes identified by small dense
// integers, which lets reachability and membership queries use flat bitsets.
package graph

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// BitSet is a fixed-capacity dense set of non-negative integers.
// The zero value is an empty set of capacity 0; use NewBitSet to size it.
type BitSet struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitSet returns an empty set able to hold values in [0, n).
func NewBitSet(n int) *BitSet {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewBitSet(%d): negative capacity", n))
	}
	return &BitSet{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity in bits.
func (b *BitSet) Cap() int { return b.n }

// Set inserts i into the set.
func (b *BitSet) Set(i int) { b.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear removes i from the set.
func (b *BitSet) Clear(i int) { b.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Flip toggles membership of i and reports the new membership.
func (b *BitSet) Flip(i int) bool {
	b.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
	return b.Has(i)
}

// Has reports whether i is in the set.
func (b *BitSet) Has(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (b *BitSet) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset removes all elements.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (b *BitSet) Clone() *BitSet {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitSet{words: w, n: b.n}
}

// CopyFrom overwrites b with the contents of src (capacities must match).
func (b *BitSet) CopyFrom(src *BitSet) {
	if b.n != src.n {
		panic(fmt.Sprintf("graph: CopyFrom capacity mismatch: %d != %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Or sets b to b ∪ other.
func (b *BitSet) Or(other *BitSet) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b ∩ other.
func (b *BitSet) And(other *BitSet) {
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b \ other.
func (b *BitSet) AndNot(other *BitSet) {
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// AndNotAnd sets b to b \ (x ∩ y) in one word-level pass, without
// materializing the intersection. x and y must have b's capacity.
func (b *BitSet) AndNotAnd(x, y *BitSet) {
	for i, w := range x.words {
		b.words[i] &^= w & y.words[i]
	}
}

// AndNotDiff sets b to b \ (x \ y) in one word-level pass, without
// materializing the difference. x and y must have b's capacity.
func (b *BitSet) AndNotDiff(x, y *BitSet) {
	for i, w := range x.words {
		b.words[i] &^= w &^ y.words[i]
	}
}

// Intersects reports whether b ∩ other is non-empty.
func (b *BitSet) Intersects(other *BitSet) bool {
	m := len(b.words)
	if len(other.words) < m {
		m = len(other.words)
	}
	for i := 0; i < m; i++ {
		if b.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectCount returns |b ∩ other|.
func (b *BitSet) IntersectCount(other *BitSet) int {
	m := len(b.words)
	if len(other.words) < m {
		m = len(other.words)
	}
	c := 0
	for i := 0; i < m; i++ {
		c += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return c
}

// Equal reports whether b and other contain exactly the same elements.
func (b *BitSet) Equal(other *BitSet) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of b is also in other.
func (b *BitSet) SubsetOf(other *BitSet) bool {
	for i, w := range b.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. If fn returns false
// the iteration stops early.
func (b *BitSet) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the smallest element >= i, or -1 when no such element
// exists. It scans word-level (one TrailingZeros64 per 64 absent
// candidates), so  for v := b.NextSet(0); v >= 0; v = b.NextSet(v + 1)
// iterates the set in ascending order without a closure and stays correct
// when the loop body mutates bits at positions <= v.
func (b *BitSet) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Words exposes the backing word slice (little-endian bit order) so
// callers can hash or serialize the set without per-element iteration.
// The caller must not modify the returned slice.
func (b *BitSet) Words() []uint64 { return b.words }

// Hash returns a 64-bit FNV-1a digest of the set's backing words (including
// trailing zero words, so equal-capacity sets hash equal exactly when they
// are Equal). It mixes every word, so sets sharing a long equal prefix but
// differing in a later word still hash apart; callers deduplicating by hash
// must nonetheless confirm with Equal, since 64-bit collisions across
// distinct sets remain possible.
func (b *BitSet) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Elems returns the elements in ascending order.
func (b *BitSet) Elems() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set like "{1, 4, 7}".
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
