package graph

import (
	"math/rand"
	"testing"
)

// Property: LongestPath over the full node set equals the classic DP over
// a random DAG, and restricting the set never increases the critical path.
func TestLongestPathMonotoneUnderRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		g := randDAG(rng, n, 0.2)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + rng.Float64()
		}
		weight := func(v int) float64 { return w[v] }

		full := NewBitSet(n)
		for v := 0; v < n; v++ {
			full.Set(v)
		}
		_, critFull := g.LongestPath(full, weight)

		sub := NewBitSet(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.6 {
				sub.Set(v)
			}
		}
		_, critSub := g.LongestPath(sub, weight)
		if critSub > critFull+1e-12 {
			t.Fatalf("restricted critical path %v exceeds full %v", critSub, critFull)
		}
	}
}

// Property: ComponentsOf partitions the set exactly.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randDAG(rng, n, 0.1)
		set := NewBitSet(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.5 {
				set.Set(v)
			}
		}
		comps := g.ComponentsOf(set)
		seen := NewBitSet(n)
		total := 0
		for _, comp := range comps {
			for _, v := range comp {
				if !set.Has(v) {
					t.Fatalf("component node %d outside set", v)
				}
				if seen.Has(v) {
					t.Fatalf("node %d in two components", v)
				}
				seen.Set(v)
				total++
			}
		}
		if total != set.Count() {
			t.Fatalf("components cover %d nodes, set has %d", total, set.Count())
		}
	}
}

// Anc and Desc are duals: u ∈ Desc(v) ⟺ v ∈ Anc(u).
func TestAncDescDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := randDAG(rng, 40, 0.15)
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			if g.Desc(v).Has(u) != g.Anc(u).Has(v) {
				t.Fatalf("duality violated for %d, %d", u, v)
			}
		}
	}
}

// Barrier distances: a node's up-distance is at most one more than the
// minimum of its predecessors'.
func TestBarrierDistancesLocalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := randDAG(rng, 50, 0.12)
	isBar := func(v int) bool { return v%7 == 0 }
	up, down := g.BarrierDistances(isBar)
	for v := 0; v < 50; v++ {
		if isBar(v) {
			if up[v] != 0 || down[v] != 0 {
				t.Fatalf("barrier %d has nonzero distances", v)
			}
			continue
		}
		if len(g.Preds(v)) > 0 {
			best := -1
			for _, p := range g.Preds(v) {
				if best < 0 || up[p]+1 < best {
					best = up[p] + 1
				}
			}
			if up[v] != best {
				t.Fatalf("up[%d] = %d, want %d", v, up[v], best)
			}
		} else if up[v] != 1 {
			t.Fatalf("source %d up = %d, want 1", v, up[v])
		}
	}
	_ = down
}
