package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasic(t *testing.T) {
	b := NewBitSet(130)
	if !b.Empty() {
		t.Fatal("new set should be empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if got := b.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	for _, i := range []int{1, 62, 65, 128} {
		if b.Has(i) {
			t.Errorf("Has(%d) = true, want false", i)
		}
	}
	b.Clear(63)
	if b.Has(63) {
		t.Error("Clear(63) did not remove 63")
	}
	if got := b.Count(); got != 3 {
		t.Fatalf("Count after Clear = %d, want 3", got)
	}
}

func TestBitSetFlip(t *testing.T) {
	b := NewBitSet(10)
	if !b.Flip(3) {
		t.Error("Flip(3) should report membership true")
	}
	if b.Flip(3) {
		t.Error("second Flip(3) should report membership false")
	}
	if !b.Empty() {
		t.Error("set should be empty after double flip")
	}
}

func TestBitSetSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	union := a.Clone()
	union.Or(b)
	inter := a.Clone()
	inter.And(b)
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 100; i++ {
		even, trip := i%2 == 0, i%3 == 0
		if union.Has(i) != (even || trip) {
			t.Errorf("union.Has(%d) wrong", i)
		}
		if inter.Has(i) != (even && trip) {
			t.Errorf("inter.Has(%d) wrong", i)
		}
		if diff.Has(i) != (even && !trip) {
			t.Errorf("diff.Has(%d) wrong", i)
		}
	}
	if got, want := inter.Count(), a.IntersectCount(b); got != want {
		t.Errorf("IntersectCount = %d, want %d", want, got)
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b (both contain 0)")
	}
	if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
		t.Error("intersection must be a subset of both operands")
	}
	if diff.Intersects(b) {
		t.Error("a\\b must not intersect b")
	}
}

func TestBitSetEqualCloneCopy(t *testing.T) {
	a := NewBitSet(70)
	a.Set(5)
	a.Set(69)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Set(6)
	if a.Equal(c) {
		t.Fatal("modified clone should differ")
	}
	d := NewBitSet(70)
	d.CopyFrom(a)
	if !d.Equal(a) {
		t.Fatal("CopyFrom should replicate contents")
	}
	e := NewBitSet(71)
	if a.Equal(e) {
		t.Fatal("different capacities should not be Equal")
	}
}

func TestBitSetForEachEarlyStop(t *testing.T) {
	b := NewBitSet(50)
	for i := 0; i < 50; i++ {
		b.Set(i)
	}
	seen := 0
	b.ForEach(func(i int) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Fatalf("early stop visited %d elements, want 7", seen)
	}
}

func TestBitSetElemsString(t *testing.T) {
	b := NewBitSet(20)
	b.Set(1)
	b.Set(4)
	b.Set(7)
	elems := b.Elems()
	want := []int{1, 4, 7}
	if len(elems) != len(want) {
		t.Fatalf("Elems = %v, want %v", elems, want)
	}
	for i := range want {
		if elems[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", elems, want)
		}
	}
	if got := b.String(); got != "{1, 4, 7}" {
		t.Errorf("String = %q, want {1, 4, 7}", got)
	}
}

func TestBitSetReset(t *testing.T) {
	b := NewBitSet(128)
	for i := 0; i < 128; i += 5 {
		b.Set(i)
	}
	b.Reset()
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("Reset should empty the set")
	}
}

// Property: Count equals the number of distinct inserted values.
func TestBitSetCountProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		b := NewBitSet(1 << 16)
		distinct := map[int]bool{}
		for _, v := range vals {
			b.Set(int(v))
			distinct[int(v)] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan on random sets: |A∪B| = |A| + |B| - |A∩B|.
func TestBitSetInclusionExclusionProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a, b := NewBitSet(256), NewBitSet(256)
		for _, v := range av {
			a.Set(int(v))
		}
		for _, v := range bv {
			b.Set(int(v))
		}
		u := a.Clone()
		u.Or(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitSetNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitSet(-1) should panic")
		}
	}()
	NewBitSet(-1)
}

func BenchmarkBitSetIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := NewBitSet(4096), NewBitSet(4096)
	for i := 0; i < 1024; i++ {
		x.Set(rng.Intn(4096))
		y.Set(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

func TestNextSetBoundaries(t *testing.T) {
	b := NewBitSet(200)
	for _, v := range []int{0, 63, 64, 127, 128, 199} {
		b.Set(v)
	}
	want := []int{0, 63, 64, 127, 128, 199}
	var got []int
	for v := b.NextSet(0); v >= 0; v = b.NextSet(v + 1) {
		got = append(got, v)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	// Starting points inside, between and past the elements.
	for _, tc := range [][2]int{{0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 127}, {129, 199}, {199, 199}} {
		if got := b.NextSet(tc[0]); got != tc[1] {
			t.Errorf("NextSet(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
	if got := b.NextSet(200); got != -1 {
		t.Errorf("NextSet(200) = %d, want -1", got)
	}
	if got := b.NextSet(-5); got != 0 {
		t.Errorf("NextSet(-5) = %d, want 0", got)
	}
	if got := NewBitSet(100).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
	if got := NewBitSet(0).NextSet(0); got != -1 {
		t.Errorf("NextSet on zero-capacity = %d, want -1", got)
	}
}

// NextSet walks and ForEach walks must agree on random sets.
func TestNextSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		b := NewBitSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		var fe []int
		b.ForEach(func(i int) bool { fe = append(fe, i); return true })
		var ns []int
		for v := b.NextSet(0); v >= 0; v = b.NextSet(v + 1) {
			ns = append(ns, v)
		}
		if len(fe) != len(ns) {
			t.Fatalf("trial %d: ForEach %v != NextSet %v", trial, fe, ns)
		}
		for i := range fe {
			if fe[i] != ns[i] {
				t.Fatalf("trial %d: ForEach %v != NextSet %v", trial, fe, ns)
			}
		}
	}
}

// NextSet must tolerate the loop body clearing the element it sits on —
// the pattern State.SetCut relies on.
func TestNextSetMutationDuringWalk(t *testing.T) {
	b := NewBitSet(150)
	for i := 0; i < 150; i += 7 {
		b.Set(i)
	}
	count := 0
	for v := b.NextSet(0); v >= 0; v = b.NextSet(v + 1) {
		b.Clear(v)
		count++
	}
	if count != (149/7)+1 {
		t.Fatalf("walk visited %d elements, want %d", count, (149/7)+1)
	}
	if !b.Empty() {
		t.Fatalf("set not drained: %v", b)
	}
}
