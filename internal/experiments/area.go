package experiments

import (
	"fmt"
	"io"

	"repro/internal/eval"
	"repro/internal/kernels"
)

// AreaRow reports the speedup attainable on a benchmark under one total
// AFU area budget (NAND2-equivalent gates).
type AreaRow struct {
	Benchmark string
	Budget    float64 // 0 = unlimited
	Speedup   float64
	UsedArea  float64
	NumAFUs   int
}

// AreaStudy is the extension experiment motivated by the paper's related
// work (AFU silicon is not free): generate a generous pool of candidate
// ISEs (NISE = 8) with full reuse, then select the subset maximizing
// savings under each area budget via 0/1 knapsack, and report the
// resulting speedups. Reusable cuts shine here: one AFU datapath pays its
// area once and earns savings at every instance.
func AreaStudy(o Options, budgets []float64) ([]AreaRow, error) {
	var rows []AreaRow
	specs := kernels.All()
	specs = append(specs, kernels.Spec{Name: "aes", App: kernels.AES(), CriticalSize: 696})
	for _, spec := range specs {
		oo := o
		oo.NISE = 8 // generous candidate pool for the knapsack
		sels, err := selectionsWithReuse(spec.App, oo, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, budget := range budgets {
			picked := eval.SelectUnderAreaBudget(spec.App, o.Model, sels, budget)
			rep, err := eval.Evaluate(spec.App, o.Model, picked)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			rows = append(rows, AreaRow{
				Benchmark: spec.Name,
				Budget:    budget,
				Speedup:   rep.Speedup,
				UsedArea:  eval.TotalAFUArea(o.Model, picked),
				NumAFUs:   len(picked),
			})
		}
	}
	return rows, nil
}

// DefaultAreaBudgets is the sweep used by cmd/isebench.
var DefaultAreaBudgets = []float64{1000, 4000, 16000, 64000, 0}

// PrintAreaStudy renders the area sweep.
func PrintAreaStudy(w io.Writer, rows []AreaRow) {
	fmt.Fprintf(w, "Extension: speedup under AFU area budgets (NAND2-eq gates; 0 = unlimited)\n")
	fmt.Fprintf(w, "%-16s %10s %8s %6s %10s\n", "benchmark", "budget", "speedup", "AFUs", "used-area")
	last := ""
	for _, r := range rows {
		name := r.Benchmark
		if name == last {
			name = ""
		} else {
			last = r.Benchmark
		}
		budget := fmt.Sprintf("%.0f", r.Budget)
		if r.Budget == 0 {
			budget = "unlim"
		}
		fmt.Fprintf(w, "%-16s %10s %8.3f %6d %10.0f\n", name, budget, r.Speedup, r.NumAFUs, r.UsedArea)
	}
}
