package experiments

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/search"
	"repro/internal/sim"
)

// generateWithReuse runs the full ISEGEN flow (unified driver + reuse
// claiming) and returns the evaluation report. A non-nil cache shares cut
// costings across calls on the same blocks (e.g. the Figure 6/7 sweeps).
func generateWithReuse(app *ir.Application, o Options, cache *search.CostCache) (*eval.Report, error) {
	sels, err := selectionsWithReuse(app, o, cache)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(app, o.Model, sels)
}

// selectionsWithReuse is the shared ISEGEN-with-reuse pipeline: the
// search.Runner driver under the reuse-aware objective, claiming every
// isomorphic instance of each selected cut.
func selectionsWithReuse(app *ir.Application, o Options, cache *search.CostCache) ([]eval.Selection, error) {
	cfg := o.isegenConfig()
	var sels []eval.Selection
	claimer := eval.NewClaimer(app)
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	_, _, err := r.Generate(app, cfg, search.ReuseAware(app, o.Model, claimer),
		func(bi int, cut *core.Cut, excluded []*graph.BitSet) {
			sel := claimer.Claim(bi, cut, excluded)
			if len(sel.Instances) > 0 {
				sels = append(sels, sel)
			}
		})
	if err != nil {
		return nil, err
	}
	return sels, nil
}

// generateWithReuseRestarts is the restart-ablation pipeline: cuts are
// selected by merit only (no reuse-aware scoring), isolating the K-L
// search quality that the dispersed restarts exist to improve; reuse
// instances are still claimed for evaluation.
func generateWithReuseRestarts(app *ir.Application, o Options, restarts int, cache *search.CostCache) (*eval.Report, error) {
	cfg := o.isegenConfig()
	cfg.Restarts = restarts
	var sels []eval.Selection
	claimer := eval.NewClaimer(app)
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	_, _, err := r.Generate(app, cfg, search.Merit(o.Model),
		func(bi int, cut *core.Cut, excluded []*graph.BitSet) {
			sel := claimer.Claim(bi, cut, excluded)
			if len(sel.Instances) > 0 {
				sels = append(sels, sel)
			}
		})
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(app, o.Model, sels)
}

// simOne produces one SimulationValidation row.
func simOne(name string, app *ir.Application, o Options) (SimRow, error) {
	sels, err := selectionsWithReuse(app, o, nil)
	if err != nil {
		return SimRow{}, err
	}
	rep, err := eval.Evaluate(app, o.Model, sels)
	if err != nil {
		return SimRow{}, err
	}
	instances := map[int][]*graph.BitSet{}
	for _, sel := range sels {
		for _, inst := range sel.Instances {
			instances[inst.BlockIdx] = append(instances[inst.BlockIdx], inst.Nodes)
		}
	}
	simRes, err := sim.RunApp(app, o.Model, instances)
	if err != nil {
		return SimRow{}, err
	}
	return SimRow{
		Benchmark: name,
		Estimated: rep.Speedup,
		Simulated: simRes.Speedup,
		RelErr:    eval.RelativeError(rep.Speedup, simRes.Speedup),
	}, nil
}
