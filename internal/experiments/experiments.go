// Package experiments reproduces every table and figure of the paper's
// evaluation section:
//
//	Figure 4 (left):  speedup of Exact / Iterative / Genetic / ISEGEN on
//	                  seven EEMBC/MediaBench benchmarks at I/O (4,2), 4 AFUs
//	Figure 4 (right): ISE-generation runtime of the same four algorithms
//	Figure 6:         AES speedup, Genetic vs ISEGEN, sweeping I/O
//	                  constraints at NISE = 1 and NISE = 4
//	Figure 7:         reusability — instance count of each AES cut vs I/O
//
// plus the ablations motivated by Section 4 (gain-weight components, pass
// count, restarts) and the future-work experiments of Section 6
// (cycle-level simulation, code size and energy).
//
// Every harness drives the algorithms through the unified engine layer of
// internal/search — there are no per-algorithm driver loops here — and
// fans independent benchmark/configuration cells out across
// Options.Workers with a deterministic merge, so results are identical to
// a sequential run. Every harness returns plain row structs and has a
// Print* companion that renders the same rows the paper plots.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/search"
)

// AlgoNames lists the four compared algorithms in the paper's legend order.
var AlgoNames = []string{"Exact", "Iterative", "Genetic", "ISEGEN"}

// Options configure a harness run.
type Options struct {
	MaxIn, MaxOut int
	NISE          int
	// ExactNodeLimit mirrors the paper: the joint Exact search handled
	// blocks of up to ~25 nodes. Default 25.
	ExactNodeLimit int
	// IterativeNodeLimit mirrors the paper: Iterative handled blocks of
	// up to ~96 nodes (so fft00's 104-node block fails). Default 100.
	IterativeNodeLimit int
	// Budget bounds the exact searches' explored nodes. Default 2e9.
	Budget int64
	// GASeed seeds the genetic baseline.
	GASeed int64
	// Workers bounds the harness fan-out (benchmark × configuration
	// cells) and the driver's K-L restart concurrency. 0 = one worker
	// per CPU core, 1 = fully sequential; results are identical.
	Workers int
	Model   *latency.Model
}

// DefaultOptions returns the paper's main configuration.
func DefaultOptions() Options {
	return Options{
		MaxIn: 4, MaxOut: 2, NISE: 4,
		ExactNodeLimit:     25,
		IterativeNodeLimit: 100,
		Budget:             search.DefaultBudget,
		GASeed:             1,
		Model:              latency.Default(),
	}
}

// runner builds the shared fan-out runner for one harness call. Harnesses
// that benefit from a shared cost cache (same blocks costed repeatedly
// across cells) attach one explicitly.
func (o Options) runner() *search.Runner {
	return &search.Runner{Workers: o.Workers}
}

// Fig4Row is one benchmark's outcome for both Figure 4 plots.
type Fig4Row struct {
	Benchmark string
	Nodes     int // critical-block size (paper's parenthesized number)
	// Speedup and Runtime are keyed by AlgoNames entries; a missing key
	// means the algorithm could not handle the benchmark and Note says
	// why (mirroring the bars absent from the paper's plot).
	Speedup map[string]float64
	Runtime map[string]time.Duration
	Note    map[string]string
}

// isegenConfig builds the core config for the options.
func (o Options) isegenConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = o.MaxIn, o.MaxOut, o.NISE
	cfg.Workers = o.Workers
	cfg.Model = o.Model
	return cfg
}

// limits builds the engine limits for the options; nodeLimit and budget
// only constrain the exact engines.
func (o Options) limits(nodeLimit int) *search.Limits {
	return &search.Limits{
		MaxIn: o.MaxIn, MaxOut: o.MaxOut, NISE: o.NISE,
		NodeLimit: nodeLimit, Budget: o.Budget,
		// Cells fan out across blocks; engines stay sequential inside a
		// cell so the Figure 4 runtime comparison measures the
		// algorithms, not the pool.
		Workers: 1,
	}
}

// fig4Cell is one algorithm column of Figure 4: a factory (so each sweep
// cell can get its own cost cache) plus the per-algorithm limits.
type fig4Cell struct {
	Name   string
	New    func(cache *search.CostCache) search.Engine
	Limits *search.Limits
}

// figure4Cells lists the paper's four algorithms in AlgoNames order.
func (o Options) figure4Cells() []fig4Cell {
	return []fig4Cell{
		{"Exact", func(c *search.CostCache) search.Engine { return &search.ExactJoint{Cache: c} }, o.limits(o.ExactNodeLimit)},
		{"Iterative", func(c *search.CostCache) search.Engine { return &search.ExactIterative{Cache: c} }, o.limits(o.IterativeNodeLimit)},
		{"Genetic", func(c *search.CostCache) search.Engine { return &search.Genetic{Seed: o.GASeed, Cache: c} }, o.limits(0)},
		{"ISEGEN", func(c *search.CostCache) search.Engine { return &search.KL{Cache: c} }, o.limits(0)},
	}
}

// speedupOf evaluates cuts without reuse (the Figure 4 protocol: all four
// algorithms are scored identically).
func speedupOf(app *ir.Application, model *latency.Model, cuts []*core.Cut) float64 {
	if len(cuts) == 0 {
		return 1
	}
	rep, err := eval.SpeedupOfCuts(app, model, cuts)
	if err != nil {
		return 1
	}
	return rep.Speedup
}

// Figure4 runs all four engines on the seven benchmarks: an embarrassingly
// parallel sweep over 28 benchmark × algorithm cells. Each cell gets a
// fresh cost cache, so no algorithm inherits warmth another one paid for
// and the Runtime column compares the algorithms themselves; run with
// Options.Workers = 1 when contention-free absolute runtimes matter.
func Figure4(o Options) []Fig4Row {
	specs := kernels.All()
	r := o.runner()
	cells := o.figure4Cells()
	obj := search.Merit(o.Model)

	type cellResult struct {
		speed float64
		dur   time.Duration
		note  string
		ok    bool
	}
	results := make([]cellResult, len(specs)*len(cells))
	r.ForEach(len(results), func(i int) {
		spec := specs[i/len(cells)]
		cell := cells[i%len(cells)]
		eng := cell.New(search.NewCostCache())
		hot := spec.App.Blocks[0]
		cuts, stats, err := eng.Run(hot, obj, cell.Limits)
		if err != nil {
			results[i] = cellResult{note: shortErr(err)}
			return
		}
		results[i] = cellResult{
			speed: speedupOf(spec.App, o.Model, cuts),
			dur:   stats.Duration,
			ok:    true,
		}
	})

	rows := make([]Fig4Row, 0, len(specs))
	for si, spec := range specs {
		row := Fig4Row{
			Benchmark: spec.Name,
			Nodes:     spec.CriticalSize,
			Speedup:   map[string]float64{},
			Runtime:   map[string]time.Duration{},
			Note:      map[string]string{},
		}
		for ei, cell := range cells {
			res := results[si*len(cells)+ei]
			if !res.ok {
				row.Note[cell.Name] = res.note
				continue
			}
			row.Speedup[cell.Name] = res.speed
			row.Runtime[cell.Name] = res.dur
		}
		rows = append(rows, row)
	}
	return rows
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// PrintFigure4 renders both Figure 4 plots as tables.
func PrintFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "Figure 4 (left): speedup, I/O (4,2), NISE = 4\n")
	fmt.Fprintf(w, "%-20s %8s %8s %8s %8s\n", "benchmark(n)", "Exact", "Iterat.", "Genetic", "ISEGEN")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s", fmt.Sprintf("%s(%d)", r.Benchmark, r.Nodes))
		for _, a := range AlgoNames {
			if v, ok := r.Speedup[a]; ok {
				fmt.Fprintf(w, " %8.3f", v)
			} else {
				fmt.Fprintf(w, " %8s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFigure 4 (right): ISE generation runtime (µs, log axis in the paper)\n")
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s\n", "benchmark(n)", "Exact", "Iterat.", "Genetic", "ISEGEN")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s", fmt.Sprintf("%s(%d)", r.Benchmark, r.Nodes))
		for _, a := range AlgoNames {
			if v, ok := r.Runtime[a]; ok {
				fmt.Fprintf(w, " %10d", v.Microseconds())
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "('-' = algorithm cannot handle the block, as in the paper: ")
	fmt.Fprintf(w, "Exact is limited to ~25 nodes, Iterative to ~100.)\n")
}

// IOSweep is the I/O-constraint axis of Figures 6 and 7.
var IOSweep = [][2]int{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {6, 3}, {8, 4}}

// Fig6Point is one x-position of a Figure 6 plot.
type Fig6Point struct {
	IO      [2]int
	Genetic float64
	ISEGEN  float64
}

// Figure6 sweeps the I/O constraints on AES with the given AFU budget,
// comparing the genetic baseline against ISEGEN; the six sweep points fan
// out across the worker pool. Both sides receive the identical reuse
// treatment (every isomorphic instance of each cut is claimed), so the
// difference isolates cut *quality*.
func Figure6(o Options, nise int) []Fig6Point {
	r := o.runner()
	r.Cache = search.NewCostCache()
	// One shared AES instance: blocks are immutable after construction,
	// and cut metrics are I/O-constraint-independent, so all sweep
	// cells (both the Genetic and the ISEGEN side) hit the same shared
	// cost-cache entries.
	app := kernels.AES()
	out := make([]Fig6Point, len(IOSweep))
	r.ForEach(len(IOSweep), func(i int) {
		io := IOSweep[i]
		oo := o
		oo.MaxIn, oo.MaxOut, oo.NISE = io[0], io[1], nise
		oo.Workers = 1 // sweep cells already saturate the pool

		ga := &search.Genetic{Seed: oo.GASeed, Cache: r.Cache}
		gaCuts, _, err := ga.Run(app.Blocks[0], search.Merit(oo.Model), oo.limits(0))
		gaSpeed := 1.0
		if err == nil {
			sels := eval.ClaimAllWithReuse(app, gaCuts, func(*core.Cut) int { return 0 })
			if rep, err := eval.Evaluate(app, oo.Model, sels); err == nil {
				gaSpeed = rep.Speedup
			}
		}

		iseSpeed := 1.0
		if rep, err := generateWithReuse(app, oo, r.Cache); err == nil {
			iseSpeed = rep.Speedup
		}

		out[i] = Fig6Point{IO: io, Genetic: gaSpeed, ISEGEN: iseSpeed}
	})
	return out
}

// PrintFigure6 renders one Figure 6 plot.
func PrintFigure6(w io.Writer, nise int, pts []Fig6Point) {
	fmt.Fprintf(w, "Figure 6: AES(696) speedup, NISE = %d\n", nise)
	fmt.Fprintf(w, "%-8s %8s %8s\n", "I/O", "Genetic", "ISEGEN")
	for _, p := range pts {
		fmt.Fprintf(w, "(%d,%d)   %8.3f %8.3f\n", p.IO[0], p.IO[1], p.Genetic, p.ISEGEN)
	}
}

// Fig7Row reports, for one I/O constraint, the instance count of each cut
// ISEGEN selected on AES (CUT1..CUT4 in discovery order).
type Fig7Row struct {
	IO        [2]int
	CutSizes  []int
	Instances []int
}

// Figure7 reproduces the reusability study: how many instances each AES
// cut has under each I/O constraint (sweep points fan out in parallel).
func Figure7(o Options) []Fig7Row {
	r := o.runner()
	r.Cache = search.NewCostCache()
	app := kernels.AES()
	rows := make([]*Fig7Row, len(IOSweep))
	r.ForEach(len(IOSweep), func(i int) {
		io := IOSweep[i]
		oo := o
		oo.MaxIn, oo.MaxOut = io[0], io[1]
		oo.Workers = 1 // sweep cells already saturate the pool
		sels, err := selectionsWithReuse(app, oo, r.Cache)
		if err != nil {
			return
		}
		row := &Fig7Row{IO: io}
		for _, sel := range sels {
			row.CutSizes = append(row.CutSizes, sel.Cut.Size())
			row.Instances = append(row.Instances, len(sel.Instances))
		}
		rows[i] = row
	})
	out := make([]Fig7Row, 0, len(rows))
	for _, row := range rows {
		if row != nil {
			out = append(out, *row)
		}
	}
	return out
}

// PrintFigure7 renders the reusability table; each entry is
// cutsize×instances in discovery order (CUT1..CUT4).
func PrintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: reusability of cuts in AES (cutsize x instances, NISE = 4)\n")
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-10s\n", "I/O", "CUT1", "CUT2", "CUT3", "CUT4")
	for _, r := range rows {
		fmt.Fprintf(w, "(%d,%d)  ", r.IO[0], r.IO[1])
		for i := range r.CutSizes {
			fmt.Fprintf(w, " %-10s", fmt.Sprintf("%dx%d", r.CutSizes[i], r.Instances[i]))
		}
		fmt.Fprintln(w)
	}
}

// geoMean returns the geometric mean of xs.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// AblationRow reports the geometric-mean Figure 4 speedup of an ISEGEN
// variant across the seven benchmarks.
type AblationRow struct {
	Variant string
	GeoMean float64
}

// ablationSweep evaluates one ISEGEN config variant per entry across the
// Figure 4 suite (variant × benchmark cells fan out in parallel) and
// reports the per-variant geometric-mean speedup.
func ablationSweep(o Options, variants []string, mod func(i int, cfg *core.Config)) []AblationRow {
	specs := kernels.All()
	r := o.runner()
	// Cut metrics are independent of the config variants, so one cache
	// serves all variant × benchmark cells.
	r.Cache = search.NewCostCache()
	speeds := make([]float64, len(variants)*len(specs))
	r.ForEach(len(speeds), func(i int) {
		vi, si := i/len(specs), i%len(specs)
		spec := specs[si]
		cfg := o.isegenConfig()
		cfg.Workers = 1 // cells already saturate the pool
		mod(vi, &cfg)
		inner := &search.Runner{Workers: 1, Cache: r.Cache}
		cuts, _, err := inner.Generate(spec.App, cfg, search.Merit(o.Model), nil)
		if err != nil {
			speeds[i] = -1
			return
		}
		speeds[i] = speedupOf(spec.App, o.Model, cuts)
	})
	rows := make([]AblationRow, 0, len(variants))
	for vi, name := range variants {
		var ok []float64
		for si := range specs {
			if s := speeds[vi*len(specs)+si]; s > 0 {
				ok = append(ok, s)
			}
		}
		rows = append(rows, AblationRow{Variant: name, GeoMean: geoMean(ok)})
	}
	return rows
}

// AblationWeights zeroes each gain-function component in turn — the
// design-choice study for Section 4.2.
func AblationWeights(o Options) []AblationRow {
	mods := []func(*core.Weights){
		func(*core.Weights) {},
		func(w *core.Weights) { w.Merit = 0 },
		func(w *core.Weights) { w.IOPenalty = 0 },
		func(w *core.Weights) { w.Convexity = 0 },
		func(w *core.Weights) { w.LargeCut = 0 },
		func(w *core.Weights) { w.Independent = 0 },
	}
	names := []string{
		"full",
		"-merit (α1=0)",
		"-io-penalty (α2=0)",
		"-convexity (α3=0)",
		"-largecut (α4=0)",
		"-independent (α5=0)",
	}
	return ablationSweep(o, names, func(i int, cfg *core.Config) { mods[i](&cfg.Weights) })
}

// AblationPasses sweeps the K-L pass bound (the paper found 5 sufficient).
func AblationPasses(o Options) []AblationRow {
	passes := []int{1, 2, 3, 5, 8}
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = fmt.Sprintf("passes=%d", p)
	}
	return ablationSweep(o, names, func(i int, cfg *core.Config) { cfg.MaxPasses = passes[i] })
}

// AblationRestarts sweeps the dispersed-restart count (our large-DFG
// extension; 1 = the paper's single-trajectory loop) on AES at (4,2).
func AblationRestarts(o Options) []AblationRow {
	restarts := []int{1, 2, 4, 8}
	r := o.runner()
	r.Cache = search.NewCostCache()
	app := kernels.AES()
	inner := o
	inner.Workers = 1 // variant cells already saturate the pool
	rows := make([]AblationRow, len(restarts))
	r.ForEach(len(restarts), func(i int) {
		speed := 1.0
		if rep, err := generateWithReuseRestarts(app, inner, restarts[i], r.Cache); err == nil {
			speed = rep.Speedup
		}
		rows[i] = AblationRow{Variant: fmt.Sprintf("restarts=%d", restarts[i]), GeoMean: speed}
	})
	return rows
}

// PrintAblation renders an ablation table.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n%-22s %10s\n", title, "variant", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.3f\n", r.Variant, r.GeoMean)
	}
}

// SimRow compares the analytic speedup estimate with the cycle-level
// simulator for one benchmark (the Section 6 future-work deployment check).
type SimRow struct {
	Benchmark string
	Estimated float64
	Simulated float64
	RelErr    float64
}

// SimulationValidation runs ISEGEN with reuse on every benchmark (in
// parallel across benchmarks) and replays the result on the cycle-level
// core model.
func SimulationValidation(o Options) ([]SimRow, error) {
	specs := kernels.All()
	specs = append(specs, kernels.Spec{Name: "aes", App: kernels.AES(), CriticalSize: 696})
	rows := make([]SimRow, len(specs))
	errs := make([]error, len(specs))
	inner := o
	inner.Workers = 1 // benchmark cells already saturate the pool
	o.runner().ForEach(len(specs), func(i int) {
		rows[i], errs[i] = simOne(specs[i].Name, specs[i].App, inner)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Name, err)
		}
	}
	return rows, nil
}

// EnergyRow is the code-size / energy table (Section 6 future work).
type EnergyRow struct {
	Benchmark     string
	Speedup       float64
	CodeSizeRatio float64 // static instructions after / before
	EnergyRatio   float64 // energy after / before
}

// EnergyCodeSize evaluates ISEGEN's impact on static code size and energy
// (benchmarks fan out in parallel).
func EnergyCodeSize(o Options) ([]EnergyRow, error) {
	specs := kernels.All()
	specs = append(specs, kernels.Spec{Name: "aes", App: kernels.AES(), CriticalSize: 696})
	rows := make([]EnergyRow, len(specs))
	errs := make([]error, len(specs))
	inner := o
	inner.Workers = 1 // benchmark cells already saturate the pool
	o.runner().ForEach(len(specs), func(i int) {
		spec := specs[i]
		rep, err := generateWithReuse(spec.App, inner, nil)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = EnergyRow{
			Benchmark:     spec.Name,
			Speedup:       rep.Speedup,
			CodeSizeRatio: float64(rep.StaticAfter) / float64(rep.StaticBefore),
			EnergyRatio:   rep.EnergyAfter / rep.EnergyBefore,
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Name, err)
		}
	}
	return rows, nil
}

// PrintEnergy renders the energy/code-size table.
func PrintEnergy(w io.Writer, rows []EnergyRow) {
	fmt.Fprintf(w, "Future work (Section 6): code size and energy impact\n")
	fmt.Fprintf(w, "%-16s %8s %10s %10s\n", "benchmark", "speedup", "codesize", "energy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8.3f %9.1f%% %9.1f%%\n",
			r.Benchmark, r.Speedup, 100*r.CodeSizeRatio, 100*r.EnergyRatio)
	}
}

// PrintSim renders the simulation-validation table.
func PrintSim(w io.Writer, rows []SimRow) {
	fmt.Fprintf(w, "Cycle-level simulation vs analytic estimate (with reuse)\n")
	fmt.Fprintf(w, "%-16s %10s %10s %8s\n", "benchmark", "estimated", "simulated", "relerr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %7.2f%%\n", r.Benchmark, r.Estimated, r.Simulated, 100*r.RelErr)
	}
}

// SortRowsByNodes orders Figure 4 rows like the paper (ascending block
// size); kernels.All already returns them sorted, this is a safety net for
// callers assembling rows themselves.
func SortRowsByNodes(rows []Fig4Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Nodes < rows[j].Nodes })
}
