// Package experiments reproduces every table and figure of the paper's
// evaluation section:
//
//	Figure 4 (left):  speedup of Exact / Iterative / Genetic / ISEGEN on
//	                  seven EEMBC/MediaBench benchmarks at I/O (4,2), 4 AFUs
//	Figure 4 (right): ISE-generation runtime of the same four algorithms
//	Figure 6:         AES speedup, Genetic vs ISEGEN, sweeping I/O
//	                  constraints at NISE = 1 and NISE = 4
//	Figure 7:         reusability — instance count of each AES cut vs I/O
//
// plus the ablations motivated by Section 4 (gain-weight components, pass
// count, restarts) and the future-work experiments of Section 6
// (cycle-level simulation, code size and energy).
//
// Every harness returns plain row structs and has a Print* companion that
// renders the same rows the paper plots.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/genetic"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/latency"
)

// AlgoNames lists the four compared algorithms in the paper's legend order.
var AlgoNames = []string{"Exact", "Iterative", "Genetic", "ISEGEN"}

// Options configure a harness run.
type Options struct {
	MaxIn, MaxOut int
	NISE          int
	// ExactNodeLimit mirrors the paper: the joint Exact search handled
	// blocks of up to ~25 nodes. Default 25.
	ExactNodeLimit int
	// IterativeNodeLimit mirrors the paper: Iterative handled blocks of
	// up to ~96 nodes (so fft00's 104-node block fails). Default 100.
	IterativeNodeLimit int
	// Budget bounds the exact searches' explored nodes. Default 2e9.
	Budget int64
	// GASeed seeds the genetic baseline.
	GASeed int64
	Model  *latency.Model
}

// DefaultOptions returns the paper's main configuration.
func DefaultOptions() Options {
	return Options{
		MaxIn: 4, MaxOut: 2, NISE: 4,
		ExactNodeLimit:     25,
		IterativeNodeLimit: 100,
		Budget:             2_000_000_000,
		GASeed:             1,
		Model:              latency.Default(),
	}
}

// Fig4Row is one benchmark's outcome for both Figure 4 plots.
type Fig4Row struct {
	Benchmark string
	Nodes     int // critical-block size (paper's parenthesized number)
	// Speedup and Runtime are keyed by AlgoNames entries; a missing key
	// means the algorithm could not handle the benchmark and Note says
	// why (mirroring the bars absent from the paper's plot).
	Speedup map[string]float64
	Runtime map[string]time.Duration
	Note    map[string]string
}

// isegenConfig builds the core config for the options.
func (o Options) isegenConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = o.MaxIn, o.MaxOut, o.NISE
	cfg.Model = o.Model
	return cfg
}

func (o Options) exactOptions(nodeLimit int) exact.Options {
	return exact.Options{
		MaxIn: o.MaxIn, MaxOut: o.MaxOut, Model: o.Model,
		NodeLimit: nodeLimit, Budget: o.Budget,
	}
}

func (o Options) geneticOptions() genetic.Options {
	return genetic.Options{
		MaxIn: o.MaxIn, MaxOut: o.MaxOut, Model: o.Model, Seed: o.GASeed,
	}
}

// speedupOf evaluates cuts without reuse (the Figure 4 protocol: all four
// algorithms are scored identically).
func speedupOf(app *ir.Application, model *latency.Model, cuts []*core.Cut) float64 {
	if len(cuts) == 0 {
		return 1
	}
	rep, err := eval.SpeedupOfCuts(app, model, cuts)
	if err != nil {
		return 1
	}
	return rep.Speedup
}

// Figure4 runs all four algorithms on the seven benchmarks.
func Figure4(o Options) []Fig4Row {
	var rows []Fig4Row
	for _, spec := range kernels.All() {
		row := Fig4Row{
			Benchmark: spec.Name,
			Nodes:     spec.CriticalSize,
			Speedup:   map[string]float64{},
			Runtime:   map[string]time.Duration{},
			Note:      map[string]string{},
		}
		hot := spec.App.Blocks[0]

		// Exact (joint multi-cut; small blocks only).
		start := time.Now()
		cuts, err := exact.MultiCut(hot, o.exactOptions(o.ExactNodeLimit), o.NISE)
		if err != nil {
			row.Note["Exact"] = shortErr(err)
		} else {
			row.Runtime["Exact"] = time.Since(start)
			row.Speedup["Exact"] = speedupOf(spec.App, o.Model, cuts)
		}

		// Iterative exact single-cut.
		start = time.Now()
		cuts, err = exact.Iterative(hot, o.exactOptions(o.IterativeNodeLimit), o.NISE)
		if err != nil {
			row.Note["Iterative"] = shortErr(err)
		} else {
			row.Runtime["Iterative"] = time.Since(start)
			row.Speedup["Iterative"] = speedupOf(spec.App, o.Model, cuts)
		}

		// Genetic.
		start = time.Now()
		cuts, err = genetic.Iterative(hot, o.geneticOptions(), o.NISE)
		if err != nil {
			row.Note["Genetic"] = shortErr(err)
		} else {
			row.Runtime["Genetic"] = time.Since(start)
			row.Speedup["Genetic"] = speedupOf(spec.App, o.Model, cuts)
		}

		// ISEGEN, restricted to the same critical block the baselines
		// see, so Figure 4 compares algorithms on identical problems.
		hotApp := &ir.Application{Name: spec.Name, Blocks: []*ir.Block{hot}}
		start = time.Now()
		res, err := core.Generate(hotApp, o.isegenConfig(), nil)
		if err != nil {
			row.Note["ISEGEN"] = shortErr(err)
		} else {
			row.Runtime["ISEGEN"] = time.Since(start)
			row.Speedup["ISEGEN"] = speedupOf(spec.App, o.Model, res.Cuts)
		}

		rows = append(rows, row)
	}
	return rows
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// PrintFigure4 renders both Figure 4 plots as tables.
func PrintFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "Figure 4 (left): speedup, I/O (4,2), NISE = 4\n")
	fmt.Fprintf(w, "%-20s %8s %8s %8s %8s\n", "benchmark(n)", "Exact", "Iterat.", "Genetic", "ISEGEN")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s", fmt.Sprintf("%s(%d)", r.Benchmark, r.Nodes))
		for _, a := range AlgoNames {
			if v, ok := r.Speedup[a]; ok {
				fmt.Fprintf(w, " %8.3f", v)
			} else {
				fmt.Fprintf(w, " %8s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFigure 4 (right): ISE generation runtime (µs, log axis in the paper)\n")
	fmt.Fprintf(w, "%-20s %10s %10s %10s %10s\n", "benchmark(n)", "Exact", "Iterat.", "Genetic", "ISEGEN")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s", fmt.Sprintf("%s(%d)", r.Benchmark, r.Nodes))
		for _, a := range AlgoNames {
			if v, ok := r.Runtime[a]; ok {
				fmt.Fprintf(w, " %10d", v.Microseconds())
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "('-' = algorithm cannot handle the block, as in the paper: ")
	fmt.Fprintf(w, "Exact is limited to ~25 nodes, Iterative to ~100.)\n")
}

// IOSweep is the I/O-constraint axis of Figures 6 and 7.
var IOSweep = [][2]int{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {6, 3}, {8, 4}}

// Fig6Point is one x-position of a Figure 6 plot.
type Fig6Point struct {
	IO      [2]int
	Genetic float64
	ISEGEN  float64
}

// Figure6 sweeps the I/O constraints on AES with the given AFU budget,
// comparing the genetic baseline against ISEGEN. Both sides receive the
// identical reuse treatment (every isomorphic instance of each cut is
// claimed), so the difference isolates cut *quality*.
func Figure6(o Options, nise int) []Fig6Point {
	var out []Fig6Point
	for _, io := range IOSweep {
		oo := o
		oo.MaxIn, oo.MaxOut, oo.NISE = io[0], io[1], nise

		app := kernels.AES()
		gaCuts, err := genetic.Iterative(app.Blocks[0], oo.geneticOptions(), nise)
		gaSpeed := 1.0
		if err == nil {
			sels := eval.ClaimAllWithReuse(app, gaCuts, func(*core.Cut) int { return 0 })
			if rep, err := eval.Evaluate(app, oo.Model, sels); err == nil {
				gaSpeed = rep.Speedup
			}
		}

		app2 := kernels.AES()
		iseSpeed := 1.0
		if rep, err := generateWithReuse(app2, oo); err == nil {
			iseSpeed = rep.Speedup
		}

		out = append(out, Fig6Point{IO: io, Genetic: gaSpeed, ISEGEN: iseSpeed})
	}
	return out
}

// PrintFigure6 renders one Figure 6 plot.
func PrintFigure6(w io.Writer, nise int, pts []Fig6Point) {
	fmt.Fprintf(w, "Figure 6: AES(696) speedup, NISE = %d\n", nise)
	fmt.Fprintf(w, "%-8s %8s %8s\n", "I/O", "Genetic", "ISEGEN")
	for _, p := range pts {
		fmt.Fprintf(w, "(%d,%d)   %8.3f %8.3f\n", p.IO[0], p.IO[1], p.Genetic, p.ISEGEN)
	}
}

// Fig7Row reports, for one I/O constraint, the instance count of each cut
// ISEGEN selected on AES (CUT1..CUT4 in discovery order).
type Fig7Row struct {
	IO        [2]int
	CutSizes  []int
	Instances []int
}

// Figure7 reproduces the reusability study: how many instances each AES
// cut has under each I/O constraint.
func Figure7(o Options) []Fig7Row {
	var rows []Fig7Row
	for _, io := range IOSweep {
		oo := o
		oo.MaxIn, oo.MaxOut = io[0], io[1]
		app := kernels.AES()
		sels, err := selectionsWithReuse(app, oo)
		if err != nil {
			continue
		}
		var sizes, insts []int
		for _, sel := range sels {
			sizes = append(sizes, sel.Cut.Size())
			insts = append(insts, len(sel.Instances))
		}
		rows = append(rows, Fig7Row{IO: io, CutSizes: sizes, Instances: insts})
	}
	return rows
}

// PrintFigure7 renders the reusability table; each entry is
// cutsize×instances in discovery order (CUT1..CUT4).
func PrintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: reusability of cuts in AES (cutsize x instances, NISE = 4)\n")
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-10s\n", "I/O", "CUT1", "CUT2", "CUT3", "CUT4")
	for _, r := range rows {
		fmt.Fprintf(w, "(%d,%d)  ", r.IO[0], r.IO[1])
		for i := range r.CutSizes {
			fmt.Fprintf(w, " %-10s", fmt.Sprintf("%dx%d", r.CutSizes[i], r.Instances[i]))
		}
		fmt.Fprintln(w)
	}
}

// geoMean returns the geometric mean of xs.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// AblationRow reports the geometric-mean Figure 4 speedup of an ISEGEN
// variant across the seven benchmarks.
type AblationRow struct {
	Variant string
	GeoMean float64
}

// AblationWeights zeroes each gain-function component in turn — the
// design-choice study for Section 4.2.
func AblationWeights(o Options) []AblationRow {
	variants := []struct {
		name string
		mod  func(*core.Weights)
	}{
		{"full", func(*core.Weights) {}},
		{"-merit (α1=0)", func(w *core.Weights) { w.Merit = 0 }},
		{"-io-penalty (α2=0)", func(w *core.Weights) { w.IOPenalty = 0 }},
		{"-convexity (α3=0)", func(w *core.Weights) { w.Convexity = 0 }},
		{"-largecut (α4=0)", func(w *core.Weights) { w.LargeCut = 0 }},
		{"-independent (α5=0)", func(w *core.Weights) { w.Independent = 0 }},
	}
	var rows []AblationRow
	for _, v := range variants {
		var speeds []float64
		for _, spec := range kernels.All() {
			cfg := o.isegenConfig()
			v.mod(&cfg.Weights)
			res, err := core.Generate(spec.App, cfg, nil)
			if err != nil {
				continue
			}
			speeds = append(speeds, speedupOf(spec.App, o.Model, res.Cuts))
		}
		rows = append(rows, AblationRow{Variant: v.name, GeoMean: geoMean(speeds)})
	}
	return rows
}

// AblationPasses sweeps the K-L pass bound (the paper found 5 sufficient).
func AblationPasses(o Options) []AblationRow {
	var rows []AblationRow
	for _, passes := range []int{1, 2, 3, 5, 8} {
		var speeds []float64
		for _, spec := range kernels.All() {
			cfg := o.isegenConfig()
			cfg.MaxPasses = passes
			res, err := core.Generate(spec.App, cfg, nil)
			if err != nil {
				continue
			}
			speeds = append(speeds, speedupOf(spec.App, o.Model, res.Cuts))
		}
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("passes=%d", passes), GeoMean: geoMean(speeds)})
	}
	return rows
}

// AblationRestarts sweeps the dispersed-restart count (our large-DFG
// extension; 1 = the paper's single-trajectory loop) on AES at (4,2).
func AblationRestarts(o Options) []AblationRow {
	var rows []AblationRow
	for _, restarts := range []int{1, 2, 4, 8} {
		app := kernels.AES()
		oo := o
		speed := 1.0
		if rep, err := generateWithReuseRestarts(app, oo, restarts); err == nil {
			speed = rep.Speedup
		}
		rows = append(rows, AblationRow{Variant: fmt.Sprintf("restarts=%d", restarts), GeoMean: speed})
	}
	return rows
}

// PrintAblation renders an ablation table.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n%-22s %10s\n", title, "variant", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.3f\n", r.Variant, r.GeoMean)
	}
}

// SimRow compares the analytic speedup estimate with the cycle-level
// simulator for one benchmark (the Section 6 future-work deployment check).
type SimRow struct {
	Benchmark string
	Estimated float64
	Simulated float64
	RelErr    float64
}

// SimulationValidation runs ISEGEN with reuse on every benchmark and
// replays the result on the cycle-level core model.
func SimulationValidation(o Options) ([]SimRow, error) {
	var rows []SimRow
	apps := kernels.All()
	for _, spec := range apps {
		row, err := simOne(spec.Name, spec.App, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	row, err := simOne("aes", kernels.AES(), o)
	if err != nil {
		return nil, fmt.Errorf("aes: %w", err)
	}
	rows = append(rows, row)
	return rows, nil
}

// EnergyRow is the code-size / energy table (Section 6 future work).
type EnergyRow struct {
	Benchmark     string
	Speedup       float64
	CodeSizeRatio float64 // static instructions after / before
	EnergyRatio   float64 // energy after / before
}

// EnergyCodeSize evaluates ISEGEN's impact on static code size and energy.
func EnergyCodeSize(o Options) ([]EnergyRow, error) {
	var rows []EnergyRow
	specs := kernels.All()
	specs = append(specs, kernels.Spec{Name: "aes", App: kernels.AES(), CriticalSize: 696})
	for _, spec := range specs {
		rep, err := generateWithReuse(spec.App, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rows = append(rows, EnergyRow{
			Benchmark:     spec.Name,
			Speedup:       rep.Speedup,
			CodeSizeRatio: float64(rep.StaticAfter) / float64(rep.StaticBefore),
			EnergyRatio:   rep.EnergyAfter / rep.EnergyBefore,
		})
	}
	return rows, nil
}

// PrintEnergy renders the energy/code-size table.
func PrintEnergy(w io.Writer, rows []EnergyRow) {
	fmt.Fprintf(w, "Future work (Section 6): code size and energy impact\n")
	fmt.Fprintf(w, "%-16s %8s %10s %10s\n", "benchmark", "speedup", "codesize", "energy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8.3f %9.1f%% %9.1f%%\n",
			r.Benchmark, r.Speedup, 100*r.CodeSizeRatio, 100*r.EnergyRatio)
	}
}

// PrintSim renders the simulation-validation table.
func PrintSim(w io.Writer, rows []SimRow) {
	fmt.Fprintf(w, "Cycle-level simulation vs analytic estimate (with reuse)\n")
	fmt.Fprintf(w, "%-16s %10s %10s %8s\n", "benchmark", "estimated", "simulated", "relerr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %7.2f%%\n", r.Benchmark, r.Estimated, r.Simulated, 100*r.RelErr)
	}
}

// SortRowsByNodes orders Figure 4 rows like the paper (ascending block
// size); kernels.All already returns them sorted, this is a safety net for
// callers assembling rows themselves.
func SortRowsByNodes(rows []Fig4Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Nodes < rows[j].Nodes })
}
