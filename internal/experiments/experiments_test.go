package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure4ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 4 run in -short mode")
	}
	o := DefaultOptions()
	rows := Figure4(o)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		// Paper shape 1: the exact algorithms cannot handle large
		// blocks; the heuristics handle everything.
		if r.Nodes <= o.ExactNodeLimit {
			if _, ok := r.Speedup["Exact"]; !ok {
				t.Errorf("%s: Exact missing on small block: %v", r.Benchmark, r.Note)
			}
		} else if _, ok := r.Speedup["Exact"]; ok {
			t.Errorf("%s: Exact should refuse %d nodes", r.Benchmark, r.Nodes)
		}
		if r.Nodes <= o.IterativeNodeLimit {
			if _, ok := r.Speedup["Iterative"]; !ok {
				t.Errorf("%s: Iterative missing: %v", r.Benchmark, r.Note)
			}
		} else if _, ok := r.Speedup["Iterative"]; ok {
			t.Errorf("%s: Iterative should refuse %d nodes", r.Benchmark, r.Nodes)
		}
		ise, ok := r.Speedup["ISEGEN"]
		if !ok || ise <= 1 {
			t.Errorf("%s: ISEGEN speedup %v, want > 1", r.Benchmark, ise)
		}
		// Paper shape 2: ISEGEN matches the solution quality of the
		// best available algorithm within a small tolerance.
		bestOther := 0.0
		for _, a := range []string{"Exact", "Iterative", "Genetic"} {
			if v, ok := r.Speedup[a]; ok && v > bestOther {
				bestOther = v
			}
		}
		if bestOther > 0 && ise < 0.85*bestOther {
			t.Errorf("%s: ISEGEN %.3f below 85%% of best baseline %.3f",
				r.Benchmark, ise, bestOther)
		}
		// Paper shape 3: ISEGEN is much faster than the genetic
		// formulation (the paper reports up to 480x; require >2x at
		// least somewhere below, and never slower than 2x genetic).
		if g, ok := r.Runtime["Genetic"]; ok {
			if i := r.Runtime["ISEGEN"]; i > 2*g {
				t.Errorf("%s: ISEGEN slower than 2x genetic (%v vs %v)", r.Benchmark, i, g)
			}
		}
	}
	// Somewhere ISEGEN must beat genetic by a large runtime factor.
	bestFactor := 0.0
	for _, r := range rows {
		g, okG := r.Runtime["Genetic"]
		i, okI := r.Runtime["ISEGEN"]
		if okG && okI && i > 0 {
			f := float64(g) / float64(i)
			if f > bestFactor {
				bestFactor = f
			}
		}
	}
	if bestFactor < 5 {
		t.Errorf("max genetic/ISEGEN runtime ratio %.1f, want >= 5 (paper: up to 480x)", bestFactor)
	}

	var buf bytes.Buffer
	PrintFigure4(&buf, rows)
	for _, want := range []string{"Figure 4", "conven00(6)", "fft00(104)", "ISEGEN"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("printout missing %q", want)
		}
	}
}

func TestFigure6ISEGENBeatsGenetic(t *testing.T) {
	if testing.Short() {
		t.Skip("AES sweep in -short mode")
	}
	o := DefaultOptions()
	for _, nise := range []int{1, 4} {
		pts := Figure6(o, nise)
		if len(pts) != len(IOSweep) {
			t.Fatalf("nise %d: got %d points, want %d", nise, len(pts), len(IOSweep))
		}
		wins, geoRatio := 0, 1.0
		for _, p := range pts {
			if p.ISEGEN >= p.Genetic-1e-9 {
				wins++
			}
			geoRatio *= p.ISEGEN / p.Genetic
		}
		// Paper shape: ISEGEN dominates the genetic solution on AES
		// (on average ~40% more speedup). Require ISEGEN to win at
		// most points and on the sweep average.
		if wins < len(pts)-1 {
			t.Errorf("nise %d: ISEGEN wins only %d/%d points: %+v", nise, wins, len(pts), pts)
		}
		if geoRatio < 1 {
			t.Errorf("nise %d: ISEGEN below genetic on average: %+v", nise, pts)
		}
	}
}

func TestFigure7InstanceCountsDecrease(t *testing.T) {
	if testing.Short() {
		t.Skip("AES sweep in -short mode")
	}
	rows := Figure7(DefaultOptions())
	if len(rows) != len(IOSweep) {
		t.Fatalf("got %d rows, want %d", len(rows), len(IOSweep))
	}
	first := func(r Fig7Row) int {
		if len(r.Instances) == 0 {
			return 0
		}
		return r.Instances[0]
	}
	// Paper shape: the first cut has many more instances under tight
	// I/O constraints than under relaxed ones (12 vs 4 in the paper;
	// our reuse-aware selection softens the middle of the sweep but the
	// extremes must stay far apart).
	tight := first(rows[0])  // (2,1)
	relax := first(rows[3])  // (4,2)
	widest := first(rows[5]) // (8,4)
	if !(tight >= relax && relax >= widest && tight > widest) {
		t.Errorf("instance counts not decreasing: (2,1)=%d (4,2)=%d (8,4)=%d", tight, relax, widest)
	}
	if tight < 2*widest {
		t.Errorf("tight-I/O reuse should far exceed the widest constraint (got %d vs %d)", tight, widest)
	}
	var buf bytes.Buffer
	PrintFigure7(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("printout missing header")
	}
}

func TestSimulationValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	rows, err := SimulationValidation(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Simulated <= 1 {
			t.Errorf("%s: simulated speedup %v, want > 1", r.Benchmark, r.Simulated)
		}
		// The analytic estimate uses the same integer AFU cycles as
		// the simulator; they must agree tightly.
		if r.RelErr > 0.02 {
			t.Errorf("%s: estimate %.3f vs simulated %.3f (relerr %.1f%%)",
				r.Benchmark, r.Estimated, r.Simulated, 100*r.RelErr)
		}
	}
}

func TestEnergyCodeSize(t *testing.T) {
	if testing.Short() {
		t.Skip("energy sweep in -short mode")
	}
	rows, err := EnergyCodeSize(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CodeSizeRatio >= 1 || r.CodeSizeRatio <= 0 {
			t.Errorf("%s: code size ratio %v, want in (0,1)", r.Benchmark, r.CodeSizeRatio)
		}
		if r.EnergyRatio >= 1 || r.EnergyRatio <= 0 {
			t.Errorf("%s: energy ratio %v, want in (0,1)", r.Benchmark, r.EnergyRatio)
		}
	}
	var buf bytes.Buffer
	PrintEnergy(&buf, rows)
	if !strings.Contains(buf.String(), "energy") {
		t.Error("printout missing header")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	o := DefaultOptions()
	weights := AblationWeights(o)
	if len(weights) != 6 {
		t.Fatalf("got %d weight variants, want 6", len(weights))
	}
	full := weights[0].GeoMean
	if full <= 1 {
		t.Fatalf("full config geomean %v, want > 1", full)
	}
	// Dropping the merit term must hurt: the search loses its objective.
	for _, r := range weights {
		if r.Variant == "-merit (α1=0)" && r.GeoMean > full {
			t.Errorf("dropping merit should not help: %v vs full %v", r.GeoMean, full)
		}
	}

	passes := AblationPasses(o)
	if len(passes) == 0 {
		t.Fatal("no pass-count rows")
	}
	// More passes never hurt dramatically: max within 25% of min beyond
	// pass 3 (the paper: 5 passes suffice).
	var p3 float64
	for _, r := range passes {
		if r.Variant == "passes=3" {
			p3 = r.GeoMean
		}
	}
	for _, r := range passes {
		if r.Variant == "passes=8" && r.GeoMean < 0.9*p3 {
			t.Errorf("more passes regressed badly: %v vs %v", r.GeoMean, p3)
		}
	}

	restarts := AblationRestarts(o)
	if len(restarts) != 4 {
		t.Fatalf("got %d restart rows, want 4", len(restarts))
	}
	// Dispersed restarts are the large-DFG fix: 4 restarts must beat the
	// single-trajectory baseline on AES.
	if restarts[2].GeoMean <= restarts[0].GeoMean {
		t.Errorf("restarts=4 (%v) should beat restarts=1 (%v) on AES",
			restarts[2].GeoMean, restarts[0].GeoMean)
	}
}
