package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAreaStudyMonotoneWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("area sweep in -short mode")
	}
	o := DefaultOptions()
	budgets := []float64{1000, 8000, 32000, 0}
	rows, err := AreaStudy(o, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*len(budgets) {
		t.Fatalf("got %d rows, want %d", len(rows), 8*len(budgets))
	}
	// Per benchmark: used area within budget and speedup non-decreasing
	// with the budget.
	byBench := map[string][]AreaRow{}
	for _, r := range rows {
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
	}
	for name, rs := range byBench {
		prev := 0.0
		for i, r := range rs {
			if r.Budget > 0 && r.UsedArea > r.Budget {
				t.Errorf("%s: used %v gates over budget %v", name, r.UsedArea, r.Budget)
			}
			if r.Speedup < prev-1e-9 {
				t.Errorf("%s: speedup decreased with larger budget: %v after %v (row %d)",
					name, r.Speedup, prev, i)
			}
			prev = r.Speedup
			if r.Speedup < 1 {
				t.Errorf("%s: speedup %v below 1", name, r.Speedup)
			}
		}
		// Unlimited budget must reach a real speedup.
		if last := rs[len(rs)-1]; last.Speedup <= 1.05 {
			t.Errorf("%s: unlimited-budget speedup %v too low", name, last.Speedup)
		}
	}
	var buf bytes.Buffer
	PrintAreaStudy(&buf, rows)
	if !strings.Contains(buf.String(), "area budgets") {
		t.Error("printout missing header")
	}
}
