package obs

import (
	"sync"
	"time"
)

// DefaultBuckets are the fixed latency/queue-wait bucket boundaries in
// seconds. They are part of the metrics contract: every histogram this
// package produces uses exactly these boundaries, so aggregating
// histograms across shards (the planned distributed tier) is a vector
// add of the count arrays — no re-bucketing, no interpolation. Do not
// change them without versioning the metrics schema.
var DefaultBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// numBuckets mirrors len(DefaultBuckets); the init check below keeps the
// two in sync.
const numBuckets = 14

func init() {
	if len(DefaultBuckets) != numBuckets {
		panic("obs: numBuckets out of sync with DefaultBuckets")
	}
}

// Histogram counts observations into DefaultBuckets. It is not
// goroutine-safe on its own; Aggregate serializes access.
type Histogram struct {
	counts [numBuckets + 1]int64
	count  int64
	sumNs  int64
}

// Observe adds one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(DefaultBuckets) && s > DefaultBuckets[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sumNs += d.Nanoseconds()
}

// Snapshot copies the histogram into its serializable form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets:    DefaultBuckets,
		Counts:     make([]int64, len(h.counts)),
		Count:      h.count,
		SumSeconds: float64(h.sumNs) / 1e9,
	}
	copy(s.Counts, h.counts[:])
	return s
}

// HistogramSnapshot is the wire form of a histogram: per-bucket
// (non-cumulative) counts aligned with Buckets, plus one overflow slot —
// len(Counts) == len(Buckets)+1, with the last slot counting
// observations above the largest boundary (+Inf). Two snapshots with
// equal Buckets merge by adding Counts, Count and SumSeconds.
type HistogramSnapshot struct {
	Buckets    []float64 `json:"buckets_seconds"`
	Counts     []int64   `json:"counts"`
	Count      int64     `json:"count"`
	SumSeconds float64   `json:"sum_seconds"`
}

// Aggregate is the server-side cumulative view: counters summed over
// every completed job, per-engine job-latency histograms, and per-tenant
// queue-wait histograms. One mutex guards it all — folds happen once per
// job, never on a hot path.
type Aggregate struct {
	mu        sync.Mutex
	counters  CounterSnapshot
	spanDrops int64
	latency   map[string]*Histogram // by engine (algo)
	wait      map[string]*Histogram // by tenant
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		latency: make(map[string]*Histogram),
		wait:    make(map[string]*Histogram),
	}
}

// ObserveJob folds one completed job in: the recorder's counters and
// span drops, the job's run latency under its engine, and its queue wait
// under its tenant. rec may be nil (counters skipped).
func (a *Aggregate) ObserveJob(rec *Recorder, engine, tenant string, latency, wait time.Duration) {
	c := rec.Counters()
	drops := rec.Dropped()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counters.Add(c)
	a.spanDrops += drops
	h := a.latency[engine]
	if h == nil {
		h = &Histogram{}
		a.latency[engine] = h
	}
	h.Observe(latency)
	h = a.wait[tenant]
	if h == nil {
		h = &Histogram{}
		a.wait[tenant] = h
	}
	h.Observe(wait)
}

// Counters snapshots the cumulative counters.
func (a *Aggregate) Counters() CounterSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters
}

// SpanDrops reports the cumulative span-ring overwrites across jobs.
func (a *Aggregate) SpanDrops() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spanDrops
}

// Latency snapshots the per-engine job-latency histograms.
func (a *Aggregate) Latency() map[string]HistogramSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return snapshotMap(a.latency)
}

// QueueWait snapshots the per-tenant queue-wait histograms.
func (a *Aggregate) QueueWait() map[string]HistogramSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return snapshotMap(a.wait)
}

func snapshotMap(m map[string]*Histogram) map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(m))
	for k, h := range m {
		out[k] = h.Snapshot()
	}
	return out
}
