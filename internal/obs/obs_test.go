package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// A nil recorder must accept every operation; this is the no-op path the
// whole pipeline leans on.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	id := r.Start(0, KindJob, "x")
	if id != 0 {
		t.Fatalf("nil Start = %d, want 0", id)
	}
	r.End(id)
	r.Add(KLToggles, 5)
	if c := r.Counters(); c != (CounterSnapshot{}) {
		t.Fatalf("nil Counters = %v, want zero", c)
	}
	if s := r.Spans(); s != nil {
		t.Fatalf("nil Spans = %v, want nil", s)
	}
	if err := r.WriteSpans(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteSpans: %v", err)
	}
	ctx, ref := StartSpan(context.Background(), KindJob, "x")
	if ref.ID() != 0 {
		t.Fatalf("no-recorder StartSpan issued span %d", ref.ID())
	}
	ref.End()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext on bare ctx = %v", got)
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	r := NewRecorder(16)
	ctx := WithRecorder(context.Background(), r)
	ctx, job := StartSpan(ctx, KindJob, "isegen")
	cctx, blk := StartSpan(ctx, KindBlock, "b0")
	_, eng := StartSpan(cctx, KindEngine, "ISEGEN")
	eng.End()
	blk.End()
	job.End()
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != 0 || spans[0].Kind != KindJob {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("block parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Parent != spans[1].ID {
		t.Fatalf("engine parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
	for _, s := range spans {
		if s.EndNs < s.StartNs || s.EndNs == 0 {
			t.Fatalf("span %d not closed monotonically: %+v", s.ID, s)
		}
	}
}

// The ring must wrap without growing, counting the overwritten spans.
func TestSpanRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		id := r.Start(0, KindSubtree, "t")
		r.End(id)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Fatalf("retained IDs %d..%d, want 7..10", spans[0].ID, spans[3].ID)
	}
	if d := r.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	// Ending an already-overwritten span must not corrupt the slot that
	// replaced it.
	r.End(SpanID(3))
	if got := r.Spans(); len(got) != 4 {
		t.Fatalf("stale End changed retention: %d spans", len(got))
	}
}

// spanCap 0 disables spans entirely (the counters-only mode the bench
// harness uses) while counters keep working.
func TestCountersOnlyRecorder(t *testing.T) {
	r := NewRecorder(0)
	ctx := WithRecorder(context.Background(), r)
	ctx2, ref := StartSpan(ctx, KindJob, "x")
	if ref.ID() != 0 {
		t.Fatalf("spans-disabled recorder issued span %d", ref.ID())
	}
	if ctx2 != ctx {
		t.Fatal("spans-disabled StartSpan should return ctx unchanged")
	}
	r.Add(ExactExplored, 42)
	if got := r.Counters().Get(ExactExplored); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterSnapshotMapAndAdd(t *testing.T) {
	var a, b CounterSnapshot
	a[KLToggles] = 3
	b[KLToggles] = 4
	b[CacheHits] = 1
	a.Add(b)
	m := a.Map()
	if m["kl_toggles"] != 7 || m["cache_hits"] != 1 || len(m) != 2 {
		t.Fatalf("merged map = %v", m)
	}
	for _, c := range AllCounters() {
		if strings.ContainsAny(c.String(), " -({") {
			t.Fatalf("counter %d has non-exposition name %q", c, c.String())
		}
	}
}

func TestWriteSpansNDJSON(t *testing.T) {
	r := NewRecorder(8)
	id := r.Start(0, KindJob, "j")
	r.End(id)
	r.Add(KLProbes, 9)
	var buf bytes.Buffer
	if err := r.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, line["type"].(string))
	}
	if len(types) != 2 || types[0] != "span" || types[1] != "trace_summary" {
		t.Fatalf("line types = %v", types)
	}
}

func TestHistogramBucketsAndMerge(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(3 * time.Millisecond)   // ≤5ms
	h.Observe(time.Minute)            // +Inf overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Counts) != len(s.Buckets)+1 {
		t.Fatalf("counts len %d, buckets len %d", len(s.Counts), len(s.Buckets))
	}
	if s.Counts[0] != 1 || s.Counts[2] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", s.Counts)
	}
	// Shard aggregation is a vector add over equal buckets.
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestAggregateFold(t *testing.T) {
	a := NewAggregate()
	r := NewRecorder(2)
	r.Add(ExactExplored, 10)
	for i := 0; i < 5; i++ { // wrap the 2-slot ring
		r.End(r.Start(0, KindSubtree, ""))
	}
	a.ObserveJob(r, "exact", "alice", 10*time.Millisecond, 2*time.Millisecond)
	a.ObserveJob(nil, "exact", "bob", 20*time.Millisecond, time.Millisecond)
	if got := a.Counters().Get(ExactExplored); got != 10 {
		t.Fatalf("aggregate explored = %d", got)
	}
	if a.SpanDrops() != 3 {
		t.Fatalf("span drops = %d, want 3", a.SpanDrops())
	}
	lat := a.Latency()
	if lat["exact"].Count != 2 {
		t.Fatalf("latency count = %d", lat["exact"].Count)
	}
	if w := a.QueueWait(); w["alice"].Count != 1 || w["bob"].Count != 1 {
		t.Fatalf("wait histograms = %v", w)
	}
}

func TestPromWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Gauge("x_depth", "queue depth.", Sample{Value: 3})
	p.Counter("x_jobs_total", "jobs.", Sample{Labels: Label("tenant", `a"b\c`), Value: 7})
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Minute)
	p.Histogram("x_latency_seconds", "latency.", HistogramSeries{Labels: Label("engine", "exact"), Snap: h.Snapshot()})
	var snap CounterSnapshot
	snap[KLToggles] = 1
	p.CounterFamilies("x", snap)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE x_depth gauge\nx_depth 3\n",
		`x_jobs_total{tenant="a\"b\\c"} 7`,
		"# TYPE x_latency_seconds histogram",
		`x_latency_seconds_bucket{engine="exact",le="0.0025"} 1`,
		`x_latency_seconds_bucket{engine="exact",le="+Inf"} 2`,
		`x_latency_seconds_count{engine="exact"} 2`,
		"x_kl_toggles_total 1",
		"x_exact_explored_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}
