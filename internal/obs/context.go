package obs

import "context"

type recorderKey struct{}
type parentKey struct{}

// WithRecorder returns a context carrying the recorder. A nil recorder
// returns ctx unchanged, so the disabled path never allocates a context
// link.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext returns the context's recorder, or nil. All Recorder
// methods are nil-safe, so callers use the result directly.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// ParentSpan returns the enclosing span carried by the context, or 0.
func ParentSpan(ctx context.Context) SpanID {
	id, _ := ctx.Value(parentKey{}).(SpanID)
	return id
}

// WithParentSpan returns a context whose future spans attach under id.
// Used by callers that open a span before they have the context the work
// will run under (the serving queue opens the job span at submit time).
func WithParentSpan(ctx context.Context, id SpanID) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, parentKey{}, id)
}

// SpanRef pairs a recorder with an open span so callers can defer End
// without carrying both. The zero SpanRef is the no-op reference.
type SpanRef struct {
	r  *Recorder
	id SpanID
}

// ID returns the referenced span's ID (0 for the no-op reference).
func (s SpanRef) ID() SpanID { return s.id }

// End closes the referenced span. Safe on the zero SpanRef.
func (s SpanRef) End() { s.r.End(s.id) }

// StartSpan opens a span under the context's current parent and returns
// a derived context (carrying the new span as parent) plus a SpanRef to
// close it. When the context has no recorder — or the recorder has spans
// disabled — it returns ctx unchanged and the zero SpanRef: no
// allocation, no lock, two branches.
func StartSpan(ctx context.Context, kind, name string) (context.Context, SpanRef) {
	r := FromContext(ctx)
	if r == nil || len(r.spans) == 0 {
		return ctx, SpanRef{}
	}
	id := r.Start(ParentSpan(ctx), kind, name)
	return context.WithValue(ctx, parentKey{}, id), SpanRef{r: r, id: id}
}
