// Package obs is the search pipeline's instrumentation layer: tracing
// spans, engine-internal counters, and fixed-bucket histograms.
//
// The central type is Recorder. A nil *Recorder is a valid no-op — every
// method nil-checks its receiver — so instrumented code records
// unconditionally and the disabled path costs one predictable branch.
// Hot loops (K-L toggles, branch-and-bound node expansion) do not even
// pay that: they tally into plain integers they already own and flush the
// totals at coarse boundaries (end of a trajectory, end of a search), so
// the per-iteration cost of observability is a register increment whether
// recording is on or off.
//
// The enabled path must not perturb results. Nothing a Recorder does
// feeds back into search decisions: counters are write-only from the
// engines' perspective, spans only read the clock, and the context
// plumbing adds values without touching cancellation. The determinism
// tests pin this by running the full service pipeline with recording on
// and off and requiring byte-identical output streams.
//
// Spans land in a fixed-size ring buffer (per job, not global), so a
// pathological run cannot grow memory without bound: once the ring wraps,
// the oldest spans are overwritten and counted in Dropped. Timestamps are
// nanoseconds on the monotonic clock since the recorder's creation, so
// they order correctly across goroutines and survive wall-clock jumps.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds, from the outside of the pipeline in: a job covers one
// request (or one CLI invocation), queue covers submit-to-run wait,
// block covers one basic block's search, engine covers one search-engine
// run, search covers one exact branch-and-bound invocation, trajectory
// covers one K-L restart, and subtree covers one parallel branch-and-
// bound prefix task.
const (
	KindJob        = "job"
	KindQueue      = "queue"
	KindBlock      = "block"
	KindEngine     = "engine"
	KindSearch     = "search"
	KindTrajectory = "trajectory"
	KindSubtree    = "subtree"
)

// DefaultSpanCap is the default span ring capacity. It matches the exact
// engine's subtree-task bound, so even a fully fanned-out search cannot
// wrap the ring with subtree spans alone.
const DefaultSpanCap = 4096

// SpanID identifies a span within one Recorder. 0 means "no span" and is
// what every nil-safe operation returns on the disabled path.
type SpanID uint64

// Span is one recorded interval. Start/End are nanoseconds on the
// monotonic clock since the recorder's epoch; End is 0 while the span is
// open. Parent links spans into the job → block → engine →
// trajectory/subtree tree.
type Span struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Name    string `json:"name,omitempty"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// Counter names one engine-internal tally. The inventory is fixed at
// compile time so snapshots are plain arrays (no map churn on the flush
// path) and the Prometheus family names are stable.
type Counter int

const (
	// K-L heuristic (internal/core).
	KLToggles           Counter = iota // node moves applied across trajectories
	KLProbes                           // gain probes (cut evaluations without commitment)
	KLCPIncremental                    // critical-path updates served by the incremental fast path
	KLCPFullSweeps                     // critical-path updates that fell back to a full relabel sweep
	KLGainRebuilds                     // incremental gain-context rebuilds (full relabels)
	KLGainCacheHits                    // probes served from the cached digest table
	KLGainCacheMisses                  // probe digests recomputed after locality invalidation
	KLCPCriticalInc                    // critical-node removals handled without a full sweep
	KLSetCutIncremental                // SetCut calls applied via the small-delta path
	KLPoolHits                         // trajectory workspaces reused from the pool
	KLPoolMisses                       // trajectory workspaces built fresh

	// Exact branch-and-bound (internal/exact).
	ExactExplored     // search-tree nodes expanded
	ExactLocalPrunes  // subtrees cut by the worker-local best
	ExactSharedPrunes // subtrees cut by the shared (cross-worker/seeded) bound
	ExactBoundRaises  // successful best-bound publications by the search itself
	ExactSubtreeTasks // parallel prefix tasks claimed and replayed

	// Genetic baseline (internal/genetic).
	GeneticGenerations
	GeneticEvaluations

	// Racing meta-engine (internal/search).
	RacingSeeds // heuristic answers that successfully tightened the exact bound

	// Cut-costing cache (per-job deltas folded in by the caller).
	CacheHits
	CacheMisses

	// Store persistence resilience (serving layer): post-job flush
	// attempts that were retried after a transient failure, and flushes
	// that still failed after every retry (the costings stay dirty in
	// memory for the next job's flush).
	StoreFlushRetries
	StoreFlushFailures

	numCounters
)

// counterNames are the stable exposition names, index-aligned with the
// Counter constants. Prometheus families append a _total suffix.
var counterNames = [numCounters]string{
	"kl_toggles",
	"kl_probes",
	"kl_cp_incremental",
	"kl_cp_full_sweeps",
	"kl_gain_rebuilds",
	"kl_gaincache_hits",
	"kl_gaincache_misses",
	"kl_cp_critical_inc",
	"kl_setcut_incremental",
	"kl_pool_hits",
	"kl_pool_misses",
	"exact_explored",
	"exact_local_prunes",
	"exact_shared_prunes",
	"exact_bound_raises",
	"exact_subtree_tasks",
	"genetic_generations",
	"genetic_evaluations",
	"racing_seed_publications",
	"cache_hits",
	"cache_misses",
	"store_flush_retries",
	"store_flush_failures",
}

// String returns the counter's stable exposition name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// AllCounters lists every counter in exposition order.
func AllCounters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// CounterSnapshot is a point-in-time copy of every counter.
type CounterSnapshot [numCounters]int64

// Get returns one counter's value.
func (s CounterSnapshot) Get(c Counter) int64 {
	if c < 0 || c >= numCounters {
		return 0
	}
	return s[c]
}

// Add accumulates another snapshot into this one (the shard-aggregation
// primitive: merging two recorders' counters is a vector add).
func (s *CounterSnapshot) Add(o CounterSnapshot) {
	for i := range s {
		s[i] += o[i]
	}
}

// Map returns the non-zero counters keyed by exposition name — the shape
// the bench JSON and the metrics endpoint serialize.
func (s CounterSnapshot) Map() map[string]int64 {
	out := make(map[string]int64)
	for i, v := range s {
		if v != 0 {
			out[counterNames[i]] = v
		}
	}
	return out
}

// Recorder collects one job's spans and counters. The zero value is not
// usable; construct with NewRecorder. A nil *Recorder is the no-op
// recorder: every method returns immediately.
//
// Counters are lock-free (atomic adds); spans take a mutex, which is fine
// because spans are created at coarse granularity (per trajectory, per
// subtree task, per block), never per inner-loop iteration.
type Recorder struct {
	epoch    time.Time
	counters [numCounters]atomic.Int64

	mu      sync.Mutex
	spans   []Span // fixed-size ring, slot = (id-1) % cap; ID 0 = empty
	next    uint64 // last issued span ID
	dropped int64  // spans overwritten by ring wrap
}

// NewRecorder returns a recorder whose span ring holds spanCap spans
// (negative means DefaultSpanCap; 0 disables span recording entirely —
// counters only, which is what the benchmark harness uses so span
// bookkeeping never pollutes allocation counts).
func NewRecorder(spanCap int) *Recorder {
	if spanCap < 0 {
		spanCap = DefaultSpanCap
	}
	r := &Recorder{epoch: time.Now()}
	if spanCap > 0 {
		r.spans = make([]Span, spanCap)
	}
	return r
}

// now returns nanoseconds since the recorder's epoch on the monotonic
// clock.
func (r *Recorder) now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Start opens a span and returns its ID (0 on a nil recorder or when
// spans are disabled). parent may be 0 for a root span.
func (r *Recorder) Start(parent SpanID, kind, name string) SpanID {
	if r == nil || len(r.spans) == 0 {
		return 0
	}
	start := r.now()
	r.mu.Lock()
	r.next++
	id := SpanID(r.next)
	slot := (r.next - 1) % uint64(len(r.spans))
	if r.spans[slot].ID != 0 {
		r.dropped++
	}
	r.spans[slot] = Span{ID: id, Parent: parent, Kind: kind, Name: name, StartNs: start}
	r.mu.Unlock()
	return id
}

// End closes the span. Ending a span the ring has already overwritten is
// a silent no-op (it is already counted in Dropped); so is id 0.
func (r *Recorder) End(id SpanID) {
	if r == nil || id == 0 || len(r.spans) == 0 {
		return
	}
	end := r.now()
	r.mu.Lock()
	slot := (uint64(id) - 1) % uint64(len(r.spans))
	if r.spans[slot].ID == id {
		r.spans[slot].EndNs = end
	}
	r.mu.Unlock()
}

// Add tallies n into counter c. Nil-safe and lock-free.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n == 0 || c < 0 || c >= numCounters {
		return
	}
	r.counters[c].Add(n)
}

// Counters snapshots every counter.
func (r *Recorder) Counters() CounterSnapshot {
	var s CounterSnapshot
	if r == nil {
		return s
	}
	for i := range s {
		s[i] = r.counters[i].Load()
	}
	return s
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns the retained spans in creation (ID) order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, 0, len(r.spans))
	for _, s := range r.spans {
		if s.ID != 0 {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// spanLine is the NDJSON wire form of one span.
type spanLine struct {
	Type string `json:"type"`
	Span
}

// WriteSpans emits the retained spans as NDJSON, one
// {"type":"span",...} object per line in ID order, followed by a
// {"type":"trace_summary",...} line carrying the drop count and the
// counter inventory.
func (r *Recorder) WriteSpans(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(spanLine{Type: "span", Span: s}); err != nil {
			return err
		}
	}
	c := r.Counters()
	return enc.Encode(struct {
		Type     string           `json:"type"`
		Spans    int              `json:"spans"`
		Dropped  int64            `json:"dropped"`
		Counters map[string]int64 `json:"counters"`
	}{Type: "trace_summary", Spans: len(r.Spans()), Dropped: r.Dropped(), Counters: c.Map()})
}

// WriteSummary prints a human-readable per-kind aggregate table and the
// non-zero counters.
func (r *Recorder) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	spans := r.Spans()
	type agg struct {
		kind  string
		n     int
		open  int
		total time.Duration
	}
	byKind := map[string]*agg{}
	var order []string
	for _, s := range spans {
		a := byKind[s.Kind]
		if a == nil {
			a = &agg{kind: s.Kind}
			byKind[s.Kind] = a
			order = append(order, s.Kind)
		}
		a.n++
		if s.EndNs == 0 {
			a.open++
		} else {
			a.total += time.Duration(s.EndNs - s.StartNs)
		}
	}
	fmt.Fprintf(w, "%-12s %8s %6s %14s %14s\n", "kind", "count", "open", "total", "mean")
	for _, k := range order {
		a := byKind[k]
		mean := time.Duration(0)
		if closed := a.n - a.open; closed > 0 {
			mean = a.total / time.Duration(closed)
		}
		fmt.Fprintf(w, "%-12s %8d %6d %14s %14s\n", a.kind, a.n, a.open, a.total.Round(time.Microsecond), mean.Round(time.Microsecond))
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(w, "dropped %d spans (ring capacity %d)\n", d, len(r.spans))
	}
	c := r.Counters()
	names := make([]string, 0, len(c))
	m := c.Map()
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "\n%-28s %14s\n", "counter", "value")
		for _, k := range names {
			fmt.Fprintf(w, "%-28s %14d\n", k, m[k])
		}
	}
}
