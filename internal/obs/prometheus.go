package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format (version
// 0.0.4) without a client library: HELP/TYPE headers, label escaping,
// and the cumulative-bucket histogram convention. The first write error
// latches; subsequent calls are no-ops and Err reports it.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Label formats one label pair, escaping the value.
func Label(k, v string) string {
	return k + `="` + escapeLabelValue(v) + `"`
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one labeled sample of a counter or gauge family. Labels is a
// comma-joined list of Label(...) pairs; empty means no labels.
type Sample struct {
	Labels string
	Value  float64
}

func (p *PromWriter) family(name, help, typ string, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if s.Labels == "" {
			p.printf("%s %s\n", name, formatFloat(s.Value))
		} else {
			p.printf("%s{%s} %s\n", name, s.Labels, formatFloat(s.Value))
		}
	}
}

// Counter emits one counter family.
func (p *PromWriter) Counter(name, help string, samples ...Sample) {
	p.family(name, help, "counter", samples)
}

// Gauge emits one gauge family.
func (p *PromWriter) Gauge(name, help string, samples ...Sample) {
	p.family(name, help, "gauge", samples)
}

// HistogramSeries is one labeled histogram within a family.
type HistogramSeries struct {
	Labels string // extra labels (without le); may be empty
	Snap   HistogramSnapshot
}

// Histogram emits one histogram family with the standard cumulative
// _bucket/_sum/_count triplet per series.
func (p *PromWriter) Histogram(name, help string, series ...HistogramSeries) {
	if len(series) == 0 {
		return
	}
	p.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		cum := int64(0)
		for i, c := range s.Snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Snap.Buckets) {
				le = formatFloat(s.Snap.Buckets[i])
			}
			labels := Label("le", le)
			if s.Labels != "" {
				labels = s.Labels + "," + labels
			}
			p.printf("%s_bucket{%s} %d\n", name, labels, cum)
		}
		if s.Labels == "" {
			p.printf("%s_sum %s\n%s_count %d\n", name, formatFloat(s.Snap.SumSeconds), name, s.Snap.Count)
		} else {
			p.printf("%s_sum{%s} %s\n%s_count{%s} %d\n", name, s.Labels, formatFloat(s.Snap.SumSeconds), name, s.Labels, s.Snap.Count)
		}
	}
}

// CounterFamilies emits every engine counter in the snapshot as its own
// single-sample counter family named prefix_<counter>_total. Zero-valued
// families are emitted too: a scrape that shows kl_toggles_total 0 is
// distinguishable from a broken exporter.
func (p *PromWriter) CounterFamilies(prefix string, s CounterSnapshot) {
	for i := Counter(0); i < numCounters; i++ {
		p.Counter(prefix+"_"+counterNames[i]+"_total",
			"Engine-internal counter "+counterNames[i]+" summed over completed jobs.",
			Sample{Value: float64(s[i])})
	}
}

// HistogramFamily emits one histogram family from a by-key snapshot map
// (per-engine latency, per-tenant queue wait), with deterministic series
// order so scrapes diff cleanly.
func (p *PromWriter) HistogramFamily(name, help, labelKey string, m map[string]HistogramSnapshot) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]HistogramSeries, 0, len(keys))
	for _, k := range keys {
		series = append(series, HistogramSeries{Labels: Label(labelKey, k), Snap: m[k]})
	}
	p.Histogram(name, help, series...)
}
