package kernels

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/latency"
)

// TestCriticalBlockSizes pins every benchmark to the critical-basic-block
// node count the paper reports in Figure 4 (and 696 for AES).
func TestCriticalBlockSizes(t *testing.T) {
	for _, spec := range All() {
		if got := spec.App.MaxBlockSize(); got != spec.CriticalSize {
			t.Errorf("%s: critical block has %d nodes, paper reports %d",
				spec.Name, got, spec.CriticalSize)
		}
	}
	if got := AES().MaxBlockSize(); got != 696 {
		t.Errorf("aes: critical block has %d nodes, paper reports 696", got)
	}
}

func TestAllBenchmarksValid(t *testing.T) {
	model := latency.Default()
	apps := []*ir.Application{AES()}
	for _, s := range All() {
		apps = append(apps, s.App)
	}
	for _, app := range apps {
		if len(app.Blocks) < 2 {
			t.Errorf("%s: want at least 2 blocks (hot + support), got %d", app.Name, len(app.Blocks))
		}
		for _, blk := range app.Blocks {
			if err := model.Validate(blk); err != nil {
				t.Errorf("%s/%s: %v", app.Name, blk.Name, err)
			}
			if blk.Freq <= 0 {
				t.Errorf("%s/%s: non-positive frequency", app.Name, blk.Name)
			}
			if blk.LiveOut.Empty() {
				t.Errorf("%s/%s: no live-out values", app.Name, blk.Name)
			}
			// No dead value nodes: every value is consumed or live out.
			// Dead values would let ISE selection earn merit with zero
			// output ports, distorting every experiment.
			for v := 0; v < blk.N(); v++ {
				if !blk.Nodes[v].Op.HasValue() {
					continue
				}
				if len(blk.Uses(v)) == 0 && !blk.LiveOut.Has(v) {
					t.Errorf("%s/%s: node %d (%v) is dead", app.Name, blk.Name, v, blk.Nodes[v].Op)
				}
			}
		}
		// The first block must dominate the dynamic cycle count (it is
		// the kernel the profile says to accelerate).
		model := latency.Default()
		hot := app.Blocks[0]
		hotCycles := hot.Freq * float64(model.BlockSWLat(hot))
		total := 0.0
		for _, blk := range app.Blocks {
			total += blk.Freq * float64(model.BlockSWLat(blk))
		}
		if hotCycles < 0.5*total {
			t.Errorf("%s: critical block holds only %.0f%% of dynamic cycles",
				app.Name, 100*hotCycles/total)
		}
	}
}

// All benchmark blocks must execute without error.
func TestAllBenchmarksExecutable(t *testing.T) {
	apps := []*ir.Application{AES()}
	for _, s := range All() {
		apps = append(apps, s.App)
	}
	for _, app := range apps {
		for _, blk := range app.Blocks {
			in := make([]int32, blk.NumInputs)
			for k := range in {
				in[k] = int32(k + 1)
			}
			mem := ir.NewMapMemory()
			for a := int32(0); a < 4096; a++ {
				mem.Store(a, (a*31+7)&0xff)
			}
			if _, err := blk.Eval(in, mem); err != nil {
				t.Errorf("%s/%s: Eval: %v", app.Name, blk.Name, err)
			}
		}
	}
}

func TestConven00Semantics(t *testing.T) {
	app := Conven00()
	blk := app.Blocks[0]
	// state=0b1010, bit=1: s2 = 0b10101.
	out, err := blk.EvalOutputs([]int32{0b1010, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := int32(0b10101)
	o0 := s2 ^ (s2 >> 2)
	o1 := o0 ^ (s2 >> 5)
	if out[1] != s2 {
		t.Errorf("state = %d, want %d", out[1], s2)
	}
	if out[5] != o1 {
		t.Errorf("encoded = %d, want %d", out[5], o1)
	}
}

// xtimeRef is the GF(2^8) doubling reference.
func xtimeRef(b int32) int32 {
	r := (b << 1) & 0xff
	if b&0x80 != 0 {
		r ^= 0x1b
	}
	return r
}

// TestAESRoundSemantics validates the full 3-round DFG against an
// independent byte-level reference using the same (arbitrary) S-box.
func TestAESRoundSemantics(t *testing.T) {
	app := AES()
	blk := app.Blocks[0]

	const sboxBase, keyBase = 1000, 2000
	mem := ir.NewMapMemory()
	sboxAt := func(b int32) int32 { return (b*167 + 89) & 0xff }
	for i := int32(0); i < 256; i++ {
		mem.Store(sboxBase+i, sboxAt(i))
	}
	keyAt := func(off int32) int32 { return (off*53 + 11) & 0xff }
	for off := int32(0); off < 48; off++ {
		mem.Store(keyBase+off, keyAt(off))
	}

	words := []int32{0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c}
	inputs := append(append([]int32{}, words...), sboxBase, keyBase)
	vals, err := blk.Eval(inputs, mem)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: same unroll in plain Go.
	var st [16]int32
	for i := 0; i < 16; i++ {
		st[i] = (words[i/4] >> (8 * (i % 4))) & 0xff
	}
	keyOff := int32(0)
	for r := 0; r < 3; r++ {
		var sb [16]int32
		for i := 0; i < 16; i++ {
			sb[i] = sboxAt(st[i])
		}
		var sr [16]int32
		for c := 0; c < 4; c++ {
			for row := 0; row < 4; row++ {
				sr[4*c+row] = sb[4*((c+row)%4)+row]
			}
		}
		var mc [16]int32
		for c := 0; c < 4; c++ {
			a0, a1, a2, a3 := sr[4*c], sr[4*c+1], sr[4*c+2], sr[4*c+3]
			x0, x1, x2, x3 := xtimeRef(a0), xtimeRef(a1), xtimeRef(a2), xtimeRef(a3)
			mc[4*c] = x0 ^ x1 ^ a1 ^ a2 ^ a3
			mc[4*c+1] = a0 ^ x1 ^ x2 ^ a2 ^ a3
			mc[4*c+2] = a0 ^ a1 ^ x2 ^ x3 ^ a3
			mc[4*c+3] = x0 ^ a0 ^ a1 ^ a2 ^ x3
		}
		for i := 0; i < 16; i++ {
			st[i] = mc[i] ^ keyAt(keyOff)
			keyOff++
		}
	}

	// Collect the 16 live-out values in node order; they are the final
	// round's AddRoundKey XORs emitted in state order.
	var liveVals []int32
	blk.LiveOut.ForEach(func(v int) bool {
		liveVals = append(liveVals, vals[v])
		return true
	})
	if len(liveVals) != 16 {
		t.Fatalf("AES live-outs = %d, want 16", len(liveVals))
	}
	for i := 0; i < 16; i++ {
		if liveVals[i] != st[i] {
			t.Errorf("state byte %d = %#x, reference %#x", i, liveVals[i], st[i])
		}
	}
}

// TestADPCMCoderDecoderRoundTrip quantizes two samples and reconstructs
// them, checking the decoded predictor tracks the input within one step.
func TestADPCMCoderDecoderRoundTrip(t *testing.T) {
	coder := ADPCMCoder().Blocks[0]
	decoder := ADPCMDecoder().Blocks[0]

	const idxTab, stepTab, outBuf = 100, 200, 300
	mem := ir.NewMapMemory()
	indexTable := []int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}
	mem.Preload(idxTab, indexTable)
	// A geometric-ish step table segment.
	steps := make([]int32, 89)
	s := int32(7)
	for i := range steps {
		steps[i] = s
		s += s >> 3
		if s > 32767 {
			s = 32767
		}
	}
	mem.Preload(stepTab, steps)

	// coder inputs: sample0, sample1, valpred, index, step, idxTab,
	// stepTab, outPtr, count, errAcc
	cin := []int32{1000, 1010, 0, 0, steps[0], idxTab, stepTab, outBuf, 16, 0}
	cvals, err := coder.Eval(cin, mem)
	if err != nil {
		t.Fatal(err)
	}
	packed := mem.Load(outBuf)
	if packed == 0 {
		t.Fatal("coder stored nothing")
	}
	c0 := packed & 0xf
	c1 := (packed >> 4) & 0xf

	// decoder inputs: code0..2, valpred, index, step, idxTab, stepTab,
	// outPtr, count (decode the two real codes plus a zero code).
	din := []int32{c0, c1, 0, 0, 0, steps[0], idxTab, stepTab, outBuf + 1, 16}
	dvals, err := decoder.Eval(din, mem)
	if err != nil {
		t.Fatal(err)
	}
	_ = cvals
	_ = dvals
	// After decoding both codes the predictor must approach the inputs.
	var lastPred int32
	decoder.LiveOut.ForEach(func(v int) bool {
		lastPred = dvals[v]
		return false // p0 is the first live-out; enough to check trend
	})
	if lastPred <= 0 {
		t.Errorf("decoded predictor %d should move toward the 1000-ish inputs", lastPred)
	}
}
