// Package kernels builds the benchmark applications of the paper's
// evaluation as IR data-flow graphs: EEMBC telecom kernels (conven00,
// fbital00, viterb00, autcor00, fft00), MediaBench ADPCM coder/decoder,
// and AES.
//
// The paper extracts these DFGs from C sources through MachSUIF; here each
// kernel's critical inner-loop body is written directly in the IR builder,
// sized to the paper's reported critical-basic-block node counts (shown in
// parentheses in Figure 4: conven00(6), fbital00(20), viterb00(23),
// autcor00(25), adpcm_decoder(82), adpcm_coder(96), fft00(104), aes(696)).
// Array accesses appear as load/store nodes, which are AFU barriers exactly
// as in the paper. Execution frequencies are synthetic profile weights
// reflecting each kernel's loop structure (the critical block dominates).
//
// Every application also carries one or two small supporting blocks so the
// multi-cut driver's block selection is exercised.
package kernels

import (
	"fmt"

	"repro/internal/ir"
)

// Spec pairs a benchmark application with the critical-block size the
// paper reports for it.
type Spec struct {
	Name string
	App  *ir.Application
	// CriticalSize is the node count of the largest basic block,
	// matching the number in parentheses in the paper's Figure 4.
	CriticalSize int
}

// All returns the seven Figure 4 benchmarks in the paper's order
// (increasing critical-block size). AES is separate (Figures 6 and 7).
func All() []Spec {
	return []Spec{
		{"conven00", Conven00(), 6},
		{"fbital00", Fbital00(), 20},
		{"viterb00", Viterb00(), 23},
		{"autcor00", Autcor00(), 25},
		{"adpcm_decoder", ADPCMDecoder(), 82},
		{"adpcm_coder", ADPCMCoder(), 96},
		{"fft00", FFT00(), 104},
	}
}

// withSupport wraps the hot kernel block with a "rest of the application"
// block (buffer management, call overhead, I/O marshalling — dominated by
// memory traffic, so ISE acceleration gains little there) plus a tiny
// setup block. restFrac is the fraction of dynamic cycles spent outside
// the kernel; it models the profile weights the paper obtains from
// MachSUIF instrumentation and keeps whole-application speedups in the
// realistic Amdahl regime.
func withSupport(name string, hot *ir.Block, restFrac float64) *ir.Application {
	// The glue block is kept smaller than every kernel's critical block
	// (5 nodes, memory-dominated) so the critical-block size reported by
	// MaxBlockSize stays the kernel's.
	rb := ir.NewBuilder(name+"_glue", 1) // frequency fixed up below
	src, dst, n := rb.Input("src"), rb.Input("dst"), rb.Input("n")
	a0 := rb.Add(src, n)          // address arithmetic
	v0 := rb.Load(a0)             // copy in
	rb.Store(dst, v0)             // copy out
	nn := rb.SubI(n, 1)           // loop bookkeeping
	gd := rb.CmpGT(nn, rb.Imm(0)) //
	rb.LiveOut(nn, gd)
	rest := rb.MustBuild()

	sb := ir.NewBuilder(name+"_setup", 1)
	base, count := sb.Input("base"), sb.Input("count")
	end := sb.Add(base, count)
	guard := sb.CmpLT(base, end)
	sb.LiveOut(end, guard)
	setup := sb.MustBuild()

	// Fix the glue-block frequency so it accounts for restFrac of the
	// application's dynamic cycles (using the default latency model's
	// relative costs: the exact model only shifts the split slightly).
	hotCycles := hot.Freq * float64(approxCycles(hot))
	restCycles := hotCycles * restFrac / (1 - restFrac)
	rest.Freq = restCycles / float64(approxCycles(rest))

	return &ir.Application{Name: name, Blocks: []*ir.Block{hot, rest, setup}}
}

// approxCycles estimates a block's software latency with the conventional
// single-issue costs (mul 3, load 2, others 1), mirroring latency.Default
// without importing it (kernels must stay model-agnostic).
func approxCycles(b *ir.Block) int {
	total := 0
	for i := range b.Nodes {
		switch b.Nodes[i].Op {
		case ir.OpMul:
			total += 3
		case ir.OpLoad:
			total += 2
		default:
			total++
		}
	}
	return total
}

// Conven00 is the EEMBC convolutional encoder kernel: the inner loop
// shifts the encoder state register and derives two generator-polynomial
// output bits. Critical block: 6 nodes.
func Conven00() *ir.Application {
	bu := ir.NewBuilder("conven00_enc", 4096)
	state, bit := bu.Input("state"), bu.Input("bit")
	s1 := bu.ShlI(state, 1) // shift register
	s2 := bu.Or(s1, bit)    // insert input bit
	t1 := bu.ShrLI(s2, 2)   // tap at delay 2
	o0 := bu.Xor(s2, t1)    // generator G0
	t2 := bu.ShrLI(s2, 5)   // tap at delay 5
	o1 := bu.Xor(o0, t2)    // generator G1
	bu.LiveOut(s2, o1)
	return withSupport("conven00", bu.MustBuild(), 0.45)
}

// Fbital00 is the EEMBC DSL bit-allocation kernel: two unrolled carriers
// of the water-filling loop, each clamping the per-carrier bit load and
// folding it into the running total, followed by the margin update.
// Critical block: 20 nodes.
func Fbital00() *ir.Application {
	bu := ir.NewBuilder("fbital00_alloc", 2048)
	pow0, pow1 := bu.Input("pow0"), bu.Input("pow1")
	noise, margin := bu.Input("noise"), bu.Input("margin")
	total, budget := bu.Input("total"), bu.Input("budget")

	carrier := func(pow ir.Value, tot ir.Value) (ir.Value, ir.Value) {
		snr := bu.Sub(pow, noise)       // 1
		adj := bu.Sub(snr, margin)      // 2
		scaled := bu.ShrAI(adj, 3)      // 3
		lo := bu.Max(scaled, bu.Imm(0)) // 4
		hi := bu.Min(lo, bu.Imm(15))    // 5
		odd := bu.AndI(hi, 1)           // 6
		even := bu.Sub(hi, odd)         // 7: round to even bit load
		return even, bu.Add(tot, even)  // 8
	}
	b0, t0 := carrier(pow0, total)
	_, t1 := carrier(pow1, t0)

	over := bu.Sub(t1, budget)            // 17
	cmp := bu.CmpGT(over, bu.Imm(0))      // 18
	step := bu.ShrAI(over, 1)             // 19
	nm := bu.Select(cmp, step, bu.Imm(0)) // 20: margin correction
	bu.LiveOut(b0, t1, nm)
	return withSupport("fbital00", bu.MustBuild(), 0.35)
}

// Viterb00 is the EEMBC Viterbi decoder kernel: one add-compare-select
// butterfly pair with branch-metric computation and decision packing.
// Critical block: 23 nodes.
func Viterb00() *ir.Application {
	bu := ir.NewBuilder("viterb00_acs", 2048)
	pm0, pm1 := bu.Input("pm0"), bu.Input("pm1")
	r0, r1 := bu.Input("r0"), bu.Input("r1")
	s0, s1 := bu.Input("s0"), bu.Input("s1")

	// Branch metrics |r - s| via max of the two differences.
	bm := func(r, s ir.Value) ir.Value {
		d0 := bu.Sub(r, s) // 1
		d1 := bu.Sub(s, r) // 2
		return bu.Max(d0, d1)
	} // 3 nodes each
	bm0 := bm(r0, s0)
	bm1 := bm(r1, s1)

	acs := func(a, b, ma, mb ir.Value) (ir.Value, ir.Value) {
		p0 := bu.Add(a, ma)   // 1
		p1 := bu.Add(b, mb)   // 2
		m := bu.Min(p0, p1)   // 3
		d := bu.CmpLT(p1, p0) // 4
		return m, d
	} // 4 nodes each
	n0, d0 := acs(pm0, pm1, bm0, bm1)
	n1, d1 := acs(pm0, pm1, bm1, bm0)
	n2, d2 := acs(pm1, pm0, bm0, bm1)

	// Pack the three survivor decisions into one word.
	p1 := bu.ShlI(d1, 1)   // 19
	p2 := bu.ShlI(d2, 2)   // 20
	w0 := bu.Or(d0, p1)    // 21
	w1 := bu.Or(w0, p2)    // 22
	best := bu.Min(n0, n1) // 23
	_ = n2
	bu.LiveOut(n0, n1, n2, w1, best)
	return withSupport("viterb00", bu.MustBuild(), 0.30)
}

// Autcor00 is the EEMBC autocorrelation kernel: eight unrolled
// multiply-accumulate taps followed by fixed-point scaling and saturation.
// Critical block: 25 nodes.
func Autcor00() *ir.Application {
	bu := ir.NewBuilder("autcor00_mac", 4096)
	acc := bu.Input("acc")
	var xs, ys []ir.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, bu.Input(fmt.Sprintf("x%d", i)))
		ys = append(ys, bu.Input(fmt.Sprintf("y%d", i)))
	}
	sum := acc
	for i := 0; i < 8; i++ {
		p := bu.Mul(xs[i], ys[i]) // 8 muls
		sum = bu.Add(sum, p)      // 8 adds
	}
	scaled := bu.ShrAI(sum, 4)              // 17
	satHi := bu.Min(scaled, bu.Imm(0x7fff)) // 18
	satLo := bu.Max(satHi, bu.Imm(-0x8000)) // 19
	rounded := bu.AddI(satLo, 1)            // 20
	final := bu.ShrAI(rounded, 1)           // 21
	energy := bu.Mul(final, final)          // 22
	eshift := bu.ShrAI(energy, 6)           // 23
	norm := bu.Sub(final, eshift)           // 24
	out := bu.Max(norm, bu.Imm(0))          // 25
	bu.LiveOut(sum, out)
	return withSupport("autcor00", bu.MustBuild(), 0.20)
}
