package kernels

import "repro/internal/ir"

// adpcmQuantize emits the IMA-ADPCM quantization of one sample: the
// 3-level successive approximation of |sample − valpred| against the step
// size, the predictor update with clamping, and the table-driven index and
// step updates. The final residual is returned so callers can keep it live
// (the benchmark's noise-shaping uses it). 40 nodes per sample.
func adpcmQuantize(bu *ir.Builder, sample, valpred, index, step, idxTab, stepTab ir.Value) (code, newPred, newIndex, newStep, residual ir.Value) {
	diff := bu.Sub(sample, valpred)   // 1
	sign := bu.CmpLT(diff, bu.Imm(0)) // 2
	negd := bu.Neg(diff)              // 3
	d := bu.Select(sign, negd, diff)  // 4
	vp := bu.ShrAI(step, 3)           // 5

	// Level 0 (bit 2): 7 nodes.
	s := step
	cmp := bu.CmpGE(d, s)
	dsub := bu.Sub(d, s)
	d = bu.Select(cmp, dsub, d)
	vadd := bu.Add(vp, s)
	vp = bu.Select(cmp, vadd, vp)
	code = bu.ShlI(cmp, 2)
	s = bu.ShrLI(s, 1)

	// Level 1 (bit 1): 8 nodes.
	cmp = bu.CmpGE(d, s)
	dsub = bu.Sub(d, s)
	d = bu.Select(cmp, dsub, d)
	vadd = bu.Add(vp, s)
	vp = bu.Select(cmp, vadd, vp)
	bit := bu.ShlI(cmp, 1)
	code = bu.Or(code, bit)
	s = bu.ShrLI(s, 1)

	// Level 2 (bit 0): 6 nodes; the residual d stays live.
	cmp = bu.CmpGE(d, s)
	dsub = bu.Sub(d, s)
	residual = bu.Select(cmp, dsub, d)
	vadd = bu.Add(vp, s)
	vp = bu.Select(cmp, vadd, vp)
	code = bu.Or(code, cmp)

	vneg := bu.Sub(valpred, vp)       // 27
	vpos := bu.Add(valpred, vp)       // 28
	np := bu.Select(sign, vneg, vpos) // 29
	np = bu.Min(np, bu.Imm(32767))    // 30
	np = bu.Max(np, bu.Imm(-32768))   // 31

	sbit := bu.ShlI(sign, 3) // 32
	code = bu.Or(code, sbit) // 33

	iaddr := bu.Add(idxTab, code) // 34
	idelta := bu.Load(iaddr)      // 35
	ni := bu.Add(index, idelta)   // 36
	ni = bu.Max(ni, bu.Imm(0))    // 37
	ni = bu.Min(ni, bu.Imm(88))   // 38

	saddr := bu.Add(stepTab, ni) // 39
	ns := bu.Load(saddr)         // 40
	return code, np, ni, ns, residual
}

// ADPCMCoder is the MediaBench ADPCM (rawcaudio) encoder: two samples per
// iteration are quantized and packed into one output byte, with the
// benchmark's distortion-metric accumulation kept in the loop. Critical
// block: 96 nodes.
func ADPCMCoder() *ir.Application {
	bu := ir.NewBuilder("adpcm_coder_loop", 8192)
	s0, s1 := bu.Input("sample0"), bu.Input("sample1")
	valpred, index, step := bu.Input("valpred"), bu.Input("index"), bu.Input("step")
	idxTab, stepTab := bu.Input("indexTable"), bu.Input("stepTable")
	outPtr, cnt, errAcc := bu.Input("outPtr"), bu.Input("count"), bu.Input("errAcc")

	c0, p0, i0, st0, r0 := adpcmQuantize(bu, s0, valpred, index, step, idxTab, stepTab) // 40
	c1, p1, i1, st1, r1 := adpcmQuantize(bu, s1, p0, i0, st0, idxTab, stepTab)          // 80

	hi := bu.ShlI(c1, 4)             // 81
	byteOut := bu.Or(c0, hi)         // 82
	packed := bu.AndI(byteOut, 0xff) // 83
	bu.Store(outPtr, packed)         // 84
	nextPtr := bu.AddI(outPtr, 1)    // 85

	ncnt := bu.SubI(cnt, 2)           // 86
	done := bu.CmpLE(ncnt, bu.Imm(0)) // 87

	// Distortion metric over the two residuals (noise shaping state).
	sq0 := bu.Mul(r0, r0)                  // 88
	sq1 := bu.Mul(r1, r1)                  // 89
	e := bu.Add(sq0, sq1)                  // 90
	e = bu.Add(e, errAcc)                  // 91
	es := bu.ShrAI(e, 2)                   // 92
	ec := bu.Min(es, bu.Imm(1<<20))        // 93
	ec = bu.Max(ec, bu.Imm(0))             // 94
	shaped := bu.Sub(p1, ec)               // 95
	clip := bu.Max(shaped, bu.Imm(-32768)) // 96
	bu.LiveOut(p1, i1, st1, nextPtr, ncnt, done, e, clip)
	return withSupport("adpcm_coder", bu.MustBuild(), 0.25)
}

// adpcmDequantize emits the IMA-ADPCM reconstruction of one 4-bit code:
// vpdiff accumulation from the code bits, predictor update with clamping,
// and the table-driven index and step updates. 26 nodes per sample.
func adpcmDequantize(bu *ir.Builder, code, valpred, index, step, idxTab, stepTab ir.Value) (newPred, newIndex, newStep ir.Value) {
	sign := bu.AndI(code, 8)  // 1
	delta := bu.AndI(code, 7) // 2

	vpdiff := bu.ShrAI(step, 3) // 3
	s := step
	// Bit 2: 4 nodes.
	b2 := bu.AndI(delta, 4)
	a2 := bu.Add(vpdiff, s)
	vpdiff = bu.Select(b2, a2, vpdiff)
	s = bu.ShrLI(s, 1)
	// Bit 1: 4 nodes.
	b1 := bu.AndI(delta, 2)
	a1 := bu.Add(vpdiff, s)
	vpdiff = bu.Select(b1, a1, vpdiff)
	s = bu.ShrLI(s, 1)
	// Bit 0: 3 nodes (the step scratch ends here).
	b0 := bu.AndI(delta, 1)
	a0 := bu.Add(vpdiff, s)
	vpdiff = bu.Select(b0, a0, vpdiff)

	vneg := bu.Sub(valpred, vpdiff)   // 15
	vpos := bu.Add(valpred, vpdiff)   // 16
	np := bu.Select(sign, vneg, vpos) // 17
	np = bu.Min(np, bu.Imm(32767))    // 18
	np = bu.Max(np, bu.Imm(-32768))   // 19

	iaddr := bu.Add(idxTab, delta) // 20
	idelta := bu.Load(iaddr)       // 21
	ni := bu.Add(index, idelta)    // 22
	ni = bu.Max(ni, bu.Imm(0))     // 23
	ni = bu.Min(ni, bu.Imm(88))    // 24

	saddr := bu.Add(stepTab, ni) // 25
	ns := bu.Load(saddr)         // 26
	return np, ni, ns
}

// ADPCMDecoder is the MediaBench ADPCM (rawdaudio) decoder: three 4-bit
// codes (unpacked by the preceding block) are reconstructed per iteration,
// matching the unrolled inner loop of adpcm_decoder(). Critical block: 82
// nodes (3 × 26-node reconstructions + output store + loop bookkeeping).
func ADPCMDecoder() *ir.Application {
	bu := ir.NewBuilder("adpcm_decoder_loop", 8192)
	c0, c1, c2 := bu.Input("code0"), bu.Input("code1"), bu.Input("code2")
	valpred, index, step := bu.Input("valpred"), bu.Input("index"), bu.Input("step")
	idxTab, stepTab := bu.Input("indexTable"), bu.Input("stepTable")
	outPtr, cnt := bu.Input("outPtr"), bu.Input("count")

	p0, i0, st0 := adpcmDequantize(bu, c0, valpred, index, step, idxTab, stepTab) // 26
	p1, i1, st1 := adpcmDequantize(bu, c1, p0, i0, st0, idxTab, stepTab)          // 52
	p2, i2, st2 := adpcmDequantize(bu, c2, p1, i1, st1, idxTab, stepTab)          // 78
	bu.Store(outPtr, p2)                                                          // 79
	nextPtr := bu.AddI(outPtr, 1)                                                 // 80
	ncnt := bu.SubI(cnt, 3)                                                       // 81
	done := bu.CmpLE(ncnt, bu.Imm(0))                                             // 82
	bu.LiveOut(p0, p1, p2, i2, st2, nextPtr, ncnt, done)

	// The code-unpacking block that feeds the loop (three 4-bit fields).
	ub := ir.NewBuilder("adpcm_decoder_unpack", 8192)
	packed := ub.Input("packed")
	u0 := ub.AndI(packed, 0xf)
	m1 := ub.ShrLI(packed, 4)
	u1 := ub.AndI(m1, 0xf)
	m2 := ub.ShrLI(packed, 8)
	u2 := ub.AndI(m2, 0xf)
	ub.LiveOut(u0, u1, u2)

	app := withSupport("adpcm_decoder", bu.MustBuild(), 0.25)
	app.Blocks = append(app.Blocks, ub.MustBuild())
	return app
}
