package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/latency"
	"repro/internal/search"
)

// TestFigure1LargeScaleReuse verifies the paper's Figure 1 principle end
// to end: with one AFU, claiming six instances of the 4-node motif beats
// claiming three instances of the larger 6-node template, and ISEGEN's
// selection realizes the better total saving.
func TestFigure1LargeScaleReuse(t *testing.T) {
	app := Figure1Example()
	model := latency.Default()
	blk := app.Blocks[0]

	// Hand-build both templates from the first motif: nodes 0..3 are
	// mul, add, shra, xor; nodes 4..5 the min/max extension.
	motif := graph.NewBitSet(blk.N())
	for _, v := range []int{0, 1, 2, 3} {
		motif.Set(v)
	}
	extended := motif.Clone()
	extended.Set(4)
	extended.Set(5)

	countInstances := func(cut *graph.BitSet) (int, float64) {
		cands := []eval.Selection{}
		_ = cands
		sw, cp, _, _, convex := core.CutMetrics(blk, model, cut)
		if !convex {
			t.Fatalf("template %v not convex", cut)
		}
		merit := core.MeritOf(sw, cp)
		// Count disjoint instances via the claimer pipeline.
		cutCopy := &core.Cut{Block: blk, Nodes: cut, SWLat: sw, HWLat: cp}
		sels := eval.ClaimAllWithReuse(app, []*core.Cut{cutCopy}, func(*core.Cut) int { return 0 })
		if len(sels) != 1 {
			t.Fatalf("claiming failed for %v", cut)
		}
		return len(sels[0].Instances), merit
	}

	nMotif, meritMotif := countInstances(motif)
	nExt, meritExt := countInstances(extended)
	if nMotif != 6 {
		t.Fatalf("motif instances = %d, want 6", nMotif)
	}
	if nExt != 3 {
		t.Fatalf("extended instances = %d, want 3", nExt)
	}
	// The paper's inequality: many small beats few large.
	if float64(nMotif)*meritMotif <= float64(nExt)*meritExt {
		t.Fatalf("reuse inequality violated: 6x%v <= 3x%v", meritMotif, meritExt)
	}

	// ISEGEN with one AFU and reuse-aware candidate scoring (the facade
	// pipeline) must realize at least the motif's total saving.
	cfg := core.DefaultConfig()
	cfg.NISE = 1
	var got []eval.Selection
	claimer := eval.NewClaimer(app)
	r := &search.Runner{Workers: 1}
	_, _, err := r.Generate(app, cfg, search.ReuseAware(app, model, claimer),
		func(bi int, cut *core.Cut, excluded []*graph.BitSet) {
			sel := claimer.Claim(bi, cut, excluded)
			if len(sel.Instances) > 0 {
				got = append(got, sel)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("ISEGEN found %d selections, want 1", len(got))
	}
	saving := eval.SelectionSavings(app, model, got[0])
	wantAtLeast := float64(nMotif) * meritMotif * blk.Freq
	if saving < wantAtLeast-1e-9 {
		t.Errorf("ISEGEN total saving %v below the 6-instance motif's %v (cut %v, %d instances)",
			saving, wantAtLeast, got[0].Cut.Nodes, len(got[0].Instances))
	}
}
