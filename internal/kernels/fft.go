package kernels

import (
	"fmt"

	"repro/internal/ir"
)

// FFT00 is the EEMBC fixed-point FFT kernel: eight unrolled radix-2
// decimation-in-time butterflies with complex twiddle multiplication and
// fixed-point rescaling, followed by the overflow-detection max-chain of
// the block-floating-point stage. Critical block: 104 nodes
// (8 × 12-node butterflies + 7-node max chain + the overflow compare).
func FFT00() *ir.Application {
	bu := ir.NewBuilder("fft00_butterflies", 1024)

	type cplx struct{ re, im ir.Value }
	inC := func(name string) cplx {
		return cplx{bu.Input(name + "_re"), bu.Input(name + "_im")}
	}

	// butterfly computes a' = a + w·b, b' = a − w·b in Q15 fixed point.
	// 12 nodes; the scaled twiddle product trs is also returned for the
	// overflow detector.
	butterfly := func(a, b, w cplx) (hi, lo cplx, trs ir.Value) {
		t1 := bu.Mul(b.re, w.re) // 1
		t2 := bu.Mul(b.im, w.im) // 2
		tr := bu.Sub(t1, t2)     // 3
		t3 := bu.Mul(b.re, w.im) // 4
		t4 := bu.Mul(b.im, w.re) // 5
		ti := bu.Add(t3, t4)     // 6
		trs = bu.ShrAI(tr, 15)   // 7: Q15 rescale
		tis := bu.ShrAI(ti, 15)  // 8
		or0 := bu.Add(a.re, trs) // 9
		oi0 := bu.Add(a.im, tis) // 10
		or1 := bu.Sub(a.re, trs) // 11
		oi1 := bu.Sub(a.im, tis) // 12
		return cplx{or0, oi0}, cplx{or1, oi1}, trs
	}

	var taps []ir.Value
	for k := 0; k < 8; k++ {
		a := inC(fmt.Sprintf("a%d", k))
		b := inC(fmt.Sprintf("b%d", k))
		w := inC(fmt.Sprintf("w%d", k))
		hi, lo, trs := butterfly(a, b, w)
		taps = append(taps, trs)
		bu.LiveOut(hi.re, hi.im, lo.re, lo.im)
	}
	// Block-floating-point overflow detection: max over the twiddle
	// products, compared against the Q15 headroom. 8 nodes.
	mx := taps[0]
	for k := 1; k < 8; k++ {
		mx = bu.Max(mx, taps[k]) // 97..103
	}
	guard := bu.CmpGT(mx, bu.Imm(16384)) // 104
	bu.LiveOut(guard)
	return withSupport("fft00", bu.MustBuild(), 0.20)
}
