package kernels

import (
	"fmt"

	"repro/internal/ir"
)

// Figure1Example reproduces the paper's motivating example of large-scale
// reuse (Figure 1): a DFG containing a computation motif repeated six
// times, three of which are extended by two extra operations. The largest
// convex template (motif + extension) has only three instances; the
// slightly smaller motif has six. An identification algorithm that
// maximizes template size times reuse must prefer the six-instance motif:
//
//	6 instances × merit(motif) > 3 instances × merit(motif+extension)
//
// The motif is a four-operation multiply/accumulate/align chain; the
// extension adds a saturating clamp.
func Figure1Example() *ir.Application {
	bu := ir.NewBuilder("figure1_kernel", 1000)
	base := bu.Input("base")
	var outs []ir.Value
	for k := 0; k < 6; k++ {
		x := bu.Input(fmt.Sprintf("x%d", k))
		y := bu.Input(fmt.Sprintf("y%d", k))
		// The motif: mul, add, shift, xor. 4 nodes.
		p := bu.Mul(x, y)
		s := bu.Add(p, base)
		sh := bu.ShrAI(s, 2)
		v := bu.XorI(sh, 0x5a)
		if k < 3 {
			// The extension on half the motifs: clamp. 2 nodes.
			hi := bu.Min(v, bu.Imm(4095))
			lo := bu.Max(hi, bu.Imm(0))
			outs = append(outs, lo)
		} else {
			outs = append(outs, v)
		}
	}
	bu.LiveOut(outs...)
	return withSupport("figure1", bu.MustBuild(), 0.10)
}
