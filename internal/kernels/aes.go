package kernels

import "repro/internal/ir"

// AES builds the cryptographic benchmark of Figures 6 and 7: three fully
// unrolled AES-128 encryption rounds operating on a 16-byte state held in
// registers, with S-box lookups and round-key bytes fetched from memory
// (loads are AFU barriers, exactly the paper's model) and MixColumns
// expressed in GF(2^8) byte arithmetic.
//
// The critical block has exactly 696 nodes, matching the paper, and a
// highly regular structure: 12 identical 36-node MixColumns columns and 48
// identical 5-node xtime blocks, which is precisely the regularity ISEGEN
// exploits through cut reuse.
//
// Node budget: 24 (state unpack) + 3 rounds × (32 S-box + 32 round key +
// 144 MixColumns + 16 AddRoundKey) = 24 + 3·224 = 696.
func AES() *ir.Application {
	bu := ir.NewBuilder("aes_rounds", 1024)
	w0, w1, w2, w3 := bu.Input("state0"), bu.Input("state1"), bu.Input("state2"), bu.Input("state3")
	sbox := bu.Input("sboxBase")
	key := bu.Input("keyBase")

	// Unpack the four state words into 16 bytes: 6 nodes per word.
	unpack := func(w ir.Value) [4]ir.Value {
		b0 := bu.AndI(w, 0xff)
		t1 := bu.ShrLI(w, 8)
		b1 := bu.AndI(t1, 0xff)
		t2 := bu.ShrLI(w, 16)
		b2 := bu.AndI(t2, 0xff)
		b3 := bu.ShrLI(w, 24)
		return [4]ir.Value{b0, b1, b2, b3}
	}
	var state [16]ir.Value
	for i, w := range []ir.Value{w0, w1, w2, w3} {
		c := unpack(w)
		copy(state[4*i:], c[:])
	}

	// xtime: multiplication by 2 in GF(2^8). 5 nodes.
	xtime := func(b ir.Value) ir.Value {
		hi := bu.AndI(b, 0x80)
		sh := bu.ShlI(b, 1)
		m := bu.AndI(sh, 0xff)
		red := bu.Select(hi, bu.Imm(0x1b), bu.Imm(0))
		return bu.Xor(m, red)
	}

	// One full round (224 nodes): SubBytes 32, ShiftRows 0 (wiring),
	// MixColumns 144, AddRoundKey 48 (address + load + xor per byte).
	keyOff := int32(0)
	round := func(st [16]ir.Value) [16]ir.Value {
		// SubBytes: addr = sbox + byte; load. 32 nodes.
		var sb [16]ir.Value
		for i := 0; i < 16; i++ {
			addr := bu.Add(sbox, st[i])
			sb[i] = bu.Load(addr)
		}
		// ShiftRows: row r rotates left by r. Column-major state
		// layout: state[4c+r].
		var sr [16]ir.Value
		for c := 0; c < 4; c++ {
			for r := 0; r < 4; r++ {
				sr[4*c+r] = sb[4*((c+r)%4)+r]
			}
		}
		// MixColumns per column: 4 xtimes (20) + 16 XORs = 36 nodes.
		var mc [16]ir.Value
		for c := 0; c < 4; c++ {
			a0, a1, a2, a3 := sr[4*c], sr[4*c+1], sr[4*c+2], sr[4*c+3]
			x0, x1, x2, x3 := xtime(a0), xtime(a1), xtime(a2), xtime(a3)
			// r0 = x0 ^ x1 ^ a1 ^ a2 ^ a3
			r0 := bu.Xor(bu.Xor(bu.Xor(bu.Xor(x0, x1), a1), a2), a3)
			// r1 = a0 ^ x1 ^ x2 ^ a2 ^ a3
			r1 := bu.Xor(bu.Xor(bu.Xor(bu.Xor(a0, x1), x2), a2), a3)
			// r2 = a0 ^ a1 ^ x2 ^ x3 ^ a3
			r2 := bu.Xor(bu.Xor(bu.Xor(bu.Xor(a0, a1), x2), x3), a3)
			// r3 = x0 ^ a0 ^ a1 ^ a2 ^ x3
			r3 := bu.Xor(bu.Xor(bu.Xor(bu.Xor(x0, a0), a1), a2), x3)
			mc[4*c], mc[4*c+1], mc[4*c+2], mc[4*c+3] = r0, r1, r2, r3
		}
		// AddRoundKey: key byte address (immediate offset), load, XOR.
		var out [16]ir.Value
		for i := 0; i < 16; i++ {
			kaddr := bu.AddI(key, keyOff)
			keyOff++
			kb := bu.Load(kaddr)
			out[i] = bu.Xor(mc[i], kb)
		}
		return out
	}

	st := state
	for r := 0; r < 3; r++ {
		st = round(st)
	}
	bu.LiveOut(st[:]...)
	return withSupport("aes", bu.MustBuild(), 0.08)
}
