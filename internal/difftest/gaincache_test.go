package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfggen"
)

// gaincacheBlockCount sizes the cached-gain sweep: each block runs every
// restart trajectory twice (cached digests vs the fullRebuild reference)
// across the same parameter profiles as the differential gate.
const gaincacheBlockCount = 500

const gaincacheShortCount = 60

// TestGainCacheTrajectoryPinning is the property sweep for the O(1)
// candidate-gain cache: across generated blocks spanning the pinned
// profile spread (port tightness, memory density, graph shape), every
// K-L trajectory run with cached probe digests, incremental critical
// path and delta SetCut must be bit-identical — same snapshot count,
// same cut bits, same float merits — to the trajectory the fullRebuild
// shim produces from the same seed. This is the difftest-level guard
// that the digest invalidation/patching rules in core never let a stale
// entry reach a gain decision.
func TestGainCacheTrajectoryPinning(t *testing.T) {
	count := gaincacheBlockCount
	if testing.Short() {
		count = gaincacheShortCount
	}
	for seed := int64(1); seed <= int64(count); seed++ {
		p, dcfg := pinnedCase(seed)
		blk := dfggen.Block(dfggen.Seeded(8000+seed), p)
		cfg := core.DefaultConfig()
		cfg.MaxIn, cfg.MaxOut = dcfg.MaxIn, dcfg.MaxOut
		cached, err := core.NewEngine(blk, cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := core.NewEngine(blk, cfg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref.SetFullRebuild(true)
		for si, start := range cached.Seeds() {
			got := cached.Trajectory(start)
			want := ref.Trajectory(start)
			if len(got) != len(want) {
				t.Fatalf("seed %d trajectory %d: %d snapshots cached vs %d fullRebuild",
					seed, si, len(got), len(want))
			}
			for i := range got {
				if !got[i].Nodes.Equal(want[i].Nodes) {
					t.Fatalf("seed %d trajectory %d snapshot %d: cut %s cached vs %s fullRebuild",
						seed, si, i, got[i].Nodes, want[i].Nodes)
				}
				if got[i].Merit != want[i].Merit {
					t.Fatalf("seed %d trajectory %d snapshot %d: merit %v cached vs %v fullRebuild",
						seed, si, i, got[i].Merit, want[i].Merit)
				}
			}
		}
	}
}
