package difftest

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dfggen"
	"repro/internal/dfgio"
	"repro/internal/ir"
)

// pinnedBlockCount is the differential gate's block budget: every block
// runs the full matrix ({isegen, exact, iterative, genetic, racing} ×
// {seq, par} plus cache-on/off and print→parse round-trip).
const pinnedBlockCount = 520

// shortBlockCount keeps `go test -short ./...` fast; the CI differential
// step runs the full count.
const shortBlockCount = 60

// pinnedCase derives the seed's generator shape and engine constraints —
// a deterministic spread over port tightness, block size, memory density
// and graph shape, so the gate isn't 520 samples of one distribution.
func pinnedCase(seed int64) (dfggen.Params, Config) {
	cfg := DefaultConfig()
	p := dfggen.DefaultParams()
	switch seed % 5 {
	case 1: // tight ports: feasibility boundary stress
		cfg.MaxIn, cfg.MaxOut = 2, 1
	case 2: // larger, memory-heavy blocks: forbidden-op placement
		p.MinNodes, p.MaxNodes = 10, 20
		p.MemFrac = 0.3
		cfg.NISE = 1
	case 3: // broad shallow graphs under generous ports
		p.Locality = 0
		p.InputFrac = 0.45
		cfg.MaxIn, cfg.MaxOut, cfg.NISE = 6, 3, 3
	case 4: // deep chains, immediate-heavy, single-input pool
		p.Locality = 2
		p.ImmFrac = 0.3
		p.MaxInputs = 2
		p.MotifFrac = 0.5
	}
	return p, cfg
}

// TestPinnedSeedDifferential is the deterministic PR gate: it runs the
// full differential matrix over pinned generator seeds and fails on any
// invariant violation, printing the violating block as a .dfg reproducer.
func TestPinnedSeedDifferential(t *testing.T) {
	count := pinnedBlockCount
	if testing.Short() {
		count = shortBlockCount
	}
	start := time.Now()
	for seed := int64(1); seed <= int64(count); seed++ {
		p, cfg := pinnedCase(seed)
		blk := dfggen.Block(dfggen.Seeded(seed), p)
		vs := CheckBlock(blk, cfg)
		if len(vs) == 0 {
			continue
		}
		min, kept := ShrinkToViolation(blk, cfg, vs[0])
		t.Errorf("seed %d (%d nodes, shrunk to %d): %d violation(s), first: %s\nminimized reproducer:\n%s",
			seed, blk.N(), min.N(), len(vs), vs[0], mustDFG(t, min))
		for _, v := range kept {
			t.Logf("  surviving on minimized block: %s", v)
		}
		if len(vs) > 3 {
			t.Fatalf("stopping after a badly violating seed; %d more violations on seed %d", len(vs)-1, seed)
		}
	}
	t.Logf("differential gate: %d generated blocks, full matrix, clean in %v", count, time.Since(start))
}

// TestPinnedStreamDeterminism runs the serving layer's NDJSON path on
// pinned multi-block applications, sequential vs parallel block fan-out,
// and requires byte-identical streams for every deterministic algo.
func TestPinnedStreamDeterminism(t *testing.T) {
	apps := 12
	if testing.Short() {
		apps = 4
	}
	for seed := int64(1); seed <= int64(apps); seed++ {
		app := dfggen.Application(dfggen.Seeded(1000+seed), dfggen.DefaultParams())
		for _, algo := range []string{"isegen", "exact", "iterative", "genetic"} {
			for _, v := range CheckApplicationStream(app, algo, 3) {
				t.Errorf("app seed %d: %s", seed, v)
			}
		}
	}
}

// TestGeneratorGoldenHashes pins the generator's output identity: these
// hashes change only if the generator's draw sequence (or math/rand's
// stable sequence contract) changes, in which case every seed-named
// reproducer in circulation silently means a different block. Update the
// goldens only on a deliberate generator change, and say so in the commit.
func TestGeneratorGoldenHashes(t *testing.T) {
	golden := map[int64]string{
		1: "fcc4d2d9e4b29b1e3ac1b6f81e81d3c39671589bd2ccb918f9af262ed1136fcb",
		2: "2e8765de58f64b5da8a4c39934e66e4f6d0a88a9fb1058e886126aa301d714cd",
		3: "73ce95a8566318d456a62fa6897c94ba1d81c0b78eb8d3d7ec20580602522e41",
	}
	for seed, want := range golden {
		got := dfgio.BlockHash(dfggen.Block(dfggen.Seeded(seed), dfggen.DefaultParams()))
		if got != want {
			t.Errorf("seed %d: BlockHash %s, golden %s", seed, got, want)
		}
	}
}

// TestCorpusReproducers re-runs every checked-in minimized reproducer
// through the full matrix: a reproducer lands in the corpus together with
// its fix, so the corpus must stay clean forever.
func TestCorpusReproducers(t *testing.T) {
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Log("corpus is empty: the development soak found no violations (see DESIGN.md)")
		return
	}
	for _, r := range corpus {
		cfg := DefaultConfig()
		if vs := CheckBlock(r.Block, cfg); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("%s (invariant %q regressed): %s", r.Path, r.Header["invariant"], v)
			}
		}
	}
}

// mustDFG serializes a block for failure messages.
func mustDFG(t *testing.T, blk *ir.Block) string {
	t.Helper()
	var sb strings.Builder
	if err := dfgio.Write(&sb, blk); err != nil {
		t.Fatalf("serializing reproducer: %v", err)
	}
	return sb.String()
}
