package difftest

import (
	"bytes"
	"testing"

	"repro/internal/dfggen"
	"repro/internal/dfgio"
)

// TestRoundTripGeneratedBlocks is the dedicated dfgio property sweep
// (checkRoundTrip also runs inside every CheckBlock): print→parse
// structural equality, BlockHash stability across the round trip, and
// hash invariance under renaming, over a wide spread of generated shapes.
func TestRoundTripGeneratedBlocks(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 80
	}
	p := dfggen.DefaultParams()
	p.MinNodes, p.MaxNodes = 1, 40 // wider than the engine matrix needs
	for seed := int64(1); seed <= seeds; seed++ {
		blk := dfggen.Block(dfggen.Seeded(500+seed), p)
		for _, v := range checkRoundTrip(blk) {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestRoundTripGeneratedApplications round-trips whole multi-block
// programs through WriteApplication/ParseApplication and requires
// re-serialization to be byte-identical (print→parse→print fixpoint).
func TestRoundTripGeneratedApplications(t *testing.T) {
	apps := int64(40)
	if testing.Short() {
		apps = 8
	}
	for seed := int64(1); seed <= apps; seed++ {
		app := dfggen.Application(dfggen.Seeded(900+seed), dfggen.DefaultParams())
		var first bytes.Buffer
		if err := dfgio.WriteApplication(&first, app); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		parsed, err := dfgio.ParseApplication(app.Name, bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if len(parsed.Blocks) != len(app.Blocks) {
			t.Fatalf("seed %d: %d blocks parsed, want %d", seed, len(parsed.Blocks), len(app.Blocks))
		}
		for i := range app.Blocks {
			if d := diffBlocks(app.Blocks[i], parsed.Blocks[i]); d != "" {
				t.Errorf("seed %d block %d: %s", seed, i, d)
			}
			if a, b := dfgio.BlockHash(app.Blocks[i]), dfgio.BlockHash(parsed.Blocks[i]); a != b {
				t.Errorf("seed %d block %d: hash moved: %s vs %s", seed, i, a, b)
			}
		}
		var second bytes.Buffer
		if err := dfgio.WriteApplication(&second, parsed); err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("seed %d: serialization is not a fixpoint", seed)
		}
	}
}
