package difftest

import (
	"testing"

	"repro/internal/dfggen"
	"repro/internal/graph"
	"repro/internal/ir"
)

// countOp counts nodes with the given opcode.
func countOp(blk *ir.Block, op ir.Op) int {
	n := 0
	for i := range blk.Nodes {
		if blk.Nodes[i].Op == op {
			n++
		}
	}
	return n
}

// TestRemoveNodesRewiresToInputs checks the projection contract: dropping
// a producer turns its consumers' operands into fresh external inputs and
// the result is a valid block with the survivors' opcodes intact.
func TestRemoveNodesRewiresToInputs(t *testing.T) {
	// 0: a+b; 1: n0*c; 2: n0^n1 (!out)
	blk := &ir.Block{
		Name: "t", Freq: 1, NumInputs: 3,
		Nodes: []ir.Node{
			{Op: ir.OpAdd, Args: []ir.Operand{ir.InputRef(0), ir.InputRef(1)}},
			{Op: ir.OpMul, Args: []ir.Operand{ir.NodeRef(0), ir.InputRef(2)}},
			{Op: ir.OpXor, Args: []ir.Operand{ir.NodeRef(0), ir.NodeRef(1)}},
		},
		LiveOut: graph.NewBitSet(3),
	}
	blk.LiveOut.Set(2)
	if err := ir.FinishBlock(blk); err != nil {
		t.Fatal(err)
	}
	drop := graph.NewBitSet(3)
	drop.Set(0)
	got := RemoveNodes(blk, drop)
	if got == nil {
		t.Fatal("projection failed")
	}
	if got.N() != 2 || got.Nodes[0].Op != ir.OpMul || got.Nodes[1].Op != ir.OpXor {
		t.Fatalf("unexpected projection: %+v", got.Nodes)
	}
	// Node 0's two consumers shared one producer, so exactly one fresh
	// input (index 3) replaces it in both.
	if got.NumInputs != 4 {
		t.Fatalf("NumInputs = %d, want 4 (one fresh input for the dropped producer)", got.NumInputs)
	}
	if a := got.Nodes[0].Args[0]; a.Kind != ir.FromInput || a.Index != 3 {
		t.Fatalf("mul arg 0 not rewired to fresh input: %+v", a)
	}
	if a := got.Nodes[1].Args[0]; a.Kind != ir.FromInput || a.Index != 3 {
		t.Fatalf("xor arg 0 not rewired to the same fresh input: %+v", a)
	}
	if !got.LiveOut.Has(1) {
		t.Fatal("live-out mark lost in projection")
	}
}

// TestShrinkReachesMinimal shrinks generated blocks against a synthetic
// property ("contains a mul") and checks 1-minimality: one node survives,
// and removing it breaks the property.
func TestShrinkReachesMinimal(t *testing.T) {
	prop := func(b *ir.Block) bool { return countOp(b, ir.OpMul) >= 1 }
	found := 0
	for seed := int64(1); seed <= 40 && found < 10; seed++ {
		blk := dfggen.Block(dfggen.Seeded(seed), dfggen.DefaultParams())
		if !prop(blk) {
			continue
		}
		found++
		min := Shrink(blk, prop)
		if !prop(min) {
			t.Fatalf("seed %d: shrunk block lost the property", seed)
		}
		if min.N() != 1 {
			t.Errorf("seed %d: expected the single mul to survive, got %d nodes", seed, min.N())
		}
		// 1-minimality by definition: dropping any remaining node kills
		// the property.
		for i := 0; i < min.N(); i++ {
			d := graph.NewBitSet(min.N())
			d.Set(i)
			if cand := RemoveNodes(min, d); cand != nil && prop(cand) {
				t.Errorf("seed %d: shrink not 1-minimal (node %d removable)", seed, i)
			}
		}
	}
	if found == 0 {
		t.Fatal("no generated block contained a mul; generator distribution broken")
	}
}

// TestShrinkPreservesDependentPair shrinks against a property needing two
// dependent nodes (an add feeding a mul), ensuring the rewiring keeps the
// dependence rather than splitting it into inputs.
func TestShrinkPreservesDependentPair(t *testing.T) {
	prop := func(b *ir.Block) bool {
		for i := range b.Nodes {
			if b.Nodes[i].Op != ir.OpMul {
				continue
			}
			for _, a := range b.Nodes[i].Args {
				if a.Kind == ir.FromNode && b.Nodes[a.Index].Op == ir.OpAdd {
					return true
				}
			}
		}
		return false
	}
	checked := 0
	for seed := int64(1); seed <= 120 && checked < 5; seed++ {
		blk := dfggen.Block(dfggen.Seeded(seed), dfggen.DefaultParams())
		if !prop(blk) {
			continue
		}
		checked++
		min := Shrink(blk, prop)
		if !prop(min) {
			t.Fatalf("seed %d: property lost", seed)
		}
		if min.N() != 2 {
			t.Errorf("seed %d: want exactly the add→mul pair, got %d nodes:\n%s",
				seed, min.N(), mustDFG(t, min))
		}
	}
	if checked == 0 {
		t.Fatal("no generated block had an add feeding a mul")
	}
}

// TestShrinkNoopWithoutProperty pins the entry contract: when the
// property does not hold on the input, Shrink returns it unchanged and
// ShrinkToViolation keeps no violations.
func TestShrinkNoopWithoutProperty(t *testing.T) {
	blk := dfggen.Block(dfggen.Seeded(5), dfggen.DefaultParams())
	if got := Shrink(blk, func(*ir.Block) bool { return false }); got != blk {
		t.Fatal("Shrink modified a block the property rejects")
	}
	min, kept := ShrinkToViolation(blk, DefaultConfig(), Violation{Invariant: "validity"})
	if min != blk || len(kept) != 0 {
		t.Fatalf("ShrinkToViolation on a clean block: min=%p blk=%p kept=%v", min, blk, kept)
	}
}

// TestCompactInputsDropsUnused checks the cleanup pass via Shrink: a
// trivially-true property lets ddmin strip everything removable, then
// input compaction renumbers what is left.
func TestCompactInputsDropsUnused(t *testing.T) {
	blk := &ir.Block{
		Name: "t", Freq: 1, NumInputs: 6,
		Nodes: []ir.Node{
			{Op: ir.OpAdd, Args: []ir.Operand{ir.InputRef(4), ir.InputRef(5)}},
		},
		LiveOut: graph.NewBitSet(1),
	}
	blk.LiveOut.Set(0)
	if err := ir.FinishBlock(blk); err != nil {
		t.Fatal(err)
	}
	min := Shrink(blk, func(b *ir.Block) bool { return countOp(b, ir.OpAdd) >= 1 })
	if min.NumInputs != 2 {
		t.Fatalf("NumInputs = %d, want 2 after compaction", min.NumInputs)
	}
	for _, a := range min.Nodes[0].Args {
		if a.Kind != ir.FromInput || a.Index > 1 {
			t.Fatalf("operand not renumbered: %+v", a)
		}
	}
}
