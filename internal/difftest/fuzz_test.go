package difftest

import (
	"testing"

	"repro/internal/dfggen"
)

// fuzzParams derives a generator shape from the fuzzed knobs. Values are
// clamped by Params.normalized, so the engine can mutate them freely; the
// matrix keeps exact-tractable sizes by capping node counts.
func fuzzParams(maxNodes, memPct, immPct uint8) dfggen.Params {
	p := dfggen.DefaultParams()
	p.MinNodes = 1
	p.MaxNodes = 1 + int(maxNodes)%20
	p.MemFrac = float64(memPct%60) / 100
	p.ImmFrac = float64(immPct%40) / 100
	return p
}

// fuzzConfig trades a little coverage for throughput: the stream arm is
// exercised by the pinned suite; everything engine-shaped stays on.
func fuzzConfig(tight bool) Config {
	cfg := DefaultConfig()
	cfg.ParWorkers = 2
	if tight {
		cfg.MaxIn, cfg.MaxOut, cfg.NISE = 2, 1, 1
	}
	return cfg
}

// FuzzDifferential is the coverage-guided face of the harness: the fuzzer
// mutates the generator seed and shape knobs, each input becomes one
// generated block, and the full cross-engine invariant matrix must hold.
// On a violation the failure message carries the minimized reproducer as
// .dfg text, ready to check into testdata/ (see DESIGN.md).
//
// Run locally with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=60s ./internal/difftest/
func FuzzDifferential(f *testing.F) {
	for _, seed := range []uint64{1, 2, 7, 42, 1000} {
		f.Add(seed, uint8(12), uint8(15), uint8(10), false)
		f.Add(seed, uint8(19), uint8(40), uint8(30), true)
	}
	f.Fuzz(func(t *testing.T, seed uint64, maxNodes, memPct, immPct uint8, tight bool) {
		p := fuzzParams(maxNodes, memPct, immPct)
		cfg := fuzzConfig(tight)
		blk := dfggen.Block(dfggen.Seeded(int64(seed)), p)
		vs := CheckBlock(blk, cfg)
		if len(vs) == 0 {
			return
		}
		min, kept := ShrinkToViolation(blk, cfg, vs[0])
		report := vs[0]
		if len(kept) > 0 {
			report = kept[0]
		}
		t.Fatalf("invariant violated on generated block (seed=%d, %d nodes, shrunk to %d): %s\nminimized reproducer (save under internal/difftest/testdata/):\n%s",
			seed, blk.N(), min.N(), report, mustDFG(t, min))
	})
}
