// Package difftest is the differential invariant harness: it runs randomly
// generated blocks (internal/dfggen) through the real search.Engine
// registry — K-L ISEGEN, the exact DAC'03 enumeration, the genetic DAC'04
// baseline and the racing meta-engine — and cross-checks the invariants
// the paper's claim structure rests on. See DESIGN.md, "Differential
// invariant suite", for the invariant inventory and the shrinker contract.
//
// The harness is exposed three ways: the pinned-seed suite
// (TestPinnedSeedDifferential) is the deterministic PR gate, the native
// fuzz targets (FuzzDifferential) explore the shape space coverage-guided,
// and cmd/dfgfuzz drives long soak runs and serializes minimized
// reproducers into testdata/.
package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/genetic"
	"repro/internal/graph"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/search"
	"repro/internal/service"
)

// model is the shared latency model every engine run costs under — the
// same default the serving layer uses, so the harness checks the
// configuration production traffic sees.
var model = latency.Default()

// Config selects what one differential check runs.
type Config struct {
	// MaxIn, MaxOut and NISE are the architectural constraints handed to
	// every engine.
	MaxIn, MaxOut, NISE int
	// Engines is the registry-name subset to run (nil = EnginesAll).
	Engines []string
	// ParWorkers is the worker count of the "par" arm (Limits.Workers
	// for K-L, Limits.SubtreeWorkers for the exact searches). Values
	// below 2 disable the parallel-determinism arm.
	ParWorkers int
	// GeneticOpt overrides the genetic baseline's evolution parameters.
	// nil uses FastGeneticOpt — the real engine with a smaller
	// population, so the 500-block gate fits its CI budget. The soak CLI
	// can restore the registry defaults with -full-ga.
	GeneticOpt *genetic.Options
	// Budget bounds the exact searches (0 = search.DefaultBudget).
	Budget int64
	// SkipCache skips the CostCache-on/off agreement arm.
	SkipCache bool
	// SkipRoundTrip skips the dfgio print→parse→hash arm.
	SkipRoundTrip bool
}

// EnginesAll is every engine the differential matrix covers. "iterative"
// rides along: it is subject to the same validity and dominance
// invariants as the other heuristic-quality answers.
var EnginesAll = []string{"isegen", "exact", "iterative", "genetic", "racing"}

// DefaultConfig is the full matrix under the paper's main I/O constraint.
func DefaultConfig() Config {
	return Config{MaxIn: 4, MaxOut: 2, NISE: 2, Engines: EnginesAll, ParWorkers: 3}
}

// FastGeneticOpt returns reduced evolution parameters: the identical code
// path (selection, crossover, penalty fitness, freezing), ~20× cheaper.
// Every invariant the harness checks is parameter-independent — a smaller
// population may find worse cuts, never invalid ones, and dominance
// (exact ≥ genetic) holds for any population.
func FastGeneticOpt() *genetic.Options {
	return &genetic.Options{Pop: 24, MaxGen: 40, Stall: 10}
}

// Violation is one invariant breach on one block. Detail is
// human-readable; the reproducer writer records it alongside the block.
type Violation struct {
	// Invariant names the breached invariant: "validity", "dominance",
	// "racing-equivalence", "par-determinism", "cache-agreement",
	// "round-trip", "stream-determinism" or "error".
	Invariant string
	// Engine is the registry name of the engine involved (empty for
	// engine-independent invariants like round-trip).
	Engine string
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string {
	if v.Engine == "" {
		return fmt.Sprintf("[%s] %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("[%s/%s] %s", v.Invariant, v.Engine, v.Detail)
}

// limits assembles the per-run limits for one engine arm.
func (c Config) limits(par bool) *search.Limits {
	budget := c.Budget
	if budget == 0 {
		budget = search.DefaultBudget
	}
	lim := &search.Limits{
		MaxIn: c.MaxIn, MaxOut: c.MaxOut, NISE: c.NISE,
		Budget: budget, Workers: 1, SubtreeWorkers: 1,
	}
	if par {
		lim.Workers = c.ParWorkers
		lim.SubtreeWorkers = c.ParWorkers
	}
	return lim
}

// newEngine builds one registry engine with the harness's genetic
// parameters applied.
func (c Config) newEngine(name string, cache *search.CostCache) (search.Engine, error) {
	eng, err := search.New(name, cache)
	if err != nil {
		return nil, err
	}
	if g, ok := eng.(*search.Genetic); ok {
		gopt := c.GeneticOpt
		if gopt == nil {
			gopt = FastGeneticOpt()
		}
		g.Opt = gopt
	}
	return eng, nil
}

// runResult is one engine arm's outcome.
type runResult struct {
	cuts    []*core.Cut
	stats   search.Stats
	err     error
	skipped bool // recognized resource refusal, not a violation
}

// runEngine executes one arm. Engine errors are violations unless they are
// the documented resource refusals (node limit, budget), which skip the
// block for that engine.
func (c Config) runEngine(name string, blk *ir.Block, cache *search.CostCache, par bool) runResult {
	eng, err := c.newEngine(name, cache)
	if err != nil {
		return runResult{err: err}
	}
	obj := search.Merit(model)
	cuts, stats, err := eng.Run(blk, obj, c.limits(par))
	return runResult{cuts: cuts, stats: stats, err: err}
}

// CheckBlock runs the full differential matrix on one block and returns
// every invariant violation found. A nil/empty result means the block is
// clean under cfg.
func CheckBlock(blk *ir.Block, cfg Config) []Violation {
	var vs []Violation
	engines := cfg.Engines
	if engines == nil {
		engines = EnginesAll
	}

	if !cfg.SkipRoundTrip {
		vs = append(vs, checkRoundTrip(blk)...)
	}

	seq := make(map[string]runResult, len(engines))
	for _, name := range engines {
		r := cfg.runEngine(name, blk, nil, false)
		r.classify()
		seq[name] = r
		if r.err != nil {
			vs = append(vs, Violation{Invariant: "error", Engine: name, Detail: r.err.Error()})
			continue
		}
		if r.skipped {
			continue
		}
		vs = append(vs, CheckCuts(blk, name+"/seq", r.cuts, cfg.MaxIn, cfg.MaxOut, cfg.NISE)...)

		if cfg.ParWorkers > 1 {
			rp := cfg.runEngine(name, blk, nil, true)
			rp.classify()
			if rp.err != nil {
				vs = append(vs, Violation{Invariant: "error", Engine: name + "/par", Detail: rp.err.Error()})
			} else if d := diffCuts(r.cuts, rp.cuts); d != "" {
				vs = append(vs, Violation{Invariant: "par-determinism", Engine: name,
					Detail: fmt.Sprintf("workers=1 vs workers=%d: %s", cfg.ParWorkers, d)})
			}
		}

		if !cfg.SkipCache {
			rc := cfg.runEngine(name, blk, search.NewCostCache(), false)
			if rc.err != nil {
				vs = append(vs, Violation{Invariant: "error", Engine: name + "/cache", Detail: rc.err.Error()})
			} else if d := diffCuts(r.cuts, rc.cuts); d != "" {
				vs = append(vs, Violation{Invariant: "cache-agreement", Engine: name,
					Detail: "CostCache on vs off: " + d})
			}
		}
	}

	vs = append(vs, checkDominance(seq)...)
	vs = append(vs, checkRacingEquivalence(seq)...)
	return vs
}

// classify folds the documented resource refusals into skips.
func (r *runResult) classify() {
	if r.err == nil {
		return
	}
	if search.IsResourceRefusal(r.err) {
		r.skipped, r.err = true, nil
	}
}

// refMetrics recomputes a cut's metrics from scratch — the reference
// oracle every recorded field is compared against.
func refMetrics(blk *ir.Block, cut *graph.BitSet) core.Metrics {
	return core.MetricsOf(blk, model, cut)
}

// CheckCuts validates one engine answer against the structural invariants:
// every cut non-empty, within the block, free of forbidden ops, convex,
// inside the I/O port constraints, mutually disjoint, at most NISE cuts,
// and carrying recorded metrics that match a from-scratch recomputation.
func CheckCuts(blk *ir.Block, arm string, cuts []*core.Cut, maxIn, maxOut, nise int) []Violation {
	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{Invariant: "validity", Engine: arm, Detail: fmt.Sprintf(format, args...)})
	}
	if len(cuts) > nise {
		add("%d cuts exceed NISE=%d", len(cuts), nise)
	}
	union := graph.NewBitSet(blk.N())
	for k, cut := range cuts {
		if cut == nil || cut.Nodes == nil || cut.Nodes.Empty() {
			add("cut %d is empty", k)
			continue
		}
		if cut.Nodes.Cap() != blk.N() {
			add("cut %d: node-set capacity %d, block has %d nodes", k, cut.Nodes.Cap(), blk.N())
			continue
		}
		if union.Intersects(cut.Nodes) {
			add("cut %d overlaps an earlier cut (cuts must be disjoint)", k)
		}
		union.Or(cut.Nodes)
		cut.Nodes.ForEach(func(i int) bool {
			if blk.ForbiddenInCut(i) {
				add("cut %d contains forbidden node %d (%v)", k, i, blk.Nodes[i].Op)
			}
			return true
		})
		m := refMetrics(blk, cut.Nodes)
		if !m.Convex() {
			add("cut %d %v is not convex (%d violators)", k, cut.Nodes.Elems(), m.NViol)
		}
		if m.NumIn > maxIn {
			add("cut %d has %d inputs > INmax=%d", k, m.NumIn, maxIn)
		}
		if m.NumOut > maxOut {
			add("cut %d has %d outputs > OUTmax=%d", k, m.NumOut, maxOut)
		}
		if cut.NumIn != m.NumIn || cut.NumOut != m.NumOut {
			add("cut %d records I/O (%d,%d), reference says (%d,%d)", k, cut.NumIn, cut.NumOut, m.NumIn, m.NumOut)
		}
		if cut.SWLat != m.SWLat {
			add("cut %d records SWLat %d, reference says %d", k, cut.SWLat, m.SWLat)
		}
		if math.Float64bits(cut.HWLat) != math.Float64bits(m.HWLat) {
			add("cut %d records HWLat %v, reference says %v", k, cut.HWLat, m.HWLat)
		}
	}
	return vs
}

// refTotalMerit sums the reference-recomputed merit of an answer — the
// quantity dominance compares, deliberately not trusting the engines'
// recorded fields.
func refTotalMerit(blk *ir.Block, cuts []*core.Cut) float64 {
	t := 0.0
	for _, c := range cuts {
		t += refMetrics(blk, c.Nodes).Merit()
	}
	return t
}

// meritEps absorbs float comparison of merits. Merits are sums of
// integer-valued floats, so any honest violation is ≥ 1; the epsilon only
// guards against representation noise.
const meritEps = 1e-9

// checkDominance enforces the paper's ordering: the exact joint optimum
// dominates every heuristic answer on the same block.
func checkDominance(seq map[string]runResult) []Violation {
	exact, ok := seq["exact"]
	if !ok || exact.err != nil || exact.skipped {
		return nil
	}
	blk := blkOf(exact.cuts)
	if blk == nil {
		// The exact optimum is the empty answer (no positive-merit cut
		// exists); heuristics returning cuts anyway are caught by the
		// per-engine comparison below only if we know the block, so
		// fall back to any heuristic's block pointer.
		for _, name := range []string{"isegen", "iterative", "genetic"} {
			if r, ok := seq[name]; ok && blkOf(r.cuts) != nil {
				blk = blkOf(r.cuts)
				break
			}
		}
	}
	var vs []Violation
	exactMerit := 0.0
	if blk != nil {
		exactMerit = refTotalMerit(blk, exact.cuts)
	}
	for _, name := range []string{"isegen", "iterative", "genetic"} {
		r, ok := seq[name]
		if !ok || r.err != nil || r.skipped || len(r.cuts) == 0 {
			continue
		}
		hm := refTotalMerit(blkOf(r.cuts), r.cuts)
		if hm > exactMerit+meritEps {
			vs = append(vs, Violation{Invariant: "dominance", Engine: name,
				Detail: fmt.Sprintf("heuristic merit %g exceeds exact optimum %g", hm, exactMerit)})
		}
	}
	return vs
}

// blkOf returns the block an answer belongs to (nil for empty answers).
func blkOf(cuts []*core.Cut) *ir.Block {
	if len(cuts) == 0 {
		return nil
	}
	return cuts[0].Block
}

// checkRacingEquivalence enforces the racing engine's contract: an
// undeadlined racing answer is bit-identical to the exact engine's.
func checkRacingEquivalence(seq map[string]runResult) []Violation {
	racing, ok := seq["racing"]
	if !ok || racing.err != nil || racing.skipped {
		return nil
	}
	exact, ok := seq["exact"]
	if !ok || exact.err != nil || exact.skipped {
		return nil
	}
	if !racing.stats.Optimal {
		return []Violation{{Invariant: "racing-equivalence", Engine: "racing",
			Detail: "undeadlined racing run reported Optimal=false"}}
	}
	if d := diffCuts(exact.cuts, racing.cuts); d != "" {
		return []Violation{{Invariant: "racing-equivalence", Engine: "racing",
			Detail: "racing vs exact: " + d}}
	}
	return nil
}

// diffCuts compares two answers for bit-identity: same cut count, and per
// index identical node sets and identical recorded metrics (HWLat compared
// by float bits). Returns "" when equal, else a description.
func diffCuts(a, b []*core.Cut) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d cuts vs %d cuts", len(a), len(b))
	}
	for k := range a {
		ca, cb := a[k], b[k]
		if !ca.Nodes.Equal(cb.Nodes) {
			return fmt.Sprintf("cut %d node sets differ: %v vs %v", k, ca.Nodes.Elems(), cb.Nodes.Elems())
		}
		if ca.NumIn != cb.NumIn || ca.NumOut != cb.NumOut || ca.SWLat != cb.SWLat ||
			math.Float64bits(ca.HWLat) != math.Float64bits(cb.HWLat) {
			return fmt.Sprintf("cut %d metrics differ: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
				k, ca.NumIn, ca.NumOut, ca.SWLat, ca.HWLat, cb.NumIn, cb.NumOut, cb.SWLat, cb.HWLat)
		}
	}
	return ""
}

// checkRoundTrip enforces the dfgio contract on the block: print→parse
// reproduces an equal structure, BlockHash survives the round trip, and
// renaming (block name, node labels, frequency) never moves the hash.
func checkRoundTrip(blk *ir.Block) []Violation {
	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{Invariant: "round-trip", Detail: fmt.Sprintf(format, args...)})
	}
	h := dfgio.BlockHash(blk)
	var buf bytes.Buffer
	if err := dfgio.Write(&buf, blk); err != nil {
		add("Write failed: %v", err)
		return vs
	}
	parsed, err := dfgio.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		add("Parse of Write output failed: %v\n%s", err, buf.String())
		return vs
	}
	if d := diffBlocks(blk, parsed); d != "" {
		add("print→parse changed the block: %s", d)
	}
	if h2 := dfgio.BlockHash(parsed); h2 != h {
		add("BlockHash changed across print→parse: %s vs %s", h, h2)
	}
	// Renaming invariance: the hash covers structure only.
	renamed := *parsed
	renamed.Name = parsed.Name + "-renamed"
	renamed.Freq = parsed.Freq * 7
	renamed.Nodes = append([]ir.Node(nil), parsed.Nodes...)
	for i := range renamed.Nodes {
		renamed.Nodes[i].Name = fmt.Sprintf("lbl%d", i)
	}
	if h3 := dfgio.BlockHash(&renamed); h3 != h {
		add("BlockHash moved under renaming: %s vs %s", h, h3)
	}
	return vs
}

// diffBlocks compares the serializable structure of two blocks. Returns ""
// when equal.
func diffBlocks(a, b *ir.Block) string {
	if a.Name != b.Name {
		return fmt.Sprintf("name %q vs %q", a.Name, b.Name)
	}
	if a.Freq != b.Freq {
		return fmt.Sprintf("freq %g vs %g", a.Freq, b.Freq)
	}
	if a.NumInputs != b.NumInputs {
		return fmt.Sprintf("inputs %d vs %d", a.NumInputs, b.NumInputs)
	}
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Sprintf("%d nodes vs %d nodes", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.Op != nb.Op || na.Imm != nb.Imm || len(na.Args) != len(nb.Args) {
			return fmt.Sprintf("node %d differs: %v vs %v", i, *na, *nb)
		}
		for j := range na.Args {
			if na.Args[j] != nb.Args[j] {
				return fmt.Sprintf("node %d arg %d differs: %v vs %v", i, j, na.Args[j], nb.Args[j])
			}
		}
		if a.LiveOut.Has(i) != b.LiveOut.Has(i) {
			return fmt.Sprintf("node %d live-out differs", i)
		}
	}
	return ""
}

// CheckApplicationStream runs the serving layer's full NDJSON path on a
// multi-block application under the named algo, once sequentially and once
// with parallel block fan-out, and requires the streams byte-identical.
// The racing algo is excluded by contract: its frontier records interleave
// nondeterministically (engine-level equivalence is checked per block
// instead).
func CheckApplicationStream(app *ir.Application, algo string, parWorkers int) []Violation {
	p := service.DefaultParams()
	p.Algo = algo
	p.Reuse = algo == "isegen"
	p.NISE = 2
	seqStream, err := runStream(app, p, 1)
	if err != nil {
		return []Violation{{Invariant: "error", Engine: algo + "/stream", Detail: err.Error()}}
	}
	parStream, err := runStream(app, p, parWorkers)
	if err != nil {
		return []Violation{{Invariant: "error", Engine: algo + "/stream-par", Detail: err.Error()}}
	}
	if !bytes.Equal(seqStream, parStream) {
		return []Violation{{Invariant: "stream-determinism", Engine: algo,
			Detail: fmt.Sprintf("workers=1 and workers=%d streams differ:\n--- seq ---\n%s--- par ---\n%s",
				parWorkers, seqStream, parStream)}}
	}
	return nil
}

// runStream encodes one service.Run as NDJSON bytes.
func runStream(app *ir.Application, p service.Params, workers int) ([]byte, error) {
	p.Workers = workers
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	err := service.Run(context.Background(), app, p, nil, func(v any) error { return enc.Encode(v) })
	return buf.Bytes(), err
}
