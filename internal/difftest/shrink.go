// Delta-debugging shrinker: given a block violating an invariant and a
// deterministic predicate that re-checks the violation, find a (locally)
// minimal sub-block that still violates it.
//
// Shrinker contract (see DESIGN.md): every candidate the shrinker proposes
// is a valid ir.Block. Node removal is closed over validity by
// construction — an operand referring to a removed value node is rewired
// to a fresh external input, so dependences never dangle; live-out marks
// and the memory program-order edges are recomputed by ir.FinishBlock on
// the survivors. The predicate must be deterministic (run engines with
// pinned seeds and no deadlines); the shrinker never retries a candidate.
package difftest

import (
	"repro/internal/graph"
	"repro/internal/ir"
)

// Property reports whether the violation of interest still reproduces on
// the candidate block. It must be deterministic.
type Property func(blk *ir.Block) bool

// RemoveNodes projects the block onto the nodes NOT in drop. Operands
// referring to dropped value nodes become fresh external inputs (one per
// dropped producer, shared by all its consumers, appended after the
// existing inputs in first-use order). Returns nil when the projection
// fails validation — callers treat that as "cannot remove this set".
func RemoveNodes(blk *ir.Block, drop *graph.BitSet) *ir.Block {
	n := blk.N()
	newID := make([]int, n)
	kept := 0
	for i := 0; i < n; i++ {
		if drop.Has(i) {
			newID[i] = -1
		} else {
			newID[i] = kept
			kept++
		}
	}
	if kept == 0 {
		return nil
	}
	numInputs := blk.NumInputs
	replacement := make(map[int]int) // dropped producer -> new input index
	nodes := make([]ir.Node, 0, kept)
	liveOut := graph.NewBitSet(kept)
	for i := 0; i < n; i++ {
		if newID[i] < 0 {
			continue
		}
		src := &blk.Nodes[i]
		nd := ir.Node{Op: src.Op, Imm: src.Imm, Name: src.Name}
		for _, a := range src.Args {
			if a.Kind == ir.FromNode {
				if t := newID[a.Index]; t >= 0 {
					a = ir.NodeRef(t)
				} else {
					in, ok := replacement[a.Index]
					if !ok {
						in = numInputs
						numInputs++
						replacement[a.Index] = in
					}
					a = ir.InputRef(in)
				}
			}
			nd.Args = append(nd.Args, a)
		}
		nodes = append(nodes, nd)
		if blk.LiveOut.Has(i) {
			liveOut.Set(newID[i])
		}
	}
	out := &ir.Block{
		Name: blk.Name, Nodes: nodes, NumInputs: numInputs,
		Freq: blk.Freq, LiveOut: liveOut,
	}
	if err := ir.FinishBlock(out); err != nil {
		return nil
	}
	return out
}

// compactInputs renumbers the external inputs to the used ones only.
// Returns nil when nothing shrinks or validation fails.
func compactInputs(blk *ir.Block) *ir.Block {
	used := make([]int, blk.NumInputs)
	for i := range used {
		used[i] = -1
	}
	next := 0
	for i := range blk.Nodes {
		for _, a := range blk.Nodes[i].Args {
			if a.Kind == ir.FromInput && used[a.Index] < 0 {
				used[a.Index] = next
				next++
			}
		}
	}
	if next == blk.NumInputs {
		return nil
	}
	nodes := make([]ir.Node, len(blk.Nodes))
	for i := range blk.Nodes {
		src := &blk.Nodes[i]
		nd := ir.Node{Op: src.Op, Imm: src.Imm, Name: src.Name}
		for _, a := range src.Args {
			if a.Kind == ir.FromInput {
				a = ir.InputRef(used[a.Index])
			}
			nd.Args = append(nd.Args, a)
		}
		nodes[i] = nd
	}
	out := &ir.Block{
		Name: blk.Name, Nodes: nodes, NumInputs: next,
		Freq: blk.Freq, LiveOut: blk.LiveOut.Clone(),
	}
	if err := ir.FinishBlock(out); err != nil {
		return nil
	}
	return out
}

// clearLiveOut returns the block with live-out mark i cleared, or nil when
// validation fails.
func clearLiveOut(blk *ir.Block, i int) *ir.Block {
	lo := blk.LiveOut.Clone()
	lo.Clear(i)
	out := &ir.Block{
		Name: blk.Name, Nodes: append([]ir.Node(nil), blk.Nodes...), NumInputs: blk.NumInputs,
		Freq: blk.Freq, LiveOut: lo,
	}
	if err := ir.FinishBlock(out); err != nil {
		return nil
	}
	return out
}

// Shrink delta-debugs blk against prop: it returns the smallest block the
// ddmin pass converges to on which prop still holds. prop(blk) must be
// true on entry; Shrink returns blk unchanged otherwise. The result is
// 1-minimal over node removal — removing any single further node breaks
// the property — then cleaned up by dropping redundant live-out marks and
// compacting unused external inputs.
func Shrink(blk *ir.Block, prop Property) *ir.Block {
	if !prop(blk) {
		return blk
	}
	cur := blk
	// ddmin over nodes: try dropping windows from n/2 down to single
	// nodes. A successful drop keeps the scan position (the window now
	// covers fresh nodes); a failed pass halves the window. Terminates
	// because every success strictly shrinks the block and every
	// all-failed pass halves the window.
	for chunk := (cur.N() + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < cur.N(); {
			drop := graph.NewBitSet(cur.N())
			for i := start; i < start+chunk && i < cur.N(); i++ {
				drop.Set(i)
			}
			if cand := RemoveNodes(cur, drop); cand != nil && prop(cand) {
				cur = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if half := (cur.N() + 1) / 2; chunk > half {
			chunk = half
		}
	}
	// Cleanup passes: redundant live-out marks, then unused inputs.
	for i := 0; i < cur.N(); i++ {
		if !cur.LiveOut.Has(i) {
			continue
		}
		if cand := clearLiveOut(cur, i); cand != nil && prop(cand) {
			cur = cand
		}
	}
	if cand := compactInputs(cur); cand != nil && prop(cand) {
		cur = cand
	}
	return cur
}

// ShrinkToViolation is the standard shrink driver: it re-checks cfg on
// every candidate and keeps shrinking while any violation of the same
// invariant class (and engine, when set) reproduces. It returns the
// minimized block and the surviving violations on it.
func ShrinkToViolation(blk *ir.Block, cfg Config, v Violation) (*ir.Block, []Violation) {
	prop := func(b *ir.Block) bool {
		for _, got := range CheckBlock(b, cfg) {
			if got.Invariant == v.Invariant && (v.Engine == "" || got.Engine == v.Engine) {
				return true
			}
		}
		return false
	}
	min := Shrink(blk, prop)
	var kept []Violation
	for _, got := range CheckBlock(min, cfg) {
		if got.Invariant == v.Invariant && (v.Engine == "" || got.Engine == v.Engine) {
			kept = append(kept, got)
		}
	}
	return min, kept
}
