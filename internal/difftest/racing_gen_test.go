package difftest

import (
	"testing"
	"time"

	"repro/internal/dfggen"
	"repro/internal/search"
)

// racingLimits builds the racing engine's limits for one generated block.
func racingLimits(deadline time.Duration) *search.Limits {
	return &search.Limits{
		MaxIn: 4, MaxOut: 2, NISE: 2,
		Budget: search.DefaultBudget, Workers: 1, SubtreeWorkers: 1,
		Deadline: deadline,
	}
}

// TestRacingAnytimeMonotoneOnGeneratedBlocks checks the racing stream
// contract on generated blocks: anytime-stage merits are strictly
// increasing, every anytime merit is ≤ the optimal-stage merit, the
// optimal event closes the stream, and an undeadlined run reports an
// optimality proof.
func TestRacingAnytimeMonotoneOnGeneratedBlocks(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	obj := search.Merit(model)
	for seed := int64(1); seed <= seeds; seed++ {
		blk := dfggen.Block(dfggen.Seeded(200+seed), dfggen.DefaultParams())
		var events []search.RaceEvent
		eng := &search.Racing{OnEvent: func(ev search.RaceEvent) { events = append(events, ev) }}
		cuts, stats, err := eng.Run(blk, obj, racingLimits(0))
		if err != nil {
			if search.IsResourceRefusal(err) {
				continue
			}
			t.Fatalf("seed %d: racing failed: %v", seed, err)
		}
		if !stats.Optimal {
			t.Errorf("seed %d: undeadlined racing run reports no optimality proof", seed)
		}
		if len(events) == 0 {
			t.Fatalf("seed %d: racing published no events", seed)
		}
		last := events[len(events)-1]
		if last.Stage != "optimal" {
			t.Errorf("seed %d: stream did not end with the optimal event (got %q)", seed, last.Stage)
		}
		prev := 0.0
		for i, ev := range events {
			if i < len(events)-1 && ev.Stage != "anytime" {
				t.Errorf("seed %d: event %d has stage %q before the final event", seed, i, ev.Stage)
			}
			if ev.Stage == "anytime" {
				if ev.Merit <= prev && i > 0 {
					t.Errorf("seed %d: anytime merit not strictly increasing: %g after %g", seed, ev.Merit, prev)
				}
				if ev.Merit > last.Merit+meritEps {
					t.Errorf("seed %d: anytime merit %g exceeds optimal merit %g", seed, ev.Merit, last.Merit)
				}
				// A streamed anytime answer is actionable: it must pass
				// the same validity suite as a final answer.
				for _, v := range CheckCuts(blk, "racing/anytime", ev.Cuts, 4, 2, 2) {
					t.Errorf("seed %d: %s", seed, v)
				}
			}
			prev = ev.Merit
		}
		for _, v := range CheckCuts(blk, "racing/final", cuts, 4, 2, 2) {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestRacingDeadlineNeverYieldsInvalidCuts forces deadline expiry (an
// immediate 1ns deadline and a mid-race ~200µs one) on generated blocks
// and checks the anytime answer: nil error, structurally valid cuts, and
// a merit never exceeding the exact optimum computed without a deadline.
func TestRacingDeadlineNeverYieldsInvalidCuts(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	obj := search.Merit(model)
	for seed := int64(1); seed <= seeds; seed++ {
		blk := dfggen.Block(dfggen.Seeded(300+seed), dfggen.DefaultParams())

		exactEng, err := search.New("exact", nil)
		if err != nil {
			t.Fatal(err)
		}
		exactCuts, _, err := exactEng.Run(blk, obj, racingLimits(0))
		if err != nil {
			if search.IsResourceRefusal(err) {
				continue
			}
			t.Fatalf("seed %d: exact reference failed: %v", seed, err)
		}
		optimum := refTotalMerit(blk, exactCuts)

		for _, deadline := range []time.Duration{time.Nanosecond, 200 * time.Microsecond} {
			eng := &search.Racing{}
			cuts, stats, err := eng.Run(blk, obj, racingLimits(deadline))
			if err != nil {
				t.Fatalf("seed %d deadline %v: racing returned error %v (deadline expiry must not error)",
					seed, deadline, err)
			}
			for _, v := range CheckCuts(blk, "racing/deadlined", cuts, 4, 2, 2) {
				t.Errorf("seed %d deadline %v: %s", seed, deadline, v)
			}
			if m := refTotalMerit(blk, cuts); m > optimum+meritEps {
				t.Errorf("seed %d deadline %v: anytime merit %g exceeds exact optimum %g",
					seed, deadline, m, optimum)
			}
			if stats.Optimal {
				// The race may legitimately finish before a generous
				// deadline; a claimed proof must then match exact.
				if d := diffCuts(exactCuts, cuts); d != "" {
					t.Errorf("seed %d deadline %v: claims optimality but differs from exact: %s",
						seed, deadline, d)
				}
			}
		}
	}
}
