package difftest

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dfggen"
	"repro/internal/dfgio"
)

// TestWriteReproducerRoundTrip covers the path a real engine bug would
// take: serialize a violating block with its metadata, load the corpus
// back, and get the same block and annotations. No soak has produced a
// violation yet, so this is the only thing keeping that path honest.
func TestWriteReproducerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blk := dfggen.Block(dfggen.Seeded(7), dfggen.DefaultParams())
	vs := []Violation{
		{Invariant: "dominance", Engine: "genetic", Detail: "exact 3 < heuristic 4\nsecond line"},
		{Invariant: "validity", Engine: "exact", Detail: "cut 0 not convex"},
	}

	path, err := WriteReproducer(dir, blk, vs, "unit test seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if base := path; !strings.Contains(base, "repro-dominance-") || !strings.HasSuffix(base, ".dfg") {
		t.Errorf("unexpected reproducer name: %s", path)
	}

	// Idempotent: same block, same violation → same file, same bytes.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := WriteReproducer(dir, blk, vs, "unit test seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if again != path {
		t.Errorf("second write went to %s, want %s", again, path)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("second write changed the file bytes")
	}

	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 1 {
		t.Fatalf("loaded %d corpus entries, want 1", len(corpus))
	}
	r := corpus[0]
	if r.Path != path {
		t.Errorf("entry path %s, want %s", r.Path, path)
	}
	if d := diffBlocks(blk, r.Block); d != "" {
		t.Errorf("loaded block differs: %s", d)
	}
	if a, b := dfgio.BlockHash(blk), dfgio.BlockHash(r.Block); a != b {
		t.Errorf("hash moved through the corpus: %s vs %s", a, b)
	}
	for key, want := range map[string]string{
		"invariant": "dominance",
		"engine":    "genetic",
		"detail":    "exact 3 < heuristic 4 \\n second line",
		"found-by":  "unit test seed=7",
	} {
		if got := r.Header[key]; got != want {
			t.Errorf("header[%q] = %q, want %q", key, got, want)
		}
	}

	if _, err := WriteReproducer(dir, blk, nil, ""); err == nil {
		t.Error("WriteReproducer accepted an empty violation list")
	}
}

// TestLoadCorpusMissingDir pins the empty-corpus contract the checked-in
// (violation-free) testdata/ relies on.
func TestLoadCorpusMissingDir(t *testing.T) {
	corpus, err := LoadCorpus("testdata/does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 0 {
		t.Errorf("got %d entries from a missing dir, want 0", len(corpus))
	}
}
