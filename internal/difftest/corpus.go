// Reproducer corpus: minimized violating blocks serialized as annotated
// .dfg files under testdata/. Every checked-in reproducer is re-run by
// TestCorpusReproducers as a regression gate, so a fixed bug stays fixed.
package difftest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dfgio"
	"repro/internal/ir"
)

// Reproducer is one corpus entry: a block plus the violation metadata
// recorded when it was minimized.
type Reproducer struct {
	// Path is the corpus file the entry was loaded from.
	Path string
	// Block is the minimized violating block.
	Block *ir.Block
	// Header holds the "# key: value" annotations (invariant, engine,
	// detail, found-by) in file order.
	Header map[string]string
}

// WriteReproducer serializes a minimized violating block into dir as an
// annotated .dfg file named after its content hash, and returns the path.
// Writing the same block twice is idempotent (same name, same bytes).
// foundBy records provenance (e.g. "dfgfuzz -seeds 10000 seed=42").
func WriteReproducer(dir string, blk *ir.Block, vs []Violation, foundBy string) (string, error) {
	if len(vs) == 0 {
		return "", fmt.Errorf("difftest: refusing to write a reproducer with no violations")
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# difftest reproducer (minimized)\n")
	fmt.Fprintf(&buf, "# invariant: %s\n", vs[0].Invariant)
	if vs[0].Engine != "" {
		fmt.Fprintf(&buf, "# engine: %s\n", vs[0].Engine)
	}
	for _, v := range vs {
		fmt.Fprintf(&buf, "# detail: %s\n", sanitizeComment(v.Detail))
	}
	if foundBy != "" {
		fmt.Fprintf(&buf, "# found-by: %s\n", sanitizeComment(foundBy))
	}
	if err := dfgio.Write(&buf, blk); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("repro-%s-%s.dfg", vs[0].Invariant, dfgio.BlockHash(blk)[:12])
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeComment keeps a violation detail on one comment line.
func sanitizeComment(s string) string {
	return strings.ReplaceAll(s, "\n", " \\n ")
}

// LoadCorpus parses every .dfg reproducer under dir, in sorted path order.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Reproducer, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.dfg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]Reproducer, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		blk, err := dfgio.Parse(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("difftest: corpus file %s: %w", path, err)
		}
		out = append(out, Reproducer{Path: path, Block: blk, Header: parseHeader(data)})
	}
	return out, nil
}

// parseHeader extracts the leading "# key: value" annotations.
func parseHeader(data []byte) map[string]string {
	h := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			break
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		if k, v, ok := strings.Cut(body, ":"); ok {
			key := strings.TrimSpace(k)
			if _, dup := h[key]; !dup {
				h[key] = strings.TrimSpace(v)
			}
		}
	}
	return h
}
