package dfggen

import (
	"testing"

	"repro/internal/dfgio"
	"repro/internal/ir"
)

// TestDeterminism pins the generator's seed contract: the same seed yields
// the same block, and distinct seeds differ (no accidental seed collapse).
func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	h1 := dfgio.BlockHash(Block(Seeded(42), p))
	h2 := dfgio.BlockHash(Block(Seeded(42), p))
	if h1 != h2 {
		t.Fatalf("seed 42 generated two different blocks: %s vs %s", h1, h2)
	}
	if h3 := dfgio.BlockHash(Block(Seeded(43), p)); h3 == h1 {
		t.Fatalf("seeds 42 and 43 generated the same block %s", h1)
	}
}

// TestGeneratedBlocksValidAndInRange checks the structural guarantees the
// harness relies on across a spread of seeds: node counts within bounds
// (plus the documented motif overshoot) and FinishBlock acceptance (Block
// would have panicked otherwise).
func TestGeneratedBlocksValidAndInRange(t *testing.T) {
	p := DefaultParams()
	sawMem, sawLiveOut := false, false
	for seed := int64(1); seed <= 200; seed++ {
		blk := Block(Seeded(seed), p)
		if blk.N() < p.MinNodes || blk.N() > p.MaxNodes+4 {
			t.Fatalf("seed %d: %d nodes outside [%d, %d+overshoot]", seed, blk.N(), p.MinNodes, p.MaxNodes)
		}
		for i := range blk.Nodes {
			if blk.Nodes[i].Op.IsMem() {
				sawMem = true
			}
		}
		if !blk.LiveOut.Empty() {
			sawLiveOut = true
		}
	}
	if !sawMem {
		t.Error("200 seeds produced no memory (forbidden) ops; MemFrac plumbing broken")
	}
	if !sawLiveOut {
		t.Error("200 seeds produced no live-out marks")
	}
}

// TestNormalizedClampsHostileParams feeds fuzz-grade garbage parameters
// and requires generation to still succeed.
func TestNormalizedClampsHostileParams(t *testing.T) {
	hostile := []Params{
		{},
		{MinNodes: -5, MaxNodes: -99, MaxInputs: -1},
		{MinNodes: 50, MaxNodes: 3, MaxInputs: 1000, MemFrac: 9, ConstFrac: 9, ImmFrac: -2, InputFrac: 3},
		{MinNodes: 1, MaxNodes: 1, MaxInputs: 1, MemFrac: 1},
	}
	for i, p := range hostile {
		blk := Block(Seeded(int64(i)+1), p)
		if blk.N() < 1 {
			t.Fatalf("params %d: empty block", i)
		}
	}
}

// TestApplicationShape checks the multi-block generator.
func TestApplicationShape(t *testing.T) {
	p := DefaultParams()
	app := Application(Seeded(7), p)
	if len(app.Blocks) < p.MinBlocks || len(app.Blocks) > p.MaxBlocks {
		t.Fatalf("%d blocks outside [%d,%d]", len(app.Blocks), p.MinBlocks, p.MaxBlocks)
	}
	var _ *ir.Application = app
}
